// Motionsearch: compare every motion-search algorithm on a bio-medical
// clip — SAD evaluations, residual quality and recovered vectors — the
// Table I comparison in miniature, down at the block-matching level.
package main

import (
	"fmt"
	"log"

	"repro/internal/medgen"
	"repro/internal/motion"
)

func main() {
	// Two consecutive frames of a panning study: the true global motion in
	// MV space is (−3, −1).
	vc := medgen.Default()
	vc.Motion = medgen.Pan
	vc.PanVX, vc.PanVY = 3, 1
	vc.Frames = 2
	gen, err := medgen.NewGenerator(vc)
	if err != nil {
		log.Fatal(err)
	}
	ref := gen.Frame(0).Y
	cur := gen.Frame(1).Y

	searchers := []motion.Searcher{
		motion.FullSearch{},
		motion.TZSearch{},
		motion.ThreeStep{},
		motion.Diamond{},
		motion.Cross{},
		motion.OneAtATime{},
		motion.Hexagon{Orientation: motion.HexHorizontal},
		motion.Hexagon{Orientation: motion.HexVertical},
		motion.Hexagon{Orientation: motion.HexRotating},
	}

	// Blocks across the anatomy (center region with real structure).
	var blocks []motion.Block
	for by := 160; by < 320; by += 32 {
		for bx := 192; bx < 448; bx += 32 {
			blocks = append(blocks, motion.Block{Cur: cur, Ref: ref, X: bx, Y: by, W: 16, H: 16})
		}
	}

	fmt.Printf("%-16s %10s %12s %10s %8s\n", "algorithm", "evals/blk", "SAD/px", "found(-3,-1)", "window")
	for _, s := range searchers {
		var evals, cost int64
		exact := 0
		for _, b := range blocks {
			res := s.Search(b, 16, motion.MV{})
			evals += int64(res.Evals)
			cost += res.Cost
			if res.MV == (motion.MV{X: -3, Y: -1}) {
				exact++
			}
		}
		n := int64(len(blocks))
		fmt.Printf("%-16s %10.1f %12.2f %7d/%-4d %8d\n",
			s.Name(), float64(evals)/float64(n), float64(cost)/float64(n*16*16), exact, len(blocks), 16)
	}

	// The paper's GOP-aware policy: learn the direction on the first frame,
	// then follow it with a directed one-at-a-time search in a tiny window.
	policy, err := motion.NewGOPPolicy(motion.DefaultPolicyConfig())
	if err != nil {
		log.Fatal(err)
	}
	policy.Observe(0, motion.MV{X: -3, Y: -1})
	s, w := policy.Choose(0, false, 3) // low-motion tile, later frame of GOP
	var evals, cost int64
	for _, b := range blocks {
		res := s.Search(b, w, policy.PredFor(0, 3))
		evals += int64(res.Evals)
		cost += res.Cost
	}
	n := int64(len(blocks))
	fmt.Printf("%-16s %10.1f %12.2f %12s %8d   ← proposed GOP policy (frame 3)\n",
		"policy:"+s.Name(), float64(evals)/float64(n), float64(cost)/float64(n*16*16), "-", w)
}
