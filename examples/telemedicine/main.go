// Telemedicine: the paper's motivating scenario — a hospital server
// transcoding many diagnostic videos online for doctors on mobile devices.
// A saturated queue of users competes for the 32-core platform; Algorithm 2
// admits as many as fit, allocates their tile threads to cores and sets
// frequencies; the same queue under the baseline [19] admits fewer.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/medgen"
	"repro/internal/mpsoc"
	"repro/internal/sched"
)

func main() {
	const queueLen = 12

	// Two servers over the same platform: the proposed Algorithm 2 and
	// the baseline one-tile-per-core policy of [19].
	for _, setup := range []struct {
		name  string
		mode  core.Mode
		alloc core.AllocatorFunc
	}{
		{"proposed (Algorithm 2)", core.ModeProposed, sched.AllocateContentAware},
		{"baseline [19]", core.ModeBaseline, sched.AllocateBaseline},
	} {
		srv, err := core.NewServer(core.ServerConfig{
			Platform:  mpsoc.XeonE5_2667V4(),
			FPS:       24,
			Allocator: setup.alloc,
			Workers:   2,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Users request a mix of studies: brains, chests, bones...
		classes := []medgen.Class{medgen.Brain, medgen.Chest, medgen.Bone, medgen.SpinalCord}
		for i := 0; i < queueLen; i++ {
			vc := medgen.Default()
			vc.Width, vc.Height = 320, 240 // keep the example quick
			vc.Frames = 16
			vc.Class = classes[i%len(classes)]
			vc.Seed = int64(i + 1)
			gen, err := medgen.NewGenerator(vc)
			if err != nil {
				log.Fatal(err)
			}
			src, err := core.SourceFromGenerator(gen, vc.Frames, vc.FPS, vc.Class.String())
			if err != nil {
				log.Fatal(err)
			}
			cfg := core.DefaultSessionConfig()
			cfg.Mode = setup.mode
			cfg.Retile.MinTileW, cfg.Retile.MinTileH = 48, 48
			cfg.BaselineTiles = 4
			if _, err := srv.AddSession(src, cfg); err != nil {
				log.Fatal(err)
			}
		}

		// The admitted sessions encode concurrently: each gets the tile
		// parallelism its thread allocation planned (see out.Allocation).
		start := time.Now()
		out, err := srv.ServeGOP()
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start)
		fmt.Printf("== %s ==\n", setup.name)
		fmt.Printf("admitted %d/%d users, %d cores in use, %.1f W average, round wall time %v\n",
			len(out.AdmittedUsers), queueLen, out.Allocation.CoresUsed, out.Energy.AvgPowerW, wall.Round(time.Millisecond))
		for _, id := range out.AdmittedUsers {
			gop := out.GOPs[id]
			fmt.Printf("   user %2d (%s): %2d tiles on %d cores, %.1f dB, %.0f kbps\n",
				id, srv.Sessions()[id].Config().Mode, gop.Grid.NumTiles(),
				out.Allocation.CoresOf(id), gop.MeanPSNR, gop.MeanKbps)
		}
		if len(out.RejectedUsers) > 0 {
			fmt.Printf("   waiting: users %v\n", out.RejectedUsers)
		}
		fmt.Println()
	}
}
