// Telemedicine: the paper's motivating scenario — a hospital server
// transcoding many diagnostic videos online for doctors on mobile devices.
// Unlike a batch job, the service is long-lived: consultations start and
// end at arbitrary times. Users are submitted to the serving loop at
// staggered arrivals, Server.Run admits as many as fit each GOP round
// (Algorithm 2), degrades newcomers through the admission ladder when the
// platform saturates, and calibrates its workload estimates against the
// encode times it actually measures.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/medgen"
	"repro/internal/mpsoc"
)

func main() {
	const (
		arrivals   = 12 // sessions over the whole service
		upfront    = 4  // already waiting when the service starts
		gopsPerArr = 1  // one new arrival per served round until drained
	)

	// A deliberately small platform so arrivals overlap and the admission
	// ladder has work to do.
	platform := mpsoc.XeonE5_2667V4()
	platform.Cores = 4

	classes := []medgen.Class{medgen.Brain, medgen.Chest, medgen.Bone, medgen.SpinalCord}
	submitted := 0
	var srv *core.Server
	submit := func() error {
		vc := medgen.Default()
		vc.Width, vc.Height = 320, 240 // keep the example quick
		vc.Frames = 16
		vc.Class = classes[submitted%len(classes)]
		vc.Seed = int64(submitted + 1)
		gen, err := medgen.NewGenerator(vc)
		if err != nil {
			return err
		}
		src, err := core.SourceFromGenerator(gen, vc.Frames, vc.FPS, vc.Class.String())
		if err != nil {
			return err
		}
		cfg := core.DefaultSessionConfig()
		cfg.Retile.MinTileW, cfg.Retile.MinTileH = 48, 48
		sess, err := srv.Submit(src, cfg)
		if err != nil {
			return err
		}
		submitted++
		fmt.Printf("   → user %d (%s) joined\n", sess.ID, vc.Class)
		return nil
	}

	var err error
	srv, err = core.NewServer(core.ServerConfig{
		Platform:    platform,
		FPS:         24,
		Calibration: core.CalibrationConfig{Enabled: true},
		Admission:   core.AdmissionConfig{Enabled: true, MaxQueueRounds: 16},
		OnRound: func(out *core.GOPOutcome) {
			fmt.Printf("round %2d: served %d users on %d cores, %.1f W",
				out.Round, len(out.AdmittedUsers), out.Allocation.CoresUsed, out.Energy.AvgPowerW)
			if len(out.RejectedUsers) > 0 {
				fmt.Printf(", waiting %v", out.RejectedUsers)
			}
			if out.EstimateTiles > 0 {
				fmt.Printf(", estimate error %.1f%%", 100*out.EstimateErr)
			}
			fmt.Println()
			// Session churn: one more consultation begins per round until
			// the day's queue is drained, then the clinic closes.
			for i := 0; i < gopsPerArr && submitted < arrivals; i++ {
				if err := submit(); err != nil {
					log.Fatal(err)
				}
			}
			if submitted == arrivals {
				srv.Close()
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < upfront; i++ {
		if err := submit(); err != nil {
			log.Fatal(err)
		}
	}
	if upfront == arrivals {
		srv.Close()
	}

	start := time.Now()
	rep, err := srv.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	fmt.Printf("\nservice closed after %d rounds (%v wall): %d/%d completed, %d rejected, %d failed\n",
		rep.Rounds, wall.Round(time.Millisecond), len(rep.Completed), rep.Submitted, len(rep.Rejected), len(rep.Failed))
	fmt.Printf("%d frames served, %.1f J simulated (avg %.1f W, peak %.1f W), %d deadline misses\n",
		rep.FramesEncoded, rep.Energy.EnergyJ, rep.Energy.AvgPowerW(), rep.Energy.PeakPowerW, rep.Energy.DeadlineMisses)
	if e, tiles := rep.MeanEstimateErr(0); tiles > 0 {
		fmt.Printf("mean stage-D1 estimate error %.1f%% over %d tiles\n", 100*e, tiles)
	}
	for _, sess := range srv.Sessions() {
		if sess.Degraded() || sess.QPOffset() > 0 {
			fmt.Printf("user %d was degraded by the admission ladder (uniform tiling: %v, QP offset: +%d)\n",
				sess.ID, sess.Degraded(), sess.QPOffset())
		}
	}
}
