// Telemedicine: the paper's motivating scenario — a hospital group
// transcoding many diagnostic videos online for doctors on mobile
// devices. Unlike a batch job, the service is long-lived: consultations
// start and end at arbitrary times. This example drives the fleet
// serving API (serve.New): two small MPSoC shards sit behind one front
// door, arrivals are routed by body-part class so each shard's workload
// LUTs stay warm, the admission ladder degrades newcomers when a shard
// saturates (uniform tiling → higher QP → half frame rate → bounded
// queue), and a ring-buffer sink keeps the service observable without
// growing with every GOP. When the morning rush piles up, the fleet's
// built-in autoscaler (serve.WithAutoscale) grows the fleet — and
// shrinks it again as the clinic empties, migrating any still-running
// consultation to a surviving shard at a GOP boundary, without losing a
// frame — while the rebalancer (serve.WithRebalance) sheds a shard that
// one popular body part made hot onto its idle peer. A metrics sink
// (serve.WithMetrics) exports the whole run — energy joules, deadline
// misses, per-body-part dollars and QoE — as a Prometheus /metrics
// endpoint, the same one a hospital's monitoring stack would scrape.
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/medgen"
	"repro/internal/metrics"
	"repro/internal/mpsoc"
	"repro/internal/serve"
)

func main() {
	const (
		arrivals = 12 // sessions over the whole service
		upfront  = 4  // already waiting when the service starts
		shards   = 2  // platforms behind the front door
	)

	// Deliberately small platforms so arrivals overlap and the admission
	// ladder has work to do.
	mkPlatform := func() *mpsoc.Platform {
		p := mpsoc.XeonE5_2667V4()
		p.Cores = 4
		return p
	}

	classes := []medgen.Class{medgen.Brain, medgen.Chest, medgen.Bone, medgen.SpinalCord}
	submitted := 0
	var fleet *serve.Fleet
	submit := func() error {
		vc := medgen.Default()
		vc.Width, vc.Height = 320, 240 // keep the example quick
		vc.Frames = 16
		vc.Class = classes[submitted%len(classes)]
		vc.Seed = int64(submitted + 1)
		gen, err := medgen.NewGenerator(vc)
		if err != nil {
			return err
		}
		src, err := core.SourceFromGenerator(gen, vc.Frames, vc.FPS, vc.Class.String())
		if err != nil {
			return err
		}
		cfg := core.DefaultSessionConfig()
		cfg.Retile.MinTileW, cfg.Retile.MinTileH = 48, 48
		p, err := fleet.Submit(src, cfg)
		if err != nil {
			return err
		}
		submitted++
		fmt.Printf("   → %s consultation joined shard %d as user %d (class home: shard %d)\n",
			vc.Class, p.Shard, p.Session.ID, fleet.HomeShard(vc.Class.String()))
		return nil
	}

	ring := serve.NewRingSink(64)

	// The hospital's billing and monitoring view: every fleet event also
	// lands in a bounded-cardinality metrics registry, priced by a cost
	// model and served in Prometheus text format.
	msink := metrics.NewSink(metrics.SinkConfig{
		Cost: metrics.CostModel{
			DollarsPerJoule:        0.0002, // electricity + cooling
			DollarsPerDeadlineMiss: 0.01,   // SLO service credit
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", msink.Handler())
	msrv := &http.Server{Handler: mux}
	go msrv.Serve(ln)
	defer msrv.Close()
	metricsURL := fmt.Sprintf("http://%s/metrics", ln.Addr())
	fmt.Printf("monitoring: %s\n", metricsURL)

	fleet, err = serve.New(
		serve.WithPlatforms(mkPlatform(), mkPlatform()),
		serve.WithShardCapacity(4),
		serve.WithCalibration(core.CalibrationConfig{Enabled: true}),
		serve.WithAdmission(core.AdmissionConfig{Enabled: true, MaxQueueRounds: 16, RecoverAfterRounds: 3}),
		serve.WithSink(ring),
		serve.WithMetrics(msink),
		// The fleet scales itself: when the consultations' summed core
		// demand pushes the fleet past TargetUtil of its capacity for
		// Window consecutive rounds, a third shard opens; once the demand
		// would again fit within TargetUtil on two shards, the extra shard
		// drains — live consultations migrate at a GOP boundary.
		serve.WithAutoscale(serve.AutoscaleConfig{
			MinShards:  2,
			MaxShards:  3,
			TargetUtil: 0.75,
			Window:     1,
			OnResize: func(from, to int, reason string) {
				if to > from {
					fmt.Printf("   ⇡ opening shard %d → %d (%s)\n", from, to, reason)
				} else {
					fmt.Printf("   ⇣ consolidating %d → %d (%s)\n", from, to, reason)
				}
			},
			OnError: func(err error) { log.Fatal(err) },
		}),
		// And a shard one popular body part made hot sheds consultations
		// to its idle peers without changing the fleet's size.
		serve.WithRebalance(serve.RebalanceConfig{Factor: 1.5, Windows: 2}),
		serve.WithRoundHook(func(shard int, out *core.GOPOutcome) {
			fmt.Printf("shard %d round %2d: served %d users on %d cores, %.1f W",
				shard, out.Round, len(out.AdmittedUsers), out.Allocation.CoresUsed, out.Energy.AvgPowerW)
			if len(out.RejectedUsers) > 0 {
				fmt.Printf(", waiting %v", out.RejectedUsers)
			}
			if out.EstimateTiles > 0 {
				fmt.Printf(", estimate error %.1f%%", 100*out.EstimateErr)
			}
			fmt.Println()
			// Session churn: one more consultation begins per served round
			// until the day's queue is drained, then the clinic closes.
			if submitted < arrivals {
				if err := submit(); err != nil {
					log.Fatal(err)
				}
			}
			if submitted == arrivals {
				fleet.Close()
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < upfront; i++ {
		if err := submit(); err != nil {
			log.Fatal(err)
		}
	}
	if upfront == arrivals {
		fleet.Close()
	}

	start := time.Now()
	rep, err := fleet.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	fmt.Printf("\nclinic closed after %d rounds on %d shards (%v wall): %d/%d completed, %d rejected, %d failed\n",
		rep.Rounds, len(rep.Shards), wall.Round(time.Millisecond), rep.Completed, rep.Submitted, rep.Rejected, rep.Failed)
	fmt.Printf("%d frames served, %.1f J simulated (avg %.1f W, peak %.1f W), %d deadline misses\n",
		rep.FramesEncoded, rep.Energy.EnergyJ, rep.Energy.AvgPowerW(), rep.Energy.PeakPowerW, rep.Energy.DeadlineMisses)
	if e, tiles := ring.Report(-1).MeanEstimateErr(0); tiles > 0 {
		fmt.Printf("mean stage-D1 estimate error %.1f%% over %d tiles (ring sink)\n", 100*e, tiles)
	}
	if added, removed := ring.Resizes(); added+removed > 0 {
		fmt.Printf("elasticity: %d shard(s) opened, %d drained, %d consultation(s) migrated mid-stream\n",
			added, removed, ring.Migrations())
	}
	if n := ring.Rebalances(); n > 0 {
		fmt.Printf("rebalancing: %d consultation(s) shed off a hot shard\n", n)
	}
	for _, sr := range rep.Shards {
		if sr.Report == nil {
			continue
		}
		fmt.Printf("shard %d: %d rounds, completed %v, migrated away %v\n",
			sr.Shard, sr.Report.Rounds, sr.Report.Completed, sr.Report.Migrated)
	}

	// What the monitoring stack sees: scrape our own /metrics endpoint and
	// show the billing and experience series for the finished day.
	resp, err := http.Get(metricsURL)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	fmt.Printf("\nfinal scrape of %s (cost and QoE series):\n", metricsURL)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "repro_cost_dollars_total") ||
			strings.HasPrefix(line, "repro_class_cost_dollars_total") ||
			strings.HasPrefix(line, "repro_qoe_score") {
			fmt.Printf("   %s\n", line)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}
