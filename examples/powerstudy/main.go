// Powerstudy: explore the DVFS side of the paper — how Algorithm 2's
// dense packing plus min-frequency slack compares against the baseline's
// always-fmax cores, across allocation policies and user counts, using the
// MPSoC power model directly (no video encoding; thread demands are
// synthetic, which is exactly what the scheduler sees from the LUT).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/mpsoc"
	"repro/internal/sched"
)

func main() {
	platform := mpsoc.XeonE5_2667V4()
	slot := time.Second / 24

	// Each user: 4 tile threads with heterogeneous CPU times (measured at
	// fmax), roughly one core's worth of work in total.
	mkUsers := func(n int) []sched.UserDemand {
		var users []sched.UserDemand
		for u := 0; u < n; u++ {
			base := 6 + time.Duration(u%3)*2 // 6, 8, 10 ms
			users = append(users, sched.UserDemand{User: u, Threads: []sched.Thread{
				{User: u, Tile: 0, TimeFmax: base * time.Millisecond},
				{User: u, Tile: 1, TimeFmax: (base + 4) * time.Millisecond},
				{User: u, Tile: 2, TimeFmax: (base / 2) * time.Millisecond},
				{User: u, Tile: 3, TimeFmax: (base + 10) * time.Millisecond},
			}})
		}
		return users
	}

	// Every registered allocation policy competes — a policy added to the
	// sched registry shows up here (and in transcode -allocator) with no
	// further wiring.
	policies := sched.Default.All()

	fmt.Printf("%-52s", "users:")
	counts := []int{2, 4, 6, 8}
	for _, n := range counts {
		fmt.Printf("%10d", n)
	}
	fmt.Println()
	for _, p := range policies {
		fmt.Printf("%-52s", fmt.Sprintf("%s (%s)", p.Name, p.Description))
		for _, n := range counts {
			res, err := p.Func(sched.Input{Platform: platform, FPS: 24, Users: mkUsers(n)})
			if err != nil {
				log.Fatal(err)
			}
			rep, err := platform.SimulateSlot(res.Plans, slot)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %5.1f W ", rep.AvgPowerW)
		}
		fmt.Println()
	}

	fmt.Println("\ncores used at 6 users:")
	for _, p := range policies {
		res, err := p.Func(sched.Input{Platform: platform, FPS: 24, Users: mkUsers(6)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %-14s %d cores, %d users admitted\n", p.Name, res.CoresUsed, len(res.Admitted))
	}
}
