// Quickstart: generate a synthetic bio-medical video, run the paper's
// content-aware transcoding pipeline on it, and print what each stage
// decided — the minimal end-to-end tour of the single-session API. For
// the serving entry point — many users across many platform shards —
// see serve.New (README.md and examples/telemedicine).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/medgen"
	"repro/internal/workload"
)

func main() {
	// 1. A synthetic MRI-like study: 640×480 @ 24 Hz, rotating slowly the
	//    way a clinician reviews a volume (medgen documents how this
	//    substitutes for the paper's anonymized clinical videos).
	videoCfg := medgen.Default()
	videoCfg.Class = medgen.Brain
	videoCfg.Motion = medgen.Rotate
	videoCfg.Frames = 24
	gen, err := medgen.NewGenerator(videoCfg)
	if err != nil {
		log.Fatal(err)
	}
	src, err := core.SourceFromGenerator(gen, videoCfg.Frames, videoCfg.FPS, videoCfg.Class.String())
	if err != nil {
		log.Fatal(err)
	}

	// 2. A transcoding session with the paper's default pipeline: CV/motion
	//    analysis → content-aware re-tiling → per-tile QP + motion search →
	//    encode, with the workload LUT learning per-tile CPU times.
	sess, err := core.NewSession(0, src, core.DefaultSessionConfig(), workload.NewLUT())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Encode GOP by GOP and look at the decisions.
	for !sess.Finished() {
		gop, err := sess.EncodeGOP()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("GOP %d: %2d tiles  PSNR %.1f dB  %.0f kbps  CPU %v\n",
			gop.Index, gop.Grid.NumTiles(), gop.MeanPSNR, gop.MeanKbps, gop.CPUTime.Round(1000))
		for _, tc := range gop.Contents {
			fmt.Printf("   tile %2d %-18s %-6s texture=%-6s motion=%s\n",
				tc.Tile.Index, tc.Tile.Rect, tc.Tile.Region, tc.Texture, tc.Motion)
		}
	}

	// 4. The workload LUT the scheduler would consume.
	threads, err := sess.EstimateThreads()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-tile CPU-time estimates for the thread allocator:")
	for _, th := range threads {
		fmt.Printf("   tile %2d → %v\n", th.Tile, th.TimeFmax.Round(10000))
	}
}
