package metrics

import "repro/internal/mpsoc"

// CostModel prices the platform ledger into dollars. Both rates default
// to zero — a fleet without a cost model exports zero-dollar series
// rather than omitting them, so dashboards never have to special-case
// absence.
type CostModel struct {
	// DollarsPerJoule converts the simulated energy ledger into money —
	// the electricity (and amortized cooling) price of a joule.
	DollarsPerJoule float64
	// DollarsPerDeadlineMiss is the service-credit cost of one missed
	// frame deadline: the paper's QoS target is real-time throughput, so
	// a miss is a billable SLO event, not just a quality blemish.
	DollarsPerDeadlineMiss float64
}

// Cost prices a cumulative platform ledger. Deterministic and exact for
// a given Totals: one multiply-add per term, no accumulation of its own
// — which is what lets the exporter tests demand bit-exact equality
// between the scraped dollar total and the one derived from
// mpsoc.Totals directly.
func (m CostModel) Cost(t mpsoc.Totals) float64 {
	return t.EnergyJ*m.DollarsPerJoule + float64(t.DeadlineMisses)*m.DollarsPerDeadlineMiss
}

// QoEInput describes one served GOP from the viewer's side: the encoded
// quality, the admission-ladder degradations in force when it was
// served, and the deadline misses of the round that served it.
type QoEInput struct {
	// PSNRdB is the GOP's mean luma PSNR.
	PSNRdB float64
	// QPOffset is the session's accumulated admission-ladder QP
	// degradation (0 at full service).
	QPOffset int
	// DegradedTiling marks the ladder's uniform-tiling fallback rung.
	DegradedTiling bool
	// RateHalved marks the frame-rate rung: the session is served every
	// other GOP.
	RateHalved bool
	// DeadlineMisses is the serving round's platform-level miss count —
	// shared by every GOP of the round, since a slot overrun stalls all
	// of them.
	DeadlineMisses int
}

// QoEScore maps a served GOP to [0, 1]: 1 is transparent quality at
// full service rate with no misses; 0 is unwatchable. The base term is
// PSNR mapped linearly over 20–45 dB (below 20 dB artifacts dominate,
// above 45 dB differences are imperceptible); each active degradation
// then subtracts a fixed penalty — QP offsets cost 2% per step, the
// tiling fallback 5%, rate halving 15% (half the frames is the
// most visible degradation short of artifacts), and each deadline miss
// 5%. Penalties are calibrated so a fully degraded session still beats
// a rejected one (score 0) — matching the admission ladder's premise
// that degraded service is better than none.
func QoEScore(in QoEInput) float64 {
	score := (in.PSNRdB - 20) / 25
	if score < 0 {
		score = 0
	}
	if score > 1 {
		score = 1
	}
	score -= 0.02 * float64(in.QPOffset)
	if in.DegradedTiling {
		score -= 0.05
	}
	if in.RateHalved {
		score -= 0.15
	}
	score -= 0.05 * float64(in.DeadlineMisses)
	if score < 0 {
		score = 0
	}
	return score
}
