package metrics

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/medgen"
	"repro/internal/serve"
)

// testSource renders a deterministic synthetic study under an arbitrary
// workload-class name (the fleet's routing key).
func testSource(t testing.TB, class string, seed int64, frames int) core.FrameSource {
	t.Helper()
	cfg := medgen.Default()
	cfg.Width, cfg.Height = 256, 192
	cfg.Class = medgen.Class(int(seed) % medgen.NumClasses)
	cfg.Frames = frames
	cfg.Seed = seed
	g, err := medgen.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := core.SourceFromGenerator(g, frames, cfg.FPS, class)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func testSessionConfig() core.SessionConfig {
	cfg := core.DefaultSessionConfig()
	cfg.Codec.GOPSize = 4
	cfg.Codec.IntraPeriod = 8
	cfg.Retile.MinTileW, cfg.Retile.MinTileH = 48, 48
	return cfg
}

// sample is one parsed exposition line.
type sample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseExposition parses Prometheus text format (enough of it for these
// tests: no escaped quotes inside the label values we emit here).
func parseExposition(t *testing.T, text string) []sample {
	t.Helper()
	var out []sample
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
		s := sample{labels: map[string]string{}}
		nameAndLabels := fields[0]
		if i := strings.IndexByte(nameAndLabels, '{'); i >= 0 {
			s.name = nameAndLabels[:i]
			body := strings.TrimSuffix(nameAndLabels[i+1:], "}")
			for _, pair := range strings.Split(body, ",") {
				k, v, ok := strings.Cut(pair, "=")
				if !ok {
					t.Fatalf("malformed label pair %q in %q", pair, line)
				}
				s.labels[k] = strings.Trim(v, `"`)
			}
		} else {
			s.name = nameAndLabels
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		s.value = v
		out = append(out, s)
	}
	return out
}

// find returns the single sample matching name and labels (subset
// match), failing the test when absent or ambiguous.
func find(t *testing.T, samples []sample, name string, labels map[string]string) float64 {
	t.Helper()
	var hits []sample
outer:
	for _, s := range samples {
		if s.name != name {
			continue
		}
		for k, v := range labels {
			if s.labels[k] != v {
				continue outer
			}
		}
		hits = append(hits, s)
	}
	if len(hits) != 1 {
		t.Fatalf("%d samples match %s%v", len(hits), name, labels)
	}
	return hits[0].value
}

// sum adds every sample of name matching the label subset.
func sum(samples []sample, name string, labels map[string]string) float64 {
	total := 0.0
outer:
	for _, s := range samples {
		if s.name != name {
			continue
		}
		for k, v := range labels {
			if s.labels[k] != v {
				continue outer
			}
		}
		total += s.value
	}
	return total
}

// TestExporterReconcilesWithFleet is the exporter's acceptance test: a
// 3-shard fleet under churn — arrivals mid-run, a grow-and-shrink resize
// with session migration — serves /metrics throughout; the endpoint must
// answer with well-formed finite text mid-churn, and the final scrape's
// energy, deadline-miss, cost, round, GOP and migration series must
// equal the RingSink-derived (mpsoc.Totals-backed) values exactly — not
// approximately.
func TestExporterReconcilesWithFleet(t *testing.T) {
	cost := CostModel{DollarsPerJoule: 0.0005, DollarsPerDeadlineMiss: 0.01}
	sink := NewSink(SinkConfig{Cost: cost})
	ring := serve.NewRingSink(4096)
	f, err := serve.New(
		serve.WithShards(3),
		serve.WithSink(ring),
		serve.WithMetrics(sink),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sink.Handler())
	defer srv.Close()

	// One session homed on each shard, then churn: more arrivals from a
	// round hook would race this test's assertions, so arrivals come from
	// the main goroutine between observable phases instead.
	classes := homedClasses(t, f, 3)
	for i, class := range classes {
		if _, err := f.Submit(testSource(t, class, int64(i+1), 16), testSessionConfig()); err != nil {
			t.Fatal(err)
		}
	}
	runDone := make(chan error, 1)
	go func() {
		_, err := f.Run(context.Background())
		runDone <- err
	}()

	// Wait for live rounds, then scrape mid-churn.
	waitFor(t, func() bool { return ring.Report(-1).Rounds >= 2 })
	mid := scrape(t, srv.URL)
	midSamples := parseExposition(t, mid)
	if len(midSamples) == 0 {
		t.Fatal("mid-churn scrape is empty")
	}
	if v := sum(midSamples, "repro_energy_joules_total", nil); !(v > 0) {
		t.Fatalf("mid-churn energy total %v, want > 0 and finite", v)
	}

	// Grow, land sessions on the new shard, then shrink — forcing
	// migrations the exporter must count.
	if err := f.Resize(4); err != nil {
		t.Fatal(err)
	}
	grown := homedClasses(t, f, 4)
	for i, class := range grown[3:] {
		if _, err := f.Submit(testSource(t, class, int64(10+i), 32), testSessionConfig()); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		r, ok := ring.ShardLoad(3)
		return ok && r.Sessions > 0
	})
	if err := f.Resize(3); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}

	if ring.Migrations() == 0 {
		t.Fatal("churn produced no migrations — the reconciliation below would prove nothing")
	}

	// Final reconciliation: exact equality per shard against the
	// RingSink's (shard, id)-keyed fleet view.
	samples := parseExposition(t, scrape(t, srv.URL))
	fleet := ring.FleetReport()
	for shard, rep := range fleet.Shards {
		if rep.Rounds == 0 {
			continue // a shard that never settled a round exports nothing
		}
		lbl := map[string]string{"shard": strconv.Itoa(shard)}
		if got := find(t, samples, "repro_energy_joules_total", lbl); got != rep.Energy.EnergyJ {
			t.Errorf("shard %d energy: exported %v, ledger %v", shard, got, rep.Energy.EnergyJ)
		}
		if got := find(t, samples, "repro_deadline_misses_total", lbl); got != float64(rep.Energy.DeadlineMisses) {
			t.Errorf("shard %d misses: exported %v, ledger %d", shard, got, rep.Energy.DeadlineMisses)
		}
		if got, want := find(t, samples, "repro_cost_dollars_total", lbl), cost.Cost(rep.Energy); got != want {
			t.Errorf("shard %d cost: exported %v, ledger-derived %v", shard, got, want)
		}
		if got := find(t, samples, "repro_rounds_total", lbl); got != float64(rep.Rounds) {
			t.Errorf("shard %d rounds: exported %v, ring %d", shard, got, rep.Rounds)
		}
		if got := sum(samples, "repro_gops_total", lbl); got != float64(rep.GOPReports) {
			t.Errorf("shard %d gops: exported %v, ring %d", shard, got, rep.GOPReports)
		}
		if got := sum(samples, "repro_frames_total", lbl); got != float64(rep.FramesEncoded) {
			t.Errorf("shard %d frames: exported %v, ring %d", shard, got, rep.FramesEncoded)
		}
	}
	if got := sum(samples, "repro_migrations_total", nil); got != float64(ring.Migrations()) {
		t.Errorf("migrations: exported %v, ring %d", got, ring.Migrations())
	}
	if got := sum(samples, "repro_rebalances_total", nil); got != float64(ring.Rebalances()) {
		t.Errorf("rebalances: exported %v, ring %d", got, ring.Rebalances())
	}
	added, removed := ring.Resizes()
	if got := sum(samples, "repro_shards_added_total", nil); got != float64(added) {
		t.Errorf("shards added: exported %v, ring %d", got, added)
	}
	if got := sum(samples, "repro_shards_removed_total", nil); got != float64(removed) {
		t.Errorf("shards removed: exported %v, ring %d", got, removed)
	}
	if got := sum(samples, "repro_placements_total", nil); got != float64(ring.Placements()) {
		t.Errorf("placements: exported %v, ring %d", got, ring.Placements())
	}
	for _, s := range samples {
		if s.name == "repro_qoe_score" && (s.value < 0 || s.value > 1) {
			t.Errorf("qoe score %v outside [0, 1] for %v", s.value, s.labels)
		}
	}
	if got := sum(samples, "repro_metrics_dropped_series_total", nil); got != 0 {
		t.Errorf("registry dropped %v series under a normal fleet run", got)
	}
}

// TestExporterBoundsClassCardinality: a flood of distinct workload
// classes folds into "other" past MaxClasses — session-driven input can
// never grow the class label set without bound.
func TestExporterBoundsClassCardinality(t *testing.T) {
	sink := NewSink(SinkConfig{MaxClasses: 3})
	ring := serve.NewRingSink(64)
	f, err := serve.New(serve.WithShards(1), serve.WithSink(ring), serve.WithMetrics(sink))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := f.Submit(testSource(t, fmt.Sprintf("flood-%d", i), int64(i+1), 4), testSessionConfig()); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := sink.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	classes := map[string]bool{}
	for _, s := range parseExposition(t, b.String()) {
		if c, ok := s.labels["class"]; ok {
			classes[c] = true
		}
	}
	if len(classes) > 4 { // 3 named + "other"
		t.Fatalf("class label grew to %d values under a MaxClasses of 3: %v", len(classes), classes)
	}
	if !classes["other"] {
		t.Fatalf("flood classes were not folded into \"other\": %v", classes)
	}
	if got, want := sum(parseExposition(t, b.String()), "repro_gops_total", nil), float64(ring.Report(-1).GOPReports); got != want {
		t.Fatalf("folding lost GOPs: exported %v, ring %v", got, want)
	}
}

// homedClasses finds one class name homed on each of the fleet's n live
// shards.
func homedClasses(t *testing.T, f *serve.Fleet, n int) []string {
	t.Helper()
	out := make([]string, n)
	found := 0
	for i := 0; found < n && i < 10000; i++ {
		class := fmt.Sprintf("class-%d", i)
		home := f.HomeShard(class)
		if home >= 0 && home < n && out[home] == "" {
			out[home] = class
			found++
		}
	}
	if found != n {
		t.Fatalf("no class homed on every one of %d shards: %v", n, out)
	}
	return out
}

// waitFor polls cond with a deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 30s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// scrape GETs the endpoint and returns the body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %s", resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestExporterAgentLabel: a sink configured with an agent identity
// stamps the constant "agent" label onto every series it exports, so a
// fleet of agent processes can share one scraper without collisions.
func TestExporterAgentLabel(t *testing.T) {
	sink := NewSink(SinkConfig{Agent: "agent-7"})
	fleet, err := serve.New(
		serve.WithShards(1),
		serve.WithMetrics(sink),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.Submit(testSource(t, "brain", 1, 8), testSessionConfig()); err != nil {
		t.Fatal(err)
	}
	fleet.Close()
	if _, err := fleet.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if err := sink.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, buf.String())
	labeled := 0
	for _, s := range samples {
		if s.name == "repro_metrics_dropped_series_total" {
			continue // the registry's own meta-series, not the sink's
		}
		if s.labels["agent"] != "agent-7" {
			t.Fatalf("series %s%v missing agent label", s.name, s.labels)
		}
		labeled++
	}
	if labeled == 0 {
		t.Fatal("no sink series exported")
	}
	if got := find(t, samples, "repro_rounds_total", map[string]string{"agent": "agent-7", "shard": "0"}); got < 1 {
		t.Fatalf("repro_rounds_total = %v, want >= 1", got)
	}
}

// TestExporterBoundsTenantCardinality: a flood of distinct tenant ids
// must not grow the tenant label without bound — ids past MaxTenants
// fold into "other", and the fold loses no per-tenant GOP accounting.
func TestExporterBoundsTenantCardinality(t *testing.T) {
	sink := NewSink(SinkConfig{MaxTenants: 2})
	ring := serve.NewRingSink(64)
	f, err := serve.New(serve.WithShards(1), serve.WithSink(ring), serve.WithMetrics(sink))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := f.SubmitWith(serve.SubmitRequest{
			Source: testSource(t, "brain", int64(i+1), 4),
			Config: testSessionConfig(),
			Tenant: fmt.Sprintf("tenant-%d", i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := sink.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, b.String())
	tenants := map[string]bool{}
	for _, s := range samples {
		if s.name == "repro_tenant_gops_total" {
			tenants[s.labels["tenant"]] = true
		}
	}
	if len(tenants) > 3 { // 2 named + "other"
		t.Fatalf("tenant label grew to %d values under a MaxTenants of 2: %v", len(tenants), tenants)
	}
	if !tenants["other"] {
		t.Fatalf("flood tenants were not folded into \"other\": %v", tenants)
	}
	if got, want := sum(samples, "repro_tenant_gops_total", nil), float64(ring.Report(-1).GOPReports); got != want {
		t.Fatalf("folding lost per-tenant GOPs: exported %v, ring %v", got, want)
	}
}
