package metrics

import (
	"net/http"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/serve"
)

// SinkConfig configures the exporter sink.
type SinkConfig struct {
	// Registry receives the series (nil builds a default-bounded one).
	Registry *Registry
	// Cost prices the energy/deadline ledger into the dollar series. The
	// zero model exports zero dollars.
	Cost CostModel
	// MaxClasses bounds the workload-class label: the first MaxClasses
	// distinct classes keep their names, later ones fold into "other" —
	// classes come from user input, and an unbounded label is how a
	// metrics endpoint becomes a memory leak. 0 selects the default 32.
	MaxClasses int
	// MaxTenants bounds the tenant label the same way: the first
	// MaxTenants distinct tenant ids keep their names, later ones fold
	// into "other". The default tenant exports as "default". 0 selects
	// the default 32.
	MaxTenants int
	// QoEAlpha is the EWMA weight of the newest GOP's QoE sample in the
	// per-(shard, class) qoe_score gauge, clamped to (0, 1]. 0 selects
	// the default 0.25.
	QoEAlpha float64
	// Agent, when non-empty, adds a constant "agent" label with this
	// value to every series the sink exports — the distributed mode's
	// per-node dimension, so one scraper can aggregate a whole fleet of
	// agent processes without their shard-indexed series colliding.
	Agent string
}

// counter, gauge and histogram prepend the sink's constant agent label
// (when configured) to every update, so the event handlers below stay
// label-agnostic.
type counter struct {
	m     Counter
	agent []string
}

func (c counter) Add(v float64, lv ...string) { c.m.Add(v, withAgent(c.agent, lv)...) }
func (c counter) Set(v float64, lv ...string) { c.m.Set(v, withAgent(c.agent, lv)...) }

type gauge struct {
	m     Gauge
	agent []string
}

func (g gauge) Set(v float64, lv ...string) { g.m.Set(v, withAgent(g.agent, lv)...) }

type histogram struct {
	m     Histogram
	agent []string
}

func (h histogram) Observe(v float64, lv ...string) { h.m.Observe(v, withAgent(h.agent, lv)...) }

func withAgent(agent, lv []string) []string {
	if len(agent) == 0 {
		return lv
	}
	out := make([]string, 0, len(agent)+len(lv))
	out = append(out, agent...)
	return append(out, lv...)
}

// Sink implements serve.Sink, translating the fleet's event stream into
// bounded-cardinality registry series: per-shard load and platform
// ledgers, per-class throughput and quality, admission-ladder depth,
// placement/migration/rebalance/resize rates, estimation error, and the
// cost model's dollar and QoE series. Wire it into a fleet with
// serve.WithMetrics and serve the scrape endpoint with Handler.
//
// Label discipline (the tentpole rule): every label set is fleet-bounded
// — shard index, folded workload class, fixed rung and state names.
// Session ids never become labels.
//
// The On* methods rely on the fleet's serialized sink dispatch and keep
// no locks of their own; the registry is internally synchronized, so
// scrapes may race delivery freely.
type Sink struct {
	serve.NopSink // session-scoped events we consume are overridden below

	reg       *Registry
	cost      CostModel
	alpha     float64
	maxClass  int
	maxTenant int
	agent     []string // nil, or the one constant "agent" label value

	// classOf maps (shard, session) → folded class label; classes is the
	// bounded set of label values handed out so far. doomed marks
	// terminal sessions for pruning after their final round's metrics —
	// the terminal state change arrives *before* the session's last
	// OnGOP (the Sink contract), so pruning on sight would misattribute
	// the final GOP.
	classOf map[[2]int]string
	classes map[string]bool
	doomed  map[[2]int]bool
	// tenantOf and tenants mirror classOf/classes for the tenant label
	// (learned from placement events, moved by migrations, pruned with
	// doomed). tenantSeen remembers which tenant labels each shard's
	// cores gauge has exported, so a tenant that leaves a shard reads 0
	// instead of its stale last grant.
	tenantOf   map[[2]int]string
	tenants    map[string]bool
	tenantSeen map[string]map[string]bool
	// qoe holds the per-(shard, class) EWMA state behind the gauge.
	qoe map[[2]string]float64
	// prevCost tracks each shard's last priced cumulative cost, so the
	// per-class attribution distributes exact per-round deltas.
	prevCost map[int]float64

	rounds        counter
	gops          counter
	frames        counter
	placements    counter
	migrations    counter
	rebalances    counter
	shardsAdded   counter
	shardsRemoved counter
	states        counter
	energy        counter
	misses        counter
	costDollars   counter
	classCost     counter
	tenantGops    counter
	tenantCost    counter
	preemptions   counter

	sessions    gauge
	demand      gauge
	capacity    gauge
	util        gauge
	coresUsed   gauge
	avgPower    gauge
	peakPower   gauge
	ladder      gauge
	liveNow     gauge
	qoeGauge    gauge
	tenantCores gauge

	estErr histogram
	psnr   histogram
}

// NewSink builds the exporter sink and registers its metric families.
func NewSink(cfg SinkConfig) *Sink {
	reg := cfg.Registry
	if reg == nil {
		reg = NewRegistry(RegistryOptions{})
	}
	if cfg.MaxClasses <= 0 {
		cfg.MaxClasses = 32
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 32
	}
	if !(cfg.QoEAlpha > 0) || cfg.QoEAlpha > 1 { // NaN-safe
		cfg.QoEAlpha = 0.25
	}
	s := &Sink{
		reg:        reg,
		cost:       cfg.Cost,
		alpha:      cfg.QoEAlpha,
		maxClass:   cfg.MaxClasses,
		maxTenant:  cfg.MaxTenants,
		classOf:    make(map[[2]int]string),
		classes:    make(map[string]bool),
		doomed:     make(map[[2]int]bool),
		tenantOf:   make(map[[2]int]string),
		tenants:    make(map[string]bool),
		tenantSeen: make(map[string]map[string]bool),
		qoe:        make(map[[2]string]float64),
		prevCost:   make(map[int]float64),
	}
	if cfg.Agent != "" {
		s.agent = []string{cfg.Agent}
	}
	// lbl prefixes the constant "agent" label name when configured; the
	// wrappers prefix its value on every update.
	lbl := func(names ...string) []string { return withAgent(agentLabelName(s.agent), names) }
	ctr := func(name, help string, labels ...string) counter {
		return counter{reg.Counter(name, help, lbl(labels...)...), s.agent}
	}
	gge := func(name, help string, labels ...string) gauge {
		return gauge{reg.Gauge(name, help, lbl(labels...)...), s.agent}
	}
	hst := func(name, help string, buckets []float64, labels ...string) histogram {
		return histogram{reg.Histogram(name, help, buckets, lbl(labels...)...), s.agent}
	}
	s.rounds = ctr("repro_rounds_total", "Settled serving rounds per shard.", "shard")
	s.gops = ctr("repro_gops_total", "GOPs served, by shard and workload class.", "shard", "class")
	s.frames = ctr("repro_frames_total", "Frames encoded, by shard and workload class.", "shard", "class")
	s.placements = ctr("repro_placements_total", "Session placements routed to each shard.", "shard")
	s.migrations = ctr("repro_migrations_total", "Session migration hops from resize drains.")
	s.rebalances = ctr("repro_rebalances_total", "Session hops shed by hot-shard rebalancing.")
	s.shardsAdded = ctr("repro_shards_added_total", "Shards added by resizes.")
	s.shardsRemoved = ctr("repro_shards_removed_total", "Shards removed by resizes.")
	s.states = ctr("repro_session_states_total", "Session lifecycle transitions, by shard and state.", "shard", "state")
	s.energy = ctr("repro_energy_joules_total", "Cumulative platform energy per shard (exact mpsoc ledger).", "shard")
	s.misses = ctr("repro_deadline_misses_total", "Cumulative frame-deadline misses per shard (exact mpsoc ledger).", "shard")
	s.costDollars = ctr("repro_cost_dollars_total", "Cumulative operating cost per shard under the cost model.", "shard")
	s.classCost = ctr("repro_class_cost_dollars_total", "Operating cost attributed to workload classes by encode-time share.", "class")
	s.tenantGops = ctr("repro_tenant_gops_total", "GOPs served, by tenant.", "tenant")
	s.tenantCost = ctr("repro_tenant_cost_dollars_total", "Operating cost attributed to tenants by encode-time share.", "tenant")
	s.preemptions = ctr("repro_preemptions_total", "Ladder pushdowns inflicted on lower-priority sessions to seat higher-priority arrivals, by shard and victim tenant.", "shard", "tenant")

	s.sessions = gge("repro_sessions", "Live sessions per shard.", "shard")
	s.demand = gge("repro_demand_cores", "Summed core demand of live sessions per shard.", "shard")
	s.capacity = gge("repro_capacity_cores", "Platform core capacity per shard.", "shard")
	s.util = gge("repro_utilization", "Demand over capacity per shard.", "shard")
	s.coresUsed = gge("repro_cores_used", "Cores the last settled round's allocation used.", "shard")
	s.avgPower = gge("repro_avg_power_watts", "Lifetime average platform power per shard.", "shard")
	s.peakPower = gge("repro_peak_power_watts", "Highest per-slot average power seen per shard.", "shard")
	s.ladder = gge("repro_ladder_sessions", "Live sessions per admission-ladder rung, as of each shard's last round.", "shard", "rung")
	s.liveNow = gge("repro_live_shards", "Routable shards after the last membership change.")
	s.qoeGauge = gge("repro_qoe_score", "EWMA QoE score per shard and class (1 = transparent full-rate service).", "shard", "class")
	s.tenantCores = gge("repro_tenant_cores", "Cores granted to each tenant by the shard's last settled round (weighted apportionment).", "shard", "tenant")

	s.estErr = hst("repro_estimate_error",
		"Per-round mean relative stage-D1 estimation error.",
		[]float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2}, "shard")
	s.psnr = hst("repro_gop_psnr_db",
		"Mean GOP PSNR by shard and workload class.",
		[]float64{25, 30, 32, 34, 36, 38, 40, 42, 45}, "shard", "class")
	return s
}

// agentLabelName returns the label-NAME prefix matching an agent
// label-value prefix: ["agent"] when one is configured, nil otherwise.
func agentLabelName(agent []string) []string {
	if len(agent) == 0 {
		return nil
	}
	return []string{"agent"}
}

// Registry exposes the sink's registry (for composing extra metrics or
// scraping programmatically).
func (s *Sink) Registry() *Registry { return s.reg }

// Handler serves the registry as a Prometheus scrape endpoint.
func (s *Sink) Handler() http.Handler { return s.reg.Handler() }

// classLabel folds a raw workload class into the bounded label set.
func (s *Sink) classLabel(class string) string {
	if s.classes[class] {
		return class
	}
	if len(s.classes) >= s.maxClass {
		return "other"
	}
	s.classes[class] = true
	return class
}

// tenantLabel folds a raw tenant id into the bounded label set. The
// default tenant ("" on the wire) exports as "default".
func (s *Sink) tenantLabel(tenant string) string {
	if tenant == "" || tenant == "default" {
		return "default"
	}
	if s.tenants[tenant] {
		return tenant
	}
	if len(s.tenants) >= s.maxTenant {
		return "other"
	}
	s.tenants[tenant] = true
	return tenant
}

func shardLabel(shard int) string { return strconv.Itoa(shard) }

// rungName classifies a session's ladder position into the fixed rung
// label set. The deepest degradation in force wins: rate halving is the
// ladder's last rung, QP offsets its middle rungs, the tiling fallback
// its first.
func rungName(ls core.LadderState) string {
	switch {
	case ls.RateHalved:
		return "rate-halved"
	case ls.QPOffset > 0:
		return "qp-offset"
	case ls.Rung > 0:
		return "degraded-tiling"
	}
	return "none"
}

var rungNames = []string{"none", "degraded-tiling", "qp-offset", "rate-halved"}

func (s *Sink) OnSessionPlaced(e serve.PlacementEvent) {
	shard := shardLabel(e.Shard)
	s.placements.Add(1, shard)
	key := [2]int{e.Shard, e.Session}
	s.classOf[key] = s.classLabel(e.Class)
	s.tenantOf[key] = s.tenantLabel(e.Tenant)
}

func (s *Sink) OnSessionStateChange(e serve.SessionEvent) {
	s.states.Add(1, shardLabel(e.Shard), e.State.String())
	if e.State != core.StateQueued {
		// Terminal — but the session's final OnGOP is still to come this
		// round; prune after the round's metrics instead of now.
		s.doomed[[2]int{e.Shard, e.Session}] = true
	}
}

func (s *Sink) OnGOP(e serve.GOPEvent) {
	shard := shardLabel(e.Shard)
	class := s.classOf[[2]int{e.Shard, e.Session}]
	if class == "" {
		class = "other"
	}
	s.gops.Add(1, shard, class)
	s.frames.Add(float64(len(e.GOP.Frames)), shard, class)
	s.psnr.Observe(e.GOP.MeanPSNR, shard, class)
	s.tenantGops.Add(1, s.sessionTenant(e.Shard, e.Session))
}

// sessionTenant looks up a session's folded tenant label, falling back
// to "other" for sessions the sink never saw placed (the same honesty
// rule as the class label).
func (s *Sink) sessionTenant(shard, session int) string {
	if t := s.tenantOf[[2]int{shard, session}]; t != "" {
		return t
	}
	return "other"
}

func (s *Sink) OnRoundMetrics(e serve.RoundEvent) {
	shard := shardLabel(e.Shard)
	out := e.Outcome
	s.rounds.Add(1, shard)

	// The cumulative platform ledger, set (not re-accumulated) so the
	// exported totals are bit-exact with core's mpsoc.Totals.
	t := out.Totals
	s.energy.Set(t.EnergyJ, shard)
	s.misses.Set(float64(t.DeadlineMisses), shard)
	s.avgPower.Set(t.AvgPowerW(), shard)
	s.peakPower.Set(t.PeakPowerW, shard)
	costNow := s.cost.Cost(t)
	s.costDollars.Set(costNow, shard)

	// Load as of the settlement.
	s.sessions.Set(float64(e.Load.Sessions), shard)
	s.demand.Set(float64(e.Load.DemandCores), shard)
	s.capacity.Set(float64(e.Load.CapacityCores), shard)
	s.util.Set(e.Load.Util, shard)
	if out.Allocation != nil {
		s.coresUsed.Set(float64(out.Allocation.CoresUsed), shard)
	}
	if out.EstimateTiles > 0 {
		s.estErr.Observe(out.EstimateErr, shard)
	}

	// Admission-ladder depth: reset every rung each round so recovered
	// sessions leave their old rung's count.
	depth := make(map[string]int, len(rungNames))
	for _, ls := range out.Ladder {
		depth[rungName(ls)]++
	}
	for _, rung := range rungNames {
		s.ladder.Set(float64(depth[rung]), shard, rung)
	}

	// Per-tenant core grants: zero every label this shard ever exported
	// first, so a tenant that left the shard reads 0 instead of its
	// stale last grant.
	seen := s.tenantSeen[shard]
	for t := range seen {
		s.tenantCores.Set(0, shard, t)
	}
	for t, c := range out.TenantCores {
		label := s.tenantLabel(t)
		if seen == nil {
			seen = make(map[string]bool)
			s.tenantSeen[shard] = seen
		}
		seen[label] = true
		s.tenantCores.Set(float64(c), shard, label)
	}

	// Priority preemptions, attributed to the victim's tenant.
	for _, id := range out.Preempted {
		s.preemptions.Add(1, shard, s.sessionTenant(e.Shard, id))
	}

	// Per-GOP QoE and the per-class attribution of this round's cost
	// delta, both in ascending session id so EWMA state is reproducible.
	ids := make([]int, 0, len(out.GOPs))
	totalCPU := 0.0
	for id, gop := range out.GOPs {
		ids = append(ids, id)
		totalCPU += gop.CPUTime.Seconds()
	}
	sort.Ints(ids)
	costDelta := costNow - s.prevCost[e.Shard]
	s.prevCost[e.Shard] = costNow
	roundMisses := 0
	if out.Energy != nil {
		roundMisses = out.Energy.DeadlineMisses
	}
	for _, id := range ids {
		gop := out.GOPs[id]
		class := s.classOf[[2]int{e.Shard, id}]
		if class == "" {
			class = "other"
		}
		// Cost attribution: encode CPU time is the resource the allocator
		// prices, so it is the share each class pays. A round with no
		// measurable CPU splits evenly.
		share := 1.0 / float64(len(ids))
		if totalCPU > 0 {
			share = gop.CPUTime.Seconds() / totalCPU
		}
		s.classCost.Add(costDelta*share, class)
		s.tenantCost.Add(costDelta*share, s.sessionTenant(e.Shard, id))

		ls := out.Ladder[id]
		score := QoEScore(QoEInput{
			PSNRdB:         gop.MeanPSNR,
			QPOffset:       ls.QPOffset,
			DegradedTiling: ls.Rung > 0 && ls.QPOffset == 0 && !ls.RateHalved,
			RateHalved:     ls.RateHalved,
			DeadlineMisses: roundMisses,
		})
		key := [2]string{shard, class}
		prev, seen := s.qoe[key]
		if !seen {
			prev = score
		}
		ewma := s.alpha*score + (1-s.alpha)*prev
		s.qoe[key] = ewma
		s.qoeGauge.Set(ewma, shard, class)
	}

	// This round's terminal sessions have had their final GOPs
	// attributed; drop their class entries now.
	for k := range s.doomed {
		if k[0] == e.Shard {
			delete(s.classOf, k)
			delete(s.tenantOf, k)
			delete(s.doomed, k)
		}
	}
}

func (s *Sink) OnShardAdded(e serve.ShardEvent) {
	s.shardsAdded.Add(1)
	s.liveNow.Set(float64(e.Live))
}

func (s *Sink) OnShardRemoved(e serve.ShardEvent) {
	s.shardsRemoved.Add(1)
	s.liveNow.Set(float64(e.Live))
}

func (s *Sink) OnSessionMigrated(e serve.MigrationEvent) {
	s.migrations.Add(1)
	s.moveClass(e)
}

func (s *Sink) OnSessionRebalanced(e serve.MigrationEvent) {
	s.rebalances.Add(1)
	s.moveClass(e)
}

// moveClass rebinds a migrated session's class and tenant to its new
// (shard, id).
func (s *Sink) moveClass(e serve.MigrationEvent) {
	from := [2]int{e.FromShard, e.FromSession}
	delete(s.classOf, from)
	delete(s.tenantOf, from)
	delete(s.doomed, from)
	to := [2]int{e.ToShard, e.ToSession}
	s.classOf[to] = s.classLabel(e.Class)
	s.tenantOf[to] = s.tenantLabel(e.Tenant)
}

var _ serve.Sink = (*Sink)(nil)
