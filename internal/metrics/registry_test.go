package metrics

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// TestRegistryBoundsCardinality: the MaxSeries cap is a hard bound — a
// label flood allocates nothing past it, refused series are counted, and
// the scrape stays well-formed with the dropped counter visible.
func TestRegistryBoundsCardinality(t *testing.T) {
	reg := NewRegistry(RegistryOptions{MaxSeries: 8})
	c := reg.Counter("repro_test_total", "t", "id")
	for i := 0; i < 100; i++ {
		c.Add(1, strconv.Itoa(i))
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "repro_test_total{") {
			lines++
		}
	}
	if lines != 8 {
		t.Fatalf("%d series exported past a MaxSeries of 8", lines)
	}
	if got := reg.DroppedSeries(); got != 92 {
		t.Fatalf("DroppedSeries = %d, want 92", got)
	}
	if !strings.Contains(b.String(), "repro_metrics_dropped_series_total 92") {
		t.Fatalf("dropped-series self-metric missing from scrape:\n%s", b.String())
	}
}

// TestRegistryExpositionFormat: counters, gauges and histograms render
// the Prometheus text format — HELP/TYPE headers, escaped label values,
// cumulative buckets with +Inf, and round-trip-exact float values.
func TestRegistryExpositionFormat(t *testing.T) {
	reg := NewRegistry(RegistryOptions{})
	exact := 1.0 / 3.0
	reg.Counter("repro_c_total", "counter help", "shard").Add(exact, "0")
	reg.Gauge("repro_g", "gauge help").Set(-2.5)
	h := reg.Histogram("repro_h", "hist help", []float64{1, 2}, "k")
	h.Observe(0.5, `a"b\c`)
	h.Observe(1.5, `a"b\c`)
	h.Observe(99, `a"b\c`)
	h.Observe(math.NaN(), `a"b\c`) // dropped, must not poison the sum

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP repro_c_total counter help",
		"# TYPE repro_c_total counter",
		"# TYPE repro_g gauge",
		"repro_g -2.5",
		"# TYPE repro_h histogram",
		`repro_h_bucket{k="a\"b\\c",le="1"} 1`,
		`repro_h_bucket{k="a\"b\\c",le="2"} 2`,
		`repro_h_bucket{k="a\"b\\c",le="+Inf"} 3`,
		`repro_h_count{k="a\"b\\c"} 3`,
		"repro_c_total{shard=\"0\"} " + strconv.FormatFloat(exact, 'g', -1, 64),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
	// The exported value must parse back to the identical float64.
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, `repro_c_total{shard="0"} `) {
			continue
		}
		v, err := strconv.ParseFloat(strings.Fields(line)[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v != exact {
			t.Fatalf("counter value %v does not round-trip to %v", v, exact)
		}
	}
}
