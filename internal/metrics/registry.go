// Package metrics is the fleet's live observability layer: a
// bounded-cardinality metrics registry with Prometheus text exposition,
// a telemetry sink (Sink) that translates the fleet's event stream
// (internal/serve) into registry series, and a CostModel pricing the
// platform ledger into dollars and per-GOP QoE scores.
//
// The registry is deliberately small and dependency-free. Its one hard
// design rule is bounded cardinality: every metric declares its label
// names up front, label values come from fleet-bounded sets (shard
// index, workload *class* — never a session id, which grows without
// bound), and the registry itself refuses to allocate past MaxSeries,
// counting refused series instead of growing. A scrape of a fleet that
// has served a million sessions is the same size as one that served
// ten.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// RegistryOptions bounds a registry.
type RegistryOptions struct {
	// MaxSeries caps the total number of label-value combinations across
	// all metrics (histogram series count as one each). Past the cap, new
	// combinations are dropped and counted (DroppedSeries) instead of
	// allocated — the registry's memory is bounded no matter what labels
	// arrive. 0 selects the default 4096.
	MaxSeries int
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Safe for concurrent use: updates and scrapes may
// race freely.
type Registry struct {
	mu        sync.Mutex
	families  []*family // registration order
	byName    map[string]*family
	maxSeries int
	series    int
	dropped   int
}

// NewRegistry builds a registry.
func NewRegistry(opts RegistryOptions) *Registry {
	if opts.MaxSeries <= 0 {
		opts.MaxSeries = 4096
	}
	return &Registry{byName: make(map[string]*family), maxSeries: opts.MaxSeries}
}

// DroppedSeries reports how many series were refused by the MaxSeries
// bound. It is also exported on every scrape as
// repro_metrics_dropped_series_total.
func (r *Registry) DroppedSeries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return "untyped"
}

// family is one named metric with a fixed label-name set.
type family struct {
	name    string
	help    string
	k       kind
	labels  []string
	buckets []float64 // histogramKind only, ascending, +Inf implicit
	series  map[string]*series
	order   []string // series keys in first-seen order
}

// series is one label-value combination's state.
type series struct {
	labelValues []string
	value       float64 // counter/gauge
	// histogram state
	bucketCounts []uint64
	sum          float64
	count        uint64
}

// register creates or fetches a family, failing loudly on a redefinition
// with different shape — two call sites disagreeing about a metric's
// labels is a programming error, not runtime input.
func (r *Registry) register(name, help string, k kind, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.k != k || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("metrics: %s redefined with different type or labels", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("metrics: %s redefined with different labels", name))
			}
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		k:       k,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*series),
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// get fetches or allocates the series for the given label values,
// enforcing the MaxSeries bound. Returns nil when the bound refused the
// allocation. Caller must hold r.mu.
func (r *Registry) getLocked(f *family, labelValues []string) *series {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s given %d label values for %d labels",
			f.name, len(labelValues), len(f.labels)))
	}
	key := strings.Join(labelValues, "\xff")
	if s, ok := f.series[key]; ok {
		return s
	}
	if r.series >= r.maxSeries {
		r.dropped++
		return nil
	}
	s := &series{labelValues: append([]string(nil), labelValues...)}
	if f.k == histogramKind {
		s.bucketCounts = make([]uint64, len(f.buckets))
	}
	f.series[key] = s
	f.order = append(f.order, key)
	r.series++
	return s
}

// Counter is a monotonically increasing metric. Set exists for the
// ledger pattern: when an authoritative cumulative total already exists
// (core's mpsoc.Totals), setting the counter to it is bit-exact where
// re-accumulating deltas might not be.
type Counter struct {
	r *Registry
	f *family
}

// Counter registers (or fetches) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) Counter {
	return Counter{r, r.register(name, help, counterKind, nil, labels)}
}

// Add increments the labeled series by v.
func (c Counter) Add(v float64, labelValues ...string) {
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	if s := c.r.getLocked(c.f, labelValues); s != nil {
		s.value += v
	}
}

// Set pins the labeled series to the cumulative value v.
func (c Counter) Set(v float64, labelValues ...string) {
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	if s := c.r.getLocked(c.f, labelValues); s != nil {
		s.value = v
	}
}

// Gauge is a point-in-time value.
type Gauge struct {
	r *Registry
	f *family
}

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) Gauge {
	return Gauge{r, r.register(name, help, gaugeKind, nil, labels)}
}

// Set pins the labeled series to v.
func (g Gauge) Set(v float64, labelValues ...string) {
	g.r.mu.Lock()
	defer g.r.mu.Unlock()
	if s := g.r.getLocked(g.f, labelValues); s != nil {
		s.value = v
	}
}

// Histogram is a fixed-bucket distribution.
type Histogram struct {
	r *Registry
	f *family
}

// Histogram registers (or fetches) a histogram family with the given
// ascending upper bucket bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) Histogram {
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic(fmt.Sprintf("metrics: %s buckets not ascending", name))
		}
	}
	return Histogram{r, r.register(name, help, histogramKind, buckets, labels)}
}

// Observe records one sample. Non-finite samples are dropped — a NaN
// would poison the sum and every quantile estimate built on it.
func (h Histogram) Observe(v float64, labelValues ...string) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	s := h.r.getLocked(h.f, labelValues)
	if s == nil {
		return
	}
	for i, le := range h.f.buckets {
		if v <= le {
			s.bucketCounts[i]++
		}
	}
	s.sum += v
	s.count++
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, one line per series,
// families in registration order and series in first-seen order. The
// registry's own dropped-series counter is appended so a scrape always
// shows whether the cardinality bound fired.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		if len(f.order) == 0 {
			continue
		}
		if err := f.write(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w,
		"# HELP repro_metrics_dropped_series_total Series refused by the registry's MaxSeries bound.\n"+
			"# TYPE repro_metrics_dropped_series_total counter\n"+
			"repro_metrics_dropped_series_total %d\n", r.dropped)
	return err
}

func (f *family) write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.k); err != nil {
		return err
	}
	for _, key := range f.order {
		s := f.series[key]
		switch f.k {
		case histogramKind:
			// bucketCounts are cumulative (Observe increments every bucket
			// whose bound covers the sample), as the exposition format wants.
			for i, le := range f.buckets {
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					f.name, labelString(f.labels, s.labelValues, "le", formatFloat(le)), s.bucketCounts[i]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, labelString(f.labels, s.labelValues, "le", "+Inf"), s.count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
				f.name, labelString(f.labels, s.labelValues, "", ""), formatFloat(s.sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n",
				f.name, labelString(f.labels, s.labelValues, "", ""), s.count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				f.name, labelString(f.labels, s.labelValues, "", ""), formatFloat(s.value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// labelString renders {a="x",b="y"} (empty string with no labels), with
// an optional extra label appended (the histogram "le").
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// formatFloat renders a value round-trip exactly: strconv's -1 precision
// picks the shortest representation that parses back to the identical
// float64, which is what lets the reconciliation tests demand exact
// equality between scraped and in-process totals.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		io.WriteString(w, b.String())
	})
}
