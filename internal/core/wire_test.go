package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/medgen"
	"repro/internal/workload"
)

// speccedTestSource wraps the medgen-backed test source with a wire spec,
// standing in for the production binder in internal/dist.
type speccedTestSource struct {
	FrameSource
	cfg medgen.Config
}

func (s *speccedTestSource) Spec() (SourceSpec, error) {
	data, err := json.Marshal(s.cfg)
	if err != nil {
		return SourceSpec{}, err
	}
	return SourceSpec{Kind: "medgen-test", Class: s.Class(), Data: data}, nil
}

func bindTestSource(spec SourceSpec) (FrameSource, error) {
	if spec.Kind != "medgen-test" {
		return nil, fmt.Errorf("unknown source kind %q", spec.Kind)
	}
	var cfg medgen.Config
	if err := json.Unmarshal(spec.Data, &cfg); err != nil {
		return nil, err
	}
	g, err := medgen.NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	src, err := SourceFromGenerator(g, cfg.Frames, cfg.FPS, spec.Class)
	if err != nil {
		return nil, err
	}
	return &speccedTestSource{FrameSource: src, cfg: cfg}, nil
}

// speccedSource builds a wire-capable test source.
func speccedSource(t *testing.T, class medgen.Class, motion medgen.MotionKind, frames int) FrameSource {
	t.Helper()
	cfg := medgen.Default()
	cfg.Width, cfg.Height = 256, 192
	cfg.Class = class
	cfg.Motion = motion
	cfg.Frames = frames
	cfg.Seed = int64(class)*100 + int64(motion) + 1
	g, err := medgen.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := SourceFromGenerator(g, frames, cfg.FPS, class.String())
	if err != nil {
		t.Fatal(err)
	}
	return &speccedTestSource{FrameSource: src, cfg: cfg}
}

// wireSnapshotOf wires one directly-driven session as ExportSessions would.
func wireSnapshotOf(t *testing.T, sess *Session) *SessionWire {
	t.Helper()
	snap := &SessionSnapshot{
		Session:    sess,
		Class:      sess.Class(),
		DonorID:    sess.ID,
		Frame:      sess.NextFrame(),
		QPOffset:   sess.QPOffset(),
		Degraded:   sess.Degraded(),
		RateHalved: sess.RateHalved(),
	}
	w, err := snap.Wire()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestSessionWireRoundTripBitIdentical: a session serialized to JSON at a
// GOP boundary, decoded in a "different process" (fresh source via the
// binder, fresh encoder via Restore) and resumed produces exactly the
// bitstream digests of the uninterrupted run — the cross-machine
// counterpart of TestMigrationRoundTripBitIdentical.
func TestSessionWireRoundTripBitIdentical(t *testing.T) {
	const frames = 16
	for _, mode := range []Mode{ModeProposed, ModeBaseline} {
		control, err := NewSession(0, speccedSource(t, medgen.Brain, medgen.Rotate, frames), testSessionConfig(mode), workload.NewLUT())
		if err != nil {
			t.Fatal(err)
		}
		var want []uint64
		for !control.Finished() {
			gop, err := control.EncodeGOP()
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, gop.Digest)
		}

		donor, err := NewSession(0, speccedSource(t, medgen.Brain, medgen.Rotate, frames), testSessionConfig(mode), workload.NewLUT())
		if err != nil {
			t.Fatal(err)
		}
		var got []uint64
		for i := 0; i < 2; i++ {
			gop, err := donor.EncodeGOP()
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, gop.Digest)
		}
		wire := wireSnapshotOf(t, donor)
		blob, err := json.Marshal(wire)
		if err != nil {
			t.Fatal(err)
		}
		var decoded SessionWire
		if err := json.Unmarshal(blob, &decoded); err != nil {
			t.Fatal(err)
		}
		snap, err := decoded.Restore(bindTestSource)
		if err != nil {
			t.Fatal(err)
		}
		resumed := snap.Session
		if resumed.NextFrame() != donor.NextFrame() {
			t.Fatalf("mode %v: resumed at frame %d, donor stopped at %d", mode, resumed.NextFrame(), donor.NextFrame())
		}
		for !resumed.Finished() {
			gop, err := resumed.EncodeGOP()
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, gop.Digest)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("mode %v: wire round-trip digests %v, uninterrupted %v", mode, got, want)
		}
	}
}

// TestSessionWireThroughServerImport drives the full serving path: a
// checkpoint taken from a live server crosses the wire and is imported
// into a second server, which finishes the session with the digest chain
// of an unmigrated run.
func TestSessionWireThroughServerImport(t *testing.T) {
	const frames = 16
	control := newMigrationServer(t)
	if _, err := control.Submit(speccedSource(t, medgen.Chest, medgen.Pan, frames), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	controlOuts, err := control.ServeAll(32)
	if err != nil {
		t.Fatal(err)
	}
	want := gopDigests(controlOuts, 0)

	donor := newMigrationServer(t)
	if _, err := donor.Submit(speccedSource(t, medgen.Chest, medgen.Pan, frames), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for i := 0; i < 2; i++ {
		out, err := donor.ServeGOP()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, out.GOPs[0].Digest)
	}
	wires, err := donor.CheckpointSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(wires) != 1 {
		t.Fatalf("%d checkpoints, want 1", len(wires))
	}
	blob, err := json.Marshal(wires[0])
	if err != nil {
		t.Fatal(err)
	}
	var decoded SessionWire
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	snap, err := decoded.Restore(bindTestSource)
	if err != nil {
		t.Fatal(err)
	}
	target := newMigrationServer(t)
	sess, err := target.Import(snap)
	if err != nil {
		t.Fatal(err)
	}
	if target.Imported() != 1 {
		t.Fatalf("target Imported() = %d", target.Imported())
	}
	targetOuts, err := target.ServeAll(32)
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, gopDigests(targetOuts, sess.ID)...)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("imported-continuation digests %v, control %v", got, want)
	}
}

// TestSessionWireDeterministic: the same session state encodes to the
// same bytes — the property the golden files (internal/dist) and
// content-addressed checkpoint dedup rely on.
func TestSessionWireDeterministic(t *testing.T) {
	build := func() []byte {
		sess, err := NewSession(0, speccedSource(t, medgen.Bone, medgen.Sweep, 8), testSessionConfig(ModeProposed), workload.NewLUT())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.EncodeGOP(); err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(wireSnapshotOf(t, sess))
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	if a, b := build(), build(); !bytes.Equal(a, b) {
		t.Fatalf("identical states wired to different bytes (%d vs %d)", len(a), len(b))
	}
}

// TestSessionWireRejectsUnknownVersion pins the versioning rule: decoders
// refuse wire versions they do not know instead of guessing.
func TestSessionWireRejectsUnknownVersion(t *testing.T) {
	sess, err := NewSession(0, speccedSource(t, medgen.Brain, medgen.Still, 8), testSessionConfig(ModeProposed), workload.NewLUT())
	if err != nil {
		t.Fatal(err)
	}
	w := wireSnapshotOf(t, sess)
	w.Version = SessionWireVersion + 1
	if _, err := w.Restore(bindTestSource); err == nil {
		t.Fatal("accepted an unknown wire version")
	}
}

// TestWireRequiresSpeccedSource: a session over an in-memory source that
// cannot be respecified is an explicit error, never a silent partial
// encoding — and CheckpointSessions skips it rather than failing the
// checkpointable sessions around it.
func TestWireRequiresSpeccedSource(t *testing.T) {
	sess := newTestSession(t, ModeProposed) // plain, spec-less test source
	snap := &SessionSnapshot{Session: sess, Class: sess.Class(), Frame: 0}
	if _, err := snap.Wire(); err == nil {
		t.Fatal("wired a session with an unrespecifiable source")
	}
	srv := newMigrationServer(t)
	if _, err := srv.Submit(testSource(t, medgen.Brain, medgen.Rotate, 8), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	wires, err := srv.CheckpointSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(wires) != 0 {
		t.Fatalf("checkpointed %d spec-less sessions", len(wires))
	}
}

// TestSessionSnapshotFieldsCovered is the schema tripwire: every exported
// field of SessionSnapshot must be consciously handled by the wire format
// (encoded, or excluded here by name with a reason). A field added
// without updating the wire fails this test instead of silently not
// surviving migration.
func TestSessionSnapshotFieldsCovered(t *testing.T) {
	handled := map[string]string{
		"Session":    "re-built by Restore from Source/Config/Encoder state",
		"Class":      "SessionWire.Class",
		"DonorID":    "SessionWire.DonorID",
		"Frame":      "SessionWire.Frame",
		"QPOffset":   "SessionWire.QPOffset",
		"Degraded":   "SessionWire.Degraded",
		"RateHalved": "SessionWire.RateHalved",
		"Demand":     "SessionWire.Demand",
		"Rung":       "SessionWire.Rung",
		"Waited":     "SessionWire.Waited",
		"SkipRound":  "SessionWire.SkipRound",
		"Tenant":     "SessionWire.Tenant",
		"Priority":   "SessionWire.Priority",
	}
	typ := reflect.TypeOf(SessionSnapshot{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if _, ok := handled[name]; !ok {
			t.Errorf("SessionSnapshot.%s is not mapped into the wire format — extend SessionWire (and bump SessionWireVersion if incompatible), then record it here", name)
		}
	}
	if typ.NumField() != len(handled) {
		t.Errorf("wire coverage list has %d entries for %d snapshot fields — remove stale entries", len(handled), typ.NumField())
	}

	// SessionConfig travels wholesale: marshalling must not hit an
	// unserializable field (a new func/chan field needs a json:"-" tag and
	// a conscious decision, like TimeModel).
	if _, err := json.Marshal(DefaultSessionConfig()); err != nil {
		t.Fatalf("SessionConfig no longer marshals: %v", err)
	}
}
