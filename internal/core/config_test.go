package core

import (
	"math"
	"testing"

	"repro/internal/mpsoc"
)

// TestNewServerRejectsNonFiniteConfig is the power-math regression test
// on the serving side: a NaN FPS passes the old `FPS <= 0` check (NaN
// comparisons are always false), turns the slot length into garbage, and
// poisons every downstream energy figure. Same for TimeScale, which
// multiplies every stage-D1 estimate.
func TestNewServerRejectsNonFiniteConfig(t *testing.T) {
	bad := []ServerConfig{
		{Platform: mpsoc.XeonE5_2667V4(), FPS: math.NaN()},
		{Platform: mpsoc.XeonE5_2667V4(), FPS: math.Inf(1)},
		{Platform: mpsoc.XeonE5_2667V4(), FPS: 24, TimeScale: math.NaN()},
		{Platform: mpsoc.XeonE5_2667V4(), FPS: 24, TimeScale: math.Inf(1)},
		{Platform: mpsoc.XeonE5_2667V4(), FPS: 24, TimeScale: -1},
	}
	for i, cfg := range bad {
		if _, err := NewServer(cfg); err == nil {
			t.Errorf("config %d: NewServer accepted non-finite FPS/TimeScale %+v", i, cfg)
		}
	}
}
