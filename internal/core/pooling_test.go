package core

import (
	"testing"

	"repro/internal/codec"
)

// TestPooledEncodeBitIdentical is the bit-identity contract of the
// pooled encode hot path: recycled buffers must never leak stale bytes
// into a bitstream. A pristine sequential run is the reference; the
// second run serves the same four sessions concurrently with every pool
// deliberately pre-poisoned — BitWriters parked mid-byte full of
// garbage, tileCoder scratch and stats set to sentinel values — and
// re-poisoned after every round, so each Get hands the encoder a dirty
// object. Any read of recycled state that is not first overwritten shows
// up as a digest or per-frame mismatch. Run under -race this also proves
// the pools are safe across the concurrent serving goroutines.
func TestPooledEncodeBitIdentical(t *testing.T) {
	ref := fourUserServer(t, true)
	refOuts, err := ref.ServeAll(10)
	if err != nil {
		t.Fatal(err)
	}

	codec.PoisonPools()
	dirty := fourUserServer(t, false)
	dirty.cfg.OnRound = func(*GOPOutcome) { codec.PoisonPools() }
	dirtyOuts, err := dirty.ServeAll(10)
	if err != nil {
		t.Fatal(err)
	}

	if len(refOuts) != len(dirtyOuts) {
		t.Fatalf("rounds: pristine %d, poisoned %d", len(refOuts), len(dirtyOuts))
	}
	for round := range refOuts {
		ro, do := refOuts[round], dirtyOuts[round]
		if !equalInts(ro.AdmittedUsers, do.AdmittedUsers) {
			t.Fatalf("round %d admitted: pristine %v, poisoned %v", round, ro.AdmittedUsers, do.AdmittedUsers)
		}
		for _, id := range ro.AdmittedUsers {
			rg, dg := ro.GOPs[id], do.GOPs[id]
			if rg == nil || dg == nil {
				t.Fatalf("round %d user %d missing GOP report", round, id)
			}
			if rg.Digest != dg.Digest {
				t.Fatalf("round %d user %d: bitstream digest %x (pristine) != %x (poisoned pools) — recycled buffer leaked into the bitstream",
					round, id, rg.Digest, dg.Digest)
			}
			if len(rg.Frames) != len(dg.Frames) {
				t.Fatalf("round %d user %d: frame counts differ", round, id)
			}
			for i := range rg.Frames {
				rf, df := rg.Frames[i], dg.Frames[i]
				if rf.Bits != df.Bits || rf.PSNR != df.PSNR || rf.Digest != df.Digest {
					t.Fatalf("round %d user %d frame %d: pristine (%d bits, %.3f dB, %x) != poisoned (%d bits, %.3f dB, %x)",
						round, id, i, rf.Bits, rf.PSNR, rf.Digest, df.Bits, df.PSNR, df.Digest)
				}
			}
		}
	}
	for i, sess := range dirty.Sessions() {
		if !sess.Finished() {
			t.Fatalf("poisoned-run session %d not finished", i)
		}
	}
}
