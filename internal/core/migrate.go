package core

import (
	"fmt"
)

// Session migration: the GOP-boundary handoff of a live session from one
// shard to another, the mechanism behind fleet elasticity (internal/serve
// drains a shard before removing it and re-homes its sessions).
//
// The protocol is three calls, all on the donor/target *Server:
//
//	Drain()           — the donor's serving loop stops at the next GOP
//	                    boundary (between rounds every session sits at
//	                    one) and Run returns with the sessions still
//	                    queued;
//	ExportSessions()  — every non-terminal session leaves the donor as a
//	                    SessionSnapshot (its record flips to
//	                    StateMigrated);
//	Import(snap)      — the target adopts the snapshot under a fresh
//	                    shard-local id, re-binding the session to the
//	                    target's per-class workload LUT.
//
// The snapshot names the serving state explicitly — frame cursor, QP
// offset, tiling degradation, rate halving, queue bookkeeping — and
// carries the live *Session for the heavyweight encoder state (the
// reconstructed reference frames, the QP adapter, the motion policy).
// The handoff is in-process: ownership of the Session transfers with the
// snapshot and exactly one server drives it at any time, so the encoded
// bitstream continues bit-identically from where the donor stopped.
// Cross-process migration would additionally serialize the encoder
// reference state; the snapshot struct is the seam where that would go.

// SessionSnapshot is one session's exportable serving state, produced by
// ExportSessions at a GOP boundary and consumed by Import on the target
// shard.
type SessionSnapshot struct {
	// Session is the live session; ownership transfers with the snapshot
	// (the donor must not touch it again).
	Session *Session
	// Class is the session's workload class — the routing key, and the
	// name of the per-class LUT the target re-binds the session to.
	Class string
	// DonorID is the shard-local id the session had on the donor (ids do
	// not survive migration; Import assigns a fresh one).
	DonorID int
	// Frame is the next-frame cursor — always a GOP boundary (or the end
	// of the video).
	Frame int
	// QPOffset, Degraded and RateHalved mirror the admission ladder's
	// service-level degradations (Session.SetQPOffset, Degrade,
	// HalveRate); they ride inside the Session and are surfaced here so
	// the target's record (and tests) can see them without poking the
	// session.
	QPOffset   int
	Degraded   bool
	RateHalved bool
	// Demand is the session's core demand as the donor last saw it
	// (sched.Result.DemandCores, or the placement hint before the first
	// competed round). Import seeds the target's record with it so the
	// target's LoadReport reflects the adopted session's true weight
	// before it competes there.
	Demand int
	// Rung, Waited and SkipRound are the donor record's admission-ladder
	// bookkeeping: the highest rung applied, the consecutive rounds
	// waited after the ladder ran out, and whether the session owes a
	// sit-out round for rate halving. Import restores them so a migrated
	// session neither re-degrades from scratch nor forgets a pending
	// skip.
	Rung, Waited int
	SkipRound    bool
	// Tenant and Priority carry the session's QoS identity ("" = the
	// default tenant; priority 0 = best effort) so a migrated or
	// failed-over session keeps its weighted core share and preemption
	// class on the target shard.
	Tenant   string
	Priority int
}

// Drain asks the serving loop to stop at the next GOP boundary: Run
// returns (cleanly, with its report) before serving another round, with
// every non-terminal session still queued — ready for ExportSessions.
// Between rounds every session sits at a GOP boundary (a round serves
// whole GOPs), so draining never cuts a GOP in half. Safe from any
// goroutine; a server that is not running drains trivially.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.wake()
}

// isDraining reports whether Drain was requested.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// ExportSessions removes every non-terminal session from the server and
// returns their snapshots in ascending donor-id order. Each exported
// record transitions to StateMigrated (observable through StateOf and
// the OnSessionState hook); the sessions themselves transfer to the
// caller, who must hand each to exactly one target's Import (or fail it
// via FailSession). It fails without exporting anything if a Run is
// active, or if any live session is stranded mid-GOP (only possible
// after a cancelled Run, whose server must not be reused anyway).
func (s *Server) ExportSessions() ([]*SessionSnapshot, error) {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: ExportSessions while Run is active")
	}
	// Validate before mutating: an export is all-or-nothing.
	for id, rec := range s.records {
		if rec.state == StateQueued && !rec.sess.AtGOPBoundary() {
			s.mu.Unlock()
			return nil, fmt.Errorf("core: session %d is mid-GOP (frame %d) — cannot export", id, rec.sess.NextFrame())
		}
	}
	var snaps []*SessionSnapshot
	var ids []int
	for id, rec := range s.records {
		if rec.state != StateQueued {
			continue
		}
		sess := rec.sess
		snaps = append(snaps, &SessionSnapshot{
			Session:    sess,
			Class:      sess.Class(),
			DonorID:    id,
			Frame:      sess.NextFrame(),
			QPOffset:   sess.QPOffset(),
			Degraded:   sess.Degraded(),
			RateHalved: sess.RateHalved(),
			Demand:     rec.lastDemand,
			Rung:       rec.rung,
			Waited:     rec.waited,
			SkipRound:  rec.skipRound,
			Tenant:     rec.tenant,
			Priority:   rec.priority,
		})
		rec.state = StateMigrated
		rec.sess = nil // ownership transferred; a stale reference is a bug
		ids = append(ids, id)
	}
	s.mu.Unlock()
	for _, id := range ids {
		s.notifyState(id, StateMigrated, nil)
	}
	return snaps, nil
}

// ExportSession removes one queued session from the server and returns
// its snapshot — the single-session, Drain-less narrow path behind
// proactive hot-shard rebalancing (internal/serve): a hot shard sheds a
// session to an idle peer without stopping its own serving loop. Unlike
// ExportSessions it may be called while a Run is active, but then only
// from the serving goroutine itself between rounds (in practice: the
// ServerConfig.OnRound hook), where every session sits at a GOP boundary
// and no encode is in flight; from any other goroutine it would race the
// loop. The exported record transitions to StateMigrated and the session
// transfers to the caller exactly as with ExportSessions: hand it to one
// target's Import, or fail it via FailSession.
func (s *Server) ExportSession(id int) (*SessionSnapshot, error) {
	s.mu.Lock()
	if id < 0 || id >= len(s.records) {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: no session %d", id)
	}
	rec := s.records[id]
	if rec.state != StateQueued {
		st := rec.state
		s.mu.Unlock()
		return nil, fmt.Errorf("core: session %d is %v, not exportable", id, st)
	}
	if !rec.sess.AtGOPBoundary() {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: session %d is mid-GOP (frame %d) — cannot export", id, rec.sess.NextFrame())
	}
	sess := rec.sess
	snap := &SessionSnapshot{
		Session:    sess,
		Class:      sess.Class(),
		DonorID:    id,
		Frame:      sess.NextFrame(),
		QPOffset:   sess.QPOffset(),
		Degraded:   sess.Degraded(),
		RateHalved: sess.RateHalved(),
		Demand:     rec.lastDemand,
		Rung:       rec.rung,
		Waited:     rec.waited,
		SkipRound:  rec.skipRound,
		Tenant:     rec.tenant,
		Priority:   rec.priority,
	}
	rec.state = StateMigrated
	rec.sess = nil // ownership transferred; a stale reference is a bug
	s.mu.Unlock()
	s.notifyState(id, StateMigrated, nil)
	return snap, nil
}

// Import adopts a session exported from another shard: the session gets
// a fresh shard-local id, is re-bound to this server's per-class
// workload LUT (its estimates now come from — and its observations feed
// — the target's store), and joins the arrival queue with its
// admission-ladder state intact. Import works on a Closed server: Close
// seals the queue against *new* sessions, but a migrated session was
// already admitted to the service and only changes shards. Safe from any
// goroutine, including while Run is serving.
func (s *Server) Import(snap *SessionSnapshot) (*Session, error) {
	if snap == nil || snap.Session == nil {
		return nil, fmt.Errorf("core: nil session snapshot")
	}
	sess := snap.Session
	if !sess.AtGOPBoundary() {
		return nil, fmt.Errorf("core: snapshot of session mid-GOP (frame %d)", sess.NextFrame())
	}
	s.mu.Lock()
	lut := s.store.ForClass(snap.Class)
	sess.adopt(len(s.records), lut, s.cfg.Workers)
	s.records = append(s.records, &sessionRecord{
		sess:       sess,
		lut:        lut,
		rung:       snap.Rung,
		waited:     snap.Waited,
		skipRound:  snap.SkipRound,
		imported:   true,
		lastDemand: snap.Demand,
		tenant:     snap.Tenant,
		priority:   snap.Priority,
	})
	s.mu.Unlock()
	s.wake()
	s.notifyState(sess.ID, StateQueued, nil)
	return sess, nil
}

// Imported reports how many of the server's sessions were adopted from
// other shards (Import) rather than submitted here. Safe from any
// goroutine.
func (s *Server) Imported() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, rec := range s.records {
		if rec.imported {
			n++
		}
	}
	return n
}

// FailSession departs one session as StateFailed with err — the
// migration layer's dead-letter path for a snapshot no live shard would
// accept. It applies to queued sessions and to exported (StateMigrated)
// records whose snapshot could not be placed; terminal sessions are left
// alone (an error reports the refusal). For a queued session it must not
// race a serving goroutine (like Abort, it fails while a Run is active);
// a migrated record is already terminal for this shard — its session
// pointer is gone and the serving loop skips it — so flipping it to
// failed is safe from any goroutine at any time, which is what lets the
// rebalancer dead-letter an unplaceable snapshot without stopping the
// donor's loop.
func (s *Server) FailSession(id int, err error) error {
	if err == nil {
		err = fmt.Errorf("core: session failed")
	}
	s.mu.Lock()
	if id < 0 || id >= len(s.records) {
		s.mu.Unlock()
		return fmt.Errorf("core: no session %d", id)
	}
	rec := s.records[id]
	switch {
	case rec.state == StateMigrated:
		// Dead-lettering an exported record touches no live session state.
	case rec.state == StateQueued && !s.running:
	case rec.state == StateQueued:
		s.mu.Unlock()
		return fmt.Errorf("core: FailSession while Run is active")
	default:
		st := rec.state
		s.mu.Unlock()
		return fmt.Errorf("core: session %d is %v, not failable", id, st)
	}
	rec.state = StateFailed
	rec.err = err
	s.mu.Unlock()
	s.notifyState(id, StateFailed, err)
	return nil
}
