package core

import (
	"context"

	"repro/internal/mpsoc"
	"repro/internal/workload"
)

// Shard is the narrow serving surface a fleet dispatcher needs from one
// platform's server: submit sessions, run the service loop, observe
// lifecycle state and queue depth, and abort when the shard is beyond
// repair. *Server is the canonical implementation; internal/serve builds
// its multi-shard Fleet on this interface so tests can substitute
// instrumented shards without a platform behind them.
//
// The concurrency contract mirrors Server's: Submit, Close, LoadReport,
// StateOf and Store are safe from any goroutine; Run must be the only
// serving goroutine; Abort must not overlap a Run.
type Shard interface {
	// Submit enqueues a session for service (see Server.Submit).
	Submit(src FrameSource, cfg SessionConfig) (*Session, error)
	// SubmitWith enqueues a session with explicit tenancy options — the
	// tenant id and priority class carried by the fleet's SubmitRequest
	// front door (see Server.SubmitWith). Submit is SubmitWith with the
	// zero options (default tenant, best-effort priority).
	SubmitWith(src FrameSource, cfg SessionConfig, opts SubmitOptions) (*Session, error)
	// Close closes the arrival queue; Run returns once the submitted
	// sessions reach terminal states.
	Close()
	// Run drives the online service loop until closed-and-drained,
	// cancellation, or a round-level error.
	Run(ctx context.Context) (*ServiceReport, error)
	// LoadReport reports the structured load signal: live sessions, their
	// summed core demand, the platform capacity, and the utilization.
	LoadReport() LoadReport
	// SessionDemand reports one queued session's core demand (0 for
	// terminal or unknown ids) — what a rebalancer sheds by.
	SessionDemand(id int) int
	// StateOf reports the lifecycle state of a session by id.
	StateOf(id int) (SessionState, bool)
	// Store exposes the shard's per-class workload LUT store.
	Store() *workload.Store
	// EnergyTotals reports the shard's cumulative platform ledger —
	// energy, simulated time, peak power, deadline misses — over every
	// settled round.
	EnergyTotals() mpsoc.Totals
	// Abort fails every non-terminal session (dispatcher give-up).
	Abort(err error) ([]int, error)

	// The migration surface (see migrate.go): Drain stops the serving
	// loop at the next GOP boundary with the sessions still queued,
	// ExportSessions hands them out as snapshots, ExportSession hands out
	// a single one (the Drain-less rebalancing path — callable during a
	// Run, but only from the serving goroutine between rounds), Import
	// adopts a snapshot from another shard, and FailSession is the
	// dead-letter path for a snapshot no shard would take. ExportSessions
	// must not overlap a Run, and neither may FailSession on a *queued*
	// session (failing an already-exported record is safe anytime); Drain
	// and Import are safe from any goroutine.
	Drain()
	ExportSessions() ([]*SessionSnapshot, error)
	ExportSession(id int) (*SessionSnapshot, error)
	Import(snap *SessionSnapshot) (*Session, error)
	FailSession(id int, err error) error
	// Imported counts sessions adopted from other shards.
	Imported() int

	// CheckpointSessions wires every checkpointable queued session
	// non-destructively (see wire.go) — the cross-process crash-recovery
	// surface. Same calling contract as ExportSession: during a Run, only
	// from the serving goroutine between rounds.
	CheckpointSessions() ([]*SessionWire, error)
}

var _ Shard = (*Server)(nil)
