package core

import (
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/codec"
	"repro/internal/medgen"
	"repro/internal/mpsoc"
	"repro/internal/sched"
	"repro/internal/tiling"
	"repro/internal/workload"
)

// testSource builds a lazy FrameSource over a small synthetic video.
func testSource(t *testing.T, class medgen.Class, motion medgen.MotionKind, frames int) FrameSource {
	t.Helper()
	cfg := medgen.Default()
	cfg.Width, cfg.Height = 256, 192
	cfg.Class = class
	cfg.Motion = motion
	cfg.Frames = frames
	cfg.Seed = int64(class)*100 + int64(motion) + 1
	g, err := medgen.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := SourceFromGenerator(g, frames, cfg.FPS, class.String())
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// testSessionConfig shrinks geometry-dependent parameters for 256×192.
func testSessionConfig(mode Mode) SessionConfig {
	cfg := DefaultSessionConfig()
	cfg.Mode = mode
	cfg.Codec.GOPSize = 4
	cfg.Codec.IntraPeriod = 8
	cfg.Retile.MinTileW, cfg.Retile.MinTileH = 48, 48
	cfg.BaselineTiles = 4
	return cfg
}

func newTestSession(t *testing.T, mode Mode) *Session {
	t.Helper()
	src := testSource(t, medgen.Brain, medgen.Rotate, 8)
	s, err := NewSession(0, src, testSessionConfig(mode), workload.NewLUT())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSourceFromSequenceValidation(t *testing.T) {
	if _, err := SourceFromSequence(nil, "x"); err == nil {
		t.Fatal("accepted nil sequence")
	}
}

func TestSessionValidation(t *testing.T) {
	src := testSource(t, medgen.Brain, medgen.Still, 4)
	if _, err := NewSession(0, nil, testSessionConfig(ModeProposed), workload.NewLUT()); err == nil {
		t.Fatal("accepted nil source")
	}
	if _, err := NewSession(0, src, testSessionConfig(ModeProposed), nil); err == nil {
		t.Fatal("accepted nil LUT")
	}
	bad := testSessionConfig(ModeProposed)
	bad.Retile.MinTileW = 200 // 3×200 > 256
	if _, err := NewSession(0, src, bad, workload.NewLUT()); err == nil {
		t.Fatal("accepted invalid retile config")
	}
}

func TestSessionEncodesWholeVideo(t *testing.T) {
	s := newTestSession(t, ModeProposed)
	var frames int
	for !s.Finished() {
		fr, err := s.EncodeNextFrame()
		if err != nil {
			t.Fatal(err)
		}
		if fr.Frame != frames {
			t.Fatalf("frame number %d, want %d", fr.Frame, frames)
		}
		if fr.Bits <= 0 || fr.PSNR <= 0 {
			t.Fatalf("frame %d: degenerate stats %+v", frames, fr)
		}
		frames++
	}
	if frames != 8 {
		t.Fatalf("encoded %d frames", frames)
	}
	if _, err := s.EncodeNextFrame(); err == nil {
		t.Fatal("encode after finish succeeded")
	}
}

func TestSessionMeetsQualityConstraint(t *testing.T) {
	s := newTestSession(t, ModeProposed)
	min := s.Config().Constraints.MinPSNR
	for !s.Finished() {
		fr, err := s.EncodeNextFrame()
		if err != nil {
			t.Fatal(err)
		}
		// Allow a small undershoot while Algorithm 1 converges.
		if fr.PSNR < min-2 {
			t.Fatalf("frame %d PSNR %.1f violates constraint %.1f", fr.Frame, fr.PSNR, min)
		}
	}
}

func TestSessionGOPStructure(t *testing.T) {
	s := newTestSession(t, ModeProposed)
	gop0, err := s.EncodeGOP()
	if err != nil {
		t.Fatal(err)
	}
	if len(gop0.Frames) != 4 {
		t.Fatalf("GOP frames = %d", len(gop0.Frames))
	}
	if gop0.Frames[0].Type != codec.FrameI {
		t.Fatal("first frame not I")
	}
	for _, fr := range gop0.Frames[1:] {
		if fr.Type != codec.FrameP {
			t.Fatal("non-first frame not P")
		}
	}
	if gop0.Grid == nil || gop0.Grid.Validate() != nil {
		t.Fatal("GOP grid invalid")
	}
	if len(gop0.Contents) != gop0.Grid.NumTiles() {
		t.Fatal("contents do not match grid")
	}
	// Second GOP re-tiles (possibly to the same structure) and continues.
	gop1, err := s.EncodeGOP()
	if err != nil {
		t.Fatal(err)
	}
	if gop1.Index != 1 {
		t.Fatalf("GOP index = %d", gop1.Index)
	}
	if !s.Finished() {
		t.Fatal("8 frames should be done after 2 GOPs of 4")
	}
}

func TestProposedUsesContentAwareGrid(t *testing.T) {
	s := newTestSession(t, ModeProposed)
	if _, err := s.EncodeNextFrame(); err != nil {
		t.Fatal(err)
	}
	grid := s.Grid()
	// The content-aware grid must have heterogeneous tile sizes (grown
	// corners vs center tiles).
	sizes := make(map[int]bool)
	for _, tile := range grid.Tiles {
		sizes[tile.Area()] = true
	}
	if len(sizes) < 2 {
		t.Fatalf("content-aware grid has uniform tiles: %v", grid.Tiles)
	}
}

func TestBaselineUsesUniformGrid(t *testing.T) {
	s := newTestSession(t, ModeBaseline)
	if _, err := s.EncodeNextFrame(); err != nil {
		t.Fatal(err)
	}
	grid := s.Grid()
	if grid.NumTiles() != 4 {
		t.Fatalf("baseline tiles = %d, want BaselineTiles=4", grid.NumTiles())
	}
	// Uniform: all tiles within one sample of each other.
	for _, tile := range grid.Tiles[1:] {
		if absInt(tile.W-grid.Tiles[0].W) > 1 || absInt(tile.H-grid.Tiles[0].H) > 1 {
			t.Fatalf("baseline grid not uniform: %v", grid.Tiles)
		}
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestEstimateThreadsUsesLUT(t *testing.T) {
	s := newTestSession(t, ModeProposed)
	if err := s.PrepareForEstimation(); err != nil {
		t.Fatal(err)
	}
	threads, err := s.EstimateThreads()
	if err != nil {
		t.Fatal(err)
	}
	if len(threads) != s.Grid().NumTiles() {
		t.Fatalf("%d threads for %d tiles", len(threads), s.Grid().NumTiles())
	}
	for _, th := range threads {
		if th.TimeFmax <= 0 {
			t.Fatalf("thread %+v has no estimate", th)
		}
		if th.User != 0 {
			t.Fatalf("thread user = %d", th.User)
		}
	}
	// After encoding a GOP the LUT holds real observations and estimates
	// should be in a realistic range (well under a second per tile).
	if _, err := s.EncodeGOP(); err != nil {
		t.Fatal(err)
	}
	threads2, err := s.EstimateThreads()
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range threads2 {
		if th.TimeFmax <= 0 || th.TimeFmax > time.Second {
			t.Fatalf("post-warmup estimate %v implausible", th.TimeFmax)
		}
	}
}

func TestServerServesMultipleUsers(t *testing.T) {
	platform := mpsoc.XeonE5_2667V4()
	srv, err := NewServer(ServerConfig{Platform: platform, FPS: 24})
	if err != nil {
		t.Fatal(err)
	}
	classes := []medgen.Class{medgen.Brain, medgen.Chest, medgen.Bone}
	for i := 0; i < 3; i++ {
		src := testSource(t, classes[i], medgen.Rotate, 4)
		if _, err := srv.AddSession(src, testSessionConfig(ModeProposed)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := srv.ServeGOP()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.AdmittedUsers) == 0 {
		t.Fatal("no users admitted on an empty 32-core platform")
	}
	if out.Energy == nil || out.Energy.EnergyJ <= 0 {
		t.Fatal("no energy accounting")
	}
	for _, id := range out.AdmittedUsers {
		if out.GOPs[id] == nil {
			t.Fatalf("admitted user %d has no GOP report", id)
		}
		if out.GOPs[id].MeanPSNR < 30 {
			t.Fatalf("user %d PSNR %.1f", id, out.GOPs[id].MeanPSNR)
		}
	}
}

func TestServerServeAllCompletes(t *testing.T) {
	srv, err := NewServer(ServerConfig{Platform: mpsoc.XeonE5_2667V4(), FPS: 24})
	if err != nil {
		t.Fatal(err)
	}
	src := testSource(t, medgen.Brain, medgen.Pan, 8)
	if _, err := srv.AddSession(src, testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	outs, err := srv.ServeAll(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 { // 8 frames / GOP 4
		t.Fatalf("%d rounds, want 2", len(outs))
	}
	if !srv.Sessions()[0].Finished() {
		t.Fatal("session not finished")
	}
}

func TestServerSharesLUTAcrossSameClassSessions(t *testing.T) {
	srv, err := NewServer(ServerConfig{Platform: mpsoc.XeonE5_2667V4(), FPS: 24})
	if err != nil {
		t.Fatal(err)
	}
	a := testSource(t, medgen.Brain, medgen.Rotate, 4)
	b := testSource(t, medgen.Brain, medgen.Pan, 4)
	if _, err := srv.AddSession(a, testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AddSession(b, testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ServeGOP(); err != nil {
		t.Fatal(err)
	}
	lut := srv.Store().ForClass("brain")
	if lut.Observations() == 0 {
		t.Fatal("shared brain LUT has no observations")
	}
	if len(srv.Store().Classes()) != 1 {
		t.Fatalf("classes = %v, want only brain", srv.Store().Classes())
	}
}

func TestServerBaselineAllocator(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Platform:  mpsoc.XeonE5_2667V4(),
		FPS:       24,
		Allocator: sched.AllocateBaseline,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := testSource(t, medgen.Chest, medgen.Rotate, 4)
	if _, err := srv.AddSession(src, testSessionConfig(ModeBaseline)); err != nil {
		t.Fatal(err)
	}
	out, err := srv.ServeGOP()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.AdmittedUsers) != 1 {
		t.Fatalf("admitted = %v", out.AdmittedUsers)
	}
	// One thread per core: cores used equals the baseline tile count.
	if out.Allocation.CoresUsed != 4 {
		t.Fatalf("cores used = %d, want 4", out.Allocation.CoresUsed)
	}
}

func TestTileContentsDriveQPs(t *testing.T) {
	// Corner (low-texture) tiles must get higher QPs than center tiles on
	// the first frame of a GOP — the heart of stage C.
	s := newTestSession(t, ModeProposed)
	if _, err := s.EncodeNextFrame(); err != nil {
		t.Fatal(err)
	}
	var lowTexQP, highTexQP []int
	for i, tc := range s.Contents() {
		switch tc.Texture {
		case analysis.TextureLow:
			lowTexQP = append(lowTexQP, s.qps[i])
		case analysis.TextureHigh:
			highTexQP = append(highTexQP, s.qps[i])
		}
	}
	if len(lowTexQP) == 0 || len(highTexQP) == 0 {
		t.Skip("content did not produce both texture classes at this geometry")
	}
	for _, lo := range lowTexQP {
		for _, hi := range highTexQP {
			if lo < hi {
				t.Fatalf("low-texture QP %d below high-texture QP %d", lo, hi)
			}
		}
	}
}

func TestRetileRegionsMatchContent(t *testing.T) {
	s := newTestSession(t, ModeProposed)
	if _, err := s.EncodeNextFrame(); err != nil {
		t.Fatal(err)
	}
	var corner, center tiling.Tile
	foundCorner, foundCenter := false, false
	for _, tile := range s.Grid().Tiles {
		switch tile.Region {
		case tiling.RegionCorner:
			corner, foundCorner = tile, true
		case tiling.RegionCenter:
			center, foundCenter = tile, true
		}
	}
	if !foundCorner || !foundCenter {
		t.Fatal("grid missing corner or center tiles")
	}
	_ = corner
	_ = center
}
