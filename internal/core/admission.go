package core

import (
	"bytes"
	"encoding/binary"
	"sort"

	"repro/internal/sched"
)

// AdmissionConfig parametrizes the overload-aware admission ladder. When
// the stage-D2 allocator cannot admit every live session, the server
// degrades the refused sessions' service level step by step instead of
// letting them starve silently:
//
//	rung 1 — newcomers fall back to the uniform tiling (Session.Degrade);
//	rung 2+ — the session's QP is offset upward in QPOffsetStep increments
//	          up to MaxQPOffset, shrinking its estimated workload;
//	next    — the session's frame rate is halved (Session.HalveRate): it is
//	          served every other GOP round, so a heavily-overloaded platform
//	          keeps it connected at half rate instead of starving it;
//	then    — the session queues, re-competing every round, for at most
//	          MaxQueueRounds rounds before it is rejected for good.
//
// Each escalation re-runs stage D1 on the degraded configuration and the
// allocator gets another look, all within the same round — a newcomer that
// fits at a lower service level is admitted in the round it arrived.
type AdmissionConfig struct {
	// Enabled turns the ladder on. Disabled (the zero value), refused
	// sessions keep their full-quality configuration and wait
	// indefinitely — the historical saturated-queue behavior.
	Enabled bool
	// QPOffsetStep is the QP increment per escalation (0 → 4).
	QPOffsetStep int
	// MaxQPOffset bounds the total QP degradation (0 → 8).
	MaxQPOffset int
	// MaxQueueRounds is how many consecutive rounds a fully-degraded
	// session may wait for admission before being rejected (0 → 8).
	MaxQueueRounds int
	// RecoverAfterRounds enables rate-rung recovery: a rate-halved
	// session returns to full rate (Session.RestoreRate) once the
	// platform has held spare allocation headroom for it — no session
	// refused, spare cores ≥ the session's own demand — for this many
	// consecutive rounds. Any round without headroom resets the count
	// (hysteresis against flapping). 0 (the default) leaves recovery
	// off: HalveRate stays one-way, the historical behavior. Recovery
	// runs whenever it is non-zero, even with Enabled false, so manually
	// halved sessions (tests, external policies) recover too.
	RecoverAfterRounds int
}

// withDefaults fills the zero values.
func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.QPOffsetStep <= 0 {
		c.QPOffsetStep = 4
	}
	if c.MaxQPOffset <= 0 {
		c.MaxQPOffset = 8
	}
	if c.MaxQueueRounds <= 0 {
		c.MaxQueueRounds = 8
	}
	return c
}

// Admission-ladder rungs recorded per session. rung 0 is full service;
// rungDegradedTiling and up mark applied degradations. The final rung
// after every QP step — frame-rate halving — is tracked on the session
// itself (Session.RateHalved).
const (
	rungNone = iota
	rungDegradedTiling
	rungQPOffset // rungQPOffset+k means a QP offset of (k+1)·QPOffsetStep
)

// allocate runs stage D2 over the live sessions, escalating the admission
// ladder until the allocation stops improving. It returns the final
// allocation and the ids whose queue deadline expired this round (their
// records are already StateRejected).
func (s *Server) allocate(live []*roundSession) (*sched.Result, []int, error) {
	byID := make(map[int]*roundSession, len(live))
	input := func() sched.Input {
		in := sched.Input{Platform: s.cfg.Platform, FPS: s.cfg.FPS}
		for _, rs := range live {
			in.Users = append(in.Users, s.demandOf(rs))
		}
		return in
	}
	for _, rs := range live {
		byID[rs.rec.sess.ID] = rs
	}

	// Allocator memoization: the allocator is a deterministic function of
	// the roster (who competes, what their tiles cost, which ladder rungs
	// apply), so when this round's fingerprint matches the previous
	// round's — and that round admitted everyone, making the ladder a
	// no-op — the cached result is the answer. Any roster change (join,
	// depart, retile, QP rung, degrade, rate-halve, migration import)
	// perturbs the fingerprint and forces a fresh solve. Keys, not raw
	// durations, represent demand: estimates are pure functions of the
	// keys given a quiescent LUT, and within a key's calibration drift the
	// admission decision is stable (DESIGN.md §14).
	fp := appendAllocFingerprint(s.fpScratch[:0], live)
	s.fpScratch = fp
	if s.allocCached != nil && bytes.Equal(fp, s.allocFP) {
		return s.finishRound(s.allocCached, byID, live)
	}

	alloc, err := s.cfg.Allocator(input())
	if err != nil {
		return nil, nil, err
	}

	if s.cfg.Admission.Enabled {
		// One allocator pass per ladder escalation: degrade first, then
		// QP offsets until MaxQPOffset, then the frame-rate rung. Bounded
		// by the rung count, so a session that cannot fit at any service
		// level stops escalating.
		maxPasses := 3 + s.cfg.Admission.MaxQPOffset/s.cfg.Admission.QPOffsetStep
		for pass := 0; pass < maxPasses && len(alloc.Rejected) > 0; pass++ {
			escalated, demandChanged := false, false
			for _, id := range alloc.Rejected {
				rs := byID[id]
				applied, changed, err := s.escalate(rs)
				if err != nil {
					return nil, nil, err
				}
				if changed {
					// The degraded configuration changes the session's
					// grid and/or keys: re-run stage D1 on it.
					if err := s.estimate(rs); err != nil {
						return nil, nil, err
					}
					demandChanged = true
				}
				if applied {
					escalated = true
				}
			}
			if !escalated {
				break
			}
			if !demandChanged {
				// Only the frame-rate rung applied: it changes nothing
				// about this round's demand (its effect starts when the
				// session is next served), so re-running the allocator on
				// byte-identical input would just reproduce the rejection.
				break
			}
			if alloc, err = s.cfg.Allocator(input()); err != nil {
				return nil, nil, err
			}
		}
	}

	// Cache a clean solve for the next round; a round with rejections must
	// re-solve every round so drifting estimates can admit queued
	// sessions. Re-fingerprint: the ladder may have changed session state
	// (and thus rs.keys) since the entry fingerprint was taken.
	if len(alloc.Rejected) == 0 {
		s.allocFP = appendAllocFingerprint(s.allocFP[:0], live)
		s.allocCached = alloc
	} else {
		s.allocCached = nil
	}
	return s.finishRound(alloc, byID, live)
}

// appendAllocFingerprint serializes the roster state the allocator's
// result depends on: for each live session (in roster order) its id,
// ladder rung, QP offset, degrade/rate flags, and the per-tile workload
// keys stage D1 priced. Byte-equal fingerprints mean the allocator would
// be solving the same problem (modulo within-key calibration drift).
func appendAllocFingerprint(dst []byte, live []*roundSession) []byte {
	for _, rs := range live {
		sess := rs.rec.sess
		dst = binary.AppendVarint(dst, int64(sess.ID))
		dst = binary.AppendVarint(dst, int64(rs.rec.rung))
		dst = binary.AppendVarint(dst, int64(sess.QPOffset()))
		var flags byte
		if sess.Degraded() {
			flags |= 1
		}
		if sess.RateHalved() {
			flags |= 2
		}
		dst = append(dst, flags)
		dst = binary.AppendVarint(dst, int64(len(rs.keys)))
		for _, k := range rs.keys {
			dst = append(dst, byte(k.AreaClass), byte(k.Texture), byte(k.Motion), byte(k.QPBucket), byte(k.SearchLevel))
		}
	}
	return dst
}

// finishRound applies the post-allocation queue bookkeeping shared by
// fresh and memoized results: admitted sessions reset their wait;
// refused sessions at the end of the ladder accumulate it and time out.
func (s *Server) finishRound(alloc *sched.Result, byID map[int]*roundSession, live []*roundSession) (*sched.Result, []int, error) {
	var timedOut []int
	s.mu.Lock()
	for _, rs := range live {
		// Remember each competitor's core demand — the headroom bar its
		// rate-rung recovery must clear on the rounds it sits out.
		if d, ok := alloc.DemandCores[rs.rec.sess.ID]; ok {
			rs.rec.lastDemand = d
		}
	}
	for _, id := range alloc.Admitted {
		byID[id].rec.waited = 0
	}
	for _, id := range alloc.Rejected {
		rec := byID[id].rec
		rec.waited++
		if s.cfg.Admission.Enabled && rec.waited > s.cfg.Admission.MaxQueueRounds {
			rec.state = StateRejected
			timedOut = append(timedOut, id)
		}
	}
	s.mu.Unlock()
	sort.Ints(timedOut)
	for _, id := range timedOut {
		s.notifyState(id, StateRejected, nil)
	}
	return alloc, timedOut, nil
}

// escalate applies the next admission-ladder rung to a refused session.
// It reports whether a degradation was applied (false once the ladder is
// exhausted and the session can only queue) and whether the degradation
// changed the session's current-round demand — only then is a stage-D1
// re-estimate and another allocator pass worth running.
func (s *Server) escalate(rs *roundSession) (applied, demandChanged bool, err error) {
	cfg := s.cfg.Admission
	sess := rs.rec.sess
	for {
		switch {
		case rs.rec.rung == rungNone:
			rs.rec.rung = rungDegradedTiling
			// Tiling degradation applies to newcomers on the proposed
			// pipeline; sessions already streaming (or already uniform)
			// skip to the QP rung.
			if sess.NextFrame() == 0 && sess.Config().Mode == ModeProposed && !sess.Config().DisableRetile {
				if err := sess.Degrade(); err != nil {
					return false, false, err
				}
				return true, true, nil
			}
		case sess.QPOffset() < cfg.MaxQPOffset:
			rs.rec.rung++
			off := sess.QPOffset() + cfg.QPOffsetStep
			if off > cfg.MaxQPOffset {
				off = cfg.MaxQPOffset
			}
			sess.SetQPOffset(off)
			return true, true, nil
		case !sess.RateHalved():
			// Frame-rate rung: the session is served every other GOP
			// round from now on. Its per-round demand is unchanged (the
			// allocator sees the same threads when it competes), but on
			// alternating rounds it is absent entirely, freeing its share
			// of the platform for the sessions it was crowding out.
			rs.rec.rung++
			sess.HalveRate()
			return true, false, nil
		default:
			return false, false, nil
		}
	}
}
