package core

import (
	"bytes"
	"encoding/binary"
	"sort"

	"repro/internal/mpsoc"
	"repro/internal/sched"
)

// AdmissionConfig parametrizes the overload-aware admission ladder. When
// the stage-D2 allocator cannot admit every live session, the server
// degrades the refused sessions' service level step by step instead of
// letting them starve silently:
//
//	rung 1 — newcomers fall back to the uniform tiling (Session.Degrade);
//	rung 2+ — the session's QP is offset upward in QPOffsetStep increments
//	          up to MaxQPOffset, shrinking its estimated workload;
//	next    — the session's frame rate is halved (Session.HalveRate): it is
//	          served every other GOP round, so a heavily-overloaded platform
//	          keeps it connected at half rate instead of starving it;
//	then    — the session queues, re-competing every round, for at most
//	          MaxQueueRounds rounds before it is rejected for good.
//
// Each escalation re-runs stage D1 on the degraded configuration and the
// allocator gets another look, all within the same round — a newcomer that
// fits at a lower service level is admitted in the round it arrived.
type AdmissionConfig struct {
	// Enabled turns the ladder on. Disabled (the zero value), refused
	// sessions keep their full-quality configuration and wait
	// indefinitely — the historical saturated-queue behavior.
	Enabled bool
	// QPOffsetStep is the QP increment per escalation (0 → 4).
	QPOffsetStep int
	// MaxQPOffset bounds the total QP degradation (0 → 8).
	MaxQPOffset int
	// MaxQueueRounds is how many consecutive rounds a fully-degraded
	// session may wait for admission before being rejected (0 → 8).
	MaxQueueRounds int
	// RecoverAfterRounds enables rate-rung recovery: a rate-halved
	// session returns to full rate (Session.RestoreRate) once the
	// platform has held spare allocation headroom for it — no session
	// refused, spare cores ≥ the session's own demand — for this many
	// consecutive rounds. Any round without headroom resets the count
	// (hysteresis against flapping). 0 (the default) leaves recovery
	// off: HalveRate stays one-way, the historical behavior. Recovery
	// runs whenever it is non-zero, even with Enabled false, so manually
	// halved sessions (tests, external policies) recover too.
	RecoverAfterRounds int
}

// withDefaults fills the zero values.
func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.QPOffsetStep <= 0 {
		c.QPOffsetStep = 4
	}
	if c.MaxQPOffset <= 0 {
		c.MaxQPOffset = 8
	}
	if c.MaxQueueRounds <= 0 {
		c.MaxQueueRounds = 8
	}
	return c
}

// Admission-ladder rungs recorded per session. rung 0 is full service;
// rungDegradedTiling and up mark applied degradations. The final rung
// after every QP step — frame-rate halving — is tracked on the session
// itself (Session.RateHalved).
const (
	rungNone = iota
	rungDegradedTiling
	rungQPOffset // rungQPOffset+k means a QP offset of (k+1)·QPOffsetStep
)

// allocate runs stage D2 over the live sessions, escalating the admission
// ladder until the allocation stops improving. It returns the final
// allocation, the ids whose queue deadline expired this round (their
// records are already StateRejected), and the ids pushed down the ladder
// under priority preemption (ascending).
func (s *Server) allocate(live []*roundSession) (*sched.Result, []int, []int, error) {
	byID := make(map[int]*roundSession, len(live))
	for _, rs := range live {
		byID[rs.rec.sess.ID] = rs
	}

	// Allocator memoization: the allocator is a deterministic function of
	// the roster (who competes, what their tiles cost, which ladder rungs
	// apply, and — with tenancy — each session's tenant and priority), so
	// when this round's fingerprint matches the previous round's — and
	// that round admitted everyone, making the ladder a no-op — the
	// cached result is the answer. Any roster change (join, depart,
	// retile, QP rung, degrade, rate-halve, migration import) perturbs
	// the fingerprint and forces a fresh solve. Keys, not raw durations,
	// represent demand: estimates are pure functions of the keys given a
	// quiescent LUT, and within a key's calibration drift the admission
	// decision is stable (DESIGN.md §14).
	fp := appendAllocFingerprint(s.fpScratch[:0], live)
	s.fpScratch = fp
	if s.allocCached != nil && bytes.Equal(fp, s.allocFP) {
		alloc, timedOut, err := s.finishRound(s.allocCached, byID, live)
		return alloc, timedOut, nil, err
	}

	alloc, err := s.solveTenants(live)
	if err != nil {
		return nil, nil, nil, err
	}

	preempted := map[int]bool{}
	if s.cfg.Admission.Enabled {
		// One allocator pass per ladder escalation: degrade first, then
		// QP offsets until MaxQPOffset, then the frame-rate rung. Bounded
		// by the rung count, so a session that cannot fit at any service
		// level stops escalating. Sessions refused while a strictly
		// higher-priority session holds admission were displaced by it —
		// priority-ordered admission seated the newcomer first — so their
		// escalation is the preemption pushdown and is reported as such.
		maxPasses := 3 + s.cfg.Admission.MaxQPOffset/s.cfg.Admission.QPOffsetStep
		for pass := 0; pass < maxPasses && len(alloc.Rejected) > 0; pass++ {
			topPriority := maxAdmittedPriority(alloc, byID)
			escalated, demandChanged := false, false
			for _, id := range alloc.Rejected {
				rs := byID[id]
				applied, changed, err := s.escalate(rs)
				if err != nil {
					return nil, nil, nil, err
				}
				if changed {
					// The degraded configuration changes the session's
					// grid and/or keys: re-run stage D1 on it.
					if err := s.estimate(rs); err != nil {
						return nil, nil, nil, err
					}
					demandChanged = true
				}
				if applied {
					escalated = true
					if rs.rec.priority < topPriority {
						preempted[id] = true
					}
				}
			}
			if !escalated {
				break
			}
			if !demandChanged {
				// Only the frame-rate rung applied: it changes nothing
				// about this round's demand (its effect starts when the
				// session is next served), so re-running the allocator on
				// byte-identical input would just reproduce the rejection.
				break
			}
			if alloc, err = s.solveTenants(live); err != nil {
				return nil, nil, nil, err
			}
		}
	}

	// Cache a clean solve for the next round; a round with rejections must
	// re-solve every round so drifting estimates can admit queued
	// sessions. Re-fingerprint: the ladder may have changed session state
	// (and thus rs.keys) since the entry fingerprint was taken.
	if len(alloc.Rejected) == 0 {
		s.allocFP = appendAllocFingerprint(s.allocFP[:0], live)
		s.allocCached = alloc
	} else {
		s.allocCached = nil
	}
	var pushed []int
	for id := range preempted {
		pushed = append(pushed, id)
	}
	sort.Ints(pushed)
	allocOut, timedOut, err := s.finishRound(alloc, byID, live)
	return allocOut, timedOut, pushed, err
}

// maxAdmittedPriority returns the highest priority class among the
// admitted sessions (0 when none).
func maxAdmittedPriority(alloc *sched.Result, byID map[int]*roundSession) int {
	top := 0
	for _, id := range alloc.Admitted {
		if p := byID[id].rec.priority; p > top {
			top = p
		}
	}
	return top
}

// solveTenants runs one stage-D2 solve over the live roster. With zero or
// one distinct tenants the allocator sees the whole platform — the
// historical single-tenant path, byte-identical to the pre-tenancy
// behavior. With several, platform cores are first apportioned across the
// tenants by registry weight (work-conserving largest remainder, capped
// at each tenant's demand — sched.ApportionCores) and each tenant's
// sessions are solved on their own contiguous core slice: a flooding
// tenant competes only within its weighted share, so it cannot starve a
// light one (DESIGN.md §15).
func (s *Server) solveTenants(live []*roundSession) (*sched.Result, error) {
	multi := false
	for _, rs := range live[1:] {
		if rs.rec.tenant != live[0].rec.tenant {
			multi = true
			break
		}
	}
	if !multi {
		in := sched.Input{Platform: s.cfg.Platform, FPS: s.cfg.FPS}
		for _, rs := range live {
			in.Users = append(in.Users, s.demandOf(rs))
		}
		return s.cfg.Allocator(in)
	}

	// Group the roster by tenant; tenants solve in sorted-id order so the
	// core-slice layout is deterministic.
	users := make(map[string][]sched.UserDemand)
	var order []string
	for _, rs := range live {
		t := rs.rec.tenant
		if _, ok := users[t]; !ok {
			order = append(order, t)
		}
		users[t] = append(users[t], s.demandOf(rs))
	}
	sort.Strings(order)
	weights := make(map[string]int, len(order))
	demands := make(map[string]int, len(order))
	for _, t := range order {
		weights[t] = 1
		if s.cfg.Tenancy != nil {
			weights[t] = s.cfg.Tenancy.Weight(t)
		}
		for _, u := range users[t] {
			demands[t] += u.CoresNeeded(s.cfg.FPS)
		}
	}
	shares := sched.ApportionCores(s.cfg.Platform.Cores, order, weights, demands)

	merged := &sched.Result{
		Plans:       make([]mpsoc.CorePlan, s.cfg.Platform.Cores),
		UserCores:   make(map[int]int),
		DemandCores: make(map[int]int),
	}
	offset := 0
	for _, t := range order {
		share := shares[t]
		if share <= 0 {
			// No entitlement this round: the tenant's sessions are
			// refused without a solve and take the ladder like any other
			// refusal.
			for _, u := range users[t] {
				merged.Rejected = append(merged.Rejected, u.User)
				merged.DemandCores[u.User] = u.CoresNeeded(s.cfg.FPS)
			}
			continue
		}
		sub := *s.cfg.Platform
		sub.Cores = share
		r, err := s.cfg.Allocator(sched.Input{Platform: &sub, FPS: s.cfg.FPS, Users: users[t]})
		if err != nil {
			return nil, err
		}
		merged.Admitted = append(merged.Admitted, r.Admitted...)
		merged.Rejected = append(merged.Rejected, r.Rejected...)
		for _, a := range r.Assignments {
			a.Core += offset
			merged.Assignments = append(merged.Assignments, a)
		}
		copy(merged.Plans[offset:offset+share], r.Plans)
		merged.CoresUsed += r.CoresUsed
		for u, n := range r.UserCores {
			merged.UserCores[u] = n
		}
		for u, n := range r.DemandCores {
			merged.DemandCores[u] = n
		}
		offset += share
	}
	// Cores beyond the apportioned shares carry no work: power-gated for
	// the slot, mirroring the allocators' own idle-core plans.
	for k := offset; k < len(merged.Plans); k++ {
		merged.Plans[k] = mpsoc.CorePlan{
			BusyLevel: s.cfg.Platform.MaxLevel(),
			IdleLevel: s.cfg.Platform.MinLevel(),
			Gated:     true,
		}
	}
	sort.Ints(merged.Admitted)
	sort.Ints(merged.Rejected)
	return merged, nil
}

// appendAllocFingerprint serializes the roster state the allocator's
// result depends on: for each live session (in roster order) its id,
// tenant, priority class, ladder rung, QP offset, degrade/rate flags,
// and the per-tile workload keys stage D1 priced. Byte-equal
// fingerprints mean the allocator would be solving the same problem
// (modulo within-key calibration drift).
func appendAllocFingerprint(dst []byte, live []*roundSession) []byte {
	for _, rs := range live {
		sess := rs.rec.sess
		dst = binary.AppendVarint(dst, int64(sess.ID))
		dst = binary.AppendVarint(dst, int64(len(rs.rec.tenant)))
		dst = append(dst, rs.rec.tenant...)
		dst = binary.AppendVarint(dst, int64(rs.rec.priority))
		dst = binary.AppendVarint(dst, int64(rs.rec.rung))
		dst = binary.AppendVarint(dst, int64(sess.QPOffset()))
		var flags byte
		if sess.Degraded() {
			flags |= 1
		}
		if sess.RateHalved() {
			flags |= 2
		}
		dst = append(dst, flags)
		dst = binary.AppendVarint(dst, int64(len(rs.keys)))
		for _, k := range rs.keys {
			dst = append(dst, byte(k.AreaClass), byte(k.Texture), byte(k.Motion), byte(k.QPBucket), byte(k.SearchLevel))
		}
	}
	return dst
}

// finishRound applies the post-allocation queue bookkeeping shared by
// fresh and memoized results: admitted sessions reset their wait;
// refused sessions at the end of the ladder accumulate it and time out.
func (s *Server) finishRound(alloc *sched.Result, byID map[int]*roundSession, live []*roundSession) (*sched.Result, []int, error) {
	var timedOut []int
	s.mu.Lock()
	for _, rs := range live {
		// Remember each competitor's core demand — the headroom bar its
		// rate-rung recovery must clear on the rounds it sits out.
		if d, ok := alloc.DemandCores[rs.rec.sess.ID]; ok {
			rs.rec.lastDemand = d
		}
	}
	for _, id := range alloc.Admitted {
		byID[id].rec.waited = 0
	}
	for _, id := range alloc.Rejected {
		rec := byID[id].rec
		rec.waited++
		if s.cfg.Admission.Enabled && rec.waited > s.cfg.Admission.MaxQueueRounds {
			rec.state = StateRejected
			timedOut = append(timedOut, id)
		}
	}
	s.mu.Unlock()
	sort.Ints(timedOut)
	for _, id := range timedOut {
		s.notifyState(id, StateRejected, nil)
	}
	return alloc, timedOut, nil
}

// escalate applies the next admission-ladder rung to a refused session.
// It reports whether a degradation was applied (false once the ladder is
// exhausted and the session can only queue) and whether the degradation
// changed the session's current-round demand — only then is a stage-D1
// re-estimate and another allocator pass worth running.
func (s *Server) escalate(rs *roundSession) (applied, demandChanged bool, err error) {
	cfg := s.cfg.Admission
	sess := rs.rec.sess
	for {
		switch {
		case rs.rec.rung == rungNone:
			rs.rec.rung = rungDegradedTiling
			// Tiling degradation applies to newcomers on the proposed
			// pipeline; sessions already streaming (or already uniform)
			// skip to the QP rung.
			if sess.NextFrame() == 0 && sess.Config().Mode == ModeProposed && !sess.Config().DisableRetile {
				if err := sess.Degrade(); err != nil {
					return false, false, err
				}
				return true, true, nil
			}
		case sess.QPOffset() < cfg.MaxQPOffset:
			rs.rec.rung++
			off := sess.QPOffset() + cfg.QPOffsetStep
			if off > cfg.MaxQPOffset {
				off = cfg.MaxQPOffset
			}
			sess.SetQPOffset(off)
			return true, true, nil
		case !sess.RateHalved():
			// Frame-rate rung: the session is served every other GOP
			// round from now on. Its per-round demand is unchanged (the
			// allocator sees the same threads when it competes), but on
			// alternating rounds it is absent entirely, freeing its share
			// of the platform for the sessions it was crowding out.
			rs.rec.rung++
			sess.HalveRate()
			return true, false, nil
		default:
			return false, false, nil
		}
	}
}
