package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/tiling"
	"repro/internal/video"
	"repro/internal/workload"
)

// The wire format: the versioned JSON encoding of one migratable session,
// the seam migrate.go promised for cross-process migration. An in-process
// handoff moves the live *Session pointer; a cross-machine handoff cannot,
// so SessionWire names every piece of state that determines the bits a
// session will produce from its next GOP boundary on:
//
//   - the source specification (SourceSpec) — videos are re-bound, not
//     shipped: the receiver reconstructs the deterministic frame source
//     (e.g. a medgen generator config) instead of receiving raw frames;
//   - the session configuration (SessionConfig minus its func-typed
//     TimeModel, which cannot cross a process boundary and does not affect
//     encoded bits — only LUT bookkeeping);
//   - the encoder's cross-GOP state: the reconstructed reference frame
//     (raw pixels) and the display-order frame counter;
//   - the serving cursor and admission-ladder degradations (frame,
//     QPOffset, Degraded, RateHalved) plus the record-level bookkeeping the
//     in-process SessionSnapshot already carried (Demand, Rung, Waited,
//     SkipRound).
//
// Everything else a session holds — tile grid, contents, per-tile QPs, the
// QP adapter, the motion policy — is per-GOP state that prepareGOP
// rebuilds deterministically at the boundary the snapshot was taken at, so
// it never needs to travel. A restored session continues bit-identically.
//
// Versioning rules: SessionWireVersion is bumped on any change that alters
// the meaning of existing fields or removes one; adding an optional field
// with a zero-value default is compatible and does not bump. Decoders
// reject versions they do not know (no silent best-effort).

// SessionWireVersion is the wire-format version stamped into every
// SessionWire (see the versioning rules above).
const SessionWireVersion = 1

// SourceSpec is a portable description of a FrameSource: a kind tag naming
// the binder that can rebuild it and an opaque, kind-specific JSON payload
// (for the medgen kind: the generator's Config). Sources are deterministic
// by construction, so respecifying one on another machine yields the same
// frames — the property cross-process migration's bit-identity rests on.
type SourceSpec struct {
	Kind  string          `json:"kind"`
	Class string          `json:"class"`
	Data  json.RawMessage `json:"data,omitempty"`
}

// SpeccedSource is a FrameSource that can describe itself for the wire.
// Only sessions whose source implements it can be checkpointed across
// processes (an in-memory test sequence, for example, cannot).
type SpeccedSource interface {
	FrameSource
	Spec() (SourceSpec, error)
}

// SourceBinder rebuilds a FrameSource from its wire spec on the receiving
// side. internal/dist registers the medgen binder; tests install their
// own. A binder must fail on kinds it does not know.
type SourceBinder func(SourceSpec) (FrameSource, error)

// PlaneWire is one raw 8-bit sample plane, rows stored compactly
// (stride == width). encoding/json carries Pix as base64.
type PlaneWire struct {
	Width  int    `json:"w"`
	Height int    `json:"h"`
	Pix    []byte `json:"pix"`
}

// FrameWire is one raw YUV 4:2:0 frame.
type FrameWire struct {
	Number int        `json:"number"`
	Y      *PlaneWire `json:"y"`
	Cb     *PlaneWire `json:"cb"`
	Cr     *PlaneWire `json:"cr"`
}

// EncoderWire is the encoder's cross-GOP state: the reconstructed
// reference picture and the display-order frame counter. Ref is nil only
// before the first encoded frame.
type EncoderWire struct {
	Frames int        `json:"frames"`
	Ref    *FrameWire `json:"ref,omitempty"`
}

// SessionWire is the versioned JSON encoding of one SessionSnapshot — the
// cross-machine migration format. Field order is fixed (encoding/json
// emits struct fields in declaration order), so encoding is
// byte-deterministic for a given state.
type SessionWire struct {
	Version    int    `json:"version"`
	Class      string `json:"class"`
	DonorID    int    `json:"donor_id"`
	Frame      int    `json:"frame"`
	QPOffset   int    `json:"qp_offset"`
	Degraded   bool   `json:"degraded"`
	RateHalved bool   `json:"rate_halved"`
	Demand     int    `json:"demand"`
	Rung       int    `json:"rung"`
	Waited     int    `json:"waited"`
	SkipRound  bool   `json:"skip_round"`
	// Tenant and Priority carry the session's QoS identity across the
	// process boundary so a failover re-import keeps its weighted core
	// share and preemption class. Both default to zero values (the
	// default tenant, best effort) and are omitted then — an optional
	// addition under the versioning rules above, so v1 encodings of
	// default-tenant sessions are byte-unchanged.
	Tenant   string     `json:"tenant,omitempty"`
	Priority int        `json:"priority,omitempty"`
	Source   SourceSpec `json:"source"`
	// Config is the session's defaulted configuration. TimeModel is
	// excluded (json:"-"): the receiving server installs its own, and the
	// model never influences encoded bits.
	Config SessionConfig `json:"config"`
	// BaselineNX/NY pin a baseline-mode session's uniform grid so the
	// receiver rebuilds the exact tiling instead of re-probing the first
	// frame at the migration point (0/0 when no baseline grid exists).
	BaselineNX int         `json:"baseline_nx,omitempty"`
	BaselineNY int         `json:"baseline_ny,omitempty"`
	Encoder    EncoderWire `json:"encoder"`
}

// wirePlane flattens a plane to compact rows.
func wirePlane(p *video.Plane) *PlaneWire {
	w := &PlaneWire{Width: p.W, Height: p.H, Pix: make([]byte, 0, p.W*p.H)}
	for y := 0; y < p.H; y++ {
		w.Pix = append(w.Pix, p.Row(y)...)
	}
	return w
}

// restorePlane rebuilds a plane from its wire form.
func restorePlane(w *PlaneWire) (*video.Plane, error) {
	if w == nil {
		return nil, fmt.Errorf("core: missing plane in wire frame")
	}
	if w.Width <= 0 || w.Height <= 0 || len(w.Pix) != w.Width*w.Height {
		return nil, fmt.Errorf("core: wire plane %dx%d with %d samples", w.Width, w.Height, len(w.Pix))
	}
	p := video.NewPlane(w.Width, w.Height)
	copy(p.Pix, w.Pix)
	return p, nil
}

// wireFrame flattens a frame.
func wireFrame(f *video.Frame) *FrameWire {
	return &FrameWire{Number: f.Number, Y: wirePlane(f.Y), Cb: wirePlane(f.Cb), Cr: wirePlane(f.Cr)}
}

// restoreFrame rebuilds a frame from its wire form.
func restoreFrame(w *FrameWire) (*video.Frame, error) {
	if w == nil {
		return nil, nil
	}
	y, err := restorePlane(w.Y)
	if err != nil {
		return nil, err
	}
	cb, err := restorePlane(w.Cb)
	if err != nil {
		return nil, err
	}
	cr, err := restorePlane(w.Cr)
	if err != nil {
		return nil, err
	}
	return &video.Frame{Y: y, Cb: cb, Cr: cr, Number: w.Number}, nil
}

// uniformDims recovers the nx×ny split of a uniform grid from its tile
// list (distinct X offsets in the first row, distinct Y offsets in the
// first column).
func uniformDims(g *tiling.Grid) (nx, ny int) {
	for _, t := range g.Tiles {
		if t.Y == 0 {
			nx++
		}
		if t.X == 0 {
			ny++
		}
	}
	return nx, ny
}

// Wire encodes a snapshot for the wire. The snapshot's session must be at
// a GOP boundary (migrate.go guarantees exported snapshots are) and its
// source must be respecifiable (SpeccedSource); anything else is an
// error, not a silent partial encoding. Wire does not mutate the session,
// so it also backs non-destructive checkpointing (CheckpointSessions).
func (snap *SessionSnapshot) Wire() (*SessionWire, error) {
	if snap == nil || snap.Session == nil {
		return nil, fmt.Errorf("core: wire of nil session snapshot")
	}
	sess := snap.Session
	if !sess.AtGOPBoundary() {
		return nil, fmt.Errorf("core: session %d mid-GOP (frame %d) — cannot wire", sess.ID, sess.frame)
	}
	specced, ok := sess.src.(SpeccedSource)
	if !ok {
		return nil, fmt.Errorf("core: session %d source %T is not respecifiable", sess.ID, sess.src)
	}
	spec, err := specced.Spec()
	if err != nil {
		return nil, fmt.Errorf("core: session %d: %w", sess.ID, err)
	}
	w := &SessionWire{
		Version:    SessionWireVersion,
		Class:      snap.Class,
		DonorID:    snap.DonorID,
		Frame:      snap.Frame,
		QPOffset:   snap.QPOffset,
		Degraded:   snap.Degraded,
		RateHalved: snap.RateHalved,
		Demand:     snap.Demand,
		Rung:       snap.Rung,
		Waited:     snap.Waited,
		SkipRound:  snap.SkipRound,
		Tenant:     snap.Tenant,
		Priority:   snap.Priority,
		Source:     spec,
		Config:     sess.cfg,
		Encoder:    EncoderWire{Frames: sess.enc.FramesEncoded()},
	}
	if ref := sess.enc.Reference(); ref != nil {
		w.Encoder.Ref = wireFrame(ref)
	}
	if sess.baselineGrid != nil {
		w.BaselineNX, w.BaselineNY = uniformDims(sess.baselineGrid)
	}
	return w, nil
}

// Restore rebuilds a live snapshot from the wire: the source is re-bound
// through bind, the session reconstructed with the encoder's reference
// state, the serving cursor and every admission-ladder degradation
// reapplied. The result is exactly what an in-process ExportSessions
// would have produced — hand it to Server.Import (or serve.Fleet.Import)
// and the session continues bit-identically at its GOP boundary. The
// session is bound to a throwaway LUT until Import re-binds it to the
// target's per-class store.
func (w *SessionWire) Restore(bind SourceBinder) (*SessionSnapshot, error) {
	if w == nil {
		return nil, fmt.Errorf("core: nil session wire")
	}
	if w.Version != SessionWireVersion {
		return nil, fmt.Errorf("core: session wire version %d, want %d", w.Version, SessionWireVersion)
	}
	if bind == nil {
		return nil, fmt.Errorf("core: nil source binder")
	}
	src, err := bind(w.Source)
	if err != nil {
		return nil, fmt.Errorf("core: re-binding source kind %q: %w", w.Source.Kind, err)
	}
	if src.Class() != w.Class {
		return nil, fmt.Errorf("core: re-bound source class %q, wire says %q", src.Class(), w.Class)
	}
	sess, err := NewSession(w.DonorID, src, w.Config, workload.NewLUT())
	if err != nil {
		return nil, err
	}
	ref, err := restoreFrame(w.Encoder.Ref)
	if err != nil {
		return nil, err
	}
	if err := sess.enc.Restore(ref, w.Encoder.Frames); err != nil {
		return nil, err
	}
	if w.Frame < 0 || w.Frame > src.Len() {
		return nil, fmt.Errorf("core: wire frame cursor %d outside video of %d frames", w.Frame, src.Len())
	}
	sess.frame = w.Frame
	sess.qpOffset = w.QPOffset
	sess.degraded = w.Degraded
	sess.rateHalved = w.RateHalved
	if w.BaselineNX > 0 && w.BaselineNY > 0 {
		grid, err := tiling.Uniform(w.Config.Codec.Width, w.Config.Codec.Height, w.BaselineNX, w.BaselineNY)
		if err != nil {
			return nil, err
		}
		sess.baselineGrid = grid
	}
	snap := &SessionSnapshot{
		Session:    sess,
		Class:      w.Class,
		DonorID:    w.DonorID,
		Frame:      w.Frame,
		QPOffset:   w.QPOffset,
		Degraded:   w.Degraded,
		RateHalved: w.RateHalved,
		Demand:     w.Demand,
		Rung:       w.Rung,
		Waited:     w.Waited,
		SkipRound:  w.SkipRound,
		Tenant:     w.Tenant,
		Priority:   w.Priority,
	}
	if !sess.AtGOPBoundary() {
		return nil, fmt.Errorf("core: wire frame cursor %d is mid-GOP", w.Frame)
	}
	return snap, nil
}

// CheckpointSessions wires every checkpointable queued session without
// disturbing it: sessions at a GOP boundary whose source is respecifiable
// (SpeccedSource) are encoded exactly as ExportSessions would, but stay
// queued and keep serving — the shard's crash-recovery heartbeat, not a
// migration. Sessions mid-GOP or with in-memory-only sources are skipped.
// Like ExportSession, it may be called while a Run is active only from
// the serving goroutine between rounds (the OnRound hook), where no
// encode is in flight; from a stopped server, any goroutine.
func (s *Server) CheckpointSessions() ([]*SessionWire, error) {
	s.mu.Lock()
	var snaps []*SessionSnapshot
	for id, rec := range s.records {
		if rec.state != StateQueued {
			continue
		}
		snaps = append(snaps, &SessionSnapshot{
			Session:   rec.sess,
			Class:     rec.sess.Class(),
			DonorID:   id,
			Demand:    rec.lastDemand,
			Rung:      rec.rung,
			Waited:    rec.waited,
			SkipRound: rec.skipRound,
			Tenant:    rec.tenant,
			Priority:  rec.priority,
		})
	}
	s.mu.Unlock()
	var wires []*SessionWire
	for _, snap := range snaps {
		sess := snap.Session
		if !sess.AtGOPBoundary() {
			continue
		}
		if _, ok := sess.src.(SpeccedSource); !ok {
			continue
		}
		snap.Frame = sess.NextFrame()
		snap.QPOffset = sess.QPOffset()
		snap.Degraded = sess.Degraded()
		snap.RateHalved = sess.RateHalved()
		w, err := snap.Wire()
		if err != nil {
			return nil, err
		}
		wires = append(wires, w)
	}
	return wires, nil
}
