package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/medgen"
	"repro/internal/mpsoc"
	"repro/internal/video"
)

// driftModel returns a deterministic TimeModel simulating a host that
// slows down as it runs (thermal drift): the modeled tile time grows with
// every tile the session encodes. Deterministic — it depends only on tile
// geometry and call order, both fixed for a given source — so service runs
// that differ only in calibration see identical "measurements".
func driftModel() func(codec.TileStats) time.Duration {
	n := 0
	return func(ts codec.TileStats) time.Duration {
		n++
		base := time.Duration(ts.Tile.Area()) * 40 * time.Nanosecond
		return base + base*time.Duration(n)/25
	}
}

// churnService runs the acceptance scenario: two sessions are submitted
// up front, two more arrive at staggered times (after rounds 0 and 1) from
// the OnRound hook, and the queue closes once everyone is in.
func churnService(t *testing.T, calibrate bool) (*ServiceReport, *Server) {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Platform:    mpsoc.XeonE5_2667V4(),
		FPS:         24,
		Calibration: CalibrationConfig{Enabled: calibrate, Alpha: 0.6},
	})
	if err != nil {
		t.Fatal(err)
	}
	motions := []medgen.MotionKind{medgen.Rotate, medgen.Pan, medgen.Sweep, medgen.Still}
	submit := func(i int) {
		cfg := testSessionConfig(ModeProposed)
		cfg.TimeModel = driftModel()
		if _, err := srv.Submit(testSource(t, medgen.Brain, motions[i], 16), cfg); err != nil {
			t.Fatal(err)
		}
	}
	submit(0)
	submit(1)
	srv.cfg.OnRound = func(out *GOPOutcome) {
		switch out.Round {
		case 0:
			submit(2)
		case 1:
			submit(3)
			srv.Close()
		}
	}
	rep, err := srv.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep, srv
}

// TestRunServesChurnWithoutLosingReports is the acceptance scenario:
// sessions submitted at staggered times are admitted, served and completed
// by Run with zero lost GOP reports.
func TestRunServesChurnWithoutLosingReports(t *testing.T) {
	rep, srv := churnService(t, true)

	if rep.Submitted != 4 {
		t.Fatalf("submitted %d, want 4", rep.Submitted)
	}
	if len(rep.Completed) != 4 || len(rep.Rejected) != 0 || len(rep.Failed) != 0 {
		t.Fatalf("completed %v rejected %v failed %v", rep.Completed, rep.Rejected, rep.Failed)
	}
	for id := 0; id < 4; id++ {
		if st, ok := srv.StateOf(id); !ok || st != StateCompleted {
			t.Fatalf("session %d state %v", id, st)
		}
		if !srv.Sessions()[id].Finished() {
			t.Fatalf("session %d not finished", id)
		}
	}
	// Zero lost reports: 4 sessions × 16 frames in GOPs of 4.
	if rep.FramesEncoded != 4*16 {
		t.Fatalf("frames encoded %d, want %d", rep.FramesEncoded, 4*16)
	}
	if rep.GOPReports != 4*4 {
		t.Fatalf("GOP reports %d, want %d", rep.GOPReports, 4*4)
	}
	// The late arrivals really were late: round 0 served only sessions
	// 0 and 1, and some later round served all four.
	if got := rep.Outcomes[0].AdmittedUsers; len(got) != 2 {
		t.Fatalf("round 0 admitted %v, want the two initial sessions", got)
	}
	sawFour := false
	for _, out := range rep.Outcomes {
		if len(out.AdmittedUsers) == 4 {
			sawFour = true
		}
	}
	if !sawFour {
		t.Fatal("no round served all four sessions — churn did not overlap")
	}
	if rep.Energy.Slots != rep.Rounds || rep.Energy.EnergyJ <= 0 {
		t.Fatalf("energy totals inconsistent: %+v over %d rounds", rep.Energy, rep.Rounds)
	}
}

// TestCalibrationLowersEstimateError is the measurement-calibration
// acceptance criterion: on a drifting host, after ≥3 calibration rounds
// the mean relative stage-D1 estimate error is strictly lower with the
// calibration loop than without it. Both runs see identical deterministic
// "measurements" (driftModel), so the comparison is exact, not a timing
// race.
func TestCalibrationLowersEstimateError(t *testing.T) {
	repOff, _ := churnService(t, false)
	repOn, _ := churnService(t, true)

	if repOn.Rounds != repOff.Rounds {
		t.Fatalf("calibration changed the round count: %d vs %d", repOn.Rounds, repOff.Rounds)
	}
	// Calibration corrects estimates, never bits: both runs must produce
	// identical bitstreams.
	for r := range repOn.Outcomes {
		for id, gop := range repOn.Outcomes[r].GOPs {
			if other := repOff.Outcomes[r].GOPs[id]; other == nil || other.Digest != gop.Digest {
				t.Fatalf("round %d session %d: calibration changed the bitstream", r, id)
			}
		}
	}
	errOn, tilesOn := repOn.MeanEstimateErr(3)
	errOff, tilesOff := repOff.MeanEstimateErr(3)
	if tilesOn == 0 || tilesOn != tilesOff {
		t.Fatalf("tile coverage differs: %d vs %d", tilesOn, tilesOff)
	}
	if errOff <= 0 {
		t.Fatalf("uncalibrated error %v not positive — the drift scenario is broken", errOff)
	}
	if errOn >= errOff {
		t.Fatalf("calibrated error %.4f not strictly below uncalibrated %.4f", errOn, errOff)
	}
	t.Logf("relative estimate error from round 3: calibrated %.4f vs uncalibrated %.4f (%d tiles)", errOn, errOff, tilesOn)
}

// goldenService runs two deterministic medgen sequences through Run and
// returns per-session digest chains plus the report.
func goldenService(t *testing.T, sequential, keepBits bool) (*ServiceReport, *Server, map[int][]uint64) {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Platform:   mpsoc.XeonE5_2667V4(),
		FPS:        24,
		Workers:    2,
		Sequential: sequential,
	})
	if err != nil {
		t.Fatal(err)
	}
	specs := []struct {
		class  medgen.Class
		motion medgen.MotionKind
	}{
		{medgen.Brain, medgen.Rotate},
		{medgen.Chest, medgen.Pan},
	}
	for _, sp := range specs {
		cfg := testSessionConfig(ModeProposed)
		cfg.KeepBitstreams = keepBits
		if _, err := srv.Submit(testSource(t, sp.class, sp.motion, 8), cfg); err != nil {
			t.Fatal(err)
		}
	}
	srv.Close()
	rep, err := srv.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	digests := make(map[int][]uint64)
	for _, out := range rep.Outcomes {
		for _, id := range out.AdmittedUsers {
			digests[id] = append(digests[id], out.GOPs[id].Digest)
		}
	}
	return rep, srv, digests
}

// TestRunGoldenRegression locks the service loop's output down: digests
// are stable across runs, concurrent output is bit-identical to the
// Sequential reference mode, and the retained bitstreams decode back to
// exactly the quality the encoder reported.
func TestRunGoldenRegression(t *testing.T) {
	_, _, first := goldenService(t, false, false)
	_, _, second := goldenService(t, false, false)
	repSeq, _, seq := goldenService(t, true, false)

	if len(first) != 2 {
		t.Fatalf("digest chains for %d sessions, want 2", len(first))
	}
	for id, chain := range first {
		if len(chain) != 2 { // 8 frames / GOP 4
			t.Fatalf("session %d served %d GOPs, want 2", id, len(chain))
		}
		for g, d := range chain {
			if d == 0 {
				t.Fatalf("session %d GOP %d has empty digest", id, g)
			}
			if second[id][g] != d {
				t.Fatalf("session %d GOP %d digest unstable across runs: %x vs %x", id, g, d, second[id][g])
			}
			if seq[id][g] != d {
				t.Fatalf("session %d GOP %d: concurrent %x != sequential %x", id, g, d, seq[id][g])
			}
		}
	}
	if len(repSeq.Completed) != 2 {
		t.Fatalf("sequential service completed %v", repSeq.Completed)
	}

	// Decode round-trip on retained bitstreams: the decoder must
	// reconstruct exactly what the encoder measured, frame for frame.
	rep, srv, _ := goldenService(t, false, true)
	for _, sess := range srv.Sessions() {
		dec, err := codec.NewDecoder(sess.Config().Codec)
		if err != nil {
			t.Fatal(err)
		}
		decoded := 0
		for _, out := range rep.Outcomes {
			gop := out.GOPs[sess.ID]
			if gop == nil {
				continue
			}
			for _, fr := range gop.Frames {
				if fr.Bitstream == nil {
					t.Fatalf("session %d frame %d: KeepBitstreams retained nothing", sess.ID, fr.Frame)
				}
				frame, err := dec.DecodeFrame(fr.Bitstream, gop.Grid)
				if err != nil {
					t.Fatalf("session %d frame %d: decode: %v", sess.ID, fr.Frame, err)
				}
				psnr, err := video.FramePSNR(frame, sourceFrameOf(t, srv, sess.ID, fr.Frame))
				if err != nil {
					t.Fatal(err)
				}
				if got := video.CapPSNR(psnr, 100); !closeTo(got, fr.PSNR, 1e-9) {
					t.Fatalf("session %d frame %d: decoded PSNR %.9f != reported %.9f — decoder out of sync",
						sess.ID, fr.Frame, got, fr.PSNR)
				}
				decoded++
			}
		}
		if decoded != 8 {
			t.Fatalf("session %d decoded %d frames, want 8", sess.ID, decoded)
		}
	}
}

// sourceFrameOf re-renders the deterministic source frame a session saw.
func sourceFrameOf(t *testing.T, srv *Server, id, n int) *video.Frame {
	t.Helper()
	return srv.Sessions()[id].src.Frame(n)
}

func closeTo(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

// flatModel returns a deterministic constant-per-tile TimeModel, so
// admission demands depend only on tile counts — no wall-clock noise.
func flatModel(perTile time.Duration) func(codec.TileStats) time.Duration {
	return func(codec.TileStats) time.Duration { return perTile }
}

// twoCorePlatform shrinks the paper platform to force overload.
func twoCorePlatform() *mpsoc.Platform {
	p := mpsoc.XeonE5_2667V4()
	p.Cores = 2
	return p
}

// TestAdmissionLadderDegradesAndServes: under overload a newcomer walks
// the full ladder (uniform tiling, then QP offsets) in its arrival round,
// waits for capacity, and still completes once the platform frees up.
func TestAdmissionLadderDegradesAndServes(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Platform:  twoCorePlatform(),
		FPS:       24,
		Admission: AdmissionConfig{Enabled: true, MaxQueueRounds: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, motion := range []medgen.MotionKind{medgen.Rotate, medgen.Pan} {
		cfg := testSessionConfig(ModeProposed)
		cfg.TimeModel = flatModel(2500 * time.Microsecond)
		if _, err := srv.Submit(testSource(t, medgen.Brain, motion, 8), cfg); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	srv.Close()
	rep, err := srv.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Completed) != 2 || len(rep.Rejected) != 0 || len(rep.Failed) != 0 {
		t.Fatalf("completed %v rejected %v failed %v", rep.Completed, rep.Rejected, rep.Failed)
	}
	// The overloaded round refused session 1 and the ladder degraded it.
	if got := rep.Outcomes[0].RejectedUsers; len(got) != 1 || got[0] != 1 {
		t.Fatalf("round 0 rejected %v, want [1]", got)
	}
	victim := srv.Sessions()[1]
	if !victim.Degraded() {
		t.Fatal("ladder did not degrade the newcomer's tiling")
	}
	if victim.QPOffset() == 0 {
		t.Fatal("ladder did not raise the newcomer's QP offset")
	}
	if srv.Sessions()[0].Degraded() || srv.Sessions()[0].QPOffset() != 0 {
		t.Fatal("ladder degraded the admitted session too")
	}
	if rep.FramesEncoded != 2*8 {
		t.Fatalf("frames encoded %d, want %d", rep.FramesEncoded, 2*8)
	}
}

// TestAdmissionDeadlineRejectsStarvedSession: a session that cannot be
// admitted before its queue deadline departs as StateRejected and the
// service completes without it.
func TestAdmissionDeadlineRejectsStarvedSession(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Platform:  twoCorePlatform(),
		FPS:       24,
		Admission: AdmissionConfig{Enabled: true, MaxQueueRounds: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testSessionConfig(ModeProposed)
	cfg.TimeModel = flatModel(2500 * time.Microsecond)
	if _, err := srv.Submit(testSource(t, medgen.Brain, medgen.Rotate, 8), cfg); err != nil {
		t.Fatal(err)
	}
	// The victim estimates from its own (cold, then oversized) class LUT
	// and can never fit two-at-a-time next to session 0.
	vcfg := testSessionConfig(ModeProposed)
	vcfg.TimeModel = flatModel(30 * time.Millisecond)
	if _, err := srv.Submit(testSource(t, medgen.Bone, medgen.Pan, 8), vcfg); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	rep, err := srv.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rep.Completed) != "[0]" || fmt.Sprint(rep.Rejected) != "[1]" {
		t.Fatalf("completed %v rejected %v", rep.Completed, rep.Rejected)
	}
	if st, _ := srv.StateOf(1); st != StateRejected {
		t.Fatalf("victim state %v, want rejected", st)
	}
	sawTimeout := false
	for _, out := range rep.Outcomes {
		for _, id := range out.TimedOut {
			if id == 1 {
				sawTimeout = true
			}
		}
		if g := out.GOPs[1]; g != nil {
			t.Fatal("rejected session has a GOP report")
		}
	}
	if !sawTimeout {
		t.Fatal("no round reported the victim's queue timeout")
	}
}

// TestRunSurvivesSessionFailure: one session's mid-service encode failure
// departs that session as StateFailed while the others stream on.
func TestRunSurvivesSessionFailure(t *testing.T) {
	srv, err := NewServer(ServerConfig{Platform: mpsoc.XeonE5_2667V4(), FPS: 24})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(testSource(t, medgen.Brain, medgen.Rotate, 8), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	bad := &badAfterSource{FrameSource: testSource(t, medgen.Chest, medgen.Pan, 8), badFrom: 5}
	if _, err := srv.Submit(bad, testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	rep, err := srv.Run(context.Background())
	if err != nil {
		t.Fatalf("service stopped on a single session failure: %v", err)
	}
	if fmt.Sprint(rep.Completed) != "[0]" || fmt.Sprint(rep.Failed) != "[1]" {
		t.Fatalf("completed %v failed %v", rep.Completed, rep.Failed)
	}
	if rep.Errors[1] == nil {
		t.Fatal("failed session's error not reported")
	}
	if st, _ := srv.StateOf(1); st != StateFailed {
		t.Fatalf("state %v, want failed", st)
	}
}

// TestRunCancellation: a cancelled context stops the service promptly and
// returns the partial report with the context error.
func TestRunCancellation(t *testing.T) {
	srv, err := NewServer(ServerConfig{Platform: mpsoc.XeonE5_2667V4(), FPS: 24})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(testSource(t, medgen.Brain, medgen.Rotate, 16), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv.cfg.OnRound = func(out *GOPOutcome) {
		if out.Round == 0 {
			cancel()
		}
	}
	rep, err := srv.Run(ctx)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Rounds != 1 {
		t.Fatalf("served %d rounds before noticing cancellation, want 1", rep.Rounds)
	}
}

// TestRunWaitsForLateArrivals: Run blocks on an empty open queue and picks
// up a session submitted from another goroutine, then exits on Close.
func TestRunWaitsForLateArrivals(t *testing.T) {
	srv, err := NewServer(ServerConfig{Platform: mpsoc.XeonE5_2667V4(), FPS: 24})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		rep *ServiceReport
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := srv.Run(context.Background())
		done <- result{rep, err}
	}()
	time.Sleep(20 * time.Millisecond) // let Run reach the idle wait
	if _, err := srv.Submit(testSource(t, medgen.Brain, medgen.Rotate, 8), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if fmt.Sprint(r.rep.Completed) != "[0]" {
			t.Fatalf("completed %v", r.rep.Completed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return after Close")
	}
}

// TestRunRefusesConcurrentRun: the single-serving-goroutine contract is
// enforced, not just documented.
func TestRunRefusesConcurrentRun(t *testing.T) {
	srv, err := NewServer(ServerConfig{Platform: mpsoc.XeonE5_2667V4(), FPS: 24})
	if err != nil {
		t.Fatal(err)
	}
	blocked := make(chan struct{})
	go func() {
		// Idle Run holding the serving slot.
		close(blocked)
		_, _ = srv.Run(context.Background())
	}()
	<-blocked
	time.Sleep(10 * time.Millisecond)
	if _, err := srv.Run(context.Background()); err == nil {
		t.Fatal("second concurrent Run was allowed")
	}
	srv.Close()
}

// TestSubmitAfterCloseFails pins the arrival queue contract.
func TestSubmitAfterCloseFails(t *testing.T) {
	srv, err := NewServer(ServerConfig{Platform: mpsoc.XeonE5_2667V4(), FPS: 24})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := srv.Submit(testSource(t, medgen.Brain, medgen.Still, 4), testSessionConfig(ModeProposed)); err == nil {
		t.Fatal("Submit succeeded after Close")
	}
}

// TestSessionsReturnsCopy pins the satellite fix: mutating the returned
// slice must not corrupt the server's roster.
func TestSessionsReturnsCopy(t *testing.T) {
	srv, err := NewServer(ServerConfig{Platform: mpsoc.XeonE5_2667V4(), FPS: 24})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AddSession(testSource(t, medgen.Brain, medgen.Still, 4), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	got := srv.Sessions()
	got[0] = nil
	if again := srv.Sessions(); again[0] == nil {
		t.Fatal("Sessions returned the internal slice — callers can corrupt server state")
	}
}
