package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/medgen"
	"repro/internal/mpsoc"
)

// newMigrationServer builds a plain test server.
func newMigrationServer(t *testing.T) *Server {
	t.Helper()
	srv, err := NewServer(ServerConfig{Platform: mpsoc.XeonE5_2667V4(), FPS: 24})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// gopDigests collects one session's GOP digests in index order from a
// set of outcomes.
func gopDigests(outs []*GOPOutcome, id int) []uint64 {
	var digests []uint64
	for _, out := range outs {
		if gop := out.GOPs[id]; gop != nil {
			digests = append(digests, gop.Digest)
		}
	}
	return digests
}

// TestMigrationRoundTripBitIdentical is the core acceptance property: a
// session served partly on one server and — after a GOP-boundary
// export/import — partly on another produces exactly the frames and
// bitstream digests of the same session served on one server throughout.
func TestMigrationRoundTripBitIdentical(t *testing.T) {
	const frames = 16 // 4 GOPs of 4

	// Control: the whole video on one server.
	control := newMigrationServer(t)
	if _, err := control.Submit(testSource(t, medgen.Brain, medgen.Rotate, frames), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	controlOuts, err := control.ServeAll(16)
	if err != nil {
		t.Fatal(err)
	}
	want := gopDigests(controlOuts, 0)
	if len(want) != 4 {
		t.Fatalf("control served %d GOPs, want 4", len(want))
	}

	// Migrated: two GOP rounds on the donor, then export → import, then
	// the rest on the target.
	donor := newMigrationServer(t)
	if _, err := donor.Submit(testSource(t, medgen.Brain, medgen.Rotate, frames), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	var donorOuts []*GOPOutcome
	for i := 0; i < 2; i++ {
		out, err := donor.ServeGOP()
		if err != nil {
			t.Fatal(err)
		}
		donorOuts = append(donorOuts, out)
	}
	snaps, err := donor.ExportSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("exported %d sessions, want 1", len(snaps))
	}
	snap := snaps[0]
	if snap.Class != "brain" || snap.DonorID != 0 || snap.Frame != 8 {
		t.Fatalf("snapshot %+v, want class brain, donor id 0, frame 8", snap)
	}
	if st, ok := donor.StateOf(0); !ok || st != StateMigrated {
		t.Fatalf("donor state %v after export, want migrated", st)
	}
	if donor.Load() != 0 {
		t.Fatalf("donor load %d after export", donor.Load())
	}
	if donor.Sessions()[0] != nil {
		t.Fatal("donor still exposes the migrated session")
	}

	target := newMigrationServer(t)
	// Occupy an id on the target so the migrated session gets a fresh one.
	if _, err := target.Submit(testSource(t, medgen.Chest, medgen.Pan, 4), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	sess, err := target.Import(snap)
	if err != nil {
		t.Fatal(err)
	}
	if sess.ID != 1 {
		t.Fatalf("imported session id %d, want fresh shard-local 1", sess.ID)
	}
	// The target's store now owns the class binding.
	if target.Store().ForClass("brain") == nil {
		t.Fatal("target store has no brain LUT")
	}
	targetOuts, err := target.ServeAll(16)
	if err != nil {
		t.Fatal(err)
	}
	got := append(gopDigests(donorOuts, 0), gopDigests(targetOuts, 1)...)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("migrated digest chain %v != control %v", got, want)
	}
	// Zero lost frames: both target sessions finish.
	if st, _ := target.StateOf(1); st != StateCompleted {
		t.Fatalf("migrated session state %v, want completed", st)
	}
}

// TestMigrationCarriesDegradationState: a session mid-degradation (QP
// offset, uniform tiling, halved rate, pending skip) migrates with its
// ladder state intact — the target neither resets nor re-applies it.
func TestMigrationCarriesDegradationState(t *testing.T) {
	donor := newMigrationServer(t)
	sess, err := donor.Submit(testSource(t, medgen.Chest, medgen.Sweep, 12), testSessionConfig(ModeProposed))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Degrade(); err != nil {
		t.Fatal(err)
	}
	sess.SetQPOffset(8)
	sess.HalveRate()
	if _, err := donor.ServeGOP(); err != nil {
		t.Fatal(err)
	}

	snaps, err := donor.ExportSessions()
	if err != nil {
		t.Fatal(err)
	}
	snap := snaps[0]
	if !snap.Degraded || snap.QPOffset != 8 || !snap.RateHalved || !snap.SkipRound {
		t.Fatalf("snapshot lost ladder state: %+v", snap)
	}

	target := newMigrationServer(t)
	got, err := target.Import(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Degraded() || got.QPOffset() != 8 || !got.RateHalved() {
		t.Fatal("imported session lost its degradations")
	}
	// The pending skip survives: the session sits out the target's first
	// round. A second full-rate session keeps the round from falling back
	// to serving the skipper.
	if _, err := target.Submit(testSource(t, medgen.Brain, medgen.Still, 12), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	out, err := target.ServeGOP()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range out.AdmittedUsers {
		if id == got.ID {
			t.Fatal("imported session served in the round it owed as a rate-halving skip")
		}
	}
	target.Close()
	rep, err := target.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Completed) != 2 || rep.Imported != 1 {
		t.Fatalf("report %+v, want both completed with one import", rep)
	}
}

// TestExportImportContract: the protocol's edges — export refuses to
// race a Run, import refuses mid-GOP and nil snapshots but accepts a
// closed server, and FailSession is the dead-letter path for an
// unplaceable snapshot.
func TestExportImportContract(t *testing.T) {
	srv := newMigrationServer(t)
	if _, err := srv.Import(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if _, err := srv.Submit(testSource(t, medgen.Brain, medgen.Rotate, 8), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}

	// Drain an idle Run via the GOP-boundary stop, then export.
	srv.Drain()
	if _, err := srv.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	snaps, err := srv.ExportSessions()
	if err != nil || len(snaps) != 1 {
		t.Fatalf("export after drained Run: %v, %d snaps", err, len(snaps))
	}

	// Import onto a closed server succeeds: Close seals the queue against
	// new arrivals, not against relocations.
	target := newMigrationServer(t)
	target.Close()
	if _, err := target.Import(snaps[0]); err != nil {
		t.Fatalf("import refused by closed server: %v", err)
	}
	rep, err := target.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Completed) != 1 || rep.Imported != 1 {
		t.Fatalf("closed target did not serve the import: %+v", rep)
	}

	// FailSession: only queued/migrated records can be failed.
	other := newMigrationServer(t)
	if _, err := other.Submit(testSource(t, medgen.Chest, medgen.Pan, 4), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	if err := other.FailSession(5, fmt.Errorf("nope")); err == nil {
		t.Fatal("FailSession accepted an unknown id")
	}
	if err := other.FailSession(0, fmt.Errorf("unplaceable")); err != nil {
		t.Fatal(err)
	}
	if st, _ := other.StateOf(0); st != StateFailed {
		t.Fatalf("state %v after FailSession", st)
	}
	if err := other.FailSession(0, fmt.Errorf("again")); err == nil {
		t.Fatal("FailSession re-failed a terminal session")
	}
}
