package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/medgen"
	"repro/internal/mpsoc"
)

// newMigrationServer builds a plain test server.
func newMigrationServer(t *testing.T) *Server {
	t.Helper()
	srv, err := NewServer(ServerConfig{Platform: mpsoc.XeonE5_2667V4(), FPS: 24})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// gopDigests collects one session's GOP digests in index order from a
// set of outcomes.
func gopDigests(outs []*GOPOutcome, id int) []uint64 {
	var digests []uint64
	for _, out := range outs {
		if gop := out.GOPs[id]; gop != nil {
			digests = append(digests, gop.Digest)
		}
	}
	return digests
}

// TestMigrationRoundTripBitIdentical is the core acceptance property: a
// session served partly on one server and — after a GOP-boundary
// export/import — partly on another produces exactly the frames and
// bitstream digests of the same session served on one server throughout.
func TestMigrationRoundTripBitIdentical(t *testing.T) {
	const frames = 16 // 4 GOPs of 4

	// Control: the whole video on one server.
	control := newMigrationServer(t)
	if _, err := control.Submit(testSource(t, medgen.Brain, medgen.Rotate, frames), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	controlOuts, err := control.ServeAll(16)
	if err != nil {
		t.Fatal(err)
	}
	want := gopDigests(controlOuts, 0)
	if len(want) != 4 {
		t.Fatalf("control served %d GOPs, want 4", len(want))
	}

	// Migrated: two GOP rounds on the donor, then export → import, then
	// the rest on the target.
	donor := newMigrationServer(t)
	if _, err := donor.Submit(testSource(t, medgen.Brain, medgen.Rotate, frames), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	var donorOuts []*GOPOutcome
	for i := 0; i < 2; i++ {
		out, err := donor.ServeGOP()
		if err != nil {
			t.Fatal(err)
		}
		donorOuts = append(donorOuts, out)
	}
	snaps, err := donor.ExportSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("exported %d sessions, want 1", len(snaps))
	}
	snap := snaps[0]
	if snap.Class != "brain" || snap.DonorID != 0 || snap.Frame != 8 {
		t.Fatalf("snapshot %+v, want class brain, donor id 0, frame 8", snap)
	}
	if st, ok := donor.StateOf(0); !ok || st != StateMigrated {
		t.Fatalf("donor state %v after export, want migrated", st)
	}
	if n := donor.LoadReport().Sessions; n != 0 {
		t.Fatalf("donor load %d after export", n)
	}
	if donor.Sessions()[0] != nil {
		t.Fatal("donor still exposes the migrated session")
	}

	target := newMigrationServer(t)
	// Occupy an id on the target so the migrated session gets a fresh one.
	if _, err := target.Submit(testSource(t, medgen.Chest, medgen.Pan, 4), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	sess, err := target.Import(snap)
	if err != nil {
		t.Fatal(err)
	}
	if sess.ID != 1 {
		t.Fatalf("imported session id %d, want fresh shard-local 1", sess.ID)
	}
	// The target's store now owns the class binding.
	if target.Store().ForClass("brain") == nil {
		t.Fatal("target store has no brain LUT")
	}
	targetOuts, err := target.ServeAll(16)
	if err != nil {
		t.Fatal(err)
	}
	got := append(gopDigests(donorOuts, 0), gopDigests(targetOuts, 1)...)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("migrated digest chain %v != control %v", got, want)
	}
	// Zero lost frames: both target sessions finish.
	if st, _ := target.StateOf(1); st != StateCompleted {
		t.Fatalf("migrated session state %v, want completed", st)
	}
}

// TestMigrationCarriesDegradationState: a session mid-degradation (QP
// offset, uniform tiling, halved rate, pending skip) migrates with its
// ladder state intact — the target neither resets nor re-applies it.
func TestMigrationCarriesDegradationState(t *testing.T) {
	donor := newMigrationServer(t)
	sess, err := donor.Submit(testSource(t, medgen.Chest, medgen.Sweep, 12), testSessionConfig(ModeProposed))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Degrade(); err != nil {
		t.Fatal(err)
	}
	sess.SetQPOffset(8)
	sess.HalveRate()
	if _, err := donor.ServeGOP(); err != nil {
		t.Fatal(err)
	}

	snaps, err := donor.ExportSessions()
	if err != nil {
		t.Fatal(err)
	}
	snap := snaps[0]
	if !snap.Degraded || snap.QPOffset != 8 || !snap.RateHalved || !snap.SkipRound {
		t.Fatalf("snapshot lost ladder state: %+v", snap)
	}

	target := newMigrationServer(t)
	got, err := target.Import(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Degraded() || got.QPOffset() != 8 || !got.RateHalved() {
		t.Fatal("imported session lost its degradations")
	}
	// The pending skip survives: the session sits out the target's first
	// round. A second full-rate session keeps the round from falling back
	// to serving the skipper.
	if _, err := target.Submit(testSource(t, medgen.Brain, medgen.Still, 12), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	out, err := target.ServeGOP()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range out.AdmittedUsers {
		if id == got.ID {
			t.Fatal("imported session served in the round it owed as a rate-halving skip")
		}
	}
	target.Close()
	rep, err := target.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Completed) != 2 || rep.Imported != 1 {
		t.Fatalf("report %+v, want both completed with one import", rep)
	}
}

// TestExportImportContract: the protocol's edges — export refuses to
// race a Run, import refuses mid-GOP and nil snapshots but accepts a
// closed server, and FailSession is the dead-letter path for an
// unplaceable snapshot.
func TestExportImportContract(t *testing.T) {
	srv := newMigrationServer(t)
	if _, err := srv.Import(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if _, err := srv.Submit(testSource(t, medgen.Brain, medgen.Rotate, 8), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}

	// Drain an idle Run via the GOP-boundary stop, then export.
	srv.Drain()
	if _, err := srv.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	snaps, err := srv.ExportSessions()
	if err != nil || len(snaps) != 1 {
		t.Fatalf("export after drained Run: %v, %d snaps", err, len(snaps))
	}

	// Import onto a closed server succeeds: Close seals the queue against
	// new arrivals, not against relocations.
	target := newMigrationServer(t)
	target.Close()
	if _, err := target.Import(snaps[0]); err != nil {
		t.Fatalf("import refused by closed server: %v", err)
	}
	rep, err := target.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Completed) != 1 || rep.Imported != 1 {
		t.Fatalf("closed target did not serve the import: %+v", rep)
	}

	// FailSession: only queued/migrated records can be failed.
	other := newMigrationServer(t)
	if _, err := other.Submit(testSource(t, medgen.Chest, medgen.Pan, 4), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	if err := other.FailSession(5, fmt.Errorf("nope")); err == nil {
		t.Fatal("FailSession accepted an unknown id")
	}
	if err := other.FailSession(0, fmt.Errorf("unplaceable")); err != nil {
		t.Fatal(err)
	}
	if st, _ := other.StateOf(0); st != StateFailed {
		t.Fatalf("state %v after FailSession", st)
	}
	if err := other.FailSession(0, fmt.Errorf("again")); err == nil {
		t.Fatal("FailSession re-failed a terminal session")
	}
}

// TestExportSessionDuringRunBitIdentical exercises the Drain-less narrow
// path behind hot-shard rebalancing: while the donor's Run is serving two
// sessions, its OnRound hook exports one of them after the second round
// and a target server adopts it mid-service. The handed-off session's
// digest chain across both servers must equal the same session served
// solo, and no frame or GOP report may be lost on either side.
func TestExportSessionDuringRunBitIdentical(t *testing.T) {
	const frames = 16 // 4 GOPs of 4

	// Control: the victim's whole video on one server.
	control := newMigrationServer(t)
	if _, err := control.Submit(testSource(t, medgen.Chest, medgen.Pan, frames), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	controlOuts, err := control.ServeAll(16)
	if err != nil {
		t.Fatal(err)
	}
	want := gopDigests(controlOuts, 0)

	target := newMigrationServer(t)
	var donor *Server
	var donorOuts []*GOPOutcome
	var exported *SessionSnapshot
	donor, err = NewServer(ServerConfig{
		Platform: mpsoc.XeonE5_2667V4(),
		FPS:      24,
		OnRound: func(out *GOPOutcome) {
			donorOuts = append(donorOuts, out)
			if len(donorOuts) != 2 {
				return
			}
			// Round boundary on the serving goroutine: the one place a
			// single session may leave a live Run.
			snap, err := donor.ExportSession(1)
			if err != nil {
				t.Errorf("ExportSession(1): %v", err)
				return
			}
			exported = snap
			if _, err := target.Import(snap); err != nil {
				t.Errorf("Import: %v", err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := donor.Submit(testSource(t, medgen.Brain, medgen.Rotate, frames), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	if _, err := donor.Submit(testSource(t, medgen.Chest, medgen.Pan, frames), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	donor.Close()
	donorRep, err := donor.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if exported == nil {
		t.Fatal("OnRound never exported the session")
	}
	if exported.Frame != 8 || exported.Class != "chest" {
		t.Fatalf("snapshot %+v, want chest at frame 8", exported)
	}
	if st, _ := donor.StateOf(1); st != StateMigrated {
		t.Fatalf("donor state %v, want migrated", st)
	}

	target.Close()
	targetRep, err := target.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(targetRep.Completed) != 1 || targetRep.Imported != 1 {
		t.Fatalf("target report %+v, want the adopted session completed", targetRep)
	}
	if len(donorRep.Completed) != 1 || len(donorRep.Migrated) != 1 {
		t.Fatalf("donor report %+v, want one completed and one migrated", donorRep)
	}

	// Zero loss: the victim's GOPs split exactly across the two servers.
	got := gopDigests(donorOuts, 1)
	got = append(got, gopDigests(targetRep.Outcomes, 0)...)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("handed-off digest chain differs from the solo run:\n got %v\nwant %v", got, want)
	}
	if frames+frames != donorRep.FramesEncoded+targetRep.FramesEncoded {
		t.Fatalf("frames %d+%d, want %d total", donorRep.FramesEncoded, targetRep.FramesEncoded, frames+frames)
	}
}

// TestExportSessionContract: only queued sessions at a GOP boundary are
// exportable, and bad ids are refused.
func TestExportSessionContract(t *testing.T) {
	srv := newMigrationServer(t)
	if _, err := srv.ExportSession(0); err == nil {
		t.Fatal("ExportSession accepted an unknown id")
	}
	if _, err := srv.Submit(testSource(t, medgen.Brain, medgen.Rotate, 8), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	snap, err := srv.ExportSession(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Frame != 0 || snap.DonorID != 0 {
		t.Fatalf("snapshot %+v, want frame 0 of donor 0", snap)
	}
	// The record is migrated now — a second export must refuse.
	if _, err := srv.ExportSession(0); err == nil {
		t.Fatal("ExportSession re-exported a migrated session")
	}
	// The orphaned snapshot dead-letters cleanly.
	if err := srv.FailSession(0, fmt.Errorf("unplaceable")); err != nil {
		t.Fatal(err)
	}
}

// TestFailSessionDeadLettersDuringRun: an exported (StateMigrated)
// record may be failed while the donor's Run is still serving — the
// rebalancer's dead-letter path for a snapshot no shard accepts — while
// failing a *queued* session mid-Run stays refused.
func TestFailSessionDeadLettersDuringRun(t *testing.T) {
	var srv *Server
	var hookErrs []error
	srv, err := NewServer(ServerConfig{
		Platform: mpsoc.XeonE5_2667V4(),
		FPS:      24,
		OnRound: func(out *GOPOutcome) {
			if out.Round != 0 {
				return
			}
			if err := srv.FailSession(1, fmt.Errorf("queued, must refuse")); err == nil {
				hookErrs = append(hookErrs, fmt.Errorf("FailSession accepted a queued session mid-Run"))
			}
			if _, err := srv.ExportSession(1); err != nil {
				hookErrs = append(hookErrs, err)
				return
			}
			// The snapshot found no home: dead-letter it without stopping
			// the loop.
			if err := srv.FailSession(1, fmt.Errorf("unplaceable")); err != nil {
				hookErrs = append(hookErrs, err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := srv.Submit(testSource(t, medgen.Brain, medgen.Rotate, 8), testSessionConfig(ModeProposed)); err != nil {
			t.Fatal(err)
		}
	}
	srv.Close()
	rep, err := srv.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, herr := range hookErrs {
		t.Error(herr)
	}
	if len(rep.Completed) != 1 || len(rep.Failed) != 1 {
		t.Fatalf("report %+v, want session 0 completed and session 1 dead-lettered", rep)
	}
	if st, _ := srv.StateOf(1); st != StateFailed {
		t.Fatalf("state %v, want failed", st)
	}
}

// TestMigrationCarriesTenantIdentity: a session's QoS identity — tenant
// and resolved priority class — survives export, the versioned wire
// encoding, and import, so a migrated emergency session keeps its
// weighted share and preemption rights on the target shard.
func TestMigrationCarriesTenantIdentity(t *testing.T) {
	donor := newMigrationServer(t)
	if _, err := donor.SubmitWith(speccedSource(t, medgen.Brain, medgen.Rotate, 8),
		testSessionConfig(ModeProposed), SubmitOptions{Tenant: "er", Priority: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := donor.ServeGOP(); err != nil {
		t.Fatal(err)
	}

	snaps, err := donor.ExportSessions()
	if err != nil {
		t.Fatal(err)
	}
	snap := snaps[0]
	if snap.Tenant != "er" || snap.Priority != 9 {
		t.Fatalf("snapshot tenant %q priority %d, want er/9", snap.Tenant, snap.Priority)
	}

	// Across the wire: the JSON encoding carries the identity, and a
	// restore on the far side reconstructs it.
	w, err := snap.Wire()
	if err != nil {
		t.Fatal(err)
	}
	if w.Tenant != "er" || w.Priority != 9 {
		t.Fatalf("wire tenant %q priority %d, want er/9", w.Tenant, w.Priority)
	}
	restored, err := w.Restore(bindTestSource)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Tenant != "er" || restored.Priority != 9 {
		t.Fatalf("restored tenant %q priority %d, want er/9", restored.Tenant, restored.Priority)
	}

	target := newMigrationServer(t)
	if _, err := target.Import(restored); err != nil {
		t.Fatal(err)
	}
	reSnaps, err := target.ExportSessions()
	if err != nil {
		t.Fatal(err)
	}
	if reSnaps[0].Tenant != "er" || reSnaps[0].Priority != 9 {
		t.Fatalf("re-export tenant %q priority %d, want er/9", reSnaps[0].Tenant, reSnaps[0].Priority)
	}
}
