package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/medgen"
	"repro/internal/video"
	"repro/internal/workload"
)

// writeYUVFixture renders a short synthetic study to a raw .yuv file.
func writeYUVFixture(t *testing.T, frames int) (string, []*video.Frame) {
	t.Helper()
	cfg := medgen.Default()
	cfg.Width, cfg.Height = 128, 96
	cfg.Frames = frames
	g, err := medgen.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "study.yuv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var rendered []*video.Frame
	for i := 0; i < frames; i++ {
		fr := g.Frame(i)
		if err := fr.WriteYUV(f); err != nil {
			t.Fatal(err)
		}
		rendered = append(rendered, fr)
	}
	return path, rendered
}

func TestYUVFileSourceRoundTrip(t *testing.T) {
	path, rendered := writeYUVFixture(t, 4)
	src, err := NewYUVFileSource(path, 128, 96, 24, "brain")
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != 4 || src.FPS() != 24 || src.Class() != "brain" {
		t.Fatalf("metadata: len=%d fps=%v class=%q", src.Len(), src.FPS(), src.Class())
	}
	// Out-of-order access exercises the seek path.
	for _, n := range []int{2, 0, 3, 1, 2} {
		got := src.Frame(n)
		if sad, _ := video.SAD(got.Y, rendered[n].Y); sad != 0 {
			t.Fatalf("frame %d luma mismatch (SAD %d)", n, sad)
		}
		if got.Number != n {
			t.Fatalf("frame %d numbered %d", n, got.Number)
		}
	}
}

func TestYUVFileSourceValidation(t *testing.T) {
	path, _ := writeYUVFixture(t, 2)
	if _, err := NewYUVFileSource(path, 130, 96, 24, "x"); err == nil {
		t.Fatal("accepted wrong geometry (size not multiple of frame)")
	}
	if _, err := NewYUVFileSource(path, 127, 96, 24, "x"); err == nil {
		t.Fatal("accepted odd width")
	}
	if _, err := NewYUVFileSource(path, 128, 96, 0, "x"); err == nil {
		t.Fatal("accepted zero fps")
	}
	if _, err := NewYUVFileSource(filepath.Join(t.TempDir(), "missing.yuv"), 128, 96, 24, "x"); err == nil {
		t.Fatal("accepted missing file")
	}
	empty := filepath.Join(t.TempDir(), "empty.yuv")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewYUVFileSource(empty, 128, 96, 24, "x"); err == nil {
		t.Fatal("accepted empty file")
	}
}

func TestSessionOverYUVFile(t *testing.T) {
	// The full pipeline must run over a file source exactly as over a
	// generator: this is the path a real exported study would take.
	path, _ := writeYUVFixture(t, 8)
	src, err := NewYUVFileSource(path, 128, 96, 24, "brain")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testSessionConfig(ModeProposed)
	cfg.Retile.MinTileW, cfg.Retile.MinTileH = 32, 32 // fit the 128×96 fixture
	sess, err := NewSession(0, src, cfg, workload.NewLUT())
	if err != nil {
		t.Fatal(err)
	}
	for !sess.Finished() {
		gop, err := sess.EncodeGOP()
		if err != nil {
			t.Fatal(err)
		}
		if gop.MeanPSNR < 30 {
			t.Fatalf("GOP %d PSNR %.1f", gop.Index, gop.MeanPSNR)
		}
	}
}
