package core

import (
	"context"
	"fmt"

	"repro/internal/mpsoc"
)

// ServiceReport summarizes a Run: the service-level view the ROADMAP's
// heavy-traffic north star cares about, where GOPOutcome is the per-round
// view.
type ServiceReport struct {
	// Rounds is the number of GOP rounds served.
	Rounds int
	// Submitted counts every session that entered the arrival queue.
	Submitted int
	// Completed, Rejected and Failed list the session ids per terminal
	// state (ascending). Sessions still queued when Run returned early
	// (cancellation, round error) appear in none of them.
	Completed, Rejected, Failed []int
	// Migrated lists sessions that left this shard through
	// ExportSessions (ascending donor ids); they live on under new ids
	// on the shards that imported them.
	Migrated []int
	// Imported counts sessions adopted from other shards (Import) —
	// they are included in Submitted, so fleet-wide unique sessions are
	// the sum over shards of Submitted − Imported.
	Imported int
	// FramesEncoded and GOPReports count the work actually delivered
	// across all rounds; a lossless service has GOPReports equal to the
	// sum of its completed sessions' GOP counts.
	FramesEncoded int
	GOPReports    int
	// Energy aggregates the per-round platform simulations: total energy,
	// deadline misses, carry-over and peak power.
	Energy mpsoc.Totals
	// Errors holds the terminal error of every failed session.
	Errors map[int]error
	// Outcomes holds every served round in order.
	Outcomes []*GOPOutcome
}

// MeanEstimateErr returns the tile-weighted mean relative stage-D1
// estimation error over the rounds with index ≥ fromRound (0 covers the
// whole run). The second return is the number of measured tiles behind
// the mean; 0 tiles yields (0, 0).
func (r *ServiceReport) MeanEstimateErr(fromRound int) (float64, int) {
	var sum float64
	var tiles int
	for _, out := range r.Outcomes {
		if out.Round >= fromRound && out.EstimateTiles > 0 {
			sum += out.EstimateErr * float64(out.EstimateTiles)
			tiles += out.EstimateTiles
		}
	}
	if tiles == 0 {
		return 0, 0
	}
	return sum / float64(tiles), tiles
}

// absorb folds one round into the report.
func (r *ServiceReport) absorb(out *GOPOutcome) {
	r.Rounds++
	r.Outcomes = append(r.Outcomes, out)
	r.Energy.Add(out.Energy)
	for _, gop := range out.GOPs {
		r.GOPReports++
		r.FramesEncoded += len(gop.Frames)
	}
}

// finalize snapshots the terminal session states.
func (s *Server) finalize(r *ServiceReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.Submitted = len(s.records)
	r.Completed, r.Rejected, r.Failed, r.Migrated = nil, nil, nil, nil
	r.Imported = 0
	r.Errors = make(map[int]error)
	for id, rec := range s.records {
		if rec.imported {
			r.Imported++
		}
		switch rec.state {
		case StateCompleted:
			r.Completed = append(r.Completed, id)
		case StateRejected:
			r.Rejected = append(r.Rejected, id)
		case StateFailed:
			r.Failed = append(r.Failed, id)
			r.Errors[id] = rec.err
		case StateMigrated:
			r.Migrated = append(r.Migrated, id)
		}
	}
}

// hasServable reports whether any session is waiting for service.
func (s *Server) hasServable() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range s.records {
		if rec.state == StateQueued && !rec.sess.Finished() {
			return true
		}
	}
	return false
}

// isClosed reports whether the arrival queue was closed.
func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Run drives the online service: it drains the arrival queue (Submit),
// serves GOP rounds over the live session set — sessions join mid-service
// and depart on completion, failure, admission timeout or cancellation —
// and blocks while the queue is empty but still open. It returns when the
// server has been Closed and every submitted session reached a terminal
// state, when ctx is cancelled, when Drain asks it to stop at the next
// GOP boundary (sessions stay queued, ready for ExportSessions), or on a
// round-level error (allocator or platform failure, or nobody admitted
// with the admission ladder disabled). The report covers everything
// served up to that point.
//
// A single session's encode failure does not stop the service: the
// session departs as StateFailed and its error is collected; the other
// sessions keep streaming.
//
// Run must be the only serving goroutine: it fails if another Run is
// active, and ServeGOP/ServeAll must not be called while it runs. Submit
// and Close are safe from any goroutine, including ServerConfig.OnRound.
func (s *Server) Run(ctx context.Context) (*ServiceReport, error) {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: Run already active")
	}
	s.running = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.running = false
		s.mu.Unlock()
	}()

	rep := &ServiceReport{}
	for {
		if err := ctx.Err(); err != nil {
			s.finalize(rep)
			return rep, err
		}
		if s.isDraining() {
			// Drain: stop at the GOP boundary with the sessions still
			// queued — the caller exports them (see migrate.go).
			s.finalize(rep)
			return rep, nil
		}
		if !s.hasServable() {
			if s.isClosed() {
				// Re-check under the arrival race: a Submit may have
				// landed between the two tests.
				if !s.hasServable() {
					s.finalize(rep)
					return rep, nil
				}
				continue
			}
			select {
			case <-ctx.Done():
				s.finalize(rep)
				return rep, ctx.Err()
			case <-s.arrival:
			}
			continue
		}

		out, _, err := s.serveRound(ctx)
		if out != nil {
			rep.absorb(out)
		}
		if err != nil {
			s.finalize(rep)
			return rep, err
		}
		// Failed sessions have departed (serveRound set their states and
		// stored their errors); service continues for the rest.
		if s.cfg.OnRound != nil {
			s.cfg.OnRound(out)
		}
		if len(out.AdmittedUsers) == 0 && len(out.TimedOut) == 0 && !s.cfg.Admission.Enabled {
			s.finalize(rep)
			return rep, fmt.Errorf("core: no user admitted in round %d — demands exceed platform (enable the admission ladder to shed load)", out.Round)
		}
	}
}
