package core

// LoadReport is a shard's structured load signal: not just how many
// sessions it holds, but how many cores they collectively demand and how
// big the shard is. Session counts lie on a fleet whose sessions differ
// by an order of magnitude in workload (the premise of the paper's
// LUT-driven estimator) and whose shards differ in core count
// (serve.WithPlatforms); demand normalized by capacity is the one signal
// that compares shards fairly, so routing fallback, autoscaling and
// hot-shard rebalancing all read this struct instead of an int.
type LoadReport struct {
	// Sessions counts submitted sessions not yet in a terminal state —
	// the historical Load() int.
	Sessions int
	// DemandCores sums the live sessions' core demands: each session's
	// sched.Result.DemandCores from the last round it competed, its
	// SessionConfig.DemandHint before it first competes, and never less
	// than one core per session — so DemandCores ≥ Sessions always.
	DemandCores int
	// CapacityCores is the shard platform's core count.
	CapacityCores int
	// Util is DemandCores / CapacityCores — demand-normalized
	// utilization. 0 on an idle shard; above 1 on an overloaded one
	// (demand is a requirement, not an occupancy, so it is not clamped).
	Util float64
	// Alive distinguishes a serving shard from a retired slot. A Server
	// always reports itself alive; the fleet layer zeroes the report and
	// clears Alive for shards that are removed, draining or given up, and
	// excludes them from fleet means.
	Alive bool
}

// Free returns the spare capacity in cores (negative when overloaded).
func (r LoadReport) Free() int { return r.CapacityCores - r.DemandCores }

// LoadReport reports the server's structured load: live sessions, their
// summed core demand, the platform capacity, and the resulting
// utilization. Safe from any goroutine.
func (s *Server) LoadReport() LoadReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := LoadReport{CapacityCores: s.cfg.Platform.Cores, Alive: true}
	for _, rec := range s.records {
		if rec.state != StateQueued {
			continue
		}
		r.Sessions++
		r.DemandCores += demandFloor(rec.lastDemand)
	}
	if r.CapacityCores > 0 {
		r.Util = float64(r.DemandCores) / float64(r.CapacityCores)
	}
	return r
}

// SessionDemand reports one queued session's core demand — its
// sched.Result.DemandCores from the last round it competed, or its
// placement-time hint before that, never less than 1. Terminal or unknown
// ids report 0. Safe from any goroutine.
func (s *Server) SessionDemand(id int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.records) || s.records[id].state != StateQueued {
		return 0
	}
	return demandFloor(s.records[id].lastDemand)
}

// demandFloor clamps a recorded demand to the one-core minimum every
// queued session occupies (sched gives no user fewer than one core).
func demandFloor(d int) int {
	if d < 1 {
		return 1
	}
	return d
}
