package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/mpsoc"
	"repro/internal/sched"
	"repro/internal/tenancy"
	"repro/internal/workload"
)

// AllocatorFunc is the pluggable stage-D2 policy; sched provides
// AllocateContentAware (Algorithm 2), AllocateBaseline ([19]) and the
// ablation allocators.
type AllocatorFunc func(sched.Input) (*sched.Result, error)

// CalibrationConfig parametrizes the online workload-estimation
// calibration loop: after every round the server feeds each admitted
// tile's measured encode time back into the session's workload LUT as an
// exponentially-weighted correction (workload.LUT.Calibrate), so stage-D1
// estimates track the host's current speed instead of dragging all of
// history behind them.
type CalibrationConfig struct {
	// Enabled turns the feedback loop on.
	Enabled bool
	// Alpha is the EWMA weight of the newest measurement, clamped to
	// (0, 1]. 0 selects the default 0.5.
	Alpha float64
}

// ServerConfig parametrizes the multi-user serving loop.
type ServerConfig struct {
	Platform *mpsoc.Platform
	// FPS is the service frame rate (slot = 1/FPS).
	FPS float64
	// Allocator is the thread allocation + DVFS policy. Nil selects
	// Algorithm 2.
	Allocator AllocatorFunc
	// Workers bounds per-frame tile parallelism when no allocation is in
	// effect (Sequential mode, or a session driven outside the server).
	// In the concurrent serving loop each session's budget instead comes
	// from the cores the allocator assigned to it that round.
	Workers int
	// TimeScale maps stage-D1 *estimates* onto the simulated platform's
	// time base: each per-tile LUT prediction is multiplied by this
	// factor as it is handed to the allocator, so the scaled value flows
	// into admission, core planning and (through the resulting plans)
	// the slot energy simulation. It does not touch what the LUT stores:
	// raw measurements are recorded unscaled, and the calibration EWMA
	// (CalibrationConfig) corrects those stored values independently —
	// TimeScale bridges host-vs-platform speed, Calibrate tracks drift
	// within the host. The paper measured Kvazaar (2017) on an E5-2667;
	// this repository's leaner Go encoder on a modern host is
	// substantially faster per frame, so experiments set TimeScale so
	// that per-user demand lands in the paper's regime (~1.5–4 cores per
	// user). 0 or 1 disables scaling.
	TimeScale float64
	// Sequential serves admitted sessions one after another with the
	// fixed Workers budget — the pre-concurrency reference path. Encoded
	// output is bit-identical between the two modes (sessions share no
	// order-sensitive state); tests and benchmarks compare against it.
	Sequential bool
	// Calibration enables the measurement-calibrated estimation loop.
	Calibration CalibrationConfig
	// Admission enables the overload ladder (see AdmissionConfig). Zero
	// value = disabled: users the allocator cannot fit simply wait.
	Admission AdmissionConfig
	// OnRound, when set, is invoked synchronously from the serving
	// goroutine after every round Run serves. The callback may Submit new
	// sessions or Close the server (the loop picks both up on the next
	// round) but must not call serving methods itself.
	OnRound func(*GOPOutcome)
	// OnSessionState, when set, is invoked on every session lifecycle
	// transition: to StateQueued from the goroutine calling Submit, and to
	// the terminal states from the serving goroutine as rounds settle. err
	// is non-nil only for StateFailed. The callback runs outside the
	// server's lock — it may call Submit, Close, StateOf, Load or Sessions,
	// but not the serving methods. This is the hook the fleet dispatcher's
	// telemetry sinks (internal/serve) are built on.
	OnSessionState func(id int, state SessionState, err error)
	// Store, when set, seeds the server with a pre-warmed per-class
	// workload LUT store (for example one persisted by a previous service
	// run — see workload.Store.Save/LoadStore) instead of an empty one.
	Store *workload.Store
	// Tenancy, when set, is the tenant registry consulted during stage D2:
	// when live sessions span several tenants, platform cores are first
	// apportioned across the tenants by registry weight and each tenant's
	// sessions are solved on their own core share (admission.go), and a
	// submission's default priority class comes from its tenant's policy.
	// The registry's token buckets are charged at the outer front doors
	// (serve.Fleet, dist.Master), not here — a server never refuses a
	// session the fleet already accepted. Nil means every session belongs
	// to one default tenant with equal weight: the historical behavior.
	Tenancy *tenancy.Registry
}

// SessionState is a session's position in the service lifecycle.
type SessionState int

const (
	// StateQueued covers a submitted session from arrival until a
	// terminal state: it is either waiting for admission or actively
	// being served.
	StateQueued SessionState = iota
	// StateCompleted means every frame of the session's video was served.
	StateCompleted
	// StateRejected means the admission ladder gave up on the session
	// (its queue deadline expired while the platform was saturated).
	StateRejected
	// StateFailed means the session's encode failed; the service dropped
	// it and kept serving the others.
	StateFailed
	// StateMigrated means the session left this shard through
	// ExportSessions (fleet resize/drain): it is terminal *for this
	// shard* — the session lives on under a new id on the shard that
	// imported it.
	StateMigrated
)

// String names the state.
func (s SessionState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateCompleted:
		return "completed"
	case StateRejected:
		return "rejected"
	case StateFailed:
		return "failed"
	case StateMigrated:
		return "migrated"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// sessionRecord is the server-side wrapper around a session: lifecycle
// state and admission-ladder bookkeeping. Session internals are touched
// only by the serving goroutine; record fields are guarded by Server.mu.
type sessionRecord struct {
	sess *Session
	lut  *workload.LUT

	state SessionState
	// err is the terminal error of a StateFailed session.
	err error
	// rung is the highest admission-ladder rung applied (see admission.go).
	rung int
	// waited counts consecutive rounds the session was refused admission
	// after the ladder ran out of degradation rungs.
	waited int
	// skipRound marks a rate-halved session (Session.HalveRate) to sit out
	// the next round: set after each GOP it is served, cleared when the
	// skip is taken, so the session encodes every other GOP.
	skipRound bool
	// imported marks a session adopted from another shard (Server.Import)
	// rather than submitted here — the fleet subtracts these when it
	// counts unique sessions across shards.
	imported bool
	// headroom counts consecutive rounds the platform had spare
	// allocation capacity for this rate-halved session (rate-rung
	// recovery, AdmissionConfig.RecoverAfterRounds). Reset to zero by any
	// round without headroom — the hysteresis that prevents flapping.
	headroom int
	// lastDemand is the session's core demand the last round it competed
	// (sched.Result.DemandCores) — the headroom bar its recovery must
	// clear.
	lastDemand int
	// tenant is the owning tenant's id ("" = the default tenant). It
	// decides which weighted core share the session competes in.
	tenant string
	// priority is the session's effective QoS priority class (0 = best
	// effort; higher admits first and preempts — see admission.go).
	priority int
}

// Server serves many transcoding sessions on one platform: each GOP it
// collects the sessions' workload estimates (stage D1), allocates threads
// to cores and sets frequencies (stage D2), simulates the slot energy, and
// encodes the admitted sessions' frames — concurrently, one goroutine per
// admitted session, each budgeted with the tile parallelism its allocation
// planned (DESIGN.md §6).
//
// Concurrency contract: Submit, AddSession, Close, Sessions, Store and
// StateOf are safe to call from any goroutine, at any time — including
// while Run is serving. The serving methods themselves (Run, ServeGOP,
// ServeGOPContext, ServeAll, ServeAllContext) must be driven by a single
// goroutine at a time; Run enforces this by failing when a Run is already
// active.
type Server struct {
	cfg   ServerConfig
	store *workload.Store

	mu      sync.Mutex
	records []*sessionRecord
	closed  bool
	running bool
	// draining makes Run return at the next GOP boundary with the
	// sessions still queued (see Drain/ExportSessions in migrate.go).
	draining bool
	rounds   int
	// arrival wakes an idle Run loop when Submit or Close changes what
	// there is to do.
	arrival chan struct{}
	// energy accumulates every settled round's slot report — the
	// authoritative per-shard platform ledger EnergyTotals exposes.
	energy mpsoc.Totals

	// Serving-goroutine-only state (never touched by the concurrent API,
	// so deliberately outside mu): the allocator memo and the stage-D1
	// batching scratch.
	//
	// allocFP/allocCached memoize stage D2: when the roster fingerprint
	// (session set, per-tile workload keys, ladder rungs — see
	// appendAllocFingerprint) is byte-identical to the previous round's
	// and that round admitted everyone, the allocator is skipped and the
	// cached Result reused. Results are immutable once returned, so
	// sharing one across rounds is safe. Only clean (no-rejection)
	// results are cached: under admission pressure the ladder must re-run
	// every round so drifting estimates can eventually admit a queued
	// session.
	allocFP     []byte
	allocCached *sched.Result
	fpScratch   []byte
	// estGroups pools the per-class key→estimate maps resolveEstimates
	// reuses each round (bounded by the number of workload classes).
	estGroups map[*workload.LUT]map[workload.Key]time.Duration
}

// NewServer validates and builds a server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Platform == nil {
		return nil, fmt.Errorf("core: nil platform")
	}
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	// NaN fails every ordinary range check (NaN <= 0 is false), so test
	// finiteness explicitly: a non-finite FPS or TimeScale would poison
	// every slot length and estimate downstream.
	if math.IsNaN(cfg.FPS) || math.IsInf(cfg.FPS, 0) || cfg.FPS <= 0 {
		return nil, fmt.Errorf("core: invalid FPS %v", cfg.FPS)
	}
	if math.IsNaN(cfg.TimeScale) || math.IsInf(cfg.TimeScale, 0) || cfg.TimeScale < 0 {
		return nil, fmt.Errorf("core: invalid TimeScale %v", cfg.TimeScale)
	}
	if cfg.Allocator == nil {
		cfg.Allocator = sched.AllocateContentAware
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Calibration.Alpha == 0 {
		cfg.Calibration.Alpha = 0.5
	}
	if !(cfg.Calibration.Alpha > 0) || cfg.Calibration.Alpha > 1 { // NaN-safe
		return nil, fmt.Errorf("core: calibration alpha %v outside (0, 1]", cfg.Calibration.Alpha)
	}
	cfg.Admission = cfg.Admission.withDefaults()
	store := cfg.Store
	if store == nil {
		store = workload.NewStore()
	}
	return &Server{cfg: cfg, store: store, arrival: make(chan struct{}, 1)}, nil
}

// Store exposes the per-class workload LUT store (shared across sessions).
func (s *Server) Store() *workload.Store { return s.store }

// AddSession creates a session for src and registers it. The session
// shares the workload LUT of its body-part class. It is Submit under the
// historical name.
func (s *Server) AddSession(src FrameSource, cfg SessionConfig) (*Session, error) {
	return s.Submit(src, cfg)
}

// SubmitOptions carries a submission's QoS identity — the per-request
// half of the unified submit surface (serve.SubmitRequest is the fleet-
// level struct; these options are its core-layer projection).
type SubmitOptions struct {
	// Tenant is the owning tenant's id ("" = the default tenant).
	Tenant string
	// Priority is the session's priority class (0 = best effort; higher
	// admits first and preempts). When 0 and the server has a tenancy
	// registry, the tenant's default priority applies.
	Priority int
}

// Submit enqueues a new session for service under the default tenant:
// the next round (of Run or ServeGOP) includes it in admission. Safe to
// call from any goroutine, before or while the server is running; fails
// after Close.
func (s *Server) Submit(src FrameSource, cfg SessionConfig) (*Session, error) {
	return s.SubmitWith(src, cfg, SubmitOptions{})
}

// SubmitWith is Submit carrying the session's tenant and priority class.
func (s *Server) SubmitWith(src FrameSource, cfg SessionConfig, opts SubmitOptions) (*Session, error) {
	if src == nil {
		return nil, fmt.Errorf("core: nil frame source")
	}
	if opts.Tenant == tenancy.DefaultID {
		opts.Tenant = ""
	}
	if s.cfg.Tenancy != nil {
		opts.Priority = s.cfg.Tenancy.Priority(opts.Tenant, opts.Priority)
	}
	cfg.Workers = s.cfg.Workers
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: server closed to new sessions")
	}
	lut := s.store.ForClass(src.Class())
	sess, err := NewSession(len(s.records), src, cfg, lut)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.records = append(s.records, &sessionRecord{
		sess: sess, lut: lut, lastDemand: cfg.DemandHint,
		tenant: opts.Tenant, priority: opts.Priority,
	})
	s.mu.Unlock()
	s.wake()
	s.notifyState(sess.ID, StateQueued, nil)
	return sess, nil
}

// notifyState delivers one lifecycle transition to the OnSessionState hook.
// Always called outside s.mu.
func (s *Server) notifyState(id int, state SessionState, err error) {
	if s.cfg.OnSessionState != nil {
		s.cfg.OnSessionState(id, state, err)
	}
}

// Abort fails every session not yet in a terminal state with err and
// returns their ids (ascending). It is the dispatcher's last resort for a
// shard whose serving loop died for good: the sessions cannot be served,
// so they depart as StateFailed and the failure is observable through
// StateOf, the final report of a later Run, and the OnSessionState hook.
// Abort must not race a serving goroutine; it fails if a Run is active.
func (s *Server) Abort(err error) ([]int, error) {
	if err == nil {
		err = fmt.Errorf("core: shard aborted")
	}
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: Abort while Run is active")
	}
	var ids []int
	for id, rec := range s.records {
		if rec.state == StateQueued {
			rec.state = StateFailed
			rec.err = err
			ids = append(ids, id)
		}
	}
	s.mu.Unlock()
	for _, id := range ids {
		s.notifyState(id, StateFailed, err)
	}
	return ids, nil
}

// Close marks the arrival queue closed: no further Submit succeeds, and
// Run returns once every already-submitted session reaches a terminal
// state. Safe to call from any goroutine, more than once.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wake()
}

// wake nudges an idle Run loop (non-blocking).
func (s *Server) wake() {
	select {
	case s.arrival <- struct{}{}:
	default:
	}
}

// Sessions returns a snapshot of the registered sessions, in submission
// order. The returned slice is a copy — mutating it cannot corrupt server
// state — but the *Session values are live: while the server is serving,
// only ID, Config and the read-only accessors are safe to use from other
// goroutines. A session that migrated away (StateMigrated) leaves a nil
// slot: it belongs to another shard now.
func (s *Server) Sessions() []*Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Session, len(s.records))
	for i, rec := range s.records {
		out[i] = rec.sess
	}
	return out
}

// StateOf reports the lifecycle state of session id.
func (s *Server) StateOf(id int) (SessionState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.records) {
		return 0, false
	}
	return s.records[id].state, true
}

// GOPOutcome describes one served GOP round.
type GOPOutcome struct {
	// Round is the server-wide round index (0-based).
	Round int
	// Allocation is the stage-D2 result over all unfinished sessions.
	Allocation *sched.Result
	// Energy is the slot-level platform simulation of the allocation,
	// replayed over the GOP (GOPSize slots).
	Energy *mpsoc.SlotReport
	// GOPs holds the encoding outcome per admitted session (keyed by
	// session ID). When ServeGOP returns an error alongside the outcome,
	// GOPs covers the sessions whose encode completed before the failure
	// — callers can still account their energy and quality.
	GOPs map[int]*GOPReport
	// AdmittedUsers and RejectedUsers mirror the allocation (after the
	// admission ladder, when enabled).
	AdmittedUsers, RejectedUsers []int
	// TimedOut lists sessions whose queue deadline expired this round —
	// the admission ladder rejected them for good.
	TimedOut []int
	// Recovered lists rate-halved sessions restored to full rate this
	// round (ascending) — the platform held spare allocation headroom for
	// them over AdmissionConfig.RecoverAfterRounds consecutive rounds.
	Recovered []int
	// Preempted lists sessions the admission ladder pushed down a rung
	// this round while a strictly higher-priority session held admission
	// (ascending) — the priority-preemption signal: an emergency arrival
	// displaced these best-effort sessions instead of being refused.
	Preempted []int
	// TenantCores counts the distinct cores allocated to each tenant's
	// sessions this round ("" = the default tenant) — the per-round
	// weighted-fairness observable telemetry and tests assert against.
	TenantCores map[string]int
	// EstimateErr is the round's mean relative stage-D1 estimation error:
	// |estimate − measured| / measured averaged over the EstimateTiles
	// admitted tiles with a positive measurement, where the estimate is
	// the pre-round LUT prediction and the measurement the GOP's mean
	// tile encode time (through the session's TimeModel, when set).
	EstimateErr float64
	// EstimateTiles is the number of tiles EstimateErr covers.
	EstimateTiles int
	// Ladder maps each session still queued as of the round's settlement
	// to its admission-ladder position — the per-rung depth signal
	// telemetry aggregates without reaching into server internals.
	Ladder map[int]LadderState
	// Totals is the server's cumulative platform ledger (energy, peak
	// power, deadline misses, simulated time) including this round — a
	// copy of EnergyTotals taken at settlement, so a telemetry sink can
	// export exact lifetime totals from round events alone.
	Totals mpsoc.Totals
}

// LadderState is one live session's admission-ladder position as of a
// round's settlement (see admission.go): the highest rung applied, the
// accumulated QP offset, and whether the frame-rate rung currently
// halves its GOP rate.
type LadderState struct {
	Rung       int
	QPOffset   int
	RateHalved bool
}

// roundSession carries one live session through a round.
type roundSession struct {
	rec *sessionRecord
	// keys are the per-tile workload keys stage D1 looked up — the
	// session's contribution to the allocator-memoization fingerprint.
	keys []workload.Key
	// estimates are the pre-round per-tile LUT predictions (unscaled).
	estimates []time.Duration
}

// ServeGOP runs one full round: estimate → allocate → simulate → encode.
// Sessions that are finished are skipped; if every session is finished an
// error is returned. See ServeGOPContext for the error contract.
func (s *Server) ServeGOP() (*GOPOutcome, error) {
	return s.ServeGOPContext(context.Background())
}

// ServeGOPContext is ServeGOP with cancellation. The admitted sessions
// encode concurrently, each with the tile-worker budget of its allocated
// cores, and every session that finishes its GOP immediately runs stage
// A–C analysis for its next GOP so the following round's estimation is
// already prepared (estimate-ahead, overlapping the slower sessions'
// encodes). If any session fails, the round's partial outcome is returned
// alongside the error: the other sessions' completed GOP reports are in
// GOPs. After a cancellation, sessions may be stopped mid-GOP and the
// server must not be reused.
func (s *Server) ServeGOPContext(ctx context.Context) (*GOPOutcome, error) {
	out, sessErrs, err := s.serveRound(ctx)
	if err != nil {
		return out, err
	}
	// Historical contract: surface the first failing session's error (in
	// session order) alongside the partial outcome.
	ids := make([]int, 0, len(sessErrs))
	for id := range sessErrs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if len(ids) > 0 {
		return out, sessErrs[ids[0]]
	}
	return out, nil
}

// serveRound is the shared round implementation. It returns the round's
// outcome, the per-session encode errors (the failed sessions are already
// marked StateFailed), and a round-level error (invalid state,
// cancellation, allocator or platform failure) on which no outcome
// bookkeeping beyond the partial outcome should be trusted.
func (s *Server) serveRound(ctx context.Context) (*GOPOutcome, map[int]error, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	// Snapshot the live session set. Sessions finished outside the server
	// are retired on sight so they never block Run's completion, and
	// rate-halved sessions due a skip sit this round out — unless nobody
	// else needs it, in which case skipping would only idle the platform.
	s.mu.Lock()
	var live []*roundSession
	var skipped []*sessionRecord
	var retired []int
	for _, rec := range s.records {
		if rec.state != StateQueued {
			continue
		}
		if rec.sess.Finished() {
			rec.state = StateCompleted
			retired = append(retired, rec.sess.ID)
			continue
		}
		if rec.skipRound {
			rec.skipRound = false
			skipped = append(skipped, rec)
			continue
		}
		live = append(live, &roundSession{rec: rec})
	}
	if len(live) == 0 {
		for _, rec := range skipped {
			live = append(live, &roundSession{rec: rec})
		}
	}
	round := s.rounds
	s.mu.Unlock()
	for _, id := range retired {
		s.notifyState(id, StateCompleted, nil)
	}
	if len(live) == 0 {
		return nil, nil, fmt.Errorf("core: no active sessions")
	}

	// Stage D1: prepare and estimate the live sessions, batching the LUT
	// resolution across sessions of the same workload class.
	if err := s.estimateRound(live); err != nil {
		return nil, nil, err
	}

	// Stage D2 with the admission ladder (admission.go).
	alloc, timedOut, preempted, err := s.allocate(live)
	if err != nil {
		return nil, nil, err
	}

	slot := time.Duration(float64(time.Second) / s.cfg.FPS)
	energy, err := s.cfg.Platform.SimulateSlot(alloc.Plans, slot)
	if err != nil {
		return nil, nil, err
	}

	out := &GOPOutcome{
		Round:         round,
		Allocation:    alloc,
		Energy:        energy,
		GOPs:          make(map[int]*GOPReport, len(alloc.Admitted)),
		AdmittedUsers: alloc.Admitted,
		RejectedUsers: alloc.Rejected,
		TimedOut:      timedOut,
		Preempted:     preempted,
	}
	byID := make(map[int]*roundSession, len(live))
	for _, rs := range live {
		byID[rs.rec.sess.ID] = rs
	}
	// Per-tenant core accounting: distinct cores carrying each tenant's
	// threads this round (tenant partitions never share a core when the
	// weighted split is active, so the counts are exact shares).
	out.TenantCores = make(map[string]int)
	seenCore := make(map[[2]int]bool, alloc.CoresUsed)
	tenantIdx := make(map[string]int)
	for _, rs := range live {
		if _, ok := tenantIdx[rs.rec.tenant]; !ok {
			tenantIdx[rs.rec.tenant] = len(tenantIdx)
		}
	}
	for _, a := range alloc.Assignments {
		rs, ok := byID[a.Thread.User]
		if !ok {
			continue
		}
		k := [2]int{tenantIdx[rs.rec.tenant], a.Core}
		if !seenCore[k] {
			seenCore[k] = true
			out.TenantCores[rs.rec.tenant]++
		}
	}
	var sessErrs map[int]error
	if s.cfg.Sequential {
		sessErrs = s.encodeSequential(ctx, alloc, byID, out)
	} else {
		sessErrs = s.encodeConcurrent(ctx, alloc, byID, out)
	}

	// A cancelled round aborts service; sessions may be mid-GOP and are
	// not marked failed (the historical "server must not be reused after
	// cancellation" contract).
	if ctx.Err() != nil {
		return out, nil, ctx.Err()
	}

	s.settleRound(byID, out, sessErrs)
	s.recoverRates(out)
	s.mu.Lock()
	s.rounds++
	s.energy.Add(out.Energy)
	out.Totals = s.energy
	out.Ladder = make(map[int]LadderState)
	for _, rec := range s.records {
		if rec.state != StateQueued {
			continue
		}
		out.Ladder[rec.sess.ID] = LadderState{
			Rung:       rec.rung,
			QPOffset:   rec.sess.QPOffset(),
			RateHalved: rec.sess.RateHalved(),
		}
	}
	s.mu.Unlock()
	return out, sessErrs, nil
}

// EnergyTotals reports the cumulative platform ledger over every round
// this server settled: summed energy and simulated time, peak per-slot
// power, and deadline misses. The same accumulation a caller would get
// by adding each outcome's Energy in round order — kept here so exact
// lifetime totals survive outcomes falling out of bounded sinks. Safe
// from any goroutine.
func (s *Server) EnergyTotals() mpsoc.Totals {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.energy
}

// recoverRates is the rate-rung recovery pass (the reverse of the
// admission ladder's HalveRate): after a settled round, every rate-halved
// live session accumulates one headroom round when nobody was refused
// service this round and the platform kept enough spare cores to absorb
// the session's own demand on the rounds it currently sits out. Once a
// session has RecoverAfterRounds consecutive headroom rounds it is
// restored to full rate (Session.RestoreRate, reported in
// GOPOutcome.Recovered); any round without headroom resets the count —
// the hysteresis that keeps a borderline platform from flapping between
// half and full rate. Disabled when RecoverAfterRounds is 0.
func (s *Server) recoverRates(out *GOPOutcome) {
	k := s.cfg.Admission.RecoverAfterRounds
	if k <= 0 {
		return
	}
	spare := s.cfg.Platform.Cores - out.Allocation.CoresUsed
	clean := len(out.Allocation.Rejected) == 0 && len(out.TimedOut) == 0
	s.mu.Lock()
	for _, rec := range s.records {
		if rec.state != StateQueued || !rec.sess.RateHalved() {
			continue
		}
		if !clean || rec.lastDemand <= 0 || spare < rec.lastDemand {
			rec.headroom = 0
			continue
		}
		rec.headroom++
		if rec.headroom < k {
			continue
		}
		rec.sess.RestoreRate()
		rec.skipRound = false
		rec.headroom = 0
		out.Recovered = append(out.Recovered, rec.sess.ID)
	}
	s.mu.Unlock()
	sort.Ints(out.Recovered)
}

// estimate runs stages A–C (when needed) and D1 for one live session,
// filling rs.keys and rs.estimates. The admission ladder uses it to
// re-price a single degraded session mid-round.
func (s *Server) estimate(rs *roundSession) error {
	if err := s.prepareKeys(rs); err != nil {
		return err
	}
	return s.resolveEstimates([]*roundSession{rs})
}

// estimateRound is stage D1 for the whole round: stages A–C (when
// needed) per session, then one batched LUT pass per workload class
// instead of a locked lookup per tile per session.
func (s *Server) estimateRound(live []*roundSession) error {
	for _, rs := range live {
		if err := s.prepareKeys(rs); err != nil {
			return err
		}
	}
	return s.resolveEstimates(live)
}

// prepareKeys runs stages A–C for the session when its GOP is not yet
// analysed and refreshes the per-tile workload keys.
func (s *Server) prepareKeys(rs *roundSession) error {
	sess := rs.rec.sess
	if err := sess.PrepareForEstimation(); err != nil {
		return fmt.Errorf("core: session %d: %w", sess.ID, err)
	}
	keys, err := sess.appendEstimationKeys(rs.keys[:0])
	if err != nil {
		return err
	}
	rs.keys = keys
	return nil
}

// resolveEstimates fills rs.estimates from rs.keys. Sessions sharing a
// class LUT share one estimate pass: their distinct keys are collected
// into a per-LUT map and resolved under a single read lock
// (workload.LUT.EstimateInto), so N same-class sessions with duplicate
// tile keys cost one lookup each instead of N. Values are exactly what
// per-tile Estimate calls would return — the LUT is quiescent during
// estimation (encodes, and thus Observe/Calibrate, are round-phased).
func (s *Server) resolveEstimates(live []*roundSession) error {
	if s.estGroups == nil {
		s.estGroups = make(map[*workload.LUT]map[workload.Key]time.Duration)
	}
	for _, g := range s.estGroups {
		clear(g)
	}
	for _, rs := range live {
		g := s.estGroups[rs.rec.lut]
		if g == nil {
			g = make(map[workload.Key]time.Duration)
			s.estGroups[rs.rec.lut] = g
		}
		for _, k := range rs.keys {
			g[k] = 0
		}
	}
	for lut, g := range s.estGroups {
		lut.EstimateInto(g)
	}
	for _, rs := range live {
		g := s.estGroups[rs.rec.lut]
		if cap(rs.estimates) < len(rs.keys) {
			rs.estimates = make([]time.Duration, len(rs.keys))
		}
		rs.estimates = rs.estimates[:len(rs.keys)]
		for i, k := range rs.keys {
			rs.estimates[i] = g[k]
		}
	}
	return nil
}

// demandOf converts a session's estimates into the allocator's input,
// applying the platform time scale.
func (s *Server) demandOf(rs *roundSession) sched.UserDemand {
	sess := rs.rec.sess
	threads := make([]sched.Thread, len(rs.estimates))
	for i, est := range rs.estimates {
		if s.cfg.TimeScale > 0 && s.cfg.TimeScale != 1 {
			est = time.Duration(float64(est) * s.cfg.TimeScale)
		}
		threads[i] = sched.Thread{User: sess.ID, Tile: i, TimeFmax: est}
	}
	return sched.UserDemand{User: sess.ID, Threads: threads, Priority: rs.rec.priority}
}

// settleRound finalizes a round after the encodes: lifecycle transitions,
// estimation-error accounting and LUT calibration.
func (s *Server) settleRound(byID map[int]*roundSession, out *GOPOutcome, sessErrs map[int]error) {
	failedIDs := make([]int, 0, len(sessErrs))
	for id := range sessErrs {
		failedIDs = append(failedIDs, id)
	}
	sort.Ints(failedIDs)
	for _, id := range failedIDs {
		rs := byID[id]
		s.mu.Lock()
		rs.rec.state = StateFailed
		rs.rec.err = sessErrs[id]
		s.mu.Unlock()
		s.notifyState(id, StateFailed, sessErrs[id])
	}

	// The built-in allocators return Admitted sorted by id, but a custom
	// AllocatorFunc may not: sort a copy so the order-sensitive
	// calibration EWMA really is applied in ascending session order (the
	// documented reproducibility invariant).
	admitted := append([]int(nil), out.AdmittedUsers...)
	sort.Ints(admitted)

	var errSum float64
	var errTiles int
	for _, id := range admitted {
		rs := byID[id]
		gop := out.GOPs[id]
		if gop == nil {
			continue
		}
		// Estimation error: pre-round prediction vs the GOP's mean
		// measured tile time.
		n := len(gop.Grid.Tiles)
		meas := make([]time.Duration, n)
		counts := make([]int, n)
		for _, fr := range gop.Frames {
			for i, ts := range fr.Tiles {
				meas[i] += rs.rec.sess.measuredTime(ts)
				counts[i]++
			}
		}
		for i := 0; i < n && i < len(rs.estimates); i++ {
			if counts[i] == 0 {
				continue
			}
			m := meas[i] / time.Duration(counts[i])
			if m <= 0 {
				continue
			}
			d := float64(rs.estimates[i]-m) / float64(m)
			if d < 0 {
				d = -d
			}
			errSum += d
			errTiles++
		}
		// Calibration: feed every measured tile back into the LUT as an
		// EWMA correction. Applied here — once per round, from the
		// serving goroutine, in ascending session order — so the update
		// order (and with it every estimate) is reproducible even though
		// the encodes ran concurrently.
		if s.cfg.Calibration.Enabled {
			for _, fr := range gop.Frames {
				for i, ts := range fr.Tiles {
					tc := gop.Contents[i]
					key := workload.MakeKey(ts.Tile.Area(), int(tc.Texture), int(tc.Motion), ts.QP, ts.Window)
					rs.rec.lut.Calibrate(key, rs.rec.sess.measuredTime(ts), s.cfg.Calibration.Alpha)
				}
			}
		}
		// A rate-halved session just served a GOP: it sits out the next
		// round (admission ladder's frame-rate rung).
		if rs.rec.sess.RateHalved() {
			s.mu.Lock()
			rs.rec.skipRound = true
			s.mu.Unlock()
		}
		if rs.rec.sess.Finished() && sessErrs[id] == nil {
			s.mu.Lock()
			rs.rec.state = StateCompleted
			s.mu.Unlock()
			s.notifyState(id, StateCompleted, nil)
		}
	}
	if errTiles > 0 {
		out.EstimateErr = errSum / float64(errTiles)
		out.EstimateTiles = errTiles
	}
}

// measuredTime maps a tile's stats to the measured CPU time through the
// session's TimeModel (the same channel Observe records).
func (s *Session) measuredTime(ts codec.TileStats) time.Duration {
	if s.cfg.TimeModel != nil {
		return s.cfg.TimeModel(ts)
	}
	return ts.EncodeTime
}

// encodeSequential is the reference serving path: admitted sessions encode
// one after another with the server's fixed worker budget. A failure stops
// the round (later sessions are not started and stay queued), but the
// sessions already encoded keep their reports in out. The returned map
// holds the failing session's error.
func (s *Server) encodeSequential(ctx context.Context, alloc *sched.Result, byID map[int]*roundSession, out *GOPOutcome) map[int]error {
	for _, id := range alloc.Admitted {
		gop, err := byID[id].rec.sess.EncodeGOPContext(ctx, 0)
		if err != nil {
			return map[int]error{id: fmt.Errorf("core: session %d: %w", id, err)}
		}
		out.GOPs[id] = gop
	}
	return nil
}

// encodeConcurrent runs the admitted sessions in parallel, one goroutine
// per session. Each session's intra-frame tile parallelism is budgeted
// from the cores the allocator assigned to it this round, so the execution
// mirrors the plan the platform simulation priced. Encoded output does not
// depend on goroutine scheduling: sessions share only the internally
// synchronized, order-insensitive workload LUT, and per-session state is
// touched by exactly one goroutine.
func (s *Server) encodeConcurrent(ctx context.Context, alloc *sched.Result, byID map[int]*roundSession, out *GOPOutcome) map[int]error {
	gops := make([]*GOPReport, len(alloc.Admitted))
	errs := make([]error, len(alloc.Admitted))
	var wg sync.WaitGroup
	for i, id := range alloc.Admitted {
		wg.Add(1)
		go func(i int, sess *Session) {
			defer wg.Done()
			gop, err := sess.EncodeGOPContext(ctx, alloc.CoresOf(sess.ID))
			if err != nil {
				errs[i] = fmt.Errorf("core: session %d: %w", sess.ID, err)
				return
			}
			gops[i] = gop
			// Estimate-ahead: prepare the next GOP's stages A–C now, while
			// slower sessions are still encoding, so the next round's
			// estimation loop finds the analysis already done.
			if !sess.Finished() {
				if err := sess.PrepareForEstimation(); err != nil {
					errs[i] = fmt.Errorf("core: session %d: estimate-ahead: %w", sess.ID, err)
				}
			}
		}(i, byID[id].rec.sess)
	}
	wg.Wait()
	var sessErrs map[int]error
	for i, id := range alloc.Admitted {
		if gops[i] != nil {
			out.GOPs[id] = gops[i]
		}
		if errs[i] != nil {
			if sessErrs == nil {
				sessErrs = make(map[int]error)
			}
			sessErrs[id] = errs[i]
		}
	}
	return sessErrs
}

// ServeAll runs ServeGOP until every session finishes or maxRounds is
// reached, returning all outcomes. Sessions rejected in one round compete
// again in the next (the paper's saturated-queue regime keeps the rejected
// users waiting).
func (s *Server) ServeAll(maxRounds int) ([]*GOPOutcome, error) {
	return s.ServeAllContext(context.Background(), maxRounds)
}

// ServeAllContext is ServeAll with cancellation. On a round error the
// outcomes returned include that round's partial outcome (if any), so the
// completed sessions' work remains accountable.
func (s *Server) ServeAllContext(ctx context.Context, maxRounds int) ([]*GOPOutcome, error) {
	var outs []*GOPOutcome
	for round := 0; round < maxRounds; round++ {
		s.mu.Lock()
		done := true
		for _, rec := range s.records {
			if rec.state == StateQueued && !rec.sess.Finished() {
				done = false
				break
			}
		}
		s.mu.Unlock()
		if done {
			return outs, nil
		}
		out, err := s.ServeGOPContext(ctx)
		if out != nil {
			outs = append(outs, out)
		}
		if err != nil {
			return outs, err
		}
		if len(out.AdmittedUsers) == 0 && len(out.TimedOut) == 0 {
			return outs, fmt.Errorf("core: no user admitted in round %d — demands exceed platform", round)
		}
	}
	return outs, nil
}
