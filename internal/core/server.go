package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/mpsoc"
	"repro/internal/sched"
	"repro/internal/workload"
)

// AllocatorFunc is the pluggable stage-D2 policy; sched provides
// AllocateContentAware (Algorithm 2), AllocateBaseline ([19]) and the
// ablation allocators.
type AllocatorFunc func(sched.Input) (*sched.Result, error)

// ServerConfig parametrizes the multi-user serving loop.
type ServerConfig struct {
	Platform *mpsoc.Platform
	// FPS is the service frame rate (slot = 1/FPS).
	FPS float64
	// Allocator is the thread allocation + DVFS policy. Nil selects
	// Algorithm 2.
	Allocator AllocatorFunc
	// Workers bounds per-frame tile parallelism when no allocation is in
	// effect (Sequential mode, or a session driven outside the server).
	// In the concurrent serving loop each session's budget instead comes
	// from the cores the allocator assigned to it that round.
	Workers int
	// TimeScale calibrates measured host encode times to the simulated
	// platform: thread CPU-time estimates are multiplied by this factor
	// before allocation and energy simulation. The paper measured Kvazaar
	// (2017) on an E5-2667; this repository's leaner Go encoder on a
	// modern host is substantially faster per frame, so experiments set
	// TimeScale so that per-user demand lands in the paper's regime
	// (~1.5–4 cores per user). 0 or 1 disables scaling.
	TimeScale float64
	// Sequential serves admitted sessions one after another with the
	// fixed Workers budget — the pre-concurrency reference path. Encoded
	// output is bit-identical between the two modes (sessions share no
	// order-sensitive state); tests and benchmarks compare against it.
	Sequential bool
}

// Server serves many transcoding sessions on one platform: each GOP it
// collects the sessions' workload estimates (stage D1), allocates threads
// to cores and sets frequencies (stage D2), simulates the slot energy, and
// encodes the admitted sessions' frames — concurrently, one goroutine per
// admitted session, each budgeted with the tile parallelism its allocation
// planned (DESIGN.md §6).
type Server struct {
	cfg      ServerConfig
	store    *workload.Store
	sessions []*Session
}

// NewServer validates and builds a server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Platform == nil {
		return nil, fmt.Errorf("core: nil platform")
	}
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if cfg.FPS <= 0 {
		return nil, fmt.Errorf("core: non-positive FPS %v", cfg.FPS)
	}
	if cfg.Allocator == nil {
		cfg.Allocator = sched.AllocateContentAware
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	return &Server{cfg: cfg, store: workload.NewStore()}, nil
}

// Store exposes the per-class workload LUT store (shared across sessions).
func (s *Server) Store() *workload.Store { return s.store }

// AddSession creates a session for src and registers it. The session
// shares the workload LUT of its body-part class.
func (s *Server) AddSession(src FrameSource, cfg SessionConfig) (*Session, error) {
	cfg.Workers = s.cfg.Workers
	sess, err := NewSession(len(s.sessions), src, cfg, s.store.ForClass(src.Class()))
	if err != nil {
		return nil, err
	}
	s.sessions = append(s.sessions, sess)
	return sess, nil
}

// Sessions returns the registered sessions.
func (s *Server) Sessions() []*Session { return s.sessions }

// GOPOutcome describes one served GOP round.
type GOPOutcome struct {
	// Allocation is the stage-D2 result over all unfinished sessions.
	Allocation *sched.Result
	// Energy is the slot-level platform simulation of the allocation,
	// replayed over the GOP (GOPSize slots).
	Energy *mpsoc.SlotReport
	// GOPs holds the encoding outcome per admitted session (keyed by
	// session ID). When ServeGOP returns an error alongside the outcome,
	// GOPs covers the sessions whose encode completed before the failure
	// — callers can still account their energy and quality.
	GOPs map[int]*GOPReport
	// AdmittedUsers and RejectedUsers mirror the allocation.
	AdmittedUsers, RejectedUsers []int
}

// ServeGOP runs one full round: estimate → allocate → simulate → encode.
// Sessions that are finished are skipped; if every session is finished an
// error is returned. See ServeGOPContext for the error contract.
func (s *Server) ServeGOP() (*GOPOutcome, error) {
	return s.ServeGOPContext(context.Background())
}

// ServeGOPContext is ServeGOP with cancellation. The admitted sessions
// encode concurrently, each with the tile-worker budget of its allocated
// cores, and every session that finishes its GOP immediately runs stage
// A–C analysis for its next GOP so the following round's estimation is
// already prepared (estimate-ahead, overlapping the slower sessions'
// encodes). If any session fails, the round's partial outcome is returned
// alongside the error: the other sessions' completed GOP reports are in
// GOPs. After a cancellation, sessions may be stopped mid-GOP and the
// server must not be reused.
func (s *Server) ServeGOPContext(ctx context.Context) (*GOPOutcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var demands []sched.UserDemand
	active := make(map[int]*Session)
	for _, sess := range s.sessions {
		if sess.Finished() {
			continue
		}
		if err := sess.PrepareForEstimation(); err != nil {
			return nil, fmt.Errorf("core: session %d: %w", sess.ID, err)
		}
		threads, err := sess.EstimateThreads()
		if err != nil {
			return nil, err
		}
		if s.cfg.TimeScale > 0 && s.cfg.TimeScale != 1 {
			for i := range threads {
				threads[i].TimeFmax = time.Duration(float64(threads[i].TimeFmax) * s.cfg.TimeScale)
			}
		}
		demands = append(demands, sched.UserDemand{User: sess.ID, Threads: threads})
		active[sess.ID] = sess
	}
	if len(demands) == 0 {
		return nil, fmt.Errorf("core: no active sessions")
	}

	alloc, err := s.cfg.Allocator(sched.Input{
		Platform: s.cfg.Platform,
		FPS:      s.cfg.FPS,
		Users:    demands,
	})
	if err != nil {
		return nil, err
	}

	slot := time.Duration(float64(time.Second) / s.cfg.FPS)
	energy, err := s.cfg.Platform.SimulateSlot(alloc.Plans, slot)
	if err != nil {
		return nil, err
	}

	out := &GOPOutcome{
		Allocation:    alloc,
		Energy:        energy,
		GOPs:          make(map[int]*GOPReport, len(alloc.Admitted)),
		AdmittedUsers: alloc.Admitted,
		RejectedUsers: alloc.Rejected,
	}
	if s.cfg.Sequential {
		err = s.encodeSequential(ctx, alloc, active, out)
	} else {
		err = s.encodeConcurrent(ctx, alloc, active, out)
	}
	return out, err
}

// encodeSequential is the reference serving path: admitted sessions encode
// one after another with the server's fixed worker budget. A failure stops
// the round, but the sessions already encoded keep their reports in out.
func (s *Server) encodeSequential(ctx context.Context, alloc *sched.Result, active map[int]*Session, out *GOPOutcome) error {
	for _, id := range alloc.Admitted {
		gop, err := active[id].EncodeGOPContext(ctx, 0)
		if err != nil {
			return fmt.Errorf("core: session %d: %w", id, err)
		}
		out.GOPs[id] = gop
	}
	return nil
}

// encodeConcurrent runs the admitted sessions in parallel, one goroutine
// per session. Each session's intra-frame tile parallelism is budgeted
// from the cores the allocator assigned to it this round, so the execution
// mirrors the plan the platform simulation priced. Encoded output does not
// depend on goroutine scheduling: sessions share only the internally
// synchronized, order-insensitive workload LUT, and per-session state is
// touched by exactly one goroutine.
func (s *Server) encodeConcurrent(ctx context.Context, alloc *sched.Result, active map[int]*Session, out *GOPOutcome) error {
	gops := make([]*GOPReport, len(alloc.Admitted))
	errs := make([]error, len(alloc.Admitted))
	var wg sync.WaitGroup
	for i, id := range alloc.Admitted {
		wg.Add(1)
		go func(i int, sess *Session) {
			defer wg.Done()
			gop, err := sess.EncodeGOPContext(ctx, alloc.CoresOf(sess.ID))
			if err != nil {
				errs[i] = fmt.Errorf("core: session %d: %w", sess.ID, err)
				return
			}
			gops[i] = gop
			// Estimate-ahead: prepare the next GOP's stages A–C now, while
			// slower sessions are still encoding, so the next round's
			// estimation loop finds the analysis already done.
			if !sess.Finished() {
				if err := sess.PrepareForEstimation(); err != nil {
					errs[i] = fmt.Errorf("core: session %d: estimate-ahead: %w", sess.ID, err)
				}
			}
		}(i, active[id])
	}
	wg.Wait()
	var first error
	for i, id := range alloc.Admitted {
		if gops[i] != nil {
			out.GOPs[id] = gops[i]
		}
		if errs[i] != nil && first == nil {
			first = errs[i]
		}
	}
	return first
}

// ServeAll runs ServeGOP until every session finishes or maxRounds is
// reached, returning all outcomes. Sessions rejected in one round compete
// again in the next (the paper's saturated-queue regime keeps the rejected
// users waiting).
func (s *Server) ServeAll(maxRounds int) ([]*GOPOutcome, error) {
	return s.ServeAllContext(context.Background(), maxRounds)
}

// ServeAllContext is ServeAll with cancellation. On a round error the
// outcomes returned include that round's partial outcome (if any), so the
// completed sessions' work remains accountable.
func (s *Server) ServeAllContext(ctx context.Context, maxRounds int) ([]*GOPOutcome, error) {
	var outs []*GOPOutcome
	for round := 0; round < maxRounds; round++ {
		done := true
		for _, sess := range s.sessions {
			if !sess.Finished() {
				done = false
				break
			}
		}
		if done {
			return outs, nil
		}
		out, err := s.ServeGOPContext(ctx)
		if out != nil {
			outs = append(outs, out)
		}
		if err != nil {
			return outs, err
		}
		if len(out.AdmittedUsers) == 0 {
			return outs, fmt.Errorf("core: no user admitted in round %d — demands exceed platform", round)
		}
	}
	return outs, nil
}
