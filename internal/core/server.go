package core

import (
	"fmt"
	"time"

	"repro/internal/mpsoc"
	"repro/internal/sched"
	"repro/internal/workload"
)

// AllocatorFunc is the pluggable stage-D2 policy; sched provides
// AllocateContentAware (Algorithm 2), AllocateBaseline ([19]) and the
// ablation allocators.
type AllocatorFunc func(sched.Input) (*sched.Result, error)

// ServerConfig parametrizes the multi-user serving loop.
type ServerConfig struct {
	Platform *mpsoc.Platform
	// FPS is the service frame rate (slot = 1/FPS).
	FPS float64
	// Allocator is the thread allocation + DVFS policy. Nil selects
	// Algorithm 2.
	Allocator AllocatorFunc
	// Workers bounds per-frame tile parallelism during actual encoding.
	Workers int
	// TimeScale calibrates measured host encode times to the simulated
	// platform: thread CPU-time estimates are multiplied by this factor
	// before allocation and energy simulation. The paper measured Kvazaar
	// (2017) on an E5-2667; this repository's leaner Go encoder on a
	// modern host is substantially faster per frame, so experiments set
	// TimeScale so that per-user demand lands in the paper's regime
	// (~1.5–4 cores per user). 0 or 1 disables scaling.
	TimeScale float64
}

// Server serves many transcoding sessions on one platform: each GOP it
// collects the sessions' workload estimates (stage D1), allocates threads
// to cores and sets frequencies (stage D2), simulates the slot energy, and
// encodes the admitted sessions' frames.
type Server struct {
	cfg      ServerConfig
	store    *workload.Store
	sessions []*Session
}

// NewServer validates and builds a server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Platform == nil {
		return nil, fmt.Errorf("core: nil platform")
	}
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if cfg.FPS <= 0 {
		return nil, fmt.Errorf("core: non-positive FPS %v", cfg.FPS)
	}
	if cfg.Allocator == nil {
		cfg.Allocator = sched.AllocateContentAware
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	return &Server{cfg: cfg, store: workload.NewStore()}, nil
}

// Store exposes the per-class workload LUT store (shared across sessions).
func (s *Server) Store() *workload.Store { return s.store }

// AddSession creates a session for src and registers it. The session
// shares the workload LUT of its body-part class.
func (s *Server) AddSession(src FrameSource, cfg SessionConfig) (*Session, error) {
	cfg.Workers = s.cfg.Workers
	sess, err := NewSession(len(s.sessions), src, cfg, s.store.ForClass(src.Class()))
	if err != nil {
		return nil, err
	}
	s.sessions = append(s.sessions, sess)
	return sess, nil
}

// Sessions returns the registered sessions.
func (s *Server) Sessions() []*Session { return s.sessions }

// GOPOutcome describes one served GOP round.
type GOPOutcome struct {
	// Allocation is the stage-D2 result over all unfinished sessions.
	Allocation *sched.Result
	// Energy is the slot-level platform simulation of the allocation,
	// replayed over the GOP (GOPSize slots).
	Energy *mpsoc.SlotReport
	// GOPs holds the encoding outcome per admitted session (keyed by
	// session ID).
	GOPs map[int]*GOPReport
	// AdmittedUsers and RejectedUsers mirror the allocation.
	AdmittedUsers, RejectedUsers []int
}

// ServeGOP runs one full round: estimate → allocate → simulate → encode.
// Sessions that are finished are skipped; if every session is finished an
// error is returned.
func (s *Server) ServeGOP() (*GOPOutcome, error) {
	var demands []sched.UserDemand
	active := make(map[int]*Session)
	for _, sess := range s.sessions {
		if sess.Finished() {
			continue
		}
		if err := sess.PrepareForEstimation(); err != nil {
			return nil, fmt.Errorf("core: session %d: %w", sess.ID, err)
		}
		threads, err := sess.EstimateThreads()
		if err != nil {
			return nil, err
		}
		if s.cfg.TimeScale > 0 && s.cfg.TimeScale != 1 {
			for i := range threads {
				threads[i].TimeFmax = time.Duration(float64(threads[i].TimeFmax) * s.cfg.TimeScale)
			}
		}
		demands = append(demands, sched.UserDemand{User: sess.ID, Threads: threads})
		active[sess.ID] = sess
	}
	if len(demands) == 0 {
		return nil, fmt.Errorf("core: no active sessions")
	}

	alloc, err := s.cfg.Allocator(sched.Input{
		Platform: s.cfg.Platform,
		FPS:      s.cfg.FPS,
		Users:    demands,
	})
	if err != nil {
		return nil, err
	}

	slot := time.Duration(float64(time.Second) / s.cfg.FPS)
	energy, err := s.cfg.Platform.SimulateSlot(alloc.Plans, slot)
	if err != nil {
		return nil, err
	}

	out := &GOPOutcome{
		Allocation:    alloc,
		Energy:        energy,
		GOPs:          make(map[int]*GOPReport, len(alloc.Admitted)),
		AdmittedUsers: alloc.Admitted,
		RejectedUsers: alloc.Rejected,
	}
	for _, id := range alloc.Admitted {
		sess := active[id]
		gop, err := sess.EncodeGOP()
		if err != nil {
			return nil, fmt.Errorf("core: session %d: %w", id, err)
		}
		out.GOPs[id] = gop
	}
	return out, nil
}

// ServeAll runs ServeGOP until every session finishes or maxRounds is
// reached, returning all outcomes. Sessions rejected in one round compete
// again in the next (the paper's saturated-queue regime keeps the rejected
// users waiting).
func (s *Server) ServeAll(maxRounds int) ([]*GOPOutcome, error) {
	var outs []*GOPOutcome
	for round := 0; round < maxRounds; round++ {
		done := true
		for _, sess := range s.sessions {
			if !sess.Finished() {
				done = false
				break
			}
		}
		if done {
			return outs, nil
		}
		out, err := s.ServeGOP()
		if err != nil {
			return outs, err
		}
		outs = append(outs, out)
		if len(out.AdmittedUsers) == 0 {
			return outs, fmt.Errorf("core: no user admitted in round %d — demands exceed platform", round)
		}
	}
	return outs, nil
}
