package core

import (
	"testing"

	"repro/internal/medgen"
	"repro/internal/mpsoc"
	"repro/internal/sched"
	"repro/internal/video"
)

// countingAllocator wraps Algorithm 2 and counts how often the server
// actually invokes it — the probe for allocator memoization: a memo hit
// reuses the cached sched.Result without calling here.
func countingAllocator(calls *int) AllocatorFunc {
	return func(in sched.Input) (*sched.Result, error) {
		*calls++
		return sched.AllocateContentAware(in)
	}
}

// frozenSource serves the same frame for the whole video, so content
// analysis classifies every GOP identically and the workload keys — and
// with them the allocator fingerprint — genuinely repeat round to round.
// (Even a medgen Still source drifts enough to flip a tile's motion
// class between GOPs, which correctly invalidates the memo.)
type frozenSource struct{ FrameSource }

func (f frozenSource) Frame(int) *video.Frame { return f.FrameSource.Frame(0) }

func steadySource(t *testing.T, class medgen.Class, frames int) FrameSource {
	t.Helper()
	return frozenSource{testSource(t, class, medgen.Still, frames)}
}

// steadyConfig makes every GOP structurally identical (I+PPP): with the
// test default IntraPeriod of two GOPs, I-led and P-led GOPs leave
// different reconstructions behind, and the analysis reference — hence a
// tile's motion class — can alternate round to round.
func steadyConfig() SessionConfig {
	cfg := testSessionConfig(ModeBaseline)
	cfg.Codec.IntraPeriod = cfg.Codec.GOPSize
	return cfg
}

// TestAllocatorMemoization pins the memoization contract from both
// sides. A steady roster — same sessions, same per-tile workload keys,
// same ladder state — must reuse the previous round's allocation
// without re-running the allocator. And every roster change the
// fingerprint covers (join, depart, QP rung, degrade, rate-halve,
// migration import) must produce a fresh sched.Result: stale sharing
// across any of these would hand cores to sessions that no longer exist
// or misprice ones that changed service level.
//
// Baseline-mode frozen sources keep the per-GOP workload keys constant
// (uniform grid, fixed QP, identical content every GOP), so the steady
// rounds genuinely repeat the fingerprint.
func TestAllocatorMemoization(t *testing.T) {
	calls := 0
	srv, err := NewServer(ServerConfig{
		Platform:  mpsoc.XeonE5_2667V4(),
		FPS:       24,
		Allocator: countingAllocator(&calls),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AddSession(steadySource(t, medgen.Brain, 64), steadyConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AddSession(steadySource(t, medgen.Chest, 64), steadyConfig()); err != nil {
		t.Fatal(err)
	}
	round := func() {
		t.Helper()
		if _, err := srv.ServeGOP(); err != nil {
			t.Fatal(err)
		}
	}
	// steady asserts a memo hit: the round must not invoke the allocator.
	steady := func(what string) {
		t.Helper()
		before := calls
		round()
		if calls != before {
			t.Fatalf("%s: steady roster re-ran the allocator (%d → %d calls)", what, before, calls)
		}
	}
	// fresh asserts an invalidation: the round must re-run the allocator.
	fresh := func(what string) {
		t.Helper()
		before := calls
		round()
		if calls != before+1 {
			t.Fatalf("%s: want a fresh allocator run (%d calls), got %d", what, before+1, calls)
		}
	}

	fresh("first round") // nothing cached yet
	// The first GOP is analysed without a reference frame, so its keys
	// bucket differently from every later GOP's: one more fresh solve.
	fresh("second round")
	steady("third round")  // identical roster → memo hit
	steady("fourth round") // and it stays hit, not a one-shot

	// Join: a submitted session changes the competitor set.
	if _, err := srv.Submit(steadySource(t, medgen.Bone, 8), steadyConfig()); err != nil {
		t.Fatal(err)
	}
	fresh("join")
	round() // the joiner's second GOP re-keys (its first had no reference)

	// Depart: the 8-frame joiner finished last round; the roster shrinks.
	if !srv.Sessions()[2].Finished() {
		t.Fatalf("joiner not finished at frame %d — test scenario drifted", srv.Sessions()[2].NextFrame())
	}
	fresh("depart")
	steady("post-depart settle")

	// QP rung: a service-level QP offset must invalidate even when the
	// bucketed key would not move.
	srv.Sessions()[0].SetQPOffset(4)
	fresh("QP rung")

	// Degrade: the uniform-tiling rung flips the degraded flag.
	if err := srv.Sessions()[0].Degrade(); err != nil {
		t.Fatal(err)
	}
	fresh("degrade")

	// Rate-halve: the session sits out alternating rounds, so both the
	// flag flip and the roster alternation invalidate.
	srv.Sessions()[1].HalveRate()
	fresh("rate-halve")

	// Migration import: a session adopted from another shard joins the
	// roster mid-service.
	donor, err := NewServer(ServerConfig{Platform: mpsoc.XeonE5_2667V4(), FPS: 24})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := donor.AddSession(steadySource(t, medgen.SpinalCord, 8), steadyConfig()); err != nil {
		t.Fatal(err)
	}
	snaps, err := donor.ExportSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("exported %d sessions, want 1", len(snaps))
	}
	if _, err := srv.Import(snaps[0]); err != nil {
		t.Fatal(err)
	}
	fresh("migration import")
}
