package core

import (
	"fmt"
	"io"
	"os"

	"repro/internal/video"
)

// YUVFileSource is a FrameSource over a raw planar I420 (.yuv) file — the
// format clinical studies are exported to for encoder evaluation. Frames
// load lazily and are cached, so a Session can seek GOP boundaries without
// re-reading.
type YUVFileSource struct {
	path   string
	w, h   int
	fps    float64
	class  string
	frames int
	cache  []*video.Frame
}

// NewYUVFileSource validates the file against the geometry (the file size
// must be a whole number of frames) and returns the source. class labels
// the body part for workload-LUT sharing.
func NewYUVFileSource(path string, w, h int, fps float64, class string) (*YUVFileSource, error) {
	if w <= 0 || h <= 0 || w%2 != 0 || h%2 != 0 {
		return nil, fmt.Errorf("core: invalid yuv geometry %dx%d", w, h)
	}
	if fps <= 0 {
		return nil, fmt.Errorf("core: invalid fps %v", fps)
	}
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("core: yuv source: %w", err)
	}
	frameBytes := int64(w*h) * 3 / 2
	if st.Size() == 0 || st.Size()%frameBytes != 0 {
		return nil, fmt.Errorf("core: %s is %d bytes, not a multiple of the %d-byte frame size",
			path, st.Size(), frameBytes)
	}
	n := int(st.Size() / frameBytes)
	return &YUVFileSource{
		path: path, w: w, h: h, fps: fps, class: class,
		frames: n, cache: make([]*video.Frame, n),
	}, nil
}

// Frame implements FrameSource. It panics on I/O errors after successful
// construction, matching the FrameSource contract used by generators
// (validation happens in the constructor; mid-stream truncation of a
// validated file is a programming/environment error).
func (s *YUVFileSource) Frame(n int) *video.Frame {
	if n < 0 || n >= s.frames {
		panic(fmt.Sprintf("core: yuv frame %d of %d", n, s.frames))
	}
	if s.cache[n] != nil {
		return s.cache[n]
	}
	f, err := os.Open(s.path)
	if err != nil {
		panic(fmt.Sprintf("core: yuv source: %v", err))
	}
	defer f.Close()
	frameBytes := int64(s.w*s.h) * 3 / 2
	if _, err := f.Seek(int64(n)*frameBytes, io.SeekStart); err != nil {
		panic(fmt.Sprintf("core: yuv source: %v", err))
	}
	fr, err := video.ReadYUV(f, s.w, s.h)
	if err != nil {
		panic(fmt.Sprintf("core: yuv source frame %d: %v", n, err))
	}
	fr.Number = n
	fr.PTS = float64(n) / s.fps
	s.cache[n] = fr
	return fr
}

// Len implements FrameSource.
func (s *YUVFileSource) Len() int { return s.frames }

// FPS implements FrameSource.
func (s *YUVFileSource) FPS() float64 { return s.fps }

// Class implements FrameSource.
func (s *YUVFileSource) Class() string { return s.class }

var _ FrameSource = (*YUVFileSource)(nil)
