package core

import (
	"context"
	"sort"
	"strings"
	"testing"

	"repro/internal/medgen"
	"repro/internal/mpsoc"
	"repro/internal/sched"
	"repro/internal/video"
	"repro/internal/workload"
)

// fourUserServer builds a server with four sessions of distinct body-part
// classes over an over-provisioned platform, so every round admits all
// users in both serving modes and outputs are comparable frame by frame.
func fourUserServer(t *testing.T, sequential bool) *Server {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Platform:   mpsoc.XeonE5_2667V4(),
		FPS:        24,
		Workers:    2,
		Sequential: sequential,
	})
	if err != nil {
		t.Fatal(err)
	}
	specs := []struct {
		class  medgen.Class
		motion medgen.MotionKind
	}{
		{medgen.Brain, medgen.Rotate},
		{medgen.Chest, medgen.Pan},
		{medgen.Bone, medgen.Sweep},
		{medgen.SpinalCord, medgen.Still},
	}
	for _, sp := range specs {
		src := testSource(t, sp.class, sp.motion, 8)
		if _, err := srv.AddSession(src, testSessionConfig(ModeProposed)); err != nil {
			t.Fatal(err)
		}
	}
	return srv
}

// TestServeAllConcurrentMatchesSequential is the bit-identity contract of
// the concurrent serving loop: four sessions served in parallel must
// produce exactly the bitstreams the sequential reference path produces.
// Run under -race this also exercises the cross-session concurrency.
func TestServeAllConcurrentMatchesSequential(t *testing.T) {
	seq := fourUserServer(t, true)
	par := fourUserServer(t, false)

	seqOuts, err := seq.ServeAll(10)
	if err != nil {
		t.Fatal(err)
	}
	parOuts, err := par.ServeAll(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqOuts) != len(parOuts) {
		t.Fatalf("rounds: sequential %d, concurrent %d", len(seqOuts), len(parOuts))
	}
	for round := range seqOuts {
		so, po := seqOuts[round], parOuts[round]
		if !equalInts(so.AdmittedUsers, po.AdmittedUsers) {
			t.Fatalf("round %d admitted: sequential %v, concurrent %v", round, so.AdmittedUsers, po.AdmittedUsers)
		}
		for _, id := range so.AdmittedUsers {
			sg, pg := so.GOPs[id], po.GOPs[id]
			if sg == nil || pg == nil {
				t.Fatalf("round %d user %d missing GOP report", round, id)
			}
			if sg.Digest != pg.Digest {
				t.Fatalf("round %d user %d: bitstream digest %x (sequential) != %x (concurrent)",
					round, id, sg.Digest, pg.Digest)
			}
			if len(sg.Frames) != len(pg.Frames) {
				t.Fatalf("round %d user %d: frame counts differ", round, id)
			}
			for i := range sg.Frames {
				sf, pf := sg.Frames[i], pg.Frames[i]
				if sf.Bits != pf.Bits || sf.PSNR != pf.PSNR || sf.Digest != pf.Digest {
					t.Fatalf("round %d user %d frame %d: sequential (%d bits, %.3f dB, %x) != concurrent (%d bits, %.3f dB, %x)",
						round, id, i, sf.Bits, sf.PSNR, sf.Digest, pf.Bits, pf.PSNR, pf.Digest)
				}
			}
		}
	}
	for i, sess := range par.Sessions() {
		if !sess.Finished() {
			t.Fatalf("concurrent session %d not finished", i)
		}
	}
}

// TestConcurrentWorkersFollowAllocation checks that the serving loop hands
// each session the parallelism its allocation planned rather than the
// global Workers constant.
func TestConcurrentWorkersFollowAllocation(t *testing.T) {
	srv := fourUserServer(t, false)
	out, err := srv.ServeGOP()
	if err != nil {
		t.Fatal(err)
	}
	if out.Allocation.UserCores == nil {
		t.Fatal("allocation has no per-user core counts")
	}
	for _, id := range out.AdmittedUsers {
		if got := out.Allocation.CoresOf(id); got < 1 {
			t.Fatalf("user %d core budget %d", id, got)
		}
	}
}

// rejectUserOnce wraps Algorithm 2 so a chosen user is refused exactly
// once — the following rounds use the plain allocator.
func rejectUserOnce(user int) AllocatorFunc {
	done := false
	return func(in sched.Input) (*sched.Result, error) {
		if done {
			return sched.AllocateContentAware(in)
		}
		done = true
		kept := in
		kept.Users = nil
		for _, u := range in.Users {
			if u.User != user {
				kept.Users = append(kept.Users, u)
			}
		}
		res, err := sched.AllocateContentAware(kept)
		if err != nil {
			return nil, err
		}
		res.Rejected = append(res.Rejected, user)
		sort.Ints(res.Rejected)
		return res, nil
	}
}

// TestRejectedSessionReestimatesCleanly serves a session that is rejected
// in round 1 and admitted in round 2, and checks its encoded output is
// identical to a session that was never rejected: rejection must leave no
// stale grid or adaptation state behind.
func TestRejectedSessionReestimatesCleanly(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Platform:  mpsoc.XeonE5_2667V4(),
		FPS:       24,
		Allocator: rejectUserOnce(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	victim := testSource(t, medgen.Brain, medgen.Rotate, 8)
	other := testSource(t, medgen.Chest, medgen.Pan, 8)
	if _, err := srv.AddSession(victim, testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AddSession(other, testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}

	out1, err := srv.ServeGOP()
	if err != nil {
		t.Fatal(err)
	}
	if containsInt(out1.AdmittedUsers, 0) || !containsInt(out1.RejectedUsers, 0) {
		t.Fatalf("round 1 should reject user 0: admitted %v rejected %v", out1.AdmittedUsers, out1.RejectedUsers)
	}
	if srv.Sessions()[0].NextFrame() != 0 {
		t.Fatalf("rejected session advanced to frame %d", srv.Sessions()[0].NextFrame())
	}

	out2, err := srv.ServeGOP()
	if err != nil {
		t.Fatal(err)
	}
	if !containsInt(out2.AdmittedUsers, 0) {
		t.Fatalf("round 2 should admit user 0: %v", out2.AdmittedUsers)
	}

	// Control: the same video encoded by a session that was never parked.
	control, err := NewSession(0, testSource(t, medgen.Brain, medgen.Rotate, 8),
		testSessionConfig(ModeProposed), workload.NewLUT())
	if err != nil {
		t.Fatal(err)
	}
	if err := control.PrepareForEstimation(); err != nil {
		t.Fatal(err)
	}
	want, err := control.EncodeGOP()
	if err != nil {
		t.Fatal(err)
	}
	got := out2.GOPs[0]
	if got.Digest != want.Digest {
		t.Fatalf("post-rejection GOP digest %x differs from control %x — stale state after rejection", got.Digest, want.Digest)
	}
}

// badAfterSource serves valid frames up to badFrom, then frames of the
// wrong geometry so the encoder fails mid-GOP.
type badAfterSource struct {
	FrameSource
	badFrom int
}

func (b *badAfterSource) Frame(n int) *video.Frame {
	if n >= b.badFrom {
		return video.NewFrame(8, 8)
	}
	return b.FrameSource.Frame(n)
}

// TestServeGOPReturnsPartialOutcomeOnError checks the error contract: when
// one session fails mid-round, the outcome still carries the completed
// sessions' GOP reports so their energy/quality can be accounted.
func TestServeGOPReturnsPartialOutcomeOnError(t *testing.T) {
	for _, sequential := range []bool{false, true} {
		srv, err := NewServer(ServerConfig{
			Platform:   mpsoc.XeonE5_2667V4(),
			FPS:        24,
			Sequential: sequential,
		})
		if err != nil {
			t.Fatal(err)
		}
		good := testSource(t, medgen.Brain, medgen.Rotate, 8)
		bad := &badAfterSource{FrameSource: testSource(t, medgen.Chest, medgen.Pan, 8), badFrom: 1}
		if _, err := srv.AddSession(good, testSessionConfig(ModeProposed)); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.AddSession(bad, testSessionConfig(ModeProposed)); err != nil {
			t.Fatal(err)
		}
		out, err := srv.ServeGOP()
		if err == nil {
			t.Fatal("round with a failing session succeeded")
		}
		if !strings.Contains(err.Error(), "session 1") {
			t.Fatalf("error does not name the failing session: %v", err)
		}
		if out == nil {
			t.Fatal("no partial outcome alongside the error")
		}
		// The concurrent path always completes the healthy session; the
		// sequential path completes it because id 0 encodes before id 1.
		if out.GOPs[0] == nil {
			t.Fatalf("sequential=%v: healthy session's completed GOP was discarded", sequential)
		}
		if out.GOPs[1] != nil {
			t.Fatal("failed session has a GOP report")
		}
	}
}

// TestServeGOPCancellation checks context plumbing end to end: a cancelled
// context aborts the round with the context's error.
func TestServeGOPCancellation(t *testing.T) {
	srv := fourUserServer(t, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.ServeGOPContext(ctx); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestEstimateAheadPreparesNextGOP checks the overlap stage: after a round
// completes, every unfinished session already has stages A–C done for its
// next GOP, so the next round's estimation prices the new grid, not the
// previous GOP's.
func TestEstimateAheadPreparesNextGOP(t *testing.T) {
	srv := fourUserServer(t, false)
	if _, err := srv.ServeGOP(); err != nil {
		t.Fatal(err)
	}
	for _, sess := range srv.Sessions() {
		if sess.Finished() {
			continue
		}
		if sess.preparedFor != sess.NextFrame() {
			t.Fatalf("session %d prepared for frame %d, next frame %d — estimation would see a stale grid",
				sess.ID, sess.preparedFor, sess.NextFrame())
		}
	}
}

// TestEncodeGOPResumesToBoundary checks that a session resumed mid-GOP
// (e.g. after a cancellation) encodes only up to the GOP boundary: one
// report must never span two GOPs or two tile grids.
func TestEncodeGOPResumesToBoundary(t *testing.T) {
	s := newTestSession(t, ModeProposed) // 8 frames, GOP 4
	for i := 0; i < 2; i++ {
		if _, err := s.EncodeNextFrame(); err != nil {
			t.Fatal(err)
		}
	}
	gop, err := s.EncodeGOP()
	if err != nil {
		t.Fatal(err)
	}
	if len(gop.Frames) != 2 {
		t.Fatalf("mid-GOP resume encoded %d frames, want 2 (to the boundary)", len(gop.Frames))
	}
	if gop.Index != 0 {
		t.Fatalf("resumed GOP index %d, want 0", gop.Index)
	}
	if s.NextFrame() != 4 {
		t.Fatalf("session at frame %d after resume, want the GOP boundary 4", s.NextFrame())
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
