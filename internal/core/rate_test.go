package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/medgen"
	"repro/internal/mpsoc"
	"repro/internal/sched"
)

// TestHalveRateServesEveryOtherRound: a rate-halved session encodes a GOP,
// sits the next round out, and still finishes — the frame-rate rung trades
// latency, never frames.
func TestHalveRateServesEveryOtherRound(t *testing.T) {
	srv, err := NewServer(ServerConfig{Platform: mpsoc.XeonE5_2667V4(), FPS: 24})
	if err != nil {
		t.Fatal(err)
	}
	full, err := srv.Submit(testSource(t, medgen.Brain, medgen.Rotate, 16), testSessionConfig(ModeProposed))
	if err != nil {
		t.Fatal(err)
	}
	halved, err := srv.Submit(testSource(t, medgen.Chest, medgen.Pan, 16), testSessionConfig(ModeProposed))
	if err != nil {
		t.Fatal(err)
	}
	halved.HalveRate()
	if !halved.RateHalved() || full.RateHalved() {
		t.Fatal("HalveRate flag wrong")
	}
	srv.Close()
	rep, err := srv.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Completed) != 2 {
		t.Fatalf("completed %v, want both sessions", rep.Completed)
	}
	// 16 frames in GOPs of 4: the full-rate session is served on rounds
	// 0–3. The halved one alternates while it shares the platform (0, 2,
	// 4) and then — alone in the queue, where skipping would only idle
	// the platform — is served back-to-back for its last GOP (5).
	var fullRounds, halvedRounds []int
	for _, out := range rep.Outcomes {
		for _, id := range out.AdmittedUsers {
			if id == full.ID {
				fullRounds = append(fullRounds, out.Round)
			}
			if id == halved.ID {
				halvedRounds = append(halvedRounds, out.Round)
			}
		}
	}
	if len(fullRounds) != 4 {
		t.Fatalf("full-rate session served in rounds %v, want 4 rounds", fullRounds)
	}
	if fmt.Sprint(halvedRounds) != "[0 2 4 5]" {
		t.Fatalf("halved session served in rounds %v, want [0 2 4 5]", halvedRounds)
	}
	if rep.FramesEncoded != 2*16 {
		t.Fatalf("frames encoded %d, want %d — rate halving lost frames", rep.FramesEncoded, 2*16)
	}
}

// TestAdmissionLadderReachesRateRung: when tiling and QP degradation are
// not enough, the ladder halves the newcomer's frame rate before letting
// it queue with a deadline.
func TestAdmissionLadderReachesRateRung(t *testing.T) {
	p := mpsoc.XeonE5_2667V4()
	p.Cores = 2
	srv, err := NewServer(ServerConfig{
		Platform:  p,
		FPS:       24,
		Admission: AdmissionConfig{Enabled: true, MaxQueueRounds: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, motion := range []medgen.MotionKind{medgen.Rotate, medgen.Pan} {
		cfg := testSessionConfig(ModeProposed)
		cfg.TimeModel = flatModel(2500 * time.Microsecond)
		if _, err := srv.Submit(testSource(t, medgen.Brain, motion, 8), cfg); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	srv.Close()
	rep, err := srv.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Completed) != 2 {
		t.Fatalf("completed %v rejected %v failed %v", rep.Completed, rep.Rejected, rep.Failed)
	}
	victim := srv.Sessions()[1]
	if !victim.Degraded() || victim.QPOffset() == 0 {
		t.Fatal("ladder skipped the tiling/QP rungs")
	}
	if !victim.RateHalved() {
		t.Fatal("ladder never reached the frame-rate rung")
	}
	if srv.Sessions()[0].RateHalved() {
		t.Fatal("ladder halved the admitted session's rate too")
	}
	if rep.FramesEncoded != 2*8 {
		t.Fatalf("frames encoded %d, want %d", rep.FramesEncoded, 2*8)
	}
}

// TestRateRungRecovery: with RecoverAfterRounds set, a rate-halved
// session returns to full rate once the platform has held spare headroom
// for it over K consecutive rounds — and stays at full rate afterwards
// while the platform remains clean (no flapping back and forth).
func TestRateRungRecovery(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Platform:  mpsoc.XeonE5_2667V4(),
		FPS:       24,
		Admission: AdmissionConfig{RecoverAfterRounds: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(testSource(t, medgen.Brain, medgen.Rotate, 16), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	halved, err := srv.Submit(testSource(t, medgen.Chest, medgen.Pan, 16), testSessionConfig(ModeProposed))
	if err != nil {
		t.Fatal(err)
	}
	halved.HalveRate()
	srv.Close()
	rep, err := srv.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Completed) != 2 {
		t.Fatalf("completed %v, want both", rep.Completed)
	}
	if halved.RateHalved() {
		t.Fatal("session still rate-halved despite sustained headroom")
	}
	var halvedRounds, recoveredAt []int
	for _, out := range rep.Outcomes {
		for _, id := range out.AdmittedUsers {
			if id == halved.ID {
				halvedRounds = append(halvedRounds, out.Round)
			}
		}
		for _, id := range out.Recovered {
			if id == halved.ID {
				recoveredAt = append(recoveredAt, out.Round)
			}
		}
	}
	// Round 0 serves the session (headroom 1), round 1 it sits out
	// (headroom 2 → recovery), rounds 2–4 it serves every round again.
	if fmt.Sprint(recoveredAt) != "[1]" {
		t.Fatalf("recovered at rounds %v, want exactly [1]", recoveredAt)
	}
	if fmt.Sprint(halvedRounds) != "[0 2 3 4]" {
		t.Fatalf("halved session served in rounds %v, want [0 2 3 4]", halvedRounds)
	}
	if rep.FramesEncoded != 2*16 {
		t.Fatalf("frames %d, want %d — recovery lost frames", rep.FramesEncoded, 2*16)
	}
}

// TestRateRecoveryHysteresisCounter pins the no-flap rule at the unit
// level: headroom rounds must be consecutive — one dirty round (a
// rejection, or spare cores below the session's demand) resets the
// count, and recovery fires only at exactly K.
func TestRateRecoveryHysteresisCounter(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Platform:  mpsoc.XeonE5_2667V4(), // 32 cores
		FPS:       24,
		Admission: AdmissionConfig{RecoverAfterRounds: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := srv.Submit(testSource(t, medgen.Brain, medgen.Still, 8), testSessionConfig(ModeProposed))
	if err != nil {
		t.Fatal(err)
	}
	sess.HalveRate()
	srv.records[0].lastDemand = 4

	clean := func() *GOPOutcome {
		return &GOPOutcome{Allocation: &sched.Result{CoresUsed: 8}} // spare 24 ≥ 4
	}
	step := func(out *GOPOutcome) []int {
		srv.recoverRates(out)
		return out.Recovered
	}

	if got := step(clean()); len(got) != 0 || srv.records[0].headroom != 1 {
		t.Fatalf("after 1 clean round: recovered %v headroom %d", got, srv.records[0].headroom)
	}
	step(clean())
	// A rejection resets the streak.
	if step(&GOPOutcome{Allocation: &sched.Result{CoresUsed: 8, Rejected: []int{99}}}); srv.records[0].headroom != 0 {
		t.Fatalf("rejection did not reset headroom: %d", srv.records[0].headroom)
	}
	step(clean())
	step(clean())
	// Spare cores below the session's demand also reset.
	if step(&GOPOutcome{Allocation: &sched.Result{CoresUsed: 30}}); srv.records[0].headroom != 0 {
		t.Fatalf("thin spare did not reset headroom: %d", srv.records[0].headroom)
	}
	step(clean())
	step(clean())
	if sess.RateHalved() != true {
		t.Fatal("recovered before K consecutive headroom rounds — flapping")
	}
	if got := step(clean()); fmt.Sprint(got) != "[0]" || sess.RateHalved() {
		t.Fatalf("third consecutive headroom round: recovered %v, halved %v", got, sess.RateHalved())
	}
	// Once restored, clean rounds are a no-op until the ladder halves the
	// session again.
	if got := step(clean()); len(got) != 0 {
		t.Fatalf("recovery fired again on a full-rate session: %v", got)
	}
}

// TestRateRecoveryHoldsUnderPressure: on a saturated platform even the
// most aggressive recovery setting (K=1) never un-halves — spare cores
// stay below the session's demand while it shares the platform, so the
// hysteresis keeps the rate down and the cadence stable.
func TestRateRecoveryHoldsUnderPressure(t *testing.T) {
	p := mpsoc.XeonE5_2667V4()
	p.Cores = 2
	srv, err := NewServer(ServerConfig{
		Platform:  p,
		FPS:       24,
		Admission: AdmissionConfig{Enabled: true, MaxQueueRounds: 64, RecoverAfterRounds: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, motion := range []medgen.MotionKind{medgen.Rotate, medgen.Pan} {
		cfg := testSessionConfig(ModeProposed)
		cfg.TimeModel = flatModel(2500 * time.Microsecond)
		if _, err := srv.Submit(testSource(t, medgen.Brain, motion, 8), cfg); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	srv.Close()
	rep, err := srv.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Completed) != 2 {
		t.Fatalf("completed %v rejected %v failed %v", rep.Completed, rep.Rejected, rep.Failed)
	}
	victim := srv.Sessions()[1]
	if !victim.RateHalved() {
		t.Fatal("saturated platform un-halved the victim — recovery flapped under pressure")
	}
	if rep.FramesEncoded != 2*8 {
		t.Fatalf("frames %d, want %d", rep.FramesEncoded, 2*8)
	}
}

// TestOnSessionStateHook: every lifecycle transition is delivered exactly
// once, in a per-session order that starts queued and ends terminal.
func TestOnSessionStateHook(t *testing.T) {
	type event struct {
		id    int
		state SessionState
		err   error
	}
	var mu sync.Mutex
	var events []event
	srv, err := NewServer(ServerConfig{
		Platform: mpsoc.XeonE5_2667V4(),
		FPS:      24,
		OnSessionState: func(id int, state SessionState, err error) {
			mu.Lock()
			events = append(events, event{id, state, err})
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(testSource(t, medgen.Brain, medgen.Rotate, 8), testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	bad := &badAfterSource{FrameSource: testSource(t, medgen.Chest, medgen.Pan, 8), badFrom: 5}
	if _, err := srv.Submit(bad, testSessionConfig(ModeProposed)); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := srv.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	perSession := map[int][]event{}
	for _, e := range events {
		perSession[e.id] = append(perSession[e.id], e)
	}
	if len(perSession) != 2 {
		t.Fatalf("events for %d sessions, want 2: %v", len(perSession), events)
	}
	for id, evs := range perSession {
		if len(evs) != 2 || evs[0].state != StateQueued {
			t.Fatalf("session %d events %v, want queued then terminal", id, evs)
		}
	}
	if got := perSession[0][1]; got.state != StateCompleted || got.err != nil {
		t.Fatalf("session 0 terminal event %v, want completed", got)
	}
	if got := perSession[1][1]; got.state != StateFailed || got.err == nil {
		t.Fatalf("session 1 terminal event %v, want failed with error", got)
	}
}

// TestAbortFailsPendingSessions: Abort departs every queued session as
// failed, reports them through the hook, and refuses to race a Run.
func TestAbortFailsPendingSessions(t *testing.T) {
	var mu sync.Mutex
	failed := map[int]error{}
	srv, err := NewServer(ServerConfig{
		Platform: mpsoc.XeonE5_2667V4(),
		FPS:      24,
		OnSessionState: func(id int, state SessionState, err error) {
			if state == StateFailed {
				mu.Lock()
				failed[id] = err
				mu.Unlock()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := srv.Submit(testSource(t, medgen.Brain, medgen.Still, 4), testSessionConfig(ModeProposed)); err != nil {
			t.Fatal(err)
		}
	}
	cause := fmt.Errorf("shard dead")
	ids, err := srv.Abort(cause)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ids) != "[0 1]" {
		t.Fatalf("aborted %v, want [0 1]", ids)
	}
	for id := 0; id < 2; id++ {
		if st, _ := srv.StateOf(id); st != StateFailed {
			t.Fatalf("session %d state %v after Abort", id, st)
		}
		if failed[id] == nil {
			t.Fatalf("session %d failure not reported through the hook", id)
		}
	}
	if n := srv.LoadReport().Sessions; n != 0 {
		t.Fatalf("LoadReport().Sessions = %d after Abort", n)
	}
	// Second Abort is a no-op.
	ids, err = srv.Abort(cause)
	if err != nil || len(ids) != 0 {
		t.Fatalf("second Abort = %v, %v", ids, err)
	}
}
