// Package core implements the paper's framework (Fig. 2): the per-GOP
// pipeline that turns an incoming bio-medical video into tile-encoding
// threads with per-tile encoding configurations, plus the multi-user
// serving loop that feeds the thread allocator and DVFS policy.
//
// Pipeline stages, in the paper's lettering:
//
//	A  — Motion & texture evaluation        (internal/analysis)
//	B  — Content-aware re-tiling            (internal/tiling)
//	C  — Per-tile quality-aware encoding
//	     configuration: QP + motion search  (internal/quality, internal/motion)
//	D1 — Workload estimation                (internal/workload)
//	D2 — Thread allocation & DVFS           (internal/sched, internal/mpsoc)
//
// Stages A–C and the encode itself live in Session; D1–D2 live in Server,
// which coordinates many sessions over a shared platform.
package core

import (
	"fmt"

	"repro/internal/video"
)

// FrameSource yields the frames of one video on demand. medgen.Generator
// satisfies it via the SourceFromGenerator adapter; tests may use
// pre-rendered sequences via SourceFromSequence.
type FrameSource interface {
	// Frame returns display-order frame n (0 ≤ n < Len()).
	Frame(n int) *video.Frame
	// Len returns the number of frames.
	Len() int
	// FPS returns the nominal frame rate.
	FPS() float64
	// Class names the body-part class for workload LUT sharing.
	Class() string
}

// sequenceSource adapts a pre-rendered video.Sequence.
type sequenceSource struct {
	seq   *video.Sequence
	class string
}

// SourceFromSequence wraps a sequence as a FrameSource with the given
// body-part class label.
func SourceFromSequence(seq *video.Sequence, class string) (FrameSource, error) {
	if seq == nil || len(seq.Frames) == 0 {
		return nil, fmt.Errorf("core: empty sequence")
	}
	if err := seq.Validate(); err != nil {
		return nil, err
	}
	if seq.FPS <= 0 {
		return nil, fmt.Errorf("core: sequence without frame rate")
	}
	return &sequenceSource{seq: seq, class: class}, nil
}

func (s *sequenceSource) Frame(n int) *video.Frame { return s.seq.Frames[n] }
func (s *sequenceSource) Len() int                 { return len(s.seq.Frames) }
func (s *sequenceSource) FPS() float64             { return s.seq.FPS }
func (s *sequenceSource) Class() string            { return s.class }

// generator is the subset of medgen.Generator the adapter needs; declared
// locally to avoid importing medgen into core (core is generic over frame
// sources).
type generator interface {
	Frame(n int) *video.Frame
}

// generatorSource adapts a lazy frame generator.
type generatorSource struct {
	gen    generator
	frames int
	fps    float64
	class  string
}

// SourceFromGenerator wraps a lazy generator (e.g. *medgen.Generator).
func SourceFromGenerator(gen generator, frames int, fps float64, class string) (FrameSource, error) {
	if gen == nil {
		return nil, fmt.Errorf("core: nil generator")
	}
	if frames <= 0 || fps <= 0 {
		return nil, fmt.Errorf("core: invalid source geometry (%d frames @ %v fps)", frames, fps)
	}
	return &generatorSource{gen: gen, frames: frames, fps: fps, class: class}, nil
}

func (g *generatorSource) Frame(n int) *video.Frame { return g.gen.Frame(n) }
func (g *generatorSource) Len() int                 { return g.frames }
func (g *generatorSource) FPS() float64             { return g.fps }
func (g *generatorSource) Class() string            { return g.class }
