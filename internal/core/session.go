package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"repro/internal/analysis"
	"repro/internal/codec"
	"repro/internal/motion"
	"repro/internal/quality"
	"repro/internal/sched"
	"repro/internal/tiling"
	"repro/internal/transform"
	"repro/internal/video"
	"repro/internal/workload"
)

// Mode selects the transcoding strategy of a session.
type Mode int

const (
	// ModeProposed is the paper's content-aware pipeline.
	ModeProposed Mode = iota
	// ModeBaseline reproduces [19] (Khan et al.): uniform capacity-sized
	// tiling with one thread per core, a fixed encoding configuration with
	// the reference encoder's full-quality TZ motion search (no
	// content-aware search selection), all active cores at fmax.
	ModeBaseline
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeBaseline {
		return "baseline"
	}
	return "proposed"
}

// SessionConfig bundles all per-session parameters. Zero-value fields are
// replaced by the referenced packages' defaults in NewSession.
type SessionConfig struct {
	Mode        Mode
	Codec       codec.Config
	Analysis    analysis.Config
	Retile      tiling.RetileConfig
	Policy      motion.PolicyConfig
	Constraints quality.Constraints
	// Workers bounds tile-encoding parallelism inside one frame (1 = off).
	Workers int
	// BaselineTiles overrides the baseline's capacity-derived tile count
	// (0 = derive from the first GOP's measured workload).
	BaselineTiles int
	// BaselineQP is the fixed QP of the baseline configuration (0 → 32).
	BaselineQP int
	// BaselineWindow is the baseline's TZ search window (0 → 64).
	BaselineWindow int
	// TimeModel maps a tile's measured stats to the CPU time recorded in
	// the workload LUT (and hence used for allocation). Nil records the
	// raw measured EncodeTime. The experiment harness installs a model
	// that re-weights motion-estimation time to an HEVC encoder's cost
	// structure (see experiments.KvazaarTimeModel). Excluded from the
	// wire format (a func cannot cross a process boundary; the model
	// shapes LUT bookkeeping, never encoded bits) — the receiving server
	// installs its own.
	TimeModel func(codec.TileStats) time.Duration `json:"-"`
	// DemandHint seeds the session's core-demand estimate for load
	// reporting (Server.LoadReport) before its first round competes —
	// the serving layer's placement estimate rides in here so a shard's
	// demand reflects a just-placed session immediately. The allocator's
	// sched.Result.DemandCores replaces it every round the session
	// competes; 0 leaves the pre-first-round demand at the one-core floor.
	DemandHint int
	// KeepBitstreams retains each frame's encoded payload in
	// FrameReport.Bitstream, so callers can decode-verify or persist the
	// output. Off by default: a long-running service would otherwise hold
	// every encoded byte in memory.
	KeepBitstreams bool

	// Ablation switches (DESIGN.md §5): each removes one contribution
	// from the proposed pipeline while keeping the rest intact, so its
	// individual effect is measurable. All are no-ops in baseline mode.

	// DisableRetile replaces the content-aware re-tiler with a uniform
	// 4×4 grid.
	DisableRetile bool
	// DisableQPAdapt freezes per-tile QPs at the texture defaults
	// (Algorithm 1 off).
	DisableQPAdapt bool
	// DisableFastME replaces the GOP-aware search policy with TZ search
	// (window 64) on every tile.
	DisableFastME bool
}

// DefaultSessionConfig returns the paper's evaluation configuration.
func DefaultSessionConfig() SessionConfig {
	return SessionConfig{
		Mode:        ModeProposed,
		Codec:       codec.DefaultConfig(),
		Analysis:    analysis.DefaultConfig(),
		Retile:      tiling.DefaultRetileConfig(),
		Policy:      motion.DefaultPolicyConfig(),
		Constraints: quality.DefaultConstraints(),
		Workers:     1,
	}
}

// FrameReport is the outcome of encoding one frame.
type FrameReport struct {
	Frame      int
	Type       codec.FrameType
	Bits       int
	PSNR       float64
	Kbps       float64
	EncodeTime time.Duration
	Tiles      []codec.TileStats
	// Digest is an FNV-1a hash of the frame's encoded bitstream (all tile
	// payloads in grid order). Encoded bytes are deterministic for a given
	// session history, so equal digests across serving strategies prove
	// the parallel serving loop is bit-identical to the sequential one.
	Digest uint64
	// Bitstream is the frame's encoded payload, retained only when
	// SessionConfig.KeepBitstreams is set (nil otherwise).
	Bitstream *codec.Bitstream
}

// GOPReport aggregates one group of pictures.
type GOPReport struct {
	// Index is the GOP number (0-based).
	Index int
	// Grid is the tile structure used for the whole GOP.
	Grid *tiling.Grid
	// Contents are the per-tile content descriptors from stage A.
	Contents []analysis.TileContent
	// Frames holds the per-frame outcomes.
	Frames []FrameReport
	// MeanPSNR, MeanKbps aggregate the GOP.
	MeanPSNR float64
	MeanKbps float64
	// CPUTime is the total encode CPU time of the GOP.
	CPUTime time.Duration
	// Digest chains the frames' bitstream digests (see FrameReport.Digest).
	Digest uint64
}

// Session is one user's online transcoding of one video through the Fig. 2
// pipeline. A session is single-goroutine: the Server drives each session
// from exactly one goroutine per round (sessions of one server run
// concurrently with each other; tile-level parallelism happens inside the
// codec). The only cross-session shared state is the workload LUT, which
// is internally synchronized and order-insensitive (mean-based).
type Session struct {
	ID      int
	cfg     SessionConfig
	src     FrameSource
	enc     *codec.Encoder
	lut     *workload.LUT
	adapter *quality.Adapter
	policy  *motion.GOPPolicy

	// Per-GOP state (stage B output).
	grid     *tiling.Grid
	contents []analysis.TileContent
	qps      []int
	// preparedFor is the frame index stages A–C last ran for (-1 before
	// the first GOP). It keeps estimation and encoding in lockstep: the
	// estimate-ahead stage prepares the upcoming GOP once, and the encode
	// path reuses that preparation instead of redoing it — and, crucially,
	// a round that estimates after a completed GOP re-runs A–C for the
	// *new* GOP instead of pricing threads on the previous GOP's grid.
	preparedFor int

	// Baseline state.
	baselineGrid *tiling.Grid

	// qpOffset is the admission ladder's service-level degradation: a
	// non-negative offset added to every tile's QP (both in the encode
	// parameters and in the stage-D1 estimation keys), trading quality for
	// a smaller workload so an overloaded platform can still admit the
	// session. 0 outside overload.
	qpOffset int
	// degraded records that the admission ladder replaced the content
	// -aware re-tiler with the uniform fallback grid for this session.
	degraded bool
	// rateHalved records the admission ladder's frame-rate rung: the
	// server serves the session every other GOP round (it sits out the
	// round after each GOP it encodes), halving its delivered frame rate
	// so a heavily-overloaded platform keeps it connected.
	rateHalved bool

	frame int // next frame to encode

	// prevTileStats feeds Algorithm 1 with the previous frame's per-tile
	// measurements.
	prevTileStats []codec.TileStats
}

// NewSession validates the configuration and builds a session. The LUT is
// shared across sessions of the same body-part class (see workload.Store).
func NewSession(id int, src FrameSource, cfg SessionConfig, lut *workload.LUT) (*Session, error) {
	if src == nil {
		return nil, fmt.Errorf("core: nil frame source")
	}
	if lut == nil {
		return nil, fmt.Errorf("core: nil workload LUT")
	}
	f0 := src.Frame(0)
	if cfg.Codec.Width == 0 {
		cfg.Codec = codec.DefaultConfig()
	}
	cfg.Codec.Width, cfg.Codec.Height = f0.Width(), f0.Height()
	cfg.Codec.FPS = src.FPS()
	if err := cfg.Codec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.BaselineQP == 0 {
		cfg.BaselineQP = 32
	}
	if cfg.BaselineWindow == 0 {
		cfg.BaselineWindow = 64
	}
	enc, err := codec.NewEncoder(cfg.Codec)
	if err != nil {
		return nil, err
	}
	adapter, err := quality.NewAdapter(cfg.Constraints, 1)
	if err != nil {
		return nil, err
	}
	policy, err := motion.NewGOPPolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	if err := cfg.Analysis.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Retile.Validate(f0.Width(), f0.Height()); err != nil {
		return nil, err
	}
	return &Session{
		ID: id, cfg: cfg, src: src, enc: enc, lut: lut,
		adapter: adapter, policy: policy, preparedFor: -1,
	}, nil
}

// Config returns the session's (defaulted) configuration.
func (s *Session) Config() SessionConfig { return s.cfg }

// Grid returns the current GOP's tile structure (nil before the first GOP).
func (s *Session) Grid() *tiling.Grid { return s.grid }

// Contents returns the current GOP's tile content descriptors.
func (s *Session) Contents() []analysis.TileContent { return s.contents }

// NextFrame returns the index of the next frame to encode.
func (s *Session) NextFrame() int { return s.frame }

// Finished reports whether the whole video has been encoded.
func (s *Session) Finished() bool { return s.frame >= s.src.Len() }

// QPOffset returns the admission ladder's current QP degradation offset.
func (s *Session) QPOffset() int { return s.qpOffset }

// SetQPOffset installs a service-level QP degradation: off is added to
// every tile's QP from the next encoded frame on (negative values clamp to
// 0). Estimation keys shift with it, so stage D1 prices the degraded
// configuration the encoder will actually run.
func (s *Session) SetQPOffset(off int) {
	if off < 0 {
		off = 0
	}
	s.qpOffset = off
}

// effectiveQP applies the service-level QP offset within codec bounds.
func (s *Session) effectiveQP(qp int) int {
	qp += s.qpOffset
	if qp < transform.MinQP {
		qp = transform.MinQP
	}
	if qp > transform.MaxQP {
		qp = transform.MaxQP
	}
	return qp
}

// Degraded reports whether the admission ladder has replaced the content
// -aware re-tiler for this session.
func (s *Session) Degraded() bool { return s.degraded }

// HalveRate applies the admission ladder's frame-rate rung: from now on
// the server serves this session every other GOP round, so it receives
// half the service frame rate instead of starving in the queue. The
// session's encoded output is unaffected — only the serving cadence
// changes — so the degradation is reversible: RestoreRate (driven by the
// server's headroom-based recovery, AdmissionConfig.RecoverAfterRounds)
// returns the session to full rate.
func (s *Session) HalveRate() { s.rateHalved = true }

// RestoreRate undoes HalveRate: the session is served every round again.
// The server applies it once the platform has shown spare allocation
// headroom for enough consecutive rounds (the rate-rung recovery
// hysteresis); nothing stops the ladder from halving the rate again if
// the platform saturates later.
func (s *Session) RestoreRate() { s.rateHalved = false }

// RateHalved reports whether the admission ladder has halved the
// session's service frame rate.
func (s *Session) RateHalved() bool { return s.rateHalved }

// Class returns the session's workload class (the routing and LUT key).
func (s *Session) Class() string { return s.src.Class() }

// AtGOPBoundary reports whether the next frame starts a new GOP (or the
// video is finished) — the only positions a session may migrate from.
func (s *Session) AtGOPBoundary() bool {
	return s.Finished() || s.cfg.Codec.FrameInGOP(s.frame) == 0
}

// adopt re-homes the session on a new server during migration: a fresh
// shard-local id, the target's per-class workload LUT (estimates and
// observations now flow through the target's store), and the target's
// fallback worker budget. Everything else — encoder reference state, QP
// adapter, motion policy, degradations — rides along untouched, so the
// encoded bitstream continues bit-identically.
func (s *Session) adopt(id int, lut *workload.LUT, workers int) {
	s.ID = id
	s.lut = lut
	if workers > 0 {
		s.cfg.Workers = workers
	}
}

// Degrade switches the session to the uniform fallback tiling (the
// admission ladder's first rung, applied to newcomers when the platform
// cannot admit everyone) and re-runs stages A–C so subsequent estimation
// prices the degraded grid. Only legal at a GOP boundary — mid-GOP the
// tile structure is pinned by the frames already encoded.
func (s *Session) Degrade() error {
	if s.cfg.Codec.FrameInGOP(s.frame) != 0 {
		return fmt.Errorf("core: session %d cannot degrade mid-GOP (frame %d)", s.ID, s.frame)
	}
	s.degraded = true
	s.cfg.DisableRetile = true
	s.grid = nil
	s.preparedFor = -1
	return s.PrepareForEstimation()
}

// prepareGOP runs stages A–C for the GOP starting at the current frame:
// evaluate motion and texture, re-tile, reset per-tile QPs and the motion
// policy's learned directions.
func (s *Session) prepareGOP() error {
	cur := s.src.Frame(s.frame)
	// The "previous frame" of stage A is the encoder's reconstructed
	// reference — exactly what an online transcoder has in hand.
	ev, err := analysis.NewEvaluator(s.cfg.Analysis, cur.Y, refPlaneOf(s.enc))
	if err != nil {
		return err
	}

	if s.cfg.Mode == ModeBaseline {
		grid, err := s.baselineGridFor(cur.Width(), cur.Height())
		if err != nil {
			return err
		}
		s.grid = grid
	} else if s.cfg.DisableRetile {
		grid, err := tiling.Uniform(cur.Width(), cur.Height(), 4, 4)
		if err != nil {
			return err
		}
		s.grid = grid
	} else {
		grid, err := tiling.Retile(cur.Width(), cur.Height(), s.cfg.Retile, ev)
		if err != nil {
			return err
		}
		s.grid = grid
	}

	s.contents, err = ev.EvaluateGrid(s.grid)
	if err != nil {
		return err
	}
	s.policy.Reset()
	s.qps = make([]int, len(s.grid.Tiles))
	for i, tc := range s.contents {
		if s.cfg.Mode == ModeBaseline {
			s.qps[i] = s.cfg.BaselineQP
		} else {
			s.qps[i] = s.adapter.ResetTile(i, tc.Texture)
		}
	}
	s.prevTileStats = nil
	s.preparedFor = s.frame
	return nil
}

// baselineGridFor derives the [19] tiling: one uniform tile per core-slot,
// with the tile count set so each tile's workload ≈ one core's capacity.
// The count comes from BaselineTiles or, when unset, from a probe encode of
// the first frame.
func (s *Session) baselineGridFor(w, h int) (*tiling.Grid, error) {
	if s.baselineGrid != nil {
		return s.baselineGrid, nil
	}
	n := s.cfg.BaselineTiles
	if n <= 0 {
		n = s.probeBaselineTiles()
	}
	nx, ny := factorize(n, w, h)
	grid, err := tiling.Uniform(w, h, nx, ny)
	if err != nil {
		return nil, err
	}
	s.baselineGrid = grid
	return grid, nil
}

// probeBaselineTiles estimates the whole-frame workload with a single-tile
// probe encode (on a scratch encoder) and sizes tiles to core capacity.
func (s *Session) probeBaselineTiles() int {
	probeEnc, err := codec.NewEncoder(s.cfg.Codec)
	if err != nil {
		return 4
	}
	f := s.src.Frame(s.frame)
	grid, err := tiling.Uniform(f.Width(), f.Height(), 1, 1)
	if err != nil {
		return 4
	}
	params := []codec.TileParams{{
		QP:       s.cfg.BaselineQP,
		Searcher: motion.TZSearch{},
		Window:   s.cfg.BaselineWindow,
	}}
	stats, _, err := probeEnc.EncodeFrame(f, grid, params)
	if err != nil {
		return 4
	}
	slot := time.Duration(float64(time.Second) / s.src.FPS())
	n := int(math.Ceil(stats.EncodeTime.Seconds() / slot.Seconds()))
	// Inter frames are cheaper than the I-frame probe; [19] still keeps
	// several tiles for parallel slack. Clamp to a sane range.
	if n < 2 {
		n = 2
	}
	if n > 10 {
		n = 10
	}
	return n
}

// factorize picks an nx×ny split with nx·ny ≥ n tiles matching the frame
// aspect ratio as closely as possible.
func factorize(n, w, h int) (nx, ny int) {
	if n < 1 {
		n = 1
	}
	bestNX, bestNY, bestWaste := n, 1, math.MaxFloat64
	for ty := 1; ty <= n; ty++ {
		tx := (n + ty - 1) / ty
		if tx*ty < n {
			tx++
		}
		// Aspect mismatch of resulting tiles vs square.
		tw, th := float64(w)/float64(tx), float64(h)/float64(ty)
		r := tw / th
		if r < 1 {
			r = 1 / r
		}
		waste := r + 0.1*float64(tx*ty-n)
		if waste < bestWaste {
			bestNX, bestNY, bestWaste = tx, ty, waste
		}
	}
	return bestNX, bestNY
}

// tileParams assembles stage C's per-tile configuration for the next frame.
func (s *Session) tileParams() []codec.TileParams {
	frameInGOP := s.cfg.Codec.FrameInGOP(s.frame)
	params := make([]codec.TileParams, len(s.grid.Tiles))
	for i, tc := range s.contents {
		if s.cfg.Mode == ModeBaseline {
			params[i] = codec.TileParams{
				QP:       s.effectiveQP(s.cfg.BaselineQP),
				Searcher: motion.TZSearch{},
				Window:   s.cfg.BaselineWindow,
			}
			continue
		}
		if s.cfg.DisableFastME {
			params[i] = codec.TileParams{QP: s.effectiveQP(s.qps[i]), Searcher: motion.TZSearch{}, Window: 64}
			continue
		}
		searcher, window := s.policy.Choose(i, tc.Motion == analysis.MotionHigh, frameInGOP)
		params[i] = codec.TileParams{
			QP:       s.effectiveQP(s.qps[i]),
			Searcher: searcher,
			Window:   window,
			Pred:     s.policy.PredFor(i, frameInGOP),
		}
	}
	return params
}

// EncodeNextFrame advances the session by one frame: runs stages A–C at
// GOP boundaries, encodes, feeds measurements back into the QP adapter,
// the motion policy and the workload LUT, and returns the frame report.
func (s *Session) EncodeNextFrame() (*FrameReport, error) {
	return s.EncodeNextFrameContext(context.Background(), 0)
}

// EncodeNextFrameContext is EncodeNextFrame with cancellation and a
// per-call tile-worker budget (≤ 0 falls back to the session's configured
// Workers). The serving loop passes each round's allocated core count
// here, so intra-frame parallelism follows the allocation instead of a
// global constant. On error — cancellation included — the session does not
// advance, so the frame can be retried.
func (s *Session) EncodeNextFrameContext(ctx context.Context, workers int) (*FrameReport, error) {
	if s.Finished() {
		return nil, fmt.Errorf("core: session %d already finished", s.ID)
	}
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	frameInGOP := s.cfg.Codec.FrameInGOP(s.frame)
	if (s.grid == nil || frameInGOP == 0) && s.preparedFor != s.frame {
		if err := s.prepareGOP(); err != nil {
			return nil, err
		}
	}
	params := s.tileParams()
	f := s.src.Frame(s.frame)
	stats, bs, err := s.enc.EncodeFrameContext(ctx, f, s.grid, params, workers)
	if err != nil {
		return nil, err
	}

	// Feed back: workload LUT (D1), motion policy direction (first frame
	// of GOP), QP adaptation (Algorithm 1, every frame).
	for i, ts := range stats.Tiles {
		tc := s.contents[i]
		key := workload.MakeKey(ts.Tile.Area(), int(tc.Texture), int(tc.Motion), params[i].QP, params[i].Window)
		observed := ts.EncodeTime
		if s.cfg.TimeModel != nil {
			observed = s.cfg.TimeModel(ts)
		}
		s.lut.Observe(key, observed)
		if frameInGOP == 0 && stats.Type == codec.FrameP {
			s.policy.Observe(i, ts.MeanMV)
		}
	}
	if s.cfg.Mode == ModeProposed && !s.cfg.DisableQPAdapt {
		for i, ts := range stats.Tiles {
			// Tile bitrate extrapolated to a full-frame-share rate.
			share := float64(ts.Tile.Area()) / float64(f.Width()*f.Height())
			kbps := float64(stats.Bits) * s.src.FPS() / 1e3 * share
			s.qps[i] = s.adapter.Adapt(i, quality.Measurement{
				PSNR:        ts.PSNR,
				BitrateKbps: kbps,
			}, s.contents[i].Texture)
		}
	}
	s.prevTileStats = stats.Tiles

	rep := &FrameReport{
		Frame:      s.frame,
		Type:       stats.Type,
		Bits:       stats.Bits,
		PSNR:       stats.PSNR,
		Kbps:       stats.Kbps(s.src.FPS()),
		EncodeTime: stats.EncodeTime,
		Tiles:      stats.Tiles,
		Digest:     bitstreamDigest(bs),
	}
	if s.cfg.KeepBitstreams {
		rep.Bitstream = bs
	}
	s.frame++
	return rep, nil
}

// bitstreamDigest hashes a frame's tile payloads (FNV-1a, grid order).
func bitstreamDigest(bs *codec.Bitstream) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(bs.Type))
	h.Write(buf[:])
	for _, tile := range bs.Tiles {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(tile)))
		h.Write(buf[:])
		h.Write(tile)
	}
	return h.Sum64()
}

// EncodeGOP encodes the next full GOP (or the remaining frames if fewer)
// and aggregates the reports.
func (s *Session) EncodeGOP() (*GOPReport, error) {
	return s.EncodeGOPContext(context.Background(), 0)
}

// EncodeGOPContext is EncodeGOP with cancellation and a per-call
// tile-worker budget (≤ 0 falls back to the session's configured Workers).
// Cancellation is honoured at frame boundaries: frames already encoded
// stay encoded and the session remains mid-GOP. A subsequent call resumes
// from that position and encodes only up to the current GOP's boundary,
// so one report never spans two GOPs (or two tile grids).
func (s *Session) EncodeGOPContext(ctx context.Context, workers int) (*GOPReport, error) {
	if s.Finished() {
		return nil, fmt.Errorf("core: session %d already finished", s.ID)
	}
	gop := &GOPReport{Index: s.frame / s.cfg.Codec.GOPSize}
	n := s.cfg.Codec.GOPSize - s.cfg.Codec.FrameInGOP(s.frame)
	if rem := s.src.Len() - s.frame; rem < n {
		n = rem
	}
	var psnrSum, kbpsSum float64
	digest := fnv.New64a()
	var buf [8]byte
	for i := 0; i < n; i++ {
		fr, err := s.EncodeNextFrameContext(ctx, workers)
		if err != nil {
			return nil, err
		}
		gop.Frames = append(gop.Frames, *fr)
		psnrSum += fr.PSNR
		kbpsSum += fr.Kbps
		gop.CPUTime += fr.EncodeTime
		binary.LittleEndian.PutUint64(buf[:], fr.Digest)
		digest.Write(buf[:])
	}
	gop.Grid = s.grid
	gop.Contents = s.contents
	gop.MeanPSNR = psnrSum / float64(n)
	gop.MeanKbps = kbpsSum / float64(n)
	gop.Digest = digest.Sum64()
	return gop, nil
}

// EstimateThreads produces stage D1's output for the allocator: one thread
// per tile of the current grid with the LUT's CPU-time estimate. The
// session must have a prepared GOP (encode at least one frame first, or
// call PrepareForEstimation).
func (s *Session) EstimateThreads() ([]sched.Thread, error) {
	keys, err := s.appendEstimationKeys(nil)
	if err != nil {
		return nil, err
	}
	threads := make([]sched.Thread, len(keys))
	for i, key := range keys {
		threads[i] = sched.Thread{User: s.ID, Tile: i, TimeFmax: s.lut.Estimate(key)}
	}
	return threads, nil
}

// appendEstimationKeys appends the per-tile LUT keys stage D1 looks up
// for the current grid — the workload fingerprint of the session's
// upcoming GOP. The server batches the actual LUT resolution across all
// sessions of a class (Server.resolveEstimates) and reuses the same keys
// as the allocator-memoization roster fingerprint, so this is the single
// source of truth for what a session is about to cost.
func (s *Session) appendEstimationKeys(dst []workload.Key) ([]workload.Key, error) {
	if s.grid == nil {
		return nil, fmt.Errorf("core: session %d has no prepared GOP", s.ID)
	}
	frameInGOP := s.cfg.Codec.FrameInGOP(s.frame)
	for i, tc := range s.contents {
		qp := s.cfg.BaselineQP
		window := s.cfg.BaselineWindow
		if s.cfg.Mode == ModeProposed {
			qp = s.qps[i]
			_, window = s.policy.Choose(i, tc.Motion == analysis.MotionHigh, frameInGOP)
		}
		dst = append(dst, workload.MakeKey(s.grid.Tiles[i].Area(), int(tc.Texture), int(tc.Motion), s.effectiveQP(qp), window))
	}
	return dst, nil
}

// PrepareForEstimation runs stages A–C for the upcoming frame without
// encoding, so the session can report thread estimates for admission
// control. It is a no-op when the current frame's GOP is already prepared
// — a session rejected in one round keeps its preparation for the next —
// and re-runs the analysis when the session has advanced past the frame it
// last prepared (otherwise estimates would price the previous GOP's grid).
func (s *Session) PrepareForEstimation() error {
	if s.grid != nil && (s.preparedFor == s.frame || s.cfg.Codec.FrameInGOP(s.frame) != 0) {
		return nil
	}
	return s.prepareGOP()
}

// refPlaneOf returns the encoder's reference luma or nil before any frame.
func refPlaneOf(enc *codec.Encoder) *video.Plane {
	if ref := enc.Reference(); ref != nil {
		return ref.Y
	}
	return nil
}
