// Package motion implements block-matching motion estimation: the SAD cost
// kernel and the family of search algorithms the paper compares — full
// search, TZ search (HM reference), three-step search, diamond search,
// cross search, one-at-a-time search and hexagon-based search (horizontal,
// vertical and rotating) — plus the paper's proposed combined GOP-aware
// search policy for bio-medical video (Sec. III-C2).
package motion

import (
	"fmt"

	"repro/internal/video"
)

// MV is a motion vector in full-pel units.
type MV struct{ X, Y int }

// Add returns the component-wise sum.
func (v MV) Add(o MV) MV { return MV{v.X + o.X, v.Y + o.Y} }

// String formats the vector.
func (v MV) String() string { return fmt.Sprintf("(%d,%d)", v.X, v.Y) }

// AbsSum returns |X|+|Y|, used as a motion-vector rate proxy.
func (v MV) AbsSum() int { return abs(v.X) + abs(v.Y) }

// Horizontalish reports whether the vector is predominantly horizontal.
// Ties count as horizontal, matching the hexagon-search convention that the
// horizontal pattern wins for lateral motion.
func (v MV) Horizontalish() bool { return abs(v.X) >= abs(v.Y) }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Block identifies the current block to be predicted and the reference
// plane to search in. Cur and Ref must have identical dimensions.
type Block struct {
	Cur, Ref   *video.Plane
	X, Y, W, H int
}

// Validate reports geometry errors.
func (b Block) Validate() error {
	if b.Cur == nil || b.Ref == nil {
		return fmt.Errorf("motion: nil plane")
	}
	if b.Cur.W != b.Ref.W || b.Cur.H != b.Ref.H {
		return fmt.Errorf("motion: cur %dx%d vs ref %dx%d: %w", b.Cur.W, b.Cur.H, b.Ref.W, b.Ref.H, video.ErrSizeMismatch)
	}
	if b.X < 0 || b.Y < 0 || b.W <= 0 || b.H <= 0 || b.X+b.W > b.Cur.W || b.Y+b.H > b.Cur.H {
		return fmt.Errorf("motion: block %dx%d@(%d,%d) outside %dx%d", b.W, b.H, b.X, b.Y, b.Cur.W, b.Cur.H)
	}
	return nil
}

// Result is the outcome of a search.
type Result struct {
	MV    MV
	Cost  int64 // SAD of the winning candidate
	Evals int   // number of candidate positions evaluated (complexity proxy)
}

// Searcher is a motion search algorithm. Implementations must return the
// best candidate found; window bounds both motion-vector components and
// pred seeds the search (the predicted vector from neighboring blocks or
// the co-located tile of the previous frame).
type Searcher interface {
	Name() string
	Search(b Block, window int, pred MV) Result
}

// mvLambda is the motion-vector rate weight of the search cost
// J = SAD + λ·|mv − pred|₁, the standard rate-constrained matching metric.
// Without it an exhaustive search picks far-away SAD minima whose vectors
// cost more se(v) bits than the residual they save.
const mvLambda = 4

// searchState tracks the best candidate and memoizes SAD evaluations so
// iterative patterns never pay twice for one position. Selection uses the
// rate-penalized cost; Result reports the winner's raw SAD.
type searchState struct {
	b      Block
	window int
	pred   MV
	best   MV
	cost   int64 // penalized cost of the incumbent
	rawSAD int64 // raw SAD of the incumbent
	evals  int
	seen   map[MV]int64
}

func newSearchState(b Block, window int) *searchState {
	return &searchState{b: b, window: window, cost: 1 << 62, rawSAD: 1 << 62, seen: make(map[MV]int64, 64)}
}

// mvPenalty is the rate term of candidate v.
func (s *searchState) mvPenalty(v MV) int64 {
	d := MV{v.X - s.pred.X, v.Y - s.pred.Y}
	return mvLambda * int64(d.AbsSum())
}

// inRange reports whether candidate v keeps the reference block inside the
// frame and inside the search window.
func (s *searchState) inRange(v MV) bool {
	if abs(v.X) > s.window || abs(v.Y) > s.window {
		return false
	}
	rx, ry := s.b.X+v.X, s.b.Y+v.Y
	return rx >= 0 && ry >= 0 && rx+s.b.W <= s.b.Ref.W && ry+s.b.H <= s.b.Ref.H
}

// try evaluates candidate v (once) and updates the incumbent. It returns
// the candidate's penalized cost, or a huge cost when out of range.
func (s *searchState) try(v MV) int64 {
	if c, ok := s.seen[v]; ok {
		return c
	}
	if !s.inRange(v) {
		return 1 << 62
	}
	pen := s.mvPenalty(v)
	raw := sad(s.b, v, s.cost-pen)
	c := raw + pen
	s.seen[v] = c
	s.evals++
	if c < s.cost || (c == s.cost && v.AbsSum() < s.best.AbsSum()) {
		s.cost, s.best, s.rawSAD = c, v, raw
	}
	return c
}

func (s *searchState) result() Result { return Result{MV: s.best, Cost: s.rawSAD, Evals: s.evals} }

// sad computes the sum of absolute differences between the current block
// and the reference block displaced by v, aborting early once the partial
// sum exceeds bestSoFar (standard ME early termination).
func sad(b Block, v MV, bestSoFar int64) int64 {
	rx, ry := b.X+v.X, b.Y+v.Y
	var sum int64
	for y := 0; y < b.H; y++ {
		cRow := b.Cur.Pix[(b.Y+y)*b.Cur.Stride+b.X : (b.Y+y)*b.Cur.Stride+b.X+b.W]
		rRow := b.Ref.Pix[(ry+y)*b.Ref.Stride+rx : (ry+y)*b.Ref.Stride+rx+b.W]
		for i := range cRow {
			d := int(cRow[i]) - int(rRow[i])
			if d < 0 {
				d = -d
			}
			sum += int64(d)
		}
		if sum >= bestSoFar {
			return sum
		}
	}
	return sum
}

// SADAt exposes a single SAD evaluation for callers outside the search loop
// (mode decision in the codec). It returns an error for invalid geometry.
func SADAt(b Block, v MV) (int64, error) {
	if err := b.Validate(); err != nil {
		return 0, err
	}
	rx, ry := b.X+v.X, b.Y+v.Y
	if rx < 0 || ry < 0 || rx+b.W > b.Ref.W || ry+b.H > b.Ref.H {
		return 0, fmt.Errorf("motion: candidate %v out of frame", v)
	}
	return sad(b, v, 1<<62), nil
}

// seed initializes the state with the predictor (which anchors the rate
// penalty) and the zero vector.
func (s *searchState) seed(pred MV) {
	s.pred = clampMV(pred, s.window)
	s.try(MV{})
	if s.pred != (MV{}) {
		s.try(s.pred)
	}
}

func clampMV(v MV, w int) MV {
	return MV{clamp(v.X, -w, w), clamp(v.Y, -w, w)}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
