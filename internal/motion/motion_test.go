package motion

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/medgen"
	"repro/internal/video"
)

// shiftedPlanes builds a reference plane of structured content and a
// current plane whose interior is the reference shifted by (dx, dy), so the
// true motion vector of interior blocks is exactly (dx, dy).
func shiftedPlanes(w, h, dx, dy int) (cur, ref *video.Plane) {
	ref = video.NewPlane(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			ref.Set(x, y, texel(x, y))
		}
	}
	cur = video.NewPlane(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			cur.Set(x, y, texel(x+dx, y+dy))
		}
	}
	return cur, ref
}

// texel is a deterministic smooth *separable* texture. Pattern searches
// (diamond, hexagon, cross, OTS) assume the SAD error surface decreases
// monotonically toward the optimum — true for natural video, false for
// random noise. A separable texture makes the SAD surface a sum of
// per-axis convex-ish terms, so every pattern search converges; the
// periods exceed twice the search window, keeping the optimum unique.
func texel(x, y int) uint8 {
	v := 120 +
		60*math.Sin(0.045*float64(x)) +
		50*math.Sin(0.038*float64(y))
	return video.ClampU8(int(v + 0.5))
}

func interiorBlock(cur, ref *video.Plane) Block {
	return Block{Cur: cur, Ref: ref, X: cur.W / 2, Y: cur.H / 2, W: 16, H: 16}
}

var allSearchers = []Searcher{
	FullSearch{},
	TZSearch{},
	ThreeStep{},
	Diamond{},
	Cross{},
	OneAtATime{},
	Hexagon{Orientation: HexHorizontal},
	Hexagon{Orientation: HexVertical},
	Hexagon{Orientation: HexRotating},
}

func TestBlockValidate(t *testing.T) {
	cur, ref := shiftedPlanes(64, 64, 0, 0)
	good := Block{Cur: cur, Ref: ref, X: 0, Y: 0, W: 16, H: 16}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Block{
		{Cur: nil, Ref: ref, W: 16, H: 16},
		{Cur: cur, Ref: video.NewPlane(32, 64), W: 16, H: 16},
		{Cur: cur, Ref: ref, X: -1, W: 16, H: 16},
		{Cur: cur, Ref: ref, X: 60, Y: 0, W: 16, H: 16},
		{Cur: cur, Ref: ref, W: 0, H: 16},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestZeroMotionFoundByAll(t *testing.T) {
	cur, ref := shiftedPlanes(96, 96, 0, 0)
	b := interiorBlock(cur, ref)
	for _, s := range allSearchers {
		res := s.Search(b, 16, MV{})
		if res.MV != (MV{}) {
			t.Errorf("%s: MV = %v, want (0,0)", s.Name(), res.MV)
		}
		if res.Cost != 0 {
			t.Errorf("%s: cost = %d, want 0", s.Name(), res.Cost)
		}
	}
}

func TestExactShiftFoundOnMedicalContent(t *testing.T) {
	// Noise-free integer panning produces an exact shifted copy; on the
	// structured anatomy (rich 2-D texture, no aperture ambiguity) full
	// search must recover the global shift bit-exactly. (TZ and the other
	// fast patterns are deliberately non-exhaustive and are held to the
	// statistical near-optimality contract below instead.)
	for _, pan := range []MV{{3, 0}, {0, 3}, {-2, 2}, {4, -3}} {
		cur, ref := medicalPanPlanes(t, pan.X, pan.Y)
		want := MV{-pan.X, -pan.Y}
		// A block on the anatomy ring (strong gradients in both axes).
		b := Block{Cur: cur, Ref: ref, X: 208, Y: 224, W: 16, H: 16}
		res := FullSearch{}.Search(b, 16, MV{})
		if res.MV != want || res.Cost != 0 {
			t.Errorf("full pan %v: MV %v cost %d, want %v exact", pan, res.MV, res.Cost, want)
		}
	}
}

// medicalPanPlanes renders two consecutive frames of a panning synthetic
// medical video without noise, so the true global motion in MV space is
// exactly (−vx, −vy).
func medicalPanPlanes(t *testing.T, vx, vy int) (cur, ref *video.Plane) {
	t.Helper()
	cfg := medgen.Default()
	cfg.Motion = medgen.Pan
	cfg.PanVX, cfg.PanVY = float64(vx), float64(vy)
	cfg.NoiseSigma = -1
	cfg.Frames = 2
	g, err := medgen.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g.Frame(1).Y, g.Frame(0).Y
}

func TestFastSearchersNearOptimalOnMedicalContent(t *testing.T) {
	// The statistical contract behind Table I: on bio-medical content,
	// every fast searcher's total prediction cost over the active region
	// stays within a small factor of exhaustive search (the paper reports
	// ≤ 0.32 dB PSNR loss), at a fraction of the evaluations.
	cur, ref := medicalPanPlanes(t, 3, -2)
	want := MV{-3, 2}
	var blocks []Block
	for by := 160; by < 320; by += 16 {
		for bx := 224; bx < 416; bx += 16 {
			blocks = append(blocks, Block{Cur: cur, Ref: ref, X: bx, Y: by, W: 16, H: 16})
		}
	}
	var fullTotal int64
	exactFull := 0
	for _, b := range blocks {
		res := FullSearch{}.Search(b, 16, MV{})
		fullTotal += res.Cost
		if res.MV == want {
			exactFull++
		}
	}
	if exactFull < len(blocks)*3/4 {
		t.Fatalf("full search found the global pan on only %d/%d blocks", exactFull, len(blocks))
	}
	for _, s := range allSearchers[1:] {
		var total int64
		for _, b := range blocks {
			res := s.Search(b, 16, MV{})
			total += res.Cost
		}
		// Bound the *excess* average per-pixel SAD over full search. 6
		// grey levels per pixel of extra residual corresponds to well
		// under 1 dB of PSNR at these QPs — the regime Table I reports.
		excess := float64(total-fullTotal) / float64(len(blocks)*16*16)
		if excess > 6 {
			t.Errorf("%s: excess cost %.2f/px over full search — not near-optimal", s.Name(), excess)
		}
	}
}

func TestFullSearchIsOptimal(t *testing.T) {
	cur, ref := shiftedPlanes(128, 128, 7, -5)
	b := interiorBlock(cur, ref)
	full := FullSearch{}.Search(b, 16, MV{})
	for _, s := range allSearchers[1:] {
		res := s.Search(b, 16, MV{})
		if res.Cost < full.Cost {
			t.Errorf("%s beat full search: %d < %d", s.Name(), res.Cost, full.Cost)
		}
	}
}

func TestFastSearchersEvaluateFewerPoints(t *testing.T) {
	cur, ref := shiftedPlanes(160, 160, 6, 2)
	b := interiorBlock(cur, ref)
	full := FullSearch{}.Search(b, 16, MV{})
	want := (2*16 + 1) * (2*16 + 1)
	if full.Evals != want {
		t.Fatalf("full search evals = %d, want %d", full.Evals, want)
	}
	for _, s := range allSearchers[1:] {
		res := s.Search(b, 16, MV{})
		if res.Evals >= full.Evals/2 {
			t.Errorf("%s evaluated %d points, not much cheaper than full %d", s.Name(), res.Evals, full.Evals)
		}
	}
	// The paper's ordering: hexagon cheaper than TZ.
	tz := TZSearch{}.Search(b, 16, MV{})
	hex := Hexagon{Orientation: HexRotating}.Search(b, 16, MV{})
	if hex.Evals >= tz.Evals {
		t.Errorf("hexagon evals %d not below TZ %d", hex.Evals, tz.Evals)
	}
}

func TestPredictorSeedsSearch(t *testing.T) {
	// A large shift only reachable through the predictor for small-pattern
	// searches.
	shift := MV{14, 9}
	cur, ref := shiftedPlanes(192, 192, shift.X, shift.Y)
	b := interiorBlock(cur, ref)
	for _, s := range []Searcher{Diamond{}, Hexagon{Orientation: HexRotating}, OneAtATime{}} {
		seeded := s.Search(b, 16, shift)
		if seeded.MV != shift || seeded.Cost != 0 {
			t.Errorf("%s with exact predictor: MV %v cost %d", s.Name(), seeded.MV, seeded.Cost)
		}
	}
}

func TestWindowClampsResult(t *testing.T) {
	cur, ref := shiftedPlanes(192, 192, 20, 0)
	b := interiorBlock(cur, ref)
	for _, s := range allSearchers {
		res := s.Search(b, 8, MV{})
		if abs(res.MV.X) > 8 || abs(res.MV.Y) > 8 {
			t.Errorf("%s: MV %v exceeds window 8", s.Name(), res.MV)
		}
	}
}

func TestEdgeBlocksStayInFrame(t *testing.T) {
	cur, ref := shiftedPlanes(64, 64, 2, 2)
	blocks := []Block{
		{Cur: cur, Ref: ref, X: 0, Y: 0, W: 16, H: 16},
		{Cur: cur, Ref: ref, X: 48, Y: 48, W: 16, H: 16},
		{Cur: cur, Ref: ref, X: 0, Y: 48, W: 16, H: 16},
		{Cur: cur, Ref: ref, X: 60, Y: 60, W: 4, H: 4}, // partial-size block
	}
	for _, b := range blocks {
		for _, s := range allSearchers {
			res := s.Search(b, 16, MV{})
			rx, ry := b.X+res.MV.X, b.Y+res.MV.Y
			if rx < 0 || ry < 0 || rx+b.W > ref.W || ry+b.H > ref.H {
				t.Errorf("%s: block@(%d,%d) produced out-of-frame MV %v", s.Name(), b.X, b.Y, res.MV)
			}
		}
	}
}

func TestSADAtMatchesSearchCost(t *testing.T) {
	cur, ref := shiftedPlanes(96, 96, 5, 1)
	b := interiorBlock(cur, ref)
	res := FullSearch{}.Search(b, 8, MV{})
	sad, err := SADAt(b, res.MV)
	if err != nil {
		t.Fatal(err)
	}
	if sad != res.Cost {
		t.Fatalf("SADAt = %d, search cost %d", sad, res.Cost)
	}
	if _, err := SADAt(b, MV{100, 0}); err == nil {
		t.Fatal("SADAt accepted out-of-frame vector")
	}
}

func TestSearchDeterministic(t *testing.T) {
	cur, ref := shiftedPlanes(128, 128, -6, 4)
	b := interiorBlock(cur, ref)
	for _, s := range allSearchers {
		a := s.Search(b, 16, MV{})
		c := s.Search(b, 16, MV{})
		if a != c {
			t.Errorf("%s not deterministic: %+v vs %+v", s.Name(), a, c)
		}
	}
}

func TestPropertyFastNeverBeatsFull(t *testing.T) {
	// Full search minimizes the rate-penalized cost J = SAD + λ·|mv−pred|₁
	// exhaustively, so no fast searcher can achieve a lower J. (Raw SAD
	// alone is not comparable: a fast searcher may find a lower-SAD match
	// with a costlier vector that full search correctly rejected.)
	penalized := func(r Result, pred MV) int64 {
		d := MV{r.MV.X - pred.X, r.MV.Y - pred.Y}
		return r.Cost + mvLambda*int64(d.AbsSum())
	}
	f := func(dx8, dy8 int8, which uint8) bool {
		dx, dy := int(dx8)%7, int(dy8)%7
		cur, ref := shiftedPlanes(96, 96, dx, dy)
		b := interiorBlock(cur, ref)
		full := FullSearch{}.Search(b, 8, MV{})
		s := allSearchers[1:][int(which)%len(allSearchers[1:])]
		res := s.Search(b, 8, MV{})
		return penalized(res, MV{}) >= penalized(full, MV{})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMVHelpers(t *testing.T) {
	if (MV{3, -4}).AbsSum() != 7 {
		t.Fatal("AbsSum")
	}
	if !(MV{5, 4}).Horizontalish() || (MV{3, -4}).Horizontalish() {
		t.Fatal("Horizontalish")
	}
	if !(MV{0, 0}).Horizontalish() {
		t.Fatal("zero vector should count horizontal (tie)")
	}
	if (MV{1, 2}).Add(MV{3, -5}) != (MV{4, -3}) {
		t.Fatal("Add")
	}
	if (MV{1, 2}).String() != "(1,2)" {
		t.Fatal("String")
	}
}

func TestGOPPolicySelection(t *testing.T) {
	p, err := NewGOPPolicy(DefaultPolicyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// High motion, first frame: rotating hexagon at max window.
	s, w := p.Choose(0, true, 0)
	if s.Name() != "hex-rotating" || w != 64 {
		t.Fatalf("high/first: %s window %d", s.Name(), w)
	}
	// Learn a horizontal direction on the first frame.
	p.Observe(0, MV{8, 1})
	p.Observe(0, MV{6, -1})
	s, w = p.Choose(0, true, 3)
	if s.Name() != "hex-horizontal" || w != 32 {
		t.Fatalf("high/follow horizontal: %s window %d", s.Name(), w)
	}
	// Vertical direction on another tile.
	p.Observe(1, MV{0, -9})
	s, _ = p.Choose(1, true, 1)
	if s.Name() != "hex-vertical" {
		t.Fatalf("high/follow vertical: %s", s.Name())
	}
	// Low motion: cross on first frame, directed OTS after.
	s, w = p.Choose(2, false, 0)
	if s.Name() != "cross" || w != 16 {
		t.Fatalf("low/first: %s window %d", s.Name(), w)
	}
	s, w = p.Choose(2, false, 5)
	if s.Name() != "ots" || w != 8 {
		t.Fatalf("low/follow: %s window %d", s.Name(), w)
	}
}

func TestGOPPolicyPredAveragesObservations(t *testing.T) {
	p, _ := NewGOPPolicy(DefaultPolicyConfig())
	p.Observe(3, MV{4, 2})
	p.Observe(3, MV{6, 4})
	if got := p.PredFor(3, 2); got != (MV{5, 3}) {
		t.Fatalf("pred = %v, want (5,3)", got)
	}
	if got := p.PredFor(3, 0); got != (MV{}) {
		t.Fatalf("first-frame pred = %v, want zero", got)
	}
	if got := p.PredFor(99, 4); got != (MV{}) {
		t.Fatalf("unknown tile pred = %v, want zero", got)
	}
}

func TestGOPPolicyReset(t *testing.T) {
	p, _ := NewGOPPolicy(DefaultPolicyConfig())
	p.Observe(0, MV{-7, 0})
	p.Reset()
	if p.Direction(0) != (MV{}) {
		t.Fatal("reset did not clear directions")
	}
}

func TestGOPPolicyConfigValidation(t *testing.T) {
	bad := DefaultPolicyConfig()
	bad.FollowWindow = 128
	if _, err := NewGOPPolicy(bad); err == nil {
		t.Fatal("accepted follow window > max window")
	}
	bad = DefaultPolicyConfig()
	bad.LowFirstWindow = 0
	if _, err := NewGOPPolicy(bad); err == nil {
		t.Fatal("accepted zero window")
	}
}

func TestProposedPolicyCheaperThanTZOnMedicalMotion(t *testing.T) {
	// The core claim feeding Table I: the GOP-aware policy spends far
	// fewer SAD evaluations than TZ for equivalent block shifts.
	shift := MV{-2, 1}
	cur, ref := shiftedPlanes(160, 160, shift.X, shift.Y)
	b := interiorBlock(cur, ref)
	p, _ := NewGOPPolicy(DefaultPolicyConfig())
	p.Observe(0, shift)

	tzEvals := TZSearch{}.Search(b, 64, MV{}).Evals
	s, w := p.Choose(0, true, 2)
	res := s.Search(b, w, p.PredFor(0, 2))
	if res.Cost != 0 {
		t.Fatalf("policy missed exact match: cost %d", res.Cost)
	}
	if res.Evals*2 >= tzEvals {
		t.Fatalf("policy evals %d not well below TZ %d", res.Evals, tzEvals)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"full", "tz", "tss", "diamond", "cross", "ots", "hex-horizontal", "hex-vertical", "hex-rotating"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("accepted unknown name")
	}
}
