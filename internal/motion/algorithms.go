package motion

// This file implements the individual search algorithms. All of them share
// the memoizing searchState, so revisiting a position during pattern
// iteration costs nothing, and all support a predicted start vector.

// FullSearch exhaustively evaluates every candidate in the window. It is
// the quality reference: no faster algorithm can beat its SAD.
type FullSearch struct{}

// Name implements Searcher.
func (FullSearch) Name() string { return "full" }

// Search implements Searcher.
func (FullSearch) Search(b Block, window int, pred MV) Result {
	s := newSearchState(b, window)
	s.seed(pred)
	for dy := -window; dy <= window; dy++ {
		for dx := -window; dx <= window; dx++ {
			s.try(MV{dx, dy})
		}
	}
	return s.result()
}

// TZSearch is a faithful simplification of the HM reference encoder's Test
// Zone search: predictor seeding, an expanding 8-point diamond zonal
// search, a sparse raster fallback when the best distance is large, and
// iterative star refinement.
type TZSearch struct {
	// RasterThreshold triggers the raster stage when the zonal best
	// distance exceeds it (HM default 5). Zero means 5.
	RasterThreshold int
	// RasterStride is the raster subsampling step (HM default 5).
	RasterStride int
}

// Name implements Searcher.
func (TZSearch) Name() string { return "tz" }

// Search implements Searcher.
func (t TZSearch) Search(b Block, window int, pred MV) Result {
	thr := t.RasterThreshold
	if thr <= 0 {
		thr = 5
	}
	stride := t.RasterStride
	if stride <= 0 {
		stride = 5
	}
	s := newSearchState(b, window)
	s.seed(pred)

	// Zonal expanding diamond around the incumbent.
	center := s.best
	bestDist := 0
	for dist := 1; dist <= window; dist *= 2 {
		improved := false
		for _, d := range diamondPoints(dist) {
			if c := s.try(center.Add(d)); c == s.cost && s.best == center.Add(d) {
				improved = true
			}
		}
		if improved {
			bestDist = dist
		}
	}

	// Raster stage for distant optima.
	if bestDist > thr {
		for dy := -window; dy <= window; dy += stride {
			for dx := -window; dx <= window; dx += stride {
				s.try(MV{dx, dy})
			}
		}
	}

	// Star refinement: shrink the diamond around each new incumbent until
	// no improvement at distance 1.
	for {
		center = s.best
		improved := false
		for dist := 1; dist <= thr; dist *= 2 {
			for _, d := range diamondPoints(dist) {
				s.try(center.Add(d))
			}
		}
		if s.best != center {
			improved = true
		}
		if !improved {
			break
		}
	}
	return s.result()
}

// diamondPoints returns the 8-point diamond at the given distance.
func diamondPoints(d int) []MV {
	h := d / 2
	if h == 0 {
		h = 1
	}
	if d == 1 {
		return []MV{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	}
	return []MV{
		{d, 0}, {-d, 0}, {0, d}, {0, -d},
		{h, h}, {h, -h}, {-h, h}, {-h, -h},
	}
}

// ThreeStep is the classic three-step search (Li et al. 1994): evaluate the
// 8 neighbours at a step that starts near half the window and halves until
// one.
type ThreeStep struct{}

// Name implements Searcher.
func (ThreeStep) Name() string { return "tss" }

// Search implements Searcher.
func (ThreeStep) Search(b Block, window int, pred MV) Result {
	s := newSearchState(b, window)
	s.seed(pred)
	step := 1
	for step*2 <= window {
		step *= 2
	}
	step /= 2
	if step == 0 {
		step = 1
	}
	for step >= 1 {
		center := s.best
		for _, d := range squarePoints(step) {
			s.try(center.Add(d))
		}
		step /= 2
	}
	return s.result()
}

// squarePoints returns the 8 neighbours at Chebyshev distance d.
func squarePoints(d int) []MV {
	return []MV{
		{-d, -d}, {0, -d}, {d, -d},
		{-d, 0}, {d, 0},
		{-d, d}, {0, d}, {d, d},
	}
}

// Diamond is the diamond search of Zhu & Ma (1997): iterate the 9-point
// large diamond pattern until the centre wins, then refine with the small
// diamond.
type Diamond struct{}

// Name implements Searcher.
func (Diamond) Name() string { return "diamond" }

// ldsp is the large diamond search pattern (excluding the centre).
var ldsp = []MV{{0, -2}, {1, -1}, {2, 0}, {1, 1}, {0, 2}, {-1, 1}, {-2, 0}, {-1, -1}}

// sdsp is the small diamond search pattern.
var sdsp = []MV{{0, -1}, {1, 0}, {0, 1}, {-1, 0}}

// Search implements Searcher.
func (Diamond) Search(b Block, window int, pred MV) Result {
	s := newSearchState(b, window)
	s.seed(pred)
	for i := 0; i < 4*window; i++ { // bounded: each move strictly improves
		center := s.best
		for _, d := range ldsp {
			s.try(center.Add(d))
		}
		if s.best == center {
			break
		}
	}
	center := s.best
	for _, d := range sdsp {
		s.try(center.Add(d))
	}
	return s.result()
}

// Cross is the cross-search algorithm of Ghanbari (1990): a logarithmic
// search evaluating the four diagonal (×) neighbours at a halving step,
// finishing with the orthogonal (+) pattern at step one.
type Cross struct{}

// Name implements Searcher.
func (Cross) Name() string { return "cross" }

// Search implements Searcher.
func (Cross) Search(b Block, window int, pred MV) Result {
	s := newSearchState(b, window)
	s.seed(pred)
	step := 1
	for step*2 <= window {
		step *= 2
	}
	step /= 2
	if step == 0 {
		step = 1
	}
	for step > 1 {
		center := s.best
		for _, d := range []MV{{-step, -step}, {step, -step}, {-step, step}, {step, step}} {
			s.try(center.Add(d))
		}
		if s.best == center {
			step /= 2
		}
	}
	// Endgame at step 1: both × and + neighbourhoods.
	center := s.best
	for _, d := range squarePoints(1) {
		s.try(center.Add(d))
	}
	return s.result()
}

// OneAtATime is the one-at-a-time search (Srinivasan & Rao 1985): walk
// along one axis while the cost improves, then along the other. The
// Primary axis can be set from a known motion direction; the zero value
// walks horizontally first (the original formulation).
type OneAtATime struct {
	// Direction orients the first axis: Horizontalish() chooses the axis
	// and its sign gives the first step direction. Zero value = +X first.
	Direction MV
}

// Name implements Searcher.
func (OneAtATime) Name() string { return "ots" }

// Search implements Searcher.
func (o OneAtATime) Search(b Block, window int, pred MV) Result {
	s := newSearchState(b, window)
	s.seed(pred)
	firstHorizontal := o.Direction.Horizontalish()
	axes := [2]MV{{1, 0}, {0, 1}}
	if !firstHorizontal {
		axes = [2]MV{{0, 1}, {1, 0}}
	}
	// Prefer stepping toward the known direction first on each axis.
	signFor := func(axis MV) int {
		d := o.Direction.X*axis.X + o.Direction.Y*axis.Y
		if d < 0 {
			return -1
		}
		return 1
	}
	for _, axis := range axes {
		sign := signFor(axis)
		// Probe both directions once, then walk the better one.
		center := s.best
		cPlus := s.try(center.Add(MV{axis.X * sign, axis.Y * sign}))
		cMinus := s.try(center.Add(MV{-axis.X * sign, -axis.Y * sign}))
		dir := sign
		if cMinus < cPlus {
			dir = -sign
		}
		// Walk while each step becomes the new incumbent.
		for {
			center = s.best
			next := center.Add(MV{axis.X * dir, axis.Y * dir})
			s.try(next)
			if s.best != next {
				break
			}
		}
	}
	return s.result()
}

// HexOrientation selects the hexagon pattern orientation.
type HexOrientation int

// Hexagon orientations. Rotating alternates between the two fixed patterns
// each iteration, approximating the rotating hexagonal pattern used when
// the motion direction is not yet known (first frame of a GOP).
const (
	HexHorizontal HexOrientation = iota
	HexVertical
	HexRotating
)

// String returns the orientation name.
func (o HexOrientation) String() string {
	switch o {
	case HexHorizontal:
		return "horizontal"
	case HexVertical:
		return "vertical"
	case HexRotating:
		return "rotating"
	default:
		return "hex?"
	}
}

// hexH is the horizontal hexagon pattern (flat sides up/down): best for
// predominantly horizontal motion.
var hexH = []MV{{-2, 0}, {2, 0}, {-1, -2}, {1, -2}, {-1, 2}, {1, 2}}

// hexV is the vertical hexagon pattern.
var hexV = []MV{{0, -2}, {0, 2}, {-2, -1}, {-2, 1}, {2, -1}, {2, 1}}

// Hexagon is the hexagon-based search of Zhu, Lin & Chau (2002) with a
// selectable orientation and the standard small-diamond endgame.
type Hexagon struct {
	Orientation HexOrientation
}

// Name implements Searcher.
func (h Hexagon) Name() string { return "hex-" + h.Orientation.String() }

// Search implements Searcher.
func (h Hexagon) Search(b Block, window int, pred MV) Result {
	s := newSearchState(b, window)
	s.seed(pred)
	iter := 0
	for i := 0; i < 4*window; i++ {
		center := s.best
		pattern := hexH
		switch h.Orientation {
		case HexVertical:
			pattern = hexV
		case HexRotating:
			if iter%2 == 1 {
				pattern = hexV
			}
		}
		for _, d := range pattern {
			s.try(center.Add(d))
		}
		iter++
		if s.best == center {
			break
		}
	}
	center := s.best
	for _, d := range sdsp {
		s.try(center.Add(d))
	}
	return s.result()
}
