package motion

import "fmt"

// This file implements the paper's proposed combined motion search for
// bio-medical video (Sec. III-C2). The key observation is that all tiles of
// a bio-medical frame move in the same direction, so the direction learned
// on the first frame of a GOP can steer cheaper directional searches on the
// remaining frames:
//
//   - low-motion tiles: cross search on the GOP's first frame (window 16),
//     then one-at-a-time search along the learned direction (window 8);
//   - high-motion tiles: rotating hexagon search on the first frame at the
//     maximum window, then horizontal or vertical hexagon search (chosen by
//     the learned direction) at smaller windows.

// Standard search-window sizes considered in the paper.
var SearchWindows = []int{64, 32, 16, 8}

// PolicyConfig parametrizes the proposed GOP-aware search policy.
type PolicyConfig struct {
	// MaxWindow is the window for high-motion first-frame search (64).
	MaxWindow int
	// FollowWindow is the high-motion window after the first frame (32).
	FollowWindow int
	// LowFirstWindow is the low-motion first-frame window (16).
	LowFirstWindow int
	// LowFollowWindow is the low-motion window after the first frame (8).
	LowFollowWindow int
}

// DefaultPolicyConfig returns the paper's window schedule.
func DefaultPolicyConfig() PolicyConfig {
	return PolicyConfig{MaxWindow: 64, FollowWindow: 32, LowFirstWindow: 16, LowFollowWindow: 8}
}

// Validate reports configuration errors.
func (c PolicyConfig) Validate() error {
	for _, w := range []int{c.MaxWindow, c.FollowWindow, c.LowFirstWindow, c.LowFollowWindow} {
		if w <= 0 {
			return fmt.Errorf("motion: non-positive window in policy config %+v", c)
		}
	}
	if c.FollowWindow > c.MaxWindow || c.LowFollowWindow > c.LowFirstWindow {
		return fmt.Errorf("motion: follow windows must not exceed first-frame windows: %+v", c)
	}
	return nil
}

// GOPPolicy selects a Searcher and window per (tile, frame-in-GOP) and
// learns each tile's dominant direction from the first frame's motion
// vectors. It is not safe for concurrent use by multiple goroutines; each
// encoding worker owns one policy per tile set (tiles are independent, so
// per-tile state never races in the tile-parallel encoder because Observe
// and Choose are called with distinct tile keys per worker).
type GOPPolicy struct {
	cfg PolicyConfig
	// dir accumulates the first-frame motion per tile.
	dir map[int]MV
	// obs counts observations per tile so Direction can average.
	obs map[int]int
}

// NewGOPPolicy returns a policy with the given window schedule.
func NewGOPPolicy(cfg PolicyConfig) (*GOPPolicy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &GOPPolicy{cfg: cfg, dir: make(map[int]MV), obs: make(map[int]int)}, nil
}

// Reset clears learned directions; call at each GOP boundary.
func (p *GOPPolicy) Reset() {
	p.dir = make(map[int]MV)
	p.obs = make(map[int]int)
}

// Observe records a motion vector measured on the first frame of the GOP
// for the given tile. Multiple block vectors per tile are accumulated.
func (p *GOPPolicy) Observe(tile int, mv MV) {
	p.dir[tile] = p.dir[tile].Add(mv)
	p.obs[tile]++
}

// Direction returns the learned dominant direction for a tile (the
// accumulated vector; only its orientation and sign matter).
func (p *GOPPolicy) Direction(tile int) MV { return p.dir[tile] }

// Choose returns the searcher and window for a tile given its motion class
// and position in the GOP (frameInGOP 0 is the GOP's first frame).
func (p *GOPPolicy) Choose(tile int, highMotion bool, frameInGOP int) (Searcher, int) {
	first := frameInGOP == 0
	if highMotion {
		if first {
			return Hexagon{Orientation: HexRotating}, p.cfg.MaxWindow
		}
		orient := HexVertical
		if p.Direction(tile).Horizontalish() {
			orient = HexHorizontal
		}
		return Hexagon{Orientation: orient}, p.cfg.FollowWindow
	}
	if first {
		return Cross{}, p.cfg.LowFirstWindow
	}
	return OneAtATime{Direction: p.Direction(tile)}, p.cfg.LowFollowWindow
}

// PredFor returns the predicted start vector for a tile after the first
// frame: the per-block average of the tile's first-frame motion. On the
// first frame the zero vector is returned (the rotating pattern explores).
func (p *GOPPolicy) PredFor(tile int, frameInGOP int) MV {
	if frameInGOP == 0 {
		return MV{}
	}
	n := p.obs[tile]
	if n == 0 {
		return MV{}
	}
	d := p.dir[tile]
	return MV{roundDiv(d.X, n), roundDiv(d.Y, n)}
}

// roundDiv divides rounding half away from zero.
func roundDiv(a, n int) int {
	if n == 0 {
		return 0
	}
	if a >= 0 {
		return (a + n/2) / n
	}
	return -((-a + n/2) / n)
}

// ByName returns a baseline searcher by its Name() string; the experiment
// harness uses it to build comparison columns. Unknown names error.
func ByName(name string) (Searcher, error) {
	switch name {
	case "full":
		return FullSearch{}, nil
	case "tz":
		return TZSearch{}, nil
	case "tss":
		return ThreeStep{}, nil
	case "diamond":
		return Diamond{}, nil
	case "cross":
		return Cross{}, nil
	case "ots":
		return OneAtATime{}, nil
	case "hex-horizontal":
		return Hexagon{Orientation: HexHorizontal}, nil
	case "hex-vertical":
		return Hexagon{Orientation: HexVertical}, nil
	case "hex-rotating":
		return Hexagon{Orientation: HexRotating}, nil
	default:
		return nil, fmt.Errorf("motion: unknown searcher %q", name)
	}
}
