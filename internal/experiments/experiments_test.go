package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/medgen"
)

// smallVideo trims geometry so experiment tests stay fast.
func smallVideo(frames int) medgen.Config {
	v := medgen.Default()
	v.Width, v.Height = 320, 240
	v.Frames = frames
	return v
}

func TestCorpusShape(t *testing.T) {
	c := Corpus(640, 480, 48)
	if len(c) != 10 {
		t.Fatalf("corpus has %d videos, want 10 (the paper's count)", len(c))
	}
	seen := make(map[string]bool)
	for _, vc := range c {
		if err := vc.Validate(); err != nil {
			t.Fatal(err)
		}
		key := vc.Class.String() + "/" + vc.Motion.String()
		if seen[key] {
			t.Fatalf("duplicate corpus entry %s", key)
		}
		seen[key] = true
	}
}

func TestKvazaarTimeModel(t *testing.T) {
	ts := codec.TileStats{EncodeTime: 10 * time.Millisecond, SearchTime: 2 * time.Millisecond}
	m := KvazaarTimeModel(4)
	if got := m(ts); got != 16*time.Millisecond {
		t.Fatalf("model = %v, want 8ms + 4·2ms = 16ms", got)
	}
	if got := RawTimeModel(ts); got != 10*time.Millisecond {
		t.Fatalf("raw model = %v", got)
	}
	// Degenerate stats must not go negative.
	bad := codec.TileStats{EncodeTime: time.Millisecond, SearchTime: 2 * time.Millisecond}
	if got := KvazaarTimeModel(3)(bad); got != 6*time.Millisecond {
		t.Fatalf("clamped model = %v, want 6ms", got)
	}
}

func TestCalibrateMEInflation(t *testing.T) {
	r, err := CalibrateMEInflation(smallVideo(9))
	if err != nil {
		t.Fatal(err)
	}
	if r < 1 {
		t.Fatalf("inflation %v < 1", r)
	}
	// The inflated ME share must land at the target for the measured mix.
	// (Verified indirectly: r = (target/(1−target))·rest/search, so
	// share(model) = target by construction; just sanity-bound r.)
	if r > 200 {
		t.Fatalf("inflation %v implausibly large", r)
	}
}

func TestTable1SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 encodes 3 methods × tilings")
	}
	opt := Table1Options{Frames: 9, Width: 320, Height: 240, QP: 32, Video: smallVideo(9)}
	res, err := RunTable1(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Proposed) != len(Table1Tilings) || len(res.Hexagon) != len(Table1Tilings) {
		t.Fatalf("row counts %d/%d", len(res.Proposed), len(res.Hexagon))
	}
	for i, row := range res.Proposed {
		if row.Speedup <= 0 || row.EvalSpeedup <= 0 {
			t.Fatalf("tiling %v: degenerate speedups %+v", Table1Tilings[i], row)
		}
		// The paper's quality contract: fast ME loses little quality.
		if row.PSNRLoss > 1.0 {
			t.Fatalf("tiling %v: PSNR loss %.2f dB too high", Table1Tilings[i], row.PSNRLoss)
		}
		if row.EvalSpeedup < 1 {
			t.Fatalf("tiling %v: proposed evaluated more points than TZ", Table1Tilings[i])
		}
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Proposed") || !strings.Contains(sb.String(), "Hexagonal") {
		t.Fatal("render missing methods")
	}
}

func TestProjectedSpeedup(t *testing.T) {
	row := Table1Row{EvalSpeedup: 8}
	// At 75% ME share: 1/(0.25 + 0.75/8) ≈ 2.9.
	got := row.ProjectedSpeedup(0.75)
	if got < 2.8 || got > 3.0 {
		t.Fatalf("projected = %v", got)
	}
	if (Table1Row{}).ProjectedSpeedup(0.75) != 0 {
		t.Fatal("zero eval speedup should project 0")
	}
}

func TestFig3SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("fig3 encodes four GOPs")
	}
	opt := Fig3Options{Video: smallVideo(16)}
	res, err := RunFig3(opt)
	if err != nil {
		t.Fatal(err)
	}
	// The headline shape: proposed uses fewer cores and fewer fmax cores.
	if res.Proposed.CoresUsed >= res.Baseline.CoresUsed {
		t.Fatalf("proposed used %d cores, baseline %d", res.Proposed.CoresUsed, res.Baseline.CoresUsed)
	}
	if res.Proposed.CoresAtMax >= res.Baseline.CoresAtMax {
		t.Fatalf("proposed has %d fmax cores, baseline %d", res.Proposed.CoresAtMax, res.Baseline.CoresAtMax)
	}
	// Per-tile CPU diversity: the proposed tiles must spread much wider
	// than the baseline's capacity tiles.
	spread := func(s Fig3Side) float64 {
		if len(s.Tiles) == 0 {
			return 0
		}
		minT, maxT := s.Tiles[0].CPU, s.Tiles[0].CPU
		for _, tc := range s.Tiles {
			if tc.CPU < minT {
				minT = tc.CPU
			}
			if tc.CPU > maxT {
				maxT = tc.CPU
			}
		}
		if minT <= 0 {
			return 1e9
		}
		return float64(maxT) / float64(minT)
	}
	if spread(res.Proposed) <= spread(res.Baseline) {
		t.Fatalf("proposed tile-CPU spread %.1f not above baseline %.1f",
			spread(res.Proposed), spread(res.Baseline))
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestFig4SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("fig4 runs warm encodes for the whole corpus")
	}
	opt := Fig4Options{BaselineCoresPerUser: 2, Width: 320, Height: 240, FramesPerVideo: 8}
	res, err := RunFig4(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(Fig4UserCounts) {
		t.Fatalf("%d points", len(res.Points))
	}
	for _, p := range res.Points {
		if p.SavingsPct <= 0 {
			t.Fatalf("no savings at %d users: %+v", p.Users, p)
		}
	}
	// The paper's trend: savings grow with the user count.
	if res.Points[len(res.Points)-1].SavingsPct <= res.Points[0].SavingsPct {
		t.Fatalf("savings not increasing: first %.1f%%, last %.1f%%",
			res.Points[0].SavingsPct, res.Points[len(res.Points)-1].SavingsPct)
	}
	if res.AvgSavingsPct < 15 {
		t.Fatalf("average savings %.1f%% far below the paper's regime", res.AvgSavingsPct)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestTable2SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("table2 serves a user queue for several rounds")
	}
	opt := Table2Options{
		QueueLen:             24, // saturates the baseline (16-user capacity)
		FramesPerVideo:       32,
		BaselineCoresPerUser: 2,
		Width:                320,
		Height:               240,
	}
	res, err := RunTable2(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Proposed.UsersServed <= res.Baseline.UsersServed {
		t.Fatalf("proposed served %d, baseline %d — throughput advantage lost",
			res.Proposed.UsersServed, res.Baseline.UsersServed)
	}
	if res.Proposed.AvgPSNR < 38 {
		t.Fatalf("proposed avg PSNR %.1f below constraint regime", res.Proposed.AvgPSNR)
	}
	if res.Proposed.MinPSNR > res.Proposed.MaxPSNR {
		t.Fatal("min PSNR above max")
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "# of Users") {
		t.Fatal("render missing header")
	}
}

func TestLUTConvergenceRun(t *testing.T) {
	if testing.Short() {
		t.Skip("lut run encodes several GOPs")
	}
	opt := DefaultLUTOptions()
	opt.Video = smallVideo(40)
	opt.GOPs = 5
	cross := smallVideo(16)
	cross.Motion = medgen.Pan
	cross.Seed = 9
	opt.CrossVideo = &cross
	res, err := RunLUT(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("%d points", len(res.Points))
	}
	// Convergence: the late error must not exceed the early error.
	early := res.Points[1].MeanAbsError
	late := res.FinalError
	if late > early*2 {
		t.Fatalf("estimation error diverging: %v → %v", early, late)
	}
	if res.CrossVideoError <= 0 {
		t.Fatal("cross-video error not measured")
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestAblationRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation encodes five pipeline variants")
	}
	opt := AblationOptions{Video: smallVideo(24), GOPs: 2}
	res, err := RunAblation(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d variants", len(res.Rows))
	}
	byName := make(map[string]AblationRow)
	for _, row := range res.Rows {
		if row.CPUPerFrame <= 0 || row.PSNR <= 0 {
			t.Fatalf("degenerate row %+v", row)
		}
		byName[row.Variant] = row
	}
	full := byName["proposed (full)"]
	noME := byName["no fast ME (TZ everywhere)"]
	if noME.CPUPerFrame <= full.CPUPerFrame {
		t.Fatalf("TZ-everywhere (%v) not slower than full pipeline (%v)", noME.CPUPerFrame, full.CPUPerFrame)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := RunTable1(Table1Options{}); err == nil {
		t.Fatal("accepted zero table1 options")
	}
	if _, err := RunTable2(Table2Options{}); err == nil {
		t.Fatal("accepted zero table2 options")
	}
	if _, err := RunLUT(LUTOptions{}); err == nil {
		t.Fatal("accepted zero LUT options")
	}
}
