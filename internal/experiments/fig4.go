package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mpsoc"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig4UserCounts is the paper's x-axis.
var Fig4UserCounts = []int{1, 2, 3, 4, 5, 6, 8, 10, 12}

// Fig4Options parametrizes the power-savings sweep.
type Fig4Options struct {
	// BaselineCoresPerUser anchors the calibration (see Table2Options).
	BaselineCoresPerUser float64
	// Width, Height of the corpus videos.
	Width, Height int
	// FramesPerVideo for the warm-up measurement.
	FramesPerVideo int
}

// DefaultFig4Options mirrors the Table II calibration.
func DefaultFig4Options() Fig4Options {
	return Fig4Options{BaselineCoresPerUser: 2, Width: 640, Height: 480, FramesPerVideo: 16}
}

// Fig4Point is one bar of the figure.
type Fig4Point struct {
	Users         int
	ProposedWatts float64
	BaselineWatts float64
	SavingsPct    float64
}

// Fig4Result is the full sweep.
type Fig4Result struct {
	Points []Fig4Point
	// AvgSavingsPct supports the paper's "44% average" claim.
	AvgSavingsPct float64
	TimeScale     float64
	BaselineTiles int
}

// RunFig4 reproduces Fig. 4: for each user count, both approaches serve
// the same users (equal throughput) and the platform simulator reports the
// average power; the figure is the per-count savings of the proposed
// approach over [19].
//
// Power depends only on the allocation and the DVFS plan, so after a warm
// measurement pass the sweep runs on recorded thread demands without
// re-encoding — exactly how the scheduler consumes the workload LUT.
func RunFig4(opt Fig4Options) (*Fig4Result, error) {
	platform := mpsoc.XeonE5_2667V4()
	slot := time.Second / 24
	t2opt := DefaultTable2Options()
	t2opt.BaselineCoresPerUser = opt.BaselineCoresPerUser
	t2opt.Width, t2opt.Height = opt.Width, opt.Height
	t2opt.FramesPerVideo = opt.FramesPerVideo
	model, timeScale, baselineTiles, err := calibrate(t2opt)
	if err != nil {
		return nil, err
	}

	// Measure per-video thread demands for both modes (one warm GOP each),
	// reused across user counts.
	corpus := Corpus(opt.Width, opt.Height, opt.FramesPerVideo)
	propDemand := make([][]time.Duration, len(corpus))
	baseDemand := make([][]time.Duration, len(corpus))
	for vi, vc := range corpus {
		for _, mode := range []core.Mode{core.ModeProposed, core.ModeBaseline} {
			src, err := sourceFor(vc)
			if err != nil {
				return nil, err
			}
			cfg := core.DefaultSessionConfig()
			cfg.Mode = mode
			cfg.BaselineTiles = baselineTiles
			cfg.TimeModel = model
			sess, err := core.NewSession(0, src, cfg, workload.NewLUT())
			if err != nil {
				return nil, err
			}
			gop, err := sess.EncodeGOP()
			if err != nil {
				return nil, err
			}
			perTile := make([]time.Duration, len(gop.Grid.Tiles))
			for _, fr := range gop.Frames {
				for i, ts := range fr.Tiles {
					perTile[i] += model(ts)
				}
			}
			for i := range perTile {
				perTile[i] = time.Duration(float64(perTile[i]) / float64(len(gop.Frames)) * timeScale)
			}
			if mode == core.ModeProposed {
				propDemand[vi] = perTile
			} else {
				baseDemand[vi] = perTile
			}
		}
	}

	mkUsers := func(n int, demands [][]time.Duration) []sched.UserDemand {
		var users []sched.UserDemand
		for u := 0; u < n; u++ {
			d := demands[u%len(demands)]
			ud := sched.UserDemand{User: u}
			for i, cpu := range d {
				ud.Threads = append(ud.Threads, sched.Thread{User: u, Tile: i, TimeFmax: cpu})
			}
			users = append(users, ud)
		}
		return users
	}

	res := &Fig4Result{TimeScale: timeScale, BaselineTiles: baselineTiles}
	var sum float64
	for _, n := range Fig4UserCounts {
		prop, err := allocatorFor(core.ModeProposed)(sched.Input{Platform: platform, FPS: 24, Users: mkUsers(n, propDemand)})
		if err != nil {
			return nil, err
		}
		base, err := allocatorFor(core.ModeBaseline)(sched.Input{Platform: platform, FPS: 24, Users: mkUsers(n, baseDemand)})
		if err != nil {
			return nil, err
		}
		if len(prop.Admitted) != n || len(base.Admitted) != n {
			return nil, fmt.Errorf("experiments: fig4 with %d users admitted %d/%d — raise capacity or lower BaselineCoresPerUser",
				n, len(prop.Admitted), len(base.Admitted))
		}
		eProp, err := platform.SimulateSlot(prop.Plans, slot)
		if err != nil {
			return nil, err
		}
		eBase, err := platform.SimulateSlot(base.Plans, slot)
		if err != nil {
			return nil, err
		}
		pt := Fig4Point{
			Users:         n,
			ProposedWatts: eProp.AvgPowerW,
			BaselineWatts: eBase.AvgPowerW,
			SavingsPct:    (1 - eProp.AvgPowerW/eBase.AvgPowerW) * 100,
		}
		res.Points = append(res.Points, pt)
		sum += pt.SavingsPct
	}
	res.AvgSavingsPct = sum / float64(len(res.Points))
	return res, nil
}

// Table renders the sweep.
func (r *Fig4Result) Table() *trace.Table {
	t := trace.NewTable("Fig. 4 — average power savings vs [19] at equal throughput",
		"users", "proposed (W)", "[19] (W)", "savings (%)")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.Users),
			fmt.Sprintf("%.1f", p.ProposedWatts),
			fmt.Sprintf("%.1f", p.BaselineWatts),
			fmt.Sprintf("%.1f", p.SavingsPct))
	}
	return t
}

// Render writes the table, an ASCII bar chart and the headline average.
func (r *Fig4Result) Render(w io.Writer) error {
	if err := r.Table().Render(w); err != nil {
		return err
	}
	for _, p := range r.Points {
		bar := int(p.SavingsPct / 2)
		if bar < 0 {
			bar = 0
		}
		if _, err := fmt.Fprintf(w, "%3d users |%s %.0f%%\n", p.Users, strings.Repeat("#", bar), p.SavingsPct); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "average savings: %.0f%% (paper: 44%%)\n", r.AvgSavingsPct)
	return err
}
