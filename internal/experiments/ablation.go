package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/medgen"
	"repro/internal/trace"
	"repro/internal/workload"
)

// AblationOptions parametrizes the pipeline ablation study (DESIGN.md §5):
// each variant removes one contribution from the proposed pipeline.
type AblationOptions struct {
	Video medgen.Config
	// GOPs to encode per variant (after a warm-up GOP).
	GOPs int
}

// DefaultAblationOptions uses the Fig. 3 video.
func DefaultAblationOptions() AblationOptions {
	v := medgen.Default()
	v.Frames = 32
	return AblationOptions{Video: v, GOPs: 3}
}

// AblationRow is one variant's outcome.
type AblationRow struct {
	Variant string
	// CPUPerFrame is the modeled platform CPU time per frame.
	CPUPerFrame time.Duration
	// Cores is the per-user core demand at 24 FPS.
	Cores float64
	PSNR  float64
	Kbps  float64
	Tiles int
}

// AblationResult is the full study.
type AblationResult struct {
	Rows []AblationRow
}

// ablationVariants lists the pipeline variants in presentation order.
var ablationVariants = []struct {
	name   string
	mutate func(*core.SessionConfig)
}{
	{"proposed (full)", func(c *core.SessionConfig) {}},
	{"no re-tiling (uniform 4x4)", func(c *core.SessionConfig) { c.DisableRetile = true }},
	{"no QP adaptation", func(c *core.SessionConfig) { c.DisableQPAdapt = true }},
	{"no fast ME (TZ everywhere)", func(c *core.SessionConfig) { c.DisableFastME = true }},
	{"baseline [19]", func(c *core.SessionConfig) {
		c.Mode = core.ModeBaseline
		c.BaselineTiles = 5
	}},
}

// RunAblation encodes the same video under every pipeline variant and
// reports per-frame CPU (in calibrated platform time), core demand, PSNR
// and bitrate — isolating what each contribution buys.
func RunAblation(opt AblationOptions) (*AblationResult, error) {
	if opt.GOPs <= 0 {
		return nil, fmt.Errorf("experiments: bad ablation options %+v", opt)
	}
	r, err := CalibrateMEInflation(opt.Video)
	if err != nil {
		return nil, err
	}
	model := KvazaarTimeModel(r)
	slot := time.Second / 24

	res := &AblationResult{}
	for _, v := range ablationVariants {
		src, err := sourceFor(opt.Video)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultSessionConfig()
		v.mutate(&cfg)
		cfg.TimeModel = model
		sess, err := core.NewSession(0, src, cfg, workload.NewLUT())
		if err != nil {
			return nil, err
		}
		// Warm-up GOP (LUT, tiling, QP state), then measure.
		if _, err := sess.EncodeGOP(); err != nil {
			return nil, err
		}
		var cpu time.Duration
		var psnr, kbps float64
		var frames, tiles int
		for g := 0; g < opt.GOPs && !sess.Finished(); g++ {
			gop, err := sess.EncodeGOP()
			if err != nil {
				return nil, err
			}
			for _, fr := range gop.Frames {
				for _, ts := range fr.Tiles {
					cpu += model(ts)
				}
			}
			psnr += gop.MeanPSNR
			kbps += gop.MeanKbps
			frames += len(gop.Frames)
			tiles = gop.Grid.NumTiles()
		}
		perFrame := cpu / time.Duration(frames)
		res.Rows = append(res.Rows, AblationRow{
			Variant:     v.name,
			CPUPerFrame: perFrame,
			Cores:       math.Ceil(perFrame.Seconds()/slot.Seconds()*100) / 100,
			PSNR:        psnr / float64(opt.GOPs),
			Kbps:        kbps / float64(opt.GOPs),
			Tiles:       tiles,
		})
	}
	return res, nil
}

// Table renders the study.
func (r *AblationResult) Table() *trace.Table {
	t := trace.NewTable("Pipeline ablation — what each contribution buys (platform time)",
		"variant", "tiles", "CPU/frame", "cores@24fps", "PSNR (dB)", "kbps")
	for _, row := range r.Rows {
		t.AddRow(row.Variant, fmt.Sprint(row.Tiles), fmtDuration(row.CPUPerFrame),
			fmt.Sprintf("%.2f", row.Cores), fmt.Sprintf("%.1f", row.PSNR), fmt.Sprintf("%.0f", row.Kbps))
	}
	return t
}

// Render writes the table.
func (r *AblationResult) Render(w io.Writer) error { return r.Table().Render(w) }
