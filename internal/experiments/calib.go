package experiments

import (
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/medgen"
	"repro/internal/workload"
)

// TimeModel maps measured tile stats to simulated-platform CPU time.
type TimeModel = func(codec.TileStats) time.Duration

// RawTimeModel is the identity model: host-measured encode time.
func RawTimeModel(ts codec.TileStats) time.Duration { return ts.EncodeTime }

// KvazaarTimeModel returns a model that inflates the motion-search share
// of a tile's encode time by r:
//
//	T = (EncodeTime − SearchTime) + r·SearchTime
//
// Rationale: the paper builds on Kvazaar, where motion estimation takes
// 70–80% of the encode time (HEVC searches many PU shapes per CTU at
// fractional-pel accuracy); this repository's codec does a single
// integer-pel search per block, leaving ME at ~30%. Re-weighting ME
// restores the cost structure the paper's scheduling results depend on —
// the *measured* search work (evaluations, windows, algorithms) still
// comes from real execution.
func KvazaarTimeModel(r float64) TimeModel {
	return func(ts codec.TileStats) time.Duration {
		rest := ts.EncodeTime - ts.SearchTime
		if rest < 0 {
			rest = 0
		}
		return rest + time.Duration(float64(ts.SearchTime)*r)
	}
}

// MEShareTarget is the motion-estimation time share the Kvazaar model is
// calibrated to (the middle of Kvazaar's reported 70–80%).
const MEShareTarget = 0.75

// CalibrateMEInflation encodes one warm GOP of a representative video in
// baseline mode ([19]'s configuration: uniform tiles, fixed QP, plain
// hexagon search) and returns the inflation factor r that brings the
// modeled ME share to MEShareTarget.
func CalibrateMEInflation(videoCfg medgen.Config) (float64, error) {
	src, err := sourceFor(videoCfg)
	if err != nil {
		return 0, err
	}
	cfg := core.DefaultSessionConfig()
	cfg.Mode = core.ModeBaseline
	cfg.BaselineTiles = 4
	sess, err := core.NewSession(0, src, cfg, workload.NewLUT())
	if err != nil {
		return 0, err
	}
	var search, total time.Duration
	// Skip the I-frame (no ME); measure one GOP of P-frames.
	if _, err := sess.EncodeNextFrame(); err != nil {
		return 0, err
	}
	for i := 0; i < 7 && !sess.Finished(); i++ {
		fr, err := sess.EncodeNextFrame()
		if err != nil {
			return 0, err
		}
		for _, ts := range fr.Tiles {
			search += ts.SearchTime
			total += ts.EncodeTime
		}
	}
	if search <= 0 || total <= search {
		return 0, fmt.Errorf("experiments: degenerate ME calibration (search %v of %v)", search, total)
	}
	rest := total - search
	r := (MEShareTarget / (1 - MEShareTarget)) * rest.Seconds() / search.Seconds()
	if r < 1 {
		r = 1
	}
	return r, nil
}
