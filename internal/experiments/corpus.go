// Package experiments implements the paper's evaluation (Sec. IV): one
// runner per table and figure, each returning structured results and a
// rendered table. cmd/experiments exposes them on the command line and
// bench_test.go wraps them in testing.B benchmarks.
//
// Absolute numbers differ from the paper — the substrate is a simulator
// driven by a leaner encoder on different hardware — but each runner
// reproduces the paper's *shape*: who wins, by roughly what factor, and
// where the trends bend. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/medgen"
)

// Corpus returns the synthetic substitute for the paper's ten anonymized
// clinical videos: five body-part classes × two review motions, all at the
// given geometry. Seeds are fixed so every run sees the same corpus.
func Corpus(width, height, frames int) []medgen.Config {
	motions := []medgen.MotionKind{medgen.Rotate, medgen.Sweep}
	var out []medgen.Config
	for class := medgen.Class(0); int(class) < medgen.NumClasses; class++ {
		for mi, m := range motions {
			cfg := medgen.Default()
			cfg.Width, cfg.Height = width, height
			cfg.Frames = frames
			cfg.Class = class
			cfg.Motion = m
			cfg.Seed = int64(class)*10 + int64(mi) + 1
			out = append(out, cfg)
		}
	}
	return out
}

// sourceFor builds a lazy core.FrameSource for a corpus entry.
func sourceFor(cfg medgen.Config) (core.FrameSource, error) {
	g, err := medgen.NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	return core.SourceFromGenerator(g, cfg.Frames, cfg.FPS, cfg.Class.String())
}

// fmtDuration renders a duration in milliseconds with two decimals, the
// unit the paper's Fig. 3 uses (seconds) scaled for readability.
func fmtDuration(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}
