package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/mpsoc"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Table2Options parametrizes the Table II run: a saturated user queue on
// the 32-core platform, proposed vs [19].
type Table2Options struct {
	// QueueLen is the number of waiting users (must exceed capacity; the
	// paper keeps the queue always full).
	QueueLen int
	// FramesPerVideo bounds each user's video length.
	FramesPerVideo int
	// BaselineCoresPerUser anchors the TimeScale calibration: [19] sizes
	// each tile to fill one core's slot capacity, and the paper's Table II
	// regime has the baseline serving ≈15 users on 32 cores ≈ 2 cores per
	// user. The proposed mode's demand then follows from the measured
	// CPU ratio between the two approaches.
	BaselineCoresPerUser float64
	// Width, Height of the corpus videos.
	Width, Height int
}

// DefaultTable2Options returns a trimmed version of the paper's setup.
func DefaultTable2Options() Table2Options {
	return Table2Options{
		QueueLen:             40,
		FramesPerVideo:       48,
		BaselineCoresPerUser: 2,
		Width:                640,
		Height:               480,
	}
}

// Table2Side aggregates one approach's outcome.
type Table2Side struct {
	Name          string
	UsersServed   int
	MaxPSNR       float64
	MinPSNR       float64
	AvgPSNR       float64
	MaxMbps       float64
	MinMbps       float64
	AvgMbps       float64
	AvgPowerWatts float64
}

// Table2Result pairs both approaches plus the calibration actually used.
type Table2Result struct {
	Proposed, Baseline Table2Side
	TimeScale          float64
	BaselineTiles      int
}

// calibrate derives the three platform-calibration values shared by the
// Table II and Fig. 4 runs:
//
//   - the Kvazaar ME-inflation model (see KvazaarTimeModel);
//   - TimeScale, so the average proposed-mode user demands
//     opt.TargetUserCores cores;
//   - the baseline's capacity tile count ([19] sizes each tile to fill
//     one core's slot capacity).
func calibrate(opt Table2Options) (model TimeModel, timeScale float64, baselineTiles int, err error) {
	slot := time.Second / 24
	corpus := Corpus(opt.Width, opt.Height, opt.FramesPerVideo)

	r, err := CalibrateMEInflation(corpus[0])
	if err != nil {
		return nil, 0, 0, err
	}
	model = KvazaarTimeModel(r)

	meanFrameCPU := func(mode core.Mode) (time.Duration, error) {
		var total time.Duration
		var frames int
		for _, vc := range corpus[:2] { // two videos suffice for a mean
			src, err := sourceFor(vc)
			if err != nil {
				return 0, err
			}
			cfg := core.DefaultSessionConfig()
			cfg.Mode = mode
			if mode == core.ModeBaseline {
				cfg.BaselineTiles = 5
			}
			sess, err := core.NewSession(0, src, cfg, workload.NewLUT())
			if err != nil {
				return 0, err
			}
			gop, err := sess.EncodeGOP()
			if err != nil {
				return 0, err
			}
			for _, fr := range gop.Frames {
				for _, ts := range fr.Tiles {
					total += model(ts)
				}
			}
			frames += len(gop.Frames)
		}
		return total / time.Duration(frames), nil
	}

	baseCPU, err := meanFrameCPU(core.ModeBaseline)
	if err != nil {
		return nil, 0, 0, err
	}
	anchor := opt.BaselineCoresPerUser
	if anchor <= 0 {
		anchor = 2
	}
	timeScale = anchor * slot.Seconds() / baseCPU.Seconds()
	baselineTiles = int(math.Round(anchor))
	if baselineTiles < 1 {
		baselineTiles = 1
	}
	return model, timeScale, baselineTiles, nil
}

// RunTable2 reproduces Table II: a saturated queue of users, each
// transcoding one corpus video; the proposed approach and [19] each admit
// as many users as fit and encode one GOP round; PSNR, bitrate and user
// counts are aggregated over the admitted sessions.
func RunTable2(opt Table2Options) (*Table2Result, error) {
	if opt.QueueLen <= 0 || opt.FramesPerVideo <= 0 {
		return nil, fmt.Errorf("experiments: bad table2 options %+v", opt)
	}
	model, timeScale, baselineTiles, err := calibrate(opt)
	if err != nil {
		return nil, err
	}
	res := &Table2Result{TimeScale: timeScale, BaselineTiles: baselineTiles}

	run := func(mode core.Mode, name string) (Table2Side, error) {
		side := Table2Side{Name: name}
		srv, err := core.NewServer(core.ServerConfig{
			Platform:  mpsoc.XeonE5_2667V4(),
			FPS:       24,
			Allocator: allocatorFor(mode),
			TimeScale: timeScale,
		})
		if err != nil {
			return side, err
		}
		corpus := Corpus(opt.Width, opt.Height, opt.FramesPerVideo)
		for i := 0; i < opt.QueueLen; i++ {
			src, err := sourceFor(corpus[i%len(corpus)])
			if err != nil {
				return side, err
			}
			cfg := core.DefaultSessionConfig()
			cfg.Mode = mode
			cfg.BaselineTiles = baselineTiles
			cfg.TimeModel = model
			if _, err := srv.AddSession(src, cfg); err != nil {
				return side, err
			}
		}
		// Pre-warm every body-part class's shared workload LUT with one
		// GOP encoded outside the served queue, then run two admission
		// rounds and report the second. This matches the paper's
		// steady-state regime: the LUT of one MRI/CT study transfers to
		// all other videos of the same class (Sec. III-D1), so a running
		// server never prices a known class at the cold prior.
		for _, vc := range corpus {
			src, err := sourceFor(vc)
			if err != nil {
				return side, err
			}
			cfg := core.DefaultSessionConfig()
			cfg.Mode = mode
			cfg.BaselineTiles = baselineTiles
			cfg.TimeModel = model
			warm, err := core.NewSession(0, src, cfg, srv.Store().ForClass(vc.Class.String()))
			if err != nil {
				return side, err
			}
			if _, err := warm.EncodeGOP(); err != nil {
				return side, err
			}
		}
		var out *core.GOPOutcome
		for round := 0; round < 2; round++ {
			out, err = srv.ServeGOP()
			if err != nil {
				return side, err
			}
		}
		side.UsersServed = len(out.AdmittedUsers)
		side.AvgPowerWatts = out.Energy.AvgPowerW
		side.MinPSNR, side.MinMbps = math.Inf(1), math.Inf(1)
		var psnrSum, mbpsSum float64
		for _, id := range out.AdmittedUsers {
			gop := out.GOPs[id]
			mbps := gop.MeanKbps / 1000
			psnrSum += gop.MeanPSNR
			mbpsSum += mbps
			side.MaxPSNR = math.Max(side.MaxPSNR, gop.MeanPSNR)
			side.MinPSNR = math.Min(side.MinPSNR, gop.MeanPSNR)
			side.MaxMbps = math.Max(side.MaxMbps, mbps)
			side.MinMbps = math.Min(side.MinMbps, mbps)
		}
		if side.UsersServed > 0 {
			side.AvgPSNR = psnrSum / float64(side.UsersServed)
			side.AvgMbps = mbpsSum / float64(side.UsersServed)
		}
		return side, nil
	}

	if res.Proposed, err = run(core.ModeProposed, "Proposed"); err != nil {
		return nil, err
	}
	if res.Baseline, err = run(core.ModeBaseline, "Work [19]"); err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the result in the layout of the paper's Table II.
func (r *Table2Result) Table() *trace.Table {
	t := trace.NewTable("Table II — PSNR, bitrate and number of served users (saturated queue)",
		"approach", "", "PSNR (dB)", "Bitrate (Mbps)", "# of Users")
	add := func(s Table2Side) {
		t.AddRow(s.Name, "Max", fmt.Sprintf("%.1f", s.MaxPSNR), fmt.Sprintf("%.2f", s.MaxMbps), fmt.Sprint(s.UsersServed))
		t.AddRow("", "Min", fmt.Sprintf("%.1f", s.MinPSNR), fmt.Sprintf("%.2f", s.MinMbps), "")
		t.AddRow("", "Avg", fmt.Sprintf("%.1f", s.AvgPSNR), fmt.Sprintf("%.2f", s.AvgMbps), "")
	}
	add(r.Proposed)
	add(r.Baseline)
	return t
}

// Render writes the table and the headline throughput ratio.
func (r *Table2Result) Render(w io.Writer) error {
	if err := r.Table().Render(w); err != nil {
		return err
	}
	ratio := 0.0
	if r.Baseline.UsersServed > 0 {
		ratio = float64(r.Proposed.UsersServed) / float64(r.Baseline.UsersServed)
	}
	_, err := fmt.Fprintf(w,
		"throughput ratio: %.2fx (paper: 23/15 ≈ 1.53x) — timescale %.1fx, baseline tiles %d\n",
		ratio, r.TimeScale, r.BaselineTiles)
	return err
}
