package experiments

import (
	"repro/internal/core"
	"repro/internal/sched"
)

// allocatorFor maps a pipeline mode to its stage-D2 policy through the
// sched registry — the single place the experiments resolve mode →
// allocator, replacing the per-experiment switches that used to wire the
// functions by pointer.
func allocatorFor(mode core.Mode) core.AllocatorFunc {
	name := sched.NameContentAware
	if mode == core.ModeBaseline {
		name = sched.NameBaseline
	}
	fn, ok := sched.Lookup(name)
	if !ok {
		// The built-ins are registered at init; a miss is a programming
		// error caught by every experiment test immediately.
		panic("experiments: built-in allocator " + name + " not registered")
	}
	return core.AllocatorFunc(fn)
}
