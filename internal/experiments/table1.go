package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/analysis"
	"repro/internal/codec"
	"repro/internal/medgen"
	"repro/internal/motion"
	"repro/internal/tiling"
	"repro/internal/trace"
	"repro/internal/video"
)

// Table1Tilings is the paper's uniform tiling sweep (n×m = width/height
// divisors).
var Table1Tilings = [][2]int{
	{1, 1}, {2, 1}, {2, 2}, {2, 3}, {2, 4}, {5, 2}, {4, 3}, {5, 3}, {5, 4}, {4, 6}, {5, 6},
}

// Table1Options parametrizes the Table I run.
type Table1Options struct {
	// Frames is the clip length (paper: 400).
	Frames int
	// Width, Height of the clip (paper: 640×480).
	Width, Height int
	// QP fixes quantization so the comparison isolates motion estimation.
	QP int
	// Video selects the corpus entry; zero value uses a rotating brain
	// study, the dominant diagnostic pattern.
	Video medgen.Config
}

// DefaultTable1Options returns the paper's setup (trimmed frame count; the
// 400-frame run is selected by cmd/experiments -frames 400).
func DefaultTable1Options() Table1Options {
	v := medgen.Default()
	v.Frames = 96
	return Table1Options{Frames: 96, Width: 640, Height: 480, QP: 32, Video: v}
}

// Table1Row is one tiling column of Table I for one method.
type Table1Row struct {
	NX, NY int
	// Speedup is encode-CPU-time(TZ) / encode-CPU-time(method).
	Speedup float64
	// EvalSpeedup is SAD-evaluations(TZ) / SAD-evaluations(method) — a
	// host-noise-free complexity ratio reported alongside wall time.
	EvalSpeedup float64
	// PSNRLoss is PSNR(TZ) − PSNR(method) in dB.
	PSNRLoss float64
	// CompressionLoss is the bitrate increase vs TZ in percent.
	CompressionLoss float64
}

// ProjectedSpeedup applies Amdahl's law to the measured SAD-evaluation
// reduction at a given motion-estimation time share. The paper's encoder
// (Kvazaar) spends roughly 70–80% of its time in ME; this repository's
// leaner codec spends ~30%, so the measured end-to-end speedup understates
// what the same ME reduction yields on the paper's substrate. At a 75% ME
// share the projection lands in the paper's 4–5× regime.
func (r Table1Row) ProjectedSpeedup(meShare float64) float64 {
	if r.EvalSpeedup <= 0 {
		return 0
	}
	return 1 / ((1 - meShare) + meShare/r.EvalSpeedup)
}

// Table1Result holds both method sweeps.
type Table1Result struct {
	Proposed []Table1Row
	Hexagon  []Table1Row
	// MeanProposedSpeedup supports the paper's "4× on average" claim.
	MeanProposedSpeedup float64
}

// methodRun is the measured outcome of encoding the clip one way.
type methodRun struct {
	cpu   time.Duration
	evals int
	psnr  float64
	bits  int
}

// RunTable1 reproduces Table I: for every uniform tiling, encode the clip
// with (a) TZ search, (b) plain rotating hexagon search, (c) the proposed
// GOP-aware combined search, all at one fixed QP, and compare speed, PSNR
// and bitrate against TZ.
func RunTable1(opt Table1Options) (*Table1Result, error) {
	if opt.Frames <= 0 || opt.Width <= 0 || opt.Height <= 0 {
		return nil, fmt.Errorf("experiments: bad table1 options %+v", opt)
	}
	res := &Table1Result{}
	var speedupSum float64
	for _, t := range Table1Tilings {
		grid, err := tiling.Uniform(opt.Width, opt.Height, t[0], t[1])
		if err != nil {
			return nil, err
		}
		tz, err := runTable1Method(opt, grid, "tz")
		if err != nil {
			return nil, err
		}
		hex, err := runTable1Method(opt, grid, "hex")
		if err != nil {
			return nil, err
		}
		prop, err := runTable1Method(opt, grid, "proposed")
		if err != nil {
			return nil, err
		}
		res.Proposed = append(res.Proposed, compareRow(t, tz, prop))
		res.Hexagon = append(res.Hexagon, compareRow(t, tz, hex))
		speedupSum += res.Proposed[len(res.Proposed)-1].Speedup
	}
	res.MeanProposedSpeedup = speedupSum / float64(len(Table1Tilings))
	return res, nil
}

func compareRow(t [2]int, tz, m methodRun) Table1Row {
	row := Table1Row{NX: t[0], NY: t[1]}
	if m.cpu > 0 {
		row.Speedup = tz.cpu.Seconds() / m.cpu.Seconds()
	}
	if m.evals > 0 {
		row.EvalSpeedup = float64(tz.evals) / float64(m.evals)
	}
	row.PSNRLoss = tz.psnr - m.psnr
	if tz.bits > 0 {
		row.CompressionLoss = (float64(m.bits)/float64(tz.bits) - 1) * 100
	}
	return row
}

// runTable1Method encodes the clip over the fixed uniform grid with one of
// the three search strategies.
func runTable1Method(opt Table1Options, grid *tiling.Grid, method string) (methodRun, error) {
	video := opt.Video
	video.Width, video.Height = opt.Width, opt.Height
	video.Frames = opt.Frames
	gen, err := medgen.NewGenerator(video)
	if err != nil {
		return methodRun{}, err
	}
	ccfg := codec.DefaultConfig()
	ccfg.Width, ccfg.Height = opt.Width, opt.Height
	ccfg.FPS = video.FPS
	ccfg.IntraPeriod = 48
	enc, err := codec.NewEncoder(ccfg)
	if err != nil {
		return methodRun{}, err
	}
	policy, err := motion.NewGOPPolicy(motion.DefaultPolicyConfig())
	if err != nil {
		return methodRun{}, err
	}
	acfg := analysis.DefaultConfig()

	var run methodRun
	var psnrSum float64
	var motionClass []analysis.MotionClass
	for n := 0; n < opt.Frames; n++ {
		f := gen.Frame(n)
		frameInGOP := ccfg.FrameInGOP(n)
		if frameInGOP == 0 {
			// GOP boundary: re-evaluate tile motion classes against the
			// encoder's reference and reset the direction policy.
			var prev = refLuma(enc)
			ev, err := analysis.NewEvaluator(acfg, f.Y, prev)
			if err != nil {
				return methodRun{}, err
			}
			tcs, err := ev.EvaluateGrid(grid)
			if err != nil {
				return methodRun{}, err
			}
			motionClass = motionClass[:0]
			for _, tc := range tcs {
				motionClass = append(motionClass, tc.Motion)
			}
			policy.Reset()
		}
		params := make([]codec.TileParams, grid.NumTiles())
		for i := range params {
			params[i] = codec.TileParams{QP: opt.QP}
			switch method {
			case "tz":
				params[i].Searcher = motion.TZSearch{}
				params[i].Window = 64
			case "hex":
				params[i].Searcher = motion.Hexagon{Orientation: motion.HexRotating}
				params[i].Window = 64
			case "proposed":
				high := motionClass[i] == analysis.MotionHigh
				s, w := policy.Choose(i, high, frameInGOP)
				params[i].Searcher = s
				params[i].Window = w
				params[i].Pred = policy.PredFor(i, frameInGOP)
			default:
				return methodRun{}, fmt.Errorf("experiments: unknown method %q", method)
			}
		}
		stats, _, err := enc.EncodeFrame(f, grid, params)
		if err != nil {
			return methodRun{}, err
		}
		if method == "proposed" && frameInGOP == 0 && stats.Type == codec.FrameP {
			for i, ts := range stats.Tiles {
				policy.Observe(i, ts.MeanMV)
			}
		}
		run.cpu += stats.EncodeTime
		run.evals += stats.SearchEvals
		run.bits += stats.Bits
		psnrSum += stats.PSNR
	}
	run.psnr = psnrSum / float64(opt.Frames)
	return run, nil
}

func refLuma(enc *codec.Encoder) *video.Plane {
	if r := enc.Reference(); r != nil {
		return r.Y
	}
	return nil
}

// Table renders the result in the layout of the paper's Table I.
func (r *Table1Result) Table() *trace.Table {
	header := []string{"method", "metric"}
	for _, tl := range Table1Tilings {
		header = append(header, fmt.Sprintf("%dx%d", tl[0], tl[1]))
	}
	t := trace.NewTable("Table I — speedup, PSNR loss and bitrate loss vs TZ search (uniform tiling)", header...)
	addRows := func(name string, rows []Table1Row) {
		speed := []string{name, "Speedup (x)"}
		evals := []string{name, "SAD-eval speedup (x)"}
		proj := []string{name, "Projected @75% ME (x)"}
		psnr := []string{name, "PSNR loss (dB)"}
		comp := []string{name, "Compression loss (%)"}
		for _, row := range rows {
			speed = append(speed, fmt.Sprintf("%.1f", row.Speedup))
			evals = append(evals, fmt.Sprintf("%.1f", row.EvalSpeedup))
			proj = append(proj, fmt.Sprintf("%.1f", row.ProjectedSpeedup(0.75)))
			psnr = append(psnr, fmt.Sprintf("%.2f", row.PSNRLoss))
			comp = append(comp, fmt.Sprintf("%.1f", row.CompressionLoss))
		}
		t.AddRow(speed...)
		t.AddRow(evals...)
		t.AddRow(proj...)
		t.AddRow(psnr...)
		t.AddRow(comp...)
	}
	addRows("Proposed", r.Proposed)
	addRows("Hexagonal", r.Hexagon)
	return t
}

// Render writes the table plus the headline average to w.
func (r *Table1Result) Render(w io.Writer) error {
	if err := r.Table().Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "mean proposed speedup: %.1fx (paper: ~4x)\n", r.MeanProposedSpeedup)
	return err
}
