package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/medgen"
	"repro/internal/trace"
	"repro/internal/workload"
)

// LUTOptions parametrizes the workload-estimation convergence experiment
// (the paper's claim in Sec. III-D1: over/under-estimation below 100 µs
// once enough frames have been processed).
type LUTOptions struct {
	// GOPs is the number of GOPs to encode while tracking the error.
	GOPs  int
	Video medgen.Config
	// CrossVideo, when set, encodes a *different* video of the same class
	// with the warmed LUT to demonstrate cross-video reuse.
	CrossVideo *medgen.Config
}

// DefaultLUTOptions encodes several GOPs of a rotating brain study, then a
// panning brain study reusing the same LUT.
func DefaultLUTOptions() LUTOptions {
	v := medgen.Default()
	v.Frames = 64
	cross := medgen.Default()
	cross.Frames = 16
	cross.Motion = medgen.Pan
	cross.Seed = 7
	return LUTOptions{GOPs: 8, Video: v, CrossVideo: &cross}
}

// LUTPoint is the estimation error after one GOP.
type LUTPoint struct {
	GOP          int
	MeanAbsError time.Duration
	Observations uint64
}

// LUTResult is the convergence trace.
type LUTResult struct {
	Points []LUTPoint
	// FinalError is the error after the last GOP of the primary video.
	FinalError time.Duration
	// MeanTileTime is the average observed tile time, for putting the
	// absolute error in proportion (the floor of the absolute error is
	// the host's timing jitter, not the estimator).
	MeanTileTime time.Duration
	// CrossVideoError is the error accumulated while encoding the second
	// same-class video with the shared LUT (0 when not requested).
	CrossVideoError time.Duration
}

// RunLUT encodes the video GOP by GOP, recording the workload LUT's mean
// absolute estimation error as it converges, then optionally replays a
// second same-class video against the warmed LUT.
func RunLUT(opt LUTOptions) (*LUTResult, error) {
	if opt.GOPs <= 0 {
		return nil, fmt.Errorf("experiments: bad LUT options %+v", opt)
	}
	lut := workload.NewLUT()
	src, err := sourceFor(opt.Video)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultSessionConfig()
	sess, err := core.NewSession(0, src, cfg, lut)
	if err != nil {
		return nil, err
	}
	res := &LUTResult{}
	var tileTime time.Duration
	var tiles int
	for g := 0; g < opt.GOPs && !sess.Finished(); g++ {
		gop, err := sess.EncodeGOP()
		if err != nil {
			return nil, err
		}
		for _, fr := range gop.Frames {
			for _, ts := range fr.Tiles {
				tileTime += ts.EncodeTime
				tiles++
			}
		}
		e, n := lut.MeanAbsError()
		res.Points = append(res.Points, LUTPoint{GOP: g, MeanAbsError: e, Observations: n})
		res.FinalError = e
	}
	if tiles > 0 {
		res.MeanTileTime = tileTime / time.Duration(tiles)
	}
	if opt.CrossVideo != nil {
		src2, err := sourceFor(*opt.CrossVideo)
		if err != nil {
			return nil, err
		}
		sess2, err := core.NewSession(1, src2, cfg, lut)
		if err != nil {
			return nil, err
		}
		before, beforeN := lut.MeanAbsError()
		for !sess2.Finished() {
			if _, err := sess2.EncodeGOP(); err != nil {
				return nil, err
			}
		}
		after, afterN := lut.MeanAbsError()
		// Isolate the cross-video contribution from the running average.
		if afterN > beforeN {
			total := time.Duration(int64(after)*int64(afterN) - int64(before)*int64(beforeN))
			res.CrossVideoError = total / time.Duration(afterN-beforeN)
		}
	}
	return res, nil
}

// Render writes the convergence trace.
func (r *LUTResult) Render(w io.Writer) error {
	t := trace.NewTable("Workload LUT convergence (paper: < 100 µs once warm)",
		"GOP", "mean abs error", "re-observations")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.GOP), p.MeanAbsError.String(), fmt.Sprint(p.Observations))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if r.CrossVideoError > 0 {
		if _, err := fmt.Fprintf(w, "same-class cross-video error with shared LUT: %v\n", r.CrossVideoError); err != nil {
			return err
		}
	}
	rel := 0.0
	if r.MeanTileTime > 0 {
		rel = float64(r.FinalError) / float64(r.MeanTileTime) * 100
	}
	_, err := fmt.Fprintf(w, "final error: %v (%.1f%% of the %.2fms mean tile time; the absolute floor is host timing jitter)\n",
		r.FinalError, rel, float64(r.MeanTileTime.Microseconds())/1000)
	return err
}
