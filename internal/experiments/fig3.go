package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/medgen"
	"repro/internal/mpsoc"
	"repro/internal/sched"
	"repro/internal/tiling"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig3Options parametrizes the Fig. 3 run (one representative video, one
// GOP, compare the tile structure and per-tile CPU time of the proposed
// approach against [19]).
type Fig3Options struct {
	Video medgen.Config
	// TimeScale calibrates host times to the paper's platform regime; 0
	// auto-calibrates so the baseline lands near the paper's 5 cores.
	TimeScale float64
}

// DefaultFig3Options uses a rotating brain study at the paper's geometry.
func DefaultFig3Options() Fig3Options {
	v := medgen.Default()
	v.Frames = 16
	return Fig3Options{Video: v}
}

// TileCPU is one tile with its measured CPU time.
type TileCPU struct {
	Tile tiling.Tile
	CPU  time.Duration
}

// Fig3Side is one subfigure: the tile structure, per-tile CPU time and the
// resulting allocation footprint.
type Fig3Side struct {
	Name       string
	Tiles      []TileCPU
	TotalCPU   time.Duration
	CoresUsed  int
	CoresAtMax int
}

// Fig3Result pairs both approaches.
type Fig3Result struct {
	Proposed Fig3Side
	Baseline Fig3Side
	// TimeScale actually applied.
	TimeScale float64
}

// RunFig3 encodes one GOP of the video with both approaches, measures the
// per-tile CPU times of the second GOP (warm LUT, steady tiling), scales
// them to the simulated platform, and allocates threads to cores to count
// the cores each approach needs and how many must run at fmax.
func RunFig3(opt Fig3Options) (*Fig3Result, error) {
	platform := mpsoc.XeonE5_2667V4()
	slot := time.Second / 24

	r, err := CalibrateMEInflation(opt.Video)
	if err != nil {
		return nil, err
	}
	model := KvazaarTimeModel(r)

	measure := func(mode core.Mode) (*core.GOPReport, error) {
		src, err := sourceFor(opt.Video)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultSessionConfig()
		cfg.Mode = mode
		cfg.TimeModel = model
		if mode == core.ModeBaseline {
			cfg.BaselineTiles = 5 // the paper's Fig. 3(a) shows 5 capacity tiles
		}
		sess, err := core.NewSession(0, src, cfg, workload.NewLUT())
		if err != nil {
			return nil, err
		}
		// First GOP warms the LUT and the tiling; the second is measured.
		if _, err := sess.EncodeGOP(); err != nil {
			return nil, err
		}
		return sess.EncodeGOP()
	}

	prop, err := measure(core.ModeProposed)
	if err != nil {
		return nil, err
	}
	base, err := measure(core.ModeBaseline)
	if err != nil {
		return nil, err
	}
	// Re-express measured tile stats in platform time.
	applyModel := func(gop *core.GOPReport) {
		for fi := range gop.Frames {
			for ti := range gop.Frames[fi].Tiles {
				ts := &gop.Frames[fi].Tiles[ti]
				ts.EncodeTime = model(*ts)
			}
		}
	}
	applyModel(prop)
	applyModel(base)

	// Calibration: the paper's baseline frame needs ≈5 cores at 24 FPS
	// (5 × 41.7 ms ≈ 0.21 s of CPU per frame; Fig. 3(a) shows 0.159 s).
	scale := opt.TimeScale
	if scale <= 0 {
		baseCPUPerFrame := base.CPUTime / time.Duration(len(base.Frames))
		target := 4.5 * slot.Seconds()
		scale = target / baseCPUPerFrame.Seconds()
	}

	build := func(name string, gop *core.GOPReport, mode core.Mode) (Fig3Side, error) {
		side := Fig3Side{Name: name}
		perTile := make([]time.Duration, len(gop.Grid.Tiles))
		for _, fr := range gop.Frames {
			for i, ts := range fr.Tiles {
				perTile[i] += ts.EncodeTime
			}
		}
		var threads []sched.Thread
		for i, tile := range gop.Grid.Tiles {
			cpu := time.Duration(float64(perTile[i]) / float64(len(gop.Frames)) * scale)
			side.Tiles = append(side.Tiles, TileCPU{Tile: tile, CPU: cpu})
			side.TotalCPU += cpu
			threads = append(threads, sched.Thread{User: 0, Tile: i, TimeFmax: cpu})
		}
		in := sched.Input{Platform: platform, FPS: 24, Users: []sched.UserDemand{{User: 0, Threads: threads}}}
		alloc, err := allocatorFor(mode)(in)
		if err != nil {
			return side, err
		}
		side.CoresUsed = alloc.CoresUsed
		for _, plan := range alloc.Plans {
			if plan.LoadAtFmax > 0 && (plan.LoadAtFmax >= slot || plan.IdleLevel == platform.MaxLevel()) {
				side.CoresAtMax++
			}
		}
		return side, nil
	}

	res := &Fig3Result{TimeScale: scale}
	if res.Baseline, err = build("work of [19]", base, core.ModeBaseline); err != nil {
		return nil, err
	}
	if res.Proposed, err = build("proposed", prop, core.ModeProposed); err != nil {
		return nil, err
	}
	return res, nil
}

// Render writes both subfigures as text tables.
func (r *Fig3Result) Render(w io.Writer) error {
	for _, side := range []Fig3Side{r.Baseline, r.Proposed} {
		t := trace.NewTable(
			fmt.Sprintf("Fig. 3 — tile structure and per-tile CPU time: %s", side.Name),
			"tile", "rect", "region", "cpu/frame")
		for i, tc := range side.Tiles {
			t.AddRow(fmt.Sprint(i), tc.Tile.Rect.String(), tc.Tile.Region.String(), fmtDuration(tc.CPU))
		}
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "total %.1fms/frame → %d cores used, %d at fmax\n\n",
			float64(side.TotalCPU.Microseconds())/1000, side.CoresUsed, side.CoresAtMax); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "(paper: [19] uses 5 cores all at fmax; proposed uses 3 cores, 2 at fmax; timescale %.1fx)\n", r.TimeScale)
	return err
}
