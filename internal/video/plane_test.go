package video

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func TestNewPlaneZeroed(t *testing.T) {
	p := NewPlane(7, 5)
	if p.W != 7 || p.H != 5 || p.Stride != 7 {
		t.Fatalf("geometry = %d %d %d, want 7 5 7", p.W, p.H, p.Stride)
	}
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			if p.At(x, y) != 0 {
				t.Fatalf("sample (%d,%d) = %d, want 0", x, y, p.At(x, y))
			}
		}
	}
}

func TestNewPlanePanicsOnBadSize(t *testing.T) {
	for _, dims := range [][2]int{{0, 4}, {4, 0}, {-1, 4}, {4, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPlane(%d, %d) did not panic", dims[0], dims[1])
				}
			}()
			NewPlane(dims[0], dims[1])
		}()
	}
}

func TestPlaneSetAt(t *testing.T) {
	p := NewPlane(4, 3)
	p.Set(2, 1, 200)
	if got := p.At(2, 1); got != 200 {
		t.Fatalf("At(2,1) = %d, want 200", got)
	}
	if got := p.At(1, 2); got != 0 {
		t.Fatalf("At(1,2) = %d, want 0", got)
	}
}

func TestPlaneRowAliases(t *testing.T) {
	p := NewPlane(4, 3)
	row := p.Row(1)
	row[3] = 77
	if got := p.At(3, 1); got != 77 {
		t.Fatalf("row write not visible: At(3,1) = %d", got)
	}
	if len(row) != 4 {
		t.Fatalf("row length = %d, want 4", len(row))
	}
}

func TestPlaneCloneIndependent(t *testing.T) {
	p := NewPlane(3, 3)
	p.Fill(9)
	q := p.Clone()
	q.Set(0, 0, 1)
	if p.At(0, 0) != 9 {
		t.Fatal("clone shares storage with original")
	}
	if q.Stride != q.W {
		t.Fatalf("clone stride = %d, want compact %d", q.Stride, q.W)
	}
}

func TestSubPlaneViewsShareStorage(t *testing.T) {
	p := NewPlane(8, 8)
	sp, err := p.SubPlane(2, 3, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sp.Set(0, 0, 42)
	if got := p.At(2, 3); got != 42 {
		t.Fatalf("subplane write not visible in parent: %d", got)
	}
	if sp.At(1, 1) != p.At(3, 4) {
		t.Fatal("subplane indexing misaligned")
	}
}

func TestSubPlaneBounds(t *testing.T) {
	p := NewPlane(8, 8)
	cases := [][4]int{{-1, 0, 4, 4}, {0, -1, 4, 4}, {5, 0, 4, 4}, {0, 5, 4, 4}, {0, 0, 0, 4}, {0, 0, 9, 1}}
	for _, c := range cases {
		if _, err := p.SubPlane(c[0], c[1], c[2], c[3]); err == nil {
			t.Errorf("SubPlane(%v) succeeded, want error", c)
		}
	}
}

func TestCopyFromMismatch(t *testing.T) {
	p, q := NewPlane(4, 4), NewPlane(5, 4)
	if err := p.CopyFrom(q); err == nil {
		t.Fatal("CopyFrom with mismatched sizes succeeded")
	}
}

func TestMeanStddevConstantPlane(t *testing.T) {
	p := NewPlane(16, 16)
	p.Fill(77)
	mean, stddev := p.MeanStddev()
	if mean != 77 || stddev != 0 {
		t.Fatalf("mean=%v stddev=%v, want 77 0", mean, stddev)
	}
}

func TestMeanStddevKnownValues(t *testing.T) {
	p := NewPlane(2, 1)
	p.Set(0, 0, 10)
	p.Set(1, 0, 20)
	mean, stddev := p.MeanStddev()
	if mean != 15 {
		t.Fatalf("mean = %v, want 15", mean)
	}
	if math.Abs(stddev-5) > 1e-9 {
		t.Fatalf("stddev = %v, want 5", stddev)
	}
}

func TestMaxFindsCoordinates(t *testing.T) {
	p := NewPlane(5, 5)
	p.Set(3, 4, 250)
	v, x, y := p.Max()
	if v != 250 || x != 3 || y != 4 {
		t.Fatalf("Max = %d@(%d,%d), want 250@(3,4)", v, x, y)
	}
}

func TestMSEAndPSNR(t *testing.T) {
	a, b := NewPlane(4, 4), NewPlane(4, 4)
	a.Fill(100)
	b.Fill(110)
	mse, err := MSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if mse != 100 {
		t.Fatalf("MSE = %v, want 100", mse)
	}
	psnr, err := PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * math.Log10(255*255/100.0)
	if math.Abs(psnr-want) > 1e-9 {
		t.Fatalf("PSNR = %v, want %v", psnr, want)
	}
}

func TestPSNRIdenticalIsInf(t *testing.T) {
	a := NewPlane(4, 4)
	a.Fill(42)
	psnr, err := PSNR(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(psnr, 1) {
		t.Fatalf("PSNR identical = %v, want +Inf", psnr)
	}
	if got := CapPSNR(psnr, 100); got != 100 {
		t.Fatalf("CapPSNR = %v, want 100", got)
	}
}

func TestSSIMIdenticalIsOne(t *testing.T) {
	a := NewPlane(16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			a.Set(x, y, uint8(x*16+y))
		}
	}
	s, err := SSIM(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("SSIM identical = %v, want 1", s)
	}
}

func TestSSIMDegradesWithNoise(t *testing.T) {
	a := NewPlane(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			a.Set(x, y, uint8((x*7+y*13)%256))
		}
	}
	b := a.Clone()
	for y := 0; y < 32; y += 2 {
		for x := 0; x < 32; x += 2 {
			b.Set(x, y, ClampU8(int(b.At(x, y))+40))
		}
	}
	s, err := SSIM(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s >= 1 || s <= 0 {
		t.Fatalf("SSIM with noise = %v, want in (0, 1)", s)
	}
}

func TestSADAgainstManual(t *testing.T) {
	a, b := NewPlane(2, 2), NewPlane(2, 2)
	a.Set(0, 0, 10)
	b.Set(0, 0, 3)
	a.Set(1, 1, 5)
	b.Set(1, 1, 9)
	got, err := SAD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 11 {
		t.Fatalf("SAD = %d, want 11", got)
	}
}

func TestClampU8(t *testing.T) {
	cases := []struct {
		in   int
		want uint8
	}{{-1, 0}, {0, 0}, {128, 128}, {255, 255}, {256, 255}, {1000, 255}, {-1000, 0}}
	for _, c := range cases {
		if got := ClampU8(c.in); got != c.want {
			t.Errorf("ClampU8(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestMeanStddevPropertyBounds(t *testing.T) {
	// Property: stddev is non-negative and ≤ 127.5 (max for 8-bit data),
	// and mean lies within [min, max] of the samples.
	f := func(seed uint8, w8, h8 uint8) bool {
		w, h := int(w8%16)+1, int(h8%16)+1
		p := NewPlane(w, h)
		v := seed
		lo, hi := uint8(255), uint8(0)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				v = v*31 + 7
				p.Set(x, y, v)
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
		mean, stddev := p.MeanStddev()
		return stddev >= 0 && stddev <= 127.5 && mean >= float64(lo)-1e-9 && mean <= float64(hi)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameYUVRoundTrip(t *testing.T) {
	f := NewFrame(16, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 16; x++ {
			f.Y.Set(x, y, uint8(x+y*16))
		}
	}
	f.Cb.Fill(90)
	f.Cr.Fill(200)
	var buf bytes.Buffer
	if err := f.WriteYUV(&buf); err != nil {
		t.Fatal(err)
	}
	wantLen := 16*8 + 2*(8*4)
	if buf.Len() != wantLen {
		t.Fatalf("yuv length = %d, want %d", buf.Len(), wantLen)
	}
	g, err := ReadYUV(&buf, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sad, _ := SAD(f.Y, g.Y); sad != 0 {
		t.Fatal("luma did not round-trip")
	}
	if g.Cb.At(0, 0) != 90 || g.Cr.At(3, 3) != 200 {
		t.Fatal("chroma did not round-trip")
	}
}

func TestReadYUVEOF(t *testing.T) {
	if _, err := ReadYUV(bytes.NewReader(nil), 16, 8); err != io.EOF {
		t.Fatalf("empty stream error = %v, want io.EOF", err)
	}
	short := make([]byte, 16*8/2) // half a luma plane
	if _, err := ReadYUV(bytes.NewReader(short), 16, 8); err != io.ErrUnexpectedEOF {
		t.Fatalf("short stream error = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestNewFramePanicsOnOddSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFrame(15, 8) did not panic")
		}
	}()
	NewFrame(15, 8)
}

func TestSequenceNumbersAndDuration(t *testing.T) {
	s := NewSequence(24, NewFrame(4, 4), NewFrame(4, 4), NewFrame(4, 4))
	if s.Frames[2].Number != 2 {
		t.Fatalf("frame 2 number = %d", s.Frames[2].Number)
	}
	if math.Abs(s.Frames[1].PTS-1.0/24) > 1e-12 {
		t.Fatalf("frame 1 PTS = %v", s.Frames[1].PTS)
	}
	if math.Abs(s.Duration()-3.0/24) > 1e-12 {
		t.Fatalf("duration = %v", s.Duration())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSequenceValidateMismatch(t *testing.T) {
	s := NewSequence(24, NewFrame(4, 4), NewFrame(8, 4))
	if err := s.Validate(); err == nil {
		t.Fatal("mismatched sequence validated")
	}
}
