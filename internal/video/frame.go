package video

import (
	"fmt"
	"io"
)

// Frame is a YUV 4:2:0 picture. The chroma planes are half the luma
// resolution in each dimension. All of the content-analysis and encoding in
// this repository operates on luma; chroma is carried for completeness and
// round-trips through the YUV I/O helpers.
type Frame struct {
	Y, Cb, Cr *Plane
	// Number is the display order index within the sequence (0-based).
	Number int
	// PTS is the presentation time in seconds at the sequence frame rate.
	PTS float64
}

// NewFrame allocates a zeroed YUV 4:2:0 frame. Width and height must be
// even so that the subsampled chroma planes are well defined.
func NewFrame(w, h int) *Frame {
	if w%2 != 0 || h%2 != 0 {
		panic(fmt.Sprintf("video: frame size %dx%d must be even for 4:2:0", w, h))
	}
	return &Frame{
		Y:  NewPlane(w, h),
		Cb: NewPlane(w/2, h/2),
		Cr: NewPlane(w/2, h/2),
	}
}

// Reset clears the frame's metadata (Number, PTS) so a recycled buffer
// starts like a fresh NewFrame. Pixel data is left untouched: a reuser
// must either overwrite every sample it later reads or call Zero. Pools
// (e.g. the encoder's reconstruction recycling) rely on this being cheap.
func (f *Frame) Reset() {
	f.Number = 0
	f.PTS = 0
}

// CanReuse reports whether the frame can serve as a recycled w×h buffer:
// the geometry must match exactly (planes are never resized in place).
func (f *Frame) CanReuse(w, h int) bool {
	return f != nil && f.Width() == w && f.Height() == h
}

// Width returns the luma width.
func (f *Frame) Width() int { return f.Y.W }

// Height returns the luma height.
func (f *Frame) Height() int { return f.Y.H }

// Clone deep-copies the frame.
func (f *Frame) Clone() *Frame {
	return &Frame{Y: f.Y.Clone(), Cb: f.Cb.Clone(), Cr: f.Cr.Clone(), Number: f.Number, PTS: f.PTS}
}

// FillGray sets luma to y and both chroma planes to neutral (128).
func (f *Frame) FillGray(y uint8) {
	f.Y.Fill(y)
	f.Cb.Fill(128)
	f.Cr.Fill(128)
}

// WriteYUV appends the frame in planar I420 layout (Y then Cb then Cr,
// compact rows) to w, e.g. for inspection with external raw-YUV players.
func (f *Frame) WriteYUV(w io.Writer) error {
	for _, p := range []*Plane{f.Y, f.Cb, f.Cr} {
		for y := 0; y < p.H; y++ {
			if _, err := w.Write(p.Row(y)); err != nil {
				return fmt.Errorf("video: write yuv: %w", err)
			}
		}
	}
	return nil
}

// ReadYUV reads one planar I420 frame of the given luma dimensions from r.
// It returns io.ErrUnexpectedEOF if the stream ends mid-frame and io.EOF if
// it ends cleanly before any byte of the frame.
func ReadYUV(r io.Reader, w, h int) (*Frame, error) {
	f := NewFrame(w, h)
	first := true
	for _, p := range []*Plane{f.Y, f.Cb, f.Cr} {
		for y := 0; y < p.H; y++ {
			if _, err := io.ReadFull(r, p.Row(y)); err != nil {
				if err == io.EOF && first {
					return nil, io.EOF
				}
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return nil, err
			}
			first = false
		}
	}
	return f, nil
}

// Sequence is an ordered list of frames sharing one geometry and frame rate.
type Sequence struct {
	Frames []*Frame
	FPS    float64
}

// NewSequence wraps frames with a frame rate, assigning Number and PTS.
func NewSequence(fps float64, frames ...*Frame) *Sequence {
	s := &Sequence{Frames: frames, FPS: fps}
	for i, f := range frames {
		f.Number = i
		if fps > 0 {
			f.PTS = float64(i) / fps
		}
	}
	return s
}

// Duration returns the sequence duration in seconds.
func (s *Sequence) Duration() float64 {
	if s.FPS <= 0 {
		return 0
	}
	return float64(len(s.Frames)) / s.FPS
}

// Validate checks that all frames share one geometry.
func (s *Sequence) Validate() error {
	if len(s.Frames) == 0 {
		return nil
	}
	w, h := s.Frames[0].Width(), s.Frames[0].Height()
	for i, f := range s.Frames {
		if f.Width() != w || f.Height() != h {
			return fmt.Errorf("video: frame %d is %dx%d, want %dx%d: %w", i, f.Width(), f.Height(), w, h, ErrSizeMismatch)
		}
	}
	return nil
}
