// Package video provides the raw-video substrate for the transcoding
// framework: luma/chroma sample planes, YUV 4:2:0 frames, quality metrics
// (MSE, PSNR, SSIM) and simple plane arithmetic. All sample data is 8-bit.
package video

import (
	"errors"
	"fmt"
	"math"
)

// Plane is a rectangular grid of 8-bit samples. Pix is stored row-major
// with the given Stride, which may exceed W to describe a sub-window of a
// larger plane without copying.
type Plane struct {
	W, H   int
	Stride int
	Pix    []uint8
}

// NewPlane allocates a zeroed W×H plane with Stride == W.
func NewPlane(w, h int) *Plane {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("video: invalid plane size %dx%d", w, h))
	}
	return &Plane{W: w, H: h, Stride: w, Pix: make([]uint8, w*h)}
}

// At returns the sample at (x, y). It panics if out of range, matching
// slice-index semantics.
func (p *Plane) At(x, y int) uint8 { return p.Pix[y*p.Stride+x] }

// Set stores v at (x, y).
func (p *Plane) Set(x, y int, v uint8) { p.Pix[y*p.Stride+x] = v }

// Row returns the y-th row as a slice of length W aliasing the plane.
func (p *Plane) Row(y int) []uint8 { return p.Pix[y*p.Stride : y*p.Stride+p.W] }

// Clone returns a deep copy with a compact stride.
func (p *Plane) Clone() *Plane {
	q := NewPlane(p.W, p.H)
	for y := 0; y < p.H; y++ {
		copy(q.Row(y), p.Row(y))
	}
	return q
}

// SubPlane returns a view of the w×h window at (x, y) sharing storage with
// p. Mutating the view mutates p.
func (p *Plane) SubPlane(x, y, w, h int) (*Plane, error) {
	if x < 0 || y < 0 || w <= 0 || h <= 0 || x+w > p.W || y+h > p.H {
		return nil, fmt.Errorf("video: subplane %dx%d@(%d,%d) outside %dx%d", w, h, x, y, p.W, p.H)
	}
	return &Plane{W: w, H: h, Stride: p.Stride, Pix: p.Pix[y*p.Stride+x:]}, nil
}

// MustSubPlane is SubPlane for windows known to be in range.
func (p *Plane) MustSubPlane(x, y, w, h int) *Plane {
	sp, err := p.SubPlane(x, y, w, h)
	if err != nil {
		panic(err)
	}
	return sp
}

// Zero clears every sample, returning a recycled plane to the state
// NewPlane allocates. It is the explicit-scrub half of the reuse contract;
// callers that provably overwrite the full plane may skip it.
func (p *Plane) Zero() {
	for y := 0; y < p.H; y++ {
		row := p.Row(y)
		for x := range row {
			row[x] = 0
		}
	}
}

// Fill sets every sample to v.
func (p *Plane) Fill(v uint8) {
	for y := 0; y < p.H; y++ {
		row := p.Row(y)
		for x := range row {
			row[x] = v
		}
	}
}

// CopyFrom copies src into p. Both planes must have identical dimensions.
func (p *Plane) CopyFrom(src *Plane) error {
	if p.W != src.W || p.H != src.H {
		return fmt.Errorf("video: copy size mismatch %dx%d vs %dx%d", p.W, p.H, src.W, src.H)
	}
	for y := 0; y < p.H; y++ {
		copy(p.Row(y), src.Row(y))
	}
	return nil
}

// Mean returns the average sample value.
func (p *Plane) Mean() float64 {
	var sum uint64
	for y := 0; y < p.H; y++ {
		row := p.Row(y)
		for _, v := range row {
			sum += uint64(v)
		}
	}
	return float64(sum) / float64(p.W*p.H)
}

// MeanStddev returns the mean and (population) standard deviation of the
// samples in one pass. A constant plane has stddev 0.
func (p *Plane) MeanStddev() (mean, stddev float64) {
	var sum, sumSq uint64
	for y := 0; y < p.H; y++ {
		row := p.Row(y)
		for _, v := range row {
			sum += uint64(v)
			sumSq += uint64(v) * uint64(v)
		}
	}
	n := float64(p.W * p.H)
	mean = float64(sum) / n
	variance := float64(sumSq)/n - mean*mean
	if variance < 0 { // numerical guard
		variance = 0
	}
	return mean, math.Sqrt(variance)
}

// Max returns the maximum sample value and one of its coordinates.
func (p *Plane) Max() (v uint8, x, y int) {
	for yy := 0; yy < p.H; yy++ {
		row := p.Row(yy)
		for xx, s := range row {
			if s > v {
				v, x, y = s, xx, yy
			}
		}
	}
	return v, x, y
}

// ErrSizeMismatch reports that two planes or frames had different sizes.
var ErrSizeMismatch = errors.New("video: size mismatch")
