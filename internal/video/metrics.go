package video

import (
	"fmt"
	"math"
)

// MSE returns the mean squared error between two planes of equal size.
func MSE(a, b *Plane) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("video: mse %dx%d vs %dx%d: %w", a.W, a.H, b.W, b.H, ErrSizeMismatch)
	}
	var sum uint64
	for y := 0; y < a.H; y++ {
		ra, rb := a.Row(y), b.Row(y)
		for x := range ra {
			d := int(ra[x]) - int(rb[x])
			sum += uint64(d * d)
		}
	}
	return float64(sum) / float64(a.W*a.H), nil
}

// PSNR returns the peak signal-to-noise ratio in dB between two planes.
// Identical planes return +Inf.
func PSNR(a, b *Plane) (float64, error) {
	mse, err := MSE(a, b)
	if err != nil {
		return 0, err
	}
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

// FramePSNR returns the luma PSNR between two frames.
func FramePSNR(a, b *Frame) (float64, error) { return PSNR(a.Y, b.Y) }

// CapPSNR bounds a possibly infinite PSNR for aggregation: lossless blocks
// are conventionally counted at cap dB (commonly 100) so that sequence
// averages stay finite.
func CapPSNR(psnr, cap float64) float64 {
	if math.IsInf(psnr, 1) || psnr > cap {
		return cap
	}
	return psnr
}

// SSIM computes the structural similarity index between two planes using
// the standard 8×8 non-overlapping window variant with K1=0.01, K2=0.03 and
// L=255. It is used by tests as an independent fidelity check on the codec.
func SSIM(a, b *Plane) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("video: ssim %dx%d vs %dx%d: %w", a.W, a.H, b.W, b.H, ErrSizeMismatch)
	}
	const (
		c1  = (0.01 * 255) * (0.01 * 255)
		c2  = (0.03 * 255) * (0.03 * 255)
		win = 8
	)
	var total float64
	var n int
	for by := 0; by+win <= a.H; by += win {
		for bx := 0; bx+win <= a.W; bx += win {
			var sa, sb, saa, sbb, sab float64
			for y := by; y < by+win; y++ {
				ra, rb := a.Row(y), b.Row(y)
				for x := bx; x < bx+win; x++ {
					va, vb := float64(ra[x]), float64(rb[x])
					sa += va
					sb += vb
					saa += va * va
					sbb += vb * vb
					sab += va * vb
				}
			}
			np := float64(win * win)
			ma, mb := sa/np, sb/np
			va := saa/np - ma*ma
			vb := sbb/np - mb*mb
			cov := sab/np - ma*mb
			num := (2*ma*mb + c1) * (2*cov + c2)
			den := (ma*ma + mb*mb + c1) * (va + vb + c2)
			total += num / den
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("video: ssim: planes smaller than %dx%d window", win, win)
	}
	return total / float64(n), nil
}

// SAD returns the sum of absolute differences between two equally sized
// planes. It is exposed here for metric-level use; the motion package has
// its own hot-path SAD over sub-windows.
func SAD(a, b *Plane) (int64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("video: sad %dx%d vs %dx%d: %w", a.W, a.H, b.W, b.H, ErrSizeMismatch)
	}
	var sum int64
	for y := 0; y < a.H; y++ {
		ra, rb := a.Row(y), b.Row(y)
		for x := range ra {
			d := int(ra[x]) - int(rb[x])
			if d < 0 {
				d = -d
			}
			sum += int64(d)
		}
	}
	return sum, nil
}

// ClampU8 clamps an int to the 8-bit sample range.
func ClampU8(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
