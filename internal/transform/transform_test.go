package transform

import (
	"math"
	"testing"
	"testing/quick"
)

// randBlock fills an n×n residual block deterministically from a seed,
// values in the signed residual range [-255, 255].
func randBlock(n int, seed int64) []int32 {
	b := make([]int32, n*n)
	s := uint64(seed)*2654435761 + 12345
	for i := range b {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		b[i] = int32(s%511) - 255
	}
	return b
}

func TestForwardInverseUnitGain4(t *testing.T) {
	testRoundTrip(t, Size4)
}

func TestForwardInverseUnitGain8(t *testing.T) {
	testRoundTrip(t, Size8)
}

// testRoundTrip verifies that Forward→Inverse recovers the residual within
// the ±1 rounding tolerance of the integer shift schedule.
func testRoundTrip(t *testing.T, n int) {
	t.Helper()
	for seed := int64(0); seed < 50; seed++ {
		src := randBlock(n, seed)
		coeffs := make([]int32, n*n)
		if err := Forward(n, src, coeffs); err != nil {
			t.Fatal(err)
		}
		back := make([]int32, n*n)
		if err := Inverse(n, coeffs, back); err != nil {
			t.Fatal(err)
		}
		for i := range src {
			d := src[i] - back[i]
			if d < -1 || d > 1 {
				t.Fatalf("seed %d: residual[%d] = %d, reconstructed %d (diff %d)", seed, i, src[i], back[i], d)
			}
		}
	}
}

func TestForwardDCCoefficient(t *testing.T) {
	// A constant block must put all energy in the DC coefficient.
	for _, n := range []int{Size4, Size8} {
		src := make([]int32, n*n)
		for i := range src {
			src[i] = 100
		}
		coeffs := make([]int32, n*n)
		if err := Forward(n, src, coeffs); err != nil {
			t.Fatal(err)
		}
		if coeffs[0] == 0 {
			t.Fatalf("n=%d: DC coefficient is zero", n)
		}
		for i := 1; i < n*n; i++ {
			if coeffs[i] != 0 {
				t.Fatalf("n=%d: AC coefficient %d = %d, want 0", n, i, coeffs[i])
			}
		}
		// The orthonormal 2-D DCT of a constant block x has DC = n·x, so
		// the integer transform yields n·x × forward gain — 12800 for both
		// sizes (100·4·32 and 100·8·16).
		want := int32(100 * float64(n) * forwardGain(n))
		if d := coeffs[0] - want; d < -2 || d > 2 {
			t.Fatalf("n=%d: DC = %d, want ≈%d", n, coeffs[0], want)
		}
	}
}

func TestForwardLinearity(t *testing.T) {
	// Property: T(a) + T(b) ≈ T(a+b) up to rounding of the shift stages.
	f := func(seedA, seedB int64) bool {
		n := Size8
		a := randBlock(n, seedA)
		b := randBlock(n, seedB)
		sum := make([]int32, n*n)
		for i := range sum {
			// Halve to stay in range.
			a[i] /= 2
			b[i] /= 2
			sum[i] = a[i] + b[i]
		}
		ca, cb, cs := make([]int32, n*n), make([]int32, n*n), make([]int32, n*n)
		if Forward(n, a, ca) != nil || Forward(n, b, cb) != nil || Forward(n, sum, cs) != nil {
			return false
		}
		for i := range cs {
			d := cs[i] - ca[i] - cb[i]
			if d < -4 || d > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformRejectsBadSizes(t *testing.T) {
	if err := Forward(5, make([]int32, 25), make([]int32, 25)); err == nil {
		t.Fatal("Forward accepted size 5")
	}
	if err := Forward(Size4, make([]int32, 15), make([]int32, 16)); err == nil {
		t.Fatal("Forward accepted short src")
	}
	if err := Inverse(Size8, make([]int32, 64), make([]int32, 63)); err == nil {
		t.Fatal("Inverse accepted short dst")
	}
}

func TestQstepDoubling(t *testing.T) {
	if got := Qstep(4); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Qstep(4) = %v, want 1", got)
	}
	for qp := MinQP; qp+6 <= MaxQP; qp++ {
		r := Qstep(qp+6) / Qstep(qp)
		if math.Abs(r-2) > 1e-9 {
			t.Fatalf("Qstep(%d+6)/Qstep(%d) = %v, want 2", qp, qp, r)
		}
	}
}

func TestNewQuantizerValidation(t *testing.T) {
	if _, err := NewQuantizer(Size4, -1, false); err == nil {
		t.Fatal("accepted QP -1")
	}
	if _, err := NewQuantizer(Size4, 52, false); err == nil {
		t.Fatal("accepted QP 52")
	}
	if _, err := NewQuantizer(6, 30, false); err == nil {
		t.Fatal("accepted size 6")
	}
}

func TestQuantizeZeroStaysZero(t *testing.T) {
	q, err := NewQuantizer(Size8, 32, false)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]int32, 64)
	dst := make([]int32, 64)
	if err := q.Quantize(src, dst); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("level[%d] = %d, want 0", i, v)
		}
	}
}

func TestQuantizeDequantizeBoundedError(t *testing.T) {
	// Property: the reconstruction error per coefficient is bounded by one
	// quantization step (scaled by the transform gain).
	for _, qp := range []int{22, 27, 32, 37, 42} {
		q, err := NewQuantizer(Size8, qp, false)
		if err != nil {
			t.Fatal(err)
		}
		step := Qstep(qp) * 16 // forward gain of 8×8
		for seed := int64(0); seed < 20; seed++ {
			src := randBlock(Size8, seed)
			// Scale up to plausible coefficient magnitudes.
			for i := range src {
				src[i] *= 16
			}
			lev := make([]int32, 64)
			rec := make([]int32, 64)
			if err := q.Quantize(src, lev); err != nil {
				t.Fatal(err)
			}
			if err := q.Dequantize(lev, rec); err != nil {
				t.Fatal(err)
			}
			for i := range src {
				if e := math.Abs(float64(src[i] - rec[i])); e > step+1 {
					t.Fatalf("QP %d seed %d: coeff %d error %v > step %v", qp, seed, i, e, step)
				}
			}
		}
	}
}

func TestHigherQPCoarser(t *testing.T) {
	// Higher QP must never produce more non-zero levels on the same data.
	src := randBlock(Size8, 99)
	prev := 1 << 30
	for _, qp := range []int{22, 27, 32, 37, 42} {
		q, err := NewQuantizer(Size8, qp, false)
		if err != nil {
			t.Fatal(err)
		}
		lev := make([]int32, 64)
		if err := q.Quantize(src, lev); err != nil {
			t.Fatal(err)
		}
		nz := 0
		for _, v := range lev {
			if v != 0 {
				nz++
			}
		}
		if nz > prev {
			t.Fatalf("QP %d has %d non-zeros, more than lower QP's %d", qp, nz, prev)
		}
		prev = nz
	}
}

func TestQuantizeSymmetry(t *testing.T) {
	// Property: Quantize(−c) == −Quantize(c).
	f := func(seed int64) bool {
		q, err := NewQuantizer(Size4, 30, true)
		if err != nil {
			return false
		}
		src := randBlock(Size4, seed)
		neg := make([]int32, len(src))
		for i := range src {
			neg[i] = -src[i]
		}
		a, b := make([]int32, len(src)), make([]int32, len(src))
		if q.Quantize(src, a) != nil || q.Quantize(neg, b) != nil {
			return false
		}
		for i := range a {
			if a[i] != -b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeAliasingAllowed(t *testing.T) {
	q, err := NewQuantizer(Size4, 27, false)
	if err != nil {
		t.Fatal(err)
	}
	src := randBlock(Size4, 7)
	ref := make([]int32, len(src))
	if err := q.Quantize(src, ref); err != nil {
		t.Fatal(err)
	}
	if err := q.Quantize(src, src); err != nil { // in place
		t.Fatal(err)
	}
	for i := range src {
		if src[i] != ref[i] {
			t.Fatalf("in-place quantize diverged at %d", i)
		}
	}
}
