// Package transform implements the HEVC-style integer core transform for
// 4×4 and 8×8 blocks together with scalar quantization driven by the HEVC
// quantization parameter (Qstep = 2^((QP−4)/6)).
//
// The forward path uses the HEVC partial-butterfly matrices and bit-exact
// shift schedule (first-stage shift log2(N)+B−9 with B = 8-bit video,
// second-stage shift log2(N)+6); the inverse path uses shifts 7 and 12.
// With this schedule the concatenation forward→inverse has unit gain, so a
// quantizer with Qstep expressed in *spatial-domain* units can divide the
// transform coefficients after compensating the known forward gain
// (32 for 4×4, 16 for 8×8).
package transform

import (
	"fmt"
	"math"
)

// Block sizes supported by the core transform.
const (
	Size4 = 4
	Size8 = 8
)

// m4 is the HEVC 4×4 core transform matrix.
var m4 = [4][4]int32{
	{64, 64, 64, 64},
	{83, 36, -36, -83},
	{64, -64, -64, 64},
	{36, -83, 83, -36},
}

// m8 is the HEVC 8×8 core transform matrix.
var m8 = [8][8]int32{
	{64, 64, 64, 64, 64, 64, 64, 64},
	{89, 75, 50, 18, -18, -50, -75, -89},
	{83, 36, -36, -83, -83, -36, 36, 83},
	{75, -18, -89, -50, 50, 89, 18, -75},
	{64, -64, -64, 64, 64, -64, -64, 64},
	{50, -89, 18, 75, -75, -18, 89, -50},
	{36, -83, 83, -36, -36, 83, -83, 36},
	{18, -50, 75, -89, 89, -75, 50, -18},
}

// forwardGain returns the end-to-end multiplicative gain of the forward
// transform relative to an orthonormal DCT for block size n.
func forwardGain(n int) float64 {
	switch n {
	case Size4:
		return 32
	case Size8:
		return 16
	default:
		panic(fmt.Sprintf("transform: unsupported size %d", n))
	}
}

// shifts returns the HEVC forward shift schedule for size n (8-bit video).
func shifts(n int) (s1, s2 uint) {
	switch n {
	case Size4:
		return 1, 8 // log2(4)+8−9, log2(4)+6
	case Size8:
		return 2, 9 // log2(8)+8−9, log2(8)+6
	default:
		panic(fmt.Sprintf("transform: unsupported size %d", n))
	}
}

// Forward applies the 2-D forward core transform in place semantics:
// src is an n×n residual block (row-major, length n*n) and dst receives the
// n×n coefficient block. src and dst may alias.
func Forward(n int, src, dst []int32) error {
	if err := checkBlock(n, src, dst); err != nil {
		return err
	}
	s1, s2 := shifts(n)
	// Fixed-size stage scratch (n ≤ 8, so n*n ≤ 64): stays on the caller's
	// stack, keeping the per-sub-block transform allocation-free.
	var scratch [Size8 * Size8]int32
	tmp := scratch[:n*n]
	mulStage(n, src, tmp, s1, false) // rows: tmp = (M · srcᵀ-wise) per HEVC column pass
	mulStage(n, tmp, dst, s2, false) // columns
	return nil
}

// Inverse applies the 2-D inverse core transform: src is an n×n coefficient
// block and dst receives the reconstructed residual. src and dst may alias.
func Inverse(n int, src, dst []int32) error {
	if err := checkBlock(n, src, dst); err != nil {
		return err
	}
	var scratch [Size8 * Size8]int32
	tmp := scratch[:n*n]
	mulStage(n, src, tmp, 7, true)
	mulStage(n, tmp, dst, 12, true)
	return nil
}

// mulStage performs one separable stage: for each row r of src (treated as
// a vector v), dst column r receives M·v (forward) or Mᵀ·v (inverse), with
// rounding right-shift. Writing results transposed means two applications
// complete the 2-D transform in both dimensions.
func mulStage(n int, src, dst []int32, shift uint, inverse bool) {
	round := int64(1) << (shift - 1)
	for r := 0; r < n; r++ {
		v := src[r*n : r*n+n]
		for k := 0; k < n; k++ {
			var acc int64
			for i := 0; i < n; i++ {
				var coeff int32
				if inverse {
					coeff = matAt(n, i, k)
				} else {
					coeff = matAt(n, k, i)
				}
				acc += int64(coeff) * int64(v[i])
			}
			dst[k*n+r] = int32((acc + round) >> shift)
		}
	}
}

// matAt returns the (row, col) entry of the size-n core matrix.
func matAt(n, row, col int) int32 {
	if n == Size4 {
		return m4[row][col]
	}
	return m8[row][col]
}

func checkBlock(n int, src, dst []int32) error {
	if n != Size4 && n != Size8 {
		return fmt.Errorf("transform: unsupported size %d", n)
	}
	if len(src) != n*n || len(dst) != n*n {
		return fmt.Errorf("transform: block length src=%d dst=%d, want %d", len(src), len(dst), n*n)
	}
	return nil
}

// MinQP and MaxQP bound the HEVC quantization parameter range.
const (
	MinQP = 0
	MaxQP = 51
)

// Qstep returns the HEVC quantization step for a QP: 2^((QP−4)/6).
// QP 4 → 1.0; +6 QP doubles the step.
func Qstep(qp int) float64 {
	return math.Pow(2, float64(qp-4)/6)
}

// Quantizer quantizes transform coefficients of one block size at one QP.
type Quantizer struct {
	n      int
	qp     int
	scaled float64 // Qstep × forward gain
	// deadzone shifts the rounding point: 0.5 is plain rounding; HEVC uses
	// ≈1/3 for intra and ≈1/6 for inter. Smaller values bias levels toward
	// zero (better rate, slightly worse distortion).
	deadzone float64
}

// NewQuantizer builds a quantizer for block size n (4 or 8) at qp.
// intra selects the intra deadzone.
func NewQuantizer(n, qp int, intra bool) (*Quantizer, error) {
	if n != Size4 && n != Size8 {
		return nil, fmt.Errorf("transform: unsupported size %d", n)
	}
	if qp < MinQP || qp > MaxQP {
		return nil, fmt.Errorf("transform: QP %d outside [%d, %d]", qp, MinQP, MaxQP)
	}
	// HEVC rounding offsets: ≈1/3 of a step for intra, ≈1/6 for inter.
	dz := 1.0 / 6
	if intra {
		dz = 1.0 / 3
	}
	return &Quantizer{n: n, qp: qp, scaled: Qstep(qp) * forwardGain(n), deadzone: dz}, nil
}

// QP returns the quantizer's QP.
func (q *Quantizer) QP() int { return q.qp }

// ZeroSADBound returns a residual-SAD bound under which every transform
// coefficient of the block is guaranteed to quantize to zero, enabling the
// encoder's skip fast path without changing the bitstream.
//
// Derivation: the orthonormal-equivalent coefficient magnitude is bounded
// by maxAmp·SAD where maxAmp is the largest 2-D basis amplitude (1/4 for
// 8×8, 1/2 for 4×4); the integer transform scales it by the forward gain g,
// and a level is zero when |c| < g·Qstep·(1 − deadzone). Hence
// SAD < Qstep·(1 − dz)/maxAmp suffices.
func (q *Quantizer) ZeroSADBound() int64 {
	maxAmp := 0.25
	if q.n == Size4 {
		maxAmp = 0.5
	}
	return int64(Qstep(q.qp) * (1 - q.deadzone) / maxAmp)
}

// Quantize maps coefficients to levels: level = sign·floor(|c|/qs + dz).
// dst and src may alias.
func (q *Quantizer) Quantize(src, dst []int32) error {
	if len(src) != q.n*q.n || len(dst) != q.n*q.n {
		return fmt.Errorf("transform: quantize length src=%d dst=%d, want %d", len(src), len(dst), q.n*q.n)
	}
	for i, c := range src {
		neg := c < 0
		a := float64(c)
		if neg {
			a = -a
		}
		level := int32(a/q.scaled + q.deadzone)
		if neg {
			level = -level
		}
		dst[i] = level
	}
	return nil
}

// Dequantize maps levels back to reconstructed coefficients.
// dst and src may alias.
func (q *Quantizer) Dequantize(src, dst []int32) error {
	if len(src) != q.n*q.n || len(dst) != q.n*q.n {
		return fmt.Errorf("transform: dequantize length src=%d dst=%d, want %d", len(src), len(dst), q.n*q.n)
	}
	for i, l := range src {
		dst[i] = int32(math.Round(float64(l) * q.scaled))
	}
	return nil
}
