package dist

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/medgen"
	"repro/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSessionWire builds a fully deterministic mid-stream session
// checkpoint: fixed generator config, one GOP encoded, wired at the
// boundary with every ladder field populated.
func goldenSessionWire(t *testing.T) *core.SessionWire {
	t.Helper()
	mc := medgen.Default()
	mc.Width, mc.Height = 192, 144
	mc.Frames = 8
	mc.Seed = 7
	mc.Class = medgen.Brain
	mc.Motion = medgen.Rotate
	src, err := NewMedgenSource(mc, "brain")
	if err != nil {
		t.Fatal(err)
	}
	scfg := core.DefaultSessionConfig()
	scfg.Codec.GOPSize = 4
	scfg.Codec.IntraPeriod = 8
	scfg.Retile.MinTileW, scfg.Retile.MinTileH = 48, 48
	sess, err := core.NewSession(3, src, scfg, workload.NewLUT())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.EncodeGOP(); err != nil {
		t.Fatal(err)
	}
	snap := &core.SessionSnapshot{
		Session:    sess,
		Class:      sess.Class(),
		DonorID:    3,
		Frame:      sess.NextFrame(),
		QPOffset:   sess.QPOffset(),
		Degraded:   sess.Degraded(),
		RateHalved: sess.RateHalved(),
		Demand:     2,
		Rung:       1,
		Waited:     1,
		SkipRound:  false,
	}
	wire, err := snap.Wire()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// checkGolden compares got against the named golden file (-update
// rewrites it).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from its golden file (%d bytes, want %d).\n"+
			"A changed wire encoding breaks cross-version migration: if the change is intentional, "+
			"bump the wire version where required and regenerate with -update.", name, len(got), len(want))
	}
}

// TestSessionWireGolden pins the session wire format byte-for-byte: the
// encoding is deterministic, the golden file decodes back into state
// that re-encodes to the same bytes, and any field added to SessionWire
// (or a type it embeds) without a conscious wire decision shows up as a
// golden drift.
func TestSessionWireGolden(t *testing.T) {
	wire := goldenSessionWire(t)
	got, err := json.MarshalIndent(wire, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	checkGolden(t, "session_wire_v1.json", got)

	// Byte-determinism: a second independent build encodes identically.
	again, err := json.MarshalIndent(goldenSessionWire(t), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, append(again, '\n')) {
		t.Fatal("session wire encoding is not deterministic")
	}

	// Decode-equality: the golden bytes restore (through the production
	// binder) and re-wire to the same bytes.
	var decoded core.SessionWire
	if err := json.Unmarshal(got, &decoded); err != nil {
		t.Fatal(err)
	}
	snap, err := decoded.Restore(BindSource)
	if err != nil {
		t.Fatal(err)
	}
	rewired, err := snap.Wire()
	if err != nil {
		t.Fatal(err)
	}
	back, err := json.MarshalIndent(rewired, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, append(back, '\n')) {
		t.Fatal("restore → re-wire did not reproduce the golden bytes")
	}
}

// TestSessionWireVersionPinned: bumping the wire version is a conscious
// act that must come with a fresh golden file.
func TestSessionWireVersionPinned(t *testing.T) {
	if core.SessionWireVersion != 1 {
		t.Fatalf("SessionWireVersion = %d: add a session_wire_v%d.json golden and update this pin",
			core.SessionWireVersion, core.SessionWireVersion)
	}
}

// goldenSubmitRequest builds a fully deterministic tenant-tagged
// submission — the v2 front-door envelope.
func goldenSubmitRequest(t *testing.T) SubmitRequest {
	t.Helper()
	mc := medgen.Default()
	mc.Width, mc.Height = 192, 144
	mc.Frames = 8
	mc.Seed = 7
	mc.Class = medgen.Brain
	mc.Motion = medgen.Rotate
	src, err := NewMedgenSource(mc, "brain")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := src.Spec()
	if err != nil {
		t.Fatal(err)
	}
	scfg := core.DefaultSessionConfig()
	scfg.Codec.GOPSize = 4
	scfg.Codec.IntraPeriod = 8
	scfg.Retile.MinTileW, scfg.Retile.MinTileH = 48, 48
	return SubmitRequest{
		Version:  ProtocolVersion,
		Source:   spec,
		Config:   scfg,
		Tenant:   "er",
		Priority: 9,
	}
}

// TestSubmitRequestGolden pins the v2 submission envelope byte-for-byte:
// the tenant id and priority class must survive the wire exactly, and
// any field added to SubmitRequest (or a type it embeds) without a
// conscious wire decision shows up as a golden drift.
func TestSubmitRequestGolden(t *testing.T) {
	req := goldenSubmitRequest(t)
	got, err := json.MarshalIndent(req, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	checkGolden(t, "submit_request_v2.json", got)

	// Round-trip: the golden bytes decode into an identical request.
	var decoded SubmitRequest
	if err := json.Unmarshal(got, &decoded); err != nil {
		t.Fatal(err)
	}
	back, err := json.MarshalIndent(decoded, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, append(back, '\n')) {
		t.Fatal("decode → re-encode did not reproduce the golden bytes")
	}
	if decoded.Tenant != "er" || decoded.Priority != 9 {
		t.Fatalf("QoS identity lost on the wire: tenant=%q priority=%d", decoded.Tenant, decoded.Priority)
	}

	// The zero QoS identity stays off the wire, so a default-tenant v2
	// submission is byte-identical to its v1 encoding (modulo version).
	req.Tenant, req.Priority = "", 0
	plain, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(plain, []byte(`"tenant"`)) || bytes.Contains(plain, []byte(`"priority"`)) {
		t.Fatal("zero-valued tenant/priority fields leaked into the encoding")
	}
}

// TestProtocolVersionPinned: bumping the master↔agent protocol version
// is a conscious act that must come with a fresh golden file for every
// versioned request shape.
func TestProtocolVersionPinned(t *testing.T) {
	if ProtocolVersion != 2 {
		t.Fatalf("ProtocolVersion = %d: add a submit_request_v%d.json golden and update this pin",
			ProtocolVersion, ProtocolVersion)
	}
}
