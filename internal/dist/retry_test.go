package dist

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// testClient builds a client with a deterministic jitter (always the
// nominal delay) and recorded, non-blocking sleeps.
func testClient(cfg RetryConfig) (*Client, *[]time.Duration) {
	var slept []time.Duration
	cfg.jitter = func() float64 { return 0.5 } // 0.5+0.5 = 1.0× nominal
	cfg.sleep = func(d time.Duration) { slept = append(slept, d) }
	return NewClient(cfg), &slept
}

// TestRetryTransientThenSuccess: 5xx responses are retried on the
// exponential schedule until the peer recovers.
func TestRetryTransientThenSuccess(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, http.StatusOK, HealthResponse{Version: ProtocolVersion, Name: "ok"})
	}))
	defer srv.Close()

	c, slept := testClient(RetryConfig{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond})
	var out HealthResponse
	if err := c.GetJSON(context.Background(), srv.URL, &out); err != nil {
		t.Fatalf("transient 5xx not retried to success: %v", err)
	}
	if out.Name != "ok" {
		t.Fatalf("decoded %+v", out)
	}
	if calls.Load() != 3 {
		t.Fatalf("%d calls, want 3", calls.Load())
	}
	// Two backoffs: base, then 2×base (jitter pinned to 1.0×).
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(*slept) != len(want) || (*slept)[0] != want[0] || (*slept)[1] != want[1] {
		t.Fatalf("backoff schedule %v, want %v", *slept, want)
	}
}

// TestRetry429Retried: throttling is transient, not permanent.
func TestRetry429Retried(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "slow down", http.StatusTooManyRequests)
			return
		}
		writeJSON(w, http.StatusOK, HeartbeatResponse{OK: true})
	}))
	defer srv.Close()

	c, _ := testClient(RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond})
	var out HeartbeatResponse
	if err := c.PostJSON(context.Background(), srv.URL, Heartbeat{Version: ProtocolVersion}, &out); err != nil {
		t.Fatalf("429 not retried: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("%d calls, want 2", calls.Load())
	}
}

// TestRetryPermanent: a non-429 4xx fails immediately with ErrPermanent
// — no second attempt, no backoff.
func TestRetryPermanent(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "no such session", http.StatusNotFound)
	}))
	defer srv.Close()

	c, slept := testClient(RetryConfig{MaxAttempts: 5, BaseDelay: time.Millisecond})
	err := c.GetJSON(context.Background(), srv.URL, nil)
	if !errors.Is(err, ErrPermanent) {
		t.Fatalf("4xx error = %v, want ErrPermanent", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("%d calls for a permanent failure, want 1", calls.Load())
	}
	if len(*slept) != 0 {
		t.Fatalf("slept %v before a permanent failure", *slept)
	}
	if !strings.Contains(err.Error(), "404") {
		t.Fatalf("error %v does not carry the status", err)
	}
}

// TestRetryExhausted: a peer that never recovers yields a distinct
// exhaustion error — not ErrPermanent, the work is still pending.
func TestRetryExhausted(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	c, _ := testClient(RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond})
	err := c.GetJSON(context.Background(), srv.URL, nil)
	if err == nil {
		t.Fatal("exhausted retries reported success")
	}
	if errors.Is(err, ErrPermanent) {
		t.Fatalf("transient exhaustion classified permanent: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("%d calls, want MaxAttempts=3", calls.Load())
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("error %v does not report the attempt count", err)
	}
}

// TestRetryTimeout: a hanging peer is cut off by the per-call timeout
// and retried; the final error is transient, not permanent.
func TestRetryTimeout(t *testing.T) {
	var calls atomic.Int32
	block := make(chan struct{})
	defer close(block)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		select {
		case <-block:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()

	c, _ := testClient(RetryConfig{MaxAttempts: 2, BaseDelay: time.Millisecond, Timeout: 30 * time.Millisecond})
	err := c.GetJSON(context.Background(), srv.URL, nil)
	if err == nil {
		t.Fatal("hung peer reported success")
	}
	if errors.Is(err, ErrPermanent) {
		t.Fatalf("timeout classified permanent: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("%d calls, want 2 (timeout retried once)", calls.Load())
	}
}

// TestRetryNetworkError: a connection refused is transient and retried
// up to the attempt budget.
func TestRetryNetworkError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close() // nothing listens here anymore

	c, slept := testClient(RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond})
	err := c.GetJSON(context.Background(), url, nil)
	if err == nil {
		t.Fatal("dead peer reported success")
	}
	if errors.Is(err, ErrPermanent) {
		t.Fatalf("network error classified permanent: %v", err)
	}
	if len(*slept) != 2 {
		t.Fatalf("%d backoffs, want 2", len(*slept))
	}
}

// TestRetryContextCancel: caller cancellation wins over the retry
// budget.
func TestRetryContextCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cfg := RetryConfig{MaxAttempts: 10, BaseDelay: time.Millisecond}
	cfg.jitter = func() float64 { return 0.5 }
	cfg.sleep = func(time.Duration) { cancel() } // cancelled mid-backoff
	c := NewClient(cfg)
	err := c.GetJSON(ctx, srv.URL, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled call returned %v", err)
	}
}
