package dist

import (
	"encoding/json"

	"repro/internal/core"
)

// The master↔agent HTTP/JSON protocol (DESIGN.md §13). Versioning rules
// mirror core.SessionWire's: ProtocolVersion is bumped when a field
// changes meaning or disappears; adding an optional field with a
// harmless zero value is a compatible change and keeps the version.
// Peers reject versions they do not know — a mixed-version fleet must
// fail loudly at the front door, not corrupt sessions mid-migration.
//
// Version history:
//
//	1 — initial protocol.
//	2 — SubmitRequest carries the tenant id and priority class
//	    (multi-tenant QoS). The fields are zero-default, but a v1 peer
//	    routing a tenant-tagged submission would silently strip its QoS
//	    identity — a meaning change, hence the bump.
const ProtocolVersion = 2

// Agent endpoints (all JSON bodies):
//
//	GET  /v1/healthz  → HealthResponse
//	GET  /v1/loads    → LoadsResponse
//	POST /v1/submit   SubmitRequest  → SubmitResponse
//	POST /v1/import   ImportRequest  → ImportResponse
//	POST /v1/export   ExportRequest  → ExportResponse
//	POST /v1/drain    (empty)        → DrainResponse
//
// Master endpoints:
//
//	GET  /v1/healthz   → HealthResponse
//	POST /v1/heartbeat Heartbeat     → HeartbeatResponse
//	POST /v1/submit    SubmitRequest → RoutedSubmitResponse
//	GET  /v1/agents    → AgentsResponse
//	GET  /v1/stats     → StatsResponse

// HealthResponse answers a liveness probe.
type HealthResponse struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
}

// SubmitRequest opens a new session: the source is shipped as a spec
// (never as pixels) and re-opened by the serving agent's binder. Since
// v2 it also carries the session's QoS identity — the tenant the
// session bills to ("" = the default tenant) and its priority class
// (0 = best effort) — which the receiving agent hands to its fleet's
// SubmitWith front door.
type SubmitRequest struct {
	Version  int                `json:"version"`
	Source   core.SourceSpec    `json:"source"`
	Config   core.SessionConfig `json:"config"`
	Tenant   string             `json:"tenant,omitempty"`
	Priority int                `json:"priority,omitempty"`
}

// SubmitResponse reports where an agent placed a submission.
type SubmitResponse struct {
	Shard   int `json:"shard"`
	Session int `json:"session"`
}

// RoutedSubmitResponse is the master's answer: which agent took the
// session, and where that agent placed it.
type RoutedSubmitResponse struct {
	Agent   string `json:"agent"`
	Shard   int    `json:"shard"`
	Session int    `json:"session"`
}

// LoadsResponse reports an agent's per-shard load signal — the same
// core.LoadReport semantics the in-process dispatcher routes by.
type LoadsResponse struct {
	Name  string            `json:"name"`
	Loads []core.LoadReport `json:"loads"`
}

// ImportRequest adopts one checkpointed session into the receiving
// agent, optionally warming it with the donor's workload LUT store
// (workload.Store.Save bytes) so estimation stays calibrated across the
// machine boundary.
type ImportRequest struct {
	Version int               `json:"version"`
	Session *core.SessionWire `json:"session"`
	LUTs    json.RawMessage   `json:"luts,omitempty"`
}

// ImportResponse reports where the adopted session landed.
type ImportResponse struct {
	Shard   int `json:"shard"`
	Session int `json:"session"`
}

// ExportRequest destructively exports one session at its next GOP
// boundary — the live-migration handshake (the session is removed from
// the donor and must be imported somewhere else).
type ExportRequest struct {
	Shard   int `json:"shard"`
	Session int `json:"session"`
}

// ExportResponse carries the exported session's wire state.
type ExportResponse struct {
	Session *core.SessionWire `json:"session"`
}

// DrainResponse carries every session a draining agent handed back.
type DrainResponse struct {
	Sessions []*core.SessionWire `json:"sessions"`
}

// Heartbeat is what an agent POSTs to its master every interval: its
// identity and address, a monotonic sequence number, the per-shard load
// signal, the latest non-destructive wire checkpoints of every live
// session (the master's failover inventory), the merged workload LUT
// store, and the lifetime session counters.
type Heartbeat struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	URL     string `json:"url"`
	Seq     int64  `json:"seq"`

	Loads       []core.LoadReport   `json:"loads"`
	Checkpoints []*core.SessionWire `json:"checkpoints"`
	LUTs        json.RawMessage     `json:"luts,omitempty"`

	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Rejected  int `json:"rejected"`
}

// HeartbeatResponse acknowledges a heartbeat.
type HeartbeatResponse struct {
	OK bool `json:"ok"`
}

// CheckpointInfo summarizes one cached session checkpoint for the
// master's status API (the full wire state stays internal).
type CheckpointInfo struct {
	Class   string `json:"class"`
	Session int    `json:"session"`
	Frame   int    `json:"frame"`
}

// AgentStatus is one registry row of the master's status API.
type AgentStatus struct {
	Name        string            `json:"name"`
	URL         string            `json:"url"`
	Alive       bool              `json:"alive"`
	Seq         int64             `json:"seq"`
	Loads       []core.LoadReport `json:"loads"`
	Checkpoints []CheckpointInfo  `json:"checkpoints"`
	Completed   int               `json:"completed"`
	Failed      int               `json:"failed"`
	Rejected    int               `json:"rejected"`
}

// AgentsResponse lists the master's registry, dead agents included.
type AgentsResponse struct {
	Agents []AgentStatus `json:"agents"`
}

// StatsResponse aggregates the fleet: session counters summed over live
// agents' latest heartbeats plus the retained counters of dead ones, and
// the master's own failover ledger.
type StatsResponse struct {
	Agents     int `json:"agents"`
	Live       int `json:"live"`
	Completed  int `json:"completed"`
	Failed     int `json:"failed"`
	Rejected   int `json:"rejected"`
	Reimported int `json:"reimported"`
	Lost       int `json:"lost"`
}
