package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/tenancy"
	"repro/internal/workload"
)

// AgentConfig configures one agent node.
type AgentConfig struct {
	// Name is the node's unique identity — the master's registry key and
	// its consistent-hash ring member name, so it must be stable across
	// restarts for routing to be stable.
	Name string
	// Addr is the HTTP listen address (e.g. "127.0.0.1:0").
	Addr string
	// AdvertiseURL is the base URL peers reach this agent at; empty
	// derives "http://<bound addr>" from the listener.
	AdvertiseURL string
	// MasterURL is the master's base URL; empty runs the agent
	// standalone (no heartbeats, still fully drivable over HTTP).
	MasterURL string
	// HeartbeatEvery paces the heartbeat loop. Default 1s.
	HeartbeatEvery time.Duration
	// CheckpointEvery is the wire-checkpoint cadence in settled rounds
	// per shard (serve.WithCheckpoint). Every checkpoint refreshes the
	// failover inventory the next heartbeat ships. Default 2.
	CheckpointEvery int
	// ExportTimeout bounds the round-boundary handshake of one export or
	// drain step — an idle shard settles no round, so the wait must give
	// up. Default 10s.
	ExportTimeout time.Duration
	// Client carries heartbeats to the master (nil = DefaultClient).
	Client *Client
	// Binder re-opens submitted and imported sources (nil = BindSource).
	Binder core.SourceBinder
	// Sink receives the fleet's telemetry (optional). The agent composes
	// it with its own session counters, so pass the sink here rather
	// than as a serve.WithSink option.
	Sink serve.Sink
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
}

// Agent wraps one local serve.Fleet behind the HTTP front door and
// keeps a master informed via heartbeats. Build with NewAgent, start
// with Start, stop by cancelling the context (crash-equivalent) or
// Close (graceful).
type Agent struct {
	cfg    AgentConfig
	fleet  *serve.Fleet
	client *Client
	counts *counterSink

	mu          sync.Mutex
	checkpoints map[int][]*core.SessionWire // shard → latest wires
	seq         atomic.Int64

	ln      net.Listener
	srv     *http.Server
	started bool
	done    chan struct{}
	runErr  error
}

// counterSink tallies terminal session states — the lifetime counters
// an agent reports in heartbeats.
type counterSink struct {
	serve.NopSink
	mu                          sync.Mutex
	completed, failed, rejected int
}

func (c *counterSink) OnSessionStateChange(e serve.SessionEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch e.State {
	case core.StateCompleted:
		c.completed++
	case core.StateFailed:
		c.failed++
	case core.StateRejected:
		c.rejected++
	}
}

func (c *counterSink) totals() (completed, failed, rejected int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.completed, c.failed, c.rejected
}

// NewAgent builds an agent and its fleet. fleetOpts configure the
// embedded serve.Fleet (shards, platforms, allocator, ...); the agent
// adds its own checkpoint hook and telemetry counters on top, so do not
// pass serve.WithCheckpoint or serve.WithSink here — use
// AgentConfig.CheckpointEvery and AgentConfig.Sink.
func NewAgent(cfg AgentConfig, fleetOpts ...serve.Option) (*Agent, error) {
	if cfg.Name == "" {
		return nil, errors.New("dist: agent needs a name")
	}
	if cfg.Addr == "" {
		return nil, errors.New("dist: agent needs a listen address")
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 2
	}
	if cfg.ExportTimeout <= 0 {
		cfg.ExportTimeout = 10 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = DefaultClient()
	}
	if cfg.Binder == nil {
		cfg.Binder = BindSource
	}
	a := &Agent{
		cfg:         cfg,
		client:      cfg.Client,
		counts:      &counterSink{},
		checkpoints: make(map[int][]*core.SessionWire),
		done:        make(chan struct{}),
	}
	sink := serve.Sink(a.counts)
	if cfg.Sink != nil {
		sink = serve.MultiSink(a.counts, cfg.Sink)
	}
	opts := append(append([]serve.Option(nil), fleetOpts...),
		serve.WithSink(sink),
		serve.WithCheckpoint(cfg.CheckpointEvery, a.storeCheckpoint),
	)
	fleet, err := serve.New(opts...)
	if err != nil {
		return nil, err
	}
	a.fleet = fleet
	return a, nil
}

// Fleet exposes the embedded fleet (tests and embedders).
func (a *Agent) Fleet() *serve.Fleet { return a.fleet }

// storeCheckpoint is the serve.WithCheckpoint callback: swap the
// shard's latest wire inventory into the cache the heartbeat loop
// reads. Runs on the shard's serving goroutine — no blocking.
func (a *Agent) storeCheckpoint(shard int, wires []*core.SessionWire) {
	a.mu.Lock()
	a.checkpoints[shard] = wires
	a.mu.Unlock()
}

// URL is the base URL peers reach this agent at (valid after Start).
func (a *Agent) URL() string {
	if a.cfg.AdvertiseURL != "" {
		return a.cfg.AdvertiseURL
	}
	if a.ln == nil {
		return ""
	}
	return "http://" + a.ln.Addr().String()
}

// Start binds the listener and launches the serving loops: the fleet's
// Run, the HTTP server, and (with a master configured) the heartbeat
// loop. Cancelling ctx tears everything down mid-flight — the
// crash-equivalent stop a failover test kills an agent with; Close is
// the graceful path.
func (a *Agent) Start(ctx context.Context) error {
	if a.started {
		return errors.New("dist: agent already started")
	}
	a.started = true
	ln, err := net.Listen("tcp", a.cfg.Addr)
	if err != nil {
		return fmt.Errorf("dist: agent listener: %w", err)
	}
	a.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", a.handleHealth)
	mux.HandleFunc("GET /v1/loads", a.handleLoads)
	mux.HandleFunc("POST /v1/submit", a.handleSubmit)
	mux.HandleFunc("POST /v1/import", a.handleImport)
	mux.HandleFunc("POST /v1/export", a.handleExport)
	mux.HandleFunc("POST /v1/drain", a.handleDrain)
	a.srv = &http.Server{Handler: mux}

	go func() {
		if err := a.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			a.logf("agent %s: http: %v", a.cfg.Name, err)
		}
	}()
	go func() {
		<-ctx.Done()
		a.srv.Close()
	}()
	go func() {
		defer close(a.done)
		_, err := a.fleet.Run(ctx)
		a.runErr = err
	}()
	if a.cfg.MasterURL != "" {
		go a.heartbeatLoop(ctx)
	}
	a.logf("agent %s: serving on %s (master %q)", a.cfg.Name, a.URL(), a.cfg.MasterURL)
	return nil
}

// Wait blocks until the fleet's serving loop ends (Close, or context
// cancellation) and returns its error.
func (a *Agent) Wait() error {
	<-a.done
	return a.runErr
}

// Close drains gracefully: the fleet stops accepting work and its Run
// returns once live sessions finish, then the HTTP server stops.
func (a *Agent) Close() {
	a.fleet.Close()
	<-a.done
	if a.srv != nil {
		a.srv.Close()
	}
}

func (a *Agent) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

// heartbeat builds one heartbeat message from the agent's live state.
func (a *Agent) heartbeat() Heartbeat {
	a.mu.Lock()
	var wires []*core.SessionWire
	for _, shard := range sortedKeys(a.checkpoints) {
		wires = append(wires, a.checkpoints[shard]...)
	}
	a.mu.Unlock()
	completed, failed, rejected := a.counts.totals()
	hb := Heartbeat{
		Version:     ProtocolVersion,
		Name:        a.cfg.Name,
		URL:         a.URL(),
		Seq:         a.seq.Add(1),
		Loads:       a.fleet.Loads(),
		Checkpoints: wires,
		Completed:   completed,
		Failed:      failed,
		Rejected:    rejected,
	}
	var buf bytes.Buffer
	if err := a.fleet.StoreSnapshot().Save(&buf); err == nil {
		hb.LUTs = buf.Bytes()
	}
	return hb
}

func sortedKeys(m map[int][]*core.SessionWire) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // insertion sort; the map is tiny
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func (a *Agent) heartbeatLoop(ctx context.Context) {
	tick := time.NewTicker(a.cfg.HeartbeatEvery)
	defer tick.Stop()
	url := a.cfg.MasterURL + "/v1/heartbeat"
	for {
		var resp HeartbeatResponse
		if err := a.client.PostJSON(ctx, url, a.heartbeat(), &resp); err != nil {
			if ctx.Err() != nil {
				return
			}
			a.logf("agent %s: heartbeat: %v", a.cfg.Name, err)
		}
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), status)
}

func (a *Agent) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Version: ProtocolVersion, Name: a.cfg.Name})
}

func (a *Agent) handleLoads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, LoadsResponse{Name: a.cfg.Name, Loads: a.fleet.Loads()})
}

func (a *Agent) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode submit: %v", err)
		return
	}
	if req.Version != ProtocolVersion {
		httpError(w, http.StatusBadRequest, "protocol version %d, want %d", req.Version, ProtocolVersion)
		return
	}
	src, err := a.cfg.Binder(req.Source)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bind source: %v", err)
		return
	}
	p, err := a.fleet.SubmitWith(serve.SubmitRequest{
		Source:   src,
		Config:   req.Config,
		Tenant:   req.Tenant,
		Priority: req.Priority,
	})
	if err != nil {
		if errors.Is(err, tenancy.ErrRateLimited) {
			httpError(w, http.StatusTooManyRequests, "submit: %v", err)
			return
		}
		httpError(w, http.StatusServiceUnavailable, "submit: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, SubmitResponse{Shard: p.Shard, Session: p.Session.ID})
}

func (a *Agent) handleImport(w http.ResponseWriter, r *http.Request) {
	var req ImportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode import: %v", err)
		return
	}
	if req.Version != ProtocolVersion {
		httpError(w, http.StatusBadRequest, "protocol version %d, want %d", req.Version, ProtocolVersion)
		return
	}
	if req.Session == nil {
		httpError(w, http.StatusBadRequest, "import without a session")
		return
	}
	// Warm the LUTs first so the adopted session's very first round
	// estimates with the donor's calibration.
	if len(req.LUTs) > 0 {
		st, err := workload.LoadStore(bytes.NewReader(req.LUTs))
		if err != nil {
			httpError(w, http.StatusBadRequest, "decode LUT store: %v", err)
			return
		}
		a.fleet.MergeLUTs(st)
	}
	snap, err := req.Session.Restore(a.cfg.Binder)
	if err != nil {
		httpError(w, http.StatusBadRequest, "restore session: %v", err)
		return
	}
	p, err := a.fleet.Import(snap)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "import: %v", err)
		return
	}
	a.logf("agent %s: imported session %d (%s) at frame %d → shard %d session %d",
		a.cfg.Name, req.Session.DonorID, req.Session.Class, req.Session.Frame, p.Shard, p.Session.ID)
	writeJSON(w, http.StatusOK, ImportResponse{Shard: p.Shard, Session: p.Session.ID})
}

// exportOne destructively exports one session at the shard's next round
// boundary. The handshake: schedule a callback on the serving
// goroutine, wait for it with a timeout — an idle shard settles no
// rounds, so the callback may never fire.
func (a *Agent) exportOne(ctx context.Context, shard, session int) (*core.SessionWire, error) {
	type result struct {
		wire *core.SessionWire
		err  error
	}
	ch := make(chan result, 1)
	err := a.fleet.OnNextRound(shard, func(sh core.Shard) {
		snap, err := sh.ExportSession(session)
		if err != nil {
			ch <- result{nil, err}
			return
		}
		w, err := snap.Wire()
		if err != nil {
			// The session is already off the shard's queue; dead-letter
			// it rather than leave it in limbo (failing an exported
			// record is safe from any goroutine).
			_ = sh.FailSession(session, err)
			ch <- result{nil, err}
			return
		}
		ch <- result{w, nil}
	})
	if err != nil {
		return nil, err
	}
	select {
	case res := <-ch:
		return res.wire, res.err
	case <-time.After(a.cfg.ExportTimeout):
		return nil, fmt.Errorf("dist: export of shard %d session %d timed out (shard idle?)", shard, session)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *Agent) handleExport(w http.ResponseWriter, r *http.Request) {
	var req ExportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode export: %v", err)
		return
	}
	wire, err := a.exportOne(r.Context(), req.Shard, req.Session)
	if err != nil {
		httpError(w, http.StatusConflict, "export: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, ExportResponse{Session: wire})
}

// handleDrain destructively exports every live session, shard by shard,
// and returns their wire states — the graceful hand-back before an
// agent retires. Sessions keep serving until their shard's next round
// boundary; busy shards are drained at that boundary, idle ones have
// nothing to drain.
func (a *Agent) handleDrain(w http.ResponseWriter, r *http.Request) {
	var out []*core.SessionWire
	for shard, load := range a.fleet.Loads() {
		if !load.Alive || load.Sessions == 0 {
			continue
		}
		wires, err := a.drainShard(r.Context(), shard)
		if err != nil {
			httpError(w, http.StatusConflict, "drain shard %d: %v", shard, err)
			return
		}
		out = append(out, wires...)
	}
	writeJSON(w, http.StatusOK, DrainResponse{Sessions: out})
}

// drainShard checkpoints then destructively exports every session of
// one shard at its next round boundary.
func (a *Agent) drainShard(ctx context.Context, shard int) ([]*core.SessionWire, error) {
	type result struct {
		wires []*core.SessionWire
		err   error
	}
	ch := make(chan result, 1)
	err := a.fleet.OnNextRound(shard, func(sh core.Shard) {
		wires, err := sh.CheckpointSessions()
		if err != nil {
			ch <- result{nil, err}
			return
		}
		for _, wire := range wires {
			if _, err := sh.ExportSession(wire.DonorID); err != nil {
				ch <- result{nil, err}
				return
			}
		}
		ch <- result{wires, nil}
	})
	if err != nil {
		return nil, err
	}
	select {
	case res := <-ch:
		return res.wires, res.err
	case <-time.After(a.cfg.ExportTimeout):
		return nil, fmt.Errorf("dist: drain of shard %d timed out (shard idle?)", shard)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
