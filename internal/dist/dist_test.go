package dist

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/medgen"
	"repro/internal/mpsoc"
	"repro/internal/serve"
)

// recorder captures a fleet's telemetry for post-hoc digest stitching.
type recorder struct {
	serve.NopSink
	mu         sync.Mutex
	gops       []serve.GOPEvent
	placements []serve.PlacementEvent
	migrations []serve.MigrationEvent
}

func (r *recorder) OnGOP(e serve.GOPEvent) {
	r.mu.Lock()
	r.gops = append(r.gops, e)
	r.mu.Unlock()
}

func (r *recorder) OnSessionPlaced(e serve.PlacementEvent) {
	r.mu.Lock()
	r.placements = append(r.placements, e)
	r.mu.Unlock()
}

func (r *recorder) OnSessionMigrated(e serve.MigrationEvent) {
	r.mu.Lock()
	r.migrations = append(r.migrations, e)
	r.mu.Unlock()
}

// crossImports counts migrations with the cross-process marker
// (FromShard -1).
func (r *recorder) crossImports() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, m := range r.migrations {
		if m.FromShard == -1 {
			n++
		}
	}
	return n
}

// digestsByClass maps class → GOP index → every digest the fleet
// recorded for it. Session→class comes from placements (submissions)
// and migrations (imports).
func (r *recorder) digestsByClass(into map[string]map[int][]uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	classOf := make(map[[2]int]string)
	for _, p := range r.placements {
		classOf[[2]int{p.Shard, p.Session}] = p.Class
	}
	for _, m := range r.migrations {
		classOf[[2]int{m.ToShard, m.ToSession}] = m.Class
	}
	for _, g := range r.gops {
		class := classOf[[2]int{g.Shard, g.Session}]
		if into[class] == nil {
			into[class] = make(map[int][]uint64)
		}
		into[class][g.GOP.Index] = append(into[class][g.GOP.Index], g.GOP.Digest)
	}
}

func testMedgenConfig(class medgen.Class, motion medgen.MotionKind, frames int) medgen.Config {
	mc := medgen.Default()
	mc.Width, mc.Height = 256, 192
	mc.Class = class
	mc.Motion = motion
	mc.Frames = frames
	mc.Seed = int64(class)*100 + int64(motion) + 1
	return mc
}

func testSessionConfig() core.SessionConfig {
	cfg := core.DefaultSessionConfig()
	cfg.Codec.GOPSize = 4
	cfg.Codec.IntraPeriod = 8
	cfg.Retile.MinTileW, cfg.Retile.MinTileH = 48, 48
	return cfg
}

// soloDigests serves one session on an unmigrated single-process server
// — the digest chain every distributed continuation must reproduce.
func soloDigests(t *testing.T, mc medgen.Config) []uint64 {
	t.Helper()
	srv, err := core.NewServer(core.ServerConfig{Platform: mpsoc.XeonE5_2667V4(), FPS: 24})
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewMedgenSource(mc, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(src, testSessionConfig()); err != nil {
		t.Fatal(err)
	}
	outs, err := srv.ServeAll(64)
	if err != nil {
		t.Fatal(err)
	}
	var digests []uint64
	for _, out := range outs {
		if gop := out.GOPs[0]; gop != nil {
			digests = append(digests, gop.Digest)
		}
	}
	return digests
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// eventLog collects master events thread-safely.
type eventLog struct {
	mu     sync.Mutex
	events []Event
}

func (l *eventLog) add(e Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

func (l *eventLog) count(kind string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.events {
		if e.Event == kind {
			n++
		}
	}
	return n
}

func (l *eventLog) find(kind string) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, e := range l.events {
		if e.Event == kind {
			out = append(out, e)
		}
	}
	return out
}

// TestMasterFailoverBitIdentical is the distributed acceptance
// scenario (ISSUE 8): a master routes sessions to two agent processes,
// one agent is killed mid-stream, the master detects the missed
// heartbeats and re-imports the victim's checkpointed sessions into the
// survivor — and every session's stitched digest chain (victim prefix +
// survivor continuation) equals the unmigrated single-process run, with
// no GOP lost. The same bar as serve's TestFleetElasticChurn, across a
// process boundary.
func TestMasterFailoverBitIdentical(t *testing.T) {
	// Long enough streams that the kill provably lands mid-stream: the
	// master's checkpoint view lags reality by a heartbeat period, so a
	// too-short session can complete in the gap between victim selection
	// and the cancel landing, leaving nothing to fail over.
	const frames = 64 // 16 GOPs per session at GOPSize 4
	specs := []medgen.Config{
		testMedgenConfig(medgen.Brain, medgen.Rotate, frames),
		testMedgenConfig(medgen.Chest, medgen.Pan, frames),
		testMedgenConfig(medgen.Bone, medgen.Sweep, frames),
		testMedgenConfig(medgen.SpinalCord, medgen.Still, frames),
	}
	want := make(map[string][]uint64, len(specs))
	for _, mc := range specs {
		want[mc.Class.String()] = soloDigests(t, mc)
	}

	events := &eventLog{}
	// Generous margins: under -race the agents' serving goroutines can
	// starve the heartbeat loop for hundreds of milliseconds, and a
	// false-positive death would flap the registry.
	master, err := NewMaster(MasterConfig{
		Addr:             "127.0.0.1:0",
		HeartbeatTimeout: 1500 * time.Millisecond,
		CheckEvery:       100 * time.Millisecond,
		OnEvent:          events.add,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	mctx, mcancel := context.WithCancel(context.Background())
	defer mcancel()
	if err := master.Start(mctx); err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	type node struct {
		agent  *Agent
		rec    *recorder
		cancel context.CancelFunc
	}
	newNode := func(name string) *node {
		rec := &recorder{}
		ag, err := NewAgent(AgentConfig{
			Name:            name,
			Addr:            "127.0.0.1:0",
			MasterURL:       master.URL(),
			HeartbeatEvery:  40 * time.Millisecond,
			CheckpointEvery: 1,
			Sink:            rec,
		}, serve.WithShards(1),
			// Pace each shard round so the 16-GOP streams span real wall
			// clock. Unpaced, a scheduler-friendly run serves all 64
			// frames inside one 40ms heartbeat period and the master
			// never caches a mid-stream checkpoint — victim selection
			// below would spin until its deadline.
			serve.WithRoundHook(func(int, *core.GOPOutcome) {
				time.Sleep(30 * time.Millisecond)
			}))
		if err != nil {
			t.Fatal(err)
		}
		actx, acancel := context.WithCancel(context.Background())
		if err := ag.Start(actx); err != nil {
			acancel()
			t.Fatal(err)
		}
		return &node{agent: ag, rec: rec, cancel: acancel}
	}
	nodes := map[string]*node{"agent-a": newNode("agent-a"), "agent-b": newNode("agent-b")}
	defer func() {
		for _, n := range nodes {
			n.cancel()
		}
	}()

	client := DefaultClient()
	ctx := context.Background()
	stats := func() StatsResponse {
		var s StatsResponse
		if err := client.GetJSON(ctx, master.URL()+"/v1/stats", &s); err != nil {
			t.Logf("stats: %v", err)
		}
		return s
	}
	waitUntil(t, 10*time.Second, "both agents to register", func() bool { return stats().Live == 2 })

	// Submit everything through the master's front door.
	sessionsOn := make(map[string]int)
	for _, mc := range specs {
		src, err := NewMedgenSource(mc, "")
		if err != nil {
			t.Fatal(err)
		}
		spec, err := src.Spec()
		if err != nil {
			t.Fatal(err)
		}
		var resp RoutedSubmitResponse
		req := SubmitRequest{Version: ProtocolVersion, Source: spec, Config: testSessionConfig()}
		if err := client.PostJSON(ctx, master.URL()+"/v1/submit", req, &resp); err != nil {
			t.Fatalf("submit %s: %v", mc.Class, err)
		}
		if _, ok := nodes[resp.Agent]; !ok {
			t.Fatalf("submission routed to unknown agent %q", resp.Agent)
		}
		sessionsOn[resp.Agent]++
		t.Logf("submitted %s → %s shard %d session %d", mc.Class, resp.Agent, resp.Shard, resp.Session)
	}

	// Pick the victim: the agent the ring loaded the most — the richer
	// failover path (several re-imports plus the warm LUT handoff), and
	// one fixed mode instead of a race-dependent coin flip. Don't kill
	// it until the master's checkpoint cache covers EVERY session routed
	// to it with a mid-stream frame: a kill landing before a session's
	// first checkpointed heartbeat would (by design) lose that session,
	// and a kill after one ends would have nothing left to resume.
	var victim string
	for name, n := range sessionsOn {
		if victim == "" || n > sessionsOn[victim] {
			victim = name
		}
	}
	if sessionsOn[victim] < 2 {
		t.Fatalf("ring spread sessions %v — expected one agent to carry at least 2", sessionsOn)
	}
	waitUntil(t, 60*time.Second, "the victim's sessions to be checkpointed mid-stream", func() bool {
		var agents AgentsResponse
		if err := client.GetJSON(ctx, master.URL()+"/v1/agents", &agents); err != nil {
			return false
		}
		for _, a := range agents.Agents {
			if a.Name != victim {
				continue
			}
			if len(a.Checkpoints) != sessionsOn[victim] {
				return false
			}
			for _, ck := range a.Checkpoints {
				// Early-to-mid stream, so plenty of GOPs remain to serve
				// on the survivor even after the heartbeat-lagged kill
				// lands.
				if ck.Frame < 4 || ck.Frame > frames/2 {
					return false
				}
			}
			return true
		}
		return false
	})

	// Kill it: context cancellation tears down its fleet, HTTP server and
	// heartbeat loop mid-flight — no drain, no goodbye.
	t.Logf("killing %s", victim)
	nodes[victim].cancel()

	// The master must declare it dead and re-import its sessions; the
	// whole corpus must then complete on the survivors. Completed can
	// exceed the submission count when the victim finished a GOP after
	// its last heartbeat (the survivor re-serves from the older
	// checkpoint) — duplicates are tolerated, losses are not.
	deadline := time.Now().Add(120 * time.Second)
	for {
		s := stats()
		if s.Reimported >= 1 && s.Completed >= len(specs) {
			break
		}
		if time.Now().After(deadline) {
			var agents AgentsResponse
			_ = client.GetJSON(ctx, master.URL()+"/v1/agents", &agents)
			t.Fatalf("timed out waiting for failover completion: stats %+v agents %+v", s, agents)
		}
		time.Sleep(20 * time.Millisecond)
	}

	if n := events.count("agent_dead"); n != 1 {
		t.Fatalf("%d agent_dead events, want 1 (%+v)", n, events.find("agent_dead"))
	}
	if got := events.find("agent_dead")[0].Agent; got != victim {
		t.Fatalf("agent_dead names %q, victim was %q", got, victim)
	}
	reimports := events.find("session_reimported")
	if len(reimports) == 0 {
		t.Fatal("no session_reimported events — the failover never moved a session")
	}
	midStream := 0
	for _, e := range reimports {
		if e.Agent != victim {
			t.Fatalf("re-import sourced from %q, victim was %q", e.Agent, victim)
		}
		// A frame-0 re-import is a session the victim had admitted but
		// never served a GOP of — restarting it loses nothing. At least
		// one re-import must be a genuine mid-stream resume, though:
		// that is the wire format earning its keep.
		if e.Frame >= 4 {
			midStream++
		} else {
			t.Logf("session %d re-imported at frame %d (victim never served it — clean restart)", e.Session, e.Frame)
		}
	}
	if midStream == 0 {
		t.Fatalf("all %d re-imports were at frame < 4 — no mid-stream resume demonstrated", len(reimports))
	}
	if n := events.count("session_lost"); n != 0 {
		t.Fatalf("%d sessions lost: %+v", n, events.find("session_lost"))
	}

	// The survivors must have adopted them with the cross-process marker.
	crossImports := 0
	for name, n := range nodes {
		if name != victim {
			crossImports += n.rec.crossImports()
		}
	}
	if crossImports != len(reimports) {
		t.Fatalf("%d cross-process imports on survivors, master journaled %d", crossImports, len(reimports))
	}

	// Bit-identity: every class's digests — victim prefix, survivor
	// continuation, duplicates included — must match the unmigrated solo
	// run GOP-for-GOP, and no GOP index may be missing.
	perClass := make(map[string]map[int][]uint64)
	for _, n := range nodes {
		n.rec.digestsByClass(perClass)
	}
	for class, wantChain := range want {
		seen := perClass[class]
		if seen == nil {
			t.Fatalf("class %s: no GOPs recorded anywhere", class)
		}
		for idx, wantDigest := range wantChain {
			digests := seen[idx]
			if len(digests) == 0 {
				t.Fatalf("class %s: GOP %d lost (served nowhere)", class, idx)
			}
			for _, d := range digests {
				if d != wantDigest {
					t.Fatalf("class %s GOP %d: digest %016x, solo run %016x", class, idx, d, wantDigest)
				}
			}
		}
		total := 0
		for idx, digests := range seen {
			if idx >= len(wantChain) {
				t.Fatalf("class %s: spurious GOP index %d beyond the solo run", class, idx)
			}
			total += len(digests)
		}
		if total > len(wantChain) {
			t.Logf("class %s: %d duplicate GOP(s) from the checkpoint/kill window (tolerated)", class, total-len(wantChain))
		}
	}
}

// TestMasterRoutesByRingWithFallback: the master's routing is keyed by
// agent NAME on the shared ring — the home agent gets the class, and
// with the home gone the submission falls through to a survivor.
func TestMasterRoutesByRing(t *testing.T) {
	events := &eventLog{}
	master, err := NewMaster(MasterConfig{
		Addr:             "127.0.0.1:0",
		HeartbeatTimeout: 1500 * time.Millisecond,
		CheckEvery:       100 * time.Millisecond,
		OnEvent:          events.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	mctx, mcancel := context.WithCancel(context.Background())
	defer mcancel()
	if err := master.Start(mctx); err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	names := []string{"node-1", "node-2", "node-3"}
	cancels := make(map[string]context.CancelFunc)
	for _, name := range names {
		ag, err := NewAgent(AgentConfig{
			Name:           name,
			Addr:           "127.0.0.1:0",
			MasterURL:      master.URL(),
			HeartbeatEvery: 40 * time.Millisecond,
		}, serve.WithShards(1))
		if err != nil {
			t.Fatal(err)
		}
		actx, acancel := context.WithCancel(context.Background())
		if err := ag.Start(actx); err != nil {
			t.Fatal(err)
		}
		cancels[name] = acancel
	}
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	client := DefaultClient()
	ctx := context.Background()
	waitUntil(t, 10*time.Second, "agents to register", func() bool {
		var s StatsResponse
		_ = client.GetJSON(ctx, master.URL()+"/v1/stats", &s)
		return s.Live == len(names)
	})

	// The expected home is pure ring math over the names — independent
	// of registration order (the serve.Ring order-independence tests pin
	// that property; here we pin that the master actually uses it).
	ring := serve.NewRing(names, serve.RingReplicas)
	const class = "brain"
	home := ring.MemberFor(class)

	submit := func() RoutedSubmitResponse {
		t.Helper()
		mc := testMedgenConfig(medgen.Brain, medgen.Still, 4)
		src, err := NewMedgenSource(mc, "")
		if err != nil {
			t.Fatal(err)
		}
		spec, err := src.Spec()
		if err != nil {
			t.Fatal(err)
		}
		var resp RoutedSubmitResponse
		req := SubmitRequest{Version: ProtocolVersion, Source: spec, Config: testSessionConfig()}
		if err := client.PostJSON(ctx, master.URL()+"/v1/submit", req, &resp); err != nil {
			t.Fatalf("submit: %v", err)
		}
		return resp
	}

	if got := submit(); got.Agent != home {
		t.Fatalf("class %q routed to %q, ring home is %q", class, got.Agent, home)
	}

	// Kill the home agent; once the master declares it dead the same
	// class must route to a survivor instead of erroring.
	cancels[home]()
	waitUntil(t, 10*time.Second, "home agent to be declared dead", func() bool {
		return events.count("agent_dead") > 0
	})
	if got := submit(); got.Agent == home {
		t.Fatalf("dead home %q still receiving submissions", home)
	}
}

// TestAgentExportImportRoundTrip drives the agent-level live-migration
// handshake over real HTTP: a session checkpointed mid-stream on one
// agent is destructively exported at a GOP boundary and imported into a
// second agent, which finishes it with the digest chain of the
// unmigrated run.
func TestAgentExportImportRoundTrip(t *testing.T) {
	mc := testMedgenConfig(medgen.Brain, medgen.Rotate, 16)
	want := soloDigests(t, mc)

	newStandalone := func(name string) (*Agent, *recorder, context.CancelFunc) {
		rec := &recorder{}
		ag, err := NewAgent(AgentConfig{
			Name:            name,
			Addr:            "127.0.0.1:0",
			CheckpointEvery: 1,
			ExportTimeout:   30 * time.Second,
			Sink:            rec,
		}, serve.WithShards(1),
			// Paced like the failover test: unpaced, the donor can burn
			// through all 16 frames before the export request lands and
			// there is nothing mid-stream left to export.
			serve.WithRoundHook(func(int, *core.GOPOutcome) {
				time.Sleep(30 * time.Millisecond)
			}))
		if err != nil {
			t.Fatal(err)
		}
		actx, acancel := context.WithCancel(context.Background())
		if err := ag.Start(actx); err != nil {
			t.Fatal(err)
		}
		return ag, rec, acancel
	}
	donor, donorRec, cancelDonor := newStandalone("donor")
	defer cancelDonor()
	target, targetRec, cancelTarget := newStandalone("target")
	defer cancelTarget()

	client := DefaultClient()
	ctx := context.Background()

	src, err := NewMedgenSource(mc, "")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := src.Spec()
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	req := SubmitRequest{Version: ProtocolVersion, Source: spec, Config: testSessionConfig()}
	if err := client.PostJSON(ctx, donor.URL()+"/v1/submit", req, &sub); err != nil {
		t.Fatal(err)
	}

	// Let it get past the first GOP boundary, then export mid-stream.
	waitUntil(t, 60*time.Second, "the donor to serve a GOP", func() bool {
		donorRec.mu.Lock()
		defer donorRec.mu.Unlock()
		return len(donorRec.gops) >= 1
	})
	var exp ExportResponse
	if err := client.PostJSON(ctx, donor.URL()+"/v1/export",
		ExportRequest{Shard: sub.Shard, Session: sub.Session}, &exp); err != nil {
		t.Fatalf("export: %v", err)
	}
	if exp.Session == nil || exp.Session.Frame == 0 {
		t.Fatalf("export returned %+v — not a mid-stream checkpoint", exp.Session)
	}

	var imp ImportResponse
	if err := client.PostJSON(ctx, target.URL()+"/v1/import",
		ImportRequest{Version: ProtocolVersion, Session: exp.Session}, &imp); err != nil {
		t.Fatalf("import: %v", err)
	}
	waitUntil(t, 120*time.Second, "the imported session to finish", func() bool {
		var loads LoadsResponse
		if err := client.GetJSON(ctx, target.URL()+"/v1/loads", &loads); err != nil {
			return false
		}
		for _, l := range loads.Loads {
			if l.Sessions > 0 {
				return false
			}
		}
		return targetRec.crossImports() == 1
	})

	perClass := make(map[string]map[int][]uint64)
	donorRec.digestsByClass(perClass)
	targetRec.digestsByClass(perClass)
	seen := perClass[mc.Class.String()]
	var got []uint64
	for idx := range want {
		digests := seen[idx]
		if len(digests) != 1 {
			t.Fatalf("GOP %d served %d times across the handoff, want exactly 1", idx, len(digests))
		}
		got = append(got, digests[0])
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("stitched digests %v, solo run %v", got, want)
	}
}
