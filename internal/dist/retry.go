package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"
)

// ErrPermanent marks a remote failure that retrying cannot fix — the
// peer understood the request and refused it (a non-429 4xx status).
// Callers branch with errors.Is: a permanent error means drop or
// dead-letter the work, while any other Client error means the peer was
// unreachable or transiently failing and the work is still pending.
var ErrPermanent = errors.New("dist: permanent remote failure")

// RetryConfig shapes the Client's backoff. The zero value selects the
// defaults noted per field.
type RetryConfig struct {
	// MaxAttempts bounds how often one call is tried (first attempt
	// included). Default 4.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt doubles it up to MaxDelay. Default 50ms, capped at 2s.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth. Default 2s.
	MaxDelay time.Duration
	// Timeout bounds each individual attempt (connect + response).
	// Default 5s.
	Timeout time.Duration

	// jitter returns a uniform [0,1) sample and sleep pauses between
	// attempts — injectable so the backoff schedule is testable without
	// wall-clock sleeps. nil selects math/rand and time.Sleep.
	jitter func() float64
	sleep  func(time.Duration)
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 50 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.jitter == nil {
		c.jitter = rand.Float64
	}
	if c.sleep == nil {
		c.sleep = time.Sleep
	}
	return c
}

// Client is the one road from a master to an agent (and back, for
// heartbeats): JSON over HTTP with jittered exponential backoff and a
// per-attempt timeout. Network errors, 5xx and 429 responses are
// retried up to MaxAttempts; other 4xx responses fail immediately with
// ErrPermanent. Safe for concurrent use.
type Client struct {
	cfg  RetryConfig
	http *http.Client
}

// NewClient builds a retrying JSON client.
func NewClient(cfg RetryConfig) *Client {
	return &Client{cfg: cfg.withDefaults(), http: &http.Client{}}
}

// DefaultClient returns a client with the default retry schedule.
func DefaultClient() *Client { return NewClient(RetryConfig{}) }

// PostJSON POSTs in as JSON and decodes the 2xx response body into out
// (out may be nil to discard it).
func (c *Client) PostJSON(ctx context.Context, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("dist: encode request: %w", err)
	}
	return c.do(ctx, http.MethodPost, url, body, out)
}

// GetJSON GETs url and decodes the 2xx response body into out.
func (c *Client) GetJSON(ctx context.Context, url string, out any) error {
	return c.do(ctx, http.MethodGet, url, nil, out)
}

// retryableStatus reports whether an HTTP status is worth another
// attempt: server-side failures and throttling are, client errors are
// not.
func retryableStatus(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests
}

func (c *Client) do(ctx context.Context, method, url string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			// Exponential backoff with full jitter in [0.5, 1.5)× the
			// nominal delay, so a fleet of retriers never thunders in
			// phase.
			delay := c.cfg.BaseDelay << (attempt - 1)
			if delay > c.cfg.MaxDelay {
				delay = c.cfg.MaxDelay
			}
			delay = time.Duration(float64(delay) * (0.5 + c.cfg.jitter()))
			c.cfg.sleep(delay)
			if ctx.Err() != nil {
				return fmt.Errorf("dist: %s %s: %w", method, url, ctx.Err())
			}
		}
		err := c.attempt(ctx, method, url, body, out)
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrPermanent) || ctx.Err() != nil {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("dist: %s %s failed after %d attempts: %w",
		method, url, c.cfg.MaxAttempts, lastErr)
}

// attempt runs one bounded call.
func (c *Client) attempt(ctx context.Context, method, url string, body []byte, out any) error {
	actx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, url, rd)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrPermanent, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err // network-level: retryable
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("%s %s: status %d: %s", method, url, resp.StatusCode, bytes.TrimSpace(msg))
		if retryableStatus(resp.StatusCode) {
			return err
		}
		return fmt.Errorf("%w: %v", ErrPermanent, err)
	}
	if out == nil {
		_, err := io.Copy(io.Discard, resp.Body)
		return err
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decode %s %s response: %w", method, url, err)
	}
	return nil
}
