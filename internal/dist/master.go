package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/tenancy"
)

// Event is one line of the master's operational journal, delivered to
// MasterConfig.OnEvent (and serialized to JSONL by cmd/transcode).
type Event struct {
	// Kind: "agent_joined", "agent_rejoined", "agent_dead",
	// "submit_routed", "submit_rate_limited", "session_reimported",
	// "session_lost".
	Event string `json:"event"`
	// Agent is the subject node (the donor on failover events).
	Agent string `json:"agent,omitempty"`
	// Tenant is the billing tenant of a routed or refused submission
	// ("" = the default tenant, omitted).
	Tenant string `json:"tenant,omitempty"`
	// To is the receiving node of a routed or re-imported session.
	To      string `json:"to,omitempty"`
	Class   string `json:"class,omitempty"`
	Session int    `json:"session,omitempty"`
	Frame   int    `json:"frame,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// MasterConfig configures the routing/supervision node.
type MasterConfig struct {
	// Addr is the HTTP listen address.
	Addr string
	// HeartbeatTimeout is how long an agent may stay silent before it is
	// declared dead and failed over. Default 5s.
	HeartbeatTimeout time.Duration
	// CheckEvery paces the supervision loop. Default HeartbeatTimeout/4.
	CheckEvery time.Duration
	// Client carries every master→agent call (nil = DefaultClient). All
	// routing and failover traffic goes through its retry schedule.
	Client *Client
	// Tenancy is the fleet-wide tenant registry (optional). When set,
	// the master charges each routed submission to its tenant's token
	// bucket — the one place a cross-process fleet can enforce a global
	// per-tenant rate — and answers over-rate submissions with HTTP 429.
	// Agents keep their own registry for weights and priorities, with
	// the rates stripped (tenancy.Config.WithoutRates), so a routed
	// submission is charged exactly once.
	Tenancy *tenancy.Registry
	// OnEvent receives the operational journal (optional). Called from
	// master goroutines, serialized by an internal lock.
	OnEvent func(Event)
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
}

// agentState is one registry row.
type agentState struct {
	name        string
	url         string
	seq         int64
	lastBeat    time.Time
	dead        bool
	loads       []core.LoadReport
	checkpoints []*core.SessionWire
	luts        json.RawMessage
	completed   int
	failed      int
	rejected    int
}

// util is the node-wide demand-normalized utilization — the same load
// signal the in-process dispatcher routes by, summed over the agent's
// shards.
func (a *agentState) util() float64 {
	demand, capacity := 0, 0
	for _, r := range a.loads {
		if !r.Alive {
			continue
		}
		demand += r.DemandCores
		capacity += r.CapacityCores
	}
	if capacity == 0 {
		return 0
	}
	return float64(demand) / float64(capacity)
}

// Master is the fleet's cross-process dispatcher and supervisor: agents
// register through heartbeats, submissions route over the consistent
// hash of the workload class across agent names (least-loaded fallback),
// and a dead agent's checkpointed sessions are re-imported into the
// survivors.
type Master struct {
	cfg    MasterConfig
	client *Client

	mu         sync.Mutex
	agents     map[string]*agentState
	ring       *serve.Ring
	reimported int
	lost       int

	eventMu sync.Mutex

	ln      net.Listener
	srv     *http.Server
	started bool
	done    chan struct{}
}

// NewMaster builds a master.
func NewMaster(cfg MasterConfig) (*Master, error) {
	if cfg.Addr == "" {
		return nil, errors.New("dist: master needs a listen address")
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 5 * time.Second
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = cfg.HeartbeatTimeout / 4
	}
	if cfg.Client == nil {
		cfg.Client = DefaultClient()
	}
	return &Master{
		cfg:    cfg,
		client: cfg.Client,
		agents: make(map[string]*agentState),
		ring:   serve.NewRing(nil, serve.RingReplicas),
		done:   make(chan struct{}),
	}, nil
}

// URL is the master's base URL (valid after Start).
func (m *Master) URL() string {
	if m.ln == nil {
		return ""
	}
	return "http://" + m.ln.Addr().String()
}

// Start binds the listener and launches the HTTP server and the
// supervision loop; both stop when ctx is cancelled.
func (m *Master) Start(ctx context.Context) error {
	if m.started {
		return errors.New("dist: master already started")
	}
	m.started = true
	ln, err := net.Listen("tcp", m.cfg.Addr)
	if err != nil {
		return fmt.Errorf("dist: master listener: %w", err)
	}
	m.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", m.handleHealth)
	mux.HandleFunc("POST /v1/heartbeat", m.handleHeartbeat)
	mux.HandleFunc("POST /v1/submit", m.handleSubmit)
	mux.HandleFunc("GET /v1/agents", m.handleAgents)
	mux.HandleFunc("GET /v1/stats", m.handleStats)
	m.srv = &http.Server{Handler: mux}
	go func() {
		if err := m.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			m.logf("master: http: %v", err)
		}
	}()
	go func() {
		<-ctx.Done()
		m.srv.Close()
	}()
	go m.superviseLoop(ctx)
	m.logf("master: serving on %s", m.URL())
	return nil
}

// Close stops the HTTP server and the supervision loop.
func (m *Master) Close() {
	if m.srv != nil {
		m.srv.Close()
	}
	select {
	case <-m.done:
	default:
		close(m.done)
	}
}

func (m *Master) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

func (m *Master) emit(e Event) {
	if m.cfg.OnEvent == nil {
		return
	}
	m.eventMu.Lock()
	defer m.eventMu.Unlock()
	m.cfg.OnEvent(e)
}

// rebuildRingLocked rebuilds the routing ring over the live agent
// names. Caller holds m.mu.
func (m *Master) rebuildRingLocked() {
	var names []string
	for name, a := range m.agents {
		if !a.dead {
			names = append(names, name)
		}
	}
	m.ring = serve.NewRing(names, serve.RingReplicas)
}

// candidate is an immutable routing target — name and URL copied out of
// the registry under the lock, so callers can dial without racing the
// heartbeat writes that keep agentState fresh.
type candidate struct {
	name string
	url  string
}

// candidatesFor orders the live agents for a class: its consistent-hash
// home first — registration order must not matter, only the name-keyed
// ring — then the rest by ascending utilization, name-tiebroken.
func (m *Master) candidatesFor(class string) []candidate {
	m.mu.Lock()
	defer m.mu.Unlock()
	home := m.ring.MemberFor(class)
	type scored struct {
		candidate
		util float64
	}
	var rest []scored
	var first *candidate
	for name, a := range m.agents {
		if a.dead {
			continue
		}
		c := candidate{name: a.name, url: a.url}
		if name == home {
			first = &c
			continue
		}
		rest = append(rest, scored{candidate: c, util: a.util()})
	}
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].util != rest[j].util {
			return rest[i].util < rest[j].util
		}
		return rest[i].name < rest[j].name
	})
	out := make([]candidate, 0, len(rest)+1)
	if first != nil {
		out = append(out, *first)
	}
	for _, s := range rest {
		out = append(out, s.candidate)
	}
	return out
}

// --- supervision & failover ---

func (m *Master) superviseLoop(ctx context.Context) {
	tick := time.NewTicker(m.cfg.CheckEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-m.done:
			return
		case <-tick.C:
			m.checkOnce(ctx, time.Now())
		}
	}
}

// deadSnapshot is everything failover needs from a declared-dead agent,
// copied out of the registry under the lock: a rejoin heartbeat racing
// the failover must not mutate what is being re-imported.
type deadSnapshot struct {
	name        string
	checkpoints []*core.SessionWire
	luts        json.RawMessage
}

// checkOnce sweeps the registry for agents past the heartbeat deadline
// and fails over their cached sessions.
func (m *Master) checkOnce(ctx context.Context, now time.Time) {
	m.mu.Lock()
	var died []deadSnapshot
	for _, a := range m.agents {
		if !a.dead && now.Sub(a.lastBeat) > m.cfg.HeartbeatTimeout {
			a.dead = true
			died = append(died, deadSnapshot{name: a.name, checkpoints: a.checkpoints, luts: a.luts})
		}
	}
	if len(died) > 0 {
		m.rebuildRingLocked()
	}
	m.mu.Unlock()
	for _, d := range died {
		m.logf("master: agent %s missed its heartbeat deadline (%d checkpointed sessions to fail over)",
			d.name, len(d.checkpoints))
		m.emit(Event{Event: "agent_dead", Agent: d.name, Detail: fmt.Sprintf("%d sessions to re-import", len(d.checkpoints))})
		m.failover(ctx, d)
	}
}

// failover re-imports a dead agent's checkpointed sessions into the
// survivors: each session goes to its class's ring home (least-loaded
// fallback, next candidate on error), resuming from its last exported
// GOP-boundary snapshot. The donor's LUT store rides along on the first
// import each survivor receives, so estimation stays warm without
// re-shipping the store per session. A session no live agent accepts is
// lost — counted and journaled, never silently dropped.
func (m *Master) failover(ctx context.Context, dead deadSnapshot) {
	shipped := make(map[string]bool)
	for _, wire := range dead.checkpoints {
		placed := false
		for _, target := range m.candidatesFor(wire.Class) {
			req := ImportRequest{Version: ProtocolVersion, Session: wire}
			if !shipped[target.name] {
				req.LUTs = dead.luts
			}
			var resp ImportResponse
			if err := m.client.PostJSON(ctx, target.url+"/v1/import", req, &resp); err != nil {
				m.logf("master: re-import of session %d (%s) into %s: %v",
					wire.DonorID, wire.Class, target.name, err)
				continue
			}
			shipped[target.name] = true
			m.mu.Lock()
			m.reimported++
			m.mu.Unlock()
			m.emit(Event{
				Event: "session_reimported", Agent: dead.name, To: target.name,
				Class: wire.Class, Session: wire.DonorID, Frame: wire.Frame,
			})
			m.logf("master: session %d (%s) re-imported %s → %s at frame %d",
				wire.DonorID, wire.Class, dead.name, target.name, wire.Frame)
			placed = true
			break
		}
		if !placed {
			m.mu.Lock()
			m.lost++
			m.mu.Unlock()
			m.emit(Event{
				Event: "session_lost", Agent: dead.name,
				Class: wire.Class, Session: wire.DonorID, Frame: wire.Frame,
			})
		}
	}
}

// --- HTTP handlers ---

func (m *Master) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Version: ProtocolVersion, Name: "master"})
}

func (m *Master) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb Heartbeat
	if err := json.NewDecoder(r.Body).Decode(&hb); err != nil {
		httpError(w, http.StatusBadRequest, "decode heartbeat: %v", err)
		return
	}
	if hb.Version != ProtocolVersion {
		httpError(w, http.StatusBadRequest, "protocol version %d, want %d", hb.Version, ProtocolVersion)
		return
	}
	if hb.Name == "" || hb.URL == "" {
		httpError(w, http.StatusBadRequest, "heartbeat without name/url")
		return
	}
	var joined, rejoined bool
	m.mu.Lock()
	a, ok := m.agents[hb.Name]
	if !ok {
		a = &agentState{name: hb.Name}
		m.agents[hb.Name] = a
		joined = true
	}
	if hb.Seq < a.seq {
		// Stale delivery (retries can reorder) — acknowledge, change nothing.
		m.mu.Unlock()
		writeJSON(w, http.StatusOK, HeartbeatResponse{OK: true})
		return
	}
	if a.dead {
		// A declared-dead agent beating again rejoins the ring. Its
		// sessions were already re-imported elsewhere; the duplicates
		// serve to completion on both nodes (idempotent outputs), which
		// supervision accepts rather than trying to kill remotely.
		a.dead = false
		rejoined = true
	}
	a.url = hb.URL
	a.seq = hb.Seq
	a.lastBeat = time.Now()
	a.loads = hb.Loads
	a.checkpoints = hb.Checkpoints
	if len(hb.LUTs) > 0 {
		a.luts = hb.LUTs
	}
	a.completed, a.failed, a.rejected = hb.Completed, hb.Failed, hb.Rejected
	if joined || rejoined {
		m.rebuildRingLocked()
	}
	m.mu.Unlock()
	if joined {
		m.logf("master: agent %s joined from %s", hb.Name, hb.URL)
		m.emit(Event{Event: "agent_joined", Agent: hb.Name, Detail: hb.URL})
	} else if rejoined {
		m.logf("master: agent %s rejoined from %s", hb.Name, hb.URL)
		m.emit(Event{Event: "agent_rejoined", Agent: hb.Name, Detail: hb.URL})
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{OK: true})
}

func (m *Master) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode submit: %v", err)
		return
	}
	if req.Version != ProtocolVersion {
		httpError(w, http.StatusBadRequest, "protocol version %d, want %d", req.Version, ProtocolVersion)
		return
	}
	if m.cfg.Tenancy != nil {
		if err := m.cfg.Tenancy.Admit(req.Tenant); err != nil {
			m.emit(Event{Event: "submit_rate_limited", Tenant: req.Tenant, Class: req.Source.Class})
			httpError(w, http.StatusTooManyRequests, "route submit: %v", err)
			return
		}
	}
	var lastErr error
	for _, target := range m.candidatesFor(req.Source.Class) {
		var resp SubmitResponse
		if err := m.client.PostJSON(r.Context(), target.url+"/v1/submit", req, &resp); err != nil {
			lastErr = err
			continue
		}
		m.emit(Event{Event: "submit_routed", To: target.name, Tenant: req.Tenant, Class: req.Source.Class, Session: resp.Session})
		writeJSON(w, http.StatusOK, RoutedSubmitResponse{Agent: target.name, Shard: resp.Shard, Session: resp.Session})
		return
	}
	if lastErr == nil {
		lastErr = errors.New("no live agents")
	}
	httpError(w, http.StatusServiceUnavailable, "route submit: %v", lastErr)
}

func (m *Master) handleAgents(w http.ResponseWriter, r *http.Request) {
	m.mu.Lock()
	var out AgentsResponse
	for _, name := range m.sortedNamesLocked() {
		a := m.agents[name]
		row := AgentStatus{
			Name: a.name, URL: a.url, Alive: !a.dead, Seq: a.seq,
			Loads:     a.loads,
			Completed: a.completed, Failed: a.failed, Rejected: a.rejected,
		}
		for _, wire := range a.checkpoints {
			row.Checkpoints = append(row.Checkpoints, CheckpointInfo{
				Class: wire.Class, Session: wire.DonorID, Frame: wire.Frame,
			})
		}
		out.Agents = append(out.Agents, row)
	}
	m.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (m *Master) sortedNamesLocked() []string {
	names := make([]string, 0, len(m.agents))
	for name := range m.agents {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// handleStats aggregates the fleet's session counters: live agents
// report theirs in heartbeats; dead agents' last-reported counters stay
// in the sum (their completed work happened). Sessions that completed
// on a victim after its last heartbeat re-run on a survivor from their
// last checkpoint, so Completed can exceed the submission count by the
// duplicates — never undercount.
func (m *Master) handleStats(w http.ResponseWriter, r *http.Request) {
	m.mu.Lock()
	var out StatsResponse
	out.Reimported = m.reimported
	out.Lost = m.lost
	for _, a := range m.agents {
		out.Agents++
		if !a.dead {
			out.Live++
		}
		out.Completed += a.completed
		out.Failed += a.failed
		out.Rejected += a.rejected
	}
	m.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}
