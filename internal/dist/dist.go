// Package dist is the cross-process front door of the fleet: a master
// process routes submissions over HTTP/JSON to agent processes, each
// wrapping one local serve.Fleet, and supervises them — an agent that
// stops heartbeating is declared dead and its sessions are re-imported
// into the survivors from the wire checkpoints it shipped while alive
// (core.SessionWire), resuming bit-identically at their last GOP
// boundary with the donor's workload LUTs warm (DESIGN.md §13).
//
// The package splits into four pieces:
//
//   - wire.go: the versioned HTTP/JSON message types, plus the "medgen"
//     source spec that lets a synthetic session be re-opened in another
//     process (core.SourceSpec / core.SourceBinder).
//   - retry.go: the Client every master→agent call goes through —
//     jittered exponential backoff with per-call timeouts, transient
//     failures (network errors, 5xx, 429) retried, permanent ones
//     (other 4xx) surfaced immediately as ErrPermanent.
//   - agent.go: the Agent — serve.Fleet behind an HTTP API (submit,
//     loads, import, export, drain, health) with a heartbeat loop
//     shipping loads, session checkpoints and LUT snapshots to the
//     master.
//   - master.go: the Master — agent registry keyed by heartbeats,
//     consistent-hash routing over the agent names (serve.Ring) with a
//     least-loaded fallback, and the failover loop that re-homes a dead
//     agent's checkpointed sessions.
package dist

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/medgen"
)

// SourceKindMedgen names the synthetic bio-medical generator in a
// core.SourceSpec — the one source kind this repo can re-open on any
// machine from its spec alone (the generator is deterministic in its
// config).
const SourceKindMedgen = "medgen"

// MedgenSource is a core.SpeccedSource over the synthetic generator:
// the production FrameSource of the distributed fleet. Its spec is the
// generator config itself, so a peer process rebuilds a frame-exact
// replica from the wire.
type MedgenSource struct {
	core.FrameSource
	cfg   medgen.Config
	class string
}

// NewMedgenSource builds a wire-capable source from a generator config.
// class is the workload-class routing key; empty defaults to the
// generator's body-part class name (a "-4k" style suffix is the caller's
// choice).
func NewMedgenSource(cfg medgen.Config, class string) (*MedgenSource, error) {
	if class == "" {
		class = cfg.Class.String()
	}
	gen, err := medgen.NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	src, err := core.SourceFromGenerator(gen, cfg.Frames, cfg.FPS, class)
	if err != nil {
		return nil, err
	}
	return &MedgenSource{FrameSource: src, cfg: cfg, class: class}, nil
}

// Spec encodes the generator config as the session's wire source spec.
func (s *MedgenSource) Spec() (core.SourceSpec, error) {
	data, err := json.Marshal(s.cfg)
	if err != nil {
		return core.SourceSpec{}, err
	}
	return core.SourceSpec{Kind: SourceKindMedgen, Class: s.class, Data: data}, nil
}

var _ core.SpeccedSource = (*MedgenSource)(nil)

// BindSource is the default core.SourceBinder of the distributed fleet:
// it re-opens the source kinds this package knows how to ship. Unknown
// kinds are an explicit error — an agent must refuse a session it cannot
// actually feed rather than serve garbage.
func BindSource(spec core.SourceSpec) (core.FrameSource, error) {
	switch spec.Kind {
	case SourceKindMedgen:
		var cfg medgen.Config
		if err := json.Unmarshal(spec.Data, &cfg); err != nil {
			return nil, fmt.Errorf("dist: medgen spec: %w", err)
		}
		return NewMedgenSource(cfg, spec.Class)
	default:
		return nil, fmt.Errorf("dist: unknown source kind %q", spec.Kind)
	}
}
