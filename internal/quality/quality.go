// Package quality implements the paper's per-tile quality-aware encoding
// configuration (Sec. III-C1): texture-dependent default quantization
// parameters and the Algorithm 1 feedback loop that adapts each tile's QP
// from the previous frame's PSNR and bitrate measurements, under a PSNR
// constraint with a safety margin.
package quality

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/transform"
)

// Default QPs per texture class (paper: 37 low, 32 medium, 27 high) and the
// extreme values explored by the adaptation loop (42 for very-low-texture
// tiles, 22 to rescue PSNR on extreme high-texture tiles).
const (
	QPLowTexture    = 37
	QPMediumTexture = 32
	QPHighTexture   = 27
	QPMaxExtreme    = 42
	QPMinExtreme    = 22
)

// DefaultQP returns the paper's default QP for a texture class.
func DefaultQP(t analysis.TextureClass) int {
	switch t {
	case analysis.TextureLow:
		return QPLowTexture
	case analysis.TextureMedium:
		return QPMediumTexture
	default:
		return QPHighTexture
	}
}

// Constraints holds the per-user service constraints from the transcoding
// request: the minimum acceptable video quality and the bitrate budget.
type Constraints struct {
	// MinPSNR is PSNR_const in Algorithm 1 (dB).
	MinPSNR float64
	// PSNRMargin is the margin above MinPSNR beyond which QP may be
	// raised without risking constraint violation.
	PSNRMargin float64
	// MaxBitrateKbps bounds the per-video bitrate (0 = unconstrained).
	MaxBitrateKbps float64
}

// DefaultConstraints matches the paper's evaluation regime (Table II
// reports ≈40–46 dB at ≈2.2 Mbps for 640×480@24).
func DefaultConstraints() Constraints {
	return Constraints{MinPSNR: 38, PSNRMargin: 2, MaxBitrateKbps: 4000}
}

// Validate reports constraint errors.
func (c Constraints) Validate() error {
	if c.MinPSNR <= 0 || c.MinPSNR >= 100 {
		return fmt.Errorf("quality: MinPSNR %v outside (0, 100)", c.MinPSNR)
	}
	if c.PSNRMargin < 0 {
		return fmt.Errorf("quality: negative PSNR margin %v", c.PSNRMargin)
	}
	if c.MaxBitrateKbps < 0 {
		return fmt.Errorf("quality: negative bitrate bound %v", c.MaxBitrateKbps)
	}
	return nil
}

// Measurement carries one tile's previous-frame outcome into the adapter.
type Measurement struct {
	// PSNR of the co-located tile in the previous frame (dB).
	PSNR float64
	// BitrateKbps is the tile's contribution extrapolated to a bitrate.
	BitrateKbps float64
}

// Adapter runs Algorithm 1 per tile: it owns each tile's current QP and
// moves it by StepQP based on previous-frame measurements. The zero value
// is not usable; construct with NewAdapter.
type Adapter struct {
	constraints Constraints
	// StepQP is ΔQP in Algorithm 1.
	stepQP int
	// qps maps tile index → current QP.
	qps map[int]int
}

// NewAdapter builds an adapter with ΔQP = 1 if stepQP ≤ 0.
func NewAdapter(constraints Constraints, stepQP int) (*Adapter, error) {
	if err := constraints.Validate(); err != nil {
		return nil, err
	}
	if stepQP <= 0 {
		stepQP = 1
	}
	return &Adapter{constraints: constraints, stepQP: stepQP, qps: make(map[int]int)}, nil
}

// Constraints returns the adapter's constraints.
func (a *Adapter) Constraints() Constraints { return a.constraints }

// ResetTile installs the texture-derived default QP for a tile, called when
// a GOP starts or the tile structure changes.
func (a *Adapter) ResetTile(tile int, texture analysis.TextureClass) int {
	qp := DefaultQP(texture)
	a.qps[tile] = qp
	return qp
}

// QP returns the current QP for a tile, falling back to the medium-texture
// default for unseen tiles.
func (a *Adapter) QP(tile int) int {
	if qp, ok := a.qps[tile]; ok {
		return qp
	}
	return QPMediumTexture
}

// Adapt applies Algorithm 1 for one tile given the previous frame's
// measurement and the tile's current texture/motion classes, returning the
// QP to use for the next frame:
//
//	if PSNR_{t−Δt} > PSNR_const + PSNR_margin:  QP ← QP + ΔQP  (cheaper)
//	else if PSNR_{t−Δt} < PSNR_const:           QP ← QP − ΔQP  (rescue)
//	else:                                       default QP per texture
//
// The result is clamped to [QPMinExtreme, QPMaxExtreme] — the paper's
// extreme values — and additionally nudged up when the bitrate bound is
// exceeded (compression is a hard requisite for online streaming).
func (a *Adapter) Adapt(tile int, m Measurement, texture analysis.TextureClass) int {
	qp, ok := a.qps[tile]
	if !ok {
		qp = DefaultQP(texture)
	}
	switch {
	case m.PSNR > a.constraints.MinPSNR+a.constraints.PSNRMargin:
		qp += a.stepQP
	case m.PSNR < a.constraints.MinPSNR:
		qp -= a.stepQP
	default:
		qp = DefaultQP(texture)
	}
	if a.constraints.MaxBitrateKbps > 0 && m.BitrateKbps > a.constraints.MaxBitrateKbps {
		qp += a.stepQP
	}
	qp = clampQP(qp)
	a.qps[tile] = qp
	return qp
}

// clampQP bounds QP to the paper's explored range, which itself sits inside
// the codec's legal range.
func clampQP(qp int) int {
	if qp < QPMinExtreme {
		return QPMinExtreme
	}
	if qp > QPMaxExtreme {
		return QPMaxExtreme
	}
	return qp
}

// Compile-time guards: the extreme QPs must be legal for the codec (array
// lengths must be non-negative constants).
var (
	_ [QPMaxExtreme - transform.MinQP]struct{}
	_ [transform.MaxQP - QPMaxExtreme]struct{}
	_ [QPMinExtreme - transform.MinQP]struct{}
)
