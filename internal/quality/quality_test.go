package quality

import (
	"testing"
	"testing/quick"

	"repro/internal/analysis"
)

func newAdapter(t *testing.T) *Adapter {
	t.Helper()
	a, err := NewAdapter(DefaultConstraints(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDefaultQPPerTexture(t *testing.T) {
	if DefaultQP(analysis.TextureLow) != 37 {
		t.Fatal("low texture default")
	}
	if DefaultQP(analysis.TextureMedium) != 32 {
		t.Fatal("medium texture default")
	}
	if DefaultQP(analysis.TextureHigh) != 27 {
		t.Fatal("high texture default")
	}
}

func TestConstraintsValidate(t *testing.T) {
	if err := DefaultConstraints().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Constraints{
		{MinPSNR: 0, PSNRMargin: 1},
		{MinPSNR: 120, PSNRMargin: 1},
		{MinPSNR: 40, PSNRMargin: -1},
		{MinPSNR: 40, PSNRMargin: 1, MaxBitrateKbps: -5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestResetTileInstallsDefault(t *testing.T) {
	a := newAdapter(t)
	if qp := a.ResetTile(0, analysis.TextureHigh); qp != 27 {
		t.Fatalf("reset QP = %d", qp)
	}
	if a.QP(0) != 27 {
		t.Fatal("QP not stored")
	}
	if a.QP(99) != QPMediumTexture {
		t.Fatal("unknown tile should fall back to medium default")
	}
}

func TestAdaptRaisesQPWhenComfortable(t *testing.T) {
	a := newAdapter(t)
	a.ResetTile(0, analysis.TextureMedium) // 32
	c := a.Constraints()
	qp := a.Adapt(0, Measurement{PSNR: c.MinPSNR + c.PSNRMargin + 5}, analysis.TextureMedium)
	if qp != 33 {
		t.Fatalf("QP = %d, want 33 (raised)", qp)
	}
	// Repeated comfort keeps raising up to the extreme cap.
	for i := 0; i < 30; i++ {
		qp = a.Adapt(0, Measurement{PSNR: c.MinPSNR + c.PSNRMargin + 5}, analysis.TextureMedium)
	}
	if qp != QPMaxExtreme {
		t.Fatalf("QP = %d, want capped at %d", qp, QPMaxExtreme)
	}
}

func TestAdaptLowersQPWhenViolating(t *testing.T) {
	a := newAdapter(t)
	a.ResetTile(0, analysis.TextureHigh) // 27
	c := a.Constraints()
	qp := a.Adapt(0, Measurement{PSNR: c.MinPSNR - 3}, analysis.TextureHigh)
	if qp != 26 {
		t.Fatalf("QP = %d, want 26 (lowered)", qp)
	}
	for i := 0; i < 30; i++ {
		qp = a.Adapt(0, Measurement{PSNR: c.MinPSNR - 3}, analysis.TextureHigh)
	}
	if qp != QPMinExtreme {
		t.Fatalf("QP = %d, want floored at %d", qp, QPMinExtreme)
	}
}

func TestAdaptInBandRestoresDefault(t *testing.T) {
	a := newAdapter(t)
	a.ResetTile(0, analysis.TextureLow) // 37
	c := a.Constraints()
	// Drift up first.
	a.Adapt(0, Measurement{PSNR: c.MinPSNR + c.PSNRMargin + 5}, analysis.TextureLow)
	// A measurement inside [const, const+margin] restores the default.
	qp := a.Adapt(0, Measurement{PSNR: c.MinPSNR + c.PSNRMargin/2}, analysis.TextureLow)
	if qp != 37 {
		t.Fatalf("QP = %d, want default 37", qp)
	}
}

func TestAdaptBitratePressureRaisesQP(t *testing.T) {
	a := newAdapter(t)
	a.ResetTile(0, analysis.TextureMedium)
	c := a.Constraints()
	// In-band PSNR but bitrate over budget: default would be restored,
	// then nudged up by one step.
	qp := a.Adapt(0, Measurement{
		PSNR:        c.MinPSNR + c.PSNRMargin/2,
		BitrateKbps: c.MaxBitrateKbps + 100,
	}, analysis.TextureMedium)
	if qp != 33 {
		t.Fatalf("QP = %d, want 33 (bitrate pressure)", qp)
	}
}

func TestAdaptUnseenTileStartsFromDefault(t *testing.T) {
	a := newAdapter(t)
	c := a.Constraints()
	qp := a.Adapt(7, Measurement{PSNR: c.MinPSNR - 1}, analysis.TextureHigh)
	if qp != 26 {
		t.Fatalf("QP = %d, want 27−1", qp)
	}
}

func TestAdaptQPAlwaysInExploredRange(t *testing.T) {
	f := func(psnr uint8, kbps uint16, tex uint8, steps uint8) bool {
		a, err := NewAdapter(DefaultConstraints(), 1)
		if err != nil {
			return false
		}
		texture := analysis.TextureClass(int(tex) % 3)
		a.ResetTile(0, texture)
		qp := a.QP(0)
		for i := 0; i < int(steps%20)+1; i++ {
			qp = a.Adapt(0, Measurement{
				PSNR:        float64(psnr%60) + 20,
				BitrateKbps: float64(kbps),
			}, texture)
			if qp < QPMinExtreme || qp > QPMaxExtreme {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAdapterStepConfigurable(t *testing.T) {
	a, err := NewAdapter(DefaultConstraints(), 3)
	if err != nil {
		t.Fatal(err)
	}
	a.ResetTile(0, analysis.TextureMedium)
	c := a.Constraints()
	if qp := a.Adapt(0, Measurement{PSNR: c.MinPSNR + c.PSNRMargin + 1}, analysis.TextureMedium); qp != 35 {
		t.Fatalf("QP = %d, want 35 with step 3", qp)
	}
}

func TestNewAdapterRejectsBadConstraints(t *testing.T) {
	if _, err := NewAdapter(Constraints{MinPSNR: -1}, 1); err == nil {
		t.Fatal("accepted invalid constraints")
	}
}

func TestTilesAreIndependent(t *testing.T) {
	a := newAdapter(t)
	a.ResetTile(0, analysis.TextureLow)
	a.ResetTile(1, analysis.TextureHigh)
	c := a.Constraints()
	a.Adapt(0, Measurement{PSNR: c.MinPSNR + c.PSNRMargin + 9}, analysis.TextureLow)
	if a.QP(1) != 27 {
		t.Fatalf("tile 1 QP moved to %d when tile 0 adapted", a.QP(1))
	}
}
