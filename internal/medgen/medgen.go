// Package medgen generates synthetic bio-medical video sequences that stand
// in for the anonymized clinical MRI/CT/ultrasound videos used in the paper
// (which are not publicly available). The generator reproduces the
// statistical properties the paper's method exploits:
//
//   - diagnostic information concentrated in the center of the frame, with
//     low-texture, near-black borders and corners;
//   - consistent global motion: the whole anatomy rotates about an axis or
//     pans in a single direction, as produced by a specialist rotating the
//     study to observe an area of interest (Fig. 1 of the paper);
//   - tiling stability: the spatial texture layout changes slowly, so a tile
//     structure computed for one frame remains valid for the next ~24 frames;
//   - body-part classability: videos fall into a small set of classes (brain,
//     chest, bone, ...) with class-characteristic texture, enabling workload
//     LUT sharing across videos of one class.
//
// All output is deterministic for a given Config (including Seed).
package medgen

import (
	"fmt"
	"math"

	"repro/internal/video"
)

// Class identifies the body part under study. Workload look-up tables may be
// shared between videos of the same class (paper Sec. III-D1).
type Class int

// Body-part classes, mirroring the paper's examples ("bones, lung and chest,
// brain, spinal cord, ligament and tendon, etc").
const (
	Brain Class = iota
	Chest
	Bone
	SpinalCord
	Ligament
	numClasses
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Brain:
		return "brain"
	case Chest:
		return "chest"
	case Bone:
		return "bone"
	case SpinalCord:
		return "spinal-cord"
	case Ligament:
		return "ligament"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// NumClasses is the number of distinct body-part classes.
const NumClasses = int(numClasses)

// MotionKind selects the camera/anatomy motion script of a sequence.
type MotionKind int

const (
	// Still produces no global motion (only sensor noise varies).
	Still MotionKind = iota
	// Pan translates the anatomy with a constant velocity.
	Pan
	// Rotate spins the anatomy about the frame center at a constant rate,
	// the dominant motion in diagnostic review (rotating along an axis).
	Rotate
	// Sweep alternates one second of rotation with one second of panning,
	// mimicking an interactive review session.
	Sweep
)

// String returns the motion-kind name.
func (m MotionKind) String() string {
	switch m {
	case Still:
		return "still"
	case Pan:
		return "pan"
	case Rotate:
		return "rotate"
	case Sweep:
		return "sweep"
	default:
		return fmt.Sprintf("MotionKind(%d)", int(m))
	}
}

// Config describes a synthetic sequence.
type Config struct {
	Width, Height int
	FPS           float64
	Frames        int
	Class         Class
	Motion        MotionKind
	// PanVX, PanVY give the pan velocity in pixels per frame (used by Pan
	// and the pan phases of Sweep). Zero values default to (1.5, 0).
	PanVX, PanVY float64
	// RotateDegPerFrame is the rotation rate (default 0.6°/frame ≈ 14°/s
	// at 24 FPS, matching slow diagnostic rotation).
	RotateDegPerFrame float64
	// NoiseSigma is the standard deviation of additive sensor noise in
	// sample units (default 2.0; set negative to disable).
	NoiseSigma float64
	// Seed makes the procedural anatomy and noise deterministic.
	Seed int64
}

// Default returns the paper's evaluation geometry: 640×480 @ 24 Hz.
func Default() Config {
	return Config{
		Width: 640, Height: 480, FPS: 24, Frames: 48,
		Class: Brain, Motion: Rotate, Seed: 1,
	}
}

func (c *Config) applyDefaults() {
	if c.PanVX == 0 && c.PanVY == 0 {
		c.PanVX = 1.5
	}
	if c.RotateDegPerFrame == 0 {
		c.RotateDegPerFrame = 0.6
	}
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 2.0
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("medgen: invalid size %dx%d", c.Width, c.Height)
	}
	if c.Width%2 != 0 || c.Height%2 != 0 {
		return fmt.Errorf("medgen: size %dx%d must be even for 4:2:0", c.Width, c.Height)
	}
	if c.FPS <= 0 {
		return fmt.Errorf("medgen: invalid fps %v", c.FPS)
	}
	if c.Frames <= 0 {
		return fmt.Errorf("medgen: invalid frame count %d", c.Frames)
	}
	if c.Class < 0 || c.Class >= numClasses {
		return fmt.Errorf("medgen: invalid class %d", int(c.Class))
	}
	return nil
}

// Generator renders the frames of one synthetic sequence.
type Generator struct {
	cfg   Config
	noise *splitMix
}

// NewGenerator validates cfg and returns a renderer for it.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	return &Generator{cfg: cfg, noise: newSplitMix(uint64(cfg.Seed) ^ 0x9e3779b97f4a7c15)}, nil
}

// Config returns the (defaulted) configuration in effect.
func (g *Generator) Config() Config { return g.cfg }

// pose is the rigid transform of the anatomy at a frame: rotation angle in
// radians about the frame center plus a translation.
type pose struct {
	theta  float64
	tx, ty float64
}

// poseAt evaluates the motion script at frame n.
func (g *Generator) poseAt(n int) pose {
	c := g.cfg
	switch c.Motion {
	case Still:
		return pose{}
	case Pan:
		return pose{tx: c.PanVX * float64(n), ty: c.PanVY * float64(n)}
	case Rotate:
		return pose{theta: c.RotateDegPerFrame * math.Pi / 180 * float64(n)}
	case Sweep:
		// Alternate one-second phases: even seconds rotate, odd seconds pan.
		spf := int(c.FPS)
		if spf <= 0 {
			spf = 24
		}
		var p pose
		for k := 0; k < n; k++ {
			if (k/spf)%2 == 0 {
				p.theta += c.RotateDegPerFrame * math.Pi / 180
			} else {
				p.tx += c.PanVX
				p.ty += c.PanVY
			}
		}
		return p
	default:
		return pose{}
	}
}

// Frame renders frame n (0-based).
func (g *Generator) Frame(n int) *video.Frame {
	c := g.cfg
	f := video.NewFrame(c.Width, c.Height)
	f.Number = n
	f.PTS = float64(n) / c.FPS
	p := g.poseAt(n)
	cx, cy := float64(c.Width)/2, float64(c.Height)/2
	cosT, sinT := math.Cos(-p.theta), math.Sin(-p.theta)
	tex := classTexture(c.Class, c.Seed)
	// Per-frame deterministic noise stream: reseed from (Seed, n) so that a
	// frame's content does not depend on which frames were rendered before.
	nz := newSplitMix(uint64(c.Seed)*0x100000001b3 + uint64(n) + 1)
	for y := 0; y < c.Height; y++ {
		row := f.Y.Row(y)
		for x := 0; x < c.Width; x++ {
			// Inverse-transform the pixel into anatomy space so that the
			// whole frame moves rigidly (consistent motion direction).
			dx := float64(x) - cx - p.tx
			dy := float64(y) - cy - p.ty
			u := dx*cosT - dy*sinT
			v := dx*sinT + dy*cosT
			s := tex.sample(u, v, cx, cy)
			if c.NoiseSigma > 0 {
				// Sensor noise is signal-dependent (Poisson-like): dark
				// background is nearly silent, bright tissue carries the
				// full sigma. This matches clinical acquisitions, where
				// the air background of an MRI/CT frame is essentially
				// flat — the property that lets the paper's CV- and
				// pixel-comparison metrics classify borders as low.
				scale := 0.1 + 0.9*s/255
				if scale > 1 {
					scale = 1
				}
				s += nz.gauss() * c.NoiseSigma * scale
			}
			row[x] = video.ClampU8(int(s + 0.5))
		}
	}
	renderChroma(f, c.Class)
	return f
}

// Sequence renders all frames.
func (g *Generator) Sequence() *video.Sequence {
	frames := make([]*video.Frame, g.cfg.Frames)
	for i := range frames {
		frames[i] = g.Frame(i)
	}
	return video.NewSequence(g.cfg.FPS, frames...)
}

// renderChroma fills chroma with a mild class-dependent tint; chroma carries
// no diagnostic content in the grayscale modalities modeled here.
func renderChroma(f *video.Frame, class Class) {
	cb := uint8(128 + int(class)%3 - 1)
	cr := uint8(128 - int(class)%3 + 1)
	f.Cb.Fill(cb)
	f.Cr.Fill(cr)
}

// texture is a procedural anatomy model evaluated in object space.
type texture struct {
	class Class
	// Ellipse half-axes as fractions of the frame half-extents.
	ax, ay float64
	// Feature blobs (lesions / vertebrae / ribs) placed deterministically.
	blobs []blob
	// Texture field parameters.
	freqU, freqV float64
	gain         float64
	base         float64
	seed         int64
}

type blob struct {
	u, v, r, amp float64
}

// classTexture builds the deterministic anatomy for a class and seed.
func classTexture(class Class, seed int64) *texture {
	rng := newSplitMix(uint64(seed)*2654435761 + uint64(class) + 7)
	t := &texture{class: class, seed: seed}
	switch class {
	case Brain:
		t.ax, t.ay = 0.62, 0.72
		t.freqU, t.freqV = 0.055, 0.047
		t.gain, t.base = 34, 120
	case Chest:
		t.ax, t.ay = 0.78, 0.64
		t.freqU, t.freqV = 0.035, 0.09
		t.gain, t.base = 42, 105
	case Bone:
		t.ax, t.ay = 0.45, 0.8
		t.freqU, t.freqV = 0.02, 0.13
		t.gain, t.base = 55, 140
	case SpinalCord:
		t.ax, t.ay = 0.35, 0.85
		t.freqU, t.freqV = 0.11, 0.03
		t.gain, t.base = 40, 115
	case Ligament:
		t.ax, t.ay = 0.6, 0.55
		t.freqU, t.freqV = 0.08, 0.08
		t.gain, t.base = 30, 110
	}
	nBlobs := 4 + int(rng.next()%5)
	for i := 0; i < nBlobs; i++ {
		t.blobs = append(t.blobs, blob{
			u:   (rng.float() - 0.5) * 0.9,
			v:   (rng.float() - 0.5) * 0.9,
			r:   0.04 + 0.08*rng.float(),
			amp: 25 + 50*rng.float(),
		})
	}
	return t
}

// sample evaluates the anatomy intensity at object-space point (u, v) where
// (hx, hy) are the frame half-extents. Outside the body ellipse the value
// decays quickly to a dark, essentially textureless background.
func (t *texture) sample(u, v, hx, hy float64) float64 {
	nu, nv := u/(hx*t.ax), v/(hy*t.ay)
	r2 := nu*nu + nv*nv
	if r2 >= 1 {
		// Border/corner region: a dark, nearly flat floor with a faint
		// vignette toward the body so it is not bit-exactly constant
		// (real sensors are not), yet carries no diagnostic texture.
		return 8 + 4/(1+2*(r2-1))
	}
	// Body: radial shading + oriented tissue texture + blobs. The texture
	// mixes incommensurate frequencies under a slow amplitude modulation,
	// so — like real tissue — it is locally structured but NOT periodic:
	// block matching has a unique motion optimum with no alias minima one
	// pseudo-period away.
	s := t.base * (1 - 0.35*r2)
	am := 1 + 0.35*math.Sin(0.013*u+0.7)*math.Cos(0.011*v-0.3)
	tex1 := math.Sin(u*t.freqU*2*math.Pi+3*nv) * math.Cos(v*t.freqV*2*math.Pi-2*nu)
	tex2 := math.Sin(u*t.freqU*2*math.Pi*0.381 + v*t.freqV*2*math.Pi*0.617) // golden-ratio-ish detuning
	s += t.gain * am * (0.7*tex1 + 0.5*tex2)
	// Interior ring (skull / pleura / cortical bone).
	ring := math.Abs(math.Sqrt(r2) - 0.88)
	if ring < 0.05 {
		s += 70 * (1 - ring/0.05)
	}
	for _, b := range t.blobs {
		du, dv := nu-b.u, nv-b.v
		d2 := du*du + dv*dv
		if d2 < b.r*b.r*4 {
			s += b.amp * math.Exp(-d2/(b.r*b.r))
		}
	}
	return s
}

// splitMix is a SplitMix64 PRNG: tiny, fast, deterministic, and sufficient
// for procedural textures and noise. We avoid math/rand so that generated
// content is stable across Go releases.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform value in [0, 1).
func (s *splitMix) float() float64 { return float64(s.next()>>11) / (1 << 53) }

// gauss returns a standard normal value via the Box–Muller transform.
func (s *splitMix) gauss() float64 {
	u1 := s.float()
	for u1 == 0 {
		u1 = s.float()
	}
	u2 := s.float()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
