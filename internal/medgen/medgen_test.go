package medgen

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/video"
)

func gen(t *testing.T, mutate func(*Config)) *Generator {
	t.Helper()
	cfg := Default()
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConfigValidate(t *testing.T) {
	good := Default()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Width = 0 },
		func(c *Config) { c.Height = -2 },
		func(c *Config) { c.Width = 641 }, // odd
		func(c *Config) { c.FPS = 0 },
		func(c *Config) { c.Frames = 0 },
		func(c *Config) { c.Class = Class(99) },
	}
	for i, mutate := range cases {
		c := Default()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := gen(t, nil).Frame(7)
	b := gen(t, nil).Frame(7)
	sad, err := video.SAD(a.Y, b.Y)
	if err != nil {
		t.Fatal(err)
	}
	if sad != 0 {
		t.Fatalf("same seed produced different frames (SAD %d)", sad)
	}
}

func TestFrameIndependentOfRenderOrder(t *testing.T) {
	// Frame n must not depend on whether earlier frames were rendered.
	g1 := gen(t, nil)
	direct := g1.Frame(5)
	g2 := gen(t, nil)
	for i := 0; i < 5; i++ {
		g2.Frame(i)
	}
	viaOrder := g2.Frame(5)
	if sad, _ := video.SAD(direct.Y, viaOrder.Y); sad != 0 {
		t.Fatal("frame content depends on render order")
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := gen(t, func(c *Config) { c.Seed = 1 }).Frame(0)
	b := gen(t, func(c *Config) { c.Seed = 2 }).Frame(0)
	sad, _ := video.SAD(a.Y, b.Y)
	if sad == 0 {
		t.Fatal("different seeds produced identical frames")
	}
}

func TestClassesDiffer(t *testing.T) {
	a := gen(t, func(c *Config) { c.Class = Brain }).Frame(0)
	b := gen(t, func(c *Config) { c.Class = Bone }).Frame(0)
	sad, _ := video.SAD(a.Y, b.Y)
	if sad == 0 {
		t.Fatal("different classes produced identical frames")
	}
}

func TestGeometryAndMetadata(t *testing.T) {
	g := gen(t, func(c *Config) { c.Frames = 5 })
	f := g.Frame(3)
	if f.Width() != 640 || f.Height() != 480 {
		t.Fatalf("frame %dx%d", f.Width(), f.Height())
	}
	if f.Number != 3 {
		t.Fatalf("number = %d", f.Number)
	}
	if math.Abs(f.PTS-3.0/24) > 1e-12 {
		t.Fatalf("pts = %v", f.PTS)
	}
}

func TestSequenceLengthAndValidity(t *testing.T) {
	g := gen(t, func(c *Config) { c.Frames = 6 })
	s := g.Sequence()
	if len(s.Frames) != 6 {
		t.Fatalf("%d frames", len(s.Frames))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.FPS != 24 {
		t.Fatalf("fps = %v", s.FPS)
	}
}

func TestCenterBrighterThanBorders(t *testing.T) {
	// The defining property of bio-medical frames: information (intensity,
	// texture) concentrates in the center.
	for _, class := range []Class{Brain, Chest, Bone, SpinalCord, Ligament} {
		f := gen(t, func(c *Config) { c.Class = class }).Frame(0)
		center := f.Y.MustSubPlane(240, 180, 160, 120)
		corner := f.Y.MustSubPlane(0, 0, 80, 60)
		cm, _ := center.MeanStddev()
		bm, bs := corner.MeanStddev()
		if cm <= bm {
			t.Errorf("class %v: center mean %.1f not above corner mean %.1f", class, cm, bm)
		}
		if bs > 3 {
			t.Errorf("class %v: corner stddev %.2f too high for low-content border", class, bs)
		}
	}
}

func TestStillMotionOnlyNoise(t *testing.T) {
	g := gen(t, func(c *Config) { c.Motion = Still })
	a, b := g.Frame(0), g.Frame(5)
	mse, err := video.MSE(a.Y, b.Y)
	if err != nil {
		t.Fatal(err)
	}
	// Only sensor noise differs: MSE stays in the noise regime.
	if mse > 20 {
		t.Fatalf("still video MSE = %v across 5 frames, want noise-level", mse)
	}
}

func TestPanMovesContent(t *testing.T) {
	g := gen(t, func(c *Config) {
		c.Motion = Pan
		c.PanVX, c.PanVY = 4, 0
		c.NoiseSigma = -1 // disable noise for an exact shift check
	})
	a, b := g.Frame(0), g.Frame(1)
	// b shifted back by 4 px must match a (on the interior).
	inner := 100
	var diff int64
	for y := inner; y < 480-inner; y++ {
		for x := inner; x < 640-inner; x++ {
			d := int64(b.Y.At(x, y)) - int64(a.Y.At(x-4, y))
			diff += d * d
		}
	}
	n := float64((480 - 2*inner) * (640 - 2*inner))
	if mse := float64(diff) / n; mse > 1 {
		t.Fatalf("pan-compensated MSE = %v, want ≈0", mse)
	}
}

func TestRotateMovesRim(t *testing.T) {
	g := gen(t, func(c *Config) {
		c.Motion = Rotate
		c.RotateDegPerFrame = 2
		c.NoiseSigma = -1
	})
	a, b := g.Frame(0), g.Frame(6) // 12° apart
	// The rim of the anatomy must change; the rotation center must not.
	rim := func(f *video.Frame) *video.Plane { return f.Y.MustSubPlane(320+120, 240, 60, 40) }
	mseRim, _ := video.MSE(rim(a), rim(b))
	centerA := f2plane(a, 312, 232, 16, 16)
	centerB := f2plane(b, 312, 232, 16, 16)
	mseCenter, _ := video.MSE(centerA, centerB)
	if mseRim < 10*mseCenter+1 {
		t.Fatalf("rotation: rim MSE %v not ≫ center MSE %v", mseRim, mseCenter)
	}
}

func f2plane(f *video.Frame, x, y, w, h int) *video.Plane { return f.Y.MustSubPlane(x, y, w, h) }

func TestSweepAlternatesPhases(t *testing.T) {
	g := gen(t, func(c *Config) {
		c.Motion = Sweep
		c.Frames = 72
		c.NoiseSigma = -1
	})
	// Pose at the end of second 0 (rotation phase) has angle but no pan;
	// during second 1 the pan accumulates.
	p24 := g.poseAt(24)
	p48 := g.poseAt(48)
	if p24.theta == 0 {
		t.Fatal("no rotation accumulated during first second")
	}
	if p24.tx != 0 {
		t.Fatalf("pan accumulated during rotation phase: %v", p24.tx)
	}
	if p48.tx == 0 {
		t.Fatal("no pan accumulated during second phase")
	}
	if math.Abs(p48.theta-p24.theta) > 1e-9 {
		t.Fatal("rotation advanced during pan phase")
	}
}

func TestChromaNeutralAndSized(t *testing.T) {
	f := gen(t, nil).Frame(0)
	if f.Cb.W != 320 || f.Cb.H != 240 {
		t.Fatalf("chroma %dx%d", f.Cb.W, f.Cb.H)
	}
	if d := int(f.Cb.At(0, 0)) - 128; d < -2 || d > 2 {
		t.Fatalf("Cb = %d, want ≈128", f.Cb.At(0, 0))
	}
}

func TestNoiseDisabled(t *testing.T) {
	g := gen(t, func(c *Config) {
		c.Motion = Still
		c.NoiseSigma = -1
	})
	a, b := g.Frame(0), g.Frame(1)
	if sad, _ := video.SAD(a.Y, b.Y); sad != 0 {
		t.Fatal("still + no-noise frames differ")
	}
}

func TestTilingStabilityAcrossGOP(t *testing.T) {
	// Paper Fig. 1: a tiling computed at frame n stays valid ~24 frames.
	// Proxy: per-region mean intensity changes slowly under rotation.
	g := gen(t, nil)
	a, b := g.Frame(0), g.Frame(23)
	for _, r := range [][4]int{{0, 0, 160, 120}, {240, 180, 160, 120}, {480, 360, 160, 120}} {
		ma, _ := a.Y.MustSubPlane(r[0], r[1], r[2], r[3]).MeanStddev()
		mb, _ := b.Y.MustSubPlane(r[0], r[1], r[2], r[3]).MeanStddev()
		if math.Abs(ma-mb) > 0.15*math.Max(ma, 1) {
			t.Errorf("region %v mean drifted %.1f → %.1f across 24 frames", r, ma, mb)
		}
	}
}

func TestAllClassesAllMotionsRender(t *testing.T) {
	for class := Class(0); class < numClasses; class++ {
		for _, m := range []MotionKind{Still, Pan, Rotate, Sweep} {
			g := gen(t, func(c *Config) {
				c.Class = class
				c.Motion = m
				c.Width, c.Height = 128, 96 // keep the sweep fast
				c.Frames = 2
			})
			f := g.Frame(1)
			if f.Width() != 128 {
				t.Fatalf("class %v motion %v: bad frame", class, m)
			}
		}
	}
}

func TestSplitMixUniformity(t *testing.T) {
	// Property: float() stays in [0,1) and has a plausible mean.
	s := newSplitMix(42)
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		v := s.float()
		if v < 0 || v >= 1 {
			t.Fatalf("float out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Fatalf("mean = %v, want ≈0.5", mean)
	}
}

func TestGaussMoments(t *testing.T) {
	s := newSplitMix(7)
	var sum, sumSq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := s.gauss()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("gauss mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("gauss variance = %v", variance)
	}
}

func TestStringMethods(t *testing.T) {
	if Brain.String() != "brain" || Bone.String() != "bone" {
		t.Fatal("class names")
	}
	if Class(42).String() == "" {
		t.Fatal("unknown class name empty")
	}
	if Rotate.String() != "rotate" || MotionKind(9).String() == "" {
		t.Fatal("motion names")
	}
}

func TestPoseProperty(t *testing.T) {
	// Pan pose is linear in frame number.
	f := func(n uint8) bool {
		cfg := Default()
		cfg.Motion = Pan
		cfg.PanVX, cfg.PanVY = 2, -1
		g, err := NewGenerator(cfg)
		if err != nil {
			return false
		}
		p := g.poseAt(int(n))
		return p.tx == 2*float64(n) && p.ty == -1*float64(n) && p.theta == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
