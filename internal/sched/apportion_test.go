package sched

import (
	"reflect"
	"testing"

	"repro/internal/mpsoc"
)

func TestApportionCoresWeighted(t *testing.T) {
	cases := []struct {
		name   string
		total  int
		order  []string
		weight map[string]int
		demand map[string]int
		want   map[string]int
	}{
		{
			name:   "saturated 3:1 split",
			total:  8,
			order:  []string{"heavy", "light"},
			weight: map[string]int{"heavy": 3, "light": 1},
			demand: map[string]int{"heavy": 10, "light": 10},
			want:   map[string]int{"heavy": 6, "light": 2},
		},
		{
			name:   "work conserving: light surplus flows to heavy",
			total:  8,
			order:  []string{"heavy", "light"},
			weight: map[string]int{"heavy": 3, "light": 1},
			demand: map[string]int{"heavy": 10, "light": 1},
			want:   map[string]int{"heavy": 7, "light": 1},
		},
		{
			name:   "under-loaded platform grants every demand",
			total:  32,
			order:  []string{"a", "b", "c"},
			weight: map[string]int{"a": 1, "b": 1, "c": 1},
			demand: map[string]int{"a": 3, "b": 5, "c": 2},
			want:   map[string]int{"a": 3, "b": 5, "c": 2},
		},
		{
			name:   "largest remainder breaks ties in order",
			total:  3,
			order:  []string{"a", "b"},
			weight: map[string]int{"a": 1, "b": 1},
			demand: map[string]int{"a": 10, "b": 10},
			want:   map[string]int{"a": 2, "b": 1},
		},
		{
			name:   "more tenants than cores still makes progress",
			total:  2,
			order:  []string{"a", "b", "c", "d"},
			weight: map[string]int{"a": 1, "b": 1, "c": 1, "d": 1},
			demand: map[string]int{"a": 1, "b": 1, "c": 1, "d": 1},
			want:   map[string]int{"a": 1, "b": 1},
		},
		{
			name:   "single tenant takes the platform",
			total:  8,
			order:  []string{"only"},
			weight: map[string]int{"only": 7},
			demand: map[string]int{"only": 20},
			want:   map[string]int{"only": 8},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := ApportionCores(tc.total, tc.order, tc.weight, tc.demand)
			// Drop zero shares for comparison symmetry.
			for k, v := range got {
				if v == 0 {
					delete(got, k)
				}
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("ApportionCores = %v, want %v", got, tc.want)
			}
			sum := 0
			for _, v := range got {
				sum += v
			}
			if sum > tc.total {
				t.Fatalf("shares sum %d exceeds total %d", sum, tc.total)
			}
		})
	}
}

func TestAdmitPriorityFirst(t *testing.T) {
	// Three best-effort users fill a 3-core platform; a priority-9 user
	// with the same demand displaces one of them instead of queueing.
	p := mpsoc.XeonE5_2667V4()
	p.Cores = 3
	mk := func(id, pri int) UserDemand {
		u := demand(id, ms(40)) // ~1 core at 24 fps
		u.Priority = pri
		return u
	}
	in := Input{Platform: p, FPS: 24, Users: []UserDemand{mk(0, 0), mk(1, 0), mk(2, 0), mk(3, 9)}}
	res, err := AllocateContentAware(in)
	if err != nil {
		t.Fatal(err)
	}
	if !containsID(res.Admitted, 3) {
		t.Fatalf("priority user rejected: admitted=%v rejected=%v", res.Admitted, res.Rejected)
	}
	if !containsID(res.Rejected, 2) {
		t.Fatalf("expected newest best-effort user displaced: admitted=%v rejected=%v", res.Admitted, res.Rejected)
	}

	// All-zero priorities reproduce the historical pure ascending order.
	in.Users[3].Priority = 0
	res, err = AllocateContentAware(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Admitted, []int{0, 1, 2}) {
		t.Fatalf("zero-priority admitted = %v, want [0 1 2]", res.Admitted)
	}
}
