package sched

import (
	"fmt"
	"sort"
	"sync"
)

// Allocator is the pluggable stage-D2 policy signature shared by every
// allocation function in this package. The serving layers select an
// Allocator from a Registry by name, so policies are configurable from
// CLI flags and config files instead of being wired by function pointer.
type Allocator func(Input) (*Result, error)

// Entry describes one registered allocator.
type Entry struct {
	// Name is the registry key ("content-aware", "baseline", ...).
	Name string
	// Description is a one-line human-readable summary, used by CLIs and
	// examples when listing the available policies.
	Description string
	// Func is the allocator itself.
	Func Allocator
}

// Registry maps allocator names to allocation policies. It is safe for
// concurrent use. The package-level Default registry holds the four
// built-in policies; tests and embedders can build private registries or
// Register additional policies under new names.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]Entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]Entry)}
}

// Register adds an allocator under name. Registering an empty name, a nil
// function or a name already taken is an error — policies are identities,
// silently replacing one would redirect every config that names it.
func (r *Registry) Register(name, description string, fn Allocator) error {
	if name == "" {
		return fmt.Errorf("sched: empty allocator name")
	}
	if fn == nil {
		return fmt.Errorf("sched: nil allocator %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		return fmt.Errorf("sched: allocator %q already registered", name)
	}
	r.entries[name] = Entry{Name: name, Description: description, Func: fn}
	return nil
}

// Lookup returns the allocator registered under name.
func (r *Registry) Lookup(name string) (Allocator, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, false
	}
	return e.Func, true
}

// MustLookup is Lookup with an error naming the known policies — the
// message a CLI wants verbatim when the user typo-ed a flag value.
func (r *Registry) MustLookup(name string) (Allocator, error) {
	fn, ok := r.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("sched: unknown allocator %q (have %v)", name, r.Names())
	}
	return fn, nil
}

// Names returns the registered names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for name := range r.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns every entry, sorted by name.
func (r *Registry) All() []Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Canonical names of the built-in policies in the Default registry.
const (
	NameContentAware = "content-aware"
	NameBaseline     = "baseline"
	NameGreedy       = "greedy"
	NameRoundRobin   = "round-robin"
)

// Default is the registry every serving layer consults unless handed a
// private one. It starts with the four built-in policies.
var Default = func() *Registry {
	r := NewRegistry()
	for _, e := range []Entry{
		{NameContentAware, "Algorithm 2: dense packing + DVFS slack", AllocateContentAware},
		{NameBaseline, "work of [19]: one tile per core, all cores at fmax", AllocateBaseline},
		{NameGreedy, "ablation: least-loaded core, same DVFS rule", AllocateGreedyLeastLoaded},
		{NameRoundRobin, "ablation: cyclic core assignment, no load awareness", AllocateRoundRobin},
	} {
		if err := r.Register(e.Name, e.Description, e.Func); err != nil {
			panic(err)
		}
	}
	return r
}()

// Register adds an allocator to the Default registry.
func Register(name, description string, fn Allocator) error {
	return Default.Register(name, description, fn)
}

// Lookup finds an allocator in the Default registry.
func Lookup(name string) (Allocator, bool) { return Default.Lookup(name) }

// Names lists the Default registry's allocator names, sorted.
func Names() []string { return Default.Names() }
