package sched

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/mpsoc"
)

// ms is a test shorthand.
func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

// demand builds a UserDemand with the given per-tile CPU times.
func demand(user int, times ...time.Duration) UserDemand {
	u := UserDemand{User: user}
	for i, d := range times {
		u.Threads = append(u.Threads, Thread{User: user, Tile: i, TimeFmax: d})
	}
	return u
}

func input(users ...UserDemand) Input {
	return Input{Platform: mpsoc.XeonE5_2667V4(), FPS: 24, Users: users}
}

func TestCoresNeeded(t *testing.T) {
	// Slot = 41.67 ms. 30 ms of work → 0.72 cores → 1. 90 ms → 2.16 → 3.
	if got := demand(0, ms(30)).CoresNeeded(24); got != 1 {
		t.Fatalf("30ms → %d cores", got)
	}
	if got := demand(0, ms(30), ms(30), ms(30)).CoresNeeded(24); got != 3 {
		t.Fatalf("90ms → %d cores", got)
	}
	if got := demand(0, time.Microsecond).CoresNeeded(24); got != 1 {
		t.Fatal("tiny demand needs at least one core")
	}
}

func TestDemandOf(t *testing.T) {
	// DemandOf is the pre-admission pricing entry: per-user CoresNeeded
	// under the input's FPS, no allocation.
	got, err := DemandOf(input(demand(0, ms(30)), demand(1, ms(30), ms(30), ms(30))))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("DemandOf = %v, want {0:1, 1:3}", got)
	}
	if _, err := DemandOf(Input{Platform: nil, FPS: 24, Users: []UserDemand{demand(0, ms(1))}}); err == nil {
		t.Fatal("DemandOf accepted an invalid input")
	}
}

func TestValidation(t *testing.T) {
	bad := []Input{
		{Platform: nil, FPS: 24, Users: []UserDemand{demand(0, ms(1))}},
		{Platform: mpsoc.XeonE5_2667V4(), FPS: 0, Users: []UserDemand{demand(0, ms(1))}},
		input(demand(0, ms(1)), demand(0, ms(1))),                                  // duplicate id
		input(UserDemand{User: 0}),                                                 // no threads
		input(UserDemand{User: 0, Threads: []Thread{{User: 0, TimeFmax: -ms(1)}}}), // negative
		input(UserDemand{User: 0, Threads: []Thread{{User: 5, TimeFmax: ms(1)}}}),  // mismatched id
	}
	for i, in := range bad {
		if _, err := AllocateContentAware(in); err == nil {
			t.Errorf("case %d allocated", i)
		}
	}
}

func TestSingleUserAllocation(t *testing.T) {
	in := input(demand(0, ms(10), ms(8), ms(5), ms(3)))
	res, err := AllocateContentAware(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Admitted) != 1 || res.Admitted[0] != 0 {
		t.Fatalf("admitted = %v", res.Admitted)
	}
	if len(res.Assignments) != 4 {
		t.Fatalf("%d assignments", len(res.Assignments))
	}
	// Total 26 ms < 41.67 ms slot: Algorithm 2's densifying rule should
	// pack everything onto one core.
	if res.CoresUsed != 1 {
		t.Fatalf("cores used = %d, want 1 (dense packing)", res.CoresUsed)
	}
}

func TestDensePackingVsGreedy(t *testing.T) {
	// The distinguishing behaviour vs least-loaded: Algorithm 2 fills a
	// core toward the cap before opening another.
	in := input(demand(0, ms(10), ms(10), ms(10), ms(10)))
	ca, err := AllocateContentAware(in)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := AllocateGreedyLeastLoaded(in)
	if err != nil {
		t.Fatal(err)
	}
	if ca.CoresUsed >= greedy.CoresUsed {
		t.Fatalf("content-aware used %d cores, greedy %d — densification lost", ca.CoresUsed, greedy.CoresUsed)
	}
}

func TestNoCoreExceedsSlotWhenAvoidable(t *testing.T) {
	// 8 threads × 20 ms = 160 ms over a 41.67 ms slot → needs ≥ 4 cores;
	// none may exceed the slot because spare cores exist.
	in := input(demand(0, ms(20), ms(20), ms(20), ms(20), ms(20), ms(20), ms(20), ms(20)))
	res, err := AllocateContentAware(in)
	if err != nil {
		t.Fatal(err)
	}
	slot := time.Second / 24
	loads := coreLoads(res)
	for k, l := range loads {
		if l > slot {
			t.Fatalf("core %d load %v exceeds slot %v", k, l, slot)
		}
	}
}

func coreLoads(res *Result) map[int]time.Duration {
	loads := make(map[int]time.Duration)
	for _, a := range res.Assignments {
		loads[a.Core] += a.Thread.TimeFmax
	}
	return loads
}

func TestAdmissionPrefersSmallUsers(t *testing.T) {
	// 31 small users (1 core each) + 1 huge user (32 cores): admitting the
	// small ones first maximizes the user count.
	var users []UserDemand
	for i := 0; i < 31; i++ {
		users = append(users, demand(i, ms(30)))
	}
	var big []time.Duration
	for i := 0; i < 40; i++ {
		big = append(big, ms(35))
	}
	users = append(users, demand(99, big...))
	res, err := AllocateContentAware(input(users...))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Admitted) != 31 {
		t.Fatalf("admitted %d users, want 31 small ones", len(res.Admitted))
	}
	if len(res.Rejected) != 1 || res.Rejected[0] != 99 {
		t.Fatalf("rejected = %v, want [99]", res.Rejected)
	}
}

func TestSaturatedQueueFillsPlatform(t *testing.T) {
	// More demand than cores: the platform must be fully used and the
	// admitted user count bounded by core capacity.
	var users []UserDemand
	for i := 0; i < 64; i++ {
		users = append(users, demand(i, ms(25), ms(20)))
	}
	res, err := AllocateContentAware(input(users...))
	if err != nil {
		t.Fatal(err)
	}
	// Each user needs ceil(45ms/41.67ms) = 2 cores → 16 users on 32 cores.
	if len(res.Admitted) != 16 {
		t.Fatalf("admitted %d users, want 16", len(res.Admitted))
	}
	if len(res.Admitted)+len(res.Rejected) != 64 {
		t.Fatal("admitted + rejected != total")
	}
}

func TestDVFSSlackGoesToMinLevel(t *testing.T) {
	in := input(demand(0, ms(10)))
	res, err := AllocateContentAware(in)
	if err != nil {
		t.Fatal(err)
	}
	p := in.Platform
	for k, plan := range res.Plans {
		if plan.LoadAtFmax > 0 {
			if plan.BusyLevel != p.MaxLevel() {
				t.Fatalf("core %d busy level %d, want fmax", k, plan.BusyLevel)
			}
			if plan.IdleLevel != p.MinLevel() {
				t.Fatalf("core %d idle level %d, want fmin", k, plan.IdleLevel)
			}
			if plan.Transitions == 0 {
				t.Fatalf("core %d with slack has no DVFS transitions", k)
			}
		}
	}
}

func TestBaselineOneThreadPerCore(t *testing.T) {
	in := input(demand(0, ms(30), ms(30), ms(30)), demand(1, ms(30), ms(30)))
	res, err := AllocateBaseline(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Admitted) != 2 {
		t.Fatalf("admitted = %v", res.Admitted)
	}
	// 5 threads → 5 distinct cores.
	seen := make(map[int]bool)
	for _, a := range res.Assignments {
		if seen[a.Core] {
			t.Fatalf("core %d assigned twice — baseline is one thread per core", a.Core)
		}
		seen[a.Core] = true
	}
	if res.CoresUsed != 5 {
		t.Fatalf("cores used = %d, want 5", res.CoresUsed)
	}
	// Active cores idle at fmax (the baseline's power penalty).
	p := in.Platform
	for k, plan := range res.Plans {
		if plan.LoadAtFmax > 0 && plan.IdleLevel != p.MaxLevel() {
			t.Fatalf("core %d idles at level %d, baseline keeps fmax", k, plan.IdleLevel)
		}
	}
}

func TestBaselineAdmissionByThreadCount(t *testing.T) {
	// 3 users × 12 threads = 36 > 32 cores → only 2 admitted.
	mk := func(id int) UserDemand {
		var ts []time.Duration
		for i := 0; i < 12; i++ {
			ts = append(ts, ms(30))
		}
		return demand(id, ts...)
	}
	res, err := AllocateBaseline(input(mk(0), mk(1), mk(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Admitted) != 2 {
		t.Fatalf("admitted %d, want 2", len(res.Admitted))
	}
}

func TestProposedAdmitsMoreUsersThanBaseline(t *testing.T) {
	// The Table II shape: same user population, saturated queue. The
	// baseline's one-tile-per-core discipline admits fewer users than
	// Algorithm 2's dense packing.
	var users []UserDemand
	for i := 0; i < 40; i++ {
		// 6 tiles of 5 ms each → 30 ms/frame: 1 core by Algorithm 2,
		// 6 cores by the baseline.
		users = append(users, demand(i, ms(5), ms(5), ms(5), ms(5), ms(5), ms(5)))
	}
	in := input(users...)
	prop, err := AllocateContentAware(in)
	if err != nil {
		t.Fatal(err)
	}
	base, err := AllocateBaseline(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(prop.Admitted) <= len(base.Admitted) {
		t.Fatalf("proposed admitted %d, baseline %d — throughput advantage lost",
			len(prop.Admitted), len(base.Admitted))
	}
}

func TestProposedSavesPowerVsBaseline(t *testing.T) {
	// The Fig. 4 shape: same users on both policies, energy from the
	// platform simulator. The proposed policy must consume less power.
	var users []UserDemand
	for i := 0; i < 6; i++ {
		users = append(users, demand(i, ms(8), ms(6), ms(5), ms(4)))
	}
	in := input(users...)
	prop, err := AllocateContentAware(in)
	if err != nil {
		t.Fatal(err)
	}
	base, err := AllocateBaseline(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(prop.Admitted) != len(base.Admitted) {
		t.Fatalf("admission differs: %d vs %d", len(prop.Admitted), len(base.Admitted))
	}
	slot := time.Second / 24
	eProp, err := in.Platform.SimulateSlot(prop.Plans, slot)
	if err != nil {
		t.Fatal(err)
	}
	eBase, err := in.Platform.SimulateSlot(base.Plans, slot)
	if err != nil {
		t.Fatal(err)
	}
	saving := 1 - eProp.AvgPowerW/eBase.AvgPowerW
	if saving < 0.15 {
		t.Fatalf("power saving %.1f%%, want a substantial margin", saving*100)
	}
}

func TestRoundRobinSpreadsThreads(t *testing.T) {
	in := input(demand(0, ms(5), ms(5), ms(5), ms(5)))
	res, err := AllocateRoundRobin(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoresUsed != 4 {
		t.Fatalf("round robin used %d cores, want 4", res.CoresUsed)
	}
}

func TestAllAllocatorsAssignEveryAdmittedThread(t *testing.T) {
	allocs := map[string]func(Input) (*Result, error){
		"content-aware": AllocateContentAware,
		"baseline":      AllocateBaseline,
		"greedy":        AllocateGreedyLeastLoaded,
		"round-robin":   AllocateRoundRobin,
	}
	in := input(demand(0, ms(9), ms(7)), demand(1, ms(6), ms(4), ms(2)), demand(2, ms(12)))
	for name, alloc := range allocs {
		res, err := alloc(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := 0
		for _, u := range in.Users {
			if containsInt(res.Admitted, u.User) {
				want += len(u.Threads)
			}
		}
		if len(res.Assignments) != want {
			t.Errorf("%s: %d assignments, want %d", name, len(res.Assignments), want)
		}
		for _, a := range res.Assignments {
			if a.Core < 0 || a.Core >= in.Platform.Cores {
				t.Errorf("%s: core %d out of range", name, a.Core)
			}
			if !containsInt(res.Admitted, a.Thread.User) {
				t.Errorf("%s: thread of non-admitted user %d assigned", name, a.Thread.User)
			}
		}
		if len(res.Plans) != in.Platform.Cores {
			t.Errorf("%s: %d plans", name, len(res.Plans))
		}
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestPlansMatchAssignments(t *testing.T) {
	in := input(demand(0, ms(9), ms(7), ms(13)), demand(1, ms(21)))
	res, err := AllocateContentAware(in)
	if err != nil {
		t.Fatal(err)
	}
	loads := coreLoads(res)
	for k, plan := range res.Plans {
		if plan.LoadAtFmax != loads[k] {
			t.Fatalf("core %d plan load %v != assignment sum %v", k, plan.LoadAtFmax, loads[k])
		}
	}
}

func TestDeterministicResults(t *testing.T) {
	in := input(demand(0, ms(9), ms(7)), demand(1, ms(9), ms(7)), demand(2, ms(30)))
	a, err := AllocateContentAware(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AllocateContentAware(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Assignments) != len(b.Assignments) {
		t.Fatal("assignment counts differ")
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatalf("assignment %d differs: %+v vs %+v", i, a.Assignments[i], b.Assignments[i])
		}
	}
}

func TestPropertyAdmissionNeverExceedsCapacity(t *testing.T) {
	f := func(seeds [8]uint16) bool {
		var users []UserDemand
		for i, s := range seeds {
			n := int(s%4) + 1
			var ts []time.Duration
			for j := 0; j < n; j++ {
				ts = append(ts, time.Duration(s%40+1)*time.Millisecond)
			}
			users = append(users, demand(i, ts...))
		}
		in := input(users...)
		res, err := AllocateContentAware(in)
		if err != nil {
			return false
		}
		// Total admitted core demand within platform cores.
		total := 0
		for _, u := range in.Users {
			if containsInt(res.Admitted, u.User) {
				total += u.CoresNeeded(in.FPS)
			}
		}
		return total <= in.Platform.Cores
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
