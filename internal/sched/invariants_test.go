package sched

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/mpsoc"
)

// invariantPolicies lists every allocator with the admission rule it is
// supposed to follow, so one table drives all cross-allocator checks.
var invariantPolicies = []struct {
	name     string
	alloc    func(Input) (*Result, error)
	ordering string // "cores" (ascending core demand) or "threads" (ascending thread count)
}{
	{"content-aware", AllocateContentAware, "cores"},
	{"baseline", AllocateBaseline, "threads"},
	{"greedy", AllocateGreedyLeastLoaded, "cores"},
	{"round-robin", AllocateRoundRobin, "cores"},
}

// randomInput builds a randomized but reproducible allocation problem.
func randomInput(rng *rand.Rand) Input {
	cores := []int{2, 4, 8, 32}[rng.Intn(4)]
	p := mpsoc.XeonE5_2667V4()
	p.Cores = cores
	users := rng.Intn(10) + 1
	in := Input{Platform: p, FPS: []float64{24, 30}[rng.Intn(2)]}
	for u := 0; u < users; u++ {
		d := UserDemand{User: u}
		tiles := rng.Intn(8) + 1
		for t := 0; t < tiles; t++ {
			d.Threads = append(d.Threads, Thread{
				User: u, Tile: t,
				TimeFmax: time.Duration(rng.Intn(30_000)) * time.Microsecond,
			})
		}
		in.Users = append(in.Users, d)
	}
	return in
}

// expectedAdmission replays the policy's documented admission rule: sort
// by demand (core units or thread count) with user id as tie-break, then
// admit the greedy prefix that fits the budget.
func expectedAdmission(in Input, ordering string) (admitted, rejected []int) {
	type cand struct{ user, demand int }
	var cs []cand
	for _, u := range in.Users {
		switch ordering {
		case "cores":
			cs = append(cs, cand{u.User, u.CoresNeeded(in.FPS)})
		case "threads":
			cs = append(cs, cand{u.User, len(u.Threads)})
		}
	}
	sort.Slice(cs, func(a, b int) bool {
		if cs[a].demand != cs[b].demand {
			return cs[a].demand < cs[b].demand
		}
		return cs[a].user < cs[b].user
	})
	budget := in.Platform.Cores
	for _, c := range cs {
		if c.demand <= budget {
			budget -= c.demand
			admitted = append(admitted, c.user)
		} else {
			rejected = append(rejected, c.user)
		}
	}
	sort.Ints(admitted)
	sort.Ints(rejected)
	return
}

func checkInvariants(t *testing.T, in Input, res *Result, ordering string) {
	t.Helper()
	slot := in.slotOf()
	byUser := make(map[int]UserDemand, len(in.Users))
	for _, u := range in.Users {
		byUser[u.User] = u
	}

	// Admitted ∪ Rejected partitions the input, both sorted.
	if len(res.Admitted)+len(res.Rejected) != len(in.Users) {
		t.Fatalf("admitted %v + rejected %v do not cover %d users", res.Admitted, res.Rejected, len(in.Users))
	}
	if !sort.IntsAreSorted(res.Admitted) || !sort.IntsAreSorted(res.Rejected) {
		t.Fatalf("unsorted outcome: admitted %v rejected %v", res.Admitted, res.Rejected)
	}
	for _, id := range res.Rejected {
		if containsID(res.Admitted, id) {
			t.Fatalf("user %d both admitted and rejected", id)
		}
	}

	// The admitted set matches the policy's documented prefix rule.
	wantAdm, wantRej := expectedAdmission(in, ordering)
	if fmt.Sprint(res.Admitted) != fmt.Sprint(wantAdm) || fmt.Sprint(res.Rejected) != fmt.Sprint(wantRej) {
		t.Fatalf("admission differs from policy: got %v/%v, want %v/%v",
			res.Admitted, res.Rejected, wantAdm, wantRej)
	}

	// Every admitted thread assigned exactly once, none of a rejected
	// user's, and only to real cores.
	seen := make(map[[2]int]int)
	loads := make([]time.Duration, in.Platform.Cores)
	for _, a := range res.Assignments {
		if a.Core < 0 || a.Core >= in.Platform.Cores {
			t.Fatalf("assignment to core %d outside the platform", a.Core)
		}
		if !containsID(res.Admitted, a.Thread.User) {
			t.Fatalf("rejected user %d has an assignment", a.Thread.User)
		}
		seen[[2]int{a.Thread.User, a.Thread.Tile}]++
		loads[a.Core] += a.Thread.TimeFmax
	}
	for _, id := range res.Admitted {
		for _, th := range byUser[id].Threads {
			if n := seen[[2]int{id, th.Tile}]; n != 1 {
				t.Fatalf("user %d tile %d assigned %d times", id, th.Tile, n)
			}
		}
	}
	if len(seen) != len(res.Assignments) {
		t.Fatal("duplicate (user, tile) pairs in assignments")
	}

	// Plans agree with assignments; gating only for empty cores.
	for k, plan := range res.Plans {
		if plan.LoadAtFmax != loads[k] {
			t.Fatalf("core %d plan load %v != assigned %v", k, plan.LoadAtFmax, loads[k])
		}
		if plan.Gated != (loads[k] == 0) {
			t.Fatalf("core %d gated=%v with load %v", k, plan.Gated, loads[k])
		}
	}
	used := 0
	for _, l := range loads {
		if l > 0 {
			used++
		}
	}
	if res.CoresUsed != used {
		t.Fatalf("CoresUsed %d, want %d", res.CoresUsed, used)
	}

	// UserCores/CoresOf agree with the assignments.
	distinct := make(map[int]map[int]bool)
	for _, a := range res.Assignments {
		if distinct[a.Thread.User] == nil {
			distinct[a.Thread.User] = make(map[int]bool)
		}
		distinct[a.Thread.User][a.Core] = true
	}
	for _, id := range res.Admitted {
		if got, want := res.UserCores[id], len(distinct[id]); got != want {
			t.Fatalf("UserCores[%d] = %d, assignments use %d cores", id, got, want)
		}
		if res.CoresOf(id) < 1 {
			t.Fatalf("CoresOf(%d) below 1", id)
		}
	}
	if len(res.UserCores) != len(res.Admitted) {
		t.Fatalf("UserCores covers %d users, admitted %d", len(res.UserCores), len(res.Admitted))
	}

	// DemandCores reported for every candidate, admitted or not.
	for _, u := range in.Users {
		if _, ok := res.DemandCores[u.User]; !ok {
			t.Fatalf("no demand reported for user %d", u.User)
		}
	}

	// Capacity: admission never over-commits the platform. For the core
	// -demand policies the admitted CPU time fits Cores slots; for the
	// baseline, one thread per core with no sharing.
	switch ordering {
	case "cores":
		var total time.Duration
		for _, id := range res.Admitted {
			total += byUser[id].TotalTime()
		}
		if cap := time.Duration(in.Platform.Cores) * slot; total > cap {
			t.Fatalf("admitted %v of work into %v of capacity", total, cap)
		}
	case "threads":
		perCore := make(map[int]int)
		for _, a := range res.Assignments {
			perCore[a.Core]++
			if perCore[a.Core] > 1 {
				t.Fatalf("baseline stacked %d threads on core %d", perCore[a.Core], a.Core)
			}
		}
	}

	// The plan is always simulatable, and the simulator's miss count
	// matches the cores whose load cannot fit the slot.
	rep, err := in.Platform.SimulateSlot(res.Plans, slot)
	if err != nil {
		t.Fatalf("plan not simulatable: %v", err)
	}
	for k, c := range rep.CarryOver {
		if c > 0 && loads[k] <= slot && res.Plans[k].Transitions == 0 {
			t.Fatalf("core %d carried over %v despite fitting load %v", k, c, loads[k])
		}
	}
}

// TestAllocatorInvariantsRandomized drives all four allocators over the
// same randomized inputs and checks the shared contract: capacity
// respected, every thread placed exactly once, admission consistent with
// the policy's ordering, and Result bookkeeping (Plans, CoresUsed,
// UserCores, DemandCores) consistent with Assignments.
func TestAllocatorInvariantsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for c := 0; c < 60; c++ {
		in := randomInput(rng)
		for _, p := range invariantPolicies {
			res, err := p.alloc(in)
			if err != nil {
				t.Fatalf("case %d %s: %v", c, p.name, err)
			}
			t.Run(fmt.Sprintf("case%d/%s", c, p.name), func(t *testing.T) {
				checkInvariants(t, in, res, p.ordering)
			})
		}
	}
}

// TestAllocatorInvariantsEdgeCases pins the table-driven corner inputs.
func TestAllocatorInvariantsEdgeCases(t *testing.T) {
	two := mpsoc.XeonE5_2667V4()
	two.Cores = 2
	cases := []struct {
		name string
		in   Input
	}{
		{"single-tiny-user", input(demand(0, time.Microsecond))},
		{"zero-time-threads", input(demand(0, 0, 0, 0, 0))},
		{"exact-slot-fill", input(demand(0, time.Second/24), demand(1, time.Second/24))},
		{"everyone-too-big", Input{Platform: two, FPS: 24,
			Users: []UserDemand{demand(0, ms(50), ms(50), ms(50)), demand(1, ms(60), ms(60), ms(60))}}},
		{"many-users-one-core-each", input(func() []UserDemand {
			var us []UserDemand
			for i := 0; i < 40; i++ {
				us = append(us, demand(i, ms(10)))
			}
			return us
		}()...)},
	}
	for _, tc := range cases {
		for _, p := range invariantPolicies {
			t.Run(tc.name+"/"+p.name, func(t *testing.T) {
				res, err := p.alloc(tc.in)
				if err != nil {
					t.Fatal(err)
				}
				checkInvariants(t, tc.in, res, p.ordering)
			})
		}
	}
}
