package sched

import "sort"

// ApportionCores splits total cores across tenants proportionally to
// their weights, capped at each tenant's core demand, with unused share
// redistributed — the weighted-fairness step the server runs before the
// per-tenant stage-D2 solves (DESIGN.md §15).
//
// order lists the tenant ids deterministically (the caller sorts them);
// weight and demand map each id to its share weight (≥ 1) and its summed
// core demand (Algorithm 2 line 1 over the tenant's sessions). The split
// is a largest-remainder apportionment run in rounds: each round divides
// the remaining cores among the still-unsatisfied tenants by weight, and
// grants above a tenant's remaining demand are withheld and re-divided —
// so a light tenant that needs less than its fair share donates the rest
// (work conservation), while a flooded tenant can never take more than
// its weighted fraction away from the others. Remainder ties break in
// order. The returned shares sum to at most min(total, Σ demand).
func ApportionCores(total int, order []string, weight, demand map[string]int) map[string]int {
	shares := make(map[string]int, len(order))
	if total <= 0 {
		return shares
	}
	remaining := total
	for remaining > 0 {
		var unsat []string
		wsum := 0
		for _, t := range order {
			if shares[t] < demand[t] {
				unsat = append(unsat, t)
				w := weight[t]
				if w < 1 {
					w = 1
				}
				wsum += w
			}
		}
		if len(unsat) == 0 {
			break
		}
		granted := apportionRound(remaining, unsat, weight, wsum, demand, shares)
		if granted == 0 {
			break
		}
		remaining -= granted
	}
	return shares
}

// apportionRound runs one largest-remainder division of remaining cores
// among the unsatisfied tenants, adding grants (capped at each tenant's
// remaining demand) into shares. Returns the number of cores granted.
func apportionRound(remaining int, unsat []string, weight map[string]int, wsum int, demand, shares map[string]int) int {
	type quota struct {
		id    string
		whole int
		// frac is the quota's fractional remainder scaled by wsum (an
		// integer, so ordering is exact).
		frac int
	}
	quotas := make([]quota, len(unsat))
	floorSum := 0
	for i, t := range unsat {
		w := weight[t]
		if w < 1 {
			w = 1
		}
		q := remaining * w
		quotas[i] = quota{id: t, whole: q / wsum, frac: q % wsum}
		floorSum += quotas[i].whole
	}
	// Leftover units go to the largest fractional remainders; ties keep
	// the callers' order (quotas is built in order).
	leftover := remaining - floorSum
	idx := make([]int, len(quotas))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return quotas[idx[a]].frac > quotas[idx[b]].frac
	})
	for _, i := range idx {
		if leftover == 0 {
			break
		}
		quotas[i].whole++
		leftover--
	}
	granted := 0
	for _, q := range quotas {
		need := demand[q.id] - shares[q.id]
		give := q.whole
		if give > need {
			give = need
		}
		shares[q.id] += give
		granted += give
	}
	return granted
}
