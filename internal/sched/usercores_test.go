package sched

import (
	"testing"
	"time"

	"repro/internal/mpsoc"
)

// coresInput builds a small heterogeneous demand set: user 0 light (fits
// one core), user 1 heavy (needs several cores), user 2 medium.
func coresInput() Input {
	mk := func(user, tiles int, per time.Duration) UserDemand {
		d := UserDemand{User: user}
		for t := 0; t < tiles; t++ {
			d.Threads = append(d.Threads, Thread{User: user, Tile: t, TimeFmax: per})
		}
		return d
	}
	return Input{
		Platform: mpsoc.XeonE5_2667V4(),
		FPS:      24,
		Users: []UserDemand{
			mk(0, 2, 2*time.Millisecond),
			mk(1, 6, 30*time.Millisecond),
			mk(2, 4, 10*time.Millisecond),
		},
	}
}

func TestUserCoresPopulatedByAllAllocators(t *testing.T) {
	allocators := map[string]func(Input) (*Result, error){
		"content-aware": AllocateContentAware,
		"baseline":      AllocateBaseline,
		"greedy":        AllocateGreedyLeastLoaded,
		"round-robin":   AllocateRoundRobin,
	}
	for name, alloc := range allocators {
		res, err := alloc(coresInput())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.UserCores == nil {
			t.Fatalf("%s: UserCores not populated", name)
		}
		total := 0
		for _, id := range res.Admitted {
			n := res.CoresOf(id)
			if n < 1 {
				t.Fatalf("%s: admitted user %d has core count %d", name, id, n)
			}
			if n > res.CoresUsed {
				t.Fatalf("%s: user %d on %d cores, only %d in use", name, id, n, res.CoresUsed)
			}
			total += n
		}
		// Shared cores may be double-counted across users, but every used
		// core hosts at least one user's thread.
		if total < res.CoresUsed {
			t.Fatalf("%s: per-user cores sum %d below cores used %d", name, total, res.CoresUsed)
		}
	}
}

func TestUserCoresMatchAssignments(t *testing.T) {
	res, err := AllocateContentAware(coresInput())
	if err != nil {
		t.Fatal(err)
	}
	distinct := make(map[int]map[int]bool)
	for _, a := range res.Assignments {
		if distinct[a.Thread.User] == nil {
			distinct[a.Thread.User] = make(map[int]bool)
		}
		distinct[a.Thread.User][a.Core] = true
	}
	for user, cores := range distinct {
		if got := res.UserCores[user]; got != len(cores) {
			t.Fatalf("user %d: UserCores %d, assignments span %d cores", user, got, len(cores))
		}
	}
	// The heavy user's threads cannot fit one core within a 1/24 s slot.
	if res.CoresOf(1) < 2 {
		t.Fatalf("heavy user on %d cores", res.CoresOf(1))
	}
}

func TestCoresOfUnknownUser(t *testing.T) {
	res := &Result{}
	if got := res.CoresOf(99); got != 1 {
		t.Fatalf("CoresOf on empty result = %d, want 1", got)
	}
}
