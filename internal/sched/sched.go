// Package sched implements the paper's thread allocation and DVFS policy
// (Algorithm 2) together with the state-of-the-art baseline it is compared
// against ([19], Khan et al., IEEE TVLSI 2016) and two simpler reference
// allocators used for ablations.
//
// The scheduling model follows the paper: time is divided into slots of
// 1/FPS seconds; every admitted user contributes one thread per tile of
// its current frame; a thread's cost is its estimated CPU time at the
// maximum frequency; threads of different users may share a core as long
// as the core's accumulated CPU time stays within the slot.
package sched

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/mpsoc"
)

// Thread is one schedulable tile-encoding task.
type Thread struct {
	// User identifies the owning transcoding session.
	User int
	// Tile is the tile index within the user's frame.
	Tile int
	// TimeFmax is the estimated CPU time per frame at maximum frequency.
	TimeFmax time.Duration
}

// UserDemand aggregates one user's threads for the current GOP.
type UserDemand struct {
	User    int
	Threads []Thread
	// Priority is the user's QoS priority class (0 = best effort; higher
	// preempts). Admission considers priority before core demand, so a
	// higher-priority user displaces best-effort users on a full platform
	// instead of queueing behind them — the serving layer's admission
	// ladder then pushes the displaced users down the degradation rungs
	// (priority preemption, DESIGN.md §15). All-zero priorities reproduce
	// the paper's pure ascending-demand order exactly.
	Priority int
}

// TotalTime returns the summed CPU time of the user's threads.
func (u UserDemand) TotalTime() time.Duration {
	var sum time.Duration
	for _, th := range u.Threads {
		sum += th.TimeFmax
	}
	return sum
}

// CoresNeeded implements line 1 of Algorithm 2: the minimum number of
// cores for user i is ceil(Σ_j T_fmax,j · FPS) — the user's utilization in
// core units.
func (u UserDemand) CoresNeeded(fps float64) int {
	util := u.TotalTime().Seconds() * fps
	n := int(math.Ceil(util - 1e-9))
	if n < 1 {
		n = 1
	}
	return n
}

// Assignment records where one thread landed.
type Assignment struct {
	Thread Thread
	Core   int
}

// Result is the outcome of an allocation policy.
type Result struct {
	// Admitted lists the admitted user ids (ascending).
	Admitted []int
	// Rejected lists users that did not fit (ascending).
	Rejected []int
	// Assignments covers every thread of every admitted user.
	Assignments []Assignment
	// Plans has one entry per platform core, ready for
	// mpsoc.Platform.SimulateSlot.
	Plans []mpsoc.CorePlan
	// CoresUsed counts cores with non-zero load.
	CoresUsed int
	// UserCores maps each admitted user to the number of distinct cores
	// its threads were assigned to. This is the per-session parallelism
	// the allocation actually planned, and what the serving loop passes
	// to the encoder as that session's tile-worker budget.
	UserCores map[int]int
	// DemandCores reports every candidate user's core demand as the
	// admission step saw it (Algorithm 2 line 1 for the content-aware
	// family; the thread count for the baseline's one-thread-per-core
	// rule). It covers rejected users too, so the serving loop's admission
	// ladder and service reports can explain *why* a user did not fit.
	DemandCores map[int]int
}

// DemandOf computes every candidate user's core demand (Algorithm 2
// line 1) without running admission or allocation: ceil(Σ_j T_fmax,j ·
// FPS) per user, never less than 1. It is the pre-admission load signal —
// the serving layer prices a session's threads through it to decide
// *where* a session should live before any allocator has seen it, and a
// shard's utilization is its queued sessions' demands over its cores.
func DemandOf(in Input) (map[int]int, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	out := make(map[int]int, len(in.Users))
	for _, u := range in.Users {
		out[u.User] = u.CoresNeeded(in.FPS)
	}
	return out, nil
}

// CoresOf returns the number of distinct cores assigned to a user,
// never less than 1 so it can be used directly as a worker budget.
func (r *Result) CoresOf(user int) int {
	if n := r.UserCores[user]; n > 1 {
		return n
	}
	return 1
}

// fillUserCores derives UserCores from the final thread assignments.
func (r *Result) fillUserCores() {
	r.UserCores = make(map[int]int, len(r.Admitted))
	seen := make(map[[2]int]bool, len(r.Assignments))
	for _, a := range r.Assignments {
		k := [2]int{a.Thread.User, a.Core}
		if !seen[k] {
			seen[k] = true
			r.UserCores[a.Thread.User]++
		}
	}
}

// Input bundles the allocation problem.
type Input struct {
	Platform *mpsoc.Platform
	// FPS defines the slot length 1/FPS.
	FPS float64
	// Users are the candidate sessions (the queue, possibly oversized).
	Users []UserDemand
}

// Validate reports input errors.
func (in Input) Validate() error {
	if in.Platform == nil {
		return fmt.Errorf("sched: nil platform")
	}
	if err := in.Platform.Validate(); err != nil {
		return err
	}
	if in.FPS <= 0 {
		return fmt.Errorf("sched: non-positive FPS %v", in.FPS)
	}
	seen := make(map[int]bool, len(in.Users))
	for _, u := range in.Users {
		if seen[u.User] {
			return fmt.Errorf("sched: duplicate user id %d", u.User)
		}
		seen[u.User] = true
		if len(u.Threads) == 0 {
			return fmt.Errorf("sched: user %d has no threads", u.User)
		}
		for _, th := range u.Threads {
			if th.TimeFmax < 0 {
				return fmt.Errorf("sched: user %d tile %d negative time", u.User, th.Tile)
			}
			if th.User != u.User {
				return fmt.Errorf("sched: thread user %d inside demand of user %d", th.User, u.User)
			}
		}
	}
	return nil
}

// slotOf returns the slot duration.
func (in Input) slotOf() time.Duration {
	return time.Duration(float64(time.Second) / in.FPS)
}

// AllocateContentAware runs Algorithm 2:
//
//  1. Compute each user's minimum core demand N_core^i (line 1).
//  2. Admit users in ascending order of demand until the platform's cores
//     are exhausted (line 2) — this maximizes the number of users served.
//  3. Allocate every admitted thread to a core minimizing the distance
//     |Cap − (Load_k + T_j)| where Cap is the running maximum core load
//     clamped to the slot (lines 3–15). Candidate cores are limited to the
//     admitted core budget N_core^U (line 4 iterates k = 1 : N_core^U) —
//     this is what densifies the packing onto the minimum number of cores
//     instead of balancing across the whole machine.
//  4. DVFS (lines 16–24): cores whose load fits the slot execute at fmax
//     and spend their slack at the minimum frequency; overloaded cores run
//     the whole slot at fmax and carry the residue into the next slot.
func AllocateContentAware(in Input) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	slot := in.slotOf()
	nc := in.Platform.Cores
	res := &Result{Plans: make([]mpsoc.CorePlan, nc)}

	// Admission (lines 1–2): ascending core demand; the pool comes back in
	// longest-processing-time order, which makes the distance-to-cap rule
	// deterministic and well balanced.
	pool, err := admitAscending(in, res)
	if err != nil {
		return nil, err
	}

	// Candidate core budget N_core^U (line 4): the sum of the admitted
	// users' core demands — allocation densifies onto these cores only.
	budget := 0
	for _, u := range in.Users {
		if containsID(res.Admitted, u.User) {
			budget += res.DemandCores[u.User]
		}
	}
	if budget < 1 {
		budget = 1
	}
	if budget > nc {
		budget = nc
	}

	// Thread allocation (lines 3–15).
	loads := make([]time.Duration, nc)
	for _, th := range pool {
		// Dynamic cap (lines 5–9).
		cap := loads[0]
		for _, l := range loads[1:budget] {
			if l > cap {
				cap = l
			}
		}
		if cap > slot {
			cap = slot
		}
		// Distance minimization (lines 10–12), preferring, on ties, the
		// lowest-numbered core.
		best, bestDist := -1, time.Duration(math.MaxInt64)
		for k := 0; k < budget; k++ {
			cand := loads[k] + th.TimeFmax
			dist := cand - cap
			if dist < 0 {
				dist = -dist
			}
			// Never overflow a core beyond the slot if an alternative
			// exists: overfull cores miss the frame deadline.
			if cand > slot {
				dist += cand - slot + slot // heavy penalty, still ordered
			}
			if dist < bestDist {
				best, bestDist = k, dist
			}
		}
		loads[best] += th.TimeFmax
		res.Assignments = append(res.Assignments, Assignment{Thread: th, Core: best})
	}

	// DVFS (lines 16–24).
	finalizeDVFS(in.Platform, loads, slot, res)
	return res, nil
}

// finalizeDVFS fills res.Plans, CoresUsed and UserCores from per-core
// loads following lines 16–24 of Algorithm 2: work executes at fmax, slack
// idles at fmin, and cores with no work at all are power-gated for the slot.
func finalizeDVFS(p *mpsoc.Platform, loads []time.Duration, slot time.Duration, res *Result) {
	res.fillUserCores()
	for k, load := range loads {
		plan := mpsoc.CorePlan{
			LoadAtFmax: load,
			BusyLevel:  p.MaxLevel(),
			IdleLevel:  p.MinLevel(),
		}
		if load > 0 {
			res.CoresUsed++
			if load < slot {
				// One switch down to fmin for the slack, one back up for
				// the next slot's work.
				plan.Transitions = 2
			}
		} else {
			plan.Gated = true
		}
		res.Plans[k] = plan
	}
}

// AllocateBaseline implements the allocation of [19] (Khan et al.): the
// workload-balancing tiler sizes each tile to fill one core's capacity, so
// exactly one thread runs per core, and all active cores operate at the
// maximum frequency for the whole slot (the baseline re-tiles only when
// every core is already pinned at the minimum or maximum frequency, so in
// the steady state of a saturated server its cores never leave fmax).
// Admission packs users while their thread counts fit the core budget.
func AllocateBaseline(in Input) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	nc := in.Platform.Cores
	res := &Result{Plans: make([]mpsoc.CorePlan, nc)}

	// Admit in ascending thread-count order (the analogue of line 2),
	// higher priority classes first — the same preemption-enabling order
	// admitAscending applies to the content-aware family.
	order := make([]int, len(in.Users))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ua, ub := in.Users[order[a]], in.Users[order[b]]
		if ua.Priority != ub.Priority {
			return ua.Priority > ub.Priority
		}
		da, db := len(ua.Threads), len(ub.Threads)
		if da != db {
			return da < db
		}
		return ua.User < ub.User
	})
	res.DemandCores = make(map[int]int, len(in.Users))
	for _, u := range in.Users {
		res.DemandCores[u.User] = len(u.Threads)
	}
	next := 0
	for _, idx := range order {
		u := in.Users[idx]
		if next+len(u.Threads) <= nc {
			res.Admitted = append(res.Admitted, u.User)
			for _, th := range u.Threads {
				res.Assignments = append(res.Assignments, Assignment{Thread: th, Core: next})
				res.Plans[next].LoadAtFmax += th.TimeFmax
				next++
			}
		} else {
			res.Rejected = append(res.Rejected, u.User)
		}
	}
	sort.Ints(res.Admitted)
	sort.Ints(res.Rejected)
	res.fillUserCores()

	for k := range res.Plans {
		res.Plans[k].BusyLevel = in.Platform.MaxLevel()
		// Active cores stay at fmax even while idle (the baseline's power
		// penalty); cores with no tile are power-gated — both approaches
		// may gate unused cores, so the comparison stays fair.
		if res.Plans[k].LoadAtFmax > 0 {
			res.Plans[k].IdleLevel = in.Platform.MaxLevel()
			res.CoresUsed++
		} else {
			res.Plans[k].IdleLevel = in.Platform.MinLevel()
			res.Plans[k].Gated = true
		}
	}
	return res, nil
}

// AllocateGreedyLeastLoaded is an ablation: same admission as Algorithm 2
// but threads always go to the least-loaded core, and the same DVFS rule
// applies. Differs from AllocateContentAware in spreading work across all
// cores instead of densifying — it uses more cores for the same load.
func AllocateGreedyLeastLoaded(in Input) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	slot := in.slotOf()
	nc := in.Platform.Cores
	res := &Result{Plans: make([]mpsoc.CorePlan, nc)}
	pool, err := admitAscending(in, res)
	if err != nil {
		return nil, err
	}
	loads := make([]time.Duration, nc)
	for _, th := range pool {
		best := 0
		for k := 1; k < nc; k++ {
			if loads[k] < loads[best] {
				best = k
			}
		}
		loads[best] += th.TimeFmax
		res.Assignments = append(res.Assignments, Assignment{Thread: th, Core: best})
	}
	finalizeDVFS(in.Platform, loads, slot, res)
	return res, nil
}

// AllocateRoundRobin is an ablation: admitted threads are dealt to cores
// cyclically with no load awareness.
func AllocateRoundRobin(in Input) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	slot := in.slotOf()
	nc := in.Platform.Cores
	res := &Result{Plans: make([]mpsoc.CorePlan, nc)}
	pool, err := admitAscending(in, res)
	if err != nil {
		return nil, err
	}
	loads := make([]time.Duration, nc)
	for i, th := range pool {
		k := i % nc
		loads[k] += th.TimeFmax
		res.Assignments = append(res.Assignments, Assignment{Thread: th, Core: k})
	}
	finalizeDVFS(in.Platform, loads, slot, res)
	return res, nil
}

// containsID reports membership in a small sorted id slice.
func containsID(ids []int, v int) bool {
	for _, x := range ids {
		if x == v {
			return true
		}
	}
	return false
}

// admitAscending shares Algorithm 2's admission step (ascending core
// demand, higher priority classes first) and returns the admitted thread
// pool in LPT order.
func admitAscending(in Input, res *Result) ([]Thread, error) {
	order := make([]int, len(in.Users))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ua, ub := in.Users[order[a]], in.Users[order[b]]
		if ua.Priority != ub.Priority {
			return ua.Priority > ub.Priority
		}
		da, db := ua.CoresNeeded(in.FPS), ub.CoresNeeded(in.FPS)
		if da != db {
			return da < db
		}
		return ua.User < ub.User
	})
	budget := in.Platform.Cores
	var pool []Thread
	res.DemandCores = make(map[int]int, len(in.Users))
	for _, u := range in.Users {
		res.DemandCores[u.User] = u.CoresNeeded(in.FPS)
	}
	for _, idx := range order {
		u := in.Users[idx]
		need := res.DemandCores[u.User]
		if need <= budget {
			budget -= need
			res.Admitted = append(res.Admitted, u.User)
			pool = append(pool, u.Threads...)
		} else {
			res.Rejected = append(res.Rejected, u.User)
		}
	}
	sort.Ints(res.Admitted)
	sort.Ints(res.Rejected)
	sort.SliceStable(pool, func(a, b int) bool {
		if pool[a].TimeFmax != pool[b].TimeFmax {
			return pool[a].TimeFmax > pool[b].TimeFmax
		}
		if pool[a].User != pool[b].User {
			return pool[a].User < pool[b].User
		}
		return pool[a].Tile < pool[b].Tile
	})
	return pool, nil
}
