package sched

import (
	"strings"
	"testing"
)

// TestDefaultRegistryHasBuiltins: the four paper policies are selectable
// by name and produce the same results as the functions they wrap.
func TestDefaultRegistryHasBuiltins(t *testing.T) {
	want := []string{NameBaseline, NameContentAware, NameGreedy, NameRoundRobin}
	got := Names()
	if len(got) < len(want) {
		t.Fatalf("Names() = %v, want at least %v", got, want)
	}
	for _, name := range want {
		fn, ok := Lookup(name)
		if !ok || fn == nil {
			t.Fatalf("built-in allocator %q not registered", name)
		}
	}
	in := input(demand(0, ms(4), ms(4), ms(4)))
	direct, err := AllocateContentAware(in)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := Lookup(NameContentAware)
	viaReg, err := fn(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaReg.Admitted) != len(direct.Admitted) || viaReg.CoresUsed != direct.CoresUsed {
		t.Fatalf("registry lookup returned a different policy: %+v vs %+v", viaReg, direct)
	}
}

// TestRegistryRejectsDuplicatesAndNils pins the registration contract.
func TestRegistryRejectsDuplicatesAndNils(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("x", "", AllocateContentAware); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("x", "", AllocateBaseline); err == nil {
		t.Fatal("duplicate registration allowed")
	}
	if err := r.Register("", "", AllocateBaseline); err == nil {
		t.Fatal("empty name allowed")
	}
	if err := r.Register("y", "", nil); err == nil {
		t.Fatal("nil allocator allowed")
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Fatal("Lookup found an unregistered name")
	}
	if _, err := r.MustLookup("missing"); err == nil || !strings.Contains(err.Error(), "x") {
		t.Fatalf("MustLookup error should name the known policies, got %v", err)
	}
}

// TestRegistryAllIsSortedAndDescribed: All() is deterministic and carries
// the descriptions CLIs print.
func TestRegistryAllIsSortedAndDescribed(t *testing.T) {
	entries := Default.All()
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Name >= entries[i].Name {
			t.Fatalf("All() not sorted: %q before %q", entries[i-1].Name, entries[i].Name)
		}
	}
	for _, e := range entries {
		if e.Description == "" {
			t.Fatalf("built-in %q has no description", e.Name)
		}
	}
}
