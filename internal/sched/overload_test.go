package sched

import (
	"testing"
	"time"

	"repro/internal/mpsoc"
)

func TestOverloadedCoreCarriesOverNotPanics(t *testing.T) {
	// A single admitted user whose threads exceed every core's slot: the
	// allocator must place all threads (the deadline slips, Algorithm 2
	// compensates in later slots via carry-over), and the simulator must
	// report the misses.
	in := input(demand(0, ms(60), ms(55)))
	res, err := AllocateContentAware(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Admitted) != 1 {
		// A user whose demand exceeds the whole platform would be
		// rejected; this one needs 3 cores and must be admitted.
		t.Fatalf("admitted = %v", res.Admitted)
	}
	if len(res.Assignments) != 2 {
		t.Fatalf("assignments = %d", len(res.Assignments))
	}
	slot := time.Second / 24
	rep, err := in.Platform.SimulateSlot(res.Plans, slot)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeadlineMisses == 0 {
		t.Fatal("60ms threads in a 41.7ms slot reported no misses")
	}
	var carried time.Duration
	for _, c := range rep.CarryOver {
		carried += c
	}
	if carried <= 0 {
		t.Fatal("no carry-over despite overload")
	}
}

func TestUserLargerThanPlatformRejected(t *testing.T) {
	// One user needing more cores than the machine has: rejected, and the
	// allocator still returns a valid (empty) plan.
	var ts []time.Duration
	for i := 0; i < 64; i++ {
		ts = append(ts, ms(40))
	}
	res, err := AllocateContentAware(input(demand(0, ts...)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Admitted) != 0 || len(res.Rejected) != 1 {
		t.Fatalf("admitted=%v rejected=%v", res.Admitted, res.Rejected)
	}
	if len(res.Assignments) != 0 {
		t.Fatal("assignments for a rejected user")
	}
	slot := time.Second / 24
	if _, err := mpsoc.XeonE5_2667V4().SimulateSlot(res.Plans, slot); err != nil {
		t.Fatal(err)
	}
}

func TestZeroTimeThreadsAllocatable(t *testing.T) {
	// Cold-start estimates can legitimately be zero after clamping; the
	// allocator must not divide by zero or reject.
	res, err := AllocateContentAware(input(demand(0, 0, 0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Admitted) != 1 || len(res.Assignments) != 3 {
		t.Fatalf("admitted=%v assignments=%d", res.Admitted, len(res.Assignments))
	}
}

func TestManySmallUsersExactFill(t *testing.T) {
	// 32 users of exactly one slot each: every core is filled, nothing
	// rejected, and the DVFS stage keeps all busy cores at fmax for the
	// full slot (no transitions).
	slot := time.Second / 24
	var users []UserDemand
	for i := 0; i < 32; i++ {
		users = append(users, demand(i, slot))
	}
	res, err := AllocateContentAware(input(users...))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Admitted) != 32 {
		t.Fatalf("admitted %d", len(res.Admitted))
	}
	if res.CoresUsed != 32 {
		t.Fatalf("cores used %d", res.CoresUsed)
	}
	for k, plan := range res.Plans {
		if plan.Transitions != 0 {
			t.Fatalf("core %d has DVFS transitions despite zero slack", k)
		}
	}
}
