// Package serve is the multi-platform front door of the transcoding
// service: a Fleet builds one core.Server shard per MPSoC platform
// (uniform via WithShards or heterogeneous via WithPlatforms), routes
// arriving sessions across them by consistent-hashing the session's
// workload class (so each shard's per-class LUTs stay warm) with a
// lowest-utilization fallback — or, with WithDemandPlacement, by
// pricing each session's core demand against the shards' free capacity
// — supervises every shard's serving loop — restarting a shard whose
// loop fails without disturbing the others — and streams telemetry to
// a pluggable Sink instead of accumulating a grow-forever report. The
// paper's scheduler manages one MPSoC; the Fleet is the layer that
// turns many of them into one service (DESIGN.md §8, §11).
package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/mpsoc"
	"repro/internal/sched"
	"repro/internal/tenancy"
	"repro/internal/workload"
)

// options collects the functional-option state.
type options struct {
	shards    int
	platforms []*mpsoc.Platform
	platform  *mpsoc.Platform
	fps       float64

	registry       *sched.Registry
	allocator      string
	shardAllocator map[int]string

	admission   core.AdmissionConfig
	calibration core.CalibrationConfig
	timeScale   float64
	tenancy     *tenancy.Registry

	autoscale *AutoscaleConfig
	rebalance *RebalanceConfig
	placement *PlacementConfig

	sink       Sink
	extraSinks []Sink
	roundHook  func(shard int, out *core.GOPOutcome)

	checkpointEvery int
	checkpoint      func(shard int, wires []*core.SessionWire)

	lutPath string

	capacity    int
	maxRestarts int
	replicas    int

	errs []error
}

// Option configures a Fleet.
type Option func(*options)

// WithShards sets the number of shards (default 1), each backed by a
// copy of the fleet's platform. Overridden by WithPlatforms.
func WithShards(n int) Option {
	return func(o *options) {
		if n < 1 {
			o.errs = append(o.errs, fmt.Errorf("serve: %d shards", n))
			return
		}
		o.shards = n
	}
}

// WithPlatform sets the platform prototype every shard runs on (default
// the paper's Xeon E5-2667v4). Each shard gets its own copy.
func WithPlatform(p *mpsoc.Platform) Option {
	return func(o *options) {
		if p == nil {
			o.errs = append(o.errs, errors.New("serve: nil platform"))
			return
		}
		o.platform = p
	}
}

// WithPlatforms gives every shard its own platform — a heterogeneous
// fleet. The slice length defines the shard count.
func WithPlatforms(ps ...*mpsoc.Platform) Option {
	return func(o *options) {
		if len(ps) == 0 {
			o.errs = append(o.errs, errors.New("serve: WithPlatforms with no platforms"))
			return
		}
		for i, p := range ps {
			if p == nil {
				o.errs = append(o.errs, fmt.Errorf("serve: nil platform for shard %d", i))
				return
			}
		}
		o.platforms = ps
	}
}

// WithFPS sets the service frame rate (default 24).
func WithFPS(fps float64) Option {
	return func(o *options) { o.fps = fps }
}

// WithAllocator selects the stage-D2 policy by registry name for every
// shard (default sched.NameContentAware).
func WithAllocator(name string) Option {
	return func(o *options) { o.allocator = name }
}

// WithShardAllocator overrides the allocator for one shard — a
// heterogeneous fleet can run the baseline policy on one platform and
// Algorithm 2 on the rest, or tests can install a failing policy.
func WithShardAllocator(shard int, name string) Option {
	return func(o *options) {
		if o.shardAllocator == nil {
			o.shardAllocator = make(map[int]string)
		}
		o.shardAllocator[shard] = name
	}
}

// WithRegistry resolves allocator names against r instead of
// sched.Default.
func WithRegistry(r *sched.Registry) Option {
	return func(o *options) {
		if r == nil {
			o.errs = append(o.errs, errors.New("serve: nil registry"))
			return
		}
		o.registry = r
	}
}

// WithAdmission enables/configures the overload admission ladder on
// every shard.
func WithAdmission(cfg core.AdmissionConfig) Option {
	return func(o *options) { o.admission = cfg }
}

// WithTenancy installs a tenant registry as the fleet's QoS policy
// (DESIGN.md §15): SubmitWith charges the submitting tenant's token
// bucket (over-rate submissions fail with tenancy.ErrRateLimited) and
// resolves its default priority class, and every shard's allocator
// apportions its platform's cores across the tenants it is serving in
// proportion to their registry weights before the per-session solve.
// Without the option every session belongs to the default tenant and
// the fleet behaves exactly as before.
func WithTenancy(reg *tenancy.Registry) Option {
	return func(o *options) {
		if reg == nil {
			o.errs = append(o.errs, errors.New("serve: nil tenancy registry"))
			return
		}
		o.tenancy = reg
	}
}

// WithCalibration enables/configures measurement-calibrated estimation
// on every shard.
func WithCalibration(cfg core.CalibrationConfig) Option {
	return func(o *options) { o.calibration = cfg }
}

// WithTimeScale sets the host-to-platform time calibration factor (see
// core.ServerConfig.TimeScale).
func WithTimeScale(scale float64) Option {
	return func(o *options) { o.timeScale = scale }
}

// WithSink streams the fleet's telemetry to s (see Sink for the delivery
// contract). Without a sink the fleet still aggregates per-shard
// ServiceReports into its Run result.
func WithSink(s Sink) Option {
	return func(o *options) { o.sink = s }
}

// WithMetrics streams the fleet's telemetry to an additional sink
// alongside WithSink — the wiring point for observability exporters
// (internal/metrics implements Sink but serve cannot import it without a
// cycle, so the option takes the interface). May be given more than
// once; every sink sees every event through one MultiSink fan-out, under
// the same serialized delivery contract.
func WithMetrics(s Sink) Option {
	return func(o *options) {
		if s == nil {
			o.errs = append(o.errs, errors.New("serve: nil metrics sink"))
			return
		}
		o.extraSinks = append(o.extraSinks, s)
	}
}

// WithRoundHook invokes fn after every settled shard round (after the
// sink saw the round's events), from that shard's serving goroutine. The
// hook may Submit sessions or Close the fleet — it is how churn-driven
// callers feed arrivals — but must not call serving methods.
func WithRoundHook(fn func(shard int, out *core.GOPOutcome)) Option {
	return func(o *options) { o.roundHook = fn }
}

// WithLUTStore persists the fleet's workload LUTs at path: if the file
// exists its store seeds every shard (a restarted fleet estimates from
// warm state), and a clean Run saves the merged shard stores back
// atomically. A missing file is not an error — the first run starts cold
// and creates it.
func WithLUTStore(path string) Option {
	return func(o *options) { o.lutPath = path }
}

// WithShardCapacity bounds each shard's live-session count for routing:
// a session whose home shard already holds n live sessions is routed to
// the least-loaded shard instead (0 = unbounded, the default — routing
// falls back only when a shard refuses the submission outright).
func WithShardCapacity(n int) Option {
	return func(o *options) { o.capacity = n }
}

// WithMaxRestarts bounds how many times Run restarts one shard's failed
// serving loop before giving the shard up and failing its sessions
// (default 1).
func WithMaxRestarts(n int) Option {
	return func(o *options) { o.maxRestarts = n }
}

// Fleet is the multi-shard serving front door. Build with New, feed with
// Submit, drive with Run, scale with Resize, stop with Close (drain) or
// context cancellation (abort).
//
// Concurrency: Submit, Close, Resize, Load, Loads, Shards, HomeShard and
// SaveLUTs are safe from any goroutine; Run must be called once at a
// time. Resize must not be called from a round hook or a sink — a shard
// being drained cannot wait for its own serving goroutine; give the
// autoscaler its own goroutine.
type Fleet struct {
	opts options
	// proto is the platform prototype shards added by Resize run on: the
	// WithPlatform argument, the first WithPlatforms entry, or the
	// default Xeon.
	proto *mpsoc.Platform
	// seed is the loaded WithLUTStore snapshot (nil without one); every
	// shard — including ones added later — starts from its own clone.
	seed *workload.Store

	// sinkMu serializes sink delivery fleet-wide (the Sink contract).
	sinkMu sync.Mutex

	// totalRounds counts settled rounds fleet-wide across the fleet's
	// lifetime — the autoscale schedule's clock.
	totalRounds atomic.Int64

	mu   sync.Mutex
	cond *sync.Cond // signals supervisor-count changes to Run
	ring *hashRing
	// shards only ever grows; a removed shard keeps its slot (indices
	// are stable identities in telemetry) with removed set.
	shards []*shardState
	// reports accumulates per-shard outcomes across supervisor
	// incarnations and resizes, keyed by shard index.
	reports map[int]*ShardReport
	// active counts live supervisor goroutines; Run returns at zero.
	active  int
	running bool
	closed  bool
	runCtx  context.Context
	// scaler is the live Run's autoscale loop (nil without WithAutoscale
	// or between runs); round dispatch ticks it.
	scaler *autoscaler
	// resizing marks an in-flight Resize; rebalancing counts in-flight
	// hot-shard sheds. They exclude each other: a new shed stands down
	// while resizing, and Resize waits for rebalancing to reach zero
	// (f.cond) before touching the membership — so a shed's target can
	// never drain away mid-handoff.
	resizing    bool
	rebalancing int
	// hotRuns counts each shard's consecutive hot rounds (WithRebalance
	// hysteresis).
	hotRuns map[int]int
	// shedMerged records which (target shard, class) LUT warm-handoffs
	// rebalancing already performed, for the fleet's lifetime: the
	// workload store merge is additive, so repeating it on every shed
	// would pile duplicate history into the target's estimates.
	shedMerged map[shedKey]bool
	// rebalanced counts session hops performed by hot-shard rebalancing.
	rebalanced int

	// resizeMu serializes Resize calls (a resize blocks until its
	// migrations land; overlapping resizes would fight over victims).
	resizeMu sync.Mutex
}

// shardState tracks one shard through the fleet's lifetime. All flags
// are guarded by Fleet.mu.
type shardState struct {
	index int
	srv   core.Shard
	// dead: the supervisor gave the shard up; routing skips it.
	dead bool
	// draining: a Resize is removing the shard; routing skips it, its
	// sessions are being handed to their new home shards.
	draining bool
	// removed: the drain finished; the shard is gone for good.
	removed bool
	// supervising: a supervisor goroutine currently owns the shard's
	// serving loop.
	supervising bool
	// migrated is closed exactly once, when the shard's drain completes
	// (or is abandoned by cancellation) — what Resize blocks on.
	migrated chan struct{}
	// pending holds callbacks scheduled by Fleet.OnNextRound, drained on
	// the shard's serving goroutine at the next round boundary — the safe
	// point for ExportSession/CheckpointSessions (guarded by Fleet.mu).
	pending []func(core.Shard)
}

// New validates the options and builds the fleet's shards.
func New(opts ...Option) (*Fleet, error) {
	o := options{
		shards:      1,
		fps:         24,
		allocator:   sched.NameContentAware,
		registry:    sched.Default,
		maxRestarts: 1,
		replicas:    RingReplicas,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if len(o.errs) > 0 {
		return nil, errors.Join(o.errs...)
	}
	if len(o.extraSinks) > 0 {
		sinks := o.extraSinks
		if o.sink != nil {
			sinks = append([]Sink{o.sink}, sinks...)
		}
		if len(sinks) == 1 {
			o.sink = sinks[0]
		} else {
			o.sink = MultiSink(sinks...)
		}
	}
	platforms := o.platforms
	if platforms == nil {
		proto := o.platform
		if proto == nil {
			proto = mpsoc.XeonE5_2667V4()
		}
		platforms = make([]*mpsoc.Platform, o.shards)
		for i := range platforms {
			platforms[i] = clonePlatform(proto)
		}
	}
	n := len(platforms)
	for shard := range o.shardAllocator {
		if shard < 0 || shard >= n {
			return nil, fmt.Errorf("serve: allocator override for shard %d of %d", shard, n)
		}
	}

	// A persisted LUT store seeds every shard with its own deep copy —
	// shards must not share mutable estimation state, or cross-shard lock
	// contention and nondeterministic calibration order would leak in.
	var seed *workload.Store
	if o.lutPath != "" {
		f, err := os.Open(o.lutPath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// First run: start cold, Save creates the file.
		case err != nil:
			return nil, fmt.Errorf("serve: open LUT store: %w", err)
		default:
			seed, err = workload.LoadStore(f)
			f.Close()
			if err != nil {
				return nil, err
			}
		}
	}

	if o.autoscale != nil {
		if err := validateAutoscale(o.autoscale, n); err != nil {
			return nil, err
		}
	}
	if o.rebalance != nil {
		if err := validateRebalance(o.rebalance); err != nil {
			return nil, err
		}
	}

	f := &Fleet{
		opts:       o,
		seed:       seed,
		ring:       newHashRing(seqMembers(n), o.replicas),
		reports:    make(map[int]*ShardReport),
		hotRuns:    make(map[int]int),
		shedMerged: make(map[shedKey]bool),
	}
	f.cond = sync.NewCond(&f.mu)
	f.proto = o.platform
	if f.proto == nil {
		if o.platforms != nil {
			f.proto = o.platforms[0]
		} else {
			f.proto = mpsoc.XeonE5_2667V4()
		}
	}
	for i := 0; i < n; i++ {
		name := o.allocator
		if over, ok := o.shardAllocator[i]; ok {
			name = over
		}
		shard, err := f.newShardState(i, platforms[i], name)
		if err != nil {
			return nil, err
		}
		f.shards = append(f.shards, shard)
	}
	return f, nil
}

// newShardState builds one shard: a core.Server on the given platform
// with the fleet's configuration and the telemetry hooks wired to the
// sink dispatch.
func (f *Fleet) newShardState(index int, platform *mpsoc.Platform, allocName string) (*shardState, error) {
	alloc, err := f.opts.registry.MustLookup(allocName)
	if err != nil {
		return nil, err
	}
	var store *workload.Store
	if f.seed != nil {
		store = f.seed.Clone()
	}
	shard := &shardState{index: index, migrated: make(chan struct{})}
	srv, err := core.NewServer(core.ServerConfig{
		Platform:    platform,
		FPS:         f.opts.fps,
		Allocator:   core.AllocatorFunc(alloc),
		TimeScale:   f.opts.timeScale,
		Calibration: f.opts.calibration,
		Admission:   f.opts.admission,
		Tenancy:     f.opts.tenancy,
		Store:       store,
		OnRound: func(out *core.GOPOutcome) {
			f.dispatchRound(shard, out)
			// Control loop: the round boundary is the safe point for a hot
			// shard to shed (every session at a GOP boundary, this very
			// goroutine the only one serving them), and the tick feeding
			// the autoscaler's own goroutine.
			f.maybeRebalance(shard)
			f.tickRound()
			if f.opts.roundHook != nil {
				f.opts.roundHook(shard.index, out)
			}
			// Scheduled round-boundary work (Fleet.OnNextRound): runs on
			// this serving goroutine, where ExportSession and
			// CheckpointSessions are legal mid-Run.
			f.mu.Lock()
			fns := shard.pending
			shard.pending = nil
			f.mu.Unlock()
			for _, fn := range fns {
				fn(shard.srv)
			}
			if f.opts.checkpoint != nil && out.Round%f.opts.checkpointEvery == 0 {
				if wires, err := shard.srv.CheckpointSessions(); err == nil {
					f.opts.checkpoint(shard.index, wires)
				}
			}
		},
		OnSessionState: func(id int, state core.SessionState, err error) {
			f.dispatchState(shard.index, id, state, err)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("serve: shard %d: %w", index, err)
	}
	shard.srv = srv
	return shard, nil
}

// clonePlatform copies a platform so shards never share mutable state.
func clonePlatform(p *mpsoc.Platform) *mpsoc.Platform {
	cp := *p
	cp.Levels = append([]mpsoc.FreqLevel(nil), p.Levels...)
	return &cp
}

// routable reports whether the shard accepts routed sessions.
func (s *shardState) routable() bool { return !s.dead && !s.draining && !s.removed }

// liveCountLocked counts the routable shards. Callers hold f.mu.
func (f *Fleet) liveCountLocked() int {
	n := 0
	for _, s := range f.shards {
		if s.routable() {
			n++
		}
	}
	return n
}

// rebuildRingLocked rebuilds the consistent-hash ring over the routable
// shards. Callers hold f.mu.
func (f *Fleet) rebuildRingLocked() {
	var members []int
	for _, s := range f.shards {
		if s.routable() {
			members = append(members, s.index)
		}
	}
	f.ring = newHashRing(members, f.opts.replicas)
}

// Shards returns the number of live (routable) shards.
func (f *Fleet) Shards() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.liveCountLocked()
}

// HomeShard returns the shard the consistent-hash ring currently assigns
// a workload class to (before load-based fallback); -1 when no shard is
// routable.
func (f *Fleet) HomeShard(class string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ring.shardFor(class)
}

// Loads reports every shard's load report, indexed by shard index. A
// shard that is gone (removed, draining or given up) reports the zero
// report with Alive false — dead shards are explicit, and every consumer
// (autoscale, rebalance, tests) excludes them from fleet means instead of
// special-casing a sentinel. This is the window into per-shard load
// without reaching into shard internals.
func (f *Fleet) Loads() []core.LoadReport {
	f.mu.Lock()
	shards := append([]*shardState(nil), f.shards...)
	routable := make([]bool, len(shards))
	for i, s := range shards {
		routable[i] = s.routable()
	}
	f.mu.Unlock()
	out := make([]core.LoadReport, len(shards))
	for i, s := range shards {
		if !routable[i] {
			continue // zero report, Alive false
		}
		out[i] = s.srv.LoadReport()
	}
	return out
}

// Placement identifies where a submitted session landed.
type Placement struct {
	// Shard is the index of the shard serving the session.
	Shard int
	// Session is the shard-local session (ids are shard-local too).
	Session *core.Session
}

// SubmitRequest is the one submission envelope of the service front
// door: the video source, its session configuration, and the QoS
// identity — which tenant the session bills to and what priority class
// it competes at. The zero values mean "the default tenant, best
// effort", so SubmitRequest{Source: src, Config: cfg} is exactly the
// old two-argument Submit.
type SubmitRequest struct {
	// Source is the session's frame source (required).
	Source core.FrameSource
	// Config is the session's encoding configuration.
	Config core.SessionConfig
	// Tenant is the submitting tenant's id ("" or tenancy.DefaultID for
	// the default tenant). With WithTenancy, admission is charged to
	// this tenant's token bucket and its registry weight shapes its
	// core share on every shard.
	Tenant string
	// Priority is the session's priority class (0 = best effort; higher
	// admits first and preempts lower classes under overload). With
	// WithTenancy, 0 is resolved to the tenant's registered default.
	Priority int
}

// Submit routes a session to its class's home shard for the default
// tenant at best-effort priority — the historical two-argument front
// door, kept for callers that predate multi-tenant QoS.
//
// Deprecated: use SubmitWith, which carries the tenant id and priority
// class in a SubmitRequest. Submit(src, cfg) is exactly
// SubmitWith(SubmitRequest{Source: src, Config: cfg}).
func (f *Fleet) Submit(src core.FrameSource, cfg core.SessionConfig) (Placement, error) {
	return f.SubmitWith(SubmitRequest{Source: src, Config: cfg})
}

// SubmitWith routes a session to its class's home shard, falling back to
// the lowest-utilization shard when the home shard is saturated
// (WithShardCapacity), dead, draining, or refuses the submission. With
// WithDemandPlacement the session's estimated core demand steers the
// order instead (see placeOrder) and rides into the landing shard's
// LoadReport as the session's demand hint. With WithTenancy the
// request's tenant is charged one token first — an over-rate tenant's
// submission fails with tenancy.ErrRateLimited before any shard is
// touched — and the session competes at its resolved priority on the
// landing shard. Safe from any goroutine, including round hooks — but
// not from Sink methods, which run under the sink dispatch lock that
// SubmitWith's own state notification needs (see the Sink contract).
// Fails when every shard refuses.
func (f *Fleet) SubmitWith(req SubmitRequest) (Placement, error) {
	src := req.Source
	if src == nil {
		return Placement{}, errors.New("serve: nil frame source")
	}
	priority := req.Priority
	if f.opts.tenancy != nil {
		if err := f.opts.tenancy.Admit(req.Tenant); err != nil {
			return Placement{}, fmt.Errorf("serve: submit: %w", err)
		}
		priority = f.opts.tenancy.Priority(req.Tenant, req.Priority)
	}
	cfg := req.Config
	demand := f.estimateDemand(src)
	if demand > 0 && cfg.DemandHint == 0 {
		cfg.DemandHint = demand
	}
	f.mu.Lock()
	home := f.ring.shardFor(src.Class())
	f.mu.Unlock()
	opts := core.SubmitOptions{Tenant: req.Tenant, Priority: priority}
	var lastErr error
	for _, si := range f.placeOrder(home, demand) {
		sess, err := f.shardAt(si).srv.SubmitWith(src, cfg, opts)
		if err == nil {
			e := PlacementEvent{
				Shard:       si,
				Home:        home,
				Session:     sess.ID,
				Class:       src.Class(),
				DemandCores: demand,
				Tenant:      req.Tenant,
				Priority:    priority,
			}
			if e.DemandCores < 1 {
				e.DemandCores = 1
			}
			f.dispatchPlaced(e)
			return Placement{Shard: si, Session: sess}, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errors.New("serve: no live shard")
	}
	return Placement{}, fmt.Errorf("serve: submit: %w", lastErr)
}

// shardAt returns the shard with the given index.
func (f *Fleet) shardAt(i int) *shardState {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.shards[i]
}

// routeOrder returns the shard indices to try for a session with no
// demand estimate: the home shard first — unless it is unroutable or at
// capacity — then the remaining routable shards in ascending
// (utilization, sessions, index) order.
func (f *Fleet) routeOrder(home int) []int {
	return f.placeOrder(home, 0)
}

// Close closes every shard's arrival queue: no further Submit succeeds
// and Run returns once the submitted sessions drain. Shards added by a
// later Resize are born closed. Safe to call from any goroutine, more
// than once.
func (f *Fleet) Close() {
	f.mu.Lock()
	f.closed = true
	shards := append([]*shardState(nil), f.shards...)
	f.mu.Unlock()
	for _, s := range shards {
		s.srv.Close()
	}
}

// ShardReport is one shard's outcome of a fleet Run.
type ShardReport struct {
	Shard int
	// Report merges the shard's service reports across restarts: counters
	// and outcomes accumulate; the terminal-state lists are the final
	// snapshot.
	Report *core.ServiceReport
	// Restarts counts serving-loop restarts the supervisor performed.
	Restarts int
	// Err is the terminal serving error of a shard that was given up (nil
	// for a clean drain, a removal, or cancellation).
	Err error
	// Aborted lists the sessions failed by the give-up (ascending).
	Aborted []int
}

// Report aggregates a fleet Run.
type Report struct {
	Shards []ShardReport
	// Fleet-wide aggregates over all shards. Submitted counts unique
	// sessions: one that migrated between shards is submitted once, no
	// matter how many shards served it.
	Rounds    int
	Submitted int
	Completed int
	Rejected  int
	Failed    int
	// Migrated counts session migration hops (resize drains and hot-shard
	// rebalances); Rebalanced counts the subset performed by WithRebalance.
	Migrated      int
	Rebalanced    int
	FramesEncoded int
	GOPReports    int
	Energy        mpsoc.Totals
}

// Run supervises every shard's serving loop until all drain (after
// Close), the context is cancelled, or the shards die. A shard whose
// loop returns an error is restarted in place — its sessions and LUTs
// survive, the other shards never notice — up to WithMaxRestarts times;
// past that the shard is given up: its queue closes, its unserved
// sessions fail (the sink sees each failure), and the rest of the fleet
// keeps serving. Resize adds supervisors for grown shards and retires
// the drained ones mid-flight. Run returns the aggregated report with
// ctx.Err() after cancellation, an error when every shard died, and nil
// otherwise (check ShardReport.Err for partial failures). With
// WithLUTStore, a Run that ends without cancellation saves the merged
// LUT store.
func (f *Fleet) Run(ctx context.Context) (*Report, error) {
	f.mu.Lock()
	if f.running {
		f.mu.Unlock()
		return nil, errors.New("serve: Run already active")
	}
	f.running = true
	f.runCtx = ctx
	if f.opts.autoscale != nil {
		f.scaler = newAutoscaler(f, *f.opts.autoscale)
	}
	scaler := f.scaler
	for _, s := range f.shards {
		if s.routable() && !s.supervising {
			f.startSupervisorLocked(ctx, s)
		}
	}
	for f.active > 0 {
		f.cond.Wait()
	}
	f.running = false
	f.runCtx = nil
	f.scaler = nil
	f.mu.Unlock()
	if scaler != nil {
		// Stop the scaling loop and let an in-flight resize land before
		// the report is snapshotted.
		scaler.stop()
	}
	f.mu.Lock()
	reports := make([]ShardReport, len(f.shards))
	removed := 0
	for i, s := range f.shards {
		if r := f.reports[i]; r != nil {
			reports[i] = *r
		} else {
			reports[i] = ShardReport{Shard: i}
		}
		if s.removed {
			removed++
		}
	}
	rebalanced := f.rebalanced
	f.mu.Unlock()

	rep := &Report{Shards: reports, Rebalanced: rebalanced}
	deadShards := 0
	for _, sr := range reports {
		if sr.Err != nil {
			deadShards++
		}
		if sr.Report == nil {
			continue
		}
		rep.Rounds += sr.Report.Rounds
		rep.Submitted += sr.Report.Submitted - sr.Report.Imported
		rep.Completed += len(sr.Report.Completed)
		rep.Rejected += len(sr.Report.Rejected)
		rep.Failed += len(sr.Report.Failed)
		rep.Migrated += len(sr.Report.Migrated)
		rep.FramesEncoded += sr.Report.FramesEncoded
		rep.GOPReports += sr.Report.GOPReports
		addTotals(&rep.Energy, sr.Report.Energy)
	}
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	if f.opts.lutPath != "" {
		if err := f.SaveLUTs(); err != nil {
			return rep, err
		}
	}
	// "Every shard died" is judged over the shards that could still
	// serve: slots retired by a clean Resize drain don't count either way.
	if serving := len(reports) - removed; deadShards == serving && serving > 0 {
		first := error(nil)
		for _, sr := range reports {
			if sr.Err != nil {
				first = sr.Err
				break
			}
		}
		return rep, fmt.Errorf("serve: all %d serving shards failed, first: %w", deadShards, first)
	}
	return rep, nil
}

// startSupervisorLocked launches the supervisor goroutine for one shard.
// Callers hold f.mu.
func (f *Fleet) startSupervisorLocked(ctx context.Context, s *shardState) {
	s.supervising = true
	f.active++
	go func() {
		for {
			sr := f.supervise(ctx, s)
			f.mu.Lock()
			f.mergeReportLocked(sr)
			// Exit when the shard is finished — but not while it is
			// draining un-removed (the next supervise pass completes the
			// drain), and not when sessions slipped into the queue while
			// the loop was stopping (an Import racing a clean close; the
			// next pass serves them).
			exit := s.dead || s.removed || ctx.Err() != nil ||
				(!s.draining && s.srv.LoadReport().Sessions == 0)
			release := exit && s.draining && !s.removed
			if exit {
				s.supervising = false
				f.active--
				f.cond.Broadcast()
			}
			f.mu.Unlock()
			if release {
				// An abnormal exit (give-up, cancellation) on a draining
				// shard: unblock the Resize waiting for the drain.
				f.markRemoved(s)
			}
			if exit {
				return
			}
		}
	}()
}

// mergeReportLocked folds one supervisor pass's report into the shard's
// accumulated report. Callers hold f.mu.
func (f *Fleet) mergeReportLocked(sr ShardReport) {
	dst := f.reports[sr.Shard]
	if dst == nil {
		cp := sr
		f.reports[sr.Shard] = &cp
		return
	}
	mergeServiceReport(dst, sr.Report)
	dst.Restarts += sr.Restarts
	if sr.Err != nil {
		dst.Err = sr.Err
	}
	dst.Aborted = append(dst.Aborted, sr.Aborted...)
}

// supervise drives one shard's serving loop with restart-on-error and
// drain handling.
func (f *Fleet) supervise(ctx context.Context, s *shardState) ShardReport {
	sr := ShardReport{Shard: s.index}
	for {
		rep, err := s.srv.Run(ctx)
		mergeServiceReport(&sr, rep)
		if f.isDrainingShard(s) {
			// A Resize is removing this shard: migrate its sessions and
			// retire it, whatever the loop returned.
			f.finishDrain(s, &sr, ctx)
			return sr
		}
		switch {
		case err == nil:
			return sr
		case ctx.Err() != nil:
			// Cancellation is fleet-wide, not a shard fault.
			return sr
		case sr.Restarts < f.opts.maxRestarts:
			sr.Restarts++
		default:
			// Give the shard up: stop accepting arrivals, fail what
			// cannot be served, let the rest of the fleet carry on.
			f.mu.Lock()
			s.dead = true
			f.mu.Unlock()
			s.srv.Close()
			sr.Err = fmt.Errorf("serve: shard %d gave up after %d restarts: %w", s.index, sr.Restarts, err)
			if ids, aerr := s.srv.Abort(sr.Err); aerr == nil {
				sr.Aborted = ids
			}
			// The abort flipped queued sessions to failed after the last
			// report snapshot; refresh the terminal lists from the live
			// states so the shard report tells the truth.
			refreshStates(&sr, s.srv)
			return sr
		}
	}
}

// isDrainingShard reads the shard's draining flag.
func (f *Fleet) isDrainingShard(s *shardState) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return s.draining
}

// markRemoved retires a draining shard, closing its migrated channel
// exactly once (what Resize blocks on).
func (f *Fleet) markRemoved(s *shardState) {
	f.mu.Lock()
	already := s.removed
	s.removed = true
	f.mu.Unlock()
	if !already {
		close(s.migrated)
	}
}

// finishDrain completes a shard's removal: exports its sessions at the
// GOP boundary the drained loop stopped on, hands the per-class
// estimation LUTs to each class's new home, imports every session into
// its new shard (home first, least-loaded fallback), and retires the
// shard. Runs on the shard's supervisor goroutine while the fleet is
// running, or on the Resize caller's goroutine otherwise — never both.
func (f *Fleet) finishDrain(s *shardState, sr *ShardReport, ctx context.Context) {
	if ctx != nil && ctx.Err() != nil {
		// The fleet is being cancelled: nobody is left to serve a
		// migrated session, so just retire the shard.
		f.markRemoved(s)
		return
	}
	snaps, err := s.srv.ExportSessions()
	if err != nil {
		// Unexportable sessions (mid-GOP strays after a cancelled Run, or
		// a racing serving loop): fail them loudly rather than stranding
		// them in a shard that is going away.
		if ids, aerr := s.srv.Abort(fmt.Errorf("serve: shard %d drain: %w", s.index, err)); aerr == nil {
			sr.Aborted = append(sr.Aborted, ids...)
		}
	}

	// Hand the donor's estimation state to each class's new home before
	// the sessions land there, so their first post-migration round
	// estimates from the donor's calibrated LUTs instead of cold tables.
	donor := s.srv.Store()
	for _, class := range donor.Classes() {
		if ti := f.HomeShard(class); ti >= 0 {
			f.shardAt(ti).srv.Store().MergeClass(donor, class)
		}
	}

	targets := make(map[int]bool)
	for _, snap := range snaps {
		placed := false
		for _, ti := range f.routeOrder(f.HomeShard(snap.Class)) {
			if ti == s.index {
				continue
			}
			sess, ierr := f.shardAt(ti).srv.Import(snap)
			if ierr != nil {
				continue
			}
			f.dispatchMigration(MigrationEvent{
				FromShard:   s.index,
				FromSession: snap.DonorID,
				ToShard:     ti,
				ToSession:   sess.ID,
				Class:       snap.Class,
				Frame:       snap.Frame,
				Tenant:      snap.Tenant,
			})
			targets[ti] = true
			placed = true
			break
		}
		if !placed {
			_ = s.srv.FailSession(snap.DonorID, fmt.Errorf(
				"serve: no shard would adopt session %d migrating off shard %d", snap.DonorID, s.index))
		}
	}

	// Wake or revive the adopters: a target whose supervisor already
	// returned (a closed fleet drains shards as they empty) gets a fresh
	// one so the imported sessions are served.
	f.mu.Lock()
	for ti := range targets {
		t := f.shards[ti]
		if f.running && t.routable() && !t.supervising {
			f.startSupervisorLocked(f.runCtx, t)
		}
	}
	// The draining shard already left the routable set when the Resize
	// marked it, so the live count needs no adjustment.
	live := f.liveCountLocked()
	f.mu.Unlock()

	// Export and failure happened after the drained Run's finalize;
	// refresh the terminal lists so the shard report tells the truth.
	refreshStates(sr, s.srv)
	f.dispatchShardRemoved(ShardEvent{Shard: s.index, Live: live})
	f.markRemoved(s)
}

// Resize grows or shrinks the fleet to n live shards, while Run is live
// or between runs. Growing builds fresh shards on copies of the fleet's
// prototype platform and splices them into the consistent-hash ring:
// only the classes whose arc the new shards take over move home (their
// LUT state is copied across so they stay warm); everything else keeps
// serving undisturbed, and new supervisors join a live Run. Shrinking
// removes the highest-indexed live shards: each victim leaves the ring
// (new arrivals route around it), drains at the next GOP boundary, and
// hands its live sessions — with their admission-ladder state and their
// classes' calibrated LUTs — to their new home shards; Resize returns
// once every victim's sessions have landed. Zero frames are lost and a
// migrated session's bitstream continues bit-identically.
//
// Resize must not be called from a round hook or a sink: draining a
// shard waits for that shard's serving goroutine, which is the goroutine
// hooks run on. Call it from its own goroutine (an autoscaler loop).
func (f *Fleet) Resize(n int) error {
	if n < 1 {
		return fmt.Errorf("serve: resize to %d shards", n)
	}
	f.resizeMu.Lock()
	defer f.resizeMu.Unlock()

	f.mu.Lock()
	// Exclude hot-shard rebalancing: new sheds stand down once resizing
	// is set, and the membership is not touched until in-flight sheds
	// land — their import targets must not drain away under them.
	f.resizing = true
	for f.rebalancing > 0 {
		f.cond.Wait()
	}
	defer func() {
		f.mu.Lock()
		f.resizing = false
		f.mu.Unlock()
	}()
	var live []*shardState
	for _, s := range f.shards {
		if s.routable() {
			live = append(live, s)
		}
	}
	delta := n - len(live)
	if delta == 0 {
		f.mu.Unlock()
		return nil
	}

	if delta > 0 {
		start := len(f.shards)
		added := make([]*shardState, 0, delta)
		for i := 0; i < delta; i++ {
			st, err := f.newShardState(start+i, clonePlatform(f.proto), f.opts.allocator)
			if err != nil {
				f.mu.Unlock()
				return err
			}
			added = append(added, st)
		}
		f.shards = append(f.shards, added...)
		f.rebuildRingLocked()
		// Warm handoff for the classes that moved: copy each such class's
		// LUT from its old home into the new shard, so routing's promise —
		// resizes keep the LUTs warm — holds for the moved classes too.
		for _, st := range added {
			for _, os := range live {
				for _, class := range os.srv.Store().Classes() {
					if f.ring.shardFor(class) == st.index {
						st.srv.Store().MergeClass(os.srv.Store(), class)
					}
				}
			}
		}
		closed := f.closed
		if f.running {
			for _, st := range added {
				f.startSupervisorLocked(f.runCtx, st)
			}
		}
		liveN := f.liveCountLocked()
		f.mu.Unlock()
		if closed {
			for _, st := range added {
				st.srv.Close()
			}
		}
		for _, st := range added {
			f.dispatchShardAdded(ShardEvent{Shard: st.index, Live: liveN})
		}
		return nil
	}

	// Shrink: retire the highest-indexed live shards.
	sort.Slice(live, func(a, b int) bool { return live[a].index > live[b].index })
	victims := live[:-delta]
	for _, v := range victims {
		v.draining = true
	}
	f.rebuildRingLocked()
	supervised := make(map[*shardState]bool, len(victims))
	for _, v := range victims {
		supervised[v] = v.supervising
	}
	f.mu.Unlock()

	for _, v := range victims {
		// Seal the victim against stragglers (migration Imports bypass
		// Close) and stop its loop at the next GOP boundary.
		v.srv.Close()
		v.srv.Drain()
		if supervised[v] {
			// The victim's supervisor completes the drain and migration.
			<-v.migrated
		} else {
			sr := ShardReport{Shard: v.index}
			f.finishDrain(v, &sr, nil)
			f.mu.Lock()
			f.mergeReportLocked(sr)
			f.mu.Unlock()
		}
	}
	return nil
}

// mergeServiceReport folds one Run's report into the shard report:
// counters and outcomes accumulate across restarts, the terminal-state
// snapshot is replaced by the newer one.
func mergeServiceReport(sr *ShardReport, rep *core.ServiceReport) {
	if rep == nil {
		return
	}
	if sr.Report == nil {
		sr.Report = rep
		return
	}
	dst := sr.Report
	dst.Rounds += rep.Rounds
	dst.FramesEncoded += rep.FramesEncoded
	dst.GOPReports += rep.GOPReports
	dst.Outcomes = append(dst.Outcomes, rep.Outcomes...)
	addTotals(&dst.Energy, rep.Energy)
	dst.Submitted = rep.Submitted
	dst.Imported = rep.Imported
	dst.Completed = rep.Completed
	dst.Rejected = rep.Rejected
	dst.Failed = rep.Failed
	dst.Migrated = rep.Migrated
	dst.Errors = rep.Errors
}

// refreshStates re-derives the session counts and terminal-state lists
// from the shard's live session states (after an Abort or a migration,
// both of which land after the last Run's finalize — or on a shard that
// was drained before it ever ran).
func refreshStates(sr *ShardReport, srv core.Shard) {
	if sr.Report == nil {
		sr.Report = &core.ServiceReport{}
	}
	rep := sr.Report
	rep.Completed, rep.Rejected, rep.Failed, rep.Migrated = nil, nil, nil, nil
	rep.Submitted = 0
	rep.Imported = srv.Imported()
	for id := 0; ; id++ {
		st, ok := srv.StateOf(id)
		if !ok {
			break
		}
		rep.Submitted++
		switch st {
		case core.StateCompleted:
			rep.Completed = append(rep.Completed, id)
		case core.StateRejected:
			rep.Rejected = append(rep.Rejected, id)
		case core.StateFailed:
			rep.Failed = append(rep.Failed, id)
		case core.StateMigrated:
			rep.Migrated = append(rep.Migrated, id)
		}
	}
}

// addTotals folds one mpsoc.Totals into another.
func addTotals(dst *mpsoc.Totals, src mpsoc.Totals) {
	dst.Slots += src.Slots
	dst.Time += src.Time
	dst.EnergyJ += src.EnergyJ
	if src.PeakPowerW > dst.PeakPowerW {
		dst.PeakPowerW = src.PeakPowerW
	}
	dst.DeadlineMisses += src.DeadlineMisses
	dst.CarryOver += src.CarryOver
}

// SaveLUTs merges every shard's workload store and writes it atomically
// to the WithLUTStore path. Without a configured path it is a no-op.
func (f *Fleet) SaveLUTs() error {
	if f.opts.lutPath == "" {
		return nil
	}
	merged := workload.NewStore()
	f.mu.Lock()
	shards := append([]*shardState(nil), f.shards...)
	f.mu.Unlock()
	for _, s := range shards {
		merged.Merge(s.srv.Store())
	}
	tmp, err := os.CreateTemp(filepath.Dir(f.opts.lutPath), ".luts-*")
	if err != nil {
		return fmt.Errorf("serve: save LUT store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := merged.Save(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: save LUT store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: save LUT store: %w", err)
	}
	if err := os.Rename(tmp.Name(), f.opts.lutPath); err != nil {
		return fmt.Errorf("serve: save LUT store: %w", err)
	}
	return nil
}

// Load reports the fleet-wide live-session count (the sum of the alive
// shards' queue depths).
func (f *Fleet) Load() int {
	n := 0
	for _, r := range f.Loads() {
		if r.Alive {
			n += r.Sessions
		}
	}
	return n
}

// dispatchState delivers a session lifecycle event to the sink.
func (f *Fleet) dispatchState(shard, id int, state core.SessionState, err error) {
	if f.opts.sink == nil {
		return
	}
	f.sinkMu.Lock()
	defer f.sinkMu.Unlock()
	f.opts.sink.OnSessionStateChange(SessionEvent{Shard: shard, Session: id, State: state, Err: err})
}

// dispatchRound delivers a settled round to the sink: per-session GOPs
// in ascending id, then the round metrics carrying the shard's load
// report as of the settlement.
func (f *Fleet) dispatchRound(s *shardState, out *core.GOPOutcome) {
	if f.opts.sink == nil {
		return
	}
	load := s.srv.LoadReport()
	f.sinkMu.Lock()
	defer f.sinkMu.Unlock()
	ids := make([]int, 0, len(out.GOPs))
	for id := range out.GOPs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		f.opts.sink.OnGOP(GOPEvent{Shard: s.index, Session: id, Round: out.Round, GOP: out.GOPs[id]})
	}
	f.opts.sink.OnRoundMetrics(RoundEvent{Shard: s.index, Outcome: out, Load: load})
}

// dispatchPlaced delivers a session-placement decision to the sink.
func (f *Fleet) dispatchPlaced(e PlacementEvent) {
	if f.opts.sink == nil {
		return
	}
	f.sinkMu.Lock()
	defer f.sinkMu.Unlock()
	f.opts.sink.OnSessionPlaced(e)
}

// tickRound advances the fleet-wide settled-round counter and feeds the
// live autoscale loop. Called from serving goroutines (the OnRound wire).
func (f *Fleet) tickRound() {
	rounds := int(f.totalRounds.Add(1))
	f.mu.Lock()
	sc := f.scaler
	f.mu.Unlock()
	if sc != nil {
		sc.tick(rounds)
	}
}

// dispatchMigration delivers a session-migration event to the sink.
func (f *Fleet) dispatchMigration(e MigrationEvent) {
	if f.opts.sink == nil {
		return
	}
	f.sinkMu.Lock()
	defer f.sinkMu.Unlock()
	f.opts.sink.OnSessionMigrated(e)
}

// dispatchShardAdded delivers a shard-added event to the sink.
func (f *Fleet) dispatchShardAdded(e ShardEvent) {
	if f.opts.sink == nil {
		return
	}
	f.sinkMu.Lock()
	defer f.sinkMu.Unlock()
	f.opts.sink.OnShardAdded(e)
}

// dispatchShardRemoved delivers a shard-removed event to the sink.
func (f *Fleet) dispatchShardRemoved(e ShardEvent) {
	if f.opts.sink == nil {
		return
	}
	f.sinkMu.Lock()
	defer f.sinkMu.Unlock()
	f.opts.sink.OnShardRemoved(e)
}
