// Package serve is the multi-platform front door of the transcoding
// service: a Fleet builds one core.Server shard per MPSoC platform,
// routes arriving sessions across them by consistent-hashing the
// session's workload class (so each shard's per-class LUTs stay warm)
// with a least-loaded fallback, supervises every shard's serving loop —
// restarting a shard whose loop fails without disturbing the others —
// and streams telemetry to a pluggable Sink instead of accumulating a
// grow-forever report. The paper's scheduler manages one MPSoC; the
// Fleet is the layer that turns many of them into one service
// (DESIGN.md §8).
package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/mpsoc"
	"repro/internal/sched"
	"repro/internal/workload"
)

// options collects the functional-option state.
type options struct {
	shards    int
	platforms []*mpsoc.Platform
	platform  *mpsoc.Platform
	fps       float64

	registry       *sched.Registry
	allocator      string
	shardAllocator map[int]string

	admission   core.AdmissionConfig
	calibration core.CalibrationConfig
	timeScale   float64

	sink      Sink
	roundHook func(shard int, out *core.GOPOutcome)

	lutPath string

	capacity    int
	maxRestarts int
	replicas    int

	errs []error
}

// Option configures a Fleet.
type Option func(*options)

// WithShards sets the number of shards (default 1), each backed by a
// copy of the fleet's platform. Overridden by WithPlatforms.
func WithShards(n int) Option {
	return func(o *options) {
		if n < 1 {
			o.errs = append(o.errs, fmt.Errorf("serve: %d shards", n))
			return
		}
		o.shards = n
	}
}

// WithPlatform sets the platform prototype every shard runs on (default
// the paper's Xeon E5-2667v4). Each shard gets its own copy.
func WithPlatform(p *mpsoc.Platform) Option {
	return func(o *options) {
		if p == nil {
			o.errs = append(o.errs, errors.New("serve: nil platform"))
			return
		}
		o.platform = p
	}
}

// WithPlatforms gives every shard its own platform — a heterogeneous
// fleet. The slice length defines the shard count.
func WithPlatforms(ps ...*mpsoc.Platform) Option {
	return func(o *options) {
		if len(ps) == 0 {
			o.errs = append(o.errs, errors.New("serve: WithPlatforms with no platforms"))
			return
		}
		for i, p := range ps {
			if p == nil {
				o.errs = append(o.errs, fmt.Errorf("serve: nil platform for shard %d", i))
				return
			}
		}
		o.platforms = ps
	}
}

// WithFPS sets the service frame rate (default 24).
func WithFPS(fps float64) Option {
	return func(o *options) { o.fps = fps }
}

// WithAllocator selects the stage-D2 policy by registry name for every
// shard (default sched.NameContentAware).
func WithAllocator(name string) Option {
	return func(o *options) { o.allocator = name }
}

// WithShardAllocator overrides the allocator for one shard — a
// heterogeneous fleet can run the baseline policy on one platform and
// Algorithm 2 on the rest, or tests can install a failing policy.
func WithShardAllocator(shard int, name string) Option {
	return func(o *options) {
		if o.shardAllocator == nil {
			o.shardAllocator = make(map[int]string)
		}
		o.shardAllocator[shard] = name
	}
}

// WithRegistry resolves allocator names against r instead of
// sched.Default.
func WithRegistry(r *sched.Registry) Option {
	return func(o *options) {
		if r == nil {
			o.errs = append(o.errs, errors.New("serve: nil registry"))
			return
		}
		o.registry = r
	}
}

// WithAdmission enables/configures the overload admission ladder on
// every shard.
func WithAdmission(cfg core.AdmissionConfig) Option {
	return func(o *options) { o.admission = cfg }
}

// WithCalibration enables/configures measurement-calibrated estimation
// on every shard.
func WithCalibration(cfg core.CalibrationConfig) Option {
	return func(o *options) { o.calibration = cfg }
}

// WithTimeScale sets the host-to-platform time calibration factor (see
// core.ServerConfig.TimeScale).
func WithTimeScale(scale float64) Option {
	return func(o *options) { o.timeScale = scale }
}

// WithSink streams the fleet's telemetry to s (see Sink for the delivery
// contract). Without a sink the fleet still aggregates per-shard
// ServiceReports into its Run result.
func WithSink(s Sink) Option {
	return func(o *options) { o.sink = s }
}

// WithRoundHook invokes fn after every settled shard round (after the
// sink saw the round's events), from that shard's serving goroutine. The
// hook may Submit sessions or Close the fleet — it is how churn-driven
// callers feed arrivals — but must not call serving methods.
func WithRoundHook(fn func(shard int, out *core.GOPOutcome)) Option {
	return func(o *options) { o.roundHook = fn }
}

// WithLUTStore persists the fleet's workload LUTs at path: if the file
// exists its store seeds every shard (a restarted fleet estimates from
// warm state), and a clean Run saves the merged shard stores back
// atomically. A missing file is not an error — the first run starts cold
// and creates it.
func WithLUTStore(path string) Option {
	return func(o *options) { o.lutPath = path }
}

// WithShardCapacity bounds each shard's live-session count for routing:
// a session whose home shard already holds n live sessions is routed to
// the least-loaded shard instead (0 = unbounded, the default — routing
// falls back only when a shard refuses the submission outright).
func WithShardCapacity(n int) Option {
	return func(o *options) { o.capacity = n }
}

// WithMaxRestarts bounds how many times Run restarts one shard's failed
// serving loop before giving the shard up and failing its sessions
// (default 1).
func WithMaxRestarts(n int) Option {
	return func(o *options) { o.maxRestarts = n }
}

// Fleet is the multi-shard serving front door. Build with New, feed with
// Submit, drive with Run, stop with Close (drain) or context
// cancellation (abort).
//
// Concurrency: Submit, Close, Load, HomeShard and SaveLUTs are safe from
// any goroutine; Run must be called once at a time.
type Fleet struct {
	opts   options
	ring   *hashRing
	shards []*shardState

	// sinkMu serializes sink delivery fleet-wide (the Sink contract).
	sinkMu sync.Mutex

	mu      sync.Mutex
	running bool
	closed  bool
}

// shardState tracks one shard through the fleet's lifetime.
type shardState struct {
	index int
	srv   core.Shard
	// dead is set (under Fleet.mu) when the supervisor gave up on the
	// shard; routing skips dead shards.
	dead bool
}

// New validates the options and builds the fleet's shards.
func New(opts ...Option) (*Fleet, error) {
	o := options{
		shards:      1,
		fps:         24,
		allocator:   sched.NameContentAware,
		registry:    sched.Default,
		maxRestarts: 1,
		replicas:    ringReplicas,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if len(o.errs) > 0 {
		return nil, errors.Join(o.errs...)
	}
	platforms := o.platforms
	if platforms == nil {
		proto := o.platform
		if proto == nil {
			proto = mpsoc.XeonE5_2667V4()
		}
		platforms = make([]*mpsoc.Platform, o.shards)
		for i := range platforms {
			platforms[i] = clonePlatform(proto)
		}
	}
	n := len(platforms)
	for shard := range o.shardAllocator {
		if shard < 0 || shard >= n {
			return nil, fmt.Errorf("serve: allocator override for shard %d of %d", shard, n)
		}
	}

	// A persisted LUT store seeds every shard with its own deep copy —
	// shards must not share mutable estimation state, or cross-shard lock
	// contention and nondeterministic calibration order would leak in.
	var seed *workload.Store
	if o.lutPath != "" {
		f, err := os.Open(o.lutPath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// First run: start cold, Save creates the file.
		case err != nil:
			return nil, fmt.Errorf("serve: open LUT store: %w", err)
		default:
			seed, err = workload.LoadStore(f)
			f.Close()
			if err != nil {
				return nil, err
			}
		}
	}

	f := &Fleet{opts: o, ring: newHashRing(n, o.replicas)}
	for i := 0; i < n; i++ {
		name := o.allocator
		if over, ok := o.shardAllocator[i]; ok {
			name = over
		}
		alloc, err := o.registry.MustLookup(name)
		if err != nil {
			return nil, err
		}
		var store *workload.Store
		if seed != nil {
			store = seed.Clone()
		}
		shard := &shardState{index: i}
		srv, err := core.NewServer(core.ServerConfig{
			Platform:    platforms[i],
			FPS:         o.fps,
			Allocator:   core.AllocatorFunc(alloc),
			TimeScale:   o.timeScale,
			Calibration: o.calibration,
			Admission:   o.admission,
			Store:       store,
			OnRound: func(out *core.GOPOutcome) {
				f.dispatchRound(shard.index, out)
				if o.roundHook != nil {
					o.roundHook(shard.index, out)
				}
			},
			OnSessionState: func(id int, state core.SessionState, err error) {
				f.dispatchState(shard.index, id, state, err)
			},
		})
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		shard.srv = srv
		f.shards = append(f.shards, shard)
	}
	return f, nil
}

// clonePlatform copies a platform so shards never share mutable state.
func clonePlatform(p *mpsoc.Platform) *mpsoc.Platform {
	cp := *p
	cp.Levels = append([]mpsoc.FreqLevel(nil), p.Levels...)
	return &cp
}

// Shards returns the number of shards.
func (f *Fleet) Shards() int { return len(f.shards) }

// HomeShard returns the shard the consistent-hash ring assigns a
// workload class to (before load-based fallback).
func (f *Fleet) HomeShard(class string) int { return f.ring.shardFor(class) }

// Placement identifies where a submitted session landed.
type Placement struct {
	// Shard is the index of the shard serving the session.
	Shard int
	// Session is the shard-local session (ids are shard-local too).
	Session *core.Session
}

// Submit routes a session to its class's home shard, falling back to the
// least-loaded shard when the home shard is saturated (WithShardCapacity),
// dead, or refuses the submission. Safe from any goroutine, including
// round hooks — but not from Sink methods, which run under the sink
// dispatch lock that Submit's own state notification needs (see the Sink
// contract). Fails when every shard refuses.
func (f *Fleet) Submit(src core.FrameSource, cfg core.SessionConfig) (Placement, error) {
	if src == nil {
		return Placement{}, errors.New("serve: nil frame source")
	}
	var lastErr error
	for _, si := range f.routeOrder(f.ring.shardFor(src.Class())) {
		sess, err := f.shards[si].srv.Submit(src, cfg)
		if err == nil {
			return Placement{Shard: si, Session: sess}, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errors.New("serve: no live shard")
	}
	return Placement{}, fmt.Errorf("serve: submit: %w", lastErr)
}

// routeOrder returns the shard indices to try: the home shard first —
// unless it is dead or at capacity — then the remaining live shards in
// ascending (load, index) order.
func (f *Fleet) routeOrder(home int) []int {
	type cand struct {
		index int
		load  int
	}
	f.mu.Lock()
	dead := make([]bool, len(f.shards))
	for i, s := range f.shards {
		dead[i] = s.dead
	}
	f.mu.Unlock()

	var rest []cand
	order := make([]int, 0, len(f.shards))
	homeOK := !dead[home] && (f.opts.capacity <= 0 || f.shards[home].srv.Load() < f.opts.capacity)
	if homeOK {
		order = append(order, home)
	}
	for i, s := range f.shards {
		if i == home && homeOK {
			continue
		}
		if dead[i] {
			continue
		}
		rest = append(rest, cand{index: i, load: s.srv.Load()})
	}
	sort.Slice(rest, func(a, b int) bool {
		if rest[a].load != rest[b].load {
			return rest[a].load < rest[b].load
		}
		return rest[a].index < rest[b].index
	})
	for _, c := range rest {
		order = append(order, c.index)
	}
	return order
}

// Close closes every shard's arrival queue: no further Submit succeeds
// and Run returns once the submitted sessions drain. Safe to call from
// any goroutine, more than once.
func (f *Fleet) Close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	for _, s := range f.shards {
		s.srv.Close()
	}
}

// ShardReport is one shard's outcome of a fleet Run.
type ShardReport struct {
	Shard int
	// Report merges the shard's service reports across restarts: counters
	// and outcomes accumulate; the terminal-state lists are the final
	// snapshot.
	Report *core.ServiceReport
	// Restarts counts serving-loop restarts the supervisor performed.
	Restarts int
	// Err is the terminal serving error of a shard that was given up (nil
	// for a clean drain or cancellation).
	Err error
	// Aborted lists the sessions failed by the give-up (ascending).
	Aborted []int
}

// Report aggregates a fleet Run.
type Report struct {
	Shards []ShardReport
	// Fleet-wide aggregates over all shards.
	Rounds        int
	Submitted     int
	Completed     int
	Rejected      int
	Failed        int
	FramesEncoded int
	GOPReports    int
	Energy        mpsoc.Totals
}

// Run supervises every shard's serving loop until all drain (after
// Close), the context is cancelled, or the shards die. A shard whose
// loop returns an error is restarted in place — its sessions and LUTs
// survive, the other shards never notice — up to WithMaxRestarts times;
// past that the shard is given up: its queue closes, its unserved
// sessions fail (the sink sees each failure), and the rest of the fleet
// keeps serving. Run returns the aggregated report with ctx.Err() after
// cancellation, an error when every shard died, and nil otherwise (check
// ShardReport.Err for partial failures). With WithLUTStore, a Run that
// ends without cancellation saves the merged LUT store.
func (f *Fleet) Run(ctx context.Context) (*Report, error) {
	f.mu.Lock()
	if f.running {
		f.mu.Unlock()
		return nil, errors.New("serve: Run already active")
	}
	f.running = true
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.running = false
		f.mu.Unlock()
	}()

	reports := make([]ShardReport, len(f.shards))
	var wg sync.WaitGroup
	for _, s := range f.shards {
		wg.Add(1)
		go func(s *shardState) {
			defer wg.Done()
			reports[s.index] = f.supervise(ctx, s)
		}(s)
	}
	wg.Wait()

	rep := &Report{Shards: reports}
	deadShards := 0
	for _, sr := range reports {
		if sr.Err != nil {
			deadShards++
		}
		if sr.Report == nil {
			continue
		}
		rep.Rounds += sr.Report.Rounds
		rep.Submitted += sr.Report.Submitted
		rep.Completed += len(sr.Report.Completed)
		rep.Rejected += len(sr.Report.Rejected)
		rep.Failed += len(sr.Report.Failed)
		rep.FramesEncoded += sr.Report.FramesEncoded
		rep.GOPReports += sr.Report.GOPReports
		addTotals(&rep.Energy, sr.Report.Energy)
	}
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	if f.opts.lutPath != "" {
		if err := f.SaveLUTs(); err != nil {
			return rep, err
		}
	}
	if deadShards == len(f.shards) && len(f.shards) > 0 {
		return rep, fmt.Errorf("serve: all %d shards failed, first: %w", deadShards, reports[0].Err)
	}
	return rep, nil
}

// supervise drives one shard's serving loop with restart-on-error.
func (f *Fleet) supervise(ctx context.Context, s *shardState) ShardReport {
	sr := ShardReport{Shard: s.index}
	for {
		rep, err := s.srv.Run(ctx)
		mergeServiceReport(&sr, rep)
		switch {
		case err == nil:
			return sr
		case ctx.Err() != nil:
			// Cancellation is fleet-wide, not a shard fault.
			return sr
		case sr.Restarts < f.opts.maxRestarts:
			sr.Restarts++
		default:
			// Give the shard up: stop accepting arrivals, fail what
			// cannot be served, let the rest of the fleet carry on.
			f.mu.Lock()
			s.dead = true
			f.mu.Unlock()
			s.srv.Close()
			sr.Err = fmt.Errorf("serve: shard %d gave up after %d restarts: %w", s.index, sr.Restarts, err)
			if ids, aerr := s.srv.Abort(sr.Err); aerr == nil {
				sr.Aborted = ids
			}
			// The abort flipped queued sessions to failed after the last
			// report snapshot; refresh the terminal lists from the live
			// states so the shard report tells the truth.
			refreshStates(&sr, s.srv)
			return sr
		}
	}
}

// mergeServiceReport folds one Run's report into the shard report:
// counters and outcomes accumulate across restarts, the terminal-state
// snapshot is replaced by the newer one.
func mergeServiceReport(sr *ShardReport, rep *core.ServiceReport) {
	if rep == nil {
		return
	}
	if sr.Report == nil {
		sr.Report = rep
		return
	}
	dst := sr.Report
	dst.Rounds += rep.Rounds
	dst.FramesEncoded += rep.FramesEncoded
	dst.GOPReports += rep.GOPReports
	dst.Outcomes = append(dst.Outcomes, rep.Outcomes...)
	addTotals(&dst.Energy, rep.Energy)
	dst.Submitted = rep.Submitted
	dst.Completed = rep.Completed
	dst.Rejected = rep.Rejected
	dst.Failed = rep.Failed
	dst.Errors = rep.Errors
}

// refreshStates re-derives the terminal-state lists from the shard's
// live session states (after an Abort).
func refreshStates(sr *ShardReport, srv core.Shard) {
	if sr.Report == nil {
		sr.Report = &core.ServiceReport{}
	}
	rep := sr.Report
	rep.Completed, rep.Rejected, rep.Failed = nil, nil, nil
	for id := 0; ; id++ {
		st, ok := srv.StateOf(id)
		if !ok {
			break
		}
		switch st {
		case core.StateCompleted:
			rep.Completed = append(rep.Completed, id)
		case core.StateRejected:
			rep.Rejected = append(rep.Rejected, id)
		case core.StateFailed:
			rep.Failed = append(rep.Failed, id)
		}
	}
}

// addTotals folds one mpsoc.Totals into another.
func addTotals(dst *mpsoc.Totals, src mpsoc.Totals) {
	dst.Slots += src.Slots
	dst.Time += src.Time
	dst.EnergyJ += src.EnergyJ
	if src.PeakPowerW > dst.PeakPowerW {
		dst.PeakPowerW = src.PeakPowerW
	}
	dst.DeadlineMisses += src.DeadlineMisses
	dst.CarryOver += src.CarryOver
}

// SaveLUTs merges every shard's workload store and writes it atomically
// to the WithLUTStore path. Without a configured path it is a no-op.
func (f *Fleet) SaveLUTs() error {
	if f.opts.lutPath == "" {
		return nil
	}
	merged := workload.NewStore()
	for _, s := range f.shards {
		merged.Merge(s.srv.Store())
	}
	tmp, err := os.CreateTemp(filepath.Dir(f.opts.lutPath), ".luts-*")
	if err != nil {
		return fmt.Errorf("serve: save LUT store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := merged.Save(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: save LUT store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: save LUT store: %w", err)
	}
	if err := os.Rename(tmp.Name(), f.opts.lutPath); err != nil {
		return fmt.Errorf("serve: save LUT store: %w", err)
	}
	return nil
}

// Load reports the fleet-wide live-session count (the sum of the shards'
// queue depths).
func (f *Fleet) Load() int {
	n := 0
	for _, s := range f.shards {
		n += s.srv.Load()
	}
	return n
}

// dispatchState delivers a session lifecycle event to the sink.
func (f *Fleet) dispatchState(shard, id int, state core.SessionState, err error) {
	if f.opts.sink == nil {
		return
	}
	f.sinkMu.Lock()
	defer f.sinkMu.Unlock()
	f.opts.sink.OnSessionStateChange(SessionEvent{Shard: shard, Session: id, State: state, Err: err})
}

// dispatchRound delivers a settled round to the sink: per-session GOPs
// in ascending id, then the round metrics.
func (f *Fleet) dispatchRound(shard int, out *core.GOPOutcome) {
	if f.opts.sink == nil {
		return
	}
	f.sinkMu.Lock()
	defer f.sinkMu.Unlock()
	ids := make([]int, 0, len(out.GOPs))
	for id := range out.GOPs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		f.opts.sink.OnGOP(GOPEvent{Shard: shard, Session: id, Round: out.Round, GOP: out.GOPs[id]})
	}
	f.opts.sink.OnRoundMetrics(RoundEvent{Shard: shard, Outcome: out})
}
