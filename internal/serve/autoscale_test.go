package serve

import (
	"context"
	"sync"
	"testing"
)

// obsOf builds a homogeneous-fleet observation: live shards of shardCap
// cores each, carrying the given summed core demand.
func obsOf(live, demand, shardCap int) loadObservation {
	return loadObservation{live: live, demand: demand, capacity: live * shardCap, retireCap: shardCap}
}

// TestScalePolicyNoFlapHysteresis is the serve-layer no-flap guarantee: a
// load oscillating around the scale-up threshold — saturated one round,
// back under it the next — must never trigger a resize, because every
// contrary observation resets the hysteresis window. Same for the
// scale-down threshold.
func TestScalePolicyNoFlapHysteresis(t *testing.T) {
	p := newScalePolicy(AutoscaleConfig{MinShards: 1, MaxShards: 4, TargetUtil: 0.5, Window: 2})

	// 2 shards × 32 cores, target util 0.5: saturated above 32 demanded
	// cores, idle (one shard retirable) at or below 16.
	for round := 0; round < 40; round++ {
		demand := 33 // one over the saturation threshold...
		if round%2 == 1 {
			demand = 32 // ...then exactly at it (not saturated, not idle)
		}
		if n, reason, ok := p.observe(round, obsOf(2, demand, 32)); ok {
			t.Fatalf("round %d: oscillating load triggered resize to %d (%s)", round, n, reason)
		}
	}

	// Oscillation around the scale-down threshold: idle, then busy again.
	for round := 0; round < 40; round++ {
		demand := 16 // at the idle threshold...
		if round%2 == 1 {
			demand = 17 // ...then just above it
		}
		if n, reason, ok := p.observe(round, obsOf(2, demand, 32)); ok {
			t.Fatalf("round %d: oscillating load triggered shrink to %d (%s)", round, n, reason)
		}
	}

	// Control: the same load *sustained* for the window does resize.
	if _, _, ok := p.observe(0, obsOf(2, 33, 32)); ok {
		t.Fatal("resized before the window elapsed")
	}
	n, reason, ok := p.observe(1, obsOf(2, 33, 32))
	if !ok || n != 3 {
		t.Fatalf("sustained saturation: got (%d, %q, %v), want grow to 3", n, reason, ok)
	}
}

// TestScalePolicyHeterogeneousShrink: the shrink test prices the shard a
// shrink would actually retire (the highest-indexed alive one) — on a
// heterogeneous fleet the same demand that is comfortably idle when the
// retiring shard is small must hold the fleet when the retiring shard is
// the big one.
func TestScalePolicyHeterogeneousShrink(t *testing.T) {
	// 8+32 cores, 18 demanded: retiring the 8-core shard leaves util
	// 18/32 ≤ 0.6 — shrink.
	p := newScalePolicy(AutoscaleConfig{MinShards: 1, MaxShards: 2, TargetUtil: 0.6, Window: 1})
	small := loadObservation{live: 2, demand: 18, capacity: 40, retireCap: 8}
	if n, _, ok := p.observe(0, small); !ok || n != 1 {
		t.Fatalf("retiring the small shard: got (%d, %v), want shrink to 1", n, ok)
	}

	// Same fleet, same demand, but the retiring shard is the 32-core one:
	// 18/8 would overload — must hold.
	p = newScalePolicy(AutoscaleConfig{MinShards: 1, MaxShards: 2, TargetUtil: 0.6, Window: 1})
	big := loadObservation{live: 2, demand: 18, capacity: 40, retireCap: 32}
	if n, _, ok := p.observe(0, big); ok {
		t.Fatalf("retiring the big shard would overload, but policy shrank to %d", n)
	}
}

// TestScalePolicyBoundsAndSchedule: a pending schedule outranks the load
// policy and is never clamped into silence (validation widens the
// bounds); the load policy respects min/max.
func TestScalePolicyBoundsAndSchedule(t *testing.T) {
	cfg := AutoscaleConfig{MinShards: 2, MaxShards: 3, Window: 1, TargetUtil: 0.5,
		Schedule: []ScheduledResize{{AfterRounds: 5, Shards: 4}}}
	if err := validateAutoscale(&cfg, 2); err != nil {
		t.Fatal(err)
	}
	if cfg.MaxShards != 4 {
		t.Fatalf("schedule did not widen MaxShards: %d", cfg.MaxShards)
	}
	p := newScalePolicy(cfg)
	// Saturated load before the schedule fires: suppressed.
	if _, _, ok := p.observe(1, obsOf(2, 100, 32)); ok {
		t.Fatal("load policy fired while a schedule was pending")
	}
	n, reason, ok := p.observe(5, obsOf(2, 0, 32))
	if !ok || n != 4 || reason != "scheduled" {
		t.Fatalf("schedule: got (%d, %q, %v), want scheduled resize to 4", n, reason, ok)
	}
	// Schedule drained: the load policy is live again, clamped to max.
	if n, _, ok := p.observe(6, obsOf(4, 1000, 32)); ok || n != 0 {
		t.Fatalf("grew past MaxShards: (%d, %v)", n, ok)
	}
	if n, _, ok := p.observe(7, obsOf(3, 1000, 32)); !ok || n != 4 {
		t.Fatalf("saturation under max: got (%d, %v), want grow to 4", n, ok)
	}

	// Validation errors.
	bad := AutoscaleConfig{MinShards: 3, MaxShards: 2}
	if err := validateAutoscale(&bad, 3); err == nil {
		t.Fatal("inverted bounds accepted")
	}
	out := AutoscaleConfig{MinShards: 2, MaxShards: 3}
	if err := validateAutoscale(&out, 5); err == nil {
		t.Fatal("initial shards outside bounds accepted")
	}
	if _, err := New(WithShards(1), WithAutoscale(AutoscaleConfig{MinShards: 2, MaxShards: 4})); err == nil {
		t.Fatal("New accepted a fleet outside its autoscale bounds")
	}
}

// TestFleetAutoscaleGrowsUnderLoad: the in-Run scaling loop really
// resizes a saturated fleet — 3 sessions' demand on one 32-core shard is
// well past a 0.05 target utilization, so the fleet grows toward
// MaxShards 2 — and the run still completes everything.
func TestFleetAutoscaleGrowsUnderLoad(t *testing.T) {
	sink := &recordingSink{}
	var mu sync.Mutex
	var resizes []int
	f, err := New(WithShards(1), WithSink(sink), WithAutoscale(AutoscaleConfig{
		MinShards:  1,
		MaxShards:  2,
		TargetUtil: 0.05,
		Window:     1,
		OnResize: func(from, to int, reason string) {
			mu.Lock()
			resizes = append(resizes, to)
			mu.Unlock()
		},
	}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Submit(testSource(t, "auto", int64(i+1), 16), testSessionConfig()); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	rep, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 3 || rep.Completed != 3 || rep.Failed != 0 {
		t.Fatalf("report %+v, want all 3 completed", rep)
	}
	if rep.FramesEncoded != 48 || rep.GOPReports != 12 {
		t.Fatalf("frames/GOPs %d/%d, want 48/12 — the grow lost work", rep.FramesEncoded, rep.GOPReports)
	}
	sink.mu.Lock()
	added := len(sink.added)
	sink.mu.Unlock()
	if added == 0 {
		t.Fatal("sustained saturation never grew the fleet")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(resizes) == 0 || resizes[0] != 2 {
		t.Fatalf("OnResize calls %v, want first grow to 2", resizes)
	}
}

// TestFleetAutoscaleScheduleDrivesResizes: a forced schedule grows and
// shrinks a live fleet at the configured round counts without losing
// work — the -resize-at path of cmd/transcode, now inside serve.
func TestFleetAutoscaleScheduleDrivesResizes(t *testing.T) {
	sink := &recordingSink{}
	f, err := New(WithShards(2), WithSink(sink), WithAutoscale(AutoscaleConfig{
		Schedule: []ScheduledResize{{AfterRounds: 2, Shards: 3}, {AfterRounds: 6, Shards: 2}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	classes := classesPerShard(t, f)
	for i, class := range classes {
		if _, err := f.Submit(testSource(t, class, int64(i+1), 32), testSessionConfig()); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	rep, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 2 || rep.Completed != 2 || rep.Failed != 0 {
		t.Fatalf("report %+v, want both sessions completed", rep)
	}
	if rep.FramesEncoded != 64 || rep.GOPReports != 16 {
		t.Fatalf("frames/GOPs %d/%d, want 64/16", rep.FramesEncoded, rep.GOPReports)
	}
	sink.mu.Lock()
	added, removed := len(sink.added), len(sink.removed)
	sink.mu.Unlock()
	if added != 1 || removed != 1 {
		t.Fatalf("shard events %d added / %d removed, want 1/1 (scheduled 2→3→2)", added, removed)
	}
}
