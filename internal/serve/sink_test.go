package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

// TestJSONLSinkStreamsParseableEvents: every event becomes one valid JSON
// line with the expected envelope, and the stream covers the session's
// whole lifecycle.
func TestJSONLSinkStreamsParseableEvents(t *testing.T) {
	var buf bytes.Buffer
	f, err := New(WithShards(1), WithSink(NewJSONLSink(&buf)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(testSource(t, "stream", 1, 8), testSessionConfig()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	counts := map[string]int{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line struct {
			Event   string `json:"event"`
			Shard   int    `json:"shard"`
			Session int    `json:"session"`
			State   string `json:"state"`
			Frames  int    `json:"frames"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("unparseable line %q: %v", sc.Text(), err)
		}
		if line.Event == "" {
			t.Fatalf("line without event type: %q", sc.Text())
		}
		if line.Event == "gop" && line.Frames != 4 {
			t.Fatalf("gop event with %d frames, want 4: %q", line.Frames, sc.Text())
		}
		counts[line.Event]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// 8 frames in GOPs of 4 → 2 rounds, 2 GOPs; queued + completed.
	if counts["gop"] != 2 || counts["round"] != 2 || counts["session_state"] != 2 {
		t.Fatalf("event counts %v, want 2 gop / 2 round / 2 session_state", counts)
	}
}

// gateWriter blocks every Write until released.
type gateWriter struct {
	release chan struct{}
	buf     bytes.Buffer
	writes  int
}

func (g *gateWriter) Write(p []byte) (int, error) {
	<-g.release
	g.writes++
	return g.buf.Write(p)
}

// TestBufferedJSONLSinkDropPolicy: with a writer that cannot keep up, a
// JSONLDrop sink never blocks the event path — it sheds lines and counts
// them, and every line it kept is intact.
func TestBufferedJSONLSinkDropPolicy(t *testing.T) {
	gate := &gateWriter{release: make(chan struct{})}
	sink := NewBufferedJSONLSink(gate, 2, JSONLDrop)

	const events = 50
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < events; i++ {
			sink.OnSessionStateChange(SessionEvent{Shard: 0, Session: i})
		}
	}()
	select {
	case <-done:
		// The serving path never waited on the stalled writer.
	case <-time.After(10 * time.Second):
		t.Fatal("drop-policy sink blocked the event path behind a stalled writer")
	}
	close(gate.release)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	dropped := int(sink.Dropped())
	if dropped == 0 {
		t.Fatal("a stalled writer dropped nothing — the buffer cannot have been bounded")
	}
	kept := 0
	sc := bufio.NewScanner(&gate.buf)
	for sc.Scan() {
		var line struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("dropped mid-line, kept lines corrupt: %q", sc.Text())
		}
		kept++
	}
	if kept+dropped != events {
		t.Fatalf("kept %d + dropped %d != %d emitted", kept, dropped, events)
	}
}

// TestBufferedJSONLSinkBlockPolicy: the block policy loses nothing — all
// lines arrive, in order, once the writer drains; Close flushes.
func TestBufferedJSONLSinkBlockPolicy(t *testing.T) {
	var buf bytes.Buffer
	sink := NewBufferedJSONLSink(&buf, 4, JSONLBlock)
	const events = 100
	for i := 0; i < events; i++ {
		sink.OnSessionStateChange(SessionEvent{Shard: 1, Session: i})
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Dropped() != 0 {
		t.Fatalf("block policy dropped %d lines", sink.Dropped())
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var line struct {
			Session int `json:"session"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Session != n {
			t.Fatalf("line %d carries session %d — ordering broken", n, line.Session)
		}
		n++
	}
	if n != events {
		t.Fatalf("%d lines written, want %d", n, events)
	}
}

// TestBufferedJSONLSinkServesFleet: a buffered sink on a real fleet run
// sees the same event stream a synchronous one would.
func TestBufferedJSONLSinkServesFleet(t *testing.T) {
	var buf bytes.Buffer
	sink := NewBufferedJSONLSink(&buf, 64, JSONLBlock)
	f, err := New(WithShards(1), WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(testSource(t, "buffered", 1, 8), testSessionConfig()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		counts[line.Event]++
	}
	if counts["gop"] != 2 || counts["round"] != 2 || counts["session_state"] != 2 {
		t.Fatalf("event counts %v, want 2 gop / 2 round / 2 session_state", counts)
	}
}

// TestMultiSinkFansOut: both sinks see every event.
func TestMultiSinkFansOut(t *testing.T) {
	a, b := &recordingSink{}, &recordingSink{}
	f, err := New(WithShards(1), WithSink(MultiSink(a, b)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(testSource(t, "fan", 1, 4), testSessionConfig()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(a.gops) != 1 || len(b.gops) != len(a.gops) ||
		len(a.rounds) != 1 || len(b.rounds) != len(a.rounds) ||
		len(a.states) != 2 || len(b.states) != len(a.states) {
		t.Fatalf("sinks diverge: a=%d/%d/%d b=%d/%d/%d",
			len(a.gops), len(a.rounds), len(a.states), len(b.gops), len(b.rounds), len(b.states))
	}
}
