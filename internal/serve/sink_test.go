package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestJSONLSinkStreamsParseableEvents: every event becomes one valid JSON
// line with the expected envelope, and the stream covers the session's
// whole lifecycle.
func TestJSONLSinkStreamsParseableEvents(t *testing.T) {
	var buf bytes.Buffer
	f, err := New(WithShards(1), WithSink(NewJSONLSink(&buf)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(testSource(t, "stream", 1, 8), testSessionConfig()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	counts := map[string]int{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line struct {
			Event   string `json:"event"`
			Shard   int    `json:"shard"`
			Session int    `json:"session"`
			State   string `json:"state"`
			Frames  int    `json:"frames"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("unparseable line %q: %v", sc.Text(), err)
		}
		if line.Event == "" {
			t.Fatalf("line without event type: %q", sc.Text())
		}
		if line.Event == "gop" && line.Frames != 4 {
			t.Fatalf("gop event with %d frames, want 4: %q", line.Frames, sc.Text())
		}
		counts[line.Event]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// 8 frames in GOPs of 4 → 2 rounds, 2 GOPs; queued + completed.
	if counts["gop"] != 2 || counts["round"] != 2 || counts["session_state"] != 2 {
		t.Fatalf("event counts %v, want 2 gop / 2 round / 2 session_state", counts)
	}
}

// TestMultiSinkFansOut: both sinks see every event.
func TestMultiSinkFansOut(t *testing.T) {
	a, b := &recordingSink{}, &recordingSink{}
	f, err := New(WithShards(1), WithSink(MultiSink(a, b)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(testSource(t, "fan", 1, 4), testSessionConfig()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(a.gops) != 1 || len(b.gops) != len(a.gops) ||
		len(a.rounds) != 1 || len(b.rounds) != len(a.rounds) ||
		len(a.states) != 2 || len(b.states) != len(a.states) {
		t.Fatalf("sinks diverge: a=%d/%d/%d b=%d/%d/%d",
			len(a.gops), len(a.rounds), len(a.states), len(b.gops), len(b.rounds), len(b.states))
	}
}
