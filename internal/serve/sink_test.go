package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mpsoc"
)

// TestJSONLSinkStreamsParseableEvents: every event becomes one valid JSON
// line with the expected envelope, and the stream covers the session's
// whole lifecycle.
func TestJSONLSinkStreamsParseableEvents(t *testing.T) {
	var buf bytes.Buffer
	f, err := New(WithShards(1), WithSink(NewJSONLSink(&buf)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(testSource(t, "stream", 1, 8), testSessionConfig()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	counts := map[string]int{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line struct {
			Event   string `json:"event"`
			Shard   int    `json:"shard"`
			Session int    `json:"session"`
			State   string `json:"state"`
			Frames  int    `json:"frames"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("unparseable line %q: %v", sc.Text(), err)
		}
		if line.Event == "" {
			t.Fatalf("line without event type: %q", sc.Text())
		}
		if line.Event == "gop" && line.Frames != 4 {
			t.Fatalf("gop event with %d frames, want 4: %q", line.Frames, sc.Text())
		}
		counts[line.Event]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// 8 frames in GOPs of 4 → 2 rounds, 2 GOPs; queued + completed.
	if counts["gop"] != 2 || counts["round"] != 2 || counts["session_state"] != 2 {
		t.Fatalf("event counts %v, want 2 gop / 2 round / 2 session_state", counts)
	}
}

// gateWriter blocks every Write until released.
type gateWriter struct {
	release chan struct{}
	buf     bytes.Buffer
	writes  int
}

func (g *gateWriter) Write(p []byte) (int, error) {
	<-g.release
	g.writes++
	return g.buf.Write(p)
}

// TestBufferedJSONLSinkDropPolicy: with a writer that cannot keep up, a
// JSONLDrop sink never blocks the event path — it sheds lines and counts
// them, and every line it kept is intact.
func TestBufferedJSONLSinkDropPolicy(t *testing.T) {
	gate := &gateWriter{release: make(chan struct{})}
	sink := NewBufferedJSONLSink(gate, 2, JSONLDrop)

	const events = 50
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < events; i++ {
			sink.OnSessionStateChange(SessionEvent{Shard: 0, Session: i})
		}
	}()
	select {
	case <-done:
		// The serving path never waited on the stalled writer.
	case <-time.After(10 * time.Second):
		t.Fatal("drop-policy sink blocked the event path behind a stalled writer")
	}
	close(gate.release)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	dropped := int(sink.Dropped())
	if dropped == 0 {
		t.Fatal("a stalled writer dropped nothing — the buffer cannot have been bounded")
	}
	kept := 0
	sc := bufio.NewScanner(&gate.buf)
	for sc.Scan() {
		var line struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("dropped mid-line, kept lines corrupt: %q", sc.Text())
		}
		kept++
	}
	if kept+dropped != events {
		t.Fatalf("kept %d + dropped %d != %d emitted", kept, dropped, events)
	}
}

// TestBufferedJSONLSinkBlockPolicy: the block policy loses nothing — all
// lines arrive, in order, once the writer drains; Close flushes.
func TestBufferedJSONLSinkBlockPolicy(t *testing.T) {
	var buf bytes.Buffer
	sink := NewBufferedJSONLSink(&buf, 4, JSONLBlock)
	const events = 100
	for i := 0; i < events; i++ {
		sink.OnSessionStateChange(SessionEvent{Shard: 1, Session: i})
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Dropped() != 0 {
		t.Fatalf("block policy dropped %d lines", sink.Dropped())
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var line struct {
			Session int `json:"session"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Session != n {
			t.Fatalf("line %d carries session %d — ordering broken", n, line.Session)
		}
		n++
	}
	if n != events {
		t.Fatalf("%d lines written, want %d", n, events)
	}
}

// TestBufferedJSONLSinkServesFleet: a buffered sink on a real fleet run
// sees the same event stream a synchronous one would.
func TestBufferedJSONLSinkServesFleet(t *testing.T) {
	var buf bytes.Buffer
	sink := NewBufferedJSONLSink(&buf, 64, JSONLBlock)
	f, err := New(WithShards(1), WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(testSource(t, "buffered", 1, 8), testSessionConfig()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		counts[line.Event]++
	}
	if counts["gop"] != 2 || counts["round"] != 2 || counts["session_state"] != 2 {
		t.Fatalf("event counts %v, want 2 gop / 2 round / 2 session_state", counts)
	}
}

// TestFleetReportKeepsCollidingSessionIDsDistinct is the regression test
// for the multi-shard Report(-1) collision: session ids are shard-local,
// so when two shards both fail their session 0, the merged fleet view
// collapses them into one entry and one error silently overwrites the
// other. FleetReport keys by (shard, id): both sessions must stay
// distinct under their shards, with exact per-shard counters.
func TestFleetReportKeepsCollidingSessionIDsDistinct(t *testing.T) {
	sink := NewRingSink(8)
	errA := errors.New("shard 0: source truncated")
	errB := errors.New("shard 1: encoder fault")
	gop := func(frames int) *core.GOPReport {
		return &core.GOPReport{Frames: make([]core.FrameReport, frames)}
	}
	round := func(shard int, joules float64, misses int) RoundEvent {
		return RoundEvent{
			Shard:   shard,
			Outcome: &core.GOPOutcome{Energy: &mpsoc.SlotReport{EnergyJ: joules, DeadlineMisses: misses}},
			Load:    core.LoadReport{Sessions: 1},
		}
	}

	// Two shards each run their shard-local session 0 to a different
	// failure, in the order the fleet would deliver it: shard 0 serves one
	// round, shard 1 two.
	sink.OnSessionStateChange(SessionEvent{Shard: 0, Session: 0, State: core.StateQueued})
	sink.OnSessionStateChange(SessionEvent{Shard: 1, Session: 0, State: core.StateQueued})
	sink.OnGOP(GOPEvent{Shard: 0, Session: 0, GOP: gop(4)})
	sink.OnRoundMetrics(round(0, 2.5, 1))
	sink.OnGOP(GOPEvent{Shard: 1, Session: 0, GOP: gop(4)})
	sink.OnRoundMetrics(round(1, 4.0, 0))
	sink.OnGOP(GOPEvent{Shard: 1, Session: 0, GOP: gop(4)})
	sink.OnRoundMetrics(round(1, 3.0, 2))
	sink.OnSessionStateChange(SessionEvent{Shard: 0, Session: 0, State: core.StateFailed, Err: errA})
	sink.OnSessionStateChange(SessionEvent{Shard: 1, Session: 0, State: core.StateFailed, Err: errB})

	fleet := sink.FleetReport()
	if fleet.Submitted != 2 || fleet.Failed != 2 {
		t.Fatalf("fleet counts submitted=%d failed=%d, want 2/2 — colliding ids collapsed",
			fleet.Submitted, fleet.Failed)
	}
	if len(fleet.Shards) != 2 {
		t.Fatalf("fleet has %d shard sub-reports, want 2", len(fleet.Shards))
	}
	s0, s1 := fleet.Shards[0], fleet.Shards[1]
	if s0 == nil || s1 == nil {
		t.Fatalf("missing shard sub-report: %v", fleet.Shards)
	}
	if got := s0.Errors[0]; got != errA {
		t.Fatalf("shard 0 session 0 error = %v, want %v", got, errA)
	}
	if got := s1.Errors[0]; got != errB {
		t.Fatalf("shard 1 session 0 error = %v, want %v — one error overwrote the other", got, errB)
	}
	// Per-shard counters are shard-scoped, not fleet-wide.
	if s0.Rounds != 1 || s1.Rounds != 2 || fleet.Rounds != 3 {
		t.Fatalf("rounds s0=%d s1=%d fleet=%d, want 1/2/3", s0.Rounds, s1.Rounds, fleet.Rounds)
	}
	if s0.FramesEncoded != 4 || s1.FramesEncoded != 8 || s0.GOPReports != 1 || s1.GOPReports != 2 {
		t.Fatalf("frames s0=%d s1=%d gops s0=%d s1=%d, want 4/8 and 1/2",
			s0.FramesEncoded, s1.FramesEncoded, s0.GOPReports, s1.GOPReports)
	}
	if s0.Energy.EnergyJ != 2.5 || s1.Energy.EnergyJ != 7.0 || fleet.Energy.EnergyJ != 9.5 {
		t.Fatalf("energy s0=%v s1=%v fleet=%v, want 2.5/7/9.5",
			s0.Energy.EnergyJ, s1.Energy.EnergyJ, fleet.Energy.EnergyJ)
	}
	if s0.Energy.DeadlineMisses != 1 || s1.Energy.DeadlineMisses != 2 {
		t.Fatalf("deadline misses s0=%d s1=%d, want 1/2",
			s0.Energy.DeadlineMisses, s1.Energy.DeadlineMisses)
	}
	if len(s0.Outcomes) != 1 || len(s1.Outcomes) != 2 {
		t.Fatalf("retained outcomes s0=%d s1=%d, want 1/2", len(s0.Outcomes), len(s1.Outcomes))
	}

	// Report(shard) keeps its documented behavior: shard-scoped id lists,
	// fleet-wide counters.
	r0 := sink.Report(0)
	if len(r0.Failed) != 1 || r0.Errors[0] != errA || r0.Rounds != 3 {
		t.Fatalf("Report(0) changed: failed=%v errors=%v rounds=%d", r0.Failed, r0.Errors, r0.Rounds)
	}
	// And the documented -1 collision is exactly why FleetReport exists:
	// the merged view cannot tell the two session-0s apart.
	if merged := sink.Report(-1); len(merged.Errors) >= 2 {
		t.Fatalf("Report(-1) now disambiguates colliding ids (%v) — update FleetReport docs", merged.Errors)
	}
}

// TestMultiSinkFansOut: both sinks see every event.
func TestMultiSinkFansOut(t *testing.T) {
	a, b := &recordingSink{}, &recordingSink{}
	f, err := New(WithShards(1), WithSink(MultiSink(a, b)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(testSource(t, "fan", 1, 4), testSessionConfig()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(a.gops) != 1 || len(b.gops) != len(a.gops) ||
		len(a.rounds) != 1 || len(b.rounds) != len(a.rounds) ||
		len(a.states) != 2 || len(b.states) != len(a.states) {
		t.Fatalf("sinks diverge: a=%d/%d/%d b=%d/%d/%d",
			len(a.gops), len(a.rounds), len(a.states), len(b.gops), len(b.rounds), len(b.states))
	}
}
