package serve

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/medgen"
	"repro/internal/mpsoc"
)

// The heterogeneous-fleet acceptance scenario (DESIGN.md §11): a small and
// a big shard, several light sessions and one heavy 4×-area session whose
// classes all home on the SMALL shard. Demand-blind class routing piles
// everyone there and the heavy session — whose warmed core demand exceeds
// the small platform outright — rides the admission ladder to rejection.
// Demand-aware placement prices the heavy session before admission and
// steers it to the big shard, where it streams at full service. The two
// runs differ in exactly one option (WithDemandPlacement), so the ladder
// outcomes are attributable to placement alone.

// heteroPlatform builds an n-core platform shard.
func heteroPlatform(cores int) *mpsoc.Platform {
	p := mpsoc.XeonE5_2667V4()
	p.Cores = cores
	return p
}

// pixelCostModel charges every tile a fixed CPU time per luma pixel, so a
// session's warmed per-frame estimate is area × nsPerPixel regardless of
// how the re-tiler splits the frame.
func pixelCostModel(nsPerPixel float64) func(codec.TileStats) time.Duration {
	return func(ts codec.TileStats) time.Duration {
		return time.Duration(float64(ts.Tile.Area()) * nsPerPixel)
	}
}

// classesHomedOn finds n distinct class names all homed on one shard.
func classesHomedOn(t *testing.T, f *Fleet, shard, n int) []string {
	t.Helper()
	var out []string
	for i := 0; len(out) < n && i < 100000; i++ {
		class := fmt.Sprintf("hclass-%d-%d", shard, i)
		if f.HomeShard(class) == shard {
			out = append(out, class)
		}
	}
	if len(out) != n {
		t.Fatalf("could not find %d classes homed on shard %d", n, shard)
	}
	return out
}

// runSkewedDemand serves 3 light sessions plus 1 heavy one on a 4+16-core
// fleet, all classes homed on the small shard 0, and returns the fleet
// report, the sink, and the heavy session's placed shard. At 800 ns per
// luma pixel the heavy 640×480 stream warms to a demand of
// ceil(307200·800ns·24fps) = 6 cores — more than the whole small shard,
// well within the big one — while the 256×192 lights stay at 1 core each.
func runSkewedDemand(t *testing.T, demandAware bool) (*Report, *recordingSink, int) {
	t.Helper()
	sink := &recordingSink{}
	opts := []Option{
		WithPlatforms(heteroPlatform(4), heteroPlatform(16)),
		WithSink(sink),
		WithAdmission(core.AdmissionConfig{Enabled: true, MaxQueueRounds: 3}),
	}
	if demandAware {
		opts = append(opts, WithDemandPlacement(PlacementConfig{PixelsPerCore: 1.5e6}))
	}
	f, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	classes := classesHomedOn(t, f, 0, 2)
	lightClass, heavyClass := classes[0], classes[1]

	// Lights: coarse initial grids keep the cold 5 ms-per-tile prior at a
	// small demand, so the lights are all admitted within a round or two.
	for i := 0; i < 3; i++ {
		cfg := testSessionConfig()
		cfg.Retile.MinTileW, cfg.Retile.MinTileH = 84, 64
		cfg.TimeModel = pixelCostModel(800)
		p, err := f.Submit(testSource(t, lightClass, int64(i+1), 16), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if p.Shard != 0 {
			t.Fatalf("light session %d placed on shard %d, want home 0", i, p.Shard)
		}
	}
	heavyCfg := testSessionConfig()
	heavyCfg.Retile.MinTileW, heavyCfg.Retile.MinTileH = 208, 160
	heavyCfg.TimeModel = pixelCostModel(800)
	heavy, err := f.Submit(testSource4K(t, heavyClass, 7, 16), heavyCfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	rep, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep, sink, heavy.Shard
}

// testSource4K renders a 640×480 study (4× the area of testSource) under
// an arbitrary class name.
func testSource4K(t testing.TB, class string, seed int64, frames int) core.FrameSource {
	t.Helper()
	cfg := medgen.Default()
	cfg.Width, cfg.Height = 640, 480
	cfg.Class = medgen.Class(int(seed) % medgen.NumClasses)
	cfg.Motion = []medgen.MotionKind{medgen.Rotate, medgen.Pan, medgen.Sweep, medgen.Still}[int(seed)%4]
	cfg.Frames = frames
	cfg.Seed = seed
	g, err := medgen.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := core.SourceFromGenerator(g, frames, cfg.FPS, class)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// TestSkewedDemandPlacementBeatsSessionCount is the PR's acceptance
// criterion: on the small+big fleet with every class homed on the small
// shard, demand-blind routing rejects the heavy session off the admission
// ladder while demand-aware placement serves everyone — a strictly
// shallower ladder outcome, attributable to placement alone.
func TestSkewedDemandPlacementBeatsSessionCount(t *testing.T) {
	countRep, _, countShard := runSkewedDemand(t, false)
	demandRep, demandSink, demandShard := runSkewedDemand(t, true)

	// Demand-blind: class routing piles the heavy session onto its home.
	if countShard != 0 {
		t.Fatalf("demand-blind run placed the heavy session on shard %d, want home 0", countShard)
	}
	// Its warmed 6-core demand never fits the 4-core platform again: the
	// ladder bottoms out in rejection.
	if countRep.Rejected != 1 || countRep.Completed != 3 {
		t.Fatalf("demand-blind report %+v, want 3 completed and the heavy session rejected", countRep)
	}

	// Demand-aware: the heavy session is priced before admission and
	// steered to the big shard, where it streams at full service.
	if demandShard != 1 {
		t.Fatalf("demand-aware run placed the heavy session on shard %d, want big shard 1", demandShard)
	}
	if demandRep.Rejected != 0 || demandRep.Completed != 4 {
		t.Fatalf("demand-aware report %+v, want all 4 completed with zero rejections", demandRep)
	}
	// Zero lost GOP reports: 4 sessions × 16 frames in GOPs of 4.
	if demandRep.FramesEncoded != 64 || demandRep.GOPReports != 16 {
		t.Fatalf("demand-aware frames/GOPs %d/%d, want 64/16", demandRep.FramesEncoded, demandRep.GOPReports)
	}

	// The placement event carries the pre-admission estimate that steered
	// the decision: ceil(640·480·24 / 1.5e6) = 5 cores, home 0, shard 1.
	demandSink.mu.Lock()
	defer demandSink.mu.Unlock()
	var heavyPlacement *PlacementEvent
	for i := range demandSink.placements {
		if e := demandSink.placements[i]; e.Shard == 1 {
			heavyPlacement = &e
		}
	}
	if heavyPlacement == nil {
		t.Fatal("no placement event for the heavy session on shard 1")
	}
	if heavyPlacement.Home != 0 || heavyPlacement.DemandCores != 5 {
		t.Fatalf("heavy placement %+v, want home 0 with a 5-core estimate", heavyPlacement)
	}
	if len(demandSink.placements) != 4 {
		t.Fatalf("%d placement events, want one per submission", len(demandSink.placements))
	}
}

// TestLoadReportInvariants pins the structural guarantees every consumer
// of the load signal relies on: for live shards Util is non-negative and
// exactly DemandCores/CapacityCores, DemandCores never undercuts the
// session count (each queued session carries at least its one-core
// floor), and capacity reflects the shard's own platform.
func TestLoadReportInvariants(t *testing.T) {
	sink := &recordingSink{}
	f, err := New(
		WithPlatforms(heteroPlatform(4), heteroPlatform(16)),
		WithSink(sink),
		WithDemandPlacement(PlacementConfig{PixelsPerCore: 1.5e6}),
	)
	if err != nil {
		t.Fatal(err)
	}
	classes := classesHomedOn(t, f, 0, 1)
	for i := 0; i < 4; i++ {
		cfg := testSessionConfig()
		cfg.TimeModel = pixelCostModel(800)
		if _, err := f.Submit(testSource(t, classes[0], int64(i+1), 8), cfg); err != nil {
			t.Fatal(err)
		}
	}
	checkReport := func(ctx string, r core.LoadReport) {
		t.Helper()
		if !r.Alive {
			t.Fatalf("%s: live shard reported dead: %+v", ctx, r)
		}
		if r.CapacityCores != 4 && r.CapacityCores != 16 {
			t.Fatalf("%s: capacity %d matches neither platform", ctx, r.CapacityCores)
		}
		if r.DemandCores < r.Sessions {
			t.Fatalf("%s: demand %d undercuts %d sessions", ctx, r.DemandCores, r.Sessions)
		}
		want := float64(r.DemandCores) / float64(r.CapacityCores)
		if r.Util < 0 || math.Abs(r.Util-want) > 1e-12 {
			t.Fatalf("%s: util %v, want demand/capacity = %v", ctx, r.Util, want)
		}
		if r.Free() != r.CapacityCores-r.DemandCores {
			t.Fatalf("%s: Free() = %d, want %d", ctx, r.Free(), r.CapacityCores-r.DemandCores)
		}
	}
	for i, r := range f.Loads() {
		checkReport(fmt.Sprintf("pre-run shard %d", i), r)
	}
	f.Close()
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.rounds) == 0 {
		t.Fatal("no round events recorded")
	}
	for _, e := range sink.rounds {
		checkReport(fmt.Sprintf("shard %d round %d", e.Shard, e.Outcome.Round), e.Load)
	}
}
