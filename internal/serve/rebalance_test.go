package serve

import (
	"context"
	"fmt"
	"testing"
)

// hotFleet builds an n-shard fleet with rebalancing configured and
// sessions of one class all homed on the same shard — the skew a hot
// shard is made of. Returns the fleet, the hot class, and its home.
func hotFleet(t *testing.T, shards int, cfg RebalanceConfig, sink Sink) (*Fleet, string, int) {
	t.Helper()
	opts := []Option{WithShards(shards), WithRebalance(cfg)}
	if sink != nil {
		opts = append(opts, WithSink(sink))
	}
	f, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	class := classHomedOn(t, f, 0)
	return f, class, 0
}

// TestRebalanceShedsHotShardBitIdentical is the acceptance scenario: a
// fixed-size fleet whose class routing piled every session on shard 0
// sheds the newest sessions to the idle peer at a GOP boundary — zero
// frames or GOP reports lost, and each rebalanced session's stitched
// digest chain equal to the same session served without rebalancing.
func TestRebalanceShedsHotShardBitIdentical(t *testing.T) {
	const frames = 24 // 6 GOPs of 4
	sink := &recordingSink{}
	f, class, home := hotFleet(t, 2, RebalanceConfig{Factor: 1.2, Windows: 1}, sink)
	const sessions = 4
	for i := 0; i < sessions; i++ {
		p, err := f.Submit(testSource(t, class, int64(i+1), frames), testSessionConfig())
		if err != nil {
			t.Fatal(err)
		}
		if p.Shard != home {
			t.Fatalf("session %d landed on shard %d, want the hot home %d", i, p.Shard, home)
		}
	}
	f.Close()
	rep, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Nothing lost, nobody failed, and the fleet really rebalanced.
	if rep.Submitted != sessions || rep.Completed != sessions || rep.Failed != 0 || rep.Rejected != 0 {
		t.Fatalf("report %+v, want all %d unique sessions completed", rep, sessions)
	}
	if rep.FramesEncoded != sessions*frames || rep.GOPReports != sessions*frames/4 {
		t.Fatalf("frames/GOPs %d/%d, want %d/%d — rebalancing lost work",
			rep.FramesEncoded, rep.GOPReports, sessions*frames, sessions*frames/4)
	}
	if rep.Rebalanced == 0 {
		t.Fatal("hot shard never shed a session")
	}
	if rep.Rebalanced != rep.Migrated {
		t.Fatalf("%d migration hops but %d rebalances — no resize ran, they must match",
			rep.Migrated, rep.Rebalanced)
	}

	sink.mu.Lock()
	rebalances := append([]MigrationEvent(nil), sink.rebalances...)
	added, removed := len(sink.added), len(sink.removed)
	sink.mu.Unlock()
	if added != 0 || removed != 0 {
		t.Fatalf("rebalancing changed the fleet size: %d added, %d removed", added, removed)
	}
	if len(rebalances) != rep.Rebalanced {
		t.Fatalf("sink saw %d rebalances, report says %d", len(rebalances), rep.Rebalanced)
	}
	for _, e := range rebalances {
		if e.FromShard != home || e.ToShard == home || e.Class != class {
			t.Fatalf("rebalance event %+v inconsistent with the hot shard", e)
		}
		if e.Frame%4 != 0 || e.Frame == 0 || e.Frame >= frames {
			t.Fatalf("rebalanced at frame %d — not a mid-stream GOP boundary", e.Frame)
		}
	}

	// Bit-identity per rebalanced session: its digest chain across both
	// shards equals the same source served solo. The submission seed is
	// recoverable from the donor-side session id (submitted in order).
	for _, e := range rebalances {
		got, gotFrames := stitchDigests(sink, e.FromShard, e.FromSession)
		want := soloDigests(t, class, int64(e.FromSession+1), frames)
		if gotFrames != frames {
			t.Fatalf("rebalanced session %d: %d frames observed, want %d", e.FromSession, gotFrames, frames)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("rebalanced session %d digest chain differs from the unrebalanced run:\n got %v\nwant %v",
				e.FromSession, got, want)
		}
	}
}

// TestRebalanceQuietOnBalancedFleet: a fleet with even load never
// rebalances — and neither does a skewed one whose hysteresis window has
// not elapsed.
func TestRebalanceQuietOnBalancedFleet(t *testing.T) {
	sink := &recordingSink{}
	f, err := New(WithShards(2), WithRebalance(RebalanceConfig{Factor: 1.2, Windows: 1}), WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	classes := classesPerShard(t, f)
	for i, class := range classes {
		if _, err := f.Submit(testSource(t, class, int64(i+1), 8), testSessionConfig()); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	rep, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 2 || rep.Rebalanced != 0 {
		t.Fatalf("report %+v, want 2 completed with zero rebalances", rep)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.rebalances) != 0 {
		t.Fatalf("balanced fleet emitted rebalance events: %+v", sink.rebalances)
	}
}

// TestRebalanceHysteresisHoldsWithinWindow: a hot shard must stay put
// until it has been hot for Windows consecutive rounds — a skew shorter
// than the window never triggers a shed.
func TestRebalanceHysteresisHoldsWithinWindow(t *testing.T) {
	sink := &recordingSink{}
	f, class, home := hotFleet(t, 2, RebalanceConfig{Factor: 1.2, Windows: 100}, sink)
	for i := 0; i < 3; i++ {
		p, err := f.Submit(testSource(t, class, int64(i+1), 8), testSessionConfig())
		if err != nil {
			t.Fatal(err)
		}
		if p.Shard != home {
			t.Fatalf("session %d landed on shard %d, want %d", i, p.Shard, home)
		}
	}
	f.Close()
	rep, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 3 || rep.Failed != 0 {
		t.Fatalf("report %+v, want 3 completed", rep)
	}
	if rep.Rebalanced != 0 {
		t.Fatalf("%d rebalances before the hysteresis window elapsed", rep.Rebalanced)
	}
}

// TestRebalanceConfigValidation: a factor at or under 1 (every shard is
// always "hot") and negative knobs are refused.
func TestRebalanceConfigValidation(t *testing.T) {
	if _, err := New(WithRebalance(RebalanceConfig{Factor: 1.0})); err == nil {
		t.Fatal("factor 1.0 accepted")
	}
	if _, err := New(WithRebalance(RebalanceConfig{Factor: 2, Windows: -1})); err == nil {
		t.Fatal("negative windows accepted")
	}
	if _, err := New(WithRebalance(RebalanceConfig{Factor: 2, MaxMoves: -1})); err == nil {
		t.Fatal("negative max moves accepted")
	}
	// Defaults apply on the zero value.
	f, err := New(WithShards(2), WithRebalance(RebalanceConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if cfg := f.opts.rebalance; cfg.Factor != 1.5 || cfg.Windows != 2 {
		t.Fatalf("defaults %+v, want factor 1.5 windows 2", cfg)
	}
}
