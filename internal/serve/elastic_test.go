package serve

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mpsoc"
)

// classHomedOn searches for a class name the fleet's current ring homes
// on the given shard.
func classHomedOn(t *testing.T, f *Fleet, shard int) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		class := fmt.Sprintf("elastic-%d-%d", shard, i)
		if f.HomeShard(class) == shard {
			return class
		}
	}
	t.Fatalf("no class homes on shard %d", shard)
	return ""
}

// soloDigests serves one session alone on a bare server and returns its
// per-GOP bitstream digests — the ground truth a migrated run of the
// same source must reproduce bit for bit.
func soloDigests(t *testing.T, class string, seed int64, frames int) []uint64 {
	t.Helper()
	srv, err := core.NewServer(core.ServerConfig{Platform: mpsoc.XeonE5_2667V4(), FPS: 24})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(testSource(t, class, seed, frames), testSessionConfig()); err != nil {
		t.Fatal(err)
	}
	outs, err := srv.ServeAll(64)
	if err != nil {
		t.Fatal(err)
	}
	var digests []uint64
	for _, out := range outs {
		if gop := out.GOPs[0]; gop != nil {
			digests = append(digests, gop.Digest)
		}
	}
	return digests
}

// stitchDigests follows a session across migrations and rebalances:
// starting from its submission key (shard, session), it chains the
// per-key GOP digests in GOP-index order, hopping keys at every
// migration/rebalance event. Returns the digests and the total frames
// observed.
func stitchDigests(sink *recordingSink, shard, session int) ([]uint64, int) {
	sink.mu.Lock()
	defer sink.mu.Unlock()
	type key struct{ shard, session int }
	gops := make(map[key][]GOPEvent)
	for _, e := range sink.gops {
		k := key{e.Shard, e.Session}
		gops[k] = append(gops[k], e)
	}
	next := make(map[key]key)
	for _, m := range append(append([]MigrationEvent(nil), sink.migrations...), sink.rebalances...) {
		next[key{m.FromShard, m.FromSession}] = key{m.ToShard, m.ToSession}
	}
	var digests []uint64
	frames := 0
	k := key{shard, session}
	for hops := 0; hops < 100; hops++ {
		evs := gops[k]
		// Per (shard, session) the GOPs arrive in round order (the Sink
		// contract), which is GOP-index order for one session.
		for _, e := range evs {
			digests = append(digests, e.GOP.Digest)
			frames += len(e.GOP.Frames)
		}
		nk, ok := next[k]
		if !ok {
			break
		}
		k = nk
	}
	return digests, frames
}

// TestFleetElasticChurn is the acceptance scenario: a fleet resizes
// 2→4→3 while serving, the drained shard's session migrates at a GOP
// boundary, nothing is lost — every session completes, frame and GOP
// counts add up exactly — and the migrated session's bitstream digests
// equal the same session served solo without migration.
func TestFleetElasticChurn(t *testing.T) {
	sink := &recordingSink{}
	ticks := make(chan int, 256)
	f, err := New(WithShards(2), WithSink(sink), WithRoundHook(func(shard int, out *core.GOPOutcome) {
		select {
		case ticks <- shard:
		default:
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	waitRound := func(shard int) {
		t.Helper()
		deadline := time.After(60 * time.Second)
		for {
			select {
			case s := <-ticks:
				if shard < 0 || s == shard {
					return
				}
			case <-deadline:
				t.Fatal("timed out waiting for a serving round")
			}
		}
	}

	// Two sessions on the initial shards, long enough to outlive both
	// resizes.
	classes := classesPerShard(t, f)
	for i, class := range classes {
		if _, err := f.Submit(testSource(t, class, int64(i+1), 24), testSessionConfig()); err != nil {
			t.Fatal(err)
		}
	}
	var rep *Report
	var runErr error
	runDone := make(chan struct{})
	go func() {
		rep, runErr = f.Run(context.Background())
		close(runDone)
	}()

	// Grow 2→4 once the fleet is visibly serving.
	waitRound(-1)
	if err := f.Resize(4); err != nil {
		t.Fatal(err)
	}
	if got := f.Shards(); got != 4 {
		t.Fatalf("live shards %d after grow, want 4", got)
	}

	// The migration victim: a long session homed on shard 3 — the shard
	// the shrink will remove.
	victimClass := classHomedOn(t, f, 3)
	const victimFrames = 32
	p, err := f.Submit(testSource(t, victimClass, 7, victimFrames), testSessionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Shard != 3 {
		t.Fatalf("victim landed on shard %d, want its home 3", p.Shard)
	}
	// Capture the donor-side id now: adoption renames the live session.
	victimID := p.Session.ID

	// Let shard 3 serve a couple of GOP rounds, then shrink 4→3: shard 3
	// drains at the next GOP boundary and hands the victim over.
	waitRound(3)
	waitRound(3)
	if err := f.Resize(3); err != nil {
		t.Fatal(err)
	}
	if got := f.Shards(); got != 3 {
		t.Fatalf("live shards %d after shrink, want 3", got)
	}
	f.Close()
	<-runDone
	if runErr != nil {
		t.Fatal(runErr)
	}

	// Nothing lost: every session completed, and frame/GOP counts add up
	// across all shards — including the rounds the donor served.
	if rep.Submitted != 3 || rep.Completed != 3 || rep.Failed != 0 || rep.Rejected != 0 {
		t.Fatalf("report %+v, want 3 unique sessions all completed", rep)
	}
	if rep.Migrated != 1 {
		t.Fatalf("migration hops %d, want exactly 1 (the victim)", rep.Migrated)
	}
	wantFrames := 24 + 24 + victimFrames
	wantGOPs := 6 + 6 + victimFrames/4
	if rep.FramesEncoded != wantFrames || rep.GOPReports != wantGOPs {
		t.Fatalf("frames/GOPs %d/%d, want %d/%d — the resize lost work",
			rep.FramesEncoded, rep.GOPReports, wantFrames, wantGOPs)
	}

	// The sink saw the membership changes and the handoff, in a
	// consistent shape.
	sink.mu.Lock()
	added, removed, migs := append([]ShardEvent(nil), sink.added...),
		append([]ShardEvent(nil), sink.removed...),
		append([]MigrationEvent(nil), sink.migrations...)
	sink.mu.Unlock()
	if len(added) != 2 || added[0].Shard != 2 || added[1].Shard != 3 {
		t.Fatalf("shard-added events %+v, want shards 2 and 3", added)
	}
	if len(removed) != 1 || removed[0].Shard != 3 || removed[0].Live != 3 {
		t.Fatalf("shard-removed events %+v, want shard 3 with 3 live", removed)
	}
	if len(migs) != 1 {
		t.Fatalf("migration events %+v, want 1", migs)
	}
	m := migs[0]
	if m.FromShard != 3 || m.FromSession != victimID || m.ToShard == 3 || m.Class != victimClass {
		t.Fatalf("migration event %+v inconsistent with the victim", m)
	}
	if m.Frame%4 != 0 || m.Frame == 0 || m.Frame >= victimFrames {
		t.Fatalf("migrated at frame %d — not a mid-stream GOP boundary", m.Frame)
	}
	if p.Session.ID != m.ToSession {
		t.Fatalf("live session renamed to %d, migration event says %d", p.Session.ID, m.ToSession)
	}

	// Bit-identity: the victim's digest chain across both shards equals
	// the same session served solo.
	got, frames := stitchDigests(sink, 3, victimID)
	want := soloDigests(t, victimClass, 7, victimFrames)
	if frames != victimFrames {
		t.Fatalf("victim frames across shards %d, want %d", frames, victimFrames)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("migrated digest chain differs from the unmigrated run:\n got %v\nwant %v", got, want)
	}
}

// TestResizeDrainsHomeShardDuringChurn: removing the home shard of a
// class while its sessions stream and new ones keep arriving loses
// nothing — in-flight sessions migrate, later arrivals route to the
// class's new home.
func TestResizeDrainsHomeShardDuringChurn(t *testing.T) {
	sink := &recordingSink{}
	ticks := make(chan int, 256)
	f, err := New(WithShards(3), WithSink(sink), WithRoundHook(func(shard int, _ *core.GOPOutcome) {
		select {
		case ticks <- shard:
		default:
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	class := classHomedOn(t, f, 2) // homed on the shard the shrink removes
	for j := 0; j < 2; j++ {
		if p, err := f.Submit(testSource(t, class, int64(j+1), 16), testSessionConfig()); err != nil {
			t.Fatal(err)
		} else if p.Shard != 2 {
			t.Fatalf("session routed to shard %d, want home 2", p.Shard)
		}
	}
	var rep *Report
	var runErr error
	runDone := make(chan struct{})
	go func() {
		rep, runErr = f.Run(context.Background())
		close(runDone)
	}()
	deadline := time.After(60 * time.Second)
	seen := 0
	for seen < 2 {
		select {
		case s := <-ticks:
			if s == 2 {
				seen++
			}
		case <-deadline:
			t.Fatal("shard 2 never served")
		}
	}
	if err := f.Resize(2); err != nil {
		t.Fatal(err)
	}
	// A post-shrink arrival of the same class routes to the new home —
	// never to the removed shard.
	late, err := f.Submit(testSource(t, class, 3, 8), testSessionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if late.Shard == 2 {
		t.Fatal("arrival routed to the removed shard")
	}
	if want := f.HomeShard(class); late.Shard != want {
		t.Fatalf("arrival on shard %d, want the class's new home %d", late.Shard, want)
	}
	f.Close()
	<-runDone
	if runErr != nil {
		t.Fatal(runErr)
	}
	if rep.Submitted != 3 || rep.Completed != 3 || rep.Migrated != 2 {
		t.Fatalf("report %+v, want 3 completed with 2 migrations", rep)
	}
	// Zero lost GOP reports through the home-shard drain.
	if rep.FramesEncoded != 16+16+8 || rep.GOPReports != 4+4+2 {
		t.Fatalf("frames/GOPs %d/%d, want 40/10", rep.FramesEncoded, rep.GOPReports)
	}
	// The drained shard's estimation heat moved with the class.
	if lut := f.shardAt(late.Shard).srv.Store().ForClass(class); lut.Observations() == 0 {
		t.Fatal("class LUT did not migrate with its sessions")
	}
}

// TestResizeUpThenImmediatelyDown: growing and immediately shrinking
// while serving is a clean no-op for the session population.
func TestResizeUpThenImmediatelyDown(t *testing.T) {
	ticks := make(chan int, 64)
	f, err := New(WithShards(2), WithRoundHook(func(shard int, _ *core.GOPOutcome) {
		select {
		case ticks <- shard:
		default:
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	classes := classesPerShard(t, f)
	for i, class := range classes {
		if _, err := f.Submit(testSource(t, class, int64(i+1), 16), testSessionConfig()); err != nil {
			t.Fatal(err)
		}
	}
	var rep *Report
	var runErr error
	runDone := make(chan struct{})
	go func() {
		rep, runErr = f.Run(context.Background())
		close(runDone)
	}()
	select {
	case <-ticks:
	case <-time.After(60 * time.Second):
		t.Fatal("fleet never served")
	}
	if err := f.Resize(4); err != nil {
		t.Fatal(err)
	}
	if err := f.Resize(2); err != nil {
		t.Fatal(err)
	}
	if got := f.Shards(); got != 2 {
		t.Fatalf("live shards %d, want 2", got)
	}
	f.Close()
	<-runDone
	if runErr != nil {
		t.Fatal(runErr)
	}
	if rep.Submitted != 2 || rep.Completed != 2 || rep.Failed != 0 {
		t.Fatalf("report %+v, want both sessions completed", rep)
	}
	if rep.FramesEncoded != 32 || rep.GOPReports != 8 {
		t.Fatalf("frames/GOPs %d/%d, want 32/8", rep.FramesEncoded, rep.GOPReports)
	}
}

// TestResizeIdleFleet: resizing between runs — grow, shrink with queued
// sessions, then serve — migrates the queued sessions inline and loses
// nothing. Loads reports gone shards as Alive=false zero reports.
func TestResizeIdleFleet(t *testing.T) {
	f, err := New(WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	classes := classesPerShard(t, f)
	if _, err := f.Submit(testSource(t, classes[0], 1, 8), testSessionConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(testSource(t, classes[1], 2, 8), testSessionConfig()); err != nil {
		t.Fatal(err)
	}
	loads := f.Loads()
	if len(loads) != 2 || loads[0].Sessions != 1 || loads[1].Sessions != 1 ||
		!loads[0].Alive || !loads[1].Alive {
		t.Fatalf("Loads() = %+v, want one alive session on each shard", loads)
	}
	// Shrink to 1 with nothing running: shard 1's session migrates
	// inline onto shard 0.
	if err := f.Resize(1); err != nil {
		t.Fatal(err)
	}
	loads = f.Loads()
	if len(loads) != 2 || loads[0].Sessions != 2 || !loads[0].Alive {
		t.Fatalf("Loads() after idle shrink = %+v, want 2 alive sessions on shard 0", loads)
	}
	if dead := loads[1]; dead.Alive || dead.Sessions != 0 || dead.DemandCores != 0 || dead.CapacityCores != 0 {
		t.Fatalf("gone shard reports %+v, want a dead zero report", dead)
	}
	if got := f.Load(); got != 2 {
		t.Fatalf("Load() = %d, want 2", got)
	}
	f.Close()
	rep, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 2 || rep.Completed != 2 || rep.Migrated != 1 {
		t.Fatalf("report %+v, want 2 completed with 1 migration", rep)
	}
	if rep.FramesEncoded != 16 || rep.GOPReports != 4 {
		t.Fatalf("frames/GOPs %d/%d, want 16/4", rep.FramesEncoded, rep.GOPReports)
	}
	if err := f.Resize(0); err == nil {
		t.Fatal("Resize(0) accepted")
	}
}
