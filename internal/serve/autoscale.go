package serve

import (
	"fmt"
	"sort"
)

// The fleet control loop, part 1: autoscaling (DESIGN.md §10). The paper's
// per-MPSoC controller reacts to load every GOP; WithAutoscale lifts the
// same closed-loop idea one level up — Fleet.Run watches the fleet-wide
// demand-normalized utilization (summed session core demand over summed
// alive-shard capacity, see core.LoadReport) every settled round and calls
// Resize through a hysteresis window, so every embedder scales without
// re-implementing the loop. The policy kernel (scalePolicy) is pure
// state-machine code, separated from the goroutine plumbing so tests can
// drive it round by round.

// ScheduledResize is one forced entry of an autoscale schedule: once the
// fleet has served AfterRounds total rounds, resize to Shards. Schedules
// exist for reproducible demos and CI smokes — a pending schedule outranks
// the load policy, which stays quiet until the schedule has played out.
type ScheduledResize struct {
	AfterRounds int
	Shards      int
}

// AutoscaleConfig parametrizes the fleet's scaling loop (WithAutoscale).
type AutoscaleConfig struct {
	// MinShards and MaxShards bound the live shard count; the loop never
	// resizes outside [MinShards, MaxShards]. 0 defaults either bound to
	// the fleet's initial shard count, and a Schedule entry outside the
	// bounds widens them (an explicit schedule is never silently clamped
	// into a no-op).
	MinShards, MaxShards int
	// TargetUtil is the demand-normalized utilization the loop steers
	// toward (default 0.75): it grows when the fleet-wide utilization —
	// summed session core demand over summed alive-shard capacity —
	// exceeds TargetUtil, and shrinks when the demand would still fit
	// within TargetUtil on the capacity that remains after retiring the
	// highest-indexed shard. Demand-weighted on heterogeneous fleets: a
	// big shard absorbs proportionally more demand before the fleet
	// counts as saturated. (This knob replaced the session-count
	// TargetLoad — sessions differing by an order of magnitude in demand
	// made a per-shard session target meaningless.)
	TargetUtil float64
	// Window is the hysteresis: that many consecutive saturated (or idle)
	// round observations before a resize, and any observation on the other
	// side of the threshold resets the count (default 2).
	Window int
	// Schedule forces resizes at fixed round counts, in order; while any
	// entry is pending the load policy is suppressed.
	Schedule []ScheduledResize
	// OnResize, when set, is invoked from the scaling goroutine just
	// before each Resize call.
	OnResize func(from, to int, reason string)
	// OnError, when set, receives Resize failures (the loop keeps going).
	OnError func(err error)
}

// WithAutoscale runs the load-watching scaling loop inside Fleet.Run: a
// dedicated goroutine (resizes must never run on serving goroutines)
// observes every settled fleet round and applies cfg's schedule and
// hysteresis policy through Fleet.Resize. The loop starts with Run and
// stops when Run returns.
func WithAutoscale(cfg AutoscaleConfig) Option {
	return func(o *options) { o.autoscale = &cfg }
}

// validateAutoscale applies defaults and checks the config against the
// fleet's initial shard count n. Called from New.
func validateAutoscale(cfg *AutoscaleConfig, n int) error {
	if cfg.TargetUtil == 0 {
		cfg.TargetUtil = 0.75
	}
	if !(cfg.TargetUtil > 0) { // NaN-safe
		return fmt.Errorf("serve: autoscale target utilization %v", cfg.TargetUtil)
	}
	if cfg.Window == 0 {
		cfg.Window = 2
	}
	if cfg.Window < 0 {
		return fmt.Errorf("serve: autoscale window %d", cfg.Window)
	}
	if cfg.MinShards == 0 {
		cfg.MinShards = n
	}
	if cfg.MaxShards == 0 {
		cfg.MaxShards = n
	}
	if cfg.MinShards < 1 || cfg.MinShards > cfg.MaxShards {
		return fmt.Errorf("serve: autoscale bounds [%d, %d]", cfg.MinShards, cfg.MaxShards)
	}
	for _, st := range cfg.Schedule {
		if st.Shards < 1 {
			return fmt.Errorf("serve: scheduled resize to %d shards", st.Shards)
		}
		if st.Shards < cfg.MinShards {
			cfg.MinShards = st.Shards
		}
		if st.Shards > cfg.MaxShards {
			cfg.MaxShards = st.Shards
		}
	}
	if n < cfg.MinShards || n > cfg.MaxShards {
		return fmt.Errorf("serve: %d shards outside autoscale bounds [%d, %d]", n, cfg.MinShards, cfg.MaxShards)
	}
	return nil
}

// loadObservation is one settled-round snapshot of the alive shards —
// what the scale policy decides on. Dead shards (Alive false in
// Fleet.Loads) contribute nothing.
type loadObservation struct {
	// live counts the alive shards.
	live int
	// demand and capacity sum the alive shards' DemandCores and
	// CapacityCores.
	demand, capacity int
	// retireCap is the capacity of the shard a shrink would remove — the
	// highest-indexed alive shard (0 when none).
	retireCap int
}

// util is the fleet-wide demand-normalized utilization.
func (o loadObservation) util() float64 {
	if o.capacity <= 0 {
		return 0
	}
	return float64(o.demand) / float64(o.capacity)
}

// shrunkUtil is the utilization the fleet would run at after retiring the
// highest-indexed alive shard; +Inf-like sentinel via capacity 0 is
// avoided by reporting util 0 only when nothing would remain (the bounds
// check keeps such a shrink from firing anyway).
func (o loadObservation) shrunkUtil() float64 {
	rem := o.capacity - o.retireCap
	if rem <= 0 {
		return 0
	}
	return float64(o.demand) / float64(rem)
}

// scalePolicy is the pure decision kernel: fed one observation per settled
// fleet round, it says when to resize and to what. Not safe for concurrent
// use — the autoscaler goroutine owns it (and tests drive it directly).
type scalePolicy struct {
	min, max int
	target   float64
	window   int
	schedule []ScheduledResize

	upRun, dnRun int
}

func newScalePolicy(cfg AutoscaleConfig) *scalePolicy {
	sched := append([]ScheduledResize(nil), cfg.Schedule...)
	sort.SliceStable(sched, func(a, b int) bool { return sched[a].AfterRounds < sched[b].AfterRounds })
	return &scalePolicy{
		min:      cfg.MinShards,
		max:      cfg.MaxShards,
		target:   cfg.TargetUtil,
		window:   cfg.Window,
		schedule: sched,
	}
}

// observe feeds one settled-round observation: rounds is the total fleet
// round count, obs the alive shards' demand/capacity snapshot. It returns
// the shard count to resize to (clamped to the bounds) and the reason
// when a resize is due. A pending schedule entry fires first and
// suppresses the load policy; the load policy itself resizes one shard at
// a time after window consecutive observations on the same side of the
// target utilization, with any contrary observation resetting the run —
// the hysteresis that keeps a load oscillating around the threshold from
// ping-ponging the fleet. Growth and shrink cannot ping-pong each other
// either: a grow fires at util above target, and the shrink test asks
// whether the demand fits within target on the *post-shrink* capacity —
// right after a justified grow it cannot.
func (p *scalePolicy) observe(rounds int, obs loadObservation) (int, string, bool) {
	if len(p.schedule) > 0 {
		if rounds >= p.schedule[0].AfterRounds {
			st := p.schedule[0]
			p.schedule = p.schedule[1:]
			return p.clamp(st.Shards), "scheduled", true
		}
		return 0, "", false // let the schedule play out before reacting to load
	}
	if p.min >= p.max || obs.live == 0 {
		return 0, "", false
	}
	switch {
	case obs.live < p.max && obs.util() > p.target:
		p.upRun++
		p.dnRun = 0
		if p.upRun >= p.window {
			p.upRun = 0
			return p.clamp(obs.live + 1), fmt.Sprintf("sustained saturation (util %.2f over %d shards)", obs.util(), obs.live), true
		}
	case obs.live > p.min && obs.shrunkUtil() <= p.target:
		p.dnRun++
		p.upRun = 0
		if p.dnRun >= p.window {
			p.dnRun = 0
			return p.clamp(obs.live - 1), fmt.Sprintf("sustained idleness (util %.2f after retiring one of %d shards)", obs.shrunkUtil(), obs.live), true
		}
	default:
		p.upRun, p.dnRun = 0, 0
	}
	return 0, "", false
}

// pending reports whether schedule entries remain.
func (p *scalePolicy) pending() bool { return len(p.schedule) > 0 }

// clamp bounds a target shard count to [min, max].
func (p *scalePolicy) clamp(n int) int {
	if n > p.max {
		n = p.max
	}
	if n < p.min {
		n = p.min
	}
	return n
}

// autoscaler is the runtime around the policy: a goroutine fed one tick
// per settled fleet round (non-blocking from the serving goroutines), so
// Resize — which waits for drained shards' serving loops — never runs on
// a serving goroutine.
type autoscaler struct {
	fleet   *Fleet
	cfg     AutoscaleConfig
	policy  *scalePolicy
	ticks   chan int
	done    chan struct{}
	stopped chan struct{}
}

func newAutoscaler(f *Fleet, cfg AutoscaleConfig) *autoscaler {
	a := &autoscaler{
		fleet:   f,
		cfg:     cfg,
		policy:  newScalePolicy(cfg),
		ticks:   make(chan int, 64),
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	go a.loop()
	return a
}

// tick reports a settled fleet round (non-blocking; called from serving
// goroutines via the fleet's round dispatch).
func (a *autoscaler) tick(totalRounds int) {
	select {
	case a.ticks <- totalRounds:
	default:
	}
}

// stop ends the loop and waits for an in-flight resize to land.
func (a *autoscaler) stop() {
	close(a.done)
	<-a.stopped
}

func (a *autoscaler) loop() {
	defer close(a.stopped)
	for {
		select {
		case <-a.done:
			return
		case rounds := <-a.ticks:
			// A tick can fire several overdue schedule entries back to
			// back (each resize lands before the next is considered); the
			// load policy decides at most once per tick.
			for {
				n, reason, ok := a.policy.observe(rounds, a.fleet.loadObservation())
				if !ok {
					break
				}
				a.resize(n, reason)
				if !a.policy.pending() && reason != "scheduled" {
					break
				}
			}
		}
	}
}

// resize applies one decision, skipping no-ops.
func (a *autoscaler) resize(n int, reason string) {
	from := a.fleet.Shards()
	if n == from {
		return
	}
	if a.cfg.OnResize != nil {
		a.cfg.OnResize(from, n, reason)
	}
	if err := a.fleet.Resize(n); err != nil && a.cfg.OnError != nil {
		a.cfg.OnError(err)
	}
}

// loadObservation snapshots the alive shards' demand and capacity — the
// autoscale policy's observation.
func (f *Fleet) loadObservation() loadObservation {
	var o loadObservation
	for _, r := range f.Loads() {
		if !r.Alive {
			continue
		}
		o.live++
		o.demand += r.DemandCores
		o.capacity += r.CapacityCores
		// The highest-indexed alive shard is the one a shrink retires.
		o.retireCap = r.CapacityCores
	}
	return o
}
