package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/medgen"
	"repro/internal/mpsoc"
	"repro/internal/sched"
	"repro/internal/workload"
)

// testSource renders a deterministic synthetic study under an arbitrary
// workload-class name (the routing key).
func testSource(t testing.TB, class string, seed int64, frames int) core.FrameSource {
	t.Helper()
	cfg := medgen.Default()
	cfg.Width, cfg.Height = 256, 192
	cfg.Class = medgen.Class(int(seed) % medgen.NumClasses)
	cfg.Motion = []medgen.MotionKind{medgen.Rotate, medgen.Pan, medgen.Sweep, medgen.Still}[int(seed)%4]
	cfg.Frames = frames
	cfg.Seed = seed
	g, err := medgen.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := core.SourceFromGenerator(g, frames, cfg.FPS, class)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// testSessionConfig shrinks geometry-dependent parameters for 256×192.
func testSessionConfig() core.SessionConfig {
	cfg := core.DefaultSessionConfig()
	cfg.Codec.GOPSize = 4
	cfg.Codec.IntraPeriod = 8
	cfg.Retile.MinTileW, cfg.Retile.MinTileH = 48, 48
	return cfg
}

// classesPerShard finds one class name homed on every shard of an
// n-shard fleet.
func classesPerShard(t *testing.T, f *Fleet) []string {
	t.Helper()
	out := make([]string, f.Shards())
	found := 0
	for i := 0; found < f.Shards() && i < 10000; i++ {
		class := fmt.Sprintf("class-%d", i)
		home := f.HomeShard(class)
		if out[home] == "" {
			out[home] = class
			found++
		}
	}
	if found != f.Shards() {
		t.Fatalf("could not find a class for every shard: %v", out)
	}
	return out
}

// TestFleetRoutesByClassAndCompletes: sessions land on their class's home
// shard, every shard serves, and the fleet drains cleanly.
func TestFleetRoutesByClassAndCompletes(t *testing.T) {
	f, err := New(WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	classes := classesPerShard(t, f)
	perShard := make([]int, 3)
	for i, class := range classes {
		for j := 0; j < 2; j++ {
			p, err := f.Submit(testSource(t, class, int64(i*10+j+1), 8), testSessionConfig())
			if err != nil {
				t.Fatal(err)
			}
			if p.Shard != i {
				t.Fatalf("class %q routed to shard %d, home is %d", class, p.Shard, i)
			}
			perShard[p.Shard]++
		}
	}
	f.Close()
	rep, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 6 || rep.Completed != 6 || rep.Failed != 0 || rep.Rejected != 0 {
		t.Fatalf("fleet report %+v, want 6 completed", rep)
	}
	// Zero lost GOP reports: 6 sessions × 8 frames in GOPs of 4.
	if rep.GOPReports != 6*2 || rep.FramesEncoded != 6*8 {
		t.Fatalf("GOP reports %d frames %d, want 12 and 48", rep.GOPReports, rep.FramesEncoded)
	}
	for i, sr := range rep.Shards {
		if sr.Err != nil || sr.Restarts != 0 {
			t.Fatalf("shard %d: err %v restarts %d", i, sr.Err, sr.Restarts)
		}
		if len(sr.Report.Completed) != perShard[i] {
			t.Fatalf("shard %d completed %v, want %d sessions", i, sr.Report.Completed, perShard[i])
		}
	}
}

// TestLeastLoadedFallback: a saturated home shard routes the overflow to
// the least-loaded shard instead of queueing behind its own class.
func TestLeastLoadedFallback(t *testing.T) {
	f, err := New(WithShards(3), WithShardCapacity(1))
	if err != nil {
		t.Fatal(err)
	}
	classes := classesPerShard(t, f)
	class := classes[0]
	// Pre-load shard 2 so the fallback has a load gradient to follow.
	if _, err := f.Submit(testSource(t, classes[2], 77, 8), testSessionConfig()); err != nil {
		t.Fatal(err)
	}
	first, err := f.Submit(testSource(t, class, 1, 8), testSessionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if first.Shard != 0 {
		t.Fatalf("first session of class %q on shard %d, want home 0", class, first.Shard)
	}
	// Home shard 0 is at capacity; shard 1 is empty, shard 2 holds one.
	second, err := f.Submit(testSource(t, class, 2, 8), testSessionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if second.Shard != 1 {
		t.Fatalf("overflow session on shard %d, want least-loaded 1", second.Shard)
	}
	f.Close()
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestFleetSubmitRefusedEverywhere: a closed fleet refuses submissions
// with the shard's error surfaced.
func TestFleetSubmitRefusedEverywhere(t *testing.T) {
	f, err := New(WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := f.Submit(testSource(t, "any", 1, 4), testSessionConfig()); err == nil {
		t.Fatal("Submit succeeded on a closed fleet")
	}
}

// recordingSink captures every event for assertions. The On* path is
// serialized by the fleet; the mutex covers test-goroutine reads.
type recordingSink struct {
	mu         sync.Mutex
	gops       []GOPEvent
	states     []SessionEvent
	placements []PlacementEvent
	rounds     []RoundEvent
	added      []ShardEvent
	removed    []ShardEvent
	migrations []MigrationEvent
	rebalances []MigrationEvent
}

func (r *recordingSink) OnGOP(e GOPEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gops = append(r.gops, e)
}

func (r *recordingSink) OnSessionStateChange(e SessionEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.states = append(r.states, e)
}

func (r *recordingSink) OnSessionPlaced(e PlacementEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.placements = append(r.placements, e)
}

func (r *recordingSink) OnRoundMetrics(e RoundEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rounds = append(r.rounds, e)
}

func (r *recordingSink) OnShardAdded(e ShardEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.added = append(r.added, e)
}

func (r *recordingSink) OnShardRemoved(e ShardEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.removed = append(r.removed, e)
}

func (r *recordingSink) OnSessionMigrated(e MigrationEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.migrations = append(r.migrations, e)
}

func (r *recordingSink) OnSessionRebalanced(e MigrationEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rebalances = append(r.rebalances, e)
}

// TestShardCrashIsolation is the kill-one-shard acceptance criterion: a
// shard whose serving loop dies for good takes only its own sessions
// down; the remaining shards finish all of theirs with zero lost GOP
// reports, and the sink sees the dead shard's failures.
func TestShardCrashIsolation(t *testing.T) {
	reg := sched.NewRegistry()
	if err := reg.Register(sched.NameContentAware, "", sched.AllocateContentAware); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("allocator exploded")
	if err := reg.Register("crash", "always fails", func(sched.Input) (*sched.Result, error) {
		return nil, boom
	}); err != nil {
		t.Fatal(err)
	}
	sink := &recordingSink{}
	f, err := New(
		WithShards(3),
		WithRegistry(reg),
		WithShardAllocator(1, "crash"),
		WithMaxRestarts(0),
		WithSink(sink),
	)
	if err != nil {
		t.Fatal(err)
	}
	classes := classesPerShard(t, f)
	perShard := make([]int, 3)
	for i, class := range classes {
		for j := 0; j < 2; j++ {
			p, err := f.Submit(testSource(t, class, int64(i*10+j+1), 8), testSessionConfig())
			if err != nil {
				t.Fatal(err)
			}
			perShard[p.Shard]++
		}
	}
	f.Close()
	rep, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// The dead shard: gave up, sessions aborted as failed.
	dead := rep.Shards[1]
	if dead.Err == nil || !errors.Is(dead.Err, boom) {
		t.Fatalf("dead shard error %v, want the allocator failure", dead.Err)
	}
	if len(dead.Aborted) != perShard[1] || len(dead.Report.Failed) != perShard[1] {
		t.Fatalf("dead shard aborted %v failed %v, want %d sessions", dead.Aborted, dead.Report.Failed, perShard[1])
	}

	// The survivors: every session completed, zero lost GOP reports.
	for _, si := range []int{0, 2} {
		sr := rep.Shards[si]
		if sr.Err != nil {
			t.Fatalf("surviving shard %d reported error %v", si, sr.Err)
		}
		if len(sr.Report.Completed) != perShard[si] || len(sr.Report.Failed) != 0 {
			t.Fatalf("surviving shard %d completed %v failed %v", si, sr.Report.Completed, sr.Report.Failed)
		}
		if sr.Report.GOPReports != perShard[si]*2 || sr.Report.FramesEncoded != perShard[si]*8 {
			t.Fatalf("surviving shard %d lost GOP reports: %d reports, %d frames",
				si, sr.Report.GOPReports, sr.Report.FramesEncoded)
		}
	}

	// The sink saw the dead shard's failures, with the cause attached.
	failures := map[int]int{}
	for _, e := range sink.states {
		if e.State == core.StateFailed {
			failures[e.Shard]++
			if !errors.Is(e.Err, boom) {
				t.Fatalf("failure event without the cause: %+v", e)
			}
		}
	}
	if failures[1] != perShard[1] || failures[0] != 0 || failures[2] != 0 {
		t.Fatalf("sink failure events per shard: %v, want only shard 1's %d", failures, perShard[1])
	}
	// And the survivors' GOPs all streamed through.
	gops := map[int]int{}
	for _, e := range sink.gops {
		gops[e.Shard]++
	}
	if gops[0] != perShard[0]*2 || gops[2] != perShard[2]*2 || gops[1] != 0 {
		t.Fatalf("sink GOP events per shard: %v", gops)
	}
}

// TestShardRestartRecovers: a transient serving-loop failure is healed in
// place — the shard restarts, its sessions survive and complete.
func TestShardRestartRecovers(t *testing.T) {
	reg := sched.NewRegistry()
	var failures atomic.Int32
	if err := reg.Register("flaky", "fails once", func(in sched.Input) (*sched.Result, error) {
		if failures.CompareAndSwap(0, 1) {
			return nil, errors.New("transient allocator failure")
		}
		return sched.AllocateContentAware(in)
	}); err != nil {
		t.Fatal(err)
	}
	f, err := New(WithShards(1), WithRegistry(reg), WithAllocator("flaky"), WithMaxRestarts(2))
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		if _, err := f.Submit(testSource(t, "warm", int64(j+1), 8), testSessionConfig()); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	rep, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sr := rep.Shards[0]
	if sr.Restarts != 1 || sr.Err != nil {
		t.Fatalf("restarts %d err %v, want one clean restart", sr.Restarts, sr.Err)
	}
	if len(sr.Report.Completed) != 2 || sr.Report.GOPReports != 4 || sr.Report.FramesEncoded != 16 {
		t.Fatalf("post-restart report %+v — sessions did not survive the restart", sr.Report)
	}
}

// TestFleetCancellation: cancelling the context stops every shard and
// surfaces ctx.Err.
func TestFleetCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	f, err := New(WithShards(2), WithRoundHook(func(int, *core.GOPOutcome) { cancel() }))
	if err != nil {
		t.Fatal(err)
	}
	classes := classesPerShard(t, f)
	for i, class := range classes {
		if _, err := f.Submit(testSource(t, class, int64(i+1), 16), testSessionConfig()); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := f.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error %v, want context.Canceled", err)
	}
	for _, sr := range rep.Shards {
		if sr.Err != nil {
			t.Fatalf("cancellation misreported as shard %d fault: %v", sr.Shard, sr.Err)
		}
	}
}

// driftModel mirrors the core churn scenario's deterministic "thermal
// drift" time model.
func driftModel() func(codec.TileStats) time.Duration {
	n := 0
	return func(ts codec.TileStats) time.Duration {
		n++
		base := time.Duration(ts.Tile.Area()) * 40 * time.Nanosecond
		return base + base*time.Duration(n)/25
	}
}

// churnDirect runs the PR 2 churn acceptance scenario on a bare
// core.Server and returns its ServiceReport — the old API's ground truth.
func churnDirect(t *testing.T) *core.ServiceReport {
	t.Helper()
	var srv *core.Server
	motions := []medgen.MotionKind{medgen.Rotate, medgen.Pan, medgen.Sweep, medgen.Still}
	submitted := 0
	submit := func() {
		cfg := testSessionConfig()
		cfg.TimeModel = driftModel()
		vc := medgen.Default()
		vc.Width, vc.Height = 256, 192
		vc.Class = medgen.Brain
		vc.Motion = motions[submitted]
		vc.Frames = 16
		vc.Seed = int64(medgen.Brain)*100 + int64(motions[submitted]) + 1
		g, err := medgen.NewGenerator(vc)
		if err != nil {
			t.Fatal(err)
		}
		src, err := core.SourceFromGenerator(g, 16, vc.FPS, "brain")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Submit(src, cfg); err != nil {
			t.Fatal(err)
		}
		submitted++
	}
	var err error
	srv, err = core.NewServer(core.ServerConfig{
		Platform:    mpsoc.XeonE5_2667V4(),
		FPS:         24,
		Calibration: core.CalibrationConfig{Enabled: true, Alpha: 0.6},
		OnRound: func(out *core.GOPOutcome) {
			switch out.Round {
			case 0:
				submit()
			case 1:
				submit()
				srv.Close()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	submit()
	submit()
	rep, err := srv.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestRingSinkMatchesServiceReport is the redesign's compatibility
// criterion: on the existing churn scenario, a single-shard fleet with a
// ring-buffer sink reconstructs exactly the ServiceReport the old API
// produced — nothing the old report could tell you is lost.
func TestRingSinkMatchesServiceReport(t *testing.T) {
	want := churnDirect(t)

	sink := NewRingSink(64)
	var f *Fleet
	submitted := 0
	motions := []medgen.MotionKind{medgen.Rotate, medgen.Pan, medgen.Sweep, medgen.Still}
	submit := func() {
		cfg := testSessionConfig()
		cfg.TimeModel = driftModel()
		vc := medgen.Default()
		vc.Width, vc.Height = 256, 192
		vc.Class = medgen.Brain
		vc.Motion = motions[submitted]
		vc.Frames = 16
		vc.Seed = int64(medgen.Brain)*100 + int64(motions[submitted]) + 1
		g, err := medgen.NewGenerator(vc)
		if err != nil {
			t.Fatal(err)
		}
		src, err := core.SourceFromGenerator(g, 16, vc.FPS, "brain")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Submit(src, cfg); err != nil {
			t.Fatal(err)
		}
		submitted++
	}
	var err error
	f, err = New(
		WithShards(1),
		WithCalibration(core.CalibrationConfig{Enabled: true, Alpha: 0.6}),
		WithSink(sink),
		WithRoundHook(func(_ int, out *core.GOPOutcome) {
			switch out.Round {
			case 0:
				submit()
			case 1:
				submit()
				f.Close()
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	submit()
	submit()
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	got := sink.Report(0)
	if sink.Dropped() != 0 {
		t.Fatalf("ring dropped %d outcomes — capacity too small for the scenario", sink.Dropped())
	}
	if got.Rounds != want.Rounds || got.Submitted != want.Submitted {
		t.Fatalf("rounds/submitted %d/%d, want %d/%d", got.Rounds, got.Submitted, want.Rounds, want.Submitted)
	}
	if fmt.Sprint(got.Completed) != fmt.Sprint(want.Completed) ||
		fmt.Sprint(got.Rejected) != fmt.Sprint(want.Rejected) ||
		fmt.Sprint(got.Failed) != fmt.Sprint(want.Failed) {
		t.Fatalf("terminal states %v/%v/%v, want %v/%v/%v",
			got.Completed, got.Rejected, got.Failed, want.Completed, want.Rejected, want.Failed)
	}
	if got.FramesEncoded != want.FramesEncoded || got.GOPReports != want.GOPReports {
		t.Fatalf("frames/GOPs %d/%d, want %d/%d", got.FramesEncoded, got.GOPReports, want.FramesEncoded, want.GOPReports)
	}
	if got.Energy != want.Energy {
		t.Fatalf("energy totals %+v, want %+v", got.Energy, want.Energy)
	}
	if len(got.Outcomes) != len(want.Outcomes) {
		t.Fatalf("%d outcomes, want %d", len(got.Outcomes), len(want.Outcomes))
	}
	for r := range got.Outcomes {
		g, w := got.Outcomes[r], want.Outcomes[r]
		if g.Round != w.Round || g.EstimateErr != w.EstimateErr || g.EstimateTiles != w.EstimateTiles {
			t.Fatalf("round %d metrics differ: %+v vs %+v", r, g, w)
		}
		for id, gop := range w.GOPs {
			if g.GOPs[id] == nil || g.GOPs[id].Digest != gop.Digest {
				t.Fatalf("round %d session %d bitstream differs from the old serving path", r, id)
			}
		}
	}
	ge, gt := got.MeanEstimateErr(3)
	we, wt := want.MeanEstimateErr(3)
	if ge != we || gt != wt {
		t.Fatalf("MeanEstimateErr (%v,%d), want (%v,%d)", ge, gt, we, wt)
	}
}

// TestRingSinkBounded: the ring keeps aggregates exact while trimming
// outcome memory to its capacity.
func TestRingSinkBounded(t *testing.T) {
	sink := NewRingSink(2)
	f, err := New(WithShards(1), WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(testSource(t, "c", 1, 16), testSessionConfig()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep := sink.Report(0)
	if rep.Rounds != 4 || rep.GOPReports != 4 || rep.FramesEncoded != 16 {
		t.Fatalf("aggregates %d/%d/%d, want 4 rounds, 4 GOPs, 16 frames", rep.Rounds, rep.GOPReports, rep.FramesEncoded)
	}
	if len(rep.Outcomes) != 2 || sink.Dropped() != 2 {
		t.Fatalf("ring kept %d outcomes (dropped %d), want the last 2", len(rep.Outcomes), sink.Dropped())
	}
	if rep.Outcomes[0].Round != 2 || rep.Outcomes[1].Round != 3 {
		t.Fatalf("ring outcomes are rounds %d,%d — want the most recent 2,3",
			rep.Outcomes[0].Round, rep.Outcomes[1].Round)
	}
}

// TestFleetLUTPersistence: a fleet with WithLUTStore saves its merged
// warm LUTs on a clean run, and a new fleet at the same path starts with
// every shard warm (the restart-warm ROADMAP item).
func TestFleetLUTPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "luts.json")
	f, err := New(WithShards(2), WithLUTStore(path), WithCalibration(core.CalibrationConfig{Enabled: true}))
	if err != nil {
		t.Fatal(err)
	}
	classes := classesPerShard(t, f)
	for i, class := range classes {
		if _, err := f.Submit(testSource(t, class, int64(i+1), 8), testSessionConfig()); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("clean run did not save the LUT store: %v", err)
	}
	if len(raw) == 0 {
		t.Fatal("saved LUT store is empty")
	}

	// A restarted fleet starts warm: every shard's store already holds
	// both classes' observations and calibration state.
	f2, err := New(WithShards(2), WithLUTStore(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f2.shards {
		for _, class := range classes {
			lut := s.srv.Store().ForClass(class)
			if lut.Observations() == 0 {
				t.Fatalf("shard %d class %q is cold after restart", s.index, class)
			}
			if lut.Calibrations() == 0 {
				t.Fatalf("shard %d class %q lost its calibration state", s.index, class)
			}
		}
	}

	// Shards must not share the loaded store.
	f2.shards[0].srv.Store().ForClass(classes[0]).Observe(workload.MakeKey(4096, 0, 0, 32, 16), time.Millisecond)
	a := f2.shards[0].srv.Store().ForClass(classes[0]).Observations()
	b := f2.shards[1].srv.Store().ForClass(classes[0]).Observations()
	if a == b {
		t.Fatal("shards share one LUT store — estimation state must be per-shard")
	}

	// Corrupt file: New fails loudly instead of starting silently cold.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(WithShards(1), WithLUTStore(path)); err == nil {
		t.Fatal("corrupt LUT store accepted")
	}
}

// TestFleetRunContract: Run refuses to overlap itself and New validates
// option errors.
func TestFleetRunContract(t *testing.T) {
	if _, err := New(WithShards(0)); err == nil {
		t.Fatal("0 shards accepted")
	}
	if _, err := New(WithAllocator("no-such-policy")); err == nil {
		t.Fatal("unknown allocator accepted")
	}
	if _, err := New(WithShards(2), WithShardAllocator(5, sched.NameBaseline)); err == nil {
		t.Fatal("out-of-range shard allocator accepted")
	}
	f, err := New(WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	go func() {
		close(started)
		_, _ = f.Run(context.Background())
	}()
	<-started
	time.Sleep(10 * time.Millisecond)
	if _, err := f.Run(context.Background()); err == nil {
		t.Fatal("second concurrent Run allowed")
	}
	f.Close()
}
