package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/tenancy"
)

// The multi-tenant QoS acceptance scenarios (ISSUE 10, DESIGN.md §15):
// mixed-tenant churn, the noisy neighbor (a flooding heavy tenant cannot
// starve a light one out of its weighted core share), and the flash
// crowd (an emergency-priority arrival is admitted in its arrival round
// by pushing best-effort sessions down the admission ladder, leaving an
// unrelated tenant's output bit-identical). Demand is pinned with
// pixelCostModel so every scenario is deterministic: a warmed 256×192
// session at 800 ns/pixel costs exactly one core.

// tenantPlatform8 builds the single 8-core shard the QoS scenarios
// saturate.
func tenantPlatform8() Option { return WithPlatforms(heteroPlatform(8)) }

// tenantSessionConfig pins a deterministic one-core-when-warm session:
// the coarse grid keeps the cold 5 ms-per-tile prior small and the pixel
// cost model makes the warmed per-frame estimate pure geometry.
func tenantSessionConfig() core.SessionConfig {
	cfg := testSessionConfig()
	cfg.Retile.MinTileW, cfg.Retile.MinTileH = 84, 64
	cfg.TimeModel = pixelCostModel(800)
	return cfg
}

// TestSubmitShimEquivalence pins the deprecated two-argument front door:
// Fleet.Submit(src, cfg) must behave exactly like SubmitWith with the
// zero QoS identity — same placement, same default-tenant labeling, and
// bit-identical output.
func TestSubmitShimEquivalence(t *testing.T) {
	run := func(legacy bool) (*Report, *recordingSink, Placement) {
		sink := &recordingSink{}
		f, err := New(WithShards(2), WithSink(sink))
		if err != nil {
			t.Fatal(err)
		}
		src := testSource(t, "shim-class", 5, 8)
		var p Placement
		if legacy {
			p, err = f.Submit(src, testSessionConfig())
		} else {
			p, err = f.SubmitWith(SubmitRequest{Source: src, Config: testSessionConfig()})
		}
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
		rep, err := f.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep, sink, p
	}

	oldRep, oldSink, oldP := run(true)
	newRep, newSink, newP := run(false)

	if oldP.Shard != newP.Shard || oldP.Session.ID != newP.Session.ID {
		t.Fatalf("placement diverged: legacy shard %d session %d, request shard %d session %d",
			oldP.Shard, oldP.Session.ID, newP.Shard, newP.Session.ID)
	}
	if oldRep.Completed != 1 || newRep.Completed != 1 ||
		oldRep.FramesEncoded != newRep.FramesEncoded || oldRep.GOPReports != newRep.GOPReports {
		t.Fatalf("reports diverged: legacy %+v, request %+v", oldRep, newRep)
	}
	oldDigests, _ := stitchDigests(oldSink, oldP.Shard, oldP.Session.ID)
	newDigests, _ := stitchDigests(newSink, newP.Shard, newP.Session.ID)
	if len(oldDigests) != len(newDigests) || len(oldDigests) == 0 {
		t.Fatalf("digest chains: legacy %d GOPs, request %d", len(oldDigests), len(newDigests))
	}
	for i := range oldDigests {
		if oldDigests[i] != newDigests[i] {
			t.Fatalf("GOP %d digest diverged between the shim and SubmitWith", i)
		}
	}
	// Both spell the default tenant the same way on telemetry.
	for _, sink := range []*recordingSink{oldSink, newSink} {
		sink.mu.Lock()
		for _, e := range sink.placements {
			if e.Tenant != "" || e.Priority != 0 {
				t.Fatalf("placement carries QoS identity %q/%d, want the zero default", e.Tenant, e.Priority)
			}
		}
		sink.mu.Unlock()
	}
}

// TestMixedTenantChurn drives three tenants (one rate-limited) plus
// legacy default-tenant submissions through a two-shard fleet: every
// admitted session completes, placements carry the right tenant, the
// per-round tenant-cores observable never names an unknown tenant, and
// the over-rate tenant's third submission is refused at the front door
// with ErrRateLimited — before any shard is touched.
func TestMixedTenantChurn(t *testing.T) {
	reg := tenancy.NewRegistry(
		tenancy.Tenant{ID: "alpha", Weight: 2},
		tenancy.Tenant{ID: "beta", Weight: 1},
		tenancy.Tenant{ID: "burst", Weight: 1, Rate: 1e-9, Burst: 2},
	)
	sink := &recordingSink{}
	f, err := New(WithShards(2), WithSink(sink), WithTenancy(reg),
		WithAdmission(core.AdmissionConfig{Enabled: true}))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{} // tenant → submitted sessions
	submit := func(tenant string, seed int64) {
		t.Helper()
		_, err := f.SubmitWith(SubmitRequest{
			Source: testSource(t, "churn-"+tenant, seed, 8),
			Config: tenantSessionConfig(),
			Tenant: tenant,
		})
		if err != nil {
			t.Fatal(err)
		}
		want[tenant]++
	}
	for i := 0; i < 3; i++ {
		submit("alpha", int64(10+i))
		submit("beta", int64(20+i))
	}
	// The burst tenant's bucket holds exactly two tokens and refills at a
	// negligible rate: the third submission must bounce at the front door.
	submit("burst", 30)
	submit("burst", 31)
	if _, err := f.SubmitWith(SubmitRequest{
		Source: testSource(t, "churn-burst", 32, 8),
		Config: tenantSessionConfig(),
		Tenant: "burst",
	}); !errors.Is(err, tenancy.ErrRateLimited) {
		t.Fatalf("over-rate submission returned %v, want ErrRateLimited", err)
	}
	// The deprecated shim rides along as the default tenant.
	if _, err := f.Submit(testSource(t, "churn-default", 40, 8), tenantSessionConfig()); err != nil {
		t.Fatal(err)
	}
	want[""]++

	f.Close()
	rep, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 9 || rep.Completed != 9 || rep.Rejected != 0 || rep.Failed != 0 {
		t.Fatalf("fleet report %+v, want all 9 admitted sessions completed", rep)
	}
	if rep.FramesEncoded != 9*8 || rep.GOPReports != 9*2 {
		t.Fatalf("frames/GOPs %d/%d, want 72/18", rep.FramesEncoded, rep.GOPReports)
	}

	sink.mu.Lock()
	defer sink.mu.Unlock()
	got := map[string]int{}
	for _, e := range sink.placements {
		got[e.Tenant]++
	}
	for tenant, n := range want {
		if got[tenant] != n {
			t.Fatalf("placements for tenant %q: %d, want %d (all: %v)", tenant, got[tenant], n, got)
		}
	}
	known := map[string]bool{"": true, "alpha": true, "beta": true, "burst": true}
	for _, e := range sink.rounds {
		for tenant := range e.Outcome.TenantCores {
			if !known[tenant] {
				t.Fatalf("round %d names unknown tenant %q in TenantCores", e.Outcome.Round, tenant)
			}
		}
	}
}

// TestNoisyNeighborWeightedFairness is the acceptance criterion for
// weighted fairness: tenants weighted 3:1 on a saturated 8-core shard.
// The heavy tenant floods eight sessions against its 6-core share while
// the light tenant's two one-core sessions exactly fill its 2-core
// share. Per round, allocated cores track the weights within one core;
// the light tenant completes everything at rung 0 (never refused, never
// preempted) while only heavy sessions ride the ladder.
func TestNoisyNeighborWeightedFairness(t *testing.T) {
	reg := tenancy.NewRegistry(
		tenancy.Tenant{ID: "heavy", Weight: 3},
		tenancy.Tenant{ID: "light", Weight: 1},
	)
	sink := &recordingSink{}
	var rounds atomic.Int64
	floodGate := make(chan struct{})
	f, err := New(tenantPlatform8(), WithSink(sink), WithTenancy(reg),
		WithAdmission(core.AdmissionConfig{Enabled: true}),
		WithRoundHook(func(shard int, out *core.GOPOutcome) {
			if rounds.Add(1) == 2 {
				close(floodGate)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}

	lightIDs := map[int]bool{}
	for i := 0; i < 2; i++ {
		p, err := f.SubmitWith(SubmitRequest{
			Source: testSource(t, "nn-light", int64(i+1), 32),
			Config: tenantSessionConfig(),
			Tenant: "light",
		})
		if err != nil {
			t.Fatal(err)
		}
		lightIDs[p.Session.ID] = true
	}

	repCh := make(chan *Report, 1)
	errCh := make(chan error, 1)
	go func() {
		rep, err := f.Run(context.Background())
		repCh <- rep
		errCh <- err
	}()

	// Two settled rounds warm the light tenant's estimates to their exact
	// one-core geometry; then the heavy tenant floods.
	<-floodGate
	for i := 0; i < 8; i++ {
		if _, err := f.SubmitWith(SubmitRequest{
			Source: testSource(t, "nn-heavy", int64(100+i), 16),
			Config: tenantSessionConfig(),
			Tenant: "heavy",
		}); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	rep := <-repCh
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	if rep.Completed != 10 || rep.Rejected != 0 || rep.Failed != 0 {
		t.Fatalf("fleet report %+v, want all 10 completed despite the flood", rep)
	}
	if rep.FramesEncoded != 2*32+8*16 || rep.GOPReports != 2*8+8*4 {
		t.Fatalf("frames/GOPs %d/%d, want 192/48 (zero lost frames)", rep.FramesEncoded, rep.GOPReports)
	}

	sink.mu.Lock()
	defer sink.mu.Unlock()
	saturated := 0
	for _, e := range sink.rounds {
		out := e.Outcome
		heavyCores, hasHeavy := out.TenantCores["heavy"]
		lightCores, hasLight := out.TenantCores["light"]
		if hasHeavy && hasLight {
			// Both tenants competing: shares track the 3:1 weights (6 and
			// 2 of 8 cores) within one core. The heavy tenant can run
			// under its entitlement (tail rounds), never meaningfully over.
			if heavyCores > 7 {
				t.Fatalf("round %d: heavy tenant got %d cores, weight share is 6", out.Round, heavyCores)
			}
			if lightCores != 2 {
				t.Fatalf("round %d: light tenant got %d cores, want its full 2-core share", out.Round, lightCores)
			}
			if len(out.RejectedUsers) > 0 {
				saturated++
				if heavyCores < 5 {
					t.Fatalf("round %d: saturated but heavy tenant only got %d cores (share 6±1)", out.Round, heavyCores)
				}
			}
		}
		// The light tenant never touches the ladder.
		for _, lists := range [][]int{out.RejectedUsers, out.Preempted, out.TimedOut} {
			for _, id := range lists {
				if lightIDs[id] {
					t.Fatalf("round %d: light session %d on the ladder (rejected/preempted/timed out)", out.Round, id)
				}
			}
		}
	}
	if saturated == 0 {
		t.Fatal("the flood never saturated the platform: no contested round observed")
	}
}

// TestFlashCrowdPreemption is the acceptance criterion for priority
// preemption: a full 8-core platform serves six best-effort batch
// sessions and one light-tenant session; an emergency submission (its
// priority class resolved from the registry) arrives mid-run and must be
// admitted in its arrival round — never refused — with the room made by
// pushing batch sessions down the admission ladder. The light tenant
// never degrades, and its bitstream digests are identical to a control
// run without the emergency arrival. No frames are lost anywhere.
func TestFlashCrowdPreemption(t *testing.T) {
	run := func(withER bool) (*Report, *recordingSink, int, int) {
		reg := tenancy.NewRegistry(
			tenancy.Tenant{ID: "batch", Weight: 3},
			tenancy.Tenant{ID: "light", Weight: 1},
			tenancy.Tenant{ID: "er", Weight: 3, Priority: 9},
		)
		sink := &recordingSink{}
		var f *Fleet
		var rounds atomic.Int64
		arrive := make(chan struct{})
		submitBatch := func(i int, frames int) error {
			_, err := f.SubmitWith(SubmitRequest{
				Source: testSource(t, "fc-batch", int64(10+i), frames),
				Config: tenantSessionConfig(),
				Tenant: "batch",
			})
			return err
		}
		// Batch sessions arrive one per round: each warms to its exact
		// one-core demand before the next one's two-core cold prior lands,
		// so the fleet fills to a zero-refusal exact fit — every batch
		// session still holds its full ladder when the emergency arrives
		// (a cold refusal would have burned it down already).
		f, err := New(tenantPlatform8(), WithSink(sink), WithTenancy(reg),
			WithAdmission(core.AdmissionConfig{Enabled: true}),
			WithRoundHook(func(shard int, out *core.GOPOutcome) {
				r := rounds.Add(1)
				if r <= 5 {
					if err := submitBatch(int(r), 48); err != nil {
						t.Errorf("staggered batch submit %d: %v", r, err)
					}
				}
				if r == 7 {
					close(arrive)
				}
			}))
		if err != nil {
			t.Fatal(err)
		}
		if err := submitBatch(0, 48); err != nil {
			t.Fatal(err)
		}
		light, err := f.SubmitWith(SubmitRequest{
			Source: testSource(t, "fc-light", 3, 40),
			Config: tenantSessionConfig(),
			Tenant: "light",
		})
		if err != nil {
			t.Fatal(err)
		}

		repCh := make(chan *Report, 1)
		errCh := make(chan error, 1)
		go func() {
			rep, err := f.Run(context.Background())
			repCh <- rep
			errCh <- err
		}()
		<-arrive
		erID := -1
		if withER {
			// The emergency session's class is cold on arrival: its finer
			// grid prices the 5 ms-per-tile prior at two cores, carving a
			// real bite out of the saturated platform. Priority 0 resolves
			// to the registry's class 9.
			cfg := tenantSessionConfig()
			cfg.Retile.MinTileW, cfg.Retile.MinTileH = 48, 48
			p, err := f.SubmitWith(SubmitRequest{
				Source: testSource(t, "fc-er", 77, 8),
				Config: cfg,
				Tenant: "er",
			})
			if err != nil {
				t.Fatal(err)
			}
			erID = p.Session.ID
		}
		f.Close()
		rep := <-repCh
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
		return rep, sink, light.Session.ID, erID
	}

	rep, sink, lightID, erID := run(true)
	ctrlRep, ctrlSink, ctrlLightID, _ := run(false)

	if rep.Completed != 8 || rep.Rejected != 0 || rep.Failed != 0 {
		t.Fatalf("fleet report %+v, want all 8 completed", rep)
	}
	if rep.FramesEncoded != 6*48+40+8 || rep.GOPReports != 6*12+10+2 {
		t.Fatalf("frames/GOPs %d/%d, want 336/84 (zero lost frames)", rep.FramesEncoded, rep.GOPReports)
	}
	if ctrlRep.Completed != 7 || ctrlRep.Rejected != 0 || ctrlRep.Failed != 0 {
		t.Fatalf("control report %+v, want all 7 completed", ctrlRep)
	}

	sink.mu.Lock()
	// The emergency session was never refused, and its arrival round —
	// the first round it competed in — both admitted it and pushed batch
	// sessions down the ladder.
	arrivalSeen := false
	for _, e := range sink.rounds {
		out := e.Outcome
		for _, id := range out.RejectedUsers {
			if id == erID {
				t.Fatalf("round %d: emergency session %d was refused", out.Round, erID)
			}
		}
		admitted := false
		for _, id := range out.AdmittedUsers {
			if id == erID {
				admitted = true
			}
		}
		if admitted && !arrivalSeen {
			arrivalSeen = true
			if len(out.Preempted) == 0 {
				t.Fatalf("round %d admitted the emergency session without preempting anyone", out.Round)
			}
			for _, id := range out.Preempted {
				if id == lightID || id == erID {
					t.Fatalf("round %d preempted session %d, want only batch sessions pushed down", out.Round, id)
				}
			}
		}
	}
	if !arrivalSeen {
		t.Fatal("the emergency session was never admitted")
	}
	// The registry's priority class rode the placement event.
	for _, e := range sink.placements {
		if e.Tenant == "er" && e.Priority != 9 {
			t.Fatalf("emergency placement priority %d, want the registry default 9", e.Priority)
		}
	}
	// The light tenant never touched the ladder in either run.
	for _, e := range sink.rounds {
		for _, id := range append(append([]int{}, e.Outcome.RejectedUsers...), e.Outcome.Preempted...) {
			if id == lightID {
				t.Fatalf("round %d: light session on the ladder", e.Outcome.Round)
			}
		}
	}
	sink.mu.Unlock()

	// Bit-identical: the light tenant's output is unaffected by the
	// emergency arrival and the preemption it caused.
	gotDigests, gotFrames := stitchDigests(sink, 0, lightID)
	wantDigests, wantFrames := stitchDigests(ctrlSink, 0, ctrlLightID)
	if gotFrames != 40 || wantFrames != 40 {
		t.Fatalf("light tenant frames %d/%d, want 40 in both runs", gotFrames, wantFrames)
	}
	if len(gotDigests) != len(wantDigests) || len(gotDigests) != 10 {
		t.Fatalf("light digest chains %d/%d GOPs, want 10", len(gotDigests), len(wantDigests))
	}
	for i := range gotDigests {
		if gotDigests[i] != wantDigests[i] {
			t.Fatalf("light tenant GOP %d digest diverged under preemption", i)
		}
	}
}
