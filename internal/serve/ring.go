package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// The fleet routes a session to a shard by consistent-hashing its
// workload class: all sessions of one class land on one shard, so that
// shard's per-class LUT sees every observation of the class and stays
// warm, and growing or shrinking the fleet remaps only the classes whose
// arc the new shard takes over — the other shards' LUTs keep their heat.
//
// The ring is the classic construction: every shard contributes
// ringReplicas virtual points hashed from "shard/<index>/<replica>", a
// key hashes to a point on the circle, and its home shard is the owner of
// the first virtual point at or after it (wrapping around).

// ringReplicas is the number of virtual points per shard. 64 keeps the
// per-shard arc share within a few percent of uniform for small fleets
// while the ring stays tiny (shards × 64 points).
const ringReplicas = 64

type ringPoint struct {
	hash  uint64
	shard int
}

type hashRing struct {
	points []ringPoint
}

// newHashRing builds the ring over an explicit member set — the live
// shard indices. An elastic fleet rebuilds the ring on every resize;
// because a shard's virtual points depend only on its own index, adding
// or removing a member never moves the other members' points: a class
// changes home only if its arc is taken over by an added shard or owned
// by a removed one.
func newHashRing(members []int, replicas int) *hashRing {
	if replicas <= 0 {
		replicas = ringReplicas
	}
	r := &hashRing{points: make([]ringPoint, 0, len(members)*replicas)}
	for _, shard := range members {
		for rep := 0; rep < replicas; rep++ {
			h := hash64(fmt.Sprintf("shard/%d/%d", shard, rep))
			r.points = append(r.points, ringPoint{hash: h, shard: shard})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full 64-bit collision between two virtual points is all but
		// impossible; break it deterministically anyway.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// seqMembers returns [0, 1, ..., n-1] — the member set of a fresh fleet.
func seqMembers(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// shardFor maps a key to its home shard (-1 on an empty ring).
func (r *hashRing) shardFor(key string) int {
	if len(r.points) == 0 {
		return -1
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// hash64 is FNV-1a over the string, finished with a splitmix64-style
// avalanche: raw FNV of near-identical short strings ("shard/3/0",
// "shard/3/1", ...) clusters on the ring badly enough to starve whole
// shards; the finalizer spreads the virtual points uniformly.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
