package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// The fleet routes a session to a shard by consistent-hashing its
// workload class: all sessions of one class land on one shard, so that
// shard's per-class LUT sees every observation of the class and stays
// warm, and growing or shrinking the fleet remaps only the classes whose
// arc the new shard takes over — the other shards' LUTs keep their heat.
//
// The ring is the classic construction: every shard contributes
// ringReplicas virtual points hashed from "shard/<index>/<replica>", a
// key hashes to a point on the circle, and its home shard is the owner of
// the first virtual point at or after it (wrapping around).

// RingReplicas is the default number of virtual points per member. 64
// keeps the per-member arc share within a few percent of uniform for
// small member sets while the ring stays tiny (members × 64 points).
const RingReplicas = 64

type ringPoint struct {
	hash   uint64
	member string
}

// Ring is the consistent-hash ring, keyed by member *name*. The fleet
// uses it with members named "shard/<index>"; a distributed master reuses
// it unchanged with agent names as members. Because a member's virtual
// points depend only on its own name, membership is order-independent:
// building a ring from {a, b, c} in any registration order yields the
// same key→member mapping, and adding or removing a member never moves
// the other members' points — a key changes home only if its arc is
// taken over by a joined member or owned by a left one.
type Ring struct {
	points []ringPoint
}

// NewRing builds a ring over the named members with the given number of
// virtual points each (<= 0 means RingReplicas). Member names must be
// distinct; a duplicated name just doubles that member's points.
func NewRing(members []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = RingReplicas
	}
	r := &Ring{points: make([]ringPoint, 0, len(members)*replicas)}
	for _, m := range members {
		for rep := 0; rep < replicas; rep++ {
			h := hash64(fmt.Sprintf("%s/%d", m, rep))
			r.points = append(r.points, ringPoint{hash: h, member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full 64-bit collision between two virtual points is all but
		// impossible; break it deterministically anyway.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// MemberFor maps a key to its home member ("" on an empty ring): the
// owner of the first virtual point at or after the key's hash, wrapping.
func (r *Ring) MemberFor(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// hashRing adapts Ring to the fleet's integer shard indices. The member
// name for shard i is "shard/<i>", so the virtual-point keys
// ("shard/<i>/<rep>") — and therefore every class→shard assignment — are
// identical to the pre-Ring construction.
type hashRing struct {
	ring  *Ring
	index map[string]int
}

// newHashRing builds the ring over an explicit member set — the live
// shard indices. An elastic fleet rebuilds the ring on every resize.
func newHashRing(members []int, replicas int) *hashRing {
	names := make([]string, len(members))
	index := make(map[string]int, len(members))
	for i, shard := range members {
		names[i] = fmt.Sprintf("shard/%d", shard)
		index[names[i]] = shard
	}
	return &hashRing{ring: NewRing(names, replicas), index: index}
}

// seqMembers returns [0, 1, ..., n-1] — the member set of a fresh fleet.
func seqMembers(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// shardFor maps a key to its home shard (-1 on an empty ring).
func (r *hashRing) shardFor(key string) int {
	name := r.ring.MemberFor(key)
	if name == "" {
		return -1
	}
	return r.index[name]
}

// Demand-aware placement (DESIGN.md §11). The ring alone routes by class
// — good for LUT warmth, blind to weight: a 4K class whose arc lands on a
// 4-core shard would pile demand it can never serve while a 32-core peer
// idles. WithDemandPlacement adds the capability/demand-aware layer on
// top: Submit prices the session's pixel rate into an estimated core
// demand (through sched.DemandOf, the same Algorithm-2 line 1 the
// allocator applies after admission) and places it by that demand against
// every shard's LoadReport — home first if the session fits there,
// otherwise best-fit over the shards with room (smallest free capacity
// that still takes it, so small shards saturate and big shards keep their
// headroom for the classes that need it), and only then
// lowest-utilization spill.

// defaultPixelsPerCore is the default placement price: how many luma
// pixels per second one core is assumed to transcode. The estimate only
// steers placement — admission re-prices every session from its measured
// LUTs — so the price needs the right order of magnitude, not accuracy.
const defaultPixelsPerCore = 2e6

// PlacementConfig parametrizes demand-aware placement
// (WithDemandPlacement).
type PlacementConfig struct {
	// PixelsPerCore converts a session's luma pixel rate (width × height
	// × FPS) into an estimated core demand: demand = ceil(rate /
	// PixelsPerCore), never below one core (0 → 2e6).
	PixelsPerCore float64
}

// WithDemandPlacement turns on demand-aware placement: Submit estimates
// each arriving session's core demand from its pixel rate and steers it
// to a shard with the capacity to serve it (see the package notes above),
// seeding the shard's LoadReport with the estimate so back-to-back
// submissions see each other's weight. Without this option placement is
// purely class-home with lowest-utilization fallback.
func WithDemandPlacement(cfg PlacementConfig) Option {
	return func(o *options) {
		if cfg.PixelsPerCore == 0 {
			cfg.PixelsPerCore = defaultPixelsPerCore
		}
		if !(cfg.PixelsPerCore > 0) { // NaN-safe
			o.errs = append(o.errs, fmt.Errorf("serve: placement pixels per core %v", cfg.PixelsPerCore))
			return
		}
		o.placement = &cfg
	}
}

// estimateDemand prices a session's frames into an estimated core demand
// for placement. Returns 0 when demand-aware placement is off.
func (f *Fleet) estimateDemand(src core.FrameSource) int {
	cfg := f.opts.placement
	if cfg == nil {
		return 0
	}
	fr := src.Frame(0)
	if fr == nil {
		return 1
	}
	fps := src.FPS()
	if fps <= 0 {
		fps = f.opts.fps
	}
	// One synthetic thread whose slot utilization is the session's pixel
	// rate over the placement price; DemandOf ceils it into cores exactly
	// as the allocator would.
	rate := float64(fr.Width()*fr.Height()) * fps
	th := sched.Thread{TimeFmax: time.Duration(rate / cfg.PixelsPerCore / fps * float64(time.Second))}
	demand, err := sched.DemandOf(sched.Input{
		Platform: f.proto,
		FPS:      fps,
		Users:    []sched.UserDemand{{User: 0, Threads: []sched.Thread{th}}},
	})
	if err != nil {
		return 1
	}
	return demand[0]
}

// placeOrder returns the shard indices Submit tries for a session whose
// class homes on home, carrying an estimated core demand (0 = no
// estimate, the demand-blind path). The home shard leads while it is
// routable, under the session capacity, and — when a demand estimate
// exists — has the free cores for it. The rest follow in two bands:
// shards that fit the demand in best-fit order (ascending free capacity,
// ties to the lower index), then the shards without room in ascending
// utilization (ties to fewer sessions, then the lower index) — which is
// also the complete order when no estimate exists.
func (f *Fleet) placeOrder(home, demand int) []int {
	f.mu.Lock()
	shards := append([]*shardState(nil), f.shards...)
	routable := make([]bool, len(shards))
	for i, s := range shards {
		routable[i] = s.routable()
	}
	f.mu.Unlock()

	reports := make([]core.LoadReport, len(shards))
	for i, s := range shards {
		if routable[i] {
			reports[i] = s.srv.LoadReport()
		}
	}
	fits := func(i int) bool { return demand > 0 && reports[i].Free() >= demand }

	order := make([]int, 0, len(shards))
	homeOK := home >= 0 && home < len(shards) && routable[home] &&
		(f.opts.capacity <= 0 || reports[home].Sessions < f.opts.capacity) &&
		(demand <= 0 || fits(home))
	if homeOK {
		order = append(order, home)
	}
	var fitting, spill []int
	for i := range shards {
		if (i == home && homeOK) || !routable[i] {
			continue
		}
		if fits(i) {
			fitting = append(fitting, i)
		} else {
			spill = append(spill, i)
		}
	}
	sort.Slice(fitting, func(a, b int) bool {
		fa, fb := reports[fitting[a]].Free(), reports[fitting[b]].Free()
		if fa != fb {
			return fa < fb
		}
		return fitting[a] < fitting[b]
	})
	sort.Slice(spill, func(a, b int) bool {
		ra, rb := reports[spill[a]], reports[spill[b]]
		if ra.Util != rb.Util {
			return ra.Util < rb.Util
		}
		if ra.Sessions != rb.Sessions {
			return ra.Sessions < rb.Sessions
		}
		return spill[a] < spill[b]
	})
	order = append(order, fitting...)
	return append(order, spill...)
}

// hash64 is FNV-1a over the string, finished with a splitmix64-style
// avalanche: raw FNV of near-identical short strings ("shard/3/0",
// "shard/3/1", ...) clusters on the ring badly enough to starve whole
// shards; the finalizer spreads the virtual points uniformly.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
