package serve

import (
	"fmt"
	"testing"
)

// TestRingDeterministic: the same fleet size always yields the same
// routing — serving decisions must be reproducible.
func TestRingDeterministic(t *testing.T) {
	a, b := newHashRing(seqMembers(5), 0), newHashRing(seqMembers(5), 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("class-%d", i)
		if a.shardFor(key) != b.shardFor(key) {
			t.Fatalf("key %q routed differently by identical rings", key)
		}
	}
}

// TestRingStabilityUnderShardCountChange is the consistent-hashing
// property the LUTs depend on: growing the fleet from n to n+1 shards
// moves a key only if it moves to the new shard — every other key keeps
// its home, so warmed per-class LUTs stay warm through a resize — and
// the moved fraction stays near the ideal 1/(n+1).
func TestRingStabilityUnderShardCountChange(t *testing.T) {
	const keys = 1000
	for _, n := range []int{2, 3, 5, 8} {
		old := newHashRing(seqMembers(n), 0)
		grown := newHashRing(seqMembers(n+1), 0)
		moved := 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("class-%d", i)
			was, now := old.shardFor(key), grown.shardFor(key)
			if was == now {
				continue
			}
			moved++
			if now != n {
				t.Fatalf("%d→%d shards: key %q moved %d→%d, not to the new shard %d",
					n, n+1, key, was, now, n)
			}
		}
		ideal := float64(keys) / float64(n+1)
		if f := float64(moved); f > 2.5*ideal {
			t.Fatalf("%d→%d shards: %d of %d keys moved (ideal ≈ %.0f)", n, n+1, moved, keys, ideal)
		}
		if moved == 0 {
			t.Fatalf("%d→%d shards: no key moved — the new shard gets no traffic", n, n+1)
		}
	}
}

// TestRingStabilityUnderMemberRemoval is the shrink-side counterpart:
// removing one member from an arbitrary member set only moves the keys
// that member owned — every surviving shard keeps its classes, so a
// drained shard's LUT heat is the only heat that has to move.
func TestRingStabilityUnderMemberRemoval(t *testing.T) {
	const keys = 1000
	full := newHashRing([]int{0, 1, 2, 3}, 0)
	shrunk := newHashRing([]int{0, 1, 3}, 0) // shard 2 drained away
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("class-%d", i)
		was, now := full.shardFor(key), shrunk.shardFor(key)
		if was != 2 && was != now {
			t.Fatalf("key %q moved %d→%d though only shard 2 was removed", key, was, now)
		}
		if now == 2 {
			t.Fatalf("key %q still routed to the removed shard", key)
		}
	}
	if got := newHashRing(nil, 0).shardFor("anything"); got != -1 {
		t.Fatalf("empty ring routed to %d, want -1", got)
	}
}

// TestRingBalance: virtual points keep the per-shard key share within a
// sane factor of uniform.
func TestRingBalance(t *testing.T) {
	const keys = 3000
	const shards = 4
	r := newHashRing(seqMembers(shards), 0)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.shardFor(fmt.Sprintf("class-%d", i))]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received no keys: %v", s, counts)
		}
		share := float64(c) / keys
		if share < 0.10 || share > 0.45 {
			t.Fatalf("shard %d share %.2f far from uniform 0.25: %v", s, share, counts)
		}
	}
}
