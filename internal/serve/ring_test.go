package serve

import (
	"fmt"
	"testing"
)

// TestRingDeterministic: the same fleet size always yields the same
// routing — serving decisions must be reproducible.
func TestRingDeterministic(t *testing.T) {
	a, b := newHashRing(seqMembers(5), 0), newHashRing(seqMembers(5), 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("class-%d", i)
		if a.shardFor(key) != b.shardFor(key) {
			t.Fatalf("key %q routed differently by identical rings", key)
		}
	}
}

// TestRingStabilityUnderShardCountChange is the consistent-hashing
// property the LUTs depend on: growing the fleet from n to n+1 shards
// moves a key only if it moves to the new shard — every other key keeps
// its home, so warmed per-class LUTs stay warm through a resize — and
// the moved fraction stays near the ideal 1/(n+1).
func TestRingStabilityUnderShardCountChange(t *testing.T) {
	const keys = 1000
	for _, n := range []int{2, 3, 5, 8} {
		old := newHashRing(seqMembers(n), 0)
		grown := newHashRing(seqMembers(n+1), 0)
		moved := 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("class-%d", i)
			was, now := old.shardFor(key), grown.shardFor(key)
			if was == now {
				continue
			}
			moved++
			if now != n {
				t.Fatalf("%d→%d shards: key %q moved %d→%d, not to the new shard %d",
					n, n+1, key, was, now, n)
			}
		}
		ideal := float64(keys) / float64(n+1)
		if f := float64(moved); f > 2.5*ideal {
			t.Fatalf("%d→%d shards: %d of %d keys moved (ideal ≈ %.0f)", n, n+1, moved, keys, ideal)
		}
		if moved == 0 {
			t.Fatalf("%d→%d shards: no key moved — the new shard gets no traffic", n, n+1)
		}
	}
}

// TestRingStabilityUnderMemberRemoval is the shrink-side counterpart:
// removing one member from an arbitrary member set only moves the keys
// that member owned — every surviving shard keeps its classes, so a
// drained shard's LUT heat is the only heat that has to move.
func TestRingStabilityUnderMemberRemoval(t *testing.T) {
	const keys = 1000
	full := newHashRing([]int{0, 1, 2, 3}, 0)
	shrunk := newHashRing([]int{0, 1, 3}, 0) // shard 2 drained away
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("class-%d", i)
		was, now := full.shardFor(key), shrunk.shardFor(key)
		if was != 2 && was != now {
			t.Fatalf("key %q moved %d→%d though only shard 2 was removed", key, was, now)
		}
		if now == 2 {
			t.Fatalf("key %q still routed to the removed shard", key)
		}
	}
	if got := newHashRing(nil, 0).shardFor("anything"); got != -1 {
		t.Fatalf("empty ring routed to %d, want -1", got)
	}
}

// TestRingBalance: virtual points keep the per-shard key share within a
// sane factor of uniform.
func TestRingBalance(t *testing.T) {
	const keys = 3000
	const shards = 4
	r := newHashRing(seqMembers(shards), 0)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.shardFor(fmt.Sprintf("class-%d", i))]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received no keys: %v", s, counts)
		}
		share := float64(c) / keys
		if share < 0.10 || share > 0.45 {
			t.Fatalf("shard %d share %.2f far from uniform 0.25: %v", s, share, counts)
		}
	}
}

// TestRingNameKeyedOrderIndependence is the property a distributed master
// leans on: a ring over named members routes identically no matter the
// order agents registered in — membership is a set, not a sequence.
func TestRingNameKeyedOrderIndependence(t *testing.T) {
	members := []string{"agent-alpha", "agent-beta", "agent-gamma", "agent-delta"}
	perms := [][]string{
		{"agent-alpha", "agent-beta", "agent-gamma", "agent-delta"},
		{"agent-delta", "agent-gamma", "agent-beta", "agent-alpha"},
		{"agent-beta", "agent-delta", "agent-alpha", "agent-gamma"},
	}
	ref := NewRing(members, 0)
	for _, perm := range perms {
		r := NewRing(perm, 0)
		for i := 0; i < 500; i++ {
			key := fmt.Sprintf("class-%d", i)
			if got, want := r.MemberFor(key), ref.MemberFor(key); got != want {
				t.Fatalf("order %v: key %q routed to %q, want %q", perm, key, got, want)
			}
		}
	}
}

// TestRingNameKeyedJoinLeave: a named member joining or leaving moves
// only the keys whose arc that member takes over or gives up — the
// stability property that lets a master fail over one dead agent without
// reshuffling the survivors' classes (and their warm LUTs).
func TestRingNameKeyedJoinLeave(t *testing.T) {
	const keys = 1000
	base := NewRing([]string{"agent-a", "agent-b", "agent-c"}, 0)
	joined := NewRing([]string{"agent-a", "agent-b", "agent-c", "agent-d"}, 0)
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("class-%d", i)
		was, now := base.MemberFor(key), joined.MemberFor(key)
		if was == now {
			continue
		}
		moved++
		if now != "agent-d" {
			t.Fatalf("join: key %q moved %q→%q, not to the joiner", key, was, now)
		}
	}
	if moved == 0 {
		t.Fatal("join: the new member owns no keys")
	}
	left := NewRing([]string{"agent-a", "agent-c"}, 0)
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("class-%d", i)
		was, now := base.MemberFor(key), left.MemberFor(key)
		if was != "agent-b" && was != now {
			t.Fatalf("leave: key %q moved %q→%q though only agent-b left", key, was, now)
		}
		if now == "agent-b" {
			t.Fatalf("leave: key %q still routed to the departed member", key)
		}
	}
	if got := NewRing(nil, 0).MemberFor("anything"); got != "" {
		t.Fatalf("empty ring routed to %q, want empty", got)
	}
}

// TestRingShardNamesMatchLegacyKeys pins the wire-compatibility detail:
// the fleet names shard i "shard/<i>", whose virtual-point keys are the
// exact strings the pre-Ring construction hashed — so this refactor moves
// no class between shards.
func TestRingShardNamesMatchLegacyKeys(t *testing.T) {
	r := NewRing([]string{"shard/0", "shard/1", "shard/2"}, 0)
	h := newHashRing(seqMembers(3), 0)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("class-%d", i)
		want := fmt.Sprintf("shard/%d", h.shardFor(key))
		if got := r.MemberFor(key); got != want {
			t.Fatalf("key %q: named ring %q vs fleet ring %q", key, got, want)
		}
	}
}
