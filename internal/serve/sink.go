package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/mpsoc"
)

// GOPEvent reports one GOP a shard served for one session.
type GOPEvent struct {
	Shard   int
	Session int
	// Round is the shard-local round index the GOP was served in.
	Round int
	GOP   *core.GOPReport
}

// SessionEvent reports one session lifecycle transition.
type SessionEvent struct {
	Shard   int
	Session int
	State   core.SessionState
	// Err is the terminal error of a failed session (nil otherwise).
	Err error
}

// RoundEvent reports one settled serving round of one shard.
type RoundEvent struct {
	Shard   int
	Outcome *core.GOPOutcome
	// Load is the shard's load report as of the round's settlement —
	// live sessions, their summed core demand, capacity and utilization.
	Load core.LoadReport
}

// PlacementEvent reports where Submit routed one session — the
// demand-aware placement decision (DESIGN.md §11). Delivered from the
// submitting goroutine right after the session's StateQueued event.
type PlacementEvent struct {
	// Shard is where the session landed.
	Shard int
	// Home is the consistent-hash home of the session's class at
	// placement time (-1 with no routable shard); Shard differs from it
	// when capacity, demand or shard health steered the session away.
	Home int
	// Session is the shard-local session id.
	Session int
	// Class is the session's workload class (the routing key).
	Class string
	// DemandCores is the placement-time core-demand estimate (1 when
	// demand-aware placement is off).
	DemandCores int
	// Tenant is the submitting tenant's id as given to SubmitWith ("" =
	// the default tenant); Priority is the resolved priority class the
	// session competes at.
	Tenant   string
	Priority int
}

// ShardEvent reports a fleet membership change (Resize).
type ShardEvent struct {
	// Shard is the index of the shard that joined or left.
	Shard int
	// Live is the number of routable shards after the change.
	Live int
}

// MigrationEvent reports one session's GOP-boundary handoff between
// shards during a resize. Session ids are shard-local: the session that
// was (FromShard, FromSession) is (ToShard, ToSession) from now on — a
// sink stitching a session's telemetry across shards joins on this
// event.
type MigrationEvent struct {
	FromShard   int
	FromSession int
	ToShard     int
	ToSession   int
	// Class is the session's workload class (the routing key).
	Class string
	// Frame is the session's next-frame cursor — the GOP boundary it
	// migrated at.
	Frame int
	// Tenant is the session's tenant id ("" = the default tenant) — the
	// QoS identity that rode along in the snapshot, so a sink keeping
	// per-tenant books can move the session between shards too.
	Tenant string
}

// Sink receives the fleet's streaming telemetry. It replaces the
// grow-forever ServiceReport as the service-level observation channel: a
// sink sees every event as it happens and decides what to keep, so a
// fleet can run indefinitely without accumulating per-GOP state it will
// never look at again.
//
// Delivery contract (see DESIGN.md §8): the fleet serializes all sink
// calls — no two methods run concurrently, so implementations need no
// internal locking for the On* path. All round-scoped events of one
// shard are delivered in order from that shard's serving goroutine:
// state changes settled by the round (including terminal states), then
// one OnGOP per admitted session in ascending session id, then one
// OnRoundMetrics; per (shard, session) the GOPs arrive in round order
// with the terminal transition during the final round's settlement.
// Events of different shards interleave arbitrarily. The
// cross-goroutine events are StateQueued and OnSessionPlaced, delivered
// in that order from the goroutine that called Submit before Submit
// returns — in practice StateQueued precedes
// the session's first OnGOP (a submission is first served on a later
// round), but that ordering is not synchronized. Sink methods must not
// call back into the fleet: Submit would re-enter the sink dispatch lock
// on the same goroutine (self-deadlock), and serving methods are off
// limits as everywhere. Close is the one permitted call. Churn-driven
// callers inject arrivals through WithRoundHook, which runs after the
// round's sink delivery with no sink lock held.
//
// Elasticity events (Fleet.Resize, DESIGN.md §9): OnShardAdded arrives
// after the new shard is routable, from the Resize caller's goroutine.
// A removal delivers, from the draining shard's supervisor goroutine
// (or the Resize caller's when the fleet is idle), in order: one
// StateMigrated OnSessionStateChange per exported session on the donor,
// then per migrated session a StateQueued OnSessionStateChange on the
// target followed by the OnSessionMigrated linking the two ids, then
// one OnShardRemoved — all after the donor's final round settled, so a
// session's donor-side GOPs always precede its migration event.
// Rebalancing events (Fleet control loop, DESIGN.md §10): a hot shard
// shedding load delivers, from its own serving goroutine right after its
// round's OnRoundMetrics, per shed session: one StateMigrated
// OnSessionStateChange on the donor, then a StateQueued
// OnSessionStateChange on the target, then the OnSessionRebalanced
// linking the two ids — the same shape as a resize migration, with
// OnSessionRebalanced in place of OnSessionMigrated and no shard-removed
// event (the fleet keeps its size).
type Sink interface {
	OnGOP(e GOPEvent)
	OnSessionStateChange(e SessionEvent)
	OnSessionPlaced(e PlacementEvent)
	OnRoundMetrics(e RoundEvent)
	OnShardAdded(e ShardEvent)
	OnShardRemoved(e ShardEvent)
	OnSessionMigrated(e MigrationEvent)
	OnSessionRebalanced(e MigrationEvent)
}

// NopSink implements every Sink method as a no-op — embed it to build a
// sink that only cares about some events.
type NopSink struct{}

func (NopSink) OnGOP(GOPEvent)                     {}
func (NopSink) OnSessionStateChange(SessionEvent)  {}
func (NopSink) OnSessionPlaced(PlacementEvent)     {}
func (NopSink) OnRoundMetrics(RoundEvent)          {}
func (NopSink) OnShardAdded(ShardEvent)            {}
func (NopSink) OnShardRemoved(ShardEvent)          {}
func (NopSink) OnSessionMigrated(MigrationEvent)   {}
func (NopSink) OnSessionRebalanced(MigrationEvent) {}

// MultiSink fans every event out to each sink in order.
func MultiSink(sinks ...Sink) Sink { return multiSink(sinks) }

type multiSink []Sink

func (m multiSink) OnGOP(e GOPEvent) {
	for _, s := range m {
		s.OnGOP(e)
	}
}

func (m multiSink) OnSessionStateChange(e SessionEvent) {
	for _, s := range m {
		s.OnSessionStateChange(e)
	}
}

func (m multiSink) OnSessionPlaced(e PlacementEvent) {
	for _, s := range m {
		s.OnSessionPlaced(e)
	}
}

func (m multiSink) OnRoundMetrics(e RoundEvent) {
	for _, s := range m {
		s.OnRoundMetrics(e)
	}
}

func (m multiSink) OnShardAdded(e ShardEvent) {
	for _, s := range m {
		s.OnShardAdded(e)
	}
}

func (m multiSink) OnShardRemoved(e ShardEvent) {
	for _, s := range m {
		s.OnShardRemoved(e)
	}
}

func (m multiSink) OnSessionMigrated(e MigrationEvent) {
	for _, s := range m {
		s.OnSessionMigrated(e)
	}
}

func (m multiSink) OnSessionRebalanced(e MigrationEvent) {
	for _, s := range m {
		s.OnSessionRebalanced(e)
	}
}

// RingSink is the bounded-memory replacement for ServiceReport: it keeps
// exact aggregate counters (rounds, frames, GOP reports, energy totals,
// terminal states) forever and the most recent Capacity round outcomes in
// a ring buffer. When the service fits inside the ring — as every test
// scenario does — Report reconstructs the old ServiceReport exactly; on a
// long-running fleet the aggregates stay exact while memory stays
// bounded.
//
// Safe for concurrent use: the On* path is serialized by the fleet, and
// Report may be called from any goroutine at any time.
type RingSink struct {
	mu sync.Mutex

	capacity int
	outcomes []ringEntry // ring buffer
	next     int         // write position
	total    int         // outcomes ever seen

	rounds     int
	frames     int
	gopReports int
	energy     mpsoc.Totals

	// Per-shard slices of the aggregates above, keyed by shard index —
	// what FleetReport scopes its sub-reports with.
	roundsBy map[int]int
	framesBy map[int]int
	gopsBy   map[int]int
	energyBy map[int]mpsoc.Totals

	migrations    int
	rebalances    int
	shardsAdded   int
	shardsRemoved int
	placements    int

	states map[[2]int]core.SessionState // (shard, session) → latest state
	errs   map[[2]int]error
	loads  map[int]core.LoadReport // shard → latest load report
}

// ringEntry tags a retained round outcome with the shard it settled on,
// so FleetReport can scope the ring per shard.
type ringEntry struct {
	shard   int
	outcome *core.GOPOutcome
}

// NewRingSink builds a sink retaining the last capacity round outcomes
// (minimum 1).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{
		capacity: capacity,
		states:   make(map[[2]int]core.SessionState),
		errs:     make(map[[2]int]error),
		loads:    make(map[int]core.LoadReport),
		roundsBy: make(map[int]int),
		framesBy: make(map[int]int),
		gopsBy:   make(map[int]int),
		energyBy: make(map[int]mpsoc.Totals),
	}
}

func (s *RingSink) OnGOP(e GOPEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gopReports++
	s.frames += len(e.GOP.Frames)
	s.gopsBy[e.Shard]++
	s.framesBy[e.Shard] += len(e.GOP.Frames)
}

func (s *RingSink) OnSessionStateChange(e SessionEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := [2]int{e.Shard, e.Session}
	// The StateQueued event is the one delivery unsynchronized with the
	// serving stream (see the Sink contract): if it arrives after the
	// session already reached a terminal state, keep the terminal state —
	// a session must never vanish from the reconstructed report.
	if e.State == core.StateQueued {
		if cur, seen := s.states[k]; seen && cur != core.StateQueued {
			return
		}
	}
	s.states[k] = e.State
	if e.Err != nil {
		s.errs[k] = e.Err
	}
}

func (s *RingSink) OnSessionPlaced(PlacementEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.placements++
}

func (s *RingSink) OnRoundMetrics(e RoundEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rounds++
	s.loads[e.Shard] = e.Load
	s.energy.Add(e.Outcome.Energy)
	s.roundsBy[e.Shard]++
	perShard := s.energyBy[e.Shard]
	perShard.Add(e.Outcome.Energy)
	s.energyBy[e.Shard] = perShard
	if len(s.outcomes) < s.capacity {
		s.outcomes = append(s.outcomes, ringEntry{e.Shard, e.Outcome})
	} else {
		s.outcomes[s.next] = ringEntry{e.Shard, e.Outcome}
	}
	s.next = (s.next + 1) % s.capacity
	s.total++
}

func (s *RingSink) OnShardAdded(ShardEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shardsAdded++
}

func (s *RingSink) OnShardRemoved(ShardEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shardsRemoved++
}

func (s *RingSink) OnSessionMigrated(MigrationEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.migrations++
}

func (s *RingSink) OnSessionRebalanced(MigrationEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rebalances++
}

// Migrations reports how many session-migration hops the sink saw
// (resize drains; rebalance hops are counted by Rebalances).
func (s *RingSink) Migrations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.migrations
}

// Rebalances reports how many hot-shard rebalance hops the sink saw.
func (s *RingSink) Rebalances() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rebalances
}

// Placements reports how many session-placement decisions the sink saw
// (one per successful Submit).
func (s *RingSink) Placements() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.placements
}

// ShardLoad reports the shard's latest load report (utilization included)
// as of its most recent settled round, and whether one was seen.
func (s *RingSink) ShardLoad(shard int) (core.LoadReport, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.loads[shard]
	return r, ok
}

// Resizes reports how many shards were added and removed.
func (s *RingSink) Resizes() (added, removed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shardsAdded, s.shardsRemoved
}

// Dropped reports how many round outcomes fell out of the ring (0 while
// the service fits).
func (s *RingSink) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.total <= s.capacity {
		return 0
	}
	return s.total - s.capacity
}

// Report reconstructs a ServiceReport from the retained telemetry:
// aggregates are exact for the whole service lifetime; Outcomes holds the
// rounds still in the ring (all of them when the service fit). Session
// ids are shard-local — on a multi-shard fleet two shards both have a
// session 0 — so the id lists are only meaningful per shard; pass the
// shard index to scope the report, or -1 for the fleet-wide view of a
// single-shard fleet (ids collide otherwise, counts stay correct).
func (s *RingSink) Report(shard int) *core.ServiceReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := &core.ServiceReport{
		Rounds:        s.rounds,
		FramesEncoded: s.frames,
		GOPReports:    s.gopReports,
		Energy:        s.energy,
		Errors:        make(map[int]error),
	}
	keys := make([][2]int, 0, len(s.states))
	for k := range s.states {
		if shard >= 0 && k[0] != shard {
			continue
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		// A migrated key is the donor-side shadow of a session that lives
		// on under its target key: the target's StateQueued (and later
		// terminal) entry represents the session, so counting the shadow
		// too would double-count it.
		if s.states[k] == core.StateMigrated {
			rep.Migrated = append(rep.Migrated, k[1])
			continue
		}
		rep.Submitted++
		switch s.states[k] {
		case core.StateCompleted:
			rep.Completed = append(rep.Completed, k[1])
		case core.StateRejected:
			rep.Rejected = append(rep.Rejected, k[1])
		case core.StateFailed:
			rep.Failed = append(rep.Failed, k[1])
			rep.Errors[k[1]] = s.errs[k]
		}
	}
	// Ring contents in arrival order (oldest first).
	for _, entry := range s.ringOrderLocked() {
		rep.Outcomes = append(rep.Outcomes, entry.outcome)
	}
	return rep
}

// ringOrderLocked returns the retained ring entries oldest-first. Caller
// holds s.mu.
func (s *RingSink) ringOrderLocked() []ringEntry {
	if s.total <= s.capacity {
		return s.outcomes
	}
	ordered := make([]ringEntry, 0, s.capacity)
	for i := 0; i < s.capacity; i++ {
		ordered = append(ordered, s.outcomes[(s.next+i)%s.capacity])
	}
	return ordered
}

// FleetReport is the collision-free multi-shard answer to Report(-1):
// session ids are shard-local, so a fleet-wide ServiceReport built by
// merging id lists silently collapses distinct sessions that share an id
// across shards (two shards' session 0 become one entry, and one failed
// session's error overwrites the other's). FleetReport keeps every
// session under its own shard's sub-report and carries only id-free
// aggregates at the fleet level.
type FleetReport struct {
	// Shards maps shard index → that shard's scoped ServiceReport (ids,
	// errors, counters and retained round outcomes all shard-local).
	// Only shards the sink saw telemetry from appear.
	Shards map[int]*core.ServiceReport

	// Fleet-wide aggregates. Session counts are exact — each session is
	// counted under the one (shard, id) key it lives at, migrated
	// donor-side shadows excluded — even when shard-local ids collide.
	Rounds        int
	Submitted     int
	Completed     int
	Rejected      int
	Failed        int
	Migrated      int
	FramesEncoded int
	GOPReports    int
	Energy        mpsoc.Totals
}

// FleetReport builds the fleet-wide view with per-shard sub-reports.
// Unlike Report(-1) — which keeps its single-shard semantics unchanged —
// the result is safe on any fleet size: sessions with colliding
// shard-local ids stay distinct under their shards.
func (s *RingSink) FleetReport() *FleetReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	fleet := &FleetReport{
		Shards:        make(map[int]*core.ServiceReport),
		Rounds:        s.rounds,
		FramesEncoded: s.frames,
		GOPReports:    s.gopReports,
		Energy:        s.energy,
	}
	sub := func(shard int) *core.ServiceReport {
		rep, ok := fleet.Shards[shard]
		if !ok {
			rep = &core.ServiceReport{
				Rounds:        s.roundsBy[shard],
				FramesEncoded: s.framesBy[shard],
				GOPReports:    s.gopsBy[shard],
				Energy:        s.energyBy[shard],
				Errors:        make(map[int]error),
			}
			fleet.Shards[shard] = rep
		}
		return rep
	}
	// Shards that settled rounds but have no session state yet still get
	// a sub-report with their counters.
	for shard := range s.roundsBy {
		sub(shard)
	}
	keys := make([][2]int, 0, len(s.states))
	for k := range s.states {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		rep := sub(k[0])
		if s.states[k] == core.StateMigrated {
			rep.Migrated = append(rep.Migrated, k[1])
			fleet.Migrated++
			continue
		}
		rep.Submitted++
		fleet.Submitted++
		switch s.states[k] {
		case core.StateCompleted:
			rep.Completed = append(rep.Completed, k[1])
			fleet.Completed++
		case core.StateRejected:
			rep.Rejected = append(rep.Rejected, k[1])
			fleet.Rejected++
		case core.StateFailed:
			rep.Failed = append(rep.Failed, k[1])
			rep.Errors[k[1]] = s.errs[k]
			fleet.Failed++
		}
	}
	for _, entry := range s.ringOrderLocked() {
		rep := sub(entry.shard)
		rep.Outcomes = append(rep.Outcomes, entry.outcome)
	}
	return fleet
}

// JSONLPolicy selects what a buffered JSONLSink does when its buffer is
// full: block the serving goroutine until the writer catches up (no data
// loss) or drop the line and count it (no serving stall, ever).
type JSONLPolicy int

const (
	// JSONLBlock waits for buffer space — telemetry is complete, but a
	// writer slower than the event rate eventually stalls serving.
	JSONLBlock JSONLPolicy = iota
	// JSONLDrop discards the line when the buffer is full and counts it
	// (Dropped) — serving never waits on the writer.
	JSONLDrop
)

// JSONLSink streams every event as one JSON line — the wire format for
// shipping fleet telemetry into a log pipeline instead of process memory.
// Events are flattened to stable scalar fields (no frame payloads, no
// pointers), so lines stay small and parseable regardless of GOP size.
//
// NewJSONLSink writes synchronously under a lock: simple, lossless, and
// fine for a file — but a slow writer (a blocking network pipe) holds
// the lock, and through the fleet's serialized sink dispatch that stalls
// every serving goroutine. NewBufferedJSONLSink decouples them: events
// marshal on the serving goroutine into a bounded buffer a dedicated
// writer goroutine drains, with a JSONLPolicy choosing block-or-drop
// when the buffer fills. Call Close to flush and stop the writer.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder // synchronous mode (nil when buffered)

	// Buffered mode.
	lines     chan []byte
	drop      bool
	dropped   atomic.Uint64
	done      chan struct{}
	closeOnce sync.Once
	w         io.Writer
	werr      error // writer goroutine's first error; read after done
}

// NewJSONLSink streams events to w synchronously (each line written
// under a lock before the event callback returns).
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// NewBufferedJSONLSink streams events to w through a bounded buffer of
// depth lines (minimum 1) drained by a writer goroutine, so a slow
// writer no longer stalls serving through the sink lock. policy picks
// block-or-drop on a full buffer; dropped lines are counted (Dropped).
// Close flushes the buffer, stops the writer and returns its first
// write error.
func NewBufferedJSONLSink(w io.Writer, depth int, policy JSONLPolicy) *JSONLSink {
	if depth < 1 {
		depth = 1
	}
	s := &JSONLSink{
		lines: make(chan []byte, depth),
		drop:  policy == JSONLDrop,
		done:  make(chan struct{}),
		w:     w,
	}
	go func() {
		defer close(s.done)
		for line := range s.lines {
			if s.werr != nil {
				continue // drain without writing after a failure
			}
			if _, err := s.w.Write(line); err != nil {
				s.werr = err
			}
		}
	}()
	return s
}

// Close flushes a buffered sink and stops its writer goroutine,
// returning the writer's first error. On a synchronous sink it is a
// no-op. No event may be delivered after Close.
func (s *JSONLSink) Close() error {
	if s.lines == nil {
		return nil
	}
	s.closeOnce.Do(func() { close(s.lines) })
	<-s.done
	return s.werr
}

// Dropped reports how many lines a buffered JSONLDrop sink discarded
// because the writer could not keep up.
func (s *JSONLSink) Dropped() uint64 { return s.dropped.Load() }

// finiteOr0 clamps a non-finite float to 0: encoding/json refuses to
// marshal NaN/Inf, and emit drops the whole line when marshaling fails —
// one poisoned field must not silently kill an otherwise-good telemetry
// line.
func finiteOr0(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}

// emit routes one event line through the configured mode.
func (s *JSONLSink) emit(v any) {
	if s.lines == nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		_ = s.enc.Encode(v)
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	b = append(b, '\n')
	if s.drop {
		select {
		case s.lines <- b:
		default:
			s.dropped.Add(1)
		}
		return
	}
	s.lines <- b
}

type jsonlGOP struct {
	Event    string  `json:"event"` // "gop"
	Shard    int     `json:"shard"`
	Session  int     `json:"session"`
	Round    int     `json:"round"`
	GOPIndex int     `json:"gop_index"`
	Frames   int     `json:"frames"`
	Tiles    int     `json:"tiles"`
	PSNR     float64 `json:"psnr_db"`
	Kbps     float64 `json:"kbps"`
	CPUms    float64 `json:"cpu_ms"`
	Digest   string  `json:"digest"`
}

type jsonlState struct {
	Event   string `json:"event"` // "session_state"
	Shard   int    `json:"shard"`
	Session int    `json:"session"`
	State   string `json:"state"`
	Error   string `json:"error,omitempty"`
}

type jsonlRound struct {
	Event       string  `json:"event"` // "round"
	Shard       int     `json:"shard"`
	Round       int     `json:"round"`
	Admitted    []int   `json:"admitted"`
	Rejected    []int   `json:"rejected,omitempty"`
	TimedOut    []int   `json:"timed_out,omitempty"`
	Recovered   []int   `json:"recovered,omitempty"`
	Preempted   []int   `json:"preempted,omitempty"`
	CoresUsed   int     `json:"cores_used"`
	AvgPowerW   float64 `json:"avg_power_w"`
	EstimateErr float64 `json:"estimate_err,omitempty"`
	Sessions    int     `json:"sessions"`
	Demand      int     `json:"demand_cores"`
	Capacity    int     `json:"capacity_cores"`
	Util        float64 `json:"util"`
	// TenantCores breaks the round's core grant down by tenant id
	// (omitted on single-tenant rounds where it carries no information).
	TenantCores map[string]int `json:"tenant_cores,omitempty"`
}

type jsonlPlacement struct {
	Event    string `json:"event"` // "session_placed"
	Shard    int    `json:"shard"`
	Session  int    `json:"session"`
	Class    string `json:"class"`
	Home     int    `json:"home"`
	Demand   int    `json:"demand_cores"`
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
}

type jsonlShard struct {
	Event string `json:"event"` // "shard_added" / "shard_removed"
	Shard int    `json:"shard"`
	Live  int    `json:"live_shards"`
}

type jsonlMigration struct {
	Event       string `json:"event"` // "session_migrated" / "session_rebalanced"
	FromShard   int    `json:"from_shard"`
	FromSession int    `json:"from_session"`
	ToShard     int    `json:"to_shard"`
	ToSession   int    `json:"to_session"`
	Class       string `json:"class"`
	Frame       int    `json:"frame"`
	Tenant      string `json:"tenant,omitempty"`
}

func (s *JSONLSink) OnGOP(e GOPEvent) {
	s.emit(jsonlGOP{
		Event:    "gop",
		Shard:    e.Shard,
		Session:  e.Session,
		Round:    e.Round,
		GOPIndex: e.GOP.Index,
		Frames:   len(e.GOP.Frames),
		Tiles:    e.GOP.Grid.NumTiles(),
		PSNR:     finiteOr0(e.GOP.MeanPSNR),
		Kbps:     finiteOr0(e.GOP.MeanKbps),
		CPUms:    float64(e.GOP.CPUTime.Microseconds()) / 1e3,
		Digest:   fmt.Sprintf("%016x", e.GOP.Digest),
	})
}

func (s *JSONLSink) OnSessionStateChange(e SessionEvent) {
	line := jsonlState{
		Event:   "session_state",
		Shard:   e.Shard,
		Session: e.Session,
		State:   e.State.String(),
	}
	if e.Err != nil {
		line.Error = e.Err.Error()
	}
	s.emit(line)
}

func (s *JSONLSink) OnRoundMetrics(e RoundEvent) {
	out := e.Outcome
	// The per-tenant core breakdown only earns its bytes when a named
	// tenant is in play; the default-tenant-only map is implied by
	// cores_used. The "" key is spelled out as "default" on the wire.
	var tenantCores map[string]int
	for t, c := range out.TenantCores {
		if t == "" && len(out.TenantCores) == 1 {
			break
		}
		if tenantCores == nil {
			tenantCores = make(map[string]int, len(out.TenantCores))
		}
		if t == "" {
			t = "default"
		}
		tenantCores[t] = c
	}
	s.emit(jsonlRound{
		Event:       "round",
		Shard:       e.Shard,
		Round:       out.Round,
		Admitted:    out.AdmittedUsers,
		Rejected:    out.RejectedUsers,
		TimedOut:    out.TimedOut,
		Recovered:   out.Recovered,
		Preempted:   out.Preempted,
		TenantCores: tenantCores,
		CoresUsed:   out.Allocation.CoresUsed,
		AvgPowerW:   finiteOr0(out.Energy.AvgPowerW),
		EstimateErr: finiteOr0(out.EstimateErr),
		Sessions:    e.Load.Sessions,
		Demand:      e.Load.DemandCores,
		Capacity:    e.Load.CapacityCores,
		Util:        finiteOr0(e.Load.Util),
	})
}

func (s *JSONLSink) OnSessionPlaced(e PlacementEvent) {
	s.emit(jsonlPlacement{
		Event:    "session_placed",
		Shard:    e.Shard,
		Session:  e.Session,
		Class:    e.Class,
		Home:     e.Home,
		Demand:   e.DemandCores,
		Tenant:   e.Tenant,
		Priority: e.Priority,
	})
}

func (s *JSONLSink) OnShardAdded(e ShardEvent) {
	s.emit(jsonlShard{Event: "shard_added", Shard: e.Shard, Live: e.Live})
}

func (s *JSONLSink) OnShardRemoved(e ShardEvent) {
	s.emit(jsonlShard{Event: "shard_removed", Shard: e.Shard, Live: e.Live})
}

func (s *JSONLSink) OnSessionMigrated(e MigrationEvent) {
	s.emitMigration("session_migrated", e)
}

func (s *JSONLSink) OnSessionRebalanced(e MigrationEvent) {
	s.emitMigration("session_rebalanced", e)
}

func (s *JSONLSink) emitMigration(event string, e MigrationEvent) {
	s.emit(jsonlMigration{
		Event:       event,
		FromShard:   e.FromShard,
		FromSession: e.FromSession,
		ToShard:     e.ToShard,
		ToSession:   e.ToSession,
		Class:       e.Class,
		Frame:       e.Frame,
		Tenant:      e.Tenant,
	})
}
