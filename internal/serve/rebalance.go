package serve

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// The fleet control loop, part 2: proactive rebalancing (DESIGN.md §10).
// Resize migrates sessions only off removed shards; a hot shard inside a
// *stable* fleet — class routing piled one popular class onto it — never
// shed load. WithRebalance closes that gap with the same GOP-boundary
// handoff, minus the drain: when a shard's demand-normalized utilization
// (core.LoadReport) exceeds the fleet mean by a configurable factor for K
// consecutive rounds, it hands sessions to less-utilized peers through the
// narrow core.Shard.ExportSession path, right after its round settles —
// the one moment every session on the shard sits at a GOP boundary with no
// encode in flight, and the one goroutine allowed to touch them is the
// very one running the check. Sessions are picked by how well their core
// demand closes the donor's overload gap, not merely by arrival order, so
// one heavy session can do the work of several light ones. The rebalanced
// session's bitstream continues bit-identically on the peer (the migration
// layer's invariant).

// RebalanceConfig parametrizes proactive hot-shard rebalancing
// (WithRebalance).
type RebalanceConfig struct {
	// Factor is the imbalance trigger: a shard is hot when its
	// demand-normalized utilization exceeds Factor × the mean utilization
	// of the alive shards. Must exceed 1 (default 1.5).
	Factor float64
	// Windows is the hysteresis: that many consecutive hot rounds before
	// the shard sheds, with any cool round resetting the count
	// (default 2).
	Windows int
	// MaxMoves caps the sessions shed per trigger (0 = enough to bring
	// the shard's demand back to the fleet-mean utilization).
	MaxMoves int
}

// shedKey identifies one rebalance LUT warm-handoff: the adopting shard
// and the workload class whose tables were merged into it.
type shedKey struct {
	shard int
	class string
}

// WithRebalance makes hot shards shed sessions to idle peers while the
// fleet keeps its size: after every settled round the fleet compares the
// shard's utilization against the fleet mean, and a shard hot for
// cfg.Windows consecutive rounds hands demand-picked sessions to the
// least-utilized shards at the GOP boundary (OnSessionRebalanced reports
// each hop). Rebalancing and Resize exclude each other, so a shedding
// shard can never race a drain.
func WithRebalance(cfg RebalanceConfig) Option {
	return func(o *options) { o.rebalance = &cfg }
}

// validateRebalance applies defaults. Called from New.
func validateRebalance(cfg *RebalanceConfig) error {
	if cfg.Factor == 0 {
		cfg.Factor = 1.5
	}
	if !(cfg.Factor > 1) { // NaN-safe
		return fmt.Errorf("serve: rebalance factor %v must exceed 1", cfg.Factor)
	}
	if cfg.Windows == 0 {
		cfg.Windows = 2
	}
	if cfg.Windows < 0 || cfg.MaxMoves < 0 {
		return fmt.Errorf("serve: rebalance windows %d / max moves %d", cfg.Windows, cfg.MaxMoves)
	}
	return nil
}

// maybeRebalance runs the hot-shard check for one settled round of shard
// s, on s's serving goroutine (the fleet's OnRound wire). It never blocks
// on a resize: while one is in flight the check just stands down — the
// resize is already rehoming sessions.
func (f *Fleet) maybeRebalance(s *shardState) {
	cfg := f.opts.rebalance
	if cfg == nil {
		return
	}
	reports := f.Loads()
	live, meanUtil := 0, 0.0
	for _, r := range reports {
		if r.Alive {
			live++
			meanUtil += r.Util
		}
	}
	if live > 0 {
		meanUtil /= float64(live)
	}
	donor := reports[s.index]
	// Two queued sessions minimum: a single session is this shard's to
	// serve no matter how heavy it prices — moving it just relocates the
	// hot spot.
	hot := live >= 2 && donor.Sessions >= 2 && meanUtil > 0 && donor.Util > cfg.Factor*meanUtil

	f.mu.Lock()
	if !hot || f.resizing || !s.routable() {
		// A cool round — or one we must sit out — resets the hysteresis.
		delete(f.hotRuns, s.index)
		f.mu.Unlock()
		return
	}
	f.hotRuns[s.index]++
	if f.hotRuns[s.index] < cfg.Windows {
		f.mu.Unlock()
		return
	}
	delete(f.hotRuns, s.index)
	// Claim a rebalance slot: Resize waits for in-flight rebalances, and
	// no new one starts while a resize is pending — the mutual exclusion
	// that keeps a shed target from draining away mid-handoff.
	f.rebalancing++
	f.mu.Unlock()

	f.shedLoad(s, donor, meanUtil, cfg)

	f.mu.Lock()
	f.rebalancing--
	f.cond.Broadcast()
	f.mu.Unlock()
}

// shedLoad moves sessions off the donor until its summed core demand is
// back at the fleet-mean utilization (or MaxMoves is reached, or moving
// would no longer reduce the imbalance). Victims are picked by demand: the
// queued session whose core demand comes closest to the remaining overload
// gap goes first (ties to the newest id — least serving history, least
// disturbance to the donor's warm working set), so a single heavy session
// is preferred over shedding many light ones. Runs on the donor's serving
// goroutine between rounds — the ExportSession contract.
func (f *Fleet) shedLoad(s *shardState, donor core.LoadReport, meanUtil float64, cfg *RebalanceConfig) {
	// The overload gap in cores: what the donor carries beyond the
	// fleet-mean utilization of its own capacity. At least one move — the
	// hot trigger already established the imbalance.
	gap := donor.DemandCores - int(math.Ceil(meanUtil*float64(donor.CapacityCores)))
	if gap < 1 {
		gap = 1
	}

	// Snapshot the queued sessions and their demands once; exports below
	// are the only thing settling them mid-loop.
	type victim struct{ id, demand int }
	var queued []victim
	for id := 0; ; id++ {
		st, ok := s.srv.StateOf(id)
		if !ok {
			break
		}
		if st == core.StateQueued {
			queued = append(queued, victim{id: id, demand: s.srv.SessionDemand(id)})
		}
	}

	moves := 0
	for gap > 0 && len(queued) > 0 {
		if cfg.MaxMoves > 0 && moves >= cfg.MaxMoves {
			return
		}
		// Best gap-closer: minimal |gap − demand|, ties to the newest id.
		pick := -1
		for i, v := range queued {
			if pick < 0 {
				pick = i
				continue
			}
			di, dp := abs(gap-v.demand), abs(gap-queued[pick].demand)
			if di < dp || (di == dp && v.id > queued[pick].id) {
				pick = i
			}
		}
		v := queued[pick]
		queued = append(queued[:pick], queued[pick+1:]...)

		target, trep := f.pickRebalanceTarget(s.index)
		if target == nil {
			return // donor is the only live shard
		}
		// Move only if it strictly reduces the imbalance: the victim on
		// the target must leave it less utilized than the donor is now.
		donorRep := s.srv.LoadReport()
		if trep.CapacityCores <= 0 || donorRep.CapacityCores <= 0 {
			return
		}
		targetAfter := float64(trep.DemandCores+v.demand) / float64(trep.CapacityCores)
		if targetAfter >= donorRep.Util {
			return // nobody meaningfully less utilized is left
		}
		snap, err := s.srv.ExportSession(v.id)
		if err != nil {
			continue // settled since the snapshot of queued ids; skip it
		}
		// Warm handoff: the class's calibrated LUT rides along so the
		// session's first post-rebalance round estimates from the donor's
		// tables instead of cold ones — once per (target, class) for the
		// fleet's lifetime, because the store merge is additive and a hot
		// shard sheds repeatedly: re-merging would pile duplicate history
		// into the target's histograms and calibration EWMA every trigger.
		f.mu.Lock()
		h := shedKey{target.index, snap.Class}
		doMerge := !f.shedMerged[h]
		f.shedMerged[h] = true
		f.mu.Unlock()
		if doMerge {
			target.srv.Store().MergeClass(s.srv.Store(), snap.Class)
		}
		sess, ierr := target.srv.Import(snap)
		if ierr != nil {
			// Never strand the session: re-adopt it locally under a fresh
			// id; only if even that fails does it dead-letter.
			if _, herr := s.srv.Import(snap); herr != nil {
				_ = s.srv.FailSession(snap.DonorID, fmt.Errorf(
					"serve: rebalance of session %d off shard %d: %w", snap.DonorID, s.index, ierr))
			}
			continue
		}
		f.mu.Lock()
		f.rebalanced++
		f.mu.Unlock()
		f.dispatchRebalance(MigrationEvent{
			FromShard:   s.index,
			FromSession: snap.DonorID,
			ToShard:     target.index,
			ToSession:   sess.ID,
			Class:       snap.Class,
			Frame:       snap.Frame,
			Tenant:      snap.Tenant,
		})
		// Wake or revive the adopter: a closed fleet drains shards as they
		// empty, so an idle target may have no supervisor anymore.
		f.reviveSupervisor(target)
		gap -= v.demand
		moves++
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// pickRebalanceTarget returns the least-utilized routable shard other than
// the donor (ties to the lowest index), with its load report; nil when the
// donor is the only live shard.
func (f *Fleet) pickRebalanceTarget(donor int) (*shardState, core.LoadReport) {
	f.mu.Lock()
	shards := append([]*shardState(nil), f.shards...)
	routable := make([]bool, len(shards))
	for i, s := range shards {
		routable[i] = s.routable()
	}
	f.mu.Unlock()
	var best *shardState
	var bestRep core.LoadReport
	for i, t := range shards {
		if i == donor || !routable[i] {
			continue
		}
		if r := t.srv.LoadReport(); best == nil || r.Util < bestRep.Util {
			best, bestRep = t, r
		}
	}
	return best, bestRep
}

// reviveSupervisor restarts a live target's serving supervisor if the
// fleet is running and the target's previous supervisor already returned
// (an empty shard of a closed fleet drains its loop).
func (f *Fleet) reviveSupervisor(t *shardState) {
	f.mu.Lock()
	if f.running && t.routable() && !t.supervising {
		f.startSupervisorLocked(f.runCtx, t)
	}
	f.mu.Unlock()
}

// dispatchRebalance delivers a session-rebalanced event to the sink.
func (f *Fleet) dispatchRebalance(e MigrationEvent) {
	if f.opts.sink == nil {
		return
	}
	f.sinkMu.Lock()
	defer f.sinkMu.Unlock()
	f.opts.sink.OnSessionRebalanced(e)
}
