package serve

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// The fleet's cross-process surface: what internal/dist needs to run a
// Fleet behind a network agent. Three additions to the in-process API —
// periodic non-destructive checkpoints of every session's wire state
// (WithCheckpoint), adoption of sessions restored from a remote peer's
// wire snapshot (Import), and round-boundary scheduling on a shard's
// serving goroutine (OnNextRound), the safe point for the destructive
// export handshake a drain needs.

// WithCheckpoint wires every session's crash-recovery state (a
// core.SessionWire per checkpointable session — see
// core.Server.CheckpointSessions) out of each shard every `every` settled
// rounds. The callback runs on the shard's serving goroutine between
// rounds: it must not block (ship the wires to a channel or swap them
// into a cache) and must not call serving methods. It receives an empty
// slice when nothing is checkpointable — completed sessions drop out of
// the caller's cache that way instead of being resurrected on failover.
func WithCheckpoint(every int, fn func(shard int, wires []*core.SessionWire)) Option {
	return func(o *options) {
		if every <= 0 {
			o.errs = append(o.errs, fmt.Errorf("serve: checkpoint interval %d rounds", every))
			return
		}
		if fn == nil {
			o.errs = append(o.errs, errors.New("serve: nil checkpoint callback"))
			return
		}
		o.checkpointEvery = every
		o.checkpoint = fn
	}
}

// Import adopts a session snapshot restored from another process
// (core.SessionWire.Restore) into this fleet: routed like finishDrain
// routes a drained shard's sessions — class home first, then the load
// fallback — with the landing shard's supervisor revived if its serving
// loop had already wound down. The migration event carries FromShard -1:
// the donor is not a shard of this fleet, and the JSONL sink's
// "session_migrated" with from_shard -1 is exactly how a cross-process
// re-import is distinguished from an in-fleet move. Safe from any
// goroutine, like Submit.
func (f *Fleet) Import(snap *core.SessionSnapshot) (Placement, error) {
	if snap == nil || snap.Session == nil {
		return Placement{}, errors.New("serve: import of nil snapshot")
	}
	var lastErr error
	for _, ti := range f.routeOrder(f.HomeShard(snap.Class)) {
		sess, err := f.shardAt(ti).srv.Import(snap)
		if err != nil {
			lastErr = err
			continue
		}
		f.dispatchMigration(MigrationEvent{
			FromShard:   -1,
			FromSession: snap.DonorID,
			ToShard:     ti,
			ToSession:   sess.ID,
			Class:       snap.Class,
			Frame:       snap.Frame,
		})
		f.mu.Lock()
		t := f.shards[ti]
		if f.running && t.routable() && !t.supervising {
			f.startSupervisorLocked(f.runCtx, t)
		}
		f.mu.Unlock()
		return Placement{Shard: ti, Session: sess}, nil
	}
	if lastErr == nil {
		lastErr = errors.New("serve: no live shard")
	}
	return Placement{}, fmt.Errorf("serve: import: %w", lastErr)
}

// OnNextRound schedules fn to run on shard's serving goroutine at its
// next round boundary — between rounds, where every session sits at a GOP
// boundary and ExportSession/CheckpointSessions are legal while the Run
// is live. fn receives the shard handle; it must not block and must not
// call fleet methods that take the fleet lock. The callback fires at most
// once; it never fires if the shard serves no further round (an idle
// shard settles no rounds), so callers waiting on a reply channel must
// time out. Fails for a shard that is not routable.
func (f *Fleet) OnNextRound(shard int, fn func(core.Shard)) error {
	if fn == nil {
		return errors.New("serve: nil round callback")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if shard < 0 || shard >= len(f.shards) {
		return fmt.Errorf("serve: no shard %d", shard)
	}
	s := f.shards[shard]
	if !s.routable() {
		return fmt.Errorf("serve: shard %d is not serving", shard)
	}
	s.pending = append(s.pending, fn)
	return nil
}

// MergeLUTs folds a remote peer's workload LUT store into this fleet,
// each class into its home shard's store — the same warm-handoff rule
// finishDrain applies between local shards, extended across the process
// boundary. Call it before importing the sessions the store calibrates,
// so their first round estimates warm. Safe from any goroutine; a nil
// store is a no-op.
func (f *Fleet) MergeLUTs(st *workload.Store) {
	if st == nil {
		return
	}
	for _, class := range st.Classes() {
		if ti := f.HomeShard(class); ti >= 0 {
			f.shardAt(ti).srv.Store().MergeClass(st, class)
		}
	}
}

// StoreSnapshot merges every live shard's per-class workload LUT store
// into one detached snapshot — the warm-handoff payload an agent ships
// with its heartbeats so a master can re-import its sessions elsewhere
// with calibrated estimation state (workload.Store.Save is its wire
// format). Safe from any goroutine; the snapshot is a deep copy.
func (f *Fleet) StoreSnapshot() *workload.Store {
	f.mu.Lock()
	var stores []*workload.Store
	for _, s := range f.shards {
		if !s.removed {
			stores = append(stores, s.srv.Store())
		}
	}
	f.mu.Unlock()
	out := workload.NewStore()
	for _, st := range stores {
		out.Merge(st)
	}
	return out
}
