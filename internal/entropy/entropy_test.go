package entropy

import (
	"testing"
	"testing/quick"
)

func TestBitWriterReaderRoundTrip(t *testing.T) {
	w := NewBitWriter()
	w.WriteBit(1)
	w.WriteBit(0)
	w.WriteBits(0b1101, 4)
	w.WriteBits(0xABCD, 16)
	if w.Len() != 22 {
		t.Fatalf("Len = %d, want 22", w.Len())
	}
	r := NewBitReader(w.Bytes())
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("first bit")
	}
	if b, _ := r.ReadBit(); b != 0 {
		t.Fatal("second bit")
	}
	if v, _ := r.ReadBits(4); v != 0b1101 {
		t.Fatalf("nibble = %b", v)
	}
	if v, _ := r.ReadBits(16); v != 0xABCD {
		t.Fatalf("word = %x", v)
	}
}

func TestBitReaderTruncated(t *testing.T) {
	r := NewBitReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestBitsPaddingZero(t *testing.T) {
	w := NewBitWriter()
	w.WriteBits(0b101, 3)
	b := w.Bytes()
	if len(b) != 1 {
		t.Fatalf("len = %d", len(b))
	}
	if b[0] != 0b10100000 {
		t.Fatalf("padded byte = %08b", b[0])
	}
}

func TestWriterReusableAfterBytes(t *testing.T) {
	w := NewBitWriter()
	w.WriteBits(0xA, 4)
	_ = w.Bytes()
	w.WriteBits(0xB, 4)
	b := w.Bytes()
	if len(b) != 1 || b[0] != 0xAB {
		t.Fatalf("bytes = %x, want ab", b)
	}
}

func TestUEKnownCodes(t *testing.T) {
	// Standard Exp-Golomb examples: 0→"1", 1→"010", 2→"011", 3→"00100".
	cases := []struct {
		v    uint32
		bits int
	}{{0, 1}, {1, 3}, {2, 3}, {3, 5}, {4, 5}, {5, 5}, {6, 5}, {7, 7}, {255, 17}}
	for _, c := range cases {
		w := NewBitWriter()
		w.WriteUE(c.v)
		if w.Len() != c.bits {
			t.Errorf("ue(%d) length = %d, want %d", c.v, w.Len(), c.bits)
		}
		if got := UEBits(c.v); got != c.bits {
			t.Errorf("UEBits(%d) = %d, want %d", c.v, got, c.bits)
		}
		r := NewBitReader(w.Bytes())
		got, err := r.ReadUE()
		if err != nil {
			t.Fatal(err)
		}
		if got != c.v {
			t.Errorf("ue round trip %d → %d", c.v, got)
		}
	}
}

func TestSEMapping(t *testing.T) {
	// se(v) order: 0, 1, −1, 2, −2, 3, −3 …
	order := []int32{0, 1, -1, 2, -2, 3, -3, 4, -4}
	for u, v := range order {
		if got := seToUE(v); got != uint32(u) {
			t.Errorf("seToUE(%d) = %d, want %d", v, got, u)
		}
		if got := ueToSE(uint32(u)); got != v {
			t.Errorf("ueToSE(%d) = %d, want %d", u, got, v)
		}
	}
}

func TestUERoundTripProperty(t *testing.T) {
	f := func(v uint32) bool {
		v %= 1 << 24
		w := NewBitWriter()
		w.WriteUE(v)
		r := NewBitReader(w.Bytes())
		got, err := r.ReadUE()
		return err == nil && got == v && w.Len() == UEBits(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSERoundTripProperty(t *testing.T) {
	f := func(v int32) bool {
		v %= 1 << 22
		w := NewBitWriter()
		w.WriteSE(v)
		r := NewBitReader(w.Bytes())
		got, err := r.ReadSE()
		return err == nil && got == v && w.Len() == SEBits(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSequenceOfCodesRoundTrip(t *testing.T) {
	w := NewBitWriter()
	values := []int32{0, -5, 17, 2, -300, 99999, 1, -1}
	for _, v := range values {
		w.WriteSE(v)
	}
	r := NewBitReader(w.Bytes())
	for i, want := range values {
		got, err := r.ReadSE()
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("value %d = %d, want %d", i, got, want)
		}
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	for _, n := range []int{4, 8} {
		scan, err := scanFor(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(scan) != n*n {
			t.Fatalf("n=%d scan length %d", n, len(scan))
		}
		seen := make(map[int]bool)
		for _, idx := range scan {
			if idx < 0 || idx >= n*n || seen[idx] {
				t.Fatalf("n=%d: bad or duplicate index %d", n, idx)
			}
			seen[idx] = true
		}
	}
}

func TestZigzag4KnownPrefix(t *testing.T) {
	// Classic zig-zag for 4×4 starts: (0,0) (0,1) (1,0) (2,0) (1,1) (0,2)…
	want := []int{0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15}
	for i, idx := range zigzag4 {
		if idx != want[i] {
			t.Fatalf("zigzag4[%d] = %d, want %d (full %v)", i, idx, want[i], zigzag4)
		}
	}
}

func TestCoeffBlockRoundTripAllZero(t *testing.T) {
	w := NewBitWriter()
	coeffs := make([]int32, 64)
	if err := EncodeCoeffBlock(w, 8, coeffs); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 1 {
		t.Fatalf("all-zero block costs %d bits, want 1", w.Len())
	}
	got := make([]int32, 64)
	got[3] = 99 // must be overwritten
	if err := DecodeCoeffBlock(NewBitReader(w.Bytes()), 8, got); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("coeff %d = %d, want 0", i, v)
		}
	}
}

func TestCoeffBlockRoundTripProperty(t *testing.T) {
	f := func(seed int64, dense bool) bool {
		coeffs := make([]int32, 16)
		s := uint64(seed)
		for i := range coeffs {
			s = s*6364136223846793005 + 1442695040888963407
			if dense || s%3 == 0 {
				coeffs[i] = int32(s%41) - 20
			}
		}
		w := NewBitWriter()
		if err := EncodeCoeffBlock(w, 4, coeffs); err != nil {
			return false
		}
		cost, err := CoeffBlockBits(4, coeffs)
		if err != nil || cost != w.Len() {
			return false
		}
		got := make([]int32, 16)
		if err := DecodeCoeffBlock(NewBitReader(w.Bytes()), 4, got); err != nil {
			return false
		}
		for i := range coeffs {
			if coeffs[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCoeffBlockBitsMatchesEncoder8(t *testing.T) {
	coeffs := make([]int32, 64)
	coeffs[0] = 50
	coeffs[1] = -3
	coeffs[10] = 7
	coeffs[63] = 1
	w := NewBitWriter()
	if err := EncodeCoeffBlock(w, 8, coeffs); err != nil {
		t.Fatal(err)
	}
	cost, err := CoeffBlockBits(8, coeffs)
	if err != nil {
		t.Fatal(err)
	}
	if cost != w.Len() {
		t.Fatalf("CoeffBlockBits = %d, encoder wrote %d", cost, w.Len())
	}
}

func TestCoeffBlockRejectsBadInput(t *testing.T) {
	w := NewBitWriter()
	if err := EncodeCoeffBlock(w, 8, make([]int32, 63)); err == nil {
		t.Fatal("accepted short block")
	}
	if err := EncodeCoeffBlock(w, 5, make([]int32, 25)); err == nil {
		t.Fatal("accepted size 5")
	}
	if _, err := CoeffBlockBits(4, make([]int32, 17)); err == nil {
		t.Fatal("CoeffBlockBits accepted bad length")
	}
}

func TestDecodeCoeffBlockCorruptStream(t *testing.T) {
	// A stream declaring more significant coefficients than fit must error,
	// not panic or loop.
	w := NewBitWriter()
	w.WriteUE(17) // 17 > 16 for a 4×4 block
	got := make([]int32, 16)
	if err := DecodeCoeffBlock(NewBitReader(w.Bytes()), 4, got); err == nil {
		t.Fatal("accepted overfull block")
	}
	// Runs overflowing the block must error too.
	w2 := NewBitWriter()
	w2.WriteUE(1)  // one significant coefficient
	w2.WriteUE(16) // run of 16 → position 16 out of range
	w2.WriteSE(5)
	if err := DecodeCoeffBlock(NewBitReader(w2.Bytes()), 4, got); err == nil {
		t.Fatal("accepted overflowing run")
	}
}

func TestMoreCoefficientsCostMoreBits(t *testing.T) {
	sparse := make([]int32, 64)
	sparse[0] = 10
	dense := make([]int32, 64)
	for i := 0; i < 32; i++ {
		dense[i] = 10
	}
	cs, _ := CoeffBlockBits(8, sparse)
	cd, _ := CoeffBlockBits(8, dense)
	if cd <= cs {
		t.Fatalf("dense block %d bits ≤ sparse %d bits", cd, cs)
	}
}
