// Package entropy implements the bitstream layer of the codec: MSB-first
// bit I/O, unsigned/signed Exp-Golomb codes (the HEVC ue(v)/se(v) syntax
// elements), zig-zag coefficient scanning and run-level coefficient block
// coding. Every encoder has an exactly matching decoder, which the test
// suite exercises with property-based round trips.
package entropy

import (
	"errors"
	"fmt"
)

// ErrTruncated reports that a read ran past the end of the bitstream.
var ErrTruncated = errors.New("entropy: truncated bitstream")

// BitWriter accumulates bits MSB-first into a byte buffer.
type BitWriter struct {
	buf  []byte
	cur  uint8
	nCur uint // bits currently held in cur (0..7)
	bits int  // total bits written
}

// NewBitWriter returns an empty writer.
func NewBitWriter() *BitWriter { return &BitWriter{} }

// Reset returns the writer to the empty state while keeping the byte
// buffer's capacity, so pooled writers append without reallocating. Any
// stale bytes beyond the reset length are unreachable: every byte of a
// subsequent Bytes() result is produced by post-Reset writes.
func (w *BitWriter) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nCur = 0, 0
	w.bits = 0
}

// WriteBit appends a single bit (0 or 1).
func (w *BitWriter) WriteBit(b uint) {
	w.cur = w.cur<<1 | uint8(b&1)
	w.nCur++
	w.bits++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// WriteBits appends the low n bits of v, most significant first. n may be 0.
func (w *BitWriter) WriteBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(uint(v >> uint(i) & 1))
	}
}

// Len returns the number of bits written so far.
func (w *BitWriter) Len() int { return w.bits }

// Bytes flushes (zero-padding the final partial byte) and returns the
// buffer. The writer remains usable; further writes continue the stream
// conceptually but callers normally call Bytes once at the end.
func (w *BitWriter) Bytes() []byte {
	out := make([]byte, len(w.buf), len(w.buf)+1)
	copy(out, w.buf)
	if w.nCur > 0 {
		out = append(out, w.cur<<(8-w.nCur))
	}
	return out
}

// BitReader consumes bits MSB-first from a byte slice.
type BitReader struct {
	buf  []byte
	pos  int  // byte index
	nRem uint // bits remaining in the current byte (0..8)
	bits int  // total bits consumed
}

// NewBitReader wraps buf.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf, nRem: 8} }

// ReadBit returns the next bit.
func (r *BitReader) ReadBit() (uint, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrTruncated
	}
	r.nRem--
	b := uint(r.buf[r.pos]>>r.nRem) & 1
	if r.nRem == 0 {
		r.pos++
		r.nRem = 8
	}
	r.bits++
	return b, nil
}

// ReadBits returns the next n bits as the low bits of a uint64 (n ≤ 64).
func (r *BitReader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		return 0, fmt.Errorf("entropy: ReadBits(%d) > 64", n)
	}
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// BitsRead returns the number of bits consumed so far.
func (r *BitReader) BitsRead() int { return r.bits }

// WriteUE appends an unsigned Exp-Golomb code (HEVC ue(v)).
func (w *BitWriter) WriteUE(v uint32) {
	x := uint64(v) + 1
	n := bitLen(x)
	w.WriteBits(0, n-1) // n−1 leading zeros
	w.WriteBits(x, n)
}

// ReadUE reads an unsigned Exp-Golomb code.
func (r *BitReader) ReadUE() (uint32, error) {
	var zeros uint
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 32 {
			return 0, fmt.Errorf("entropy: ue(v) prefix too long")
		}
	}
	rest, err := r.ReadBits(zeros)
	if err != nil {
		return 0, err
	}
	return uint32(1<<zeros + rest - 1), nil
}

// WriteSE appends a signed Exp-Golomb code (HEVC se(v)): 0, 1, −1, 2, −2 …
func (w *BitWriter) WriteSE(v int32) {
	w.WriteUE(seToUE(v))
}

// ReadSE reads a signed Exp-Golomb code.
func (r *BitReader) ReadSE() (int32, error) {
	u, err := r.ReadUE()
	if err != nil {
		return 0, err
	}
	return ueToSE(u), nil
}

// seToUE maps a signed value to its unsigned code index.
func seToUE(v int32) uint32 {
	if v <= 0 {
		return uint32(-2 * int64(v))
	}
	return uint32(2*int64(v) - 1)
}

// ueToSE is the inverse of seToUE.
func ueToSE(u uint32) int32 {
	if u%2 == 0 {
		return int32(-(int64(u) / 2))
	}
	return int32((int64(u) + 1) / 2)
}

// UEBits returns the length in bits of the ue(v) code for v without
// encoding it; rate estimation in the encoder uses this.
func UEBits(v uint32) int {
	n := bitLen(uint64(v) + 1)
	return int(2*n - 1)
}

// SEBits returns the length of the se(v) code for v.
func SEBits(v int32) int { return UEBits(seToUE(v)) }

// bitLen returns the position of the highest set bit (1-based); bitLen(1)=1.
func bitLen(x uint64) uint {
	var n uint
	for x > 0 {
		n++
		x >>= 1
	}
	return n
}
