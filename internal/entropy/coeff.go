package entropy

import "fmt"

// zigzag4 and zigzag8 map scan order → raster index for the diagonal scan.
var (
	zigzag4 = buildZigzag(4)
	zigzag8 = buildZigzag(8)
)

// buildZigzag produces the classic up-right diagonal scan for an n×n block.
func buildZigzag(n int) []int {
	order := make([]int, 0, n*n)
	for s := 0; s < 2*n-1; s++ {
		if s%2 == 0 { // walk up-right
			y := s
			if y > n-1 {
				y = n - 1
			}
			x := s - y
			for x < n && y >= 0 {
				order = append(order, y*n+x)
				x++
				y--
			}
		} else { // walk down-left
			x := s
			if x > n-1 {
				x = n - 1
			}
			y := s - x
			for y < n && x >= 0 {
				order = append(order, y*n+x)
				y++
				x--
			}
		}
	}
	return order
}

// scanFor returns the zig-zag order for block size n (4 or 8).
func scanFor(n int) ([]int, error) {
	switch n {
	case 4:
		return zigzag4, nil
	case 8:
		return zigzag8, nil
	default:
		return nil, fmt.Errorf("entropy: unsupported block size %d", n)
	}
}

// EncodeCoeffBlock writes an n×n quantized coefficient block (raster order)
// as: ue(number of significant coefficients in scan order, possibly 0),
// then for each significant coefficient ue(zero-run since the previous one)
// followed by se(level). This run-level scheme approximates the rate
// behaviour of CABAC residual coding (cost grows with coefficient count and
// magnitude, trailing zeros are nearly free) while remaining exactly
// decodable.
func EncodeCoeffBlock(w *BitWriter, n int, coeffs []int32) error {
	scan, err := scanFor(n)
	if err != nil {
		return err
	}
	if len(coeffs) != n*n {
		return fmt.Errorf("entropy: coeff block length %d, want %d", len(coeffs), n*n)
	}
	// Count significant coefficients.
	var nsig uint32
	for _, idx := range scan {
		if coeffs[idx] != 0 {
			nsig++
		}
	}
	w.WriteUE(nsig)
	run := uint32(0)
	for _, idx := range scan {
		c := coeffs[idx]
		if c == 0 {
			run++
			continue
		}
		w.WriteUE(run)
		w.WriteSE(c)
		run = 0
	}
	return nil
}

// DecodeCoeffBlock reads a block written by EncodeCoeffBlock into coeffs
// (raster order, length n*n, fully overwritten).
func DecodeCoeffBlock(r *BitReader, n int, coeffs []int32) error {
	scan, err := scanFor(n)
	if err != nil {
		return err
	}
	if len(coeffs) != n*n {
		return fmt.Errorf("entropy: coeff block length %d, want %d", len(coeffs), n*n)
	}
	for i := range coeffs {
		coeffs[i] = 0
	}
	nsig, err := r.ReadUE()
	if err != nil {
		return err
	}
	if int(nsig) > n*n {
		return fmt.Errorf("entropy: %d significant coefficients in %dx%d block", nsig, n, n)
	}
	pos := 0
	for k := uint32(0); k < nsig; k++ {
		run, err := r.ReadUE()
		if err != nil {
			return err
		}
		pos += int(run)
		if pos >= len(scan) {
			return fmt.Errorf("entropy: coefficient run overflows block")
		}
		level, err := r.ReadSE()
		if err != nil {
			return err
		}
		if level == 0 {
			return fmt.Errorf("entropy: zero level coded as significant")
		}
		coeffs[scan[pos]] = level
		pos++
	}
	return nil
}

// CoeffBlockBits returns the exact bit cost EncodeCoeffBlock would spend on
// the block without producing output.
func CoeffBlockBits(n int, coeffs []int32) (int, error) {
	scan, err := scanFor(n)
	if err != nil {
		return 0, err
	}
	if len(coeffs) != n*n {
		return 0, fmt.Errorf("entropy: coeff block length %d, want %d", len(coeffs), n*n)
	}
	var nsig uint32
	for _, idx := range scan {
		if coeffs[idx] != 0 {
			nsig++
		}
	}
	bits := UEBits(nsig)
	run := uint32(0)
	for _, idx := range scan {
		c := coeffs[idx]
		if c == 0 {
			run++
			continue
		}
		bits += UEBits(run) + SEBits(c)
		run = 0
	}
	return bits, nil
}
