package codec

import (
	"testing"

	"repro/internal/medgen"
	"repro/internal/motion"
	"repro/internal/tiling"
	"repro/internal/video"
)

// smallConfig is a fast test geometry.
func smallConfig() Config {
	return Config{Width: 128, Height: 96, FPS: 24, GOPSize: 4, IntraPeriod: 8, BlockSize: 16, TransformSize: 8}
}

// smallSequence renders a short noise-free medical clip at test geometry.
func smallSequence(t *testing.T, frames int) *video.Sequence {
	t.Helper()
	cfg := medgen.Default()
	cfg.Width, cfg.Height = 128, 96
	cfg.Frames = frames
	cfg.Motion = medgen.Pan
	cfg.PanVX, cfg.PanVY = 2, 1
	cfg.NoiseSigma = 1
	g, err := medgen.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g.Sequence()
}

// uniformParams builds one TileParams per tile.
func uniformParams(n, qp int) []TileParams {
	params := make([]TileParams, n)
	for i := range params {
		params[i] = TileParams{QP: qp, Searcher: motion.TZSearch{}, Window: 16}
	}
	return params
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Width = 0 },
		func(c *Config) { c.FPS = 0 },
		func(c *Config) { c.GOPSize = 0 },
		func(c *Config) { c.IntraPeriod = -1 },
		func(c *Config) { c.IntraPeriod = 13 }, // not multiple of GOP 8
		func(c *Config) { c.BlockSize = 12 },   // not multiple of 8
		func(c *Config) { c.TransformSize = 16 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestTypeOfSchedule(t *testing.T) {
	c := DefaultConfig() // intra period 48
	if c.TypeOf(0) != FrameI {
		t.Fatal("frame 0 must be I")
	}
	if c.TypeOf(1) != FrameP || c.TypeOf(47) != FrameP {
		t.Fatal("mid-period frames must be P")
	}
	if c.TypeOf(48) != FrameI || c.TypeOf(96) != FrameI {
		t.Fatal("intra refresh missing")
	}
	c.IntraPeriod = 0
	if c.TypeOf(48) != FrameP {
		t.Fatal("intra period 0 should never refresh")
	}
	if c.TypeOf(0) != FrameI {
		t.Fatal("frame 0 must be I even with period 0")
	}
}

func TestEncodeIntraFrameQuality(t *testing.T) {
	seq := smallSequence(t, 1)
	enc, err := NewEncoder(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	grid := tiling.MustUniform(128, 96, 2, 2)
	stats, bs, err := enc.EncodeFrame(seq.Frames[0], grid, uniformParams(4, 27))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Type != FrameI {
		t.Fatalf("type = %v", stats.Type)
	}
	if stats.PSNR < 35 {
		t.Fatalf("I-frame PSNR %.1f dB too low at QP 27", stats.PSNR)
	}
	if stats.Bits <= 0 || len(bs.Tiles) != 4 {
		t.Fatalf("bits %d, tiles %d", stats.Bits, len(bs.Tiles))
	}
	// The reference must now be the reconstruction.
	psnr, err := video.FramePSNR(enc.Reference(), seq.Frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if video.CapPSNR(psnr, 100) != stats.PSNR {
		t.Fatalf("reference PSNR %.2f != reported %.2f", psnr, stats.PSNR)
	}
}

func TestQPControlsRateAndQuality(t *testing.T) {
	seq := smallSequence(t, 1)
	type point struct {
		bits int
		psnr float64
	}
	var pts []point
	for _, qp := range []int{22, 32, 42} {
		enc, err := NewEncoder(smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		grid := tiling.MustUniform(128, 96, 2, 2)
		stats, _, err := enc.EncodeFrame(seq.Frames[0], grid, uniformParams(4, qp))
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, point{stats.Bits, stats.PSNR})
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].bits >= pts[i-1].bits {
			t.Fatalf("bits not monotone decreasing with QP: %+v", pts)
		}
		if pts[i].psnr >= pts[i-1].psnr {
			t.Fatalf("PSNR not monotone decreasing with QP: %+v", pts)
		}
	}
}

func TestPFramesCheaperThanIFrames(t *testing.T) {
	seq := smallSequence(t, 4)
	enc, err := NewEncoder(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	grid := tiling.MustUniform(128, 96, 2, 2)
	var iBits, pBits int
	for i, f := range seq.Frames {
		stats, _, err := enc.EncodeFrame(f, grid, uniformParams(4, 32))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			iBits = stats.Bits
		} else {
			pBits += stats.Bits
		}
	}
	avgP := pBits / (len(seq.Frames) - 1)
	if avgP*2 >= iBits {
		t.Fatalf("P-frames (%d bits avg) not well below I-frame (%d bits): inter prediction broken", avgP, iBits)
	}
}

func TestDecoderMatchesEncoderReconstruction(t *testing.T) {
	seq := smallSequence(t, 6)
	cfg := smallConfig()
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	grid := tiling.MustUniform(128, 96, 2, 2)
	for i, f := range seq.Frames {
		_, bs, err := enc.EncodeFrame(f, grid, uniformParams(4, 30))
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := dec.DecodeFrame(bs, grid)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		sad, err := video.SAD(got.Y, enc.Reference().Y)
		if err != nil {
			t.Fatal(err)
		}
		if sad != 0 {
			t.Fatalf("frame %d: decoder reconstruction differs from encoder (SAD %d) — drift", i, sad)
		}
	}
}

func TestDecoderMatchesAcrossTileShapes(t *testing.T) {
	seq := smallSequence(t, 3)
	cfg := smallConfig()
	// Non-uniform grid exercising partial blocks (width 72 → 16×4+8).
	grid := &tiling.Grid{FrameW: 128, FrameH: 96, Tiles: []tiling.Tile{
		{Rect: tiling.Rect{X: 0, Y: 0, W: 72, H: 40}},
		{Rect: tiling.Rect{X: 72, Y: 0, W: 56, H: 40}},
		{Rect: tiling.Rect{X: 0, Y: 40, W: 72, H: 56}},
		{Rect: tiling.Rect{X: 72, Y: 40, W: 56, H: 56}},
	}}
	if err := grid.Validate(); err != nil {
		t.Fatal(err)
	}
	enc, _ := NewEncoder(cfg)
	dec, _ := NewDecoder(cfg)
	for i, f := range seq.Frames {
		_, bs, err := enc.EncodeFrame(f, grid, uniformParams(4, 28))
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := dec.DecodeFrame(bs, grid)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if sad, _ := video.SAD(got.Y, enc.Reference().Y); sad != 0 {
			t.Fatalf("frame %d: drift on irregular grid (SAD %d)", i, sad)
		}
	}
}

func TestPerTileQPsAreIndependent(t *testing.T) {
	seq := smallSequence(t, 1)
	enc, _ := NewEncoder(smallConfig())
	grid := tiling.MustUniform(128, 96, 2, 1)
	params := uniformParams(2, 22)
	params[1].QP = 42
	stats, bs, err := enc.EncodeFrame(seq.Frames[0], grid, params)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tiles[0].Bits <= stats.Tiles[1].Bits {
		t.Fatalf("QP22 tile (%d bits) not larger than QP42 tile (%d bits)",
			stats.Tiles[0].Bits, stats.Tiles[1].Bits)
	}
	if stats.Tiles[0].PSNR <= stats.Tiles[1].PSNR {
		t.Fatalf("QP22 tile PSNR %.1f not above QP42 tile %.1f",
			stats.Tiles[0].PSNR, stats.Tiles[1].PSNR)
	}
	// Decoder must honor the per-tile QP carried in the tile header.
	dec, _ := NewDecoder(smallConfig())
	got, err := dec.DecodeFrame(bs, grid)
	if err != nil {
		t.Fatal(err)
	}
	if sad, _ := video.SAD(got.Y, enc.Reference().Y); sad != 0 {
		t.Fatal("per-tile QP decode drift")
	}
}

func TestParallelEncodeMatchesSequential(t *testing.T) {
	seq := smallSequence(t, 3)
	cfg := smallConfig()
	grid := tiling.MustUniform(128, 96, 2, 2)

	encSeq, _ := NewEncoder(cfg)
	encPar, _ := NewEncoder(cfg)
	for i, f := range seq.Frames {
		s1, b1, err := encSeq.EncodeFrame(f, grid, uniformParams(4, 30))
		if err != nil {
			t.Fatal(err)
		}
		s2, b2, err := encPar.EncodeFrameParallel(f, grid, uniformParams(4, 30), 4)
		if err != nil {
			t.Fatal(err)
		}
		if s1.Bits != s2.Bits || s1.PSNR != s2.PSNR {
			t.Fatalf("frame %d: parallel stats differ: %d/%f vs %d/%f", i, s1.Bits, s1.PSNR, s2.Bits, s2.PSNR)
		}
		for k := range b1.Tiles {
			if string(b1.Tiles[k]) != string(b2.Tiles[k]) {
				t.Fatalf("frame %d tile %d: parallel bitstream differs", i, k)
			}
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	cfg := smallConfig()
	enc, _ := NewEncoder(cfg)
	seq := smallSequence(t, 1)
	grid := tiling.MustUniform(128, 96, 2, 2)

	// Wrong frame size.
	wrong := video.NewFrame(64, 64)
	if _, _, err := enc.EncodeFrame(wrong, tiling.MustUniform(64, 64, 1, 1), uniformParams(1, 30)); err == nil {
		t.Fatal("accepted wrong frame size")
	}
	// Wrong param count.
	if _, _, err := enc.EncodeFrame(seq.Frames[0], grid, uniformParams(3, 30)); err == nil {
		t.Fatal("accepted wrong param count")
	}
	// Bad QP.
	if _, _, err := enc.EncodeFrame(seq.Frames[0], grid, uniformParams(4, 99)); err == nil {
		t.Fatal("accepted QP 99")
	}
	// Grid mismatch.
	if _, _, err := enc.EncodeFrame(seq.Frames[0], tiling.MustUniform(64, 64, 2, 2), uniformParams(4, 30)); err == nil {
		t.Fatal("accepted mismatched grid")
	}
	// Missing searcher on a P-frame.
	if _, _, err := enc.EncodeFrame(seq.Frames[0], grid, uniformParams(4, 30)); err != nil {
		t.Fatal(err) // I-frame: searcher unused
	}
	noSearch := make([]TileParams, 4)
	for i := range noSearch {
		noSearch[i] = TileParams{QP: 30}
	}
	if _, _, err := enc.EncodeFrame(seq.Frames[0], grid, noSearch); err == nil {
		t.Fatal("accepted P-frame without searcher")
	}
}

func TestDecoderValidation(t *testing.T) {
	cfg := smallConfig()
	dec, _ := NewDecoder(cfg)
	grid := tiling.MustUniform(128, 96, 2, 2)
	// P-frame without reference.
	if _, err := dec.DecodeFrame(&Bitstream{Type: FrameP, Tiles: make([][]byte, 4)}, grid); err == nil {
		t.Fatal("accepted P-frame without reference")
	}
	// Tile count mismatch.
	if _, err := dec.DecodeFrame(&Bitstream{Type: FrameI, Tiles: make([][]byte, 3)}, grid); err == nil {
		t.Fatal("accepted tile count mismatch")
	}
	// Truncated payload.
	bs := &Bitstream{Type: FrameI, Tiles: [][]byte{nil, nil, nil, nil}}
	if _, err := dec.DecodeFrame(bs, grid); err == nil {
		t.Fatal("accepted empty payloads")
	}
}

func TestCorruptBitstreamRejectedNotPanic(t *testing.T) {
	seq := smallSequence(t, 1)
	cfg := smallConfig()
	enc, _ := NewEncoder(cfg)
	grid := tiling.MustUniform(128, 96, 2, 2)
	_, bs, err := enc.EncodeFrame(seq.Frames[0], grid, uniformParams(4, 30))
	if err != nil {
		t.Fatal(err)
	}
	// Truncate each tile payload at various points; the decoder must
	// return an error (or decode successfully for trailing-padding-only
	// truncations), never panic.
	for _, frac := range []float64{0, 0.25, 0.5, 0.9} {
		dec, _ := NewDecoder(cfg)
		cut := make([][]byte, len(bs.Tiles))
		for i, p := range bs.Tiles {
			cut[i] = p[:int(float64(len(p))*frac)]
		}
		_, err := dec.DecodeFrame(&Bitstream{Type: FrameI, Tiles: cut}, grid)
		if err == nil && frac < 0.9 {
			t.Fatalf("decoder accepted %.0f%% truncated stream", frac*100)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	seq := smallSequence(t, 2)
	enc, _ := NewEncoder(smallConfig())
	grid := tiling.MustUniform(128, 96, 2, 2)
	for _, f := range seq.Frames {
		stats, bs, err := enc.EncodeFrame(f, grid, uniformParams(4, 30))
		if err != nil {
			t.Fatal(err)
		}
		var bits int
		var evals int
		for i, ts := range stats.Tiles {
			bits += ts.Bits
			evals += ts.SearchEvals
			if ts.Bits > len(bs.Tiles[i])*8 || ts.Bits <= 0 {
				t.Fatalf("tile %d bits %d vs payload %d bytes", i, ts.Bits, len(bs.Tiles[i]))
			}
			if ts.EncodeTime <= 0 {
				t.Fatalf("tile %d has no encode time", i)
			}
		}
		if bits != stats.Bits {
			t.Fatalf("frame bits %d != tile sum %d", stats.Bits, bits)
		}
		if evals != stats.SearchEvals {
			t.Fatalf("frame evals %d != tile sum %d", stats.SearchEvals, evals)
		}
		if stats.Type == FrameP && evals == 0 {
			t.Fatal("P-frame did no motion search")
		}
		if stats.Type == FrameI && evals != 0 {
			t.Fatal("I-frame did motion search")
		}
	}
}

func TestInterBlocksDominateOnPan(t *testing.T) {
	seq := smallSequence(t, 2)
	enc, _ := NewEncoder(smallConfig())
	grid := tiling.MustUniform(128, 96, 1, 1)
	if _, _, err := enc.EncodeFrame(seq.Frames[0], grid, uniformParams(1, 30)); err != nil {
		t.Fatal(err)
	}
	stats, _, err := enc.EncodeFrame(seq.Frames[1], grid, uniformParams(1, 30))
	if err != nil {
		t.Fatal(err)
	}
	ts := stats.Tiles[0]
	if ts.InterBlocks <= ts.IntraBlocks {
		t.Fatalf("pan content chose inter %d vs intra %d — mode decision broken", ts.InterBlocks, ts.IntraBlocks)
	}
	// The mean MV should reflect the (−2,−1) pan (MV space).
	if ts.MeanMV.X > 0 || ts.MeanMV.Y > 0 {
		t.Fatalf("mean MV %v inconsistent with (+2,+1) pan", ts.MeanMV)
	}
}

func TestSSIMSanityOnReconstruction(t *testing.T) {
	seq := smallSequence(t, 1)
	enc, _ := NewEncoder(smallConfig())
	grid := tiling.MustUniform(128, 96, 2, 2)
	if _, _, err := enc.EncodeFrame(seq.Frames[0], grid, uniformParams(4, 27)); err != nil {
		t.Fatal(err)
	}
	ssim, err := video.SSIM(enc.Reference().Y, seq.Frames[0].Y)
	if err != nil {
		t.Fatal(err)
	}
	if ssim < 0.9 {
		t.Fatalf("SSIM %.3f too low at QP 27", ssim)
	}
}

func TestGOPHelpers(t *testing.T) {
	c := DefaultConfig()
	if c.FrameInGOP(0) != 0 || c.FrameInGOP(7) != 7 || c.FrameInGOP(8) != 0 || c.FrameInGOP(13) != 5 {
		t.Fatal("FrameInGOP")
	}
	if FrameI.String() != "I" || FrameP.String() != "P" {
		t.Fatal("FrameType strings")
	}
	s := FrameStats{Bits: 1000}
	if s.Kbps(24) != 24 {
		t.Fatalf("Kbps = %v", s.Kbps(24))
	}
}
