package codec

import (
	"testing"

	"repro/internal/medgen"
	"repro/internal/motion"
	"repro/internal/tiling"
	"repro/internal/video"
)

func TestSkipFastPathEngagesOnStaticContent(t *testing.T) {
	// A still, noise-free video: after the I-frame, inter prediction is
	// perfect and essentially every sub-block must take the skip path.
	cfg := medgen.Default()
	cfg.Width, cfg.Height = 128, 96
	cfg.Motion = medgen.Still
	cfg.NoiseSigma = -1
	cfg.Frames = 2
	g, err := medgen.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	grid := tiling.MustUniform(128, 96, 2, 2)
	if _, _, err := enc.EncodeFrame(g.Frame(0), grid, uniformParams(4, 32)); err != nil {
		t.Fatal(err)
	}
	stats, _, err := enc.EncodeFrame(g.Frame(1), grid, uniformParams(4, 32))
	if err != nil {
		t.Fatal(err)
	}
	totalSub := 0
	skipped := 0
	for _, ts := range stats.Tiles {
		skipped += ts.SkippedBlocks
		totalSub += (64 / 8) * (48 / 8) // 8×8 sub-blocks per 64×48 tile
	}
	// Textured regions carry larger reference quantization error and may
	// legitimately code a few coefficients; flat regions must all skip.
	if skipped < totalSub*3/4 {
		t.Fatalf("only %d/%d sub-blocks skipped on static content", skipped, totalSub)
	}
	// And the P-frame must be tiny.
	if stats.Bits > 4000 {
		t.Fatalf("static P-frame costs %d bits", stats.Bits)
	}
}

func TestSkipPathKeepsDecoderSync(t *testing.T) {
	// High QP forces the skip path on most of the frame; the decoder must
	// still match the encoder reconstruction exactly.
	seq := smallSequence(t, 4)
	cfg := smallConfig()
	enc, _ := NewEncoder(cfg)
	dec, _ := NewDecoder(cfg)
	grid := tiling.MustUniform(128, 96, 2, 2)
	for i, f := range seq.Frames {
		stats, bs, err := enc.EncodeFrame(f, grid, uniformParams(4, 42))
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.DecodeFrame(bs, grid)
		if err != nil {
			t.Fatal(err)
		}
		if sad, _ := video.SAD(got.Y, enc.Reference().Y); sad != 0 {
			t.Fatalf("frame %d: skip-path drift (SAD %d)", i, sad)
		}
		if i > 0 {
			var skipped int
			for _, ts := range stats.Tiles {
				skipped += ts.SkippedBlocks
			}
			if skipped == 0 {
				t.Fatalf("frame %d: no skips at QP 42", i)
			}
		}
	}
}

func TestLongSequenceNoDrift(t *testing.T) {
	// 24 frames across three intra periods: encoder and decoder must stay
	// bit-exact throughout, and PSNR must not decay over the P-chain.
	seq := smallSequence(t, 24)
	cfg := smallConfig() // GOP 4, intra period 8
	enc, _ := NewEncoder(cfg)
	dec, _ := NewDecoder(cfg)
	grid := tiling.MustUniform(128, 96, 2, 2)
	var firstP, lastP float64
	for i, f := range seq.Frames {
		stats, bs, err := enc.EncodeFrame(f, grid, uniformParams(4, 30))
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.DecodeFrame(bs, grid)
		if err != nil {
			t.Fatal(err)
		}
		if sad, _ := video.SAD(got.Y, enc.Reference().Y); sad != 0 {
			t.Fatalf("frame %d: drift (SAD %d)", i, sad)
		}
		if stats.Type == FrameP {
			if firstP == 0 {
				firstP = stats.PSNR
			}
			lastP = stats.PSNR
		}
	}
	if lastP < firstP-3 {
		t.Fatalf("PSNR decayed %.1f → %.1f over the sequence", firstP, lastP)
	}
}

func TestTileIndependence(t *testing.T) {
	// Decoding must treat tiles as fully independent: replacing all other
	// tiles' payloads with garbage must not change a tile's decoded
	// samples (within its own rectangle, same frame).
	seq := smallSequence(t, 1)
	cfg := smallConfig()
	enc, _ := NewEncoder(cfg)
	grid := tiling.MustUniform(128, 96, 2, 2)
	_, bs, err := enc.EncodeFrame(seq.Frames[0], grid, uniformParams(4, 30))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mustDecode(cfg, bs, grid)
	if err != nil {
		t.Fatal(err)
	}
	// Swap tile payloads 1..3 among themselves (they decode to garbage in
	// the wrong rectangles but tile 0 must be unaffected).
	swapped := &Bitstream{Type: bs.Type, Tiles: [][]byte{bs.Tiles[0], bs.Tiles[2], bs.Tiles[3], bs.Tiles[1]}}
	got, err := mustDecode(cfg, swapped, grid)
	if err != nil {
		// Cross-decoding alien payloads may legitimately error; tile
		// independence is then vacuously preserved for this input.
		t.Skip("swapped payloads did not decode; cannot compare")
	}
	t0 := grid.Tiles[0]
	a := ref.Y.MustSubPlane(t0.X, t0.Y, t0.W, t0.H)
	b := got.Y.MustSubPlane(t0.X, t0.Y, t0.W, t0.H)
	if sad, _ := video.SAD(a, b); sad != 0 {
		t.Fatalf("tile 0 decode depends on other tiles (SAD %d)", sad)
	}
}

func mustDecode(cfg Config, bs *Bitstream, grid *tiling.Grid) (*video.Frame, error) {
	dec, err := NewDecoder(cfg)
	if err != nil {
		return nil, err
	}
	return dec.DecodeFrame(bs, grid)
}

func TestSearchTimeMeasured(t *testing.T) {
	seq := smallSequence(t, 2)
	enc, _ := NewEncoder(smallConfig())
	grid := tiling.MustUniform(128, 96, 1, 1)
	if _, _, err := enc.EncodeFrame(seq.Frames[0], grid, uniformParams(1, 30)); err != nil {
		t.Fatal(err)
	}
	stats, _, err := enc.EncodeFrame(seq.Frames[1], grid, uniformParams(1, 30))
	if err != nil {
		t.Fatal(err)
	}
	ts := stats.Tiles[0]
	if ts.SearchTime <= 0 {
		t.Fatal("P-frame tile has no measured search time")
	}
	if ts.SearchTime > ts.EncodeTime {
		t.Fatalf("search time %v exceeds encode time %v", ts.SearchTime, ts.EncodeTime)
	}
}

func TestDirectedSearchReducesEvals(t *testing.T) {
	// The GOP policy's promise at codec level: a directed OTS with the
	// right predictor evaluates far fewer candidates than TZ on the same
	// frame, at comparable quality.
	cfg := medgen.Default()
	cfg.Width, cfg.Height = 128, 96
	cfg.Motion = medgen.Pan
	cfg.PanVX, cfg.PanVY = 2, 0
	cfg.Frames = 2
	g, err := medgen.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func(s motion.Searcher, window int, pred motion.MV) (*FrameStats, error) {
		enc, err := NewEncoder(smallConfig())
		if err != nil {
			return nil, err
		}
		grid := tiling.MustUniform(128, 96, 1, 1)
		params := []TileParams{{QP: 32, Searcher: s, Window: window, Pred: pred}}
		if _, _, err := enc.EncodeFrame(g.Frame(0), grid, params); err != nil {
			return nil, err
		}
		stats, _, err := enc.EncodeFrame(g.Frame(1), grid, params)
		return stats, err
	}
	tz, err := run(motion.TZSearch{}, 64, motion.MV{})
	if err != nil {
		t.Fatal(err)
	}
	ots, err := run(motion.OneAtATime{Direction: motion.MV{X: -2, Y: 0}}, 8, motion.MV{X: -2, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	if ots.SearchEvals*3 >= tz.SearchEvals {
		t.Fatalf("directed OTS evals %d not well below TZ %d", ots.SearchEvals, tz.SearchEvals)
	}
	if ots.PSNR < tz.PSNR-1 {
		t.Fatalf("directed OTS PSNR %.1f more than 1 dB below TZ %.1f", ots.PSNR, tz.PSNR)
	}
}
