package codec

import (
	"fmt"

	"repro/internal/entropy"
	"repro/internal/motion"
	"repro/internal/tiling"
	"repro/internal/transform"
	"repro/internal/video"
)

// Decoder reconstructs frames from Bitstreams produced by Encoder. Its
// reconstruction is bit-exact with the encoder's in-loop reconstruction,
// which the test suite verifies; this is the property that keeps encoder
// and decoder drift-free across a GOP.
type Decoder struct {
	cfg Config
	ref *video.Frame
	n   int
}

// NewDecoder validates cfg (which must match the encoder's) and returns a
// decoder.
func NewDecoder(cfg Config) (*Decoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Decoder{cfg: cfg}, nil
}

// DecodeFrame decodes the next frame. The tile grid must match the one the
// encoder used for this frame (carried out-of-band, as tile geometry would
// live in the picture parameter set of a real stream).
func (d *Decoder) DecodeFrame(bs *Bitstream, grid *tiling.Grid) (*video.Frame, error) {
	if err := grid.Validate(); err != nil {
		return nil, err
	}
	if grid.FrameW != d.cfg.Width || grid.FrameH != d.cfg.Height {
		return nil, fmt.Errorf("codec: grid %dx%d does not match decoder %dx%d",
			grid.FrameW, grid.FrameH, d.cfg.Width, d.cfg.Height)
	}
	if len(bs.Tiles) != len(grid.Tiles) {
		return nil, fmt.Errorf("codec: %d tile payloads for %d tiles", len(bs.Tiles), len(grid.Tiles))
	}
	if bs.Type == FrameP && d.ref == nil {
		return nil, fmt.Errorf("codec: P-frame without reference")
	}
	recon := video.NewFrame(d.cfg.Width, d.cfg.Height)
	recon.Number = d.n
	for i, tile := range grid.Tiles {
		if err := d.decodeTile(bs.Tiles[i], tile, bs.Type, recon); err != nil {
			return nil, fmt.Errorf("codec: tile %d: %w", i, err)
		}
	}
	recon.Cb.Fill(128)
	recon.Cr.Fill(128)
	d.ref = recon
	d.n++
	return recon, nil
}

// decodeTile parses one tile payload into the reconstruction frame.
func (d *Decoder) decodeTile(payload []byte, tile tiling.Tile, ftype FrameType, recon *video.Frame) error {
	r := entropy.NewBitReader(payload)
	qpU, err := r.ReadUE()
	if err != nil {
		return fmt.Errorf("tile header: %w", err)
	}
	qp := int(qpU)
	if qp < transform.MinQP || qp > transform.MaxQP {
		return fmt.Errorf("tile header QP %d out of range", qp)
	}
	quant, err := transform.NewQuantizer(d.cfg.TransformSize, qp, ftype == FrameI)
	if err != nil {
		return err
	}
	var refY *video.Plane
	if d.ref != nil {
		refY = d.ref.Y
	}

	bsz := d.cfg.BlockSize
	lastMV := motion.MV{}
	for by := tile.Y; by < tile.Y+tile.H; by += bsz {
		for bx := tile.X; bx < tile.X+tile.W; bx += bsz {
			bw := min(bsz, tile.X+tile.W-bx)
			bh := min(bsz, tile.Y+tile.H-by)
			if err := d.decodeBlock(r, quant, refY, recon.Y, tile, ftype, bx, by, bw, bh, &lastMV); err != nil {
				return fmt.Errorf("block @(%d,%d): %w", bx, by, err)
			}
		}
	}
	return nil
}

func (d *Decoder) decodeBlock(r *entropy.BitReader, quant *transform.Quantizer, ref, recon *video.Plane,
	tile tiling.Tile, ftype FrameType, bx, by, bw, bh int, lastMV *motion.MV) error {

	pred := make([]uint8, bw*bh)
	if ftype == FrameP {
		interBit, err := r.ReadBit()
		if err != nil {
			return err
		}
		if interBit == 1 {
			dx, err := r.ReadSE()
			if err != nil {
				return err
			}
			dy, err := r.ReadSE()
			if err != nil {
				return err
			}
			mv := motion.MV{X: lastMV.X + int(dx), Y: lastMV.Y + int(dy)}
			*lastMV = mv
			rx, ry := bx+mv.X, by+mv.Y
			if rx < 0 || ry < 0 || rx+bw > ref.W || ry+bh > ref.H {
				return fmt.Errorf("motion vector %v leaves frame", mv)
			}
			interPredict(ref, bx, by, bw, bh, mv, pred)
		} else {
			if err := decodeIntra(r, recon, tile, bx, by, bw, bh, pred); err != nil {
				return err
			}
		}
	} else {
		if err := decodeIntra(r, recon, tile, bx, by, bw, bh, pred); err != nil {
			return err
		}
	}

	n := d.cfg.TransformSize
	coeffs := make([]int32, n*n)
	return d.decodeResidual(r, quant, recon, bx, by, bw, bh, pred, coeffs)
}

// decodeIntra parses an intra mode, validates that its reference samples
// exist inside the tile (a conforming encoder never emits an unavailable
// mode, so a violation means stream corruption) and fills the prediction.
func decodeIntra(r *entropy.BitReader, recon *video.Plane, tile tiling.Tile, bx, by, bw, bh int, pred []uint8) error {
	mode, err := r.ReadUE()
	if err != nil {
		return err
	}
	if mode >= numIntraModes {
		return fmt.Errorf("intra mode %d out of range", mode)
	}
	if (mode == intraHorizontal && bx <= tile.X) || (mode == intraVertical && by <= tile.Y) {
		return fmt.Errorf("intra mode %d has no reference samples at tile edge", mode)
	}
	intraPredict(recon, tile, int(mode), bx, by, bw, bh, pred)
	return nil
}

func (d *Decoder) decodeResidual(r *entropy.BitReader, quant *transform.Quantizer, recon *video.Plane,
	bx, by, bw, bh int, pred []uint8, coeffs []int32) error {
	n := d.cfg.TransformSize
	for sy := 0; sy < bh; sy += n {
		for sx := 0; sx < bw; sx += n {
			vw := min(n, bw-sx)
			vh := min(n, bh-sy)
			if err := entropy.DecodeCoeffBlock(r, n, coeffs); err != nil {
				return err
			}
			if err := quant.Dequantize(coeffs, coeffs); err != nil {
				return err
			}
			if err := transform.Inverse(n, coeffs, coeffs); err != nil {
				return err
			}
			for y := 0; y < vh; y++ {
				rrow := recon.Pix[(by+sy+y)*recon.Stride+bx+sx : (by+sy+y)*recon.Stride+bx+sx+vw]
				for x := 0; x < vw; x++ {
					rrow[x] = video.ClampU8(int(pred[(sy+y)*bw+sx+x]) + int(coeffs[y*n+x]))
				}
			}
		}
	}
	return nil
}
