package codec

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/tiling"
)

// This file defines the byte-stream container around the per-tile
// payloads: a sequence header carrying the codec configuration, and one
// frame unit per picture carrying the frame type, the tile grid geometry
// and the tile payloads. With it, an encoded sequence round-trips through
// a single io.Writer/io.Reader — the form a stored bio-medical study would
// take on the telemedicine server.
//
// Layout (all integers little-endian uint32 unless noted):
//
//	sequence header:  magic "BMT1" | width | height | fps(×1000) |
//	                  gopSize | intraPeriod | blockSize | transformSize
//	frame unit:       marker "FRAM" | frameType | tileCount |
//	                  { x y w h payloadLen payload } per tile
//	end of stream:    marker "ENDS"
//
// The tile grid travels with every frame because the content-aware
// re-tiler changes it at GOP boundaries.

var (
	seqMagic   = [4]byte{'B', 'M', 'T', '1'}
	frameMagic = [4]byte{'F', 'R', 'A', 'M'}
	endMagic   = [4]byte{'E', 'N', 'D', 'S'}
)

// StreamWriter serializes a sequence of encoded frames.
type StreamWriter struct {
	w      io.Writer
	cfg    Config
	wrote  bool
	closed bool
}

// NewStreamWriter validates cfg and writes the sequence header.
func NewStreamWriter(w io.Writer, cfg Config) (*StreamWriter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sw := &StreamWriter{w: w, cfg: cfg}
	if err := sw.writeHeader(); err != nil {
		return nil, err
	}
	return sw, nil
}

func (sw *StreamWriter) writeHeader() error {
	if _, err := sw.w.Write(seqMagic[:]); err != nil {
		return fmt.Errorf("codec: stream header: %w", err)
	}
	fields := []uint32{
		uint32(sw.cfg.Width), uint32(sw.cfg.Height),
		uint32(sw.cfg.FPS * 1000),
		uint32(sw.cfg.GOPSize), uint32(sw.cfg.IntraPeriod),
		uint32(sw.cfg.BlockSize), uint32(sw.cfg.TransformSize),
	}
	for _, f := range fields {
		if err := binary.Write(sw.w, binary.LittleEndian, f); err != nil {
			return fmt.Errorf("codec: stream header: %w", err)
		}
	}
	return nil
}

// WriteFrame appends one encoded frame with its grid.
func (sw *StreamWriter) WriteFrame(bs *Bitstream, grid *tiling.Grid) error {
	if sw.closed {
		return fmt.Errorf("codec: write after Close")
	}
	if len(bs.Tiles) != len(grid.Tiles) {
		return fmt.Errorf("codec: %d payloads for %d tiles", len(bs.Tiles), len(grid.Tiles))
	}
	if _, err := sw.w.Write(frameMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(sw.w, binary.LittleEndian, uint32(bs.Type)); err != nil {
		return err
	}
	if err := binary.Write(sw.w, binary.LittleEndian, uint32(len(bs.Tiles))); err != nil {
		return err
	}
	for i, tile := range grid.Tiles {
		for _, v := range []uint32{uint32(tile.X), uint32(tile.Y), uint32(tile.W), uint32(tile.H), uint32(len(bs.Tiles[i]))} {
			if err := binary.Write(sw.w, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		if _, err := sw.w.Write(bs.Tiles[i]); err != nil {
			return err
		}
	}
	sw.wrote = true
	return nil
}

// Close writes the end-of-stream marker. The underlying writer is not
// closed (the caller owns it).
func (sw *StreamWriter) Close() error {
	if sw.closed {
		return nil
	}
	sw.closed = true
	_, err := sw.w.Write(endMagic[:])
	return err
}

// StreamReader parses a sequence written by StreamWriter.
type StreamReader struct {
	r   io.Reader
	cfg Config
}

// NewStreamReader reads and validates the sequence header.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("codec: stream header: %w", err)
	}
	if magic != seqMagic {
		return nil, fmt.Errorf("codec: bad stream magic %q", magic)
	}
	var fields [7]uint32
	for i := range fields {
		if err := binary.Read(r, binary.LittleEndian, &fields[i]); err != nil {
			return nil, fmt.Errorf("codec: stream header: %w", err)
		}
	}
	cfg := Config{
		Width: int(fields[0]), Height: int(fields[1]),
		FPS:     float64(fields[2]) / 1000,
		GOPSize: int(fields[3]), IntraPeriod: int(fields[4]),
		BlockSize: int(fields[5]), TransformSize: int(fields[6]),
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("codec: stream header: %w", err)
	}
	return &StreamReader{r: r, cfg: cfg}, nil
}

// Config returns the sequence configuration from the header.
func (sr *StreamReader) Config() Config { return sr.cfg }

// maxTilePayload bounds a single tile payload against corrupt streams
// (an uncompressed 640×480 frame is ~460 KB; 16 MB is generous).
const maxTilePayload = 16 << 20

// ReadFrame reads the next frame unit. It returns io.EOF after the
// end-of-stream marker.
func (sr *StreamReader) ReadFrame() (*Bitstream, *tiling.Grid, error) {
	var magic [4]byte
	if _, err := io.ReadFull(sr.r, magic[:]); err != nil {
		return nil, nil, fmt.Errorf("codec: frame marker: %w", err)
	}
	if magic == endMagic {
		return nil, nil, io.EOF
	}
	if magic != frameMagic {
		return nil, nil, fmt.Errorf("codec: bad frame marker %q", magic)
	}
	var ftype, count uint32
	if err := binary.Read(sr.r, binary.LittleEndian, &ftype); err != nil {
		return nil, nil, err
	}
	if ftype != uint32(FrameI) && ftype != uint32(FrameP) {
		return nil, nil, fmt.Errorf("codec: bad frame type %d", ftype)
	}
	if err := binary.Read(sr.r, binary.LittleEndian, &count); err != nil {
		return nil, nil, err
	}
	if count == 0 || count > 4096 {
		return nil, nil, fmt.Errorf("codec: implausible tile count %d", count)
	}
	bs := &Bitstream{Type: FrameType(ftype)}
	grid := &tiling.Grid{FrameW: sr.cfg.Width, FrameH: sr.cfg.Height}
	for i := uint32(0); i < count; i++ {
		var geo [5]uint32
		for j := range geo {
			if err := binary.Read(sr.r, binary.LittleEndian, &geo[j]); err != nil {
				return nil, nil, err
			}
		}
		if geo[4] > maxTilePayload {
			return nil, nil, fmt.Errorf("codec: tile payload %d bytes exceeds bound", geo[4])
		}
		payload := make([]byte, geo[4])
		if _, err := io.ReadFull(sr.r, payload); err != nil {
			return nil, nil, err
		}
		grid.Tiles = append(grid.Tiles, tiling.Tile{
			Rect:  tiling.Rect{X: int(geo[0]), Y: int(geo[1]), W: int(geo[2]), H: int(geo[3])},
			Index: int(i),
		})
		bs.Tiles = append(bs.Tiles, payload)
	}
	if err := grid.Validate(); err != nil {
		return nil, nil, fmt.Errorf("codec: frame grid: %w", err)
	}
	return bs, grid, nil
}
