// Package codec implements the block-based hybrid video encoder/decoder
// that stands in for the Kvazaar HEVC encoder the paper builds on. It
// supports everything the paper's method needs from an encoder:
//
//   - independent tile encoding (each tile is a self-contained bitstream,
//     so tiles parallelize across threads/cores);
//   - intra prediction (DC / horizontal / vertical) and inter prediction
//     with pluggable motion search (internal/motion) and per-tile search
//     windows;
//   - per-tile quantization parameters (internal/transform), 8×8 integer
//     transforms and run-level Exp-Golomb residual coding (internal/entropy);
//   - an in-loop reconstruction path, so encoder and decoder stay in sync
//     and rate/distortion numbers are real;
//   - GOP structure with an intra frame opening each intra period and
//     P-frames referencing the previous reconstructed frame. (The paper's
//     Random Access configuration uses hierarchical B-frames; this codec
//     substitutes low-delay P referencing, which preserves the properties
//     the method exploits — inter prediction dominating encode time and
//     per-tile cost tracking content. See DESIGN.md.)
package codec

import (
	"fmt"
	"time"

	"repro/internal/motion"
	"repro/internal/tiling"
	"repro/internal/transform"
)

// FrameType distinguishes intra-only frames from predicted frames.
type FrameType int

// Frame types.
const (
	FrameI FrameType = iota
	FrameP
)

// String returns "I" or "P".
func (t FrameType) String() string {
	if t == FrameI {
		return "I"
	}
	return "P"
}

// Intra prediction modes.
const (
	intraDC = iota
	intraHorizontal
	intraVertical
	numIntraModes
)

// Config holds sequence-level encoder parameters.
type Config struct {
	Width, Height int
	// FPS converts frame bits to bitrate.
	FPS float64
	// GOPSize is the group-of-pictures length (paper: 8). Re-tiling and
	// search-policy state are managed per GOP by the caller.
	GOPSize int
	// IntraPeriod inserts an I-frame every IntraPeriod frames (a multiple
	// of GOPSize keeps GOP alignment). 0 means a single I-frame at the
	// start of the sequence.
	IntraPeriod int
	// BlockSize is the prediction block size (default 16).
	BlockSize int
	// TransformSize is the residual transform size (4 or 8; default 8).
	TransformSize int
}

// DefaultConfig returns the evaluation configuration of the paper: 640×480
// at 24 FPS with GOP size 8.
func DefaultConfig() Config {
	return Config{Width: 640, Height: 480, FPS: 24, GOPSize: 8, IntraPeriod: 48, BlockSize: 16, TransformSize: 8}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("codec: invalid size %dx%d", c.Width, c.Height)
	}
	if c.FPS <= 0 {
		return fmt.Errorf("codec: invalid fps %v", c.FPS)
	}
	if c.GOPSize <= 0 {
		return fmt.Errorf("codec: invalid GOP size %d", c.GOPSize)
	}
	if c.IntraPeriod < 0 {
		return fmt.Errorf("codec: negative intra period %d", c.IntraPeriod)
	}
	if c.IntraPeriod > 0 && c.IntraPeriod%c.GOPSize != 0 {
		return fmt.Errorf("codec: intra period %d not a multiple of GOP size %d", c.IntraPeriod, c.GOPSize)
	}
	if c.BlockSize <= 0 || c.BlockSize%8 != 0 {
		return fmt.Errorf("codec: block size %d must be a positive multiple of 8", c.BlockSize)
	}
	if c.TransformSize != transform.Size4 && c.TransformSize != transform.Size8 {
		return fmt.Errorf("codec: transform size %d must be 4 or 8", c.TransformSize)
	}
	return nil
}

// TypeOf returns the frame type for display-order frame n under the
// configured intra period.
func (c Config) TypeOf(n int) FrameType {
	if n == 0 {
		return FrameI
	}
	if c.IntraPeriod > 0 && n%c.IntraPeriod == 0 {
		return FrameI
	}
	return FrameP
}

// FrameInGOP returns n modulo the GOP size.
func (c Config) FrameInGOP(n int) int { return n % c.GOPSize }

// TileParams carries the per-tile encoding configuration chosen by the
// framework (QP from the quality adapter, search algorithm and window from
// the motion policy).
type TileParams struct {
	QP       int
	Searcher motion.Searcher
	Window   int
	// Pred seeds the motion search (e.g. the tile's GOP direction).
	Pred motion.MV
}

// TileStats aggregates measurements from encoding one tile of one frame.
type TileStats struct {
	Tile tiling.Tile
	QP   int
	// Window is the motion-search window the tile was encoded with. QP and
	// Window let the serving loop rebuild the tile's workload-LUT key from
	// the report alone (for measurement calibration), without re-deriving
	// the per-tile configuration.
	Window int
	// Bits is the exact size of the tile's bitstream payload in bits.
	Bits int
	// SSE is the summed squared error of the reconstruction vs the source
	// over the tile (luma).
	SSE int64
	// PSNR is the tile's luma PSNR derived from SSE (capped at 100 dB).
	PSNR float64
	// EncodeTime is the wall-clock time spent encoding the tile; this is
	// the "CPU time" the workload LUT learns.
	EncodeTime time.Duration
	// SearchTime is the portion of EncodeTime spent inside motion search.
	// The experiment harness uses it to calibrate the simulated platform
	// to an HEVC encoder's cost structure (Kvazaar spends 70–80% of its
	// time in ME; this codec far less).
	SearchTime time.Duration
	// SearchEvals counts motion-search SAD evaluations in the tile.
	SearchEvals int
	// InterBlocks and IntraBlocks count the mode decisions.
	InterBlocks, IntraBlocks int
	// SkippedBlocks counts transform sub-blocks that took the all-zero
	// skip fast path.
	SkippedBlocks int
	// MeanMV is the average motion vector of inter blocks.
	MeanMV motion.MV
}

// FrameStats aggregates a full frame.
type FrameStats struct {
	Number int
	Type   FrameType
	Tiles  []TileStats
	// Bits is the total frame payload in bits.
	Bits int
	// PSNR is the frame luma PSNR (capped at 100 dB).
	PSNR float64
	// EncodeTime is the sum of the per-tile encode times (the serialized
	// CPU time; wall time under parallel encoding is the max per core).
	EncodeTime time.Duration
	// SearchEvals sums motion-search evaluations over the frame.
	SearchEvals int
}

// Kbps returns the instantaneous bitrate of the frame at the given FPS.
func (s FrameStats) Kbps(fps float64) float64 { return float64(s.Bits) * fps / 1e3 }

// Bitstream is the encoded payload of one frame: one self-contained chunk
// per tile, matching the grid order.
type Bitstream struct {
	Type  FrameType
	Tiles [][]byte
}
