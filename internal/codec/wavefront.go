package codec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/entropy"
	"repro/internal/motion"
	"repro/internal/tiling"
	"repro/internal/transform"
	"repro/internal/video"
)

// newRowQuantizer validates a row header QP and builds its quantizer.
func newRowQuantizer(cfg Config, qp int, ftype FrameType) (*transform.Quantizer, error) {
	if qp < transform.MinQP || qp > transform.MaxQP {
		return nil, fmt.Errorf("codec: row QP %d out of range", qp)
	}
	return transform.NewQuantizer(cfg.TransformSize, qp, ftype == FrameI)
}

// This file implements Wavefront Parallel Processing (WPP), the
// frame-level parallelization scheme the HEVC standard offers alongside
// tiles (paper Sec. II-C). Each block row is a separately decodable unit
// (its own payload, prediction state reset at the row start, as CABAC
// state is in HEVC WPP), and rows encode concurrently under the wavefront
// dependency: block (r, c) may start once (r, c−1) and (r−1, c+1) are
// reconstructed. The staircase start-up and wind-down are what limit WPP's
// concurrency compared with independent tiles — the reason the paper (and
// this reproduction; see TestWavefrontVsTiles) builds on tiles.

// wppRowState tracks one row's progress for the wavefront dependency.
type wppRowState struct {
	// done is the number of completed blocks in the row (atomic).
	done atomic.Int32
	mu   sync.Mutex
	cond *sync.Cond
}

// EncodeFrameWavefront encodes the frame as one partition parallelized by
// WPP with up to workers goroutines. The returned Bitstream carries one
// payload per block row. Stats report one TileStats per row, with
// EncodeTime the row's own CPU time.
func (e *Encoder) EncodeFrameWavefront(f *video.Frame, p TileParams, workers int) (*FrameStats, *Bitstream, error) {
	if f.Width() != e.cfg.Width || f.Height() != e.cfg.Height {
		return nil, nil, fmt.Errorf("codec: frame %dx%d, encoder configured %dx%d",
			f.Width(), f.Height(), e.cfg.Width, e.cfg.Height)
	}
	ftype := e.cfg.TypeOf(e.frames)
	if ftype == FrameP && e.ref == nil {
		return nil, nil, fmt.Errorf("codec: P-frame %d without reference", e.frames)
	}
	if ftype == FrameP && p.Searcher == nil {
		return nil, nil, fmt.Errorf("codec: missing motion searcher for P-frame")
	}
	if workers < 1 {
		workers = 1
	}
	bsz := e.cfg.BlockSize
	rows := (e.cfg.Height + bsz - 1) / bsz
	cols := (e.cfg.Width + bsz - 1) / bsz

	recon := e.takeRecon()
	recon.Number = e.frames
	frameTile := tiling.Tile{Rect: tiling.Rect{X: 0, Y: 0, W: e.cfg.Width, H: e.cfg.Height}}

	states := make([]*wppRowState, rows)
	for i := range states {
		s := &wppRowState{}
		s.cond = sync.NewCond(&s.mu)
		states[i] = s
	}
	markDone := func(r int) {
		states[r].done.Add(1)
		states[r].mu.Lock()
		states[r].cond.Broadcast()
		states[r].mu.Unlock()
	}
	waitFor := func(r int, n int32) {
		s := states[r]
		if s.done.Load() >= n {
			return
		}
		s.mu.Lock()
		for s.done.Load() < n {
			s.cond.Wait()
		}
		s.mu.Unlock()
	}

	stats := &FrameStats{Number: e.frames, Type: ftype, Tiles: make([]TileStats, rows)}
	bs := &Bitstream{Type: ftype, Tiles: make([][]byte, rows)}

	encodeRow := func(r int) error {
		start := time.Now()
		w := getBitWriter()
		defer putBitWriter(w)
		w.WriteUE(uint32(p.QP))
		tc, err := newTileCoder(e.cfg, p, frameTile, f.Y, recon.Y, refPlane(e.ref), ftype)
		if err != nil {
			return err
		}
		defer putTileCoder(tc)
		by := r * bsz
		bh := min(bsz, e.cfg.Height-by)
		for c := 0; c < cols; c++ {
			// Wavefront dependency: the row above must be two blocks
			// ahead (so the top and top-right reconstructions exist).
			if r > 0 {
				need := int32(c + 2)
				if need > int32(cols) {
					need = int32(cols)
				}
				waitFor(r-1, need)
			}
			bx := c * bsz
			bw := min(bsz, e.cfg.Width-bx)
			if err := tc.encodeBlock(w, bx, by, bw, bh); err != nil {
				return err
			}
			markDone(r)
		}
		ts := tc.stats
		ts.Tile = tiling.Tile{Rect: tiling.Rect{X: 0, Y: by, W: e.cfg.Width, H: bh}, Index: r}
		ts.QP = p.QP
		ts.Bits = w.Len()
		ts.PSNR = psnrFromSSE(ts.SSE, e.cfg.Width*bh)
		ts.EncodeTime = time.Since(start)
		stats.Tiles[r] = ts
		bs.Tiles[r] = w.Bytes()
		return nil
	}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		rerr error
	)
	sem := make(chan struct{}, workers)
	for r := 0; r < rows; r++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(r int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := encodeRow(r); err != nil {
				mu.Lock()
				if rerr == nil {
					rerr = err
				}
				mu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	if rerr != nil {
		e.spare = recon
		return nil, nil, rerr
	}

	if err := recon.Cb.CopyFrom(f.Cb); err != nil {
		e.spare = recon
		return nil, nil, err
	}
	if err := recon.Cr.CopyFrom(f.Cr); err != nil {
		e.spare = recon
		return nil, nil, err
	}
	var sse int64
	for _, ts := range stats.Tiles {
		stats.Bits += ts.Bits
		stats.EncodeTime += ts.EncodeTime
		stats.SearchEvals += ts.SearchEvals
		sse += ts.SSE
	}
	stats.PSNR = psnrFromSSE(sse, e.cfg.Width*e.cfg.Height)
	e.retireRef(recon)
	e.frames++
	return stats, bs, nil
}

// DecodeFrameWavefront decodes a frame encoded by EncodeFrameWavefront.
// Rows decode sequentially (decoding is cheap; the scheme's value is on
// the encoder side), with the same per-row prediction-state reset.
func (d *Decoder) DecodeFrameWavefront(bs *Bitstream) (*video.Frame, error) {
	if bs.Type == FrameP && d.ref == nil {
		return nil, fmt.Errorf("codec: P-frame without reference")
	}
	bsz := d.cfg.BlockSize
	rows := (d.cfg.Height + bsz - 1) / bsz
	if len(bs.Tiles) != rows {
		return nil, fmt.Errorf("codec: %d row payloads for %d rows", len(bs.Tiles), rows)
	}
	recon := video.NewFrame(d.cfg.Width, d.cfg.Height)
	recon.Number = d.n
	frameTile := tiling.Tile{Rect: tiling.Rect{X: 0, Y: 0, W: d.cfg.Width, H: d.cfg.Height}}
	var refY *video.Plane
	if d.ref != nil {
		refY = d.ref.Y
	}
	for r := 0; r < rows; r++ {
		rdr := entropy.NewBitReader(bs.Tiles[r])
		qpU, err := rdr.ReadUE()
		if err != nil {
			return nil, fmt.Errorf("row %d header: %w", r, err)
		}
		quant, err := newRowQuantizer(d.cfg, int(qpU), bs.Type)
		if err != nil {
			return nil, err
		}
		by := r * bsz
		bh := min(bsz, d.cfg.Height-by)
		lastMV := motion.MV{}
		for bx := 0; bx < d.cfg.Width; bx += bsz {
			bw := min(bsz, d.cfg.Width-bx)
			if err := d.decodeBlock(rdr, quant, refY, recon.Y, frameTile, bs.Type, bx, by, bw, bh, &lastMV); err != nil {
				return nil, fmt.Errorf("row %d block @%d: %w", r, bx, err)
			}
		}
	}
	recon.Cb.Fill(128)
	recon.Cr.Fill(128)
	d.ref = recon
	d.n++
	return recon, nil
}
