package codec

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/tiling"
	"repro/internal/video"
)

func TestStreamRoundTripWholeSequence(t *testing.T) {
	seq := smallSequence(t, 6)
	cfg := smallConfig()
	enc, _ := NewEncoder(cfg)

	// Alternate two grids across GOPs, as the re-tiler would.
	gridA := tiling.MustUniform(128, 96, 2, 2)
	gridB := tiling.MustUniform(128, 96, 4, 1)

	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var recons []*video.Frame
	for i, f := range seq.Frames {
		grid := gridA
		if i >= 4 { // GOP size 4: second GOP uses grid B
			grid = gridB
		}
		_, bs, err := enc.EncodeFrame(f, grid, uniformParams(grid.NumTiles(), 30))
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.WriteFrame(bs, grid); err != nil {
			t.Fatal(err)
		}
		recons = append(recons, enc.Reference().Clone())
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	sr, err := NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Config() != cfg {
		t.Fatalf("header config %+v != %+v", sr.Config(), cfg)
	}
	dec, _ := NewDecoder(sr.Config())
	n := 0
	for {
		bs, grid, err := sr.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.DecodeFrame(bs, grid)
		if err != nil {
			t.Fatalf("frame %d: %v", n, err)
		}
		if sad, _ := video.SAD(got.Y, recons[n].Y); sad != 0 {
			t.Fatalf("frame %d: stream round trip drifted (SAD %d)", n, sad)
		}
		n++
	}
	if n != 6 {
		t.Fatalf("decoded %d frames, want 6", n)
	}
}

func TestStreamReaderRejectsGarbage(t *testing.T) {
	if _, err := NewStreamReader(bytes.NewReader([]byte("nonsense stream"))); err == nil {
		t.Fatal("accepted garbage header")
	}
	if _, err := NewStreamReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("accepted empty stream")
	}
}

func TestStreamReaderRejectsCorruptFrames(t *testing.T) {
	seq := smallSequence(t, 1)
	cfg := smallConfig()
	enc, _ := NewEncoder(cfg)
	grid := tiling.MustUniform(128, 96, 2, 2)
	var buf bytes.Buffer
	sw, _ := NewStreamWriter(&buf, cfg)
	_, bs, err := enc.EncodeFrame(seq.Frames[0], grid, uniformParams(4, 30))
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteFrame(bs, grid); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Truncations at every prefix length must error (or hit clean EOF),
	// never panic.
	for cut := 0; cut < len(raw); cut += 7 {
		sr, err := NewStreamReader(bytes.NewReader(raw[:cut]))
		if err != nil {
			continue
		}
		for {
			_, _, err := sr.ReadFrame()
			if err != nil {
				break
			}
		}
	}

	// Flipping the frame marker must be detected.
	bad := append([]byte(nil), raw...)
	copy(bad[32:], "XXXX") // frame marker follows the 32-byte header
	sr, err := NewStreamReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sr.ReadFrame(); err == nil {
		t.Fatal("accepted corrupt frame marker")
	}
}

func TestStreamWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	bad := smallConfig()
	bad.Width = 0
	if _, err := NewStreamWriter(&buf, bad); err == nil {
		t.Fatal("accepted invalid config")
	}
	sw, err := NewStreamWriter(&buf, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	grid := tiling.MustUniform(128, 96, 2, 2)
	if err := sw.WriteFrame(&Bitstream{Type: FrameI, Tiles: make([][]byte, 3)}, grid); err == nil {
		t.Fatal("accepted mismatched payload count")
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteFrame(&Bitstream{Type: FrameI, Tiles: make([][]byte, 4)}, grid); err == nil {
		t.Fatal("accepted write after close")
	}
	if err := sw.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}
