package codec

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/entropy"
	"repro/internal/motion"
	"repro/internal/tiling"
	"repro/internal/transform"
	"repro/internal/video"
)

// Encoder encodes a sequence frame by frame, maintaining the reconstructed
// reference picture. It is safe to encode the tiles of one frame from
// multiple goroutines (EncodeFrameParallel); distinct frames must be
// encoded in order.
type Encoder struct {
	cfg Config
	// ref is the reconstructed previous frame (reference for P-frames).
	ref *video.Frame
	// frames counts encoded frames (display order).
	frames int
	// spare is the retired previous-previous reconstruction, recycled as
	// the next frame's reconstruction buffer (see takeRecon/retireRef).
	spare *video.Frame
	// refOwned reports whether ref was allocated by this encoder. Restore
	// installs externally-owned references that must never be recycled.
	refOwned bool
}

// NewEncoder validates cfg and returns an encoder.
func NewEncoder(cfg Config) (*Encoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Encoder{cfg: cfg}, nil
}

// Config returns the encoder configuration.
func (e *Encoder) Config() Config { return e.cfg }

// FramesEncoded returns the number of frames encoded so far.
func (e *Encoder) FramesEncoded() int { return e.frames }

// Reference returns the current reconstructed reference frame (nil before
// the first frame). Callers must not mutate it, and must not retain it
// across encode calls: the encoder recycles retired references as future
// reconstruction buffers, so a frame obtained here may be overwritten once
// two more frames have been encoded. Read it (or deep-copy via Clone)
// before the next encode.
func (e *Encoder) Reference() *video.Frame { return e.ref }

// Restore rewinds the encoder onto externally-saved state: the
// reconstructed reference picture and the display-order frame counter —
// the only state the encoder carries across frames. It is the receiving
// half of cross-process session migration (core.SessionWire): an encoder
// restored with the reference a remote peer saved continues the
// bitstream bit-identically. A nil ref is only legal before any frame
// has been encoded; the caller keeps ownership discipline (the encoder
// will never mutate ref, only replace it).
func (e *Encoder) Restore(ref *video.Frame, frames int) error {
	if frames < 0 {
		return fmt.Errorf("codec: negative frame counter %d", frames)
	}
	if ref == nil && frames > 0 {
		return fmt.Errorf("codec: %d frames encoded but no reference picture", frames)
	}
	if ref != nil {
		if ref.Width() != e.cfg.Width || ref.Height() != e.cfg.Height {
			return fmt.Errorf("codec: reference %dx%d, encoder configured %dx%d",
				ref.Width(), ref.Height(), e.cfg.Width, e.cfg.Height)
		}
	}
	if e.spare == ref {
		e.spare = nil // never hand an installed reference back out as scratch
	}
	e.ref = ref
	e.refOwned = false
	e.frames = frames
	return nil
}

// EncodeFrame encodes frame f over the given tile grid with per-tile
// parameters (len(params) must equal the tile count). The frame type is
// derived from the configured intra period and the encoder's frame counter.
// Tiles are processed sequentially; see EncodeFrameParallel for the
// tile-parallel variant.
func (e *Encoder) EncodeFrame(f *video.Frame, grid *tiling.Grid, params []TileParams) (*FrameStats, *Bitstream, error) {
	return e.encode(context.Background(), f, grid, params, 1)
}

// EncodeFrameParallel is EncodeFrame with tiles encoded by up to workers
// goroutines. Tiles are fully independent (separate bitstreams, disjoint
// reconstruction regions, read-only shared reference), which is exactly the
// property the paper's thread-level parallelization relies on. The worker
// budget is per call, so a serving loop can give each frame exactly the
// parallelism its session's core allocation planned.
func (e *Encoder) EncodeFrameParallel(f *video.Frame, grid *tiling.Grid, params []TileParams, workers int) (*FrameStats, *Bitstream, error) {
	return e.EncodeFrameContext(context.Background(), f, grid, params, workers)
}

// EncodeFrameContext is EncodeFrameParallel with cancellation: tile
// dispatch stops at the first cancelled tile boundary and ctx's error is
// returned. On any error — cancellation included — the encoder's reference
// and frame counter are left untouched, so the same frame can be retried.
func (e *Encoder) EncodeFrameContext(ctx context.Context, f *video.Frame, grid *tiling.Grid, params []TileParams, workers int) (*FrameStats, *Bitstream, error) {
	if workers < 1 {
		workers = 1
	}
	return e.encode(ctx, f, grid, params, workers)
}

func (e *Encoder) encode(ctx context.Context, f *video.Frame, grid *tiling.Grid, params []TileParams, workers int) (*FrameStats, *Bitstream, error) {
	if f.Width() != e.cfg.Width || f.Height() != e.cfg.Height {
		return nil, nil, fmt.Errorf("codec: frame %dx%d, encoder configured %dx%d",
			f.Width(), f.Height(), e.cfg.Width, e.cfg.Height)
	}
	if err := grid.Validate(); err != nil {
		return nil, nil, err
	}
	if grid.FrameW != e.cfg.Width || grid.FrameH != e.cfg.Height {
		return nil, nil, fmt.Errorf("codec: grid %dx%d does not match frame %dx%d",
			grid.FrameW, grid.FrameH, e.cfg.Width, e.cfg.Height)
	}
	if len(params) != len(grid.Tiles) {
		return nil, nil, fmt.Errorf("codec: %d tile params for %d tiles", len(params), len(grid.Tiles))
	}
	ftype := e.cfg.TypeOf(e.frames)
	if ftype == FrameP && e.ref == nil {
		return nil, nil, fmt.Errorf("codec: P-frame %d without reference", e.frames)
	}
	for i, p := range params {
		if p.QP < transform.MinQP || p.QP > transform.MaxQP {
			return nil, nil, fmt.Errorf("codec: tile %d QP %d outside [%d, %d]", i, p.QP, transform.MinQP, transform.MaxQP)
		}
		if ftype == FrameP && p.Searcher == nil {
			return nil, nil, fmt.Errorf("codec: tile %d missing motion searcher for P-frame", i)
		}
	}

	recon := e.takeRecon()
	recon.Number = e.frames
	// fail recycles the reconstruction buffer before propagating an error:
	// a cancelled frame is retried (EncodeFrameContext contract), and the
	// retry should reuse the same scratch instead of allocating.
	fail := func(err error) (*FrameStats, *Bitstream, error) {
		e.spare = recon
		return nil, nil, err
	}
	stats := &FrameStats{Number: e.frames, Type: ftype, Tiles: make([]TileStats, len(grid.Tiles))}
	bs := &Bitstream{Type: ftype, Tiles: make([][]byte, len(grid.Tiles))}

	encodeOne := func(i int) error {
		ts, payload, err := e.encodeTile(f, recon, grid.Tiles[i], params[i], ftype)
		if err != nil {
			return err
		}
		stats.Tiles[i] = ts
		bs.Tiles[i] = payload
		return nil
	}

	if workers == 1 || len(grid.Tiles) == 1 {
		for i := range grid.Tiles {
			if err := ctx.Err(); err != nil {
				return fail(err)
			}
			hostSlots <- struct{}{}
			err := encodeOne(i)
			<-hostSlots
			if err != nil {
				return fail(err)
			}
		}
	} else {
		var (
			wg   sync.WaitGroup
			mu   sync.Mutex
			rerr error
		)
		sem := make(chan struct{}, workers)
		for i := range grid.Tiles {
			if err := ctx.Err(); err != nil {
				mu.Lock()
				if rerr == nil {
					rerr = err
				}
				mu.Unlock()
				break
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				hostSlots <- struct{}{}
				defer func() { <-hostSlots }()
				if err := encodeOne(i); err != nil {
					mu.Lock()
					if rerr == nil {
						rerr = err
					}
					mu.Unlock()
				}
			}(i)
		}
		wg.Wait()
		if rerr != nil {
			return fail(rerr)
		}
	}

	// Chroma pass-through reconstruction: this grayscale-domain codec codes
	// luma only; chroma is copied so decoded frames remain displayable.
	if err := recon.Cb.CopyFrom(f.Cb); err != nil {
		return fail(err)
	}
	if err := recon.Cr.CopyFrom(f.Cr); err != nil {
		return fail(err)
	}

	var sse int64
	for _, ts := range stats.Tiles {
		stats.Bits += ts.Bits
		stats.EncodeTime += ts.EncodeTime
		stats.SearchEvals += ts.SearchEvals
		sse += ts.SSE
	}
	stats.PSNR = psnrFromSSE(sse, e.cfg.Width*e.cfg.Height)

	e.retireRef(recon)
	e.frames++
	return stats, bs, nil
}

// hostSlots bounds the number of tile encodes running concurrently in the
// whole process to the host's parallelism. Without it, a multi-session
// server can oversubscribe the host (sessions × per-session workers ≫
// cores) and every tile's measured EncodeTime — wall clock, stamped after
// the slot is acquired — would include scheduler wait from other sessions,
// poisoning the workload LUT that drives admission control. With the gate,
// a running tile effectively owns a core, so wall time ≈ CPU time.
var hostSlots = make(chan struct{}, runtime.GOMAXPROCS(0))

// psnrFromSSE converts a summed squared error over n samples to PSNR,
// capping lossless at 100 dB.
func psnrFromSSE(sse int64, n int) float64 {
	if sse == 0 {
		return 100
	}
	mse := float64(sse) / float64(n)
	return video.CapPSNR(10*math.Log10(255*255/mse), 100)
}

// encodeTile encodes one tile, writing its reconstruction into recon and
// returning its stats and bitstream payload.
func (e *Encoder) encodeTile(src, recon *video.Frame, tile tiling.Tile, p TileParams, ftype FrameType) (TileStats, []byte, error) {
	start := time.Now()
	w := getBitWriter()
	defer putBitWriter(w)
	// Tile header: QP, so the payload is self-contained for the decoder.
	w.WriteUE(uint32(p.QP))

	tc, err := newTileCoder(e.cfg, p, tile, src.Y, recon.Y, refPlane(e.ref), ftype)
	if err != nil {
		return TileStats{}, nil, err
	}
	defer putTileCoder(tc)
	if err := tc.encode(w); err != nil {
		return TileStats{}, nil, err
	}

	ts := tc.stats
	ts.Tile = tile
	ts.QP = p.QP
	ts.Window = p.Window
	ts.Bits = w.Len()
	ts.PSNR = psnrFromSSE(ts.SSE, tile.Area())
	ts.EncodeTime = time.Since(start)
	return ts, w.Bytes(), nil
}

func refPlane(f *video.Frame) *video.Plane {
	if f == nil {
		return nil
	}
	return f.Y
}

// tileCoder holds the per-tile encoding state shared by the block loop.
type tileCoder struct {
	cfg   Config
	p     TileParams
	tile  tiling.Tile
	src   *video.Plane // full-frame source luma
	recon *video.Plane // full-frame reconstruction luma (tile region written)
	ref   *video.Plane // full-frame reference luma (nil for I-frames)
	ftype FrameType
	quant *transform.Quantizer
	stats TileStats
	// lastMV is the motion-vector predictor (previous coded inter block in
	// the tile, raster order), mirrored exactly by the decoder.
	lastMV motion.MV
	// mvSum accumulates inter MVs for MeanMV.
	mvSum motion.MV
	// Per-block scratch, sized once per tile (sizeScratch) and reused by
	// every block: prediction samples, intra candidate samples, transform
	// coefficients and residual. Each is fully overwritten before any read.
	pred   []uint8
	tmp    []uint8
	coeffs []int32
	res    []int32
}

// newTileCoder returns a pooled coder initialized for one tile. Release
// with putTileCoder when the tile is done.
func newTileCoder(cfg Config, p TileParams, tile tiling.Tile, src, recon, ref *video.Plane, ftype FrameType) (*tileCoder, error) {
	q, err := quantizerFor(cfg.TransformSize, p.QP, ftype == FrameI)
	if err != nil {
		return nil, err
	}
	t := tileCoderPool.Get().(*tileCoder)
	pred, tmp, coeffs, res := t.pred, t.tmp, t.coeffs, t.res
	*t = tileCoder{cfg: cfg, p: p, tile: tile, src: src, recon: recon, ref: ref, ftype: ftype, quant: q,
		pred: pred, tmp: tmp, coeffs: coeffs, res: res}
	t.sizeScratch()
	return t, nil
}

// encode runs the block loop over the tile in raster order.
func (t *tileCoder) encode(w *entropy.BitWriter) error {
	bsz := t.cfg.BlockSize
	for by := t.tile.Y; by < t.tile.Y+t.tile.H; by += bsz {
		for bx := t.tile.X; bx < t.tile.X+t.tile.W; bx += bsz {
			bw := min(bsz, t.tile.X+t.tile.W-bx)
			bh := min(bsz, t.tile.Y+t.tile.H-by)
			if err := t.encodeBlock(w, bx, by, bw, bh); err != nil {
				return err
			}
		}
	}
	if t.stats.InterBlocks > 0 {
		t.stats.MeanMV = motion.MV{
			X: roundDiv(t.mvSum.X, t.stats.InterBlocks),
			Y: roundDiv(t.mvSum.Y, t.stats.InterBlocks),
		}
	}
	return nil
}

// encodeBlock codes one bw×bh prediction block at (bx, by).
func (t *tileCoder) encodeBlock(w *entropy.BitWriter, bx, by, bw, bh int) error {
	pred := t.pred[:bw*bh]

	useInter := false
	var mv motion.MV
	var intraMode int
	if t.ftype == FrameP {
		blk := motion.Block{Cur: t.src, Ref: t.ref, X: bx, Y: by, W: bw, H: bh}
		// Seed the search with the spatial predictor — the previous coded
		// block's vector, which is also the anchor of the MV-difference
		// entropy coding — falling back to the policy's GOP direction at
		// the start of a tile. On the coherent global motion of medical
		// video this is what lets small-pattern searches converge in a
		// handful of probes.
		mvPred := t.lastMV
		if mvPred == (motion.MV{}) {
			mvPred = t.p.Pred
		}
		searchStart := time.Now()
		res := t.p.Searcher.Search(blk, t.p.Window, mvPred)
		t.stats.SearchTime += time.Since(searchStart)
		t.stats.SearchEvals += res.Evals
		// Mode decision: inter wins unless intra predicts markedly better.
		// The small MV-rate bias keeps RD behaviour sane at high QP. When
		// inter prediction is already near-perfect (≤ ~1.5 grey levels per
		// pixel), skip the intra evaluation entirely — the standard early
		// termination that keeps motion estimation the dominant cost.
		interCost := res.Cost + int64(4*res.MV.AbsSum())
		if res.Cost <= int64(bw*bh*3/2) {
			useInter = true
			mv = res.MV
			interPredict(t.ref, bx, by, bw, bh, mv, pred)
		} else {
			var intraCost int64
			intraMode, intraCost = t.bestIntra(bx, by, bw, bh, pred)
			if interCost <= intraCost {
				useInter = true
				mv = res.MV
				interPredict(t.ref, bx, by, bw, bh, mv, pred)
			}
			// Otherwise pred already holds the intra prediction.
		}
		w.WriteBit(boolBit(useInter))
		if useInter {
			w.WriteSE(int32(mv.X - t.lastMV.X))
			w.WriteSE(int32(mv.Y - t.lastMV.Y))
			t.lastMV = mv
			t.stats.InterBlocks++
			t.mvSum = t.mvSum.Add(mv)
		} else {
			w.WriteUE(uint32(intraMode))
			t.stats.IntraBlocks++
		}
	} else {
		intraMode, _ := t.bestIntra(bx, by, bw, bh, pred)
		w.WriteUE(uint32(intraMode))
		t.stats.IntraBlocks++
	}

	return t.codeResidual(w, bx, by, bw, bh, pred)
}

// bestIntra evaluates the intra modes against the source and leaves the
// winning prediction in pred, returning the mode and its SAD cost.
func (t *tileCoder) bestIntra(bx, by, bw, bh int, pred []uint8) (int, int64) {
	bestMode, bestCost := intraDC, int64(1)<<62
	tmp := t.tmp[:bw*bh]
	for mode := 0; mode < numIntraModes; mode++ {
		if !t.intraAvailable(mode, bx, by) {
			continue
		}
		intraPredict(t.recon, t.tile, mode, bx, by, bw, bh, tmp)
		var cost int64
		for y := 0; y < bh; y++ {
			row := t.src.Pix[(by+y)*t.src.Stride+bx : (by+y)*t.src.Stride+bx+bw]
			for x := 0; x < bw; x++ {
				d := int(row[x]) - int(tmp[y*bw+x])
				if d < 0 {
					d = -d
				}
				cost += int64(d)
			}
		}
		// Mode bits bias: DC is cheapest in ue(v).
		cost += int64(2 * mode)
		if cost < bestCost {
			bestCost = cost
			bestMode = mode
			copy(pred, tmp)
		}
	}
	return bestMode, bestCost
}

// intraAvailable reports whether a mode's reference samples exist inside
// the tile (tiles are fully independent, so prediction never crosses the
// tile boundary).
func (t *tileCoder) intraAvailable(mode, bx, by int) bool {
	switch mode {
	case intraHorizontal:
		return bx > t.tile.X
	case intraVertical:
		return by > t.tile.Y
	default: // DC degrades gracefully to mid-gray with no neighbours
		return true
	}
}

// codeResidual transforms, quantizes, entropy-codes and reconstructs the
// residual of one block, updating SSE stats.
//
// Sub-blocks take an early-skip fast path when the residual is small
// relative to the quantization step (mean |residual| below Qstep/6, i.e.
// comfortably inside the quantizer's deadzone): the encoder emits the
// one-bit empty coefficient block without running the transform, exactly
// as if every level had quantized to zero — which is what happens to such
// residuals in the slow path in all but pathological basis alignments.
// The bitstream stays fully consistent either way (the decoder sees an
// ordinary empty block), so this is the standard encoder-side early-CBF
// decision, and it is what makes well-predicted low-texture tiles cheap —
// the content→CPU-time coupling the paper's workload allocation exploits.
func (t *tileCoder) codeResidual(w *entropy.BitWriter, bx, by, bw, bh int, pred []uint8) error {
	n := t.cfg.TransformSize
	zeroBound := skipSADThreshold(n, t.quant)
	coeffs := t.coeffs[:n*n]
	res := t.res[:n*n]
	for sy := 0; sy < bh; sy += n {
		for sx := 0; sx < bw; sx += n {
			vw := min(n, bw-sx)
			vh := min(n, bh-sy)
			// Gather residual, zero-padding outside the valid region.
			for i := range res {
				res[i] = 0
			}
			var sad int64
			for y := 0; y < vh; y++ {
				srow := t.src.Pix[(by+sy+y)*t.src.Stride+bx+sx : (by+sy+y)*t.src.Stride+bx+sx+vw]
				for x := 0; x < vw; x++ {
					d := int32(srow[x]) - int32(pred[(sy+y)*bw+sx+x])
					res[y*n+x] = d
					if d < 0 {
						d = -d
					}
					sad += int64(d)
				}
			}
			if sad < zeroBound {
				// Early skip: write the empty block and reconstruct the
				// prediction directly.
				w.WriteUE(0)
				for y := 0; y < vh; y++ {
					rrow := t.recon.Pix[(by+sy+y)*t.recon.Stride+bx+sx : (by+sy+y)*t.recon.Stride+bx+sx+vw]
					srow := t.src.Pix[(by+sy+y)*t.src.Stride+bx+sx : (by+sy+y)*t.src.Stride+bx+sx+vw]
					for x := 0; x < vw; x++ {
						v := pred[(sy+y)*bw+sx+x]
						rrow[x] = v
						d := int(srow[x]) - int(v)
						t.stats.SSE += int64(d * d)
					}
				}
				t.stats.SkippedBlocks++
				continue
			}
			if err := transform.Forward(n, res, coeffs); err != nil {
				return err
			}
			if err := t.quant.Quantize(coeffs, coeffs); err != nil {
				return err
			}
			if err := entropy.EncodeCoeffBlock(w, n, coeffs); err != nil {
				return err
			}
			if err := t.quant.Dequantize(coeffs, coeffs); err != nil {
				return err
			}
			if err := transform.Inverse(n, coeffs, res); err != nil {
				return err
			}
			// Reconstruct and accumulate distortion over the valid region.
			for y := 0; y < vh; y++ {
				rrow := t.recon.Pix[(by+sy+y)*t.recon.Stride+bx+sx : (by+sy+y)*t.recon.Stride+bx+sx+vw]
				srow := t.src.Pix[(by+sy+y)*t.src.Stride+bx+sx : (by+sy+y)*t.src.Stride+bx+sx+vw]
				for x := 0; x < vw; x++ {
					v := video.ClampU8(int(pred[(sy+y)*bw+sx+x]) + int(res[y*n+x]))
					rrow[x] = v
					d := int(srow[x]) - int(v)
					t.stats.SSE += int64(d * d)
				}
			}
		}
	}
	return nil
}

// intraPredict fills pred for the given mode from reconstructed neighbours
// inside the tile. Shared by encoder and decoder.
func intraPredict(recon *video.Plane, tile tiling.Tile, mode, bx, by, bw, bh int, pred []uint8) {
	switch mode {
	case intraHorizontal:
		for y := 0; y < bh; y++ {
			v := recon.At(bx-1, by+y)
			for x := 0; x < bw; x++ {
				pred[y*bw+x] = v
			}
		}
	case intraVertical:
		top := recon.Pix[(by-1)*recon.Stride+bx : (by-1)*recon.Stride+bx+bw]
		for y := 0; y < bh; y++ {
			copy(pred[y*bw:(y+1)*bw], top)
		}
	default: // DC
		var sum, cnt int
		if by > tile.Y {
			row := recon.Pix[(by-1)*recon.Stride+bx : (by-1)*recon.Stride+bx+bw]
			for _, v := range row {
				sum += int(v)
			}
			cnt += bw
		}
		if bx > tile.X {
			for y := 0; y < bh; y++ {
				sum += int(recon.At(bx-1, by+y))
			}
			cnt += bh
		}
		dc := uint8(128)
		if cnt > 0 {
			dc = uint8((sum + cnt/2) / cnt)
		}
		for i := range pred[:bw*bh] {
			pred[i] = dc
		}
	}
}

// interPredict copies the motion-compensated reference block into pred.
// Shared by encoder and decoder.
func interPredict(ref *video.Plane, bx, by, bw, bh int, mv motion.MV, pred []uint8) {
	rx, ry := bx+mv.X, by+mv.Y
	for y := 0; y < bh; y++ {
		copy(pred[y*bw:(y+1)*bw], ref.Pix[(ry+y)*ref.Stride+rx:(ry+y)*ref.Stride+rx+bw])
	}
}

// skipSADThreshold is the early-skip bound for an n×n sub-block: mean
// |residual| below Qstep/6. It always dominates the provable all-zero
// bound (transform.Quantizer.ZeroSADBound), so provably-zero blocks are
// always skipped too.
func skipSADThreshold(n int, q *transform.Quantizer) int64 {
	heuristic := int64(transform.Qstep(q.QP()) * float64(n*n) / 6)
	if provable := q.ZeroSADBound(); provable > heuristic {
		return provable
	}
	return heuristic
}

func boolBit(b bool) uint {
	if b {
		return 1
	}
	return 0
}

func roundDiv(a, n int) int {
	if n == 0 {
		return 0
	}
	if a >= 0 {
		return (a + n/2) / n
	}
	return -((-a + n/2) / n)
}
