package codec

import (
	"testing"
	"testing/quick"

	"repro/internal/tiling"
	"repro/internal/video"
)

// TestDecoderSurvivesRandomPayloads feeds pseudo-random bytes as tile
// payloads: the decoder must either return an error or decode something —
// never panic or loop. (Malformed input reaching a telemedicine decoder
// is a when, not an if.)
func TestDecoderSurvivesRandomPayloads(t *testing.T) {
	cfg := smallConfig()
	grid := tiling.MustUniform(128, 96, 2, 2)
	f := func(seed int64, n uint16, ftypeBit bool) bool {
		// Deterministic garbage of plausible length.
		size := int(n%2048) + 1
		payload := make([]byte, size)
		s := uint64(seed)
		for i := range payload {
			s = s*6364136223846793005 + 1442695040888963407
			payload[i] = byte(s >> 56)
		}
		dec, err := NewDecoder(cfg)
		if err != nil {
			return false
		}
		ftype := FrameI
		if ftypeBit {
			// Give P-frames a reference so parsing proceeds past the check.
			seq := quickSequence(128, 96)
			enc, _ := NewEncoder(cfg)
			_, bs, err := enc.EncodeFrame(seq, grid, uniformParams(4, 30))
			if err != nil {
				return false
			}
			if _, err := dec.DecodeFrame(bs, grid); err != nil {
				return false
			}
			ftype = FrameP
		}
		bs := &Bitstream{Type: ftype, Tiles: [][]byte{payload, payload, payload, payload}}
		// Must return (decoded or error) without panicking.
		_, _ = dec.DecodeFrame(bs, grid)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// quickSequence builds a single structured frame without the medgen
// dependency weight (content is irrelevant for the fuzz reference).
func quickSequence(w, h int) *video.Frame {
	f := video.NewFrame(w, h)
	for y := 0; y < h; y++ {
		row := f.Y.Row(y)
		for x := range row {
			row[x] = uint8((x*7 + y*13) % 251)
		}
	}
	return f
}
