package codec

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/medgen"
	"repro/internal/motion"
	"repro/internal/tiling"
	"repro/internal/video"
)

func wppParams(qp int) TileParams {
	return TileParams{QP: qp, Searcher: motion.TZSearch{}, Window: 16}
}

func TestWavefrontDecoderMatchesEncoder(t *testing.T) {
	seq := smallSequence(t, 5)
	cfg := smallConfig()
	enc, _ := NewEncoder(cfg)
	dec, _ := NewDecoder(cfg)
	for i, f := range seq.Frames {
		_, bs, err := enc.EncodeFrameWavefront(f, wppParams(30), 4)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := dec.DecodeFrameWavefront(bs)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if sad, _ := video.SAD(got.Y, enc.Reference().Y); sad != 0 {
			t.Fatalf("frame %d: wavefront drift (SAD %d)", i, sad)
		}
	}
}

func TestWavefrontDeterministicAcrossWorkerCounts(t *testing.T) {
	seq := smallSequence(t, 3)
	cfg := smallConfig()
	var ref []*Bitstream
	for _, workers := range []int{1, 3, 8} {
		enc, _ := NewEncoder(cfg)
		var streams []*Bitstream
		for _, f := range seq.Frames {
			_, bs, err := enc.EncodeFrameWavefront(f, wppParams(30), workers)
			if err != nil {
				t.Fatal(err)
			}
			streams = append(streams, bs)
		}
		if ref == nil {
			ref = streams
			continue
		}
		for i := range streams {
			for r := range streams[i].Tiles {
				if string(streams[i].Tiles[r]) != string(ref[i].Tiles[r]) {
					t.Fatalf("workers=%d frame %d row %d: bitstream differs", workers, i, r)
				}
			}
		}
	}
}

func TestWavefrontRowPayloadsPerRow(t *testing.T) {
	seq := smallSequence(t, 1)
	cfg := smallConfig() // 96 high, block 16 → 6 rows
	enc, _ := NewEncoder(cfg)
	stats, bs, err := enc.EncodeFrameWavefront(seq.Frames[0], wppParams(30), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs.Tiles) != 6 || len(stats.Tiles) != 6 {
		t.Fatalf("rows = %d/%d, want 6", len(bs.Tiles), len(stats.Tiles))
	}
	for r, ts := range stats.Tiles {
		if ts.Tile.Y != r*16 || ts.Tile.W != 128 {
			t.Fatalf("row %d geometry %v", r, ts.Tile.Rect)
		}
		if ts.Bits <= 0 {
			t.Fatalf("row %d has no bits", r)
		}
	}
}

func TestWavefrontQualityMatchesTiles(t *testing.T) {
	// WPP and a single-tile encode are different partitions of the same
	// machinery; their rate/quality must be in the same ballpark.
	seq := smallSequence(t, 2)
	cfg := smallConfig()
	encW, _ := NewEncoder(cfg)
	encT, _ := NewEncoder(cfg)
	grid := tiling.MustUniform(128, 96, 1, 1)
	var wppPSNR, tilePSNR float64
	var wppBits, tileBits int
	for _, f := range seq.Frames {
		sw, _, err := encW.EncodeFrameWavefront(f, wppParams(30), 2)
		if err != nil {
			t.Fatal(err)
		}
		st, _, err := encT.EncodeFrame(f, grid, []TileParams{wppParams(30)})
		if err != nil {
			t.Fatal(err)
		}
		wppPSNR, tilePSNR = sw.PSNR, st.PSNR
		wppBits, tileBits = sw.Bits, st.Bits
	}
	if d := wppPSNR - tilePSNR; d < -1.5 || d > 1.5 {
		t.Fatalf("wavefront PSNR %.1f vs tile %.1f", wppPSNR, tilePSNR)
	}
	if wppBits > tileBits*3/2+1000 {
		t.Fatalf("wavefront bits %d vs tile %d", wppBits, tileBits)
	}
}

func TestWavefrontVsTilesParallelEfficiency(t *testing.T) {
	// The paper's Sec. II-C argument: wavefront dependencies limit
	// concurrency, tiles don't. Measure wall time at several workers on a
	// larger frame; tiles must parallelize at least as well as WPP.
	if runtime.NumCPU() < 4 {
		t.Skip("needs ≥4 CPUs for a meaningful comparison")
	}
	cfg := Config{Width: 640, Height: 480, FPS: 24, GOPSize: 8, IntraPeriod: 0, BlockSize: 16, TransformSize: 8}
	frames := benchFramesT(t, cfg.Width, cfg.Height)

	wall := func(encode func(enc *Encoder) error) time.Duration {
		enc, err := NewEncoder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Warm: I-frame.
		grid := tiling.MustUniform(cfg.Width, cfg.Height, 1, 1)
		if _, _, err := enc.EncodeFrame(frames[0], grid, []TileParams{wppParams(32)}); err != nil {
			t.Fatal(err)
		}
		best := time.Hour
		for trial := 0; trial < 3; trial++ {
			start := time.Now()
			if err := encode(enc); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	grid := tiling.MustUniform(cfg.Width, cfg.Height, 4, 4)
	params := make([]TileParams, 16)
	for i := range params {
		params[i] = wppParams(32)
	}
	tilesTime := wall(func(enc *Encoder) error {
		_, _, err := enc.EncodeFrameParallel(frames[1], grid, params, 4)
		return err
	})
	wppTime := wall(func(enc *Encoder) error {
		_, _, err := enc.EncodeFrameWavefront(frames[1], wppParams(32), 4)
		return err
	})
	// Tolerate scheduling noise, but WPP must not beat tiles outright by a
	// meaningful margin — its staircase serialization is structural.
	if float64(wppTime) < float64(tilesTime)*0.8 {
		t.Fatalf("WPP (%v) substantially faster than tiles (%v) — dependency model broken", wppTime, tilesTime)
	}
	t.Logf("4 workers: tiles %v, wavefront %v", tilesTime, wppTime)
}

// benchFramesT renders two frames for the parallel-efficiency test.
func benchFramesT(t *testing.T, w, h int) []*video.Frame {
	t.Helper()
	cfg := medgen.Default()
	cfg.Width, cfg.Height = w, h
	cfg.Frames = 2
	g, err := medgen.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return []*video.Frame{g.Frame(0), g.Frame(1)}
}
