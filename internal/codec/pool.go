package codec

import (
	"sync"

	"repro/internal/entropy"
	"repro/internal/transform"
	"repro/internal/video"
)

// This file holds the encode hot path's memory-reuse machinery. The
// steady-state GOP loop allocates nothing per block and (after warm-up)
// nothing per tile: bit writers and tile coders come from process-wide
// sync.Pools, quantizers come from a precomputed immutable table, and the
// reconstruction frame is recycled inside each Encoder. Correctness rests
// on a single invariant, enforced at every reuse site and exercised by
// the pool-poisoning tests: a recycled buffer is either fully reset here
// or provably overwritten before any read.

// bwPool recycles BitWriters (their byte buffers keep capacity across
// uses). Safe to share between tiles, frames and sessions: Bytes()
// copies, so nothing aliases a pooled writer's buffer after release.
var bwPool = sync.Pool{New: func() any { return entropy.NewBitWriter() }}

// getBitWriter returns a reset writer from the pool.
func getBitWriter() *entropy.BitWriter {
	w := bwPool.Get().(*entropy.BitWriter)
	w.Reset()
	return w
}

// putBitWriter releases w for reuse. The caller must not touch w again.
func putBitWriter(w *entropy.BitWriter) { bwPool.Put(w) }

// tileCoderPool recycles tileCoder structs together with their per-block
// scratch slices (prediction, intra candidate, coefficient and residual
// buffers), which is what removes the per-block allocations from
// encodeBlock/bestIntra/codeResidual.
var tileCoderPool = sync.Pool{New: func() any { return new(tileCoder) }}

// putTileCoder releases t for reuse, dropping every reference it holds
// into frame data so pooled coders never pin planes or searchers.
func putTileCoder(t *tileCoder) {
	t.src, t.recon, t.ref = nil, nil, nil
	t.quant = nil
	t.p = TileParams{}
	tileCoderPool.Put(t)
}

// sizeScratch (re)sizes the per-block scratch for the coder's current
// config, reusing capacity when possible. Contents are deliberately NOT
// cleared: every path through the block loop fully overwrites the region
// it reads (interPredict/intraPredict write all bw*bh prediction samples,
// codeResidual zero-pads the residual gather explicitly, and the forward
// transform writes every coefficient).
func (t *tileCoder) sizeScratch() {
	b := t.cfg.BlockSize * t.cfg.BlockSize
	t.pred = resizeU8(t.pred, b)
	t.tmp = resizeU8(t.tmp, b)
	n := t.cfg.TransformSize * t.cfg.TransformSize
	t.coeffs = resizeI32(t.coeffs, n)
	t.res = resizeI32(t.res, n)
}

func resizeU8(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	return s[:n]
}

func resizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// quantTable memoizes quantizers for every legal (size, QP, intra)
// combination. Quantizers are immutable after construction, so one
// instance serves all tiles and goroutines; this removes the per-tile
// NewQuantizer allocation.
var quantTable [2][transform.MaxQP + 1][2]*transform.Quantizer

func init() {
	for ni, n := range [2]int{transform.Size4, transform.Size8} {
		for qp := transform.MinQP; qp <= transform.MaxQP; qp++ {
			for ii, intra := range [2]bool{false, true} {
				q, err := transform.NewQuantizer(n, qp, intra)
				if err != nil {
					panic(err) // unreachable: the loop covers only legal inputs
				}
				quantTable[ni][qp][ii] = q
			}
		}
	}
}

// quantizerFor returns the shared quantizer for (n, qp, intra), falling
// back to construction (and its validation errors) outside the table.
func quantizerFor(n, qp int, intra bool) (*transform.Quantizer, error) {
	if (n == transform.Size4 || n == transform.Size8) && qp >= transform.MinQP && qp <= transform.MaxQP {
		ni := 0
		if n == transform.Size8 {
			ni = 1
		}
		ii := 0
		if intra {
			ii = 1
		}
		return quantTable[ni][qp][ii], nil
	}
	return transform.NewQuantizer(n, qp, intra)
}

// PoisonPools stuffs the process-wide encode pools with deliberately
// dirty objects: bit writers mid-byte with garbage buffers, tile coders
// with stale stats, prediction state and scratch full of non-zero
// patterns. It exists for tests proving the pooled encode path is
// bit-identical to a pristine one — production code must never call it.
// Frame recycling needs no poison hook: any sequence of three or more
// frames reuses a reconstruction buffer still holding real pixel data,
// which is as dirty as a buffer gets.
func PoisonPools() {
	for i := 0; i < 8; i++ {
		w := entropy.NewBitWriter()
		for j := 0; j < 8*i+3; j++ {
			w.WriteBits(0xAB, 7) // leaves a partial byte pending
		}
		bwPool.Put(w)

		t := new(tileCoder)
		t.stats = TileStats{Bits: 999, SSE: 1 << 40, InterBlocks: 77, SkippedBlocks: 13}
		t.lastMV.X, t.lastMV.Y = 31, -17
		t.mvSum.X, t.mvSum.Y = -1000, 1000
		t.pred = make([]uint8, 1024)
		t.tmp = make([]uint8, 1024)
		for j := range t.pred {
			t.pred[j] = 0xAA
			t.tmp[j] = 0x55
		}
		t.coeffs = make([]int32, 64)
		t.res = make([]int32, 64)
		for j := range t.coeffs {
			t.coeffs[j] = -123456
			t.res[j] = 654321
		}
		tileCoderPool.Put(t)
	}
}

// takeRecon returns the frame to encode the next reconstruction into:
// the encoder's recycled spare when its geometry matches, else a fresh
// allocation. The caller must fully overwrite the luma plane (guaranteed
// because a validated grid partitions the frame exactly and every block
// path writes its whole region) and both chroma planes (copied from the
// source frame).
func (e *Encoder) takeRecon() *video.Frame {
	if s := e.spare; s.CanReuse(e.cfg.Width, e.cfg.Height) {
		e.spare = nil
		s.Reset()
		return s
	}
	e.spare = nil
	return video.NewFrame(e.cfg.Width, e.cfg.Height)
}

// retireRef installs recon as the new reference and recycles the outgoing
// one as the next spare — but only if the encoder allocated it itself.
// References installed by Restore are externally owned (migration state a
// caller may still hold) and are never written again.
func (e *Encoder) retireRef(recon *video.Frame) {
	if old := e.ref; old != nil && e.refOwned {
		e.spare = old
	}
	e.ref = recon
	e.refOwned = true
}
