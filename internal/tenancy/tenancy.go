// Package tenancy holds the multi-tenant QoS policy the serving layers
// consult at their front doors: per-tenant token-bucket admission rates,
// weighted core shares, and priority classes.
//
// The registry is deliberately small and leaf-level (it imports nothing
// from the serving stack) so every layer can depend on it: serve.Fleet
// charges the token bucket on submission, the dist master charges it at
// the network edge before routing, and core.Server reads weights and
// priorities when it apportions platform cores across tenants and orders
// stage-D2 admission (internal/core/admission.go, DESIGN.md §15).
//
// Unknown tenant ids resolve to the default policy (weight 1, priority 0,
// unlimited rate) rather than being refused: tenancy is an overlay on the
// historical single-tenant service, and a deployment that never mentions
// tenants behaves exactly as before.
package tenancy

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// DefaultID is the tenant every submission without an explicit tenant id
// belongs to. The empty string is its internal spelling: sessions carry
// "" through the core and wire layers (keeping the v1 encodings
// byte-identical), and telemetry folds "" to this name.
const DefaultID = "default"

// ErrRateLimited is returned by Admit when a tenant's token bucket is
// empty: the submission should be refused (HTTP 429 at the network edge)
// and retried later, not queued.
var ErrRateLimited = errors.New("tenancy: rate limit exceeded")

// Tenant is one tenant's QoS policy.
type Tenant struct {
	// ID names the tenant ("" is the default tenant).
	ID string `json:"id"`
	// Weight is the tenant's relative share of platform cores when
	// several tenants compete (0 → 1). Cores are apportioned across the
	// active tenants proportionally to weight before the per-session
	// stage-D2 solve (sched.ApportionCores).
	Weight int `json:"weight,omitempty"`
	// Priority is the default priority class of the tenant's sessions
	// (0 = best effort; higher preempts). A submission may carry its own
	// priority, which overrides this default when non-zero.
	Priority int `json:"priority,omitempty"`
	// Rate is the token-bucket refill rate in submissions per second.
	// 0 leaves the tenant unlimited.
	Rate float64 `json:"rate,omitempty"`
	// Burst is the bucket capacity (0 → max(1, ceil(Rate))). A full
	// bucket lets a tenant submit Burst sessions back to back before the
	// refill rate binds.
	Burst int `json:"burst,omitempty"`
}

// withDefaults fills the zero values.
func (t Tenant) withDefaults() Tenant {
	if t.Weight <= 0 {
		t.Weight = 1
	}
	if t.Rate > 0 && t.Burst <= 0 {
		t.Burst = int(t.Rate + 0.999)
		if t.Burst < 1 {
			t.Burst = 1
		}
	}
	return t
}

// bucket is one registered tenant's live token-bucket state.
type bucket struct {
	policy Tenant
	tokens float64
	last   time.Time
}

// Registry maps tenant ids to policy and enforces the token buckets.
// Safe for concurrent use.
type Registry struct {
	mu   sync.Mutex
	now  func() time.Time
	byID map[string]*bucket
}

// NewRegistry builds a registry from the given tenant policies. A policy
// with ID "" (or DefaultID) replaces the default tenant's policy.
func NewRegistry(tenants ...Tenant) *Registry {
	r := &Registry{now: time.Now, byID: make(map[string]*bucket, len(tenants))}
	for _, t := range tenants {
		r.Register(t)
	}
	return r
}

// WithClock replaces the registry's clock — the test hook that makes
// token-bucket refill deterministic. Returns the registry for chaining.
func (r *Registry) WithClock(now func() time.Time) *Registry {
	r.mu.Lock()
	r.now = now
	r.mu.Unlock()
	return r
}

// Register adds (or replaces) one tenant's policy. The bucket starts
// full.
func (r *Registry) Register(t Tenant) {
	t = t.withDefaults()
	id := t.ID
	if id == DefaultID {
		id = ""
		t.ID = ""
	}
	r.mu.Lock()
	r.byID[id] = &bucket{policy: t, tokens: float64(t.Burst), last: r.now()}
	r.mu.Unlock()
}

// canonical maps the default tenant's public name onto its internal
// empty-string spelling.
func canonical(id string) string {
	if id == DefaultID {
		return ""
	}
	return id
}

// Lookup returns the policy for a tenant id. Unknown ids get the default
// policy (weight 1, priority 0, unlimited) under their own id.
func (r *Registry) Lookup(id string) Tenant {
	id = canonical(id)
	r.mu.Lock()
	defer r.mu.Unlock()
	if b, ok := r.byID[id]; ok {
		return b.policy
	}
	return Tenant{ID: id}.withDefaults()
}

// Weight returns the tenant's core-share weight (≥ 1).
func (r *Registry) Weight(id string) int {
	return r.Lookup(id).Weight
}

// Priority resolves a submission's effective priority class: the
// explicit request priority when non-zero, the tenant's default
// otherwise.
func (r *Registry) Priority(id string, requested int) int {
	if requested != 0 {
		return requested
	}
	return r.Lookup(id).Priority
}

// Tenants lists the registered tenant ids in sorted order (the default
// tenant, when registered explicitly, appears as DefaultID).
func (r *Registry) Tenants() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.byID))
	for id := range r.byID {
		if id == "" {
			id = DefaultID
		}
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Admit charges one submission against the tenant's token bucket,
// returning ErrRateLimited (wrapped with the tenant id) when the bucket
// is empty. Tenants with no configured rate — including unknown tenants —
// are always admitted.
func (r *Registry) Admit(id string) error {
	id = canonical(id)
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.byID[id]
	if !ok || b.policy.Rate <= 0 {
		return nil
	}
	now := r.now()
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * b.policy.Rate
		if max := float64(b.policy.Burst); b.tokens > max {
			b.tokens = max
		}
	}
	b.last = now
	if b.tokens < 1 {
		name := id
		if name == "" {
			name = DefaultID
		}
		return fmt.Errorf("tenant %q: %w", name, ErrRateLimited)
	}
	b.tokens--
	return nil
}

// WithoutRates derives a registry with the same tenants, weights and
// priorities but no admission rates — every tenant's bucket is
// unlimited. This is the registry a dist agent runs with: the master
// already charged the fleet-wide bucket at the routing front door, so
// the agent enforcing the rate again would double-charge every routed
// submission.
func (r *Registry) WithoutRates() *Registry {
	stripped := NewRegistry()
	for _, id := range r.Tenants() {
		t := r.Lookup(id)
		t.Rate, t.Burst = 0, 0
		stripped.Register(t)
	}
	return stripped
}

// Config is the on-disk registry format (the -tenants-config file):
//
//	{"tenants": [
//	  {"id": "batch", "weight": 3, "rate": 2.5},
//	  {"id": "er", "weight": 1, "priority": 9}
//	]}
type Config struct {
	Tenants []Tenant `json:"tenants"`
}

// Parse reads a Config and builds its registry.
func Parse(r io.Reader) (*Registry, error) {
	var cfg Config
	dec := json.NewDecoder(r)
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("tenancy: parse config: %w", err)
	}
	seen := make(map[string]bool, len(cfg.Tenants))
	for _, t := range cfg.Tenants {
		id := canonical(t.ID)
		if seen[id] {
			return nil, fmt.Errorf("tenancy: duplicate tenant %q", t.ID)
		}
		seen[id] = true
		if t.Weight < 0 || t.Rate < 0 || t.Burst < 0 {
			return nil, fmt.Errorf("tenancy: tenant %q: negative weight/rate/burst", t.ID)
		}
	}
	return NewRegistry(cfg.Tenants...), nil
}

// LoadFile reads a Config file and builds its registry.
func LoadFile(path string) (*Registry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	reg, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return reg, nil
}
