package tenancy

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestRegistryDefaultsAndLookup(t *testing.T) {
	r := NewRegistry(
		Tenant{ID: "batch", Weight: 3, Rate: 2, Burst: 4},
		Tenant{ID: "er", Priority: 9},
	)
	if got := r.Weight("batch"); got != 3 {
		t.Fatalf("batch weight = %d, want 3", got)
	}
	if got := r.Weight("er"); got != 1 {
		t.Fatalf("er default weight = %d, want 1", got)
	}
	if got := r.Weight("unknown"); got != 1 {
		t.Fatalf("unknown weight = %d, want 1", got)
	}
	if got := r.Priority("er", 0); got != 9 {
		t.Fatalf("er default priority = %d, want 9", got)
	}
	if got := r.Priority("er", 2); got != 2 {
		t.Fatalf("explicit priority = %d, want 2 (override)", got)
	}
	if got := r.Priority("unknown", 0); got != 0 {
		t.Fatalf("unknown priority = %d, want 0", got)
	}
	if got := r.Tenants(); len(got) != 2 || got[0] != "batch" || got[1] != "er" {
		t.Fatalf("Tenants() = %v", got)
	}
}

func TestRegistryDefaultTenantAliases(t *testing.T) {
	r := NewRegistry(Tenant{ID: DefaultID, Weight: 5})
	// "" and "default" are the same tenant.
	if got := r.Weight(""); got != 5 {
		t.Fatalf(`Weight("") = %d, want 5`, got)
	}
	if got := r.Weight(DefaultID); got != 5 {
		t.Fatalf("Weight(default) = %d, want 5", got)
	}
}

func TestTokenBucketDeterministic(t *testing.T) {
	now := time.Unix(0, 0)
	r := NewRegistry().WithClock(func() time.Time { return now })
	r.Register(Tenant{ID: "t", Rate: 1, Burst: 2})

	// Burst drains, then the bucket refuses.
	for i := 0; i < 2; i++ {
		if err := r.Admit("t"); err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
	}
	err := r.Admit("t")
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-burst admit err = %v, want ErrRateLimited", err)
	}
	if !strings.Contains(err.Error(), `"t"`) {
		t.Fatalf("rate-limit error %q does not name the tenant", err)
	}

	// One second refills exactly one token.
	now = now.Add(time.Second)
	if err := r.Admit("t"); err != nil {
		t.Fatalf("post-refill admit: %v", err)
	}
	if err := r.Admit("t"); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second post-refill admit err = %v, want ErrRateLimited", err)
	}

	// Unlimited tenants never hit the bucket.
	for i := 0; i < 100; i++ {
		if err := r.Admit("free"); err != nil {
			t.Fatalf("unlimited admit: %v", err)
		}
	}
}

func TestParseConfig(t *testing.T) {
	cfg := `{"tenants": [
		{"id": "batch", "weight": 3, "rate": 2.5},
		{"id": "er", "priority": 9}
	]}`
	r, err := Parse(strings.NewReader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Weight("batch"); got != 3 {
		t.Fatalf("batch weight = %d, want 3", got)
	}
	if got := r.Lookup("batch").Burst; got != 3 {
		t.Fatalf("batch burst = %d, want ceil(2.5)=3", got)
	}
	if got := r.Priority("er", 0); got != 9 {
		t.Fatalf("er priority = %d, want 9", got)
	}

	if _, err := Parse(strings.NewReader(`{"tenants":[{"id":"a"},{"id":"a"}]}`)); err == nil {
		t.Fatal("duplicate tenant id accepted")
	}
	if _, err := Parse(strings.NewReader(`{"tenants":[{"id":"a","weight":-1}]}`)); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := Parse(strings.NewReader(`not json`)); err == nil {
		t.Fatal("malformed config accepted")
	}
}
