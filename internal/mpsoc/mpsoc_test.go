package mpsoc

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestXeonPlatformValid(t *testing.T) {
	p := XeonE5_2667V4()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Cores != 32 {
		t.Fatalf("cores = %d (4 × 8-core E5-2667)", p.Cores)
	}
	if len(p.Levels) != 3 {
		t.Fatalf("%d levels, want 3 (2.9/3.2/3.6 GHz)", len(p.Levels))
	}
	if p.Fmax().Hz != 3.6e9 {
		t.Fatalf("fmax = %v", p.Fmax().Hz)
	}
	if p.DVFSLatency != 10*time.Microsecond {
		t.Fatalf("DVFS latency = %v (paper: 10 µs)", p.DVFSLatency)
	}
}

func TestValidateCatchesBadPlatforms(t *testing.T) {
	mutations := []func(*Platform){
		func(p *Platform) { p.Cores = 0 },
		func(p *Platform) { p.ThreadsPerCore = 0 },
		func(p *Platform) { p.Levels = nil },
		func(p *Platform) { p.Levels[1].Hz = p.Levels[0].Hz }, // not ascending
		func(p *Platform) { p.Levels[0].Volt = -1 },
		func(p *Platform) { p.DVFSLatency = -time.Second },
		func(p *Platform) { p.Power.CeffWPerV2GHz = 0 },
		func(p *Platform) { p.Power.IdleFrac = 1.5 },
	}
	for i, mutate := range mutations {
		p := XeonE5_2667V4()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestPowerModelOrdering(t *testing.T) {
	p := XeonE5_2667V4()
	m := p.Power
	for i, l := range p.Levels {
		if m.IdleWatts(l) >= m.BusyWatts(l) {
			t.Fatalf("level %d: idle %.2f W ≥ busy %.2f W", i, m.IdleWatts(l), m.BusyWatts(l))
		}
		if i > 0 {
			prev := p.Levels[i-1]
			if m.BusyWatts(l) <= m.BusyWatts(prev) {
				t.Fatalf("busy power not increasing with frequency at level %d", i)
			}
			if m.IdleWatts(l) <= m.IdleWatts(prev) {
				t.Fatalf("idle power not increasing with frequency at level %d", i)
			}
		}
	}
	// Calibration: a busy core at fmax should draw roughly 13 W (TDP/8).
	busy := m.BusyWatts(p.Fmax())
	if busy < 8 || busy > 20 {
		t.Fatalf("busy watts at fmax = %.1f, want ≈13", busy)
	}
}

func TestScaleToLevel(t *testing.T) {
	p := XeonE5_2667V4()
	work := 29 * time.Millisecond
	// At fmax the time is unchanged.
	if got := p.ScaleToLevel(work, p.MaxLevel()); got != work {
		t.Fatalf("fmax scaling changed time: %v", got)
	}
	// At 2.9 GHz the same work takes 3.6/2.9 longer.
	got := p.ScaleToLevel(work, 0)
	want := time.Duration(float64(work) * 3.6 / 2.9)
	if d := got - want; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("scaled = %v, want %v", got, want)
	}
}

func TestSimulateSlotAllIdle(t *testing.T) {
	p := XeonE5_2667V4()
	plans := make([]CorePlan, p.Cores) // all idle at level 0
	slot := 41666 * time.Microsecond   // 1/24 s
	rep, err := p.SimulateSlot(plans, slot)
	if err != nil {
		t.Fatal(err)
	}
	wantW := float64(p.Cores) * p.Power.IdleWatts(p.Levels[0])
	if math.Abs(rep.AvgPowerW-wantW) > 1e-6 {
		t.Fatalf("idle power %.3f W, want %.3f", rep.AvgPowerW, wantW)
	}
	if rep.DeadlineMisses != 0 {
		t.Fatal("idle slot reported misses")
	}
}

func TestSimulateSlotBusyVsIdleEnergy(t *testing.T) {
	p := XeonE5_2667V4()
	slot := time.Second / 24
	mk := func(load time.Duration, idleLevel int) []CorePlan {
		plans := make([]CorePlan, p.Cores)
		plans[0] = CorePlan{LoadAtFmax: load, BusyLevel: p.MaxLevel(), IdleLevel: idleLevel}
		return plans
	}
	// Same work, slack at fmin vs slack at fmax: fmin must cost less.
	repMin, err := p.SimulateSlot(mk(10*time.Millisecond, p.MinLevel()), slot)
	if err != nil {
		t.Fatal(err)
	}
	repMax, err := p.SimulateSlot(mk(10*time.Millisecond, p.MaxLevel()), slot)
	if err != nil {
		t.Fatal(err)
	}
	if repMin.EnergyJ >= repMax.EnergyJ {
		t.Fatalf("fmin slack %.4f J ≥ fmax slack %.4f J", repMin.EnergyJ, repMax.EnergyJ)
	}
}

func TestSimulateSlotDeadlineMissAndCarryOver(t *testing.T) {
	p := XeonE5_2667V4()
	slot := time.Second / 24
	plans := make([]CorePlan, p.Cores)
	// 60 ms of work at fmax in a 41.7 ms slot.
	plans[3] = CorePlan{LoadAtFmax: 60 * time.Millisecond, BusyLevel: p.MaxLevel(), IdleLevel: p.MinLevel()}
	rep, err := p.SimulateSlot(plans, slot)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeadlineMisses != 1 {
		t.Fatalf("misses = %d, want 1", rep.DeadlineMisses)
	}
	carry := rep.CarryOver[3]
	want := 60*time.Millisecond - slot
	if d := carry - want; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("carry-over = %v, want ≈%v", carry, want)
	}
	if rep.BusyTime[3] != slot {
		t.Fatalf("busy time %v, want full slot", rep.BusyTime[3])
	}
}

func TestSimulateSlotCarryOverScalesWithFrequency(t *testing.T) {
	p := XeonE5_2667V4()
	slot := time.Second / 24
	plans := make([]CorePlan, p.Cores)
	// Work fits at fmax but not at fmin.
	plans[0] = CorePlan{LoadAtFmax: 35 * time.Millisecond, BusyLevel: p.MinLevel(), IdleLevel: p.MinLevel()}
	rep, err := p.SimulateSlot(plans, slot)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeadlineMisses != 1 {
		t.Fatalf("running 35 ms@fmax of work at 2.9 GHz must overrun: misses=%d", rep.DeadlineMisses)
	}
	// The carried work, re-expressed at fmax, must keep total work
	// conserved: executed (slot at 2.9 GHz → slot·2.9/3.6 at fmax) +
	// carry == 35 ms.
	executedAtFmax := time.Duration(float64(slot) * 2.9 / 3.6)
	total := executedAtFmax + rep.CarryOver[0]
	if d := total - 35*time.Millisecond; d < -10*time.Microsecond || d > 10*time.Microsecond {
		t.Fatalf("work not conserved: executed %v + carry %v != 35ms", executedAtFmax, rep.CarryOver[0])
	}
}

func TestSimulateSlotTransitionsCost(t *testing.T) {
	p := XeonE5_2667V4()
	slot := time.Second / 24
	base := make([]CorePlan, p.Cores)
	base[0] = CorePlan{LoadAtFmax: 10 * time.Millisecond, BusyLevel: p.MaxLevel(), IdleLevel: p.MinLevel()}
	with := make([]CorePlan, p.Cores)
	with[0] = base[0]
	with[0].Transitions = 2
	a, err := p.SimulateSlot(base, slot)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.SimulateSlot(with, slot)
	if err != nil {
		t.Fatal(err)
	}
	if b.BusyTime[0] != a.BusyTime[0]+2*p.DVFSLatency {
		t.Fatalf("transition latency not charged: %v vs %v", b.BusyTime[0], a.BusyTime[0])
	}
}

func TestSimulateSlotValidation(t *testing.T) {
	p := XeonE5_2667V4()
	slot := time.Second / 24
	if _, err := p.SimulateSlot(make([]CorePlan, 3), slot); err == nil {
		t.Fatal("accepted wrong plan count")
	}
	if _, err := p.SimulateSlot(make([]CorePlan, p.Cores), 0); err == nil {
		t.Fatal("accepted zero slot")
	}
	bad := make([]CorePlan, p.Cores)
	bad[0].BusyLevel = 99
	if _, err := p.SimulateSlot(bad, slot); err == nil {
		t.Fatal("accepted bad level")
	}
	bad2 := make([]CorePlan, p.Cores)
	bad2[0].LoadAtFmax = -time.Second
	if _, err := p.SimulateSlot(bad2, slot); err == nil {
		t.Fatal("accepted negative load")
	}
}

func TestLevelByHz(t *testing.T) {
	p := XeonE5_2667V4()
	i, err := p.LevelByHz(3.2e9)
	if err != nil || i != 1 {
		t.Fatalf("LevelByHz(3.2GHz) = %d, %v", i, err)
	}
	if _, err := p.LevelByHz(1e9); err == nil {
		t.Fatal("accepted unknown frequency")
	}
}

func TestEnergyNonNegativeProperty(t *testing.T) {
	p := XeonE5_2667V4()
	slot := time.Second / 24
	f := func(loads [8]uint16, levels [8]uint8) bool {
		plans := make([]CorePlan, p.Cores)
		for i := 0; i < 8; i++ {
			plans[i] = CorePlan{
				LoadAtFmax: time.Duration(loads[i]%50) * time.Millisecond,
				BusyLevel:  int(levels[i]) % len(p.Levels),
				IdleLevel:  int(levels[i]+1) % len(p.Levels),
			}
		}
		rep, err := p.SimulateSlot(plans, slot)
		if err != nil {
			return false
		}
		if rep.EnergyJ < 0 || rep.AvgPowerW < 0 {
			return false
		}
		for i := range rep.BusyTime {
			if rep.BusyTime[i] > slot || rep.CarryOver[i] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTotalsAccumulateSlotReports(t *testing.T) {
	p := XeonE5_2667V4()
	slot := time.Second / 24
	// One idle slot, one overloaded slot.
	idle := make([]CorePlan, p.Cores)
	for i := range idle {
		idle[i] = CorePlan{Gated: true}
	}
	over := make([]CorePlan, p.Cores)
	for i := range over {
		over[i] = CorePlan{Gated: true}
	}
	over[0] = CorePlan{LoadAtFmax: 2 * slot, BusyLevel: p.MaxLevel(), IdleLevel: p.MinLevel()}

	var tot Totals
	tot.Add(nil) // nil-safe
	r1, err := p.SimulateSlot(idle, slot)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.SimulateSlot(over, slot)
	if err != nil {
		t.Fatal(err)
	}
	tot.Add(r1)
	tot.Add(r2)

	if tot.Slots != 2 || tot.Time != 2*slot {
		t.Fatalf("slots=%d time=%v", tot.Slots, tot.Time)
	}
	if want := r1.EnergyJ + r2.EnergyJ; tot.EnergyJ != want {
		t.Fatalf("energy %v, want %v", tot.EnergyJ, want)
	}
	if tot.DeadlineMisses != 1 {
		t.Fatalf("misses = %d, want 1", tot.DeadlineMisses)
	}
	if tot.CarryOver <= 0 {
		t.Fatal("no carry-over accumulated from the overloaded slot")
	}
	if tot.PeakPowerW != r2.AvgPowerW {
		t.Fatalf("peak %v, want the overloaded slot's %v", tot.PeakPowerW, r2.AvgPowerW)
	}
	if avg := tot.AvgPowerW(); avg <= 0 || avg > tot.PeakPowerW {
		t.Fatalf("avg power %v out of range", avg)
	}
	var empty Totals
	if empty.AvgPowerW() != 0 {
		t.Fatal("empty totals must report zero power")
	}
}

// TestValidateRejectsNonFinitePlatform is the regression test for the
// power-math bug: NaN/Inf parameters pass ordinary range checks (NaN < 0
// is false), flow into the slot energy model, and yield a SlotReport whose
// AvgPowerW/EnergyJ encoding/json refuses to marshal — killing JSONL and
// metrics lines downstream. Validate must catch them at the source.
func TestValidateRejectsNonFinitePlatform(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	mutations := []func(*Platform){
		func(p *Platform) { p.Levels[0].Volt = nan },
		func(p *Platform) { p.Levels[1].Hz = inf },
		func(p *Platform) { p.Power.StaticW = inf },
		func(p *Platform) { p.Power.StaticW = nan },
		func(p *Platform) { p.Power.CeffWPerV2GHz = nan },
		func(p *Platform) { p.Power.IdleFrac = nan },
		func(p *Platform) { p.Power.GatedW = nan },
	}
	for i, mutate := range mutations {
		p := XeonE5_2667V4()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: non-finite platform passed validation", i)
		}
	}
}

// TestSlotReportJSONSafe pins the contract end to end: for any platform
// SimulateSlot accepts, the resulting report must be marshalable — no
// NaN/Inf may reach AvgPowerW or EnergyJ. Pre-fix, a NaN supply voltage
// passed Validate and produced a report json.Marshal rejects.
func TestSlotReportJSONSafe(t *testing.T) {
	p := XeonE5_2667V4()
	p.Levels[2].Volt = math.NaN()
	plans := make([]CorePlan, p.Cores)
	plans[0] = CorePlan{LoadAtFmax: 10 * time.Millisecond, BusyLevel: 2}
	rep, err := p.SimulateSlot(plans, time.Second/24)
	if err != nil {
		return // rejected at validation — the fixed behavior
	}
	if _, merr := json.Marshal(rep); merr != nil {
		t.Fatalf("SimulateSlot accepted the platform but its report is not marshalable: %v", merr)
	}
}
