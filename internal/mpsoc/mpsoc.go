// Package mpsoc models the execution platform of the paper: a multicore
// server with per-core DVFS (the evaluation machine is four 8-core Intel
// Xeon E5-2667 processors with operating points 2.9, 3.2 and 3.6 GHz and a
// 10 µs DVFS transition latency). The model provides what the scheduler
// (internal/sched) consumes — core counts, frequency levels and slot-based
// timing — and what the experiments report — per-slot energy and power
// from a static + dynamic (C·V²·f) power model.
//
// The paper measures a real server; this package substitutes a calibrated
// simulator. The substitution is sound because Algorithm 2 takes only
// per-thread CPU-time estimates as input and emits core/frequency
// assignments; feeding it measured Go encode times exercises the identical
// decision logic (see DESIGN.md).
package mpsoc

import (
	"fmt"
	"math"
	"time"
)

// finite reports whether x is a usable real number. Validation uses it
// because NaN slips through ordinary range checks (NaN < 0 is false), and
// one non-finite platform parameter turns every downstream energy figure
// into NaN/Inf — which encoding/json refuses to marshal, silently killing
// JSONL and metrics lines built from the reports.
func finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// FreqLevel is one DVFS operating point.
type FreqLevel struct {
	// Hz is the core clock frequency.
	Hz float64
	// Volt is the supply voltage at this frequency.
	Volt float64
}

// GHz returns the frequency in GHz.
func (f FreqLevel) GHz() float64 { return f.Hz / 1e9 }

// PowerModel parametrizes per-core power: P_busy = Static + Ceff·V²·f and
// P_idle = Static + IdleFrac·Ceff·V²·f (clock tree and uncore keep
// switching while idle, at a fraction of the busy activity factor).
type PowerModel struct {
	// StaticW is the leakage (voltage-independent simplification) per core.
	StaticW float64
	// CeffWPerV2GHz is the effective switched capacitance in W/(V²·GHz).
	CeffWPerV2GHz float64
	// IdleFrac is the idle activity factor in [0, 1).
	IdleFrac float64
	// GatedW is the power of a power-gated core (deep C-state): clocks
	// stopped, most of the core rail collapsed. Cores with no work in a
	// slot can be gated instead of idled.
	GatedW float64
}

// BusyWatts returns the active power of one core at level f.
func (m PowerModel) BusyWatts(f FreqLevel) float64 {
	return m.StaticW + m.CeffWPerV2GHz*f.Volt*f.Volt*f.GHz()
}

// IdleWatts returns the idle power of one core clocked at level f.
func (m PowerModel) IdleWatts(f FreqLevel) float64 {
	return m.StaticW + m.IdleFrac*m.CeffWPerV2GHz*f.Volt*f.Volt*f.GHz()
}

// Platform describes the target MPSoC.
type Platform struct {
	// Cores is the number of physical cores usable for tile threads.
	Cores int
	// ThreadsPerCore models SMT contexts; the schedulers in this
	// repository allocate physical cores (as the paper does: one thread
	// per tile, tiles are compute-bound so SMT gains are second order).
	ThreadsPerCore int
	// Levels are the DVFS operating points in ascending frequency order.
	Levels []FreqLevel
	// DVFSLatency is the frequency transition latency.
	DVFSLatency time.Duration
	// Power is the per-core power model.
	Power PowerModel
}

// XeonE5_2667V4 returns the paper's evaluation platform: 4 processors × 8
// cores, 2 SMT threads, operating points 2.9/3.2/3.6 GHz, 10 µs DVFS
// latency. Voltages follow a typical V-f curve for the part; the power
// model is calibrated so a fully busy core at 3.6 GHz draws ≈13 W (135 W
// TDP per 8-core processor, uncore excluded).
func XeonE5_2667V4() *Platform {
	return &Platform{
		Cores:          32,
		ThreadsPerCore: 2,
		Levels: []FreqLevel{
			{Hz: 2.9e9, Volt: 0.95},
			{Hz: 3.2e9, Volt: 1.00},
			{Hz: 3.6e9, Volt: 1.10},
		},
		DVFSLatency: 10 * time.Microsecond,
		Power: PowerModel{
			StaticW:       1.5,
			CeffWPerV2GHz: 2.6, // 1.5 + 2.6·1.1²·3.6 ≈ 12.8 W busy at fmax
			IdleFrac:      0.25,
			GatedW:        0.7,
		},
	}
}

// Validate reports platform description errors.
func (p *Platform) Validate() error {
	if p.Cores <= 0 {
		return fmt.Errorf("mpsoc: %d cores", p.Cores)
	}
	if p.ThreadsPerCore <= 0 {
		return fmt.Errorf("mpsoc: %d threads per core", p.ThreadsPerCore)
	}
	if len(p.Levels) == 0 {
		return fmt.Errorf("mpsoc: no frequency levels")
	}
	for i, l := range p.Levels {
		if !finite(l.Hz) || !finite(l.Volt) || l.Hz <= 0 || l.Volt <= 0 {
			return fmt.Errorf("mpsoc: level %d invalid (%v Hz, %v V)", i, l.Hz, l.Volt)
		}
		if i > 0 {
			prev := p.Levels[i-1]
			if l.Hz <= prev.Hz || l.Volt < prev.Volt {
				return fmt.Errorf("mpsoc: levels not ascending at %d", i)
			}
		}
	}
	if p.DVFSLatency < 0 {
		return fmt.Errorf("mpsoc: negative DVFS latency")
	}
	if !finite(p.Power.StaticW) || !finite(p.Power.CeffWPerV2GHz) || !finite(p.Power.IdleFrac) || !finite(p.Power.GatedW) {
		return fmt.Errorf("mpsoc: non-finite power model %+v", p.Power)
	}
	if p.Power.StaticW < 0 || p.Power.CeffWPerV2GHz <= 0 || p.Power.IdleFrac < 0 || p.Power.IdleFrac >= 1 {
		return fmt.Errorf("mpsoc: invalid power model %+v", p.Power)
	}
	if p.Power.GatedW < 0 || p.Power.GatedW > p.Power.IdleWatts(p.Levels[0]) {
		return fmt.Errorf("mpsoc: gated power %v above idle power", p.Power.GatedW)
	}
	return nil
}

// MinLevel returns the index of the lowest operating point.
func (p *Platform) MinLevel() int { return 0 }

// MaxLevel returns the index of the highest operating point.
func (p *Platform) MaxLevel() int { return len(p.Levels) - 1 }

// Fmax returns the highest-frequency level.
func (p *Platform) Fmax() FreqLevel { return p.Levels[p.MaxLevel()] }

// ScaleToLevel converts a CPU time measured (or estimated) at fmax into
// execution time at level l: work is frequency-bound, so t_l = t_max·fmax/f_l.
func (p *Platform) ScaleToLevel(atFmax time.Duration, level int) time.Duration {
	f := p.Levels[level]
	return time.Duration(float64(atFmax) * p.Fmax().Hz / f.Hz)
}

// CorePlan is one core's plan for a scheduling slot: how much work it
// executes (expressed as CPU time at fmax), at which level it executes,
// and at which level it idles for the remaining slack.
type CorePlan struct {
	// LoadAtFmax is the CPU time of the assigned work measured at fmax.
	LoadAtFmax time.Duration
	// BusyLevel indexes Platform.Levels for the execution phase.
	BusyLevel int
	// IdleLevel indexes Platform.Levels for the slack phase.
	IdleLevel int
	// Transitions counts DVFS switches charged to this core this slot.
	Transitions int
	// Gated parks the core in a deep C-state for the whole slot. Only
	// valid for cores with no load.
	Gated bool
}

// SlotReport summarizes the simulation of one slot.
type SlotReport struct {
	// Slot is the simulated slot length (1/FPS in the paper).
	Slot time.Duration
	// EnergyJ is the total energy of all cores over the slot.
	EnergyJ float64
	// AvgPowerW is EnergyJ / Slot.
	AvgPowerW float64
	// BusyTime per core (post frequency scaling, incl. DVFS latency).
	BusyTime []time.Duration
	// CarryOver is per-core work (at fmax) that did not fit in the slot;
	// Algorithm 2 shifts it to the next interval.
	CarryOver []time.Duration
	// DeadlineMisses counts cores whose work overran the slot.
	DeadlineMisses int
}

// SimulateSlot executes one slot of the given per-core plans and returns
// timing and energy. Plans must have one entry per platform core; absent
// cores idle at their IdleLevel for the whole slot.
func (p *Platform) SimulateSlot(plans []CorePlan, slot time.Duration) (*SlotReport, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if slot <= 0 {
		return nil, fmt.Errorf("mpsoc: non-positive slot %v", slot)
	}
	if len(plans) != p.Cores {
		return nil, fmt.Errorf("mpsoc: %d plans for %d cores", len(plans), p.Cores)
	}
	rep := &SlotReport{
		Slot:      slot,
		BusyTime:  make([]time.Duration, p.Cores),
		CarryOver: make([]time.Duration, p.Cores),
	}
	for i, plan := range plans {
		if plan.LoadAtFmax < 0 {
			return nil, fmt.Errorf("mpsoc: core %d negative load", i)
		}
		if plan.BusyLevel < 0 || plan.BusyLevel >= len(p.Levels) ||
			plan.IdleLevel < 0 || plan.IdleLevel >= len(p.Levels) {
			return nil, fmt.Errorf("mpsoc: core %d level out of range", i)
		}
		if plan.Gated {
			if plan.LoadAtFmax > 0 {
				return nil, fmt.Errorf("mpsoc: core %d gated with pending load", i)
			}
			rep.EnergyJ += p.Power.GatedW * slot.Seconds()
			continue
		}
		busy := p.ScaleToLevel(plan.LoadAtFmax, plan.BusyLevel)
		busy += time.Duration(plan.Transitions) * p.DVFSLatency
		if busy > slot {
			// Deadline miss: execute until the slot ends, carry the rest
			// (expressed back at fmax) into the next interval.
			overrun := busy - slot
			f := p.Levels[plan.BusyLevel]
			rep.CarryOver[i] = time.Duration(float64(overrun) * f.Hz / p.Fmax().Hz)
			busy = slot
			rep.DeadlineMisses++
		}
		rep.BusyTime[i] = busy
		idle := slot - busy
		eBusy := p.Power.BusyWatts(p.Levels[plan.BusyLevel]) * busy.Seconds()
		eIdle := p.Power.IdleWatts(p.Levels[plan.IdleLevel]) * idle.Seconds()
		rep.EnergyJ += eBusy + eIdle
	}
	// Guarded like Totals.AvgPowerW: a degenerate slot must yield 0, not
	// the NaN/Inf that encoding/json refuses to marshal (the entry check
	// rejects non-positive slots today; this keeps the report JSON-safe
	// even if that precondition ever loosens).
	if sec := slot.Seconds(); sec > 0 {
		rep.AvgPowerW = rep.EnergyJ / sec
	}
	return rep, nil
}

// Totals accumulates SlotReports across a service run — the long-horizon
// view a serving loop reports (total energy, deadline misses, carry-over)
// where SlotReport is the per-slot view.
type Totals struct {
	// Slots counts accumulated reports; Time is their summed slot length.
	Slots int
	Time  time.Duration
	// EnergyJ is the total energy over all accumulated slots.
	EnergyJ float64
	// PeakPowerW is the highest per-slot average power seen.
	PeakPowerW float64
	// DeadlineMisses sums the per-slot miss counts.
	DeadlineMisses int
	// CarryOver sums the work (at fmax) that slipped past its slot.
	CarryOver time.Duration
}

// Add folds one slot report into the totals. Nil reports are ignored so
// callers can pass partial outcomes unconditionally.
func (t *Totals) Add(r *SlotReport) {
	if r == nil {
		return
	}
	t.Slots++
	t.Time += r.Slot
	t.EnergyJ += r.EnergyJ
	if r.AvgPowerW > t.PeakPowerW {
		t.PeakPowerW = r.AvgPowerW
	}
	t.DeadlineMisses += r.DeadlineMisses
	for _, c := range r.CarryOver {
		t.CarryOver += c
	}
}

// AvgPowerW returns the average power over all accumulated slots (0 when
// empty).
func (t *Totals) AvgPowerW() float64 {
	if t.Time <= 0 {
		return 0
	}
	return t.EnergyJ / t.Time.Seconds()
}

// LevelByHz returns the index of the level with the given frequency.
func (p *Platform) LevelByHz(hz float64) (int, error) {
	for i, l := range p.Levels {
		if l.Hz == hz {
			return i, nil
		}
	}
	return 0, fmt.Errorf("mpsoc: no level at %v Hz", hz)
}
