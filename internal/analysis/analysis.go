// Package analysis implements the paper's fast per-tile content evaluation
// (Sec. III-A): texture classification from the coefficient of variation of
// luma samples (Eq. 1) and a six-point pixel-comparison motion metric
// (Eqs. 2–3). These measures must be cheap — they run for every candidate
// tile of every analyzed frame — so both are single-pass over the tile.
package analysis

import (
	"fmt"

	"repro/internal/tiling"
	"repro/internal/video"
)

// TextureClass is the three-level texture classification of Eq. 1.
type TextureClass int

// Texture classes in increasing diversity of luma.
const (
	TextureLow TextureClass = iota
	TextureMedium
	TextureHigh
)

// String returns the class name.
func (t TextureClass) String() string {
	switch t {
	case TextureLow:
		return "low"
	case TextureMedium:
		return "medium"
	case TextureHigh:
		return "high"
	default:
		return fmt.Sprintf("TextureClass(%d)", int(t))
	}
}

// MotionClass is the two-level motion classification of Eq. 3. The paper
// notes two levels suffice for all real-life bio-medical case studies.
type MotionClass int

// Motion classes.
const (
	MotionLow MotionClass = iota
	MotionHigh
)

// String returns the class name.
func (m MotionClass) String() string {
	switch m {
	case MotionLow:
		return "low"
	case MotionHigh:
		return "high"
	default:
		return fmt.Sprintf("MotionClass(%d)", int(m))
	}
}

// Config holds the classifier thresholds and weights. The zero value is not
// meaningful; use DefaultConfig.
type Config struct {
	// TextureLowTh and TextureHighTh are T_th,l and T_th,h of Eq. 1:
	// CV ≤ low → low texture; CV > high → high texture.
	TextureLowTh, TextureHighTh float64
	// Alpha, Beta, Gamma weight the corner, center and maximum-point
	// comparisons in Eq. 2. The paper selects 1, 3, 3: medical images
	// require larger coefficients for the center and the maximum point.
	Alpha, Beta, Gamma int
	// MotionTh is M_th of Eq. 3 (paper: 3).
	MotionTh int
	// PixelTolerance widens the pixel-equality test of Eq. 2: samples are
	// "equal" when |a−b| ≤ tolerance. The paper compares raw clinical
	// pixels; videos with sensor noise need a tolerance or every probe
	// would always report motion. 4 sample levels absorbs ~2.3 counts of
	// noise sigma while keeping real structural motion detectable.
	PixelTolerance int
	// MeanFloor stabilizes the coefficient of variation on dark regions:
	// CV = stddev / max(mean, MeanFloor). The raw ratio is scale
	// invariant, so a near-black noisy border would read as highly
	// textured even though it carries no information; clamping the
	// denominator restores the intended "texture = luma diversity that
	// costs encoding effort" semantics. 0 disables the floor.
	MeanFloor float64
}

// DefaultConfig returns the paper's parameters (α,β,γ = 1,3,3; M_th = 3)
// with thresholds calibrated on the synthetic corpus.
func DefaultConfig() Config {
	return Config{
		TextureLowTh:   0.15,
		TextureHighTh:  0.35,
		Alpha:          1,
		Beta:           3,
		Gamma:          3,
		MotionTh:       3,
		PixelTolerance: 4,
		MeanFloor:      32,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.TextureLowTh < 0 || c.TextureHighTh < c.TextureLowTh {
		return fmt.Errorf("analysis: invalid texture thresholds low=%v high=%v", c.TextureLowTh, c.TextureHighTh)
	}
	if c.Alpha < 0 || c.Beta < 0 || c.Gamma < 0 {
		return fmt.Errorf("analysis: negative weight α=%d β=%d γ=%d", c.Alpha, c.Beta, c.Gamma)
	}
	if c.MotionTh <= 0 {
		return fmt.Errorf("analysis: non-positive motion threshold %d", c.MotionTh)
	}
	if c.PixelTolerance < 0 {
		return fmt.Errorf("analysis: negative pixel tolerance %d", c.PixelTolerance)
	}
	if c.MeanFloor < 0 {
		return fmt.Errorf("analysis: negative mean floor %v", c.MeanFloor)
	}
	return nil
}

// CV returns the raw coefficient of variation (stddev/mean) of the luma
// samples inside r. A zero-mean (all black) region returns 0: it carries no
// texture. Classification should normally go through Config.CV, which
// applies the configured mean floor.
func CV(p *video.Plane, r tiling.Rect) (float64, error) {
	sp, err := p.SubPlane(r.X, r.Y, r.W, r.H)
	if err != nil {
		return 0, err
	}
	mean, stddev := sp.MeanStddev()
	if mean == 0 {
		return 0, nil
	}
	return stddev / mean, nil
}

// CV returns the floor-stabilized coefficient of variation of r (see
// Config.MeanFloor).
func (c Config) CV(p *video.Plane, r tiling.Rect) (float64, error) {
	sp, err := p.SubPlane(r.X, r.Y, r.W, r.H)
	if err != nil {
		return 0, err
	}
	mean, stddev := sp.MeanStddev()
	if mean < c.MeanFloor {
		mean = c.MeanFloor
	}
	if mean == 0 {
		return 0, nil
	}
	return stddev / mean, nil
}

// ClassifyTexture applies Eq. 1 to the coefficient of variation.
func (c Config) ClassifyTexture(cv float64) TextureClass {
	switch {
	case cv <= c.TextureLowTh:
		return TextureLow
	case cv <= c.TextureHighTh:
		return TextureMedium
	default:
		return TextureHigh
	}
}

// MotionScore computes M of Eq. 2 for rectangle r between the current and
// previous frames: a weighted count of differing probe pixels at the four
// corners (weight α each), the center (β) and the maximum-luma point (γ).
func (c Config) MotionScore(cur, prev *video.Plane, r tiling.Rect) (int, error) {
	if cur.W != prev.W || cur.H != prev.H {
		return 0, fmt.Errorf("analysis: frame size mismatch %dx%d vs %dx%d: %w",
			cur.W, cur.H, prev.W, prev.H, video.ErrSizeMismatch)
	}
	if r.X < 0 || r.Y < 0 || r.X+r.W > cur.W || r.Y+r.H > cur.H || r.Empty() {
		return 0, fmt.Errorf("analysis: rect %s outside plane %dx%d", r, cur.W, cur.H)
	}
	differs := func(x, y int) bool {
		d := int(cur.At(x, y)) - int(prev.At(x, y))
		if d < 0 {
			d = -d
		}
		return d > c.PixelTolerance
	}
	m := 0
	// Four corners, weight α each.
	corners := [4][2]int{
		{r.X, r.Y},
		{r.X + r.W - 1, r.Y},
		{r.X, r.Y + r.H - 1},
		{r.X + r.W - 1, r.Y + r.H - 1},
	}
	for _, xy := range corners {
		if differs(xy[0], xy[1]) {
			m += c.Alpha
		}
	}
	// Center, weight β.
	if differs(r.X+r.W/2, r.Y+r.H/2) {
		m += c.Beta
	}
	// Maximum-luma point of the current tile, weight γ.
	sub := cur.MustSubPlane(r.X, r.Y, r.W, r.H)
	_, mx, my := sub.Max()
	if differs(r.X+mx, r.Y+my) {
		m += c.Gamma
	}
	return m, nil
}

// ClassifyMotion applies Eq. 3 to the motion score.
func (c Config) ClassifyMotion(score int) MotionClass {
	if score >= c.MotionTh {
		return MotionHigh
	}
	return MotionLow
}

// TileContent is the full content descriptor of one tile.
type TileContent struct {
	Tile    tiling.Tile
	CV      float64
	Texture TextureClass
	Score   int
	Motion  MotionClass
}

// Evaluator classifies tiles of a current frame against a previous frame.
// A nil previous frame (sequence start) classifies all motion as high,
// which is the conservative choice: the first frame of a video is encoded
// with the full-accuracy search anyway.
type Evaluator struct {
	cfg  Config
	cur  *video.Plane
	prev *video.Plane
}

// NewEvaluator builds an evaluator over the current (and optionally
// previous) luma planes.
func NewEvaluator(cfg Config, cur, prev *video.Plane) (*Evaluator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cur == nil {
		return nil, fmt.Errorf("analysis: nil current plane")
	}
	if prev != nil && (prev.W != cur.W || prev.H != cur.H) {
		return nil, fmt.Errorf("analysis: prev %dx%d vs cur %dx%d: %w", prev.W, prev.H, cur.W, cur.H, video.ErrSizeMismatch)
	}
	return &Evaluator{cfg: cfg, cur: cur, prev: prev}, nil
}

// Config returns the evaluator's configuration.
func (e *Evaluator) Config() Config { return e.cfg }

// Evaluate classifies a single tile.
func (e *Evaluator) Evaluate(t tiling.Tile) (TileContent, error) {
	cv, err := e.cfg.CV(e.cur, t.Rect)
	if err != nil {
		return TileContent{}, err
	}
	tc := TileContent{Tile: t, CV: cv, Texture: e.cfg.ClassifyTexture(cv)}
	if e.prev == nil {
		tc.Score = e.cfg.MotionTh
		tc.Motion = MotionHigh
		return tc, nil
	}
	score, err := e.cfg.MotionScore(e.cur, e.prev, t.Rect)
	if err != nil {
		return TileContent{}, err
	}
	tc.Score = score
	tc.Motion = e.cfg.ClassifyMotion(score)
	return tc, nil
}

// EvaluateGrid classifies every tile of a grid.
func (e *Evaluator) EvaluateGrid(g *tiling.Grid) ([]TileContent, error) {
	out := make([]TileContent, 0, len(g.Tiles))
	for _, t := range g.Tiles {
		tc, err := e.Evaluate(t)
		if err != nil {
			return nil, err
		}
		out = append(out, tc)
	}
	return out, nil
}

// LowContent implements tiling.ContentProbe: a rectangle is low content
// when its texture and motion are both classified low. (Paper Sec. III-B:
// corner/border growth continues "until the texture or the motion is not
// low anymore".)
func (e *Evaluator) LowContent(r tiling.Rect) bool {
	tc, err := e.Evaluate(tiling.Tile{Rect: r})
	if err != nil {
		return false
	}
	return tc.Texture == TextureLow && tc.Motion == MotionLow
}

// CenterTexture implements tiling.ContentProbe, mapping the texture class
// of the center region to the re-tiler's 0/1/2 density scale. Motion is not
// considered: the paper observes center motion is consistent and uses only
// texture for the center split.
func (e *Evaluator) CenterTexture(r tiling.Rect) int {
	cv, err := e.cfg.CV(e.cur, r)
	if err != nil {
		return 2 // unknown: assume dense content
	}
	return int(e.cfg.ClassifyTexture(cv))
}

var _ tiling.ContentProbe = (*Evaluator)(nil)

// FrameMotionDirection estimates the dominant global motion of a frame by
// coarse block matching against the previous frame over a ±radius window.
// Bio-medical frames move rigidly (Sec. III-A), so one estimate per frame
// suffices; the motion package uses it to orient the directional search
// algorithms at GOP boundaries. The result is expressed in motion-vector
// space (reference position = current position + vector), matching the
// codec: content panning right by k yields (−k, 0).
func FrameMotionDirection(cur, prev *video.Plane, radius int) (dx, dy int) {
	if prev == nil || radius <= 0 {
		return 0, 0
	}
	const block = 32
	// Use the central region only: the borders are static background.
	x0, y0 := cur.W/4, cur.H/4
	x1, y1 := cur.W-cur.W/4, cur.H-cur.H/4
	best := int64(1) << 62
	for cy := -radius; cy <= radius; cy++ {
		for cx := -radius; cx <= radius; cx++ {
			var cost int64
			for by := y0; by+block <= y1; by += block * 2 {
				for bx := x0; bx+block <= x1; bx += block * 2 {
					rx, ry := bx+cx, by+cy
					if rx < 0 || ry < 0 || rx+block > prev.W || ry+block > prev.H {
						cost += 1 << 20
						continue
					}
					cost += blockSAD(cur, prev, bx, by, rx, ry, block)
				}
			}
			// Prefer the zero vector on ties (and smaller vectors overall).
			cost += int64(abs(cx)+abs(cy)) * 4
			if cost < best {
				best, dx, dy = cost, cx, cy
			}
		}
	}
	return dx, dy
}

func blockSAD(a, b *video.Plane, ax, ay, bx, by, n int) int64 {
	var sum int64
	for y := 0; y < n; y++ {
		ra := a.Pix[(ay+y)*a.Stride+ax : (ay+y)*a.Stride+ax+n]
		rb := b.Pix[(by+y)*b.Stride+bx : (by+y)*b.Stride+bx+n]
		for i := range ra {
			d := int(ra[i]) - int(rb[i])
			if d < 0 {
				d = -d
			}
			sum += int64(d)
		}
	}
	return sum
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
