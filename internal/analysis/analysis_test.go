package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/medgen"
	"repro/internal/tiling"
	"repro/internal/video"
)

func mustEval(t *testing.T, cur, prev *video.Plane) *Evaluator {
	t.Helper()
	e, err := NewEvaluator(DefaultConfig(), cur, prev)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCVConstantPlaneIsZero(t *testing.T) {
	p := video.NewPlane(32, 32)
	p.Fill(100)
	cv, err := CV(p, tiling.Rect{X: 0, Y: 0, W: 32, H: 32})
	if err != nil {
		t.Fatal(err)
	}
	if cv != 0 {
		t.Fatalf("CV constant = %v, want 0", cv)
	}
}

func TestCVAllBlackIsZero(t *testing.T) {
	p := video.NewPlane(8, 8)
	cv, err := CV(p, tiling.Rect{W: 8, H: 8})
	if err != nil {
		t.Fatal(err)
	}
	if cv != 0 {
		t.Fatalf("CV black = %v, want 0", cv)
	}
}

func TestCVKnownValue(t *testing.T) {
	// Two values 10 and 20: mean 15, stddev 5 → CV = 1/3.
	p := video.NewPlane(2, 1)
	p.Set(0, 0, 10)
	p.Set(1, 0, 20)
	cv, err := CV(p, tiling.Rect{W: 2, H: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cv-1.0/3) > 1e-9 {
		t.Fatalf("CV = %v, want 1/3", cv)
	}
}

func TestConfigCVAppliesMeanFloor(t *testing.T) {
	// Dark noisy region: raw CV explodes, floored CV stays small.
	p := video.NewPlane(16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			p.Set(x, y, uint8(4+(x+y)%4)) // mean ≈ 5.5, stddev ≈ 1.1
		}
	}
	r := tiling.Rect{W: 16, H: 16}
	raw, err := CV(p, r)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	floored, err := cfg.CV(p, r)
	if err != nil {
		t.Fatal(err)
	}
	if floored >= raw {
		t.Fatalf("floored CV %v not below raw %v", floored, raw)
	}
	if cfg.ClassifyTexture(floored) != TextureLow {
		t.Fatalf("dark region classified %v, want low", cfg.ClassifyTexture(floored))
	}
}

func TestClassifyTextureThresholds(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.ClassifyTexture(cfg.TextureLowTh); got != TextureLow {
		t.Fatalf("at low threshold: %v (boundary is inclusive per Eq. 1)", got)
	}
	if got := cfg.ClassifyTexture(cfg.TextureLowTh + 1e-9); got != TextureMedium {
		t.Fatalf("just above low threshold: %v", got)
	}
	if got := cfg.ClassifyTexture(cfg.TextureHighTh); got != TextureMedium {
		t.Fatalf("at high threshold: %v", got)
	}
	if got := cfg.ClassifyTexture(cfg.TextureHighTh + 1e-9); got != TextureHigh {
		t.Fatalf("just above high threshold: %v", got)
	}
}

func TestMotionScoreStaticIsZero(t *testing.T) {
	p := video.NewPlane(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			p.Set(x, y, uint8(x*3+y*5))
		}
	}
	cfg := DefaultConfig()
	m, err := cfg.MotionScore(p, p.Clone(), tiling.Rect{W: 64, H: 64})
	if err != nil {
		t.Fatal(err)
	}
	if m != 0 {
		t.Fatalf("static motion score = %d, want 0", m)
	}
}

func TestMotionScoreWeights(t *testing.T) {
	cfg := DefaultConfig()
	mk := func() (*video.Plane, *video.Plane) {
		cur, prev := video.NewPlane(33, 33), video.NewPlane(33, 33)
		cur.Fill(100)
		prev.Fill(100)
		return cur, prev
	}
	r := tiling.Rect{W: 33, H: 33}

	// One corner differing → α = 1. (The constant plane's max point is
	// position (0,0) by scan order — the same corner — so γ also fires;
	// use a distinct max point to isolate the corner.)
	cur, prev := mk()
	cur.Set(5, 5, 200) // max point at (5,5), unchanged? No: prev has 100.
	prev.Set(5, 5, 200)
	cur.Set(0, 0, 120) // corner differs
	m, err := cfg.MotionScore(cur, prev, r)
	if err != nil {
		t.Fatal(err)
	}
	if m != cfg.Alpha {
		t.Fatalf("corner-only score = %d, want α = %d", m, cfg.Alpha)
	}

	// Center differing → β = 3 (motion classifies high on its own).
	cur, prev = mk()
	cur.Set(5, 5, 200)
	prev.Set(5, 5, 200)
	cur.Set(16, 16, 250) // center pixel (33/2 = 16)... also becomes max!
	m, err = cfg.MotionScore(cur, prev, r)
	if err != nil {
		t.Fatal(err)
	}
	// 250 > 200, so the max point moved to the center too: β + γ.
	if m != cfg.Beta+cfg.Gamma {
		t.Fatalf("center+max score = %d, want β+γ = %d", m, cfg.Beta+cfg.Gamma)
	}
	if cfg.ClassifyMotion(m) != MotionHigh {
		t.Fatal("center+max change not classified high motion")
	}
}

func TestMotionScoreTolerance(t *testing.T) {
	cfg := DefaultConfig()
	cur, prev := video.NewPlane(16, 16), video.NewPlane(16, 16)
	cur.Fill(100)
	prev.Fill(100)
	// A change within tolerance is "equal".
	cur.Set(0, 0, uint8(100+cfg.PixelTolerance))
	m, err := cfg.MotionScore(cur, prev, tiling.Rect{W: 16, H: 16})
	if err != nil {
		t.Fatal(err)
	}
	if m != 0 {
		t.Fatalf("within-tolerance score = %d, want 0", m)
	}
}

func TestMotionScoreErrors(t *testing.T) {
	cfg := DefaultConfig()
	a, b := video.NewPlane(8, 8), video.NewPlane(16, 8)
	if _, err := cfg.MotionScore(a, b, tiling.Rect{W: 8, H: 8}); err == nil {
		t.Fatal("accepted mismatched planes")
	}
	c := video.NewPlane(8, 8)
	if _, err := cfg.MotionScore(a, c, tiling.Rect{X: 4, Y: 0, W: 8, H: 8}); err == nil {
		t.Fatal("accepted out-of-bounds rect")
	}
}

func TestEvaluatorNilPrevIsHighMotion(t *testing.T) {
	p := video.NewPlane(64, 64)
	e := mustEval(t, p, nil)
	tc, err := e.Evaluate(tiling.Tile{Rect: tiling.Rect{W: 64, H: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if tc.Motion != MotionHigh {
		t.Fatal("first frame should classify high motion")
	}
}

func TestEvaluatorValidation(t *testing.T) {
	p := video.NewPlane(8, 8)
	if _, err := NewEvaluator(DefaultConfig(), nil, nil); err == nil {
		t.Fatal("accepted nil current plane")
	}
	q := video.NewPlane(16, 8)
	if _, err := NewEvaluator(DefaultConfig(), p, q); err == nil {
		t.Fatal("accepted mismatched prev plane")
	}
	bad := DefaultConfig()
	bad.MotionTh = 0
	if _, err := NewEvaluator(bad, p, nil); err == nil {
		t.Fatal("accepted invalid config")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.TextureLowTh = -0.1 },
		func(c *Config) { c.TextureHighTh = c.TextureLowTh - 0.01 },
		func(c *Config) { c.Alpha = -1 },
		func(c *Config) { c.MotionTh = 0 },
		func(c *Config) { c.PixelTolerance = -1 },
		func(c *Config) { c.MeanFloor = -1 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

// Corpus tests: the classifier must reproduce the paper's observations on
// bio-medical content — low-content borders, high-content center.

func corpusFrames(t *testing.T, class medgen.Class, motion medgen.MotionKind) (*video.Plane, *video.Plane) {
	t.Helper()
	cfg := medgen.Default()
	cfg.Class = class
	cfg.Motion = motion
	cfg.Frames = 2
	g, err := medgen.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g.Frame(1).Y, g.Frame(0).Y
}

func TestCornersAreLowContentOnCorpus(t *testing.T) {
	for _, class := range []medgen.Class{medgen.Brain, medgen.Chest, medgen.Bone} {
		cur, prev := corpusFrames(t, class, medgen.Rotate)
		e := mustEval(t, cur, prev)
		for _, r := range []tiling.Rect{
			{X: 0, Y: 0, W: 64, H: 64},
			{X: 576, Y: 0, W: 64, H: 64},
			{X: 0, Y: 416, W: 64, H: 64},
			{X: 576, Y: 416, W: 64, H: 64},
		} {
			if !e.LowContent(r) {
				tc, _ := e.Evaluate(tiling.Tile{Rect: r})
				t.Errorf("class %v: corner %v not low content (CV %.3f, tex %v, M %d)",
					class, r, tc.CV, tc.Texture, tc.Score)
			}
		}
	}
}

func TestCenterIsNotLowOnCorpus(t *testing.T) {
	for _, class := range []medgen.Class{medgen.Brain, medgen.Chest, medgen.Bone} {
		cur, prev := corpusFrames(t, class, medgen.Rotate)
		e := mustEval(t, cur, prev)
		center := tiling.Rect{X: 192, Y: 144, W: 256, H: 192}
		tc, err := e.Evaluate(tiling.Tile{Rect: center})
		if err != nil {
			t.Fatal(err)
		}
		if tc.Texture == TextureLow {
			t.Errorf("class %v: center texture low (CV %.3f)", class, tc.CV)
		}
		if e.CenterTexture(center) == 0 {
			t.Errorf("class %v: CenterTexture reports 0", class)
		}
	}
}

func TestStillVideoClassifiesLowMotion(t *testing.T) {
	cur, prev := corpusFrames(t, medgen.Brain, medgen.Still)
	e := mustEval(t, cur, prev)
	grid := tiling.MustUniform(640, 480, 4, 4)
	tcs, err := e.EvaluateGrid(grid)
	if err != nil {
		t.Fatal(err)
	}
	high := 0
	for _, tc := range tcs {
		if tc.Motion == MotionHigh {
			high++
		}
	}
	if high > len(tcs)/4 {
		t.Fatalf("%d/%d tiles classified high motion on a still video", high, len(tcs))
	}
}

func TestRotatingVideoHasHighMotionCenter(t *testing.T) {
	cur, prev := corpusFrames(t, medgen.Brain, medgen.Rotate)
	e := mustEval(t, cur, prev)
	// Ring tiles around the center (the rotating anatomy's active area).
	high := 0
	probes := []tiling.Rect{
		{X: 160, Y: 120, W: 160, H: 120},
		{X: 320, Y: 120, W: 160, H: 120},
		{X: 160, Y: 240, W: 160, H: 120},
		{X: 320, Y: 240, W: 160, H: 120},
	}
	for _, r := range probes {
		tc, err := e.Evaluate(tiling.Tile{Rect: r})
		if err != nil {
			t.Fatal(err)
		}
		if tc.Motion == MotionHigh {
			high++
		}
	}
	if high < 2 {
		t.Fatalf("only %d/%d central tiles high motion on rotating video", high, len(probes))
	}
}

func TestEvaluateGridMatchesEvaluate(t *testing.T) {
	cur, prev := corpusFrames(t, medgen.Chest, medgen.Pan)
	e := mustEval(t, cur, prev)
	grid := tiling.MustUniform(640, 480, 3, 3)
	tcs, err := e.EvaluateGrid(grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(tcs) != 9 {
		t.Fatalf("%d contents for 9 tiles", len(tcs))
	}
	for i, tc := range tcs {
		single, err := e.Evaluate(grid.Tiles[i])
		if err != nil {
			t.Fatal(err)
		}
		if single != tc {
			t.Fatalf("tile %d: grid result %+v != single %+v", i, tc, single)
		}
	}
}

func TestFrameMotionDirectionPan(t *testing.T) {
	cfg := medgen.Default()
	cfg.Motion = medgen.Pan
	cfg.PanVX, cfg.PanVY = 3, 0
	cfg.Frames = 2
	g, err := medgen.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev, cur := g.Frame(0).Y, g.Frame(1).Y
	dx, dy := FrameMotionDirection(cur, prev, 4)
	// Content pans right by 3 px/frame, so in motion-vector space the
	// matching reference block sits 3 px to the left: (−3, 0).
	if dx != -3 || dy != 0 {
		t.Fatalf("direction = (%d,%d), want (-3,0)", dx, dy)
	}
}

func TestFrameMotionDirectionStill(t *testing.T) {
	cfg := medgen.Default()
	cfg.Motion = medgen.Still
	cfg.Frames = 2
	g, err := medgen.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dx, dy := FrameMotionDirection(g.Frame(1).Y, g.Frame(0).Y, 4)
	if dx != 0 || dy != 0 {
		t.Fatalf("direction = (%d,%d), want (0,0)", dx, dy)
	}
}

func TestFrameMotionDirectionNilPrev(t *testing.T) {
	p := video.NewPlane(64, 64)
	if dx, dy := FrameMotionDirection(p, nil, 4); dx != 0 || dy != 0 {
		t.Fatalf("nil prev direction = (%d,%d)", dx, dy)
	}
}

func TestLowContentPropertyNeverErrsOnValidRects(t *testing.T) {
	cur, prev := corpusFrames(t, medgen.Brain, medgen.Rotate)
	e := mustEval(t, cur, prev)
	f := func(x, y, w, h uint16) bool {
		r := tiling.Rect{
			X: int(x) % 600, Y: int(y) % 440,
			W: int(w)%40 + 1, H: int(h)%40 + 1,
		}
		// LowContent must never panic and must be deterministic.
		return e.LowContent(r) == e.LowContent(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStringMethods(t *testing.T) {
	if TextureLow.String() != "low" || TextureMedium.String() != "medium" || TextureHigh.String() != "high" {
		t.Fatal("texture names")
	}
	if MotionLow.String() != "low" || MotionHigh.String() != "high" {
		t.Fatal("motion names")
	}
	if TextureClass(9).String() == "" || MotionClass(9).String() == "" {
		t.Fatal("unknown class names empty")
	}
}
