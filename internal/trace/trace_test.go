package trace

import (
	"strings"
	"testing"
)

func TestTableRenderAligned(t *testing.T) {
	tbl := NewTable("Title", "name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("b", "22222")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("%d lines, want 5:\n%s", len(lines), out)
	}
	if lines[2][0] != '-' {
		t.Fatalf("missing separator:\n%s", out)
	}
	if !strings.Contains(lines[4], "b") || !strings.Contains(lines[4], "22222") {
		t.Fatalf("row content lost:\n%s", out)
	}
}

func TestTableAddRowfFormats(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.AddRowf("x", 3.14159, 42)
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "3.14") {
		t.Fatalf("float not formatted with 2 decimals:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "3.14159") {
		t.Fatal("float not truncated")
	}
	if !strings.Contains(sb.String(), "42") {
		t.Fatal("int lost")
	}
}

func TestTableShortRowsPadded(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.AddRow("only")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "only") {
		t.Fatal("short row lost")
	}
}

func TestRenderCSV(t *testing.T) {
	tbl := NewTable("ignored", "x", "y")
	tbl.AddRow("1", "2")
	tbl.AddRow("with,comma", `with"quote`)
	var sb strings.Builder
	if err := tbl.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
	if lines[0] != "x,y" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != `"with,comma","with""quote"` {
		t.Fatalf("quoting wrong: %q", lines[2])
	}
}

func TestNumRows(t *testing.T) {
	tbl := NewTable("", "a")
	if tbl.NumRows() != 0 {
		t.Fatal("fresh table has rows")
	}
	tbl.AddRow("1")
	tbl.AddRow("2")
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
}
