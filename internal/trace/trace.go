// Package trace provides the small output helpers the experiment harness
// uses: aligned text tables and CSV emission, both deterministic.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of string cells and renders them with aligned
// columns, in the style of the paper's tables.
type Table struct {
	Title   string
	header  []string
	rows    [][]string
	aligned bool
}

// NewTable creates a table with the given column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends one row. Rows shorter than the header are padded; longer
// rows extend the column count.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v unless it is a float64, which gets two decimals.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	total := 0
	for _, wd := range widths {
		total += wd
	}
	b.WriteString(strings.Repeat("-", total+2*(cols-1)))
	b.WriteString("\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (header first). Cells containing
// commas or quotes are quoted.
func (t *Table) RenderCSV(w io.Writer) error {
	writeRow := func(r []string) error {
		for i, c := range r {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.header); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }
