package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Persistence of the per-class LUT store: a restarted service loads the
// previous run's tables and starts estimating from warm state — including
// the calibration EWMA, which otherwise only exists for the lifetime of
// the process (the ROADMAP's "LUTs die with the process" open item).
//
// The format is JSON with classes and keys in sorted order, so saving the
// same store twice yields identical bytes (diff-able snapshots, stable
// test fixtures). Versioned for forward evolution.

// persistVersion is bumped on incompatible format changes.
const persistVersion = 1

type storeJSON struct {
	Version int         `json:"version"`
	Classes []classJSON `json:"classes"`
}

type classJSON struct {
	Class string    `json:"class"`
	Keys  []keyJSON `json:"keys"`
	// Fallback mean and estimation-error aggregates (see LUT).
	FallbackSumNS int64  `json:"fallback_sum_ns"`
	FallbackCount uint64 `json:"fallback_count"`
	ErrSumNS      int64  `json:"err_sum_ns"`
	ErrCount      uint64 `json:"err_count"`
}

type keyJSON struct {
	Key      Key      `json:"key"`
	Count    uint64   `json:"count"`
	SumNS    int64    `json:"sum_ns"`
	Bins     []uint64 `json:"bins,omitempty"`
	CalCount uint64   `json:"cal_count,omitempty"`
	CalEWMA  float64  `json:"cal_ewma_ns,omitempty"`
}

// Save writes the store — every class LUT with its histograms, fallback
// aggregates and calibration EWMA state — as deterministic JSON.
func (s *Store) Save(w io.Writer) error {
	s.mu.Lock()
	classes := make([]string, 0, len(s.luts))
	for c := range s.luts {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	doc := storeJSON{Version: persistVersion}
	for _, c := range classes {
		doc.Classes = append(doc.Classes, s.luts[c].toJSON(c))
	}
	s.mu.Unlock()

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// toJSON snapshots one LUT (takes the LUT's own lock).
func (l *LUT) toJSON(class string) classJSON {
	l.mu.RLock()
	defer l.mu.RUnlock()
	cj := classJSON{
		Class:         class,
		FallbackSumNS: int64(l.fallbackSum),
		FallbackCount: l.fallbackCount,
		ErrSumNS:      int64(l.errSum),
		ErrCount:      l.errCount,
	}
	keys := make([]Key, 0, len(l.m))
	for k := range l.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
	for _, k := range keys {
		h := l.m[k]
		kj := keyJSON{
			Key:      k,
			Count:    h.count,
			SumNS:    int64(h.sum),
			CalCount: h.calCount,
			CalEWMA:  h.calEWMA,
		}
		for _, b := range h.bins {
			if b != 0 {
				kj.Bins = append([]uint64(nil), h.bins[:]...)
				break
			}
		}
		cj.Keys = append(cj.Keys, kj)
	}
	return cj
}

// LoadStore reads a store previously written by Save. Estimates, fallback
// behavior and calibration state round-trip exactly.
func LoadStore(r io.Reader) (*Store, error) {
	var doc storeJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("workload: load store: %w", err)
	}
	if doc.Version != persistVersion {
		return nil, fmt.Errorf("workload: store version %d, want %d", doc.Version, persistVersion)
	}
	s := NewStore()
	for _, cj := range doc.Classes {
		if cj.Class == "" {
			return nil, fmt.Errorf("workload: store entry with empty class")
		}
		l := s.ForClass(cj.Class)
		l.fallbackSum = time.Duration(cj.FallbackSumNS)
		l.fallbackCount = cj.FallbackCount
		l.errSum = time.Duration(cj.ErrSumNS)
		l.errCount = cj.ErrCount
		for _, kj := range cj.Keys {
			if len(kj.Bins) != 0 && len(kj.Bins) != numBins {
				return nil, fmt.Errorf("workload: key %v has %d bins, want %d", kj.Key, len(kj.Bins), numBins)
			}
			h := &histogram{
				count:    kj.Count,
				sum:      time.Duration(kj.SumNS),
				calCount: kj.CalCount,
				calEWMA:  kj.CalEWMA,
			}
			copy(h.bins[:], kj.Bins)
			l.m[kj.Key] = h
		}
	}
	return s, nil
}

// Merge folds other's observations into s: histograms add, the
// calibration EWMAs combine weighted by their update counts (an exact
// EWMA cannot be recovered from two interleaved streams; the count
// -weighted mean is the unbiased summary of what both shards measured).
// A fleet saves one file by merging its shards' stores; classes that live
// on exactly one shard — the common case under class-consistent routing —
// merge losslessly.
func (s *Store) Merge(other *Store) {
	if other == nil || other == s {
		return
	}
	other.mu.Lock()
	classes := make([]string, 0, len(other.luts))
	for c := range other.luts {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	src := make(map[string]*LUT, len(classes))
	for _, c := range classes {
		src[c] = other.luts[c]
	}
	other.mu.Unlock()
	for _, c := range classes {
		s.ForClass(c).merge(src[c])
	}
}

// merge folds one LUT into l.
func (l *LUT) merge(other *LUT) {
	if other == nil || other == l {
		return
	}
	other.mu.RLock()
	defer other.mu.RUnlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.fallbackSum += other.fallbackSum
	l.fallbackCount += other.fallbackCount
	l.errSum += other.errSum
	l.errCount += other.errCount
	for k, oh := range other.m {
		h := l.m[k]
		if h == nil {
			h = &histogram{}
			l.m[k] = h
		}
		h.count += oh.count
		h.sum += oh.sum
		for i := range h.bins {
			h.bins[i] += oh.bins[i]
		}
		switch {
		case oh.calCount == 0:
		case h.calCount == 0:
			h.calCount = oh.calCount
			h.calEWMA = oh.calEWMA
		default:
			total := float64(h.calCount + oh.calCount)
			h.calEWMA = (h.calEWMA*float64(h.calCount) + oh.calEWMA*float64(oh.calCount)) / total
			h.calCount += oh.calCount
		}
	}
}

// MergeClass folds only the named class's LUT from other into s — the
// targeted variant of Merge a resizing fleet uses to hand one class's
// calibrated estimation state to the shard that takes the class over,
// without dragging the donor's other classes along. A class other does
// not know is a no-op.
func (s *Store) MergeClass(other *Store, class string) {
	if other == nil || other == s {
		return
	}
	other.mu.Lock()
	src := other.luts[class]
	other.mu.Unlock()
	if src == nil {
		return
	}
	s.ForClass(class).merge(src)
}

// Clone returns a deep copy of the store (shared with nothing).
func (s *Store) Clone() *Store {
	out := NewStore()
	out.Merge(s)
	return out
}
