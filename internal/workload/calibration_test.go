package workload

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCalibrateSeedsAndTracks(t *testing.T) {
	l := NewLUT()
	k := MakeKey(64*64, 1, 1, 32, 16)
	l.Calibrate(k, 4*time.Millisecond, 0.5)
	if got := l.Estimate(k); got != 4*time.Millisecond {
		t.Fatalf("first calibration should seed the EWMA, got %v", got)
	}
	l.Calibrate(k, 8*time.Millisecond, 0.5)
	if got := l.Estimate(k); got != 6*time.Millisecond {
		t.Fatalf("EWMA after 4ms,8ms at α=0.5 should be 6ms, got %v", got)
	}
	if l.Calibrations() != 2 {
		t.Fatalf("calibrations = %d, want 2", l.Calibrations())
	}
}

func TestCalibrationTakesPrecedenceOverMean(t *testing.T) {
	l := NewLUT()
	k := MakeKey(64*64, 0, 0, 32, 16)
	for i := 0; i < 50; i++ {
		l.Observe(k, 10*time.Millisecond)
	}
	l.Calibrate(k, 2*time.Millisecond, 0.5)
	if got := l.Estimate(k); got != 2*time.Millisecond {
		t.Fatalf("calibrated key must estimate from the EWMA, got %v", got)
	}
}

func TestCalibrationTracksDriftFasterThanMean(t *testing.T) {
	// The point of the serving loop's calibration: under a drifting host
	// the EWMA stays close to the latest measurement while the lifetime
	// mean lags half the drift behind.
	mean := NewLUT()
	cal := NewLUT()
	k := MakeKey(96*96, 1, 1, 32, 16)
	var last time.Duration
	for i := 0; i < 40; i++ {
		d := time.Duration(1+i) * time.Millisecond // steady upward drift
		mean.Observe(k, d)
		cal.Observe(k, d)
		cal.Calibrate(k, d, 0.5)
		last = d
	}
	meanErr := (last - mean.Estimate(k)).Abs()
	calErr := (last - cal.Estimate(k)).Abs()
	if calErr >= meanErr {
		t.Fatalf("calibrated error %v not below lifetime-mean error %v", calErr, meanErr)
	}
}

func TestCalibrateClampsAdversarialFeedback(t *testing.T) {
	l := NewLUT()
	k := MakeKey(64*64, 2, 1, 42, 8)
	l.Calibrate(k, -time.Hour, 0.5)
	if got := l.Estimate(k); got != 0 {
		t.Fatalf("negative feedback should clamp to 0, got %v", got)
	}
	l.Calibrate(k, time.Duration(math.MaxInt64), 1)
	if got := l.Estimate(k); got < 0 || got > maxObservation {
		t.Fatalf("huge feedback should clamp to [0, %v], got %v", maxObservation, got)
	}
	// Degenerate alphas fall back to the default instead of freezing or
	// exploding the EWMA.
	for _, alpha := range []float64{0, -3, 2, math.NaN(), math.Inf(1)} {
		l.Calibrate(k, 5*time.Millisecond, alpha)
		if got := l.Estimate(k); got < 0 || got > maxObservation {
			t.Fatalf("alpha %v produced out-of-range estimate %v", alpha, got)
		}
	}
}

func TestCalibrateOnlyKeyServesNearestFallback(t *testing.T) {
	// A key known only through calibration must still back unknown-key
	// estimation, like any observed key.
	l := NewLUT()
	k := MakeKey(64*64, 2, 1, 27, 64)
	l.Calibrate(k, 3*time.Millisecond, 0.5)
	probe := MakeKey(64*64, 2, 1, 32, 64)
	if got := l.Estimate(probe); got != 3*time.Millisecond {
		t.Fatalf("nearest-key fallback ignored calibrated key: %v", got)
	}
}

func TestCalibrateDoesNotPolluteObserveChannel(t *testing.T) {
	l := NewLUT()
	k := MakeKey(64*64, 0, 0, 32, 8)
	l.Calibrate(k, time.Millisecond, 0.5)
	if l.Observations() != 0 {
		t.Fatal("Calibrate must not count as an observation")
	}
	if _, n := l.MeanAbsError(); n != 0 {
		t.Fatal("Calibrate must not touch the error statistic")
	}
}

func TestNearestFallbackTieBreaksDeterministically(t *testing.T) {
	// Two keys at equal distance from the probe: the estimate must come
	// from the smaller key regardless of map iteration order.
	probe := MakeKey(12*1024, 1, 1, 32, 16) // area class 1
	lo := Key{AreaClass: 0, Texture: 1, Motion: 1, QPBucket: 2, SearchLevel: 4}
	hi := Key{AreaClass: 2, Texture: 1, Motion: 1, QPBucket: 2, SearchLevel: 4}
	for i := 0; i < 20; i++ {
		l := NewLUT()
		l.Observe(lo, 1*time.Millisecond)
		l.Observe(hi, 9*time.Millisecond)
		if got := l.Estimate(probe); got != 1*time.Millisecond {
			t.Fatalf("run %d: tie-break not deterministic, got %v", i, got)
		}
	}
}

func TestConcurrentCalibrateAndEstimate(t *testing.T) {
	l := NewLUT()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := MakeKey(64*64*(w%3+1), w%3, w%2, 27+w, 16)
			for i := 0; i < 200; i++ {
				l.Calibrate(k, time.Duration(100+i)*time.Microsecond, 0.5)
				l.Observe(k, time.Duration(100+i)*time.Microsecond)
				_ = l.Estimate(k)
			}
		}(w)
	}
	wg.Wait()
	if l.Calibrations() != 8*200 {
		t.Fatalf("calibrations = %d", l.Calibrations())
	}
}
