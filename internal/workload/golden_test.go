package workload

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenStore builds a deterministic two-class store exercising every
// persisted facet: histogram bins, fallback aggregates, calibration
// EWMA state and estimation-error counters.
func goldenStore() *Store {
	st := NewStore()
	brain := st.ForClass("brain")
	for i, d := range []time.Duration{
		2 * time.Millisecond, 3 * time.Millisecond, 5 * time.Millisecond, 8 * time.Millisecond,
	} {
		k := Key{AreaClass: i % 3, Texture: 1, Motion: i % 2, QPBucket: 2, SearchLevel: 1}
		brain.Observe(k, d)
		brain.Observe(k, d+time.Millisecond)
	}
	brain.Calibrate(Key{AreaClass: 0, Texture: 1, Motion: 0, QPBucket: 2, SearchLevel: 1},
		4*time.Millisecond, 0.3)

	chest := st.ForClass("chest-4k")
	chest.Observe(Key{AreaClass: 2, Texture: 3, Motion: 1, QPBucket: 4, SearchLevel: 2}, 12*time.Millisecond)
	chest.Observe(Key{AreaClass: 1, Texture: 0, Motion: 0, QPBucket: 0, SearchLevel: 0}, 700*time.Microsecond)
	// Populate the fallback mean via an estimate of an unseen key.
	chest.Estimate(Key{AreaClass: 0, Texture: 9, Motion: 1, QPBucket: 1, SearchLevel: 2})
	return st
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from its golden file (%d bytes, want %d).\n"+
			"The store's Save format is a wire format (agents ship it in heartbeats): "+
			"if the change is intentional, bump persistVersion and regenerate with -update.",
			name, len(got), len(want))
	}
}

// TestStoreGolden pins the LUT store's persisted encoding byte-for-byte:
// Save is deterministic, and the golden bytes reload into a store that
// re-saves identically (canonical round trip). A field added to the
// histogram or LUT without wire handling shows up here as a drift.
func TestStoreGolden(t *testing.T) {
	var got bytes.Buffer
	if err := goldenStore().Save(&got); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "store_v1.json", got.Bytes())

	// Byte-determinism: an independent rebuild encodes identically.
	var again bytes.Buffer
	if err := goldenStore().Save(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), again.Bytes()) {
		t.Fatal("store encoding is not deterministic")
	}

	// Canonical round trip: golden → LoadStore → Save → golden.
	loaded, err := LoadStore(bytes.NewReader(got.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var back bytes.Buffer
	if err := loaded.Save(&back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), back.Bytes()) {
		t.Fatal("load → re-save did not reproduce the golden bytes")
	}
}

// TestStoreVersionPinned: bumping the persist version is a conscious act
// that must come with a fresh golden file.
func TestStoreVersionPinned(t *testing.T) {
	if persistVersion != 1 {
		t.Fatalf("persistVersion = %d: add a store_v%d.json golden and update this pin",
			persistVersion, persistVersion)
	}
}
