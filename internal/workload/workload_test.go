package workload

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestAreaClassMonotone(t *testing.T) {
	prev := -1
	for _, area := range []int{1, 4096, 8000, 20000, 40000, 100000, 400000} {
		c := AreaClass(area)
		if c < prev {
			t.Fatalf("AreaClass(%d) = %d below previous %d", area, c, prev)
		}
		prev = c
	}
	if AreaClass(64*64) != 0 {
		t.Fatalf("min tile (64×64) should land in class 0, got %d", AreaClass(64*64))
	}
	if AreaClass(640*480) != len(areaBounds) {
		t.Fatal("full frame should land in the top class")
	}
}

func TestQPBucketNearestOperatingPoint(t *testing.T) {
	cases := map[int]int{22: 0, 24: 0, 25: 1, 27: 1, 29: 1, 30: 2, 32: 2, 35: 3, 37: 3, 40: 4, 42: 4, 51: 4}
	for qp, want := range cases {
		if got := QPBucket(qp); got != want {
			t.Errorf("QPBucket(%d) = %d, want %d", qp, got, want)
		}
	}
}

func TestSearchLevel(t *testing.T) {
	cases := map[int]int{8: 3, 16: 4, 32: 5, 64: 6, 1: 0}
	for w, want := range cases {
		if got := SearchLevel(w); got != want {
			t.Errorf("SearchLevel(%d) = %d, want %d", w, got, want)
		}
	}
}

func TestObserveAndEstimateExactKey(t *testing.T) {
	l := NewLUT()
	k := MakeKey(64*64, 1, 1, 32, 16)
	for i := 0; i < 10; i++ {
		l.Observe(k, 2*time.Millisecond)
	}
	if got := l.Estimate(k); got != 2*time.Millisecond {
		t.Fatalf("estimate = %v, want 2ms", got)
	}
	if l.Observations() != 10 {
		t.Fatalf("observations = %d", l.Observations())
	}
}

func TestEstimateAveragesObservations(t *testing.T) {
	l := NewLUT()
	k := MakeKey(64*64, 0, 0, 37, 8)
	l.Observe(k, 1*time.Millisecond)
	l.Observe(k, 3*time.Millisecond)
	if got := l.Estimate(k); got != 2*time.Millisecond {
		t.Fatalf("estimate = %v, want mean 2ms", got)
	}
}

func TestEstimateUnknownKeyFallsBackToNearest(t *testing.T) {
	l := NewLUT()
	near := MakeKey(64*64, 2, 1, 27, 64)
	far := MakeKey(640*480, 0, 0, 42, 8)
	l.Observe(near, 4*time.Millisecond)
	l.Observe(far, 100*time.Microsecond)
	// Same texture/motion, slightly different QP: nearest is `near`.
	probe := MakeKey(64*64, 2, 1, 32, 64)
	if got := l.Estimate(probe); got != 4*time.Millisecond {
		t.Fatalf("estimate = %v, want nearest-key 4ms", got)
	}
}

func TestEstimateEmptyLUTUsesConservativePrior(t *testing.T) {
	l := NewLUT()
	got := l.Estimate(MakeKey(64*64, 1, 1, 32, 16))
	if got <= 0 {
		t.Fatalf("empty LUT estimate = %v, want positive prior", got)
	}
}

func TestMeanAbsErrorConverges(t *testing.T) {
	// The paper's claim: < 100 µs error once warm. Feed a stationary
	// workload with small jitter and check the error statistic lands in
	// the tens of microseconds.
	l := NewLUT()
	k := MakeKey(96*96, 1, 1, 32, 16)
	base := 1500 * time.Microsecond
	for i := 0; i < 200; i++ {
		jitter := time.Duration((i%7)-3) * 10 * time.Microsecond
		l.Observe(k, base+jitter)
	}
	err, n := l.MeanAbsError()
	if n == 0 {
		t.Fatal("no error observations")
	}
	if err > 100*time.Microsecond {
		t.Fatalf("mean abs error %v, want < 100µs (paper claim)", err)
	}
}

func TestHistogramBins(t *testing.T) {
	l := NewLUT()
	k := MakeKey(64*64, 0, 0, 32, 8)
	l.Observe(k, 3*time.Microsecond)   // bin 1 (2–4 µs)
	l.Observe(k, 1*time.Millisecond)   // bin ~9/10
	l.Observe(k, 900*time.Microsecond) // near the previous bin
	bins, ok := l.Histogram(k)
	if !ok {
		t.Fatal("histogram missing")
	}
	var total uint64
	for _, c := range bins {
		total += c
	}
	if total != 3 {
		t.Fatalf("histogram holds %d observations, want 3", total)
	}
	if _, ok := l.Histogram(MakeKey(1, 0, 0, 22, 8)); ok {
		t.Fatal("unknown key returned a histogram")
	}
}

func TestKeysDeterministicOrder(t *testing.T) {
	l := NewLUT()
	ks := []Key{
		MakeKey(640*480, 2, 1, 42, 64),
		MakeKey(64*64, 0, 0, 22, 8),
		MakeKey(96*96, 1, 0, 32, 16),
	}
	for _, k := range ks {
		l.Observe(k, time.Millisecond)
	}
	a := l.Keys()
	b := l.Keys()
	if len(a) != 3 {
		t.Fatalf("%d keys", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("key order not deterministic")
		}
	}
	for i := 1; i < len(a); i++ {
		if !less(a[i-1], a[i]) {
			t.Fatal("keys not sorted")
		}
	}
}

func TestConcurrentObserveEstimate(t *testing.T) {
	l := NewLUT()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := MakeKey(64*64*(w%3+1), w%3, w%2, 27+w, 16)
			for i := 0; i < 100; i++ {
				l.Observe(k, time.Duration(500+i)*time.Microsecond)
				_ = l.Estimate(k)
			}
		}(w)
	}
	wg.Wait()
	if l.Observations() != 800 {
		t.Fatalf("observations = %d, want 800", l.Observations())
	}
}

func TestNegativeDurationClamped(t *testing.T) {
	l := NewLUT()
	k := MakeKey(64*64, 0, 0, 32, 8)
	l.Observe(k, -5*time.Millisecond)
	if got := l.Estimate(k); got != 0 {
		t.Fatalf("estimate = %v, want 0 for clamped negative", got)
	}
}

func TestStoreSharesLUTPerClass(t *testing.T) {
	s := NewStore()
	a := s.ForClass("brain")
	b := s.ForClass("brain")
	c := s.ForClass("bone")
	if a != b {
		t.Fatal("same class returned different LUTs")
	}
	if a == c {
		t.Fatal("different classes share a LUT")
	}
	k := MakeKey(64*64, 1, 1, 32, 16)
	a.Observe(k, time.Millisecond)
	if b.Observations() != 1 {
		t.Fatal("observation not visible through shared reference")
	}
	if c.Observations() != 0 {
		t.Fatal("observation leaked across classes")
	}
	classes := s.Classes()
	if len(classes) != 2 || classes[0] != "bone" || classes[1] != "brain" {
		t.Fatalf("classes = %v", classes)
	}
}

func TestKeyStringStable(t *testing.T) {
	k := MakeKey(64*64, 2, 1, 27, 64)
	if k.String() != "a0/t2/m1/q1/s6" {
		t.Fatalf("key string = %s", k.String())
	}
}

func TestMakeKeyProperty(t *testing.T) {
	f := func(area uint32, tex, mot uint8, qp uint8, window uint8) bool {
		k := MakeKey(int(area%1000000), int(tex%3), int(mot%2), int(qp%52), int(window)%65+1)
		return k.AreaClass >= 0 && k.AreaClass <= len(areaBounds) &&
			k.QPBucket >= 0 && k.QPBucket <= 4 &&
			k.SearchLevel >= 0 && k.SearchLevel <= 6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinForBoundaries(t *testing.T) {
	if binFor(0) != 0 {
		t.Fatal("bin of 0")
	}
	if binFor(time.Microsecond) != 0 {
		t.Fatal("bin of 1µs")
	}
	if binFor(2*time.Microsecond) != 1 {
		t.Fatal("bin of 2µs")
	}
	if binFor(time.Hour) != numBins-1 {
		t.Fatal("huge durations must clamp to the last bin")
	}
}
