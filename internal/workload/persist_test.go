package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// warmStore builds a store with observations, calibrations and estimation
// -error state across two classes.
func warmStore() *Store {
	s := NewStore()
	brain := s.ForClass("brain")
	chest := s.ForClass("chest")
	for i := 0; i < 40; i++ {
		k := MakeKey(64*64*(i%4+1), i%3, i%2, 22+5*(i%5), 8<<(i%4))
		brain.Observe(k, time.Duration(100+i*13)*time.Microsecond)
		if i%2 == 0 {
			brain.Calibrate(k, time.Duration(90+i*11)*time.Microsecond, 0.5)
		}
		if i%3 == 0 {
			chest.Observe(k, time.Duration(200+i*7)*time.Microsecond)
		}
	}
	return s
}

// TestStoreSaveLoadRoundTrip: estimates, fallback, error statistics and
// calibration state survive a save/load cycle exactly.
func TestStoreSaveLoadRoundTrip(t *testing.T) {
	s := warmStore()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Classes(), s.Classes(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("classes %v, want %v", got, want)
	}
	for _, class := range s.Classes() {
		orig, back := s.ForClass(class), loaded.ForClass(class)
		if orig.Observations() != back.Observations() {
			t.Fatalf("%s: observations %d vs %d", class, orig.Observations(), back.Observations())
		}
		if orig.Calibrations() != back.Calibrations() {
			t.Fatalf("%s: calibrations %d vs %d", class, orig.Calibrations(), back.Calibrations())
		}
		oe, oc := orig.MeanAbsError()
		be, bc := back.MeanAbsError()
		if oe != be || oc != bc {
			t.Fatalf("%s: error stats (%v,%d) vs (%v,%d)", class, oe, oc, be, bc)
		}
		keys := orig.Keys()
		if len(keys) == 0 {
			t.Fatalf("%s: warm store has no keys", class)
		}
		for _, k := range keys {
			if got, want := back.Estimate(k), orig.Estimate(k); got != want {
				t.Fatalf("%s %v: estimate %v, want %v", class, k, got, want)
			}
			oh, _ := orig.Histogram(k)
			bh, ok := back.Histogram(k)
			if !ok {
				t.Fatalf("%s %v: histogram lost", class, k)
			}
			for i := range oh {
				if oh[i] != bh[i] {
					t.Fatalf("%s %v: bin %d is %d, want %d", class, k, i, bh[i], oh[i])
				}
			}
		}
		// An unknown key exercises the nearest-key and fallback paths.
		cold := MakeKey(100*100, 2, 1, 42, 64)
		if got, want := back.Estimate(cold), orig.Estimate(cold); got != want {
			t.Fatalf("%s: cold-key estimate %v, want %v", class, got, want)
		}
	}
}

// TestStoreSaveDeterministic: identical state yields identical bytes.
func TestStoreSaveDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := warmStore().Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := warmStore().Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of identical stores differ")
	}
}

// TestLoadStoreRejectsGarbage: version and shape errors are reported, not
// silently swallowed into an empty store.
func TestLoadStoreRejectsGarbage(t *testing.T) {
	if _, err := LoadStore(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadStore(strings.NewReader(`{"version": 99, "classes": []}`)); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := LoadStore(strings.NewReader(`{"version": 1, "classes": [{"class": ""}]}`)); err == nil {
		t.Fatal("empty class name accepted")
	}
}

// TestStoreMergeAndClone: merging sums histograms, combines EWMAs by
// count, and Clone shares nothing with its source.
func TestStoreMergeAndClone(t *testing.T) {
	a, b := NewStore(), NewStore()
	k := MakeKey(64*64, 1, 0, 32, 16)
	a.ForClass("brain").Observe(k, 100*time.Microsecond)
	a.ForClass("brain").Observe(k, 200*time.Microsecond)
	b.ForClass("brain").Observe(k, 400*time.Microsecond)
	b.ForClass("bone").Observe(k, 50*time.Microsecond)
	a.ForClass("brain").Calibrate(k, 100*time.Microsecond, 0.5) // EWMA 100µs, count 1
	b.ForClass("brain").Calibrate(k, 400*time.Microsecond, 0.5) // EWMA 400µs, count 1

	a.Merge(b)
	brain := a.ForClass("brain")
	if got := brain.Observations(); got != 3 {
		t.Fatalf("merged observations %d, want 3", got)
	}
	// Calibrated key: count-weighted EWMA mean (100+400)/2 = 250µs.
	if got := brain.Estimate(k); got != 250*time.Microsecond {
		t.Fatalf("merged calibrated estimate %v, want 250µs", got)
	}
	if got := a.ForClass("bone").Observations(); got != 1 {
		t.Fatalf("merged bone observations %d, want 1", got)
	}

	clone := a.Clone()
	clone.ForClass("brain").Observe(k, time.Second)
	if brain.Observations() != 3 {
		t.Fatal("mutating the clone changed the source store")
	}
	if clone.ForClass("brain").Observations() != 4 {
		t.Fatal("clone did not take the copy")
	}
	// Self-merge is a no-op, not a doubling.
	a.Merge(a)
	if brain.Observations() != 3 {
		t.Fatal("self-merge doubled the store")
	}
}

// TestStoreMergeClass: the targeted merge takes exactly one class — the
// shard-removal handoff path — leaving the destination's other classes
// and the donor untouched.
func TestStoreMergeClass(t *testing.T) {
	donor, dst := NewStore(), NewStore()
	k := MakeKey(64*64, 1, 0, 32, 16)
	donor.ForClass("brain").Observe(k, 100*time.Microsecond)
	donor.ForClass("brain").Calibrate(k, 150*time.Microsecond, 0.5)
	donor.ForClass("bone").Observe(k, 50*time.Microsecond)
	dst.ForClass("chest").Observe(k, 80*time.Microsecond)

	dst.MergeClass(donor, "brain")
	if got := dst.ForClass("brain").Observations(); got != 1 {
		t.Fatalf("brain observations %d after MergeClass, want 1", got)
	}
	if got := dst.ForClass("brain").Calibrations(); got != 1 {
		t.Fatal("MergeClass dropped the calibration EWMA")
	}
	// Only the named class moved.
	for _, c := range dst.Classes() {
		if c == "bone" {
			t.Fatal("MergeClass dragged an unrequested class along")
		}
	}
	// Unknown classes and self-merges are no-ops.
	dst.MergeClass(donor, "no-such-class")
	for _, c := range dst.Classes() {
		if c == "no-such-class" {
			t.Fatal("MergeClass invented a class")
		}
	}
	dst.MergeClass(dst, "brain")
	if got := dst.ForClass("brain").Observations(); got != 1 {
		t.Fatal("self MergeClass doubled the class")
	}
	// The donor is untouched.
	if donor.ForClass("brain").Observations() != 1 || donor.ForClass("bone").Observations() != 1 {
		t.Fatal("MergeClass mutated the donor")
	}
}
